package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"wmsketch/internal/cluster"
	"wmsketch/internal/core"
)

// TestHealthzPlain: outside cluster mode /healthz answers a bare ok with no
// cluster section.
func TestHealthzPlain(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	var resp HealthzResponse
	if code := doJSON(t, "GET", hs.URL+"/healthz", nil, &resp); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if resp.Status != "ok" || resp.Cluster != nil {
		t.Fatalf("plain healthz: %+v", resp)
	}
}

// TestHealthzClusterHealthy: a healthy mesh reports every peer alive and no
// degraded bit.
func TestHealthzClusterHealthy(t *testing.T) {
	srvs, https := clusterServers(t, 2, "")
	srvs[0].ClusterNode().GossipOnce()
	var resp HealthzResponse
	if code := doJSON(t, "GET", https[0].URL+"/healthz", nil, &resp); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if resp.Status != "ok" || resp.Cluster == nil {
		t.Fatalf("cluster healthz: %+v", resp)
	}
	if resp.Cluster.PeersTotal != 1 || resp.Cluster.PeersAlive != 1 || resp.Cluster.Degraded {
		t.Fatalf("healthy mesh: %+v", *resp.Cluster)
	}
	if resp.Cluster.LastSuccess.IsZero() {
		t.Fatal("last_success not recorded after a successful round")
	}
	if len(resp.Cluster.LastGossipUnix) != 1 {
		t.Fatalf("last_gossip_unix should have one entry per peer: %+v", resp.Cluster.LastGossipUnix)
	}
	for peer, ts := range resp.Cluster.LastGossipUnix {
		if ts <= 0 {
			t.Fatalf("peer %s gossiped successfully but last_gossip_unix is %d", peer, ts)
		}
	}
}

// downTransport fails every gossip RPC — the peer looks unreachable.
type downTransport struct{}

func (downTransport) Pull(context.Context, string, cluster.PullRequest) (io.ReadCloser, error) {
	return nil, fmt.Errorf("connection refused")
}
func (downTransport) Push(context.Context, string, []byte) error {
	return fmt.Errorf("connection refused")
}

// TestHealthzDegraded: when the node's only peer stops answering for long
// enough to be suspected, /healthz still returns 200 (the node keeps
// serving) but flips status to "degraded" and says why in the counts.
func TestHealthzDegraded(t *testing.T) {
	srv, hs := newTestServer(t, BackendAWM)
	clock := cluster.NewVirtualClock(time.Unix(1_700_000_000, 0))
	n, err := cluster.NewNode(cluster.Config{
		Self:  "healthz-test",
		Peers: []string{"http://dead:1"},
		Mix: core.MixOptions{
			Depth: srv.opt.Config.Depth, Width: srv.opt.Config.Width,
			Seed: srv.opt.Config.Seed, HeapSize: srv.opt.Config.HeapSize,
		},
		Local:     backendSnapshotter{srv},
		Interval:  -1,
		Seed:      1,
		Transport: downTransport{},
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.cluster = n
	// Three consecutive failed rounds promote the peer to suspect; advance
	// the virtual clock past the growing backoff between attempts.
	for i := 0; i < 3; i++ {
		n.GossipOnce()
		clock.Advance(10 * time.Second)
	}
	var resp HealthzResponse
	if code := doJSON(t, "GET", hs.URL+"/healthz", nil, &resp); code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200, got %d", code)
	}
	if resp.Status != "degraded" || resp.Cluster == nil || !resp.Cluster.Degraded {
		t.Fatalf("degraded mesh not reported: %+v", resp)
	}
	if resp.Cluster.PeersAlive != 0 || resp.Cluster.PeersSuspect+resp.Cluster.PeersDead != 1 {
		t.Fatalf("peer counts: %+v", *resp.Cluster)
	}
}

// TestClusterOptionsPlumbing: the serving-layer knobs reach cluster.Config —
// a bad chaos spec must fail construction, a good one must not.
func TestClusterOptionsPlumbing(t *testing.T) {
	opt := testOptions(t, BackendAWM)
	opt.Cluster = ClusterOptions{
		Self:          "http://127.0.0.1:0",
		Peers:         []string{"http://127.0.0.1:1"},
		Interval:      -1,
		GossipTimeout: 5 * time.Second,
		Fanout:        2,
		OriginGCAfter: time.Minute,
		Chaos:         "drop=not-a-number",
	}
	if _, err := New(opt); err == nil {
		t.Fatal("bad -chaos spec accepted")
	}
	opt.Cluster.Chaos = "drop=0.5,seed=9"
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ClusterNode() == nil {
		t.Fatal("cluster node not started")
	}
}
