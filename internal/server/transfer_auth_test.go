package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"wmsketch/internal/datagen"
)

// TestCheckpointDownloadUploadRoundTrip: download a trained node's state,
// upload it into a fresh node, and verify the fresh node answers exactly
// like the original — restore without shared disk.
func TestCheckpointDownloadUploadRoundTrip(t *testing.T) {
	for _, backend := range backends() {
		t.Run(backend, func(t *testing.T) {
			_, source := newTestServer(t, backend)
			gen := datagen.RCV1Like(11)
			if code := doJSON(t, "POST", source.URL+"/v1/update",
				UpdateRequest{Examples: toWire(gen.Take(1200))}, nil); code != 200 {
				t.Fatalf("update: HTTP %d", code)
			}
			doJSON(t, "POST", source.URL+"/v1/sync", struct{}{}, nil)

			resp, err := http.Get(source.URL + "/v1/checkpoint/download")
			if err != nil {
				t.Fatal(err)
			}
			blob, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("download: HTTP %d", resp.StatusCode)
			}
			if len(blob) == 0 {
				t.Fatal("empty checkpoint")
			}

			_, target := newTestServer(t, backend)
			up, err := http.Post(target.URL+"/v1/checkpoint/upload", "application/octet-stream", bytes.NewReader(blob))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(up.Body)
			up.Body.Close()
			if up.StatusCode != http.StatusOK {
				t.Fatalf("upload: HTTP %d: %s", up.StatusCode, body)
			}

			var srcTop, dstTop TopKResponse
			if code := doJSON(t, "GET", source.URL+"/v1/topk?k=16", nil, &srcTop); code != 200 {
				t.Fatalf("source topk: HTTP %d", code)
			}
			if code := doJSON(t, "GET", target.URL+"/v1/topk?k=16", nil, &dstTop); code != 200 {
				t.Fatalf("target topk: HTTP %d", code)
			}
			if len(srcTop.Features) == 0 {
				t.Fatal("source served no top-k")
			}
			for i := range srcTop.Features {
				if srcTop.Features[i] != dstTop.Features[i] {
					t.Fatalf("top-k[%d] differs after transfer: %+v vs %+v",
						i, dstTop.Features[i], srcTop.Features[i])
				}
			}
			var src, dst EstimateResponse
			probe := srcTop.Features[0].I
			doJSON(t, "GET", fmt.Sprintf("%s/v1/estimate?i=%d", source.URL, probe), nil, &src)
			doJSON(t, "GET", fmt.Sprintf("%s/v1/estimate?i=%d", target.URL, probe), nil, &dst)
			if src.Weights[0] != dst.Weights[0] {
				t.Fatalf("estimate differs after transfer: %v vs %v", dst.Weights[0], src.Weights[0])
			}
		})
	}
}

// TestCheckpointUploadRejectsGarbage: corrupt bodies must not replace the
// backend.
func TestCheckpointUploadRejectsGarbage(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	doJSON(t, "POST", hs.URL+"/v1/update", UpdateRequest{
		Example: &ExampleJSON{Y: 1, X: []FeatureJSON{{I: 3, V: 1}}},
	}, nil)

	resp, err := http.Post(hs.URL+"/v1/checkpoint/upload", "application/octet-stream",
		bytes.NewReader([]byte("definitely not a checkpoint")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: HTTP %d, want 400", resp.StatusCode)
	}
	// The old model must still be serving.
	var st StatsResponse
	if code := doJSON(t, "GET", hs.URL+"/v1/stats", nil, &st); code != 200 || st.Steps != 1 {
		t.Fatalf("backend lost after rejected upload: code %d, %+v", code, st)
	}
}

func newAuthServer(t *testing.T, token string) *httptest.Server {
	t.Helper()
	opt := testOptions(t, BackendAWM)
	opt.AuthToken = token
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		_ = srv.Close()
	})
	return hs
}

// TestAuthTokenGatesMutatingEndpoints: without (or with a wrong) bearer
// token every mutating endpoint must 401; with it, they work; read-only
// endpoints stay open throughout.
func TestAuthTokenGatesMutatingEndpoints(t *testing.T) {
	const token = "sekrit-cluster-token"
	hs := newAuthServer(t, token)

	mutating := []struct {
		method, path, ct, body string
	}{
		{"POST", "/v1/update", "application/json", `{"example":{"y":1,"x":[{"i":3,"v":1}]}}`},
		{"POST", "/v1/update", "application/x-ndjson", `{"y":1,"x":[{"i":3,"v":1}]}`},
		{"POST", "/v1/checkpoint", "application/json", `{"action":"save"}`},
		{"POST", "/v1/checkpoint/upload", "application/octet-stream", "x"},
	}
	send := func(m, path, ct, body, auth string) int {
		req, err := http.NewRequest(m, hs.URL+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ct)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, m := range mutating {
		if code := send(m.method, m.path, m.ct, m.body, ""); code != http.StatusUnauthorized {
			t.Fatalf("%s %s (%s) without token: HTTP %d, want 401", m.method, m.path, m.ct, code)
		}
		if code := send(m.method, m.path, m.ct, m.body, "Bearer wrong-token"); code != http.StatusUnauthorized {
			t.Fatalf("%s %s with wrong token: HTTP %d, want 401", m.method, m.path, code)
		}
		if code := send(m.method, m.path, m.ct, m.body, "Basic "+token); code != http.StatusUnauthorized {
			t.Fatalf("%s %s with non-bearer scheme: HTTP %d, want 401", m.method, m.path, code)
		}
	}
	// The correct token unlocks updates (and the model actually trains).
	if code := send("POST", "/v1/update", "application/json",
		`{"example":{"y":1,"x":[{"i":3,"v":1}]}}`, "Bearer "+token); code != http.StatusOK {
		t.Fatalf("authorized update: HTTP %d", code)
	}
	// Read-only endpoints never require the token.
	for _, path := range []string{"/v1/stats", "/v1/topk?k=4", "/v1/estimate?i=3", "/healthz", "/v1/checkpoint/download"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read-only %s with no token: HTTP %d", path, resp.StatusCode)
		}
	}
}
