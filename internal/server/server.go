// Package server exposes a WM-/AWM-Sketch learner over HTTP/JSON: the
// paper's target deployment is continuous monitoring, where classifiers are
// trained *and queried* live over a stream, so the repository needs a
// network-facing layer rather than batch CLIs only. The server owns one
// backend — a core.Sharded parallel learner, or a core.Concurrent-wrapped
// single-model learner — and serves updates, predictions, weight estimates,
// top-K queries, stats, and checkpoint save/restore. See SERVING.md for the
// API reference and architecture notes.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"wmsketch/internal/cluster"
	"wmsketch/internal/core"
	"wmsketch/internal/stream"
	"wmsketch/internal/trace"
)

// maxRequestBytes bounds any request body: update batches, predict vectors,
// checkpoint requests. Network input is untrusted; a body over the limit is
// rejected before it is buffered.
const maxRequestBytes = 8 << 20

// Backend kinds selectable at construction.
const (
	BackendSharded = "sharded" // core.Sharded, AWM shards (parallel training)
	BackendAWM     = "awm"     // core.Concurrent around one AWM-Sketch
	BackendWM      = "wm"      // core.Concurrent around one WM-Sketch
)

// learner is what the server requires of a backend: the uniform Learner
// surface plus checkpointing and a step counter. *core.Sharded and
// *core.Concurrent both satisfy it.
type learner interface {
	stream.Learner
	io.WriterTo
	Steps() int64
}

// Options configures a Server.
type Options struct {
	// Backend selects the learner: BackendSharded, BackendAWM, or BackendWM.
	// Empty selects BackendSharded.
	Backend string
	// Config is the sketch configuration shared by every backend.
	Config core.Config
	// Sharded configures the parallel learner (BackendSharded only).
	Sharded core.ShardedOptions
	// CheckpointPath is the default path for /v1/checkpoint and the final
	// flush on Close. Empty disables both defaults (explicit paths in
	// checkpoint requests still work).
	CheckpointPath string
	// RefreshInterval bounds query staleness for the sharded backend: a
	// background loop re-merges the query snapshot this often while updates
	// are flowing (the core.Sharded default cadence of one merge per 65536
	// updates is tuned for batch training, not serving). 0 selects 200ms;
	// negative disables the loop (POST /v1/sync still refreshes on demand).
	RefreshInterval time.Duration
	// AuthToken, when set, gates every mutating endpoint (/v1/update,
	// /v1/checkpoint, /v1/checkpoint/upload, /v1/cluster/push) behind a
	// bearer-token check. Read-only endpoints stay open.
	AuthToken string
	// Cluster configures peer-to-peer model replication (CLUSTER.md).
	// Enabled when Peers is non-empty; queries are then served from the
	// cluster-merged view instead of the local backend alone.
	Cluster ClusterOptions
	// Logger receives structured operational logs (request outcomes at
	// debug, failures at warn/error). Nil discards. Callers should wrap the
	// handler with trace.NewLogHandler so log lines carry trace_id; the
	// server uses the logger as given.
	Logger *slog.Logger
	// Trace configures the tracing layer (OBSERVABILITY.md "Tracing").
	// Registry is overridden to the server's own metrics registry so the
	// wmtrace_* families share the /metrics exposition; everything else
	// passes through, zero values selecting the trace package defaults.
	Trace trace.Options
	// Bin configures the binary hot protocol listener (SERVING.md "Binary
	// protocol"); zero values select the defaults. The listener itself is
	// started by ServeBin — these only shape per-connection behavior.
	Bin BinOptions
}

// Server is the HTTP serving layer. It implements http.Handler.
type Server struct {
	opt   Options
	mux   *http.ServeMux
	start time.Time

	// mu guards backend replacement (checkpoint restore swaps the learner);
	// request handlers hold it for read.
	mu      sync.RWMutex
	backend learner // guarded by mu

	// cluster is non-nil when Options.Cluster is enabled.
	cluster *cluster.Node

	// met carries the process metrics registry and every pre-registered
	// handle (metrics.go); routePatterns lists the instrumented routes.
	met           *serverMetrics
	routePatterns []string

	// tracer owns the flight recorder; logger is never nil (discards when
	// unconfigured). Both are fixed at construction.
	tracer *trace.Tracer
	logger *slog.Logger

	stopRefresh chan struct{}
	stopOnce    sync.Once
	refreshWG   sync.WaitGroup

	// binHook, when non-nil, runs at the start of every binary-protocol
	// dispatch. Tests use it to inject slow handlers and force out-of-order
	// completion; it is nil in production.
	binHook func(op byte)
}

// New constructs a Server with a freshly initialized backend.
func New(opt Options) (*Server, error) {
	if opt.Backend == "" {
		opt.Backend = BackendSharded
	}
	var b learner
	switch opt.Backend {
	case BackendSharded:
		// Resolve the defaulted worker count up front so /v1/stats and the
		// loadgen report record the actual parallelism, not 0.
		if opt.Sharded.Workers <= 0 {
			opt.Sharded.Workers = runtime.GOMAXPROCS(0)
		}
		b = core.NewSharded(opt.Config, opt.Sharded)
	case BackendAWM:
		b = core.NewConcurrent(core.NewAWMSketch(opt.Config))
	case BackendWM:
		b = core.NewConcurrent(core.NewWMSketch(opt.Config))
	default:
		return nil, fmt.Errorf("server: unknown backend %q", opt.Backend)
	}
	if opt.RefreshInterval == 0 {
		opt.RefreshInterval = 200 * time.Millisecond
	}
	s := &Server{opt: opt, backend: b, start: time.Now(), stopRefresh: make(chan struct{})}
	s.logger = opt.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.met = newServerMetrics(s)
	opt.Trace.Registry = s.met.reg
	s.tracer = trace.New(opt.Trace)
	if opt.Cluster.enabled() {
		if err := s.startCluster(); err != nil {
			if sh, ok := b.(*core.Sharded); ok {
				sh.Close()
			}
			return nil, err
		}
	}
	s.routes()
	if opt.Backend == BackendSharded && opt.RefreshInterval > 0 {
		s.refreshWG.Add(1)
		go s.refreshLoop()
	}
	return s, nil
}

// refreshLoop re-merges the sharded query snapshot whenever updates have
// arrived since the last merge, bounding the staleness of Predict/Estimate/
// TopK answers under continuous training.
func (s *Server) refreshLoop() {
	defer s.refreshWG.Done()
	t := time.NewTicker(s.opt.RefreshInterval)
	defer t.Stop()
	var synced int64 = -1
	for {
		select {
		case <-s.stopRefresh:
			return
		case <-t.C:
			s.withBackend(func(b learner) {
				sh, ok := b.(*core.Sharded)
				if !ok {
					return
				}
				if steps := sh.Steps(); steps != synced {
					sh.Sync()
					s.met.refreshes.Inc()
					synced = steps
				}
			})
		}
	}
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.handle("POST /v1/update", s.handleUpdate)
	s.handle("POST /v1/predict", s.handlePredict)
	s.handle("GET /v1/estimate", s.handleEstimateGet)
	s.handle("POST /v1/estimate", s.handleEstimatePost)
	s.handle("GET /v1/topk", s.handleTopK)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("POST /v1/checkpoint", s.handleCheckpoint)
	s.handle("GET /v1/checkpoint/download", s.handleCheckpointDownload)
	s.handle("POST /v1/checkpoint/upload", s.handleCheckpointUpload)
	s.handle("POST /v1/cluster/pull", s.handleClusterPull)
	s.handle("POST /v1/cluster/push", s.handleClusterPush)
	s.handle("GET /v1/cluster/status", s.handleClusterStatus)
	s.handle("POST /v1/sync", s.handleSync)
	s.handle("GET /healthz", s.handleHealthz)
	// The scrape endpoint goes through the same middleware: scrapes show up
	// in the request metrics like any other route.
	s.handle("GET /metrics", s.handleMetrics)
}

// HealthzResponse is the /healthz body: overall status plus, in cluster
// mode, the peer-liveness summary.
type HealthzResponse struct {
	// Status is "ok", or "degraded" when fewer than half the configured
	// peers are alive.
	Status string `json:"status"`
	// Cluster carries peer liveness counts and the degraded bit; omitted
	// outside cluster mode.
	Cluster *cluster.Health `json:"cluster,omitempty"`
}

// handleHealthz reports liveness. The status code is always 200 — a
// degraded node still serves queries, so load balancers must not evict it;
// orchestration that wants to act on partial partitions reads the degraded
// bit from the body (or /v1/cluster/status for per-peer detail).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{Status: "ok"}
	if s.cluster != nil {
		h := s.cluster.Health()
		resp.Cluster = &h
		if h.Degraded {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// bodyLimit returns the request-size cap per route: bulk-transfer routes
// (streaming ingest, checkpoint upload, cluster push) legitimately carry
// more than ordinary JSON bodies.
func bodyLimit(r *http.Request) int64 {
	switch r.URL.Path {
	case "/v1/update":
		if isStreamingIngest(r) {
			return maxStreamIngestBytes
		}
	case "/v1/checkpoint/upload", "/v1/cluster/push":
		return maxTransferBytes
	}
	return maxRequestBytes
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, bodyLimit(r))
	s.mux.ServeHTTP(w, r)
}

// Close flushes a final checkpoint to CheckpointPath (when configured) and
// shuts the backend down. It is the graceful-shutdown hook: call it after
// the HTTP listener has drained. Close is idempotent.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stopRefresh) })
	s.refreshWG.Wait()
	if s.cluster != nil {
		s.cluster.Close()
	}
	var err error
	if s.opt.CheckpointPath != "" {
		_, err = s.saveCheckpoint(context.Background(), s.opt.CheckpointPath)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.backend.(*core.Sharded); ok {
		sh.Close()
	}
	return err
}

// Restore loads a checkpoint from path into the server — the boot-time
// counterpart of POST /v1/checkpoint {"action":"restore"}. In cluster
// mode the restored model is published immediately, which is how a
// restarted node re-announces itself at its pre-restart version.
func (s *Server) Restore(path string) error {
	if err := s.restoreCheckpoint(context.Background(), path); err != nil {
		return err
	}
	_, err := s.publishRestored()
	return err
}

// withBackend runs fn on the active backend under the read lock, so a
// concurrent checkpoint restore (which swaps the backend under the write
// lock and closes the old one) can never retire a backend mid-operation.
func (s *Server) withBackend(fn func(b learner)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.backend)
}

// predict/estimate/topK route queries to the cluster-merged view when
// cluster mode is on (every node's state, weighted by example count) and
// to the local backend otherwise.
func (s *Server) predict(ctx context.Context, x stream.Vector) (margin float64) {
	_, sp := s.tracer.StartSpan(ctx, "backend.predict")
	defer sp.Finish()
	if s.cluster != nil {
		return s.cluster.View().Predict(x)
	}
	s.withBackend(func(b learner) { margin = b.Predict(x) })
	return margin
}

func (s *Server) estimate(i uint32) (est float64) {
	if s.cluster != nil {
		return s.cluster.View().Estimate(i)
	}
	s.withBackend(func(b learner) { est = b.Estimate(i) })
	return est
}

func (s *Server) topK(ctx context.Context, k int) (top []stream.Weighted) {
	_, sp := s.tracer.StartSpan(ctx, "backend.topk")
	defer sp.Finish()
	if s.cluster != nil {
		return s.cluster.View().TopK(k)
	}
	s.withBackend(func(b learner) { top = b.TopK(k) })
	return top
}

// ---- wire types ----

// FeatureJSON is one sparse coordinate.
type FeatureJSON struct {
	I uint32  `json:"i"`
	V float64 `json:"v"`
}

// ExampleJSON is one example, either structured (y, x) or as a raw
// libsvm-format line ("1 3:0.5 7:1.2"), which is parsed server-side.
type ExampleJSON struct {
	Y      int           `json:"y,omitempty"`
	X      []FeatureJSON `json:"x,omitempty"`
	LibSVM string        `json:"libsvm,omitempty"`
}

// UpdateRequest carries one example or a batch.
type UpdateRequest struct {
	Example  *ExampleJSON  `json:"example,omitempty"`
	Examples []ExampleJSON `json:"examples,omitempty"`
}

// UpdateResponse reports how many examples were applied.
type UpdateResponse struct {
	Applied int   `json:"applied"`
	Steps   int64 `json:"steps"`
}

// PredictRequest carries the feature vector to score.
type PredictRequest struct {
	X      []FeatureJSON `json:"x,omitempty"`
	LibSVM string        `json:"libsvm,omitempty"`
}

// PredictResponse is the margin and its sign.
type PredictResponse struct {
	Margin float64 `json:"margin"`
	Label  int     `json:"label"`
}

// EstimateRequest asks for weight estimates of a batch of features.
type EstimateRequest struct {
	Indices []uint32 `json:"indices"`
}

// WeightJSON pairs a feature index with its estimated weight.
type WeightJSON struct {
	I uint32  `json:"i"`
	W float64 `json:"w"`
}

// EstimateResponse returns the requested estimates in request order.
type EstimateResponse struct {
	Weights []WeightJSON `json:"weights"`
}

// TopKResponse returns the heaviest features, descending |weight|.
type TopKResponse struct {
	K        int          `json:"k"`
	Features []WeightJSON `json:"features"`
}

// StatsResponse is the /v1/stats document.
type StatsResponse struct {
	Backend       string  `json:"backend"`
	Width         int     `json:"width"`
	Depth         int     `json:"depth"`
	HeapSize      int     `json:"heap_size"`
	Workers       int     `json:"workers,omitempty"`
	Steps         int64   `json:"steps"`
	Updates       int64   `json:"updates"`
	Predicts      int64   `json:"predicts"`
	Estimates     int64   `json:"estimates"`
	Restores      int64   `json:"restores"`
	MemoryBytes   int     `json:"memory_bytes"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Cluster fields, present only in cluster mode; /v1/cluster/status has
	// the full replication picture.
	ClusterSelf  string `json:"cluster_self,omitempty"`
	ClusterPeers int    `json:"cluster_peers,omitempty"`
}

// CheckpointRequest triggers a save or restore. Path defaults to the
// server's configured CheckpointPath.
type CheckpointRequest struct {
	Action string `json:"action"` // "save" or "restore"
	Path   string `json:"path,omitempty"`
}

// CheckpointResponse reports the completed action.
type CheckpointResponse struct {
	Action string `json:"action"`
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes,omitempty"`
	// Warning surfaces restore-time caveats that are not errors, e.g. a
	// cluster-mode restore to an older model that version monotonicity
	// keeps out of the merged view.
	Warning string `json:"warning,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- helpers ----

// jsonBufPool recycles response-encoding buffers across requests; encoding
// into a pooled buffer (instead of streaming json.NewEncoder straight at
// the ResponseWriter) also yields a Content-Length and a single Write.
var jsonBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	jsonBufPool.Put(buf)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// Exactly one JSON value per body: trailing bytes are malformed here
	// just as they are on the binary wire (the conformance suite holds the
	// two paths to the same error classes).
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

// toExample validates one wire example into a stream.Example. Labels must be
// ±1 in structured form; libsvm lines go through the hardened parser.
func toExample(e *ExampleJSON) (stream.Example, error) {
	if e.LibSVM != "" {
		if e.Y != 0 || len(e.X) != 0 {
			return stream.Example{}, errors.New("give either libsvm or (y, x), not both")
		}
		return stream.ParseLibSVMLine(e.LibSVM)
	}
	if e.Y != 1 && e.Y != -1 {
		return stream.Example{}, fmt.Errorf("label must be +1 or -1, got %d", e.Y)
	}
	x, err := toVector(e.X)
	if err != nil {
		return stream.Example{}, err
	}
	return stream.Example{X: x, Y: e.Y}, nil
}

func toVector(fs []FeatureJSON) (stream.Vector, error) {
	x := make(stream.Vector, len(fs))
	for i, f := range fs {
		if math.IsNaN(f.V) || math.IsInf(f.V, 0) {
			return nil, fmt.Errorf("feature %d has non-finite value", f.I)
		}
		x[i] = stream.Feature{Index: f.I, Value: f.V}
	}
	return x, nil
}

// ---- handlers ----

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(w, r) {
		return
	}
	if isStreamingIngest(r) {
		s.handleStreamingUpdate(w, r)
		return
	}
	var req UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wire := req.Examples
	if req.Example != nil {
		wire = append([]ExampleJSON{*req.Example}, wire...)
	}
	if len(wire) == 0 {
		writeError(w, http.StatusBadRequest, "no examples")
		return
	}
	batch := make([]stream.Example, len(wire))
	for i := range wire {
		ex, err := toExample(&wire[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, "example %d: %v", i, err)
			return
		}
		batch[i] = ex
	}
	steps := s.applyBatch(r.Context(), batch)
	writeJSON(w, http.StatusOK, UpdateResponse{Applied: len(batch), Steps: steps})
}

// applyBatch trains the backend on a validated batch and returns the step
// counter after it. The span pair here ("backend.apply" around the lock,
// "learner.update" around the model mutation) is the tree the smoke test
// asserts under every update's route span.
func (s *Server) applyBatch(ctx context.Context, batch []stream.Example) (steps int64) {
	if len(batch) == 0 {
		return 0
	}
	actx, apply := s.tracer.StartSpan(ctx, "backend.apply")
	s.withBackend(func(b learner) {
		_, upd := s.tracer.StartSpan(actx, "learner.update")
		if sh, ok := b.(*core.Sharded); ok {
			sh.UpdateBatch(batch)
		} else {
			for _, ex := range batch {
				b.Update(ex.X, ex.Y)
			}
		}
		upd.Finish()
		steps = b.Steps()
	})
	apply.Finish()
	s.met.updatesApplied.Add(int64(len(batch)))
	s.met.batchSize.Observe(float64(len(batch)))
	return steps
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var x stream.Vector
	if req.LibSVM != "" {
		// Predict-only callers may not have a label; accept a bare feature
		// list by prepending a dummy label for the parser.
		ex, err := stream.ParseLibSVMLine("1 " + req.LibSVM)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad libsvm features: %v", err)
			return
		}
		x = ex.X
	} else {
		var err error
		if x, err = toVector(req.X); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	margin := s.predict(r.Context(), x)
	label := -1
	if margin > 0 {
		label = 1
	}
	s.met.predicts.Inc()
	writeJSON(w, http.StatusOK, PredictResponse{Margin: margin, Label: label})
}

func (s *Server) handleEstimateGet(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("i")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter i")
		return
	}
	i, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad index %q", raw)
		return
	}
	est := s.estimate(uint32(i))
	s.met.estimates.Inc()
	writeJSON(w, http.StatusOK, EstimateResponse{
		Weights: []WeightJSON{{I: uint32(i), W: est}},
	})
}

// maxEstimateBatch bounds one POST /v1/estimate request.
const maxEstimateBatch = 65536

func (s *Server) handleEstimatePost(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Indices) == 0 {
		writeError(w, http.StatusBadRequest, "no indices")
		return
	}
	if len(req.Indices) > maxEstimateBatch {
		writeError(w, http.StatusBadRequest, "too many indices (%d > %d)", len(req.Indices), maxEstimateBatch)
		return
	}
	out := make([]WeightJSON, len(req.Indices))
	for i, idx := range req.Indices {
		out[i] = WeightJSON{I: idx, W: s.estimate(idx)}
	}
	s.met.estimates.Add(int64(len(out)))
	writeJSON(w, http.StatusOK, EstimateResponse{Weights: out})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "bad k %q", raw)
			return
		}
		k = v
	}
	top := s.topK(r.Context(), k)
	out := make([]WeightJSON, len(top))
	for i, e := range top {
		out[i] = WeightJSON{I: e.Index, W: e.Weight}
	}
	writeJSON(w, http.StatusOK, TopKResponse{K: k, Features: out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Backend:       s.opt.Backend,
		Width:         s.opt.Config.Width,
		Depth:         s.opt.Config.Depth,
		HeapSize:      s.opt.Config.HeapSize,
		Updates:       s.met.updatesApplied.Value(),
		Predicts:      s.met.predicts.Value(),
		Estimates:     s.met.estimates.Value(),
		Restores:      s.met.restores.Value(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	s.withBackend(func(b learner) {
		resp.Steps = b.Steps()
		resp.MemoryBytes = b.MemoryBytes()
	})
	if s.opt.Backend == BackendSharded {
		resp.Workers = s.opt.Sharded.Workers
	}
	if s.cluster != nil {
		resp.ClusterSelf = s.cluster.Self()
		resp.ClusterPeers = len(s.opt.Cluster.Peers)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(w, r) {
		return
	}
	var req CheckpointRequest
	if !decodeBody(w, r, &req) {
		return
	}
	path := req.Path
	if path == "" {
		path = s.opt.CheckpointPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no checkpoint path configured or given")
		return
	}
	switch req.Action {
	case "save":
		n, err := s.saveCheckpoint(r.Context(), path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "save: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, CheckpointResponse{Action: "save", Path: path, Bytes: n})
	case "restore":
		if err := s.restoreCheckpoint(r.Context(), path); err != nil {
			writeError(w, http.StatusInternalServerError, "restore: %v", err)
			return
		}
		warning, err := s.publishRestored()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "restored but publish failed: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, CheckpointResponse{Action: "restore", Path: path, Warning: warning})
	default:
		writeError(w, http.StatusBadRequest, "action must be save or restore, got %q", req.Action)
	}
}

// handleSync forces a sharded snapshot refresh: after it returns, queries
// reflect every update routed before the call. No-op for single-model
// backends, whose queries are always current. In cluster mode it also
// publishes the refreshed local model into the cluster view, so queries
// that follow see local progress without waiting for a gossip round.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	var steps int64
	s.withBackend(func(b learner) {
		if sh, ok := b.(*core.Sharded); ok {
			sh.Sync()
			s.met.refreshes.Inc()
		}
		steps = b.Steps()
	})
	if s.cluster != nil {
		if _, _, err := s.cluster.PublishLocal(); err != nil {
			writeError(w, http.StatusInternalServerError, "publish: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, UpdateResponse{Steps: steps})
}

// saveCheckpoint writes the backend state to path atomically (temp file +
// rename), so a crash mid-write never clobbers the previous checkpoint.
func (s *Server) saveCheckpoint(ctx context.Context, path string) (int64, error) {
	_, sp := s.tracer.StartSpan(ctx, "checkpoint.save")
	defer sp.Finish()
	began := time.Now()
	tmp, err := os.CreateTemp(filepath.Dir(path), ".wmserve-ckpt-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	var n int64
	var werr error
	s.withBackend(func(b learner) { n, werr = b.WriteTo(tmp) })
	if werr != nil {
		tmp.Close()
		return n, werr
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, err
	}
	s.met.saves.Inc()
	s.met.saveDur.ObserveDuration(time.Since(began))
	return n, nil
}

// restoreCheckpoint replaces the backend with the state at path. The new
// learner is fully constructed before the swap; requests racing the restore
// see either the old or the new backend, never a partial one.
func (s *Server) restoreCheckpoint(ctx context.Context, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.restoreFromReader(ctx, f)
}

// restoreFromReader builds a fresh backend from serialized state and swaps
// it in — shared by file restore and POST /v1/checkpoint/upload.
func (s *Server) restoreFromReader(ctx context.Context, f io.Reader) error {
	_, sp := s.tracer.StartSpan(ctx, "checkpoint.restore")
	defer sp.Finish()
	began := time.Now()
	var fresh learner
	switch s.opt.Backend {
	case BackendSharded:
		sh, err := core.LoadSharded(f, s.opt.Config.Loss, s.opt.Config.Schedule, s.opt.Sharded)
		if err != nil {
			return err
		}
		fresh = sh
	case BackendAWM:
		a, err := core.LoadAWMSketch(f, s.opt.Config.Loss, s.opt.Config.Schedule)
		if err != nil {
			return err
		}
		fresh = core.NewConcurrent(a)
	case BackendWM:
		m, err := core.LoadWMSketch(f, s.opt.Config.Loss, s.opt.Config.Schedule)
		if err != nil {
			return err
		}
		fresh = core.NewConcurrent(m)
	default:
		return fmt.Errorf("backend %q does not support restore", s.opt.Backend)
	}

	s.mu.Lock()
	old := s.backend
	s.backend = fresh
	s.mu.Unlock()
	if sh, ok := old.(*core.Sharded); ok {
		sh.Close()
	}
	// Counts every restore path — file restore, boot-time Restore, and
	// checkpoint upload — since each swaps the backend the same way.
	s.met.restores.Inc()
	s.met.restoreDur.ObserveDuration(time.Since(began))
	return nil
}
