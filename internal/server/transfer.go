package server

import (
	"net/http"
)

// Checkpoint transfer over HTTP. File-based /v1/checkpoint requires every
// node to see the same filesystem; these two endpoints move the same bytes
// over the wire instead, so a fresh node can be seeded from a live one
// (`curl node-a/v1/checkpoint/download | curl -X POST --data-binary @-
// node-b/v1/checkpoint/upload`) with no shared disk. Upload goes through
// the same hardened loaders as file restore: shape bounds, NaN/Inf
// rejection, version checks — a corrupt or hostile body cannot replace the
// backend.

// maxTransferBytes caps a checkpoint upload or cluster push body. The
// largest sketch the serialization layer itself accepts (2^27 buckets) is
// 1 GiB of float64s, so this cap never rejects a checkpoint the loader
// could accept.
const maxTransferBytes = (1 << 30) + (64 << 20)

// handleCheckpointDownload streams the live backend state. The read lock
// is held for the duration of the write: updates queue behind a slow
// download, restores wait, reads proceed.
func (s *Server) handleCheckpointDownload(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="wmserve.ckpt"`)
	var err error
	s.withBackend(func(b learner) { _, err = b.WriteTo(w) })
	if err != nil {
		// Headers are gone; all we can do is cut the stream so the client
		// sees a truncated body rather than a valid-looking checkpoint.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// handleCheckpointUpload replaces the backend with the posted state.
func (s *Server) handleCheckpointUpload(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(w, r) {
		return
	}
	if err := s.restoreFromReader(r.Context(), r.Body); err != nil {
		writeError(w, http.StatusBadRequest, "upload: %v", err)
		return
	}
	// The restored model is this node's new local state; publish it so the
	// cluster view doesn't keep serving the pre-upload model.
	warning, err := s.publishRestored()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "restored but publish failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Action: "upload", Bytes: r.ContentLength, Warning: warning})
}
