package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wmsketch/internal/obs"
)

// TestMiddlewareCountsEveryRoute drives one request at every registered
// pattern and asserts the middleware recorded a status-code class and a
// latency observation under that route's labels — so a route can never be
// added without instrumentation (registration and instrumentation are the
// same call).
func TestMiddlewareCountsEveryRoute(t *testing.T) {
	srv, err := New(testOptions(t, BackendAWM))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	patterns := srv.RoutePatterns()
	if len(patterns) < 15 {
		t.Fatalf("only %d instrumented routes registered: %v", len(patterns), patterns)
	}
	for _, pattern := range patterns {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			t.Fatalf("pattern %q is not METHOD PATH", pattern)
		}
		req := httptest.NewRequest(method, path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		reg := srv.MetricsRegistry()
		total := 0.0
		for _, class := range codeClasses {
			if v, ok := reg.Value("wmserve_http_requests_total", pattern, class); ok {
				total += v
			}
		}
		if total < 1 {
			t.Errorf("%s: no request counted under route label (status was %d)", pattern, rec.Code)
		}
		if n, ok := reg.Value("wmserve_http_request_duration_seconds", pattern); !ok || n < 1 {
			t.Errorf("%s: no latency observation under route label", pattern)
		}
	}
	if v, _ := srv.MetricsRegistry().Value("wmserve_http_in_flight_requests"); v != 0 {
		t.Errorf("in-flight gauge %v after all requests returned, want 0", v)
	}
}

// TestMiddlewareClassesAndErrors pins the class/error accounting: a good
// update is a 2xx, a malformed one a 4xx, and neither counts as an error.
func TestMiddlewareClassesAndErrors(t *testing.T) {
	srv, err := New(testOptions(t, BackendAWM))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	do := func(body string) int {
		req := httptest.NewRequest("POST", "/v1/update", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(`{"example":{"y":1,"x":[{"i":3,"v":1.5}]}}`); code != http.StatusOK {
		t.Fatalf("good update: HTTP %d", code)
	}
	if code := do(`{"example":{"y":7}}`); code != http.StatusBadRequest {
		t.Fatalf("bad label: HTTP %d, want 400", code)
	}

	reg := srv.MetricsRegistry()
	const route = "POST /v1/update"
	if v, _ := reg.Value("wmserve_http_requests_total", route, "2xx"); v != 1 {
		t.Errorf("2xx count %v, want 1", v)
	}
	if v, _ := reg.Value("wmserve_http_requests_total", route, "4xx"); v != 1 {
		t.Errorf("4xx count %v, want 1", v)
	}
	if v, ok := reg.Value("wmserve_http_request_errors_total", route); ok && v != 0 {
		t.Errorf("error count %v, want 0 (4xx is the client's fault)", v)
	}
	if v, _ := reg.Value("wmcore_updates_applied_total"); v != 1 {
		t.Errorf("updates applied %v, want 1", v)
	}
	if v, _ := reg.Value("wmserve_http_body_bytes_total", route, "in"); v <= 0 {
		t.Errorf("no request-body bytes counted for %s", route)
	}
	if v, _ := reg.Value("wmserve_http_body_bytes_total", route, "out"); v <= 0 {
		t.Errorf("no response-body bytes counted for %s", route)
	}
}

// TestMetricsEndpoint scrapes GET /metrics and validates the exposition
// end to end with the obs checker.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := New(testOptions(t, BackendAWM))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	families, err := obs.CheckText(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, fam := range []string{
		"wmserve_http_requests_total", "wmcore_updates_applied_total", "wmserve_uptime_seconds",
	} {
		if _, ok := families[fam]; !ok {
			t.Errorf("family %q missing", fam)
		}
	}
}
