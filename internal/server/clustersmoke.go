package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// ClusterSmoke is the multi-node in-process harness behind
// `wmserve -cluster-smoke`: it boots N wmserve nodes on loopback wired as
// a full mesh, trains each on a disjoint partition of a labeled stream
// over real HTTP (streaming NDJSON ingest), gossips to quiescence, and
// verifies the paper's mergeability claim end to end — every node's
// holdout error must land within Epsilon (relative) of a single learner
// trained on the union. It also verifies delta compression does its job:
// the incremental-round bytes on the wire must come in under the
// full-sync round's. The measurements land in a JSON report (CI keeps
// BENCH_cluster.json).

// ClusterSmokeOptions configures the harness.
type ClusterSmokeOptions struct {
	// Nodes is the cluster size (0 → 3).
	Nodes int
	// Examples is the total training-stream length, split round-robin
	// across nodes in two stages (0 → 9000).
	Examples int
	// Holdout is the evaluation-set size (0 → 4000).
	Holdout int
	// Epsilon is the allowed relative error gap vs the union learner
	// (0 → 0.05).
	Epsilon float64
	// JSONPath receives the report ("" disables).
	JSONPath string
	// Seed drives the synthetic stream.
	Seed int64
	// MaxRounds bounds the gossip rounds per phase (0 → 32).
	MaxRounds int
}

func (o *ClusterSmokeOptions) fill() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Examples <= 0 {
		o.Examples = 9000
	}
	if o.Holdout <= 0 {
		o.Holdout = 4000
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 32
	}
}

// ClusterSmokeReport is the JSON document the harness writes.
type ClusterSmokeReport struct {
	Nodes    int   `json:"nodes"`
	Examples int   `json:"examples"`
	Holdout  int   `json:"holdout"`
	Seed     int64 `json:"seed"`

	RoundsFullPhase    int     `json:"rounds_full_phase"`
	RoundsDeltaPhase   int     `json:"rounds_delta_phase"`
	BytesFullPhase     int64   `json:"bytes_full_phase"`
	BytesDeltaPhase    int64   `json:"bytes_delta_phase"`
	BytesPerFullRound  float64 `json:"bytes_per_full_round"`
	BytesPerDeltaRound float64 `json:"bytes_per_delta_round"`
	BytesIdleRound     int64   `json:"bytes_idle_round"`
	FullFrames         int64   `json:"full_frames"`
	DeltaFrames        int64   `json:"delta_frames"`

	ErrUnion       float64   `json:"err_union"`
	ErrPartitioned []float64 `json:"err_partitioned"` // before any gossip
	ErrConverged   []float64 `json:"err_converged"`
	MaxRelGap      float64   `json:"max_rel_gap"`
	Epsilon        float64   `json:"epsilon"`

	WallSeconds float64 `json:"wall_seconds"`
}

// smokeNode is one booted wmserve instance.
type smokeNode struct {
	srv  *Server
	hs   *http.Server
	ln   net.Listener
	base string
}

// ClusterSmoke runs the harness; opt supplies the sketch configuration
// (Backend/Config/Sharded), smk the cluster-specific knobs.
func ClusterSmoke(opt Options, smk ClusterSmokeOptions, verbose io.Writer) error {
	if verbose == nil {
		verbose = io.Discard
	}
	smk.fill()
	start := time.Now()

	// Data: a labeled stream split into disjoint round-robin partitions,
	// plus a holdout drawn after the training prefix.
	gen := datagen.RCV1Like(smk.Seed)
	train := gen.Take(smk.Examples)
	holdout := gen.Take(smk.Holdout)
	stage1 := train[:2*len(train)/3]
	stage2 := train[2*len(train)/3:]

	// The union baseline: one learner, the whole stream, in order.
	union := core.NewAWMSketch(opt.Config)
	for _, ex := range train {
		union.Update(ex.X, ex.Y)
	}
	errUnion := holdoutError(holdout, func(x stream.Vector) float64 { return union.Predict(x) })
	if errUnion == 0 {
		return fmt.Errorf("cluster-smoke: degenerate stream (union learner has zero holdout error)")
	}
	fmt.Fprintf(verbose, "cluster-smoke: union learner holdout error %.4f over %d examples\n",
		errUnion, len(holdout))

	// Boot N nodes on loopback, full mesh. Listeners come first so every
	// node knows the others' URLs at construction.
	lns := make([]net.Listener, smk.Nodes)
	urls := make([]string, smk.Nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*smokeNode, smk.Nodes)
	for i := range nodes {
		nopt := opt
		nopt.CheckpointPath = ""
		// Single-model nodes keep the convergence math deterministic and
		// their raw-space deltas sparse; sharded backends replicate too,
		// but re-merge noise pushes them toward full frames (CLUSTER.md).
		nopt.Backend = BackendAWM
		nopt.Cluster = ClusterOptions{
			Self:     urls[i],
			Peers:    otherURLs(urls, i),
			Interval: -1, // harness drives rounds deterministically
		}
		srv, err := New(nopt)
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		hs := &http.Server{Handler: srv}
		go func(ln net.Listener) { _ = hs.Serve(ln) }(lns[i])
		nodes[i] = &smokeNode{srv: srv, hs: hs, ln: lns[i], base: urls[i]}
		defer func(n *smokeNode) { _ = n.hs.Close(); _ = n.srv.Close() }(nodes[i])
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Stage 1: disjoint training over real HTTP via streaming NDJSON.
	if err := ingestPartitions(client, nodes, stage1); err != nil {
		return err
	}
	// Publish local state everywhere, then measure the pre-gossip errors:
	// each node has seen only its partition.
	for _, n := range nodes {
		if err := postEmpty(client, n.base+"/v1/sync"); err != nil {
			return err
		}
	}
	errPart := make([]float64, len(nodes))
	for i, n := range nodes {
		e, err := httpHoldoutError(client, n.base, holdout)
		if err != nil {
			return err
		}
		errPart[i] = e
	}
	fmt.Fprintf(verbose, "cluster-smoke: pre-gossip per-node errors %v\n", fmtErrs(errPart))

	// Phase A: gossip to quiescence from cold — full snapshots dominate.
	roundsA, err := gossipToQuiescence(nodes, smk.MaxRounds)
	if err != nil {
		return err
	}
	bytesA, fullsA, deltasA := transferTotals(nodes)

	// Stage 2: continuous training with gossip interleaved at a realistic
	// cadence — small increments between rounds, so with every base acked
	// this phase must ride on delta frames.
	const deltaChunks = 8
	chunkLen := (len(stage2) + deltaChunks - 1) / deltaChunks
	roundsB := 0
	for c := 0; c*chunkLen < len(stage2); c++ {
		end := (c + 1) * chunkLen
		if end > len(stage2) {
			end = len(stage2)
		}
		if err := ingestPartitions(client, nodes, stage2[c*chunkLen:end]); err != nil {
			return err
		}
		for _, n := range nodes {
			if err := postEmpty(client, n.base+"/v1/sync"); err != nil {
				return err
			}
		}
		for _, n := range nodes {
			n.srv.ClusterNode().GossipOnce()
		}
		roundsB++
	}
	settle, err := gossipToQuiescence(nodes, smk.MaxRounds)
	if err != nil {
		return err
	}
	roundsB += settle
	bytesAll, fullsAll, deltasAll := transferTotals(nodes)
	bytesB := bytesAll - bytesA
	deltasB := deltasAll - deltasA

	// A fully quiescent round moves digests only — the at-rest cost of the
	// anti-entropy loop.
	for _, n := range nodes {
		n.srv.ClusterNode().GossipOnce()
	}
	bytesAfterIdle, _, _ := transferTotals(nodes)
	bytesIdle := bytesAfterIdle - bytesAll

	if deltasB == 0 {
		return fmt.Errorf("cluster-smoke: incremental phase sent no delta frames (fulls %d → %d)",
			fullsA, fullsAll)
	}
	bytesPerFullRound := float64(bytesA) / float64(roundsA)
	bytesPerDeltaRound := float64(bytesB) / float64(roundsB)
	if bytesPerDeltaRound >= 0.8*bytesPerFullRound {
		return fmt.Errorf("cluster-smoke: delta rounds average %.0f B, not measurably under the full-sync rounds' %.0f B",
			bytesPerDeltaRound, bytesPerFullRound)
	}
	fmt.Fprintf(verbose,
		"cluster-smoke: full-sync phase %d rounds / %d B (%d full, %d delta); delta phase %d rounds / %d B (%d delta) — %.0f B/round vs %.0f B/round (%.1f%%); idle round %d B\n",
		roundsA, bytesA, fullsA, deltasA, roundsB, bytesB, deltasB,
		bytesPerFullRound, bytesPerDeltaRound, 100*bytesPerDeltaRound/bytesPerFullRound, bytesIdle)

	// Converged evaluation over HTTP: every node must now answer within
	// Epsilon (relative) of the union learner.
	errConv := make([]float64, len(nodes))
	maxGap := 0.0
	for i, n := range nodes {
		e, err := httpHoldoutError(client, n.base, holdout)
		if err != nil {
			return err
		}
		errConv[i] = e
		gap := absf(e-errUnion) / errUnion
		if gap > maxGap {
			maxGap = gap
		}
	}
	fmt.Fprintf(verbose, "cluster-smoke: converged errors %v vs union %.4f (max relative gap %.3f, ε %.3f)\n",
		fmtErrs(errConv), errUnion, maxGap, smk.Epsilon)
	if maxGap > smk.Epsilon {
		return fmt.Errorf("cluster-smoke: converged error gap %.4f exceeds ε %.4f (union %.4f, nodes %v)",
			maxGap, smk.Epsilon, errUnion, errConv)
	}

	// Every node's /metrics must expose the gossip families after all that
	// replication traffic, and parse clean.
	for i, n := range nodes {
		if err := scrapeMetrics(client, n.base, []string{
			"wmgossip_rounds_total",
			"wmgossip_peer_rounds_total",
			"wmgossip_stream_bytes_total",
			"wmgossip_frames_total",
			"wmgossip_frame_bytes_total",
			"wmgossip_frames_built_total",
			"wmgossip_frames_applied_total",
			"wmgossip_delta_built_ratio",
		}, io.Discard); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	fmt.Fprintf(verbose, "cluster-smoke: all %d nodes expose the wmgossip metric families\n", len(nodes))

	// Cross-node causal linkage: a gossip round minted on node 0 must show
	// up in its peers' lineage under the same trace id — the traceparent
	// header on the push RPC is what carries it across the process
	// boundary. Runs after the converged evaluation so the extra training
	// examples cannot perturb the epsilon gate. Drain the lineage
	// accumulated during the phases first, so the assertion sees only this
	// one round.
	for _, n := range nodes {
		n.srv.ClusterNode().DrainLineage()
	}
	if err := ingestPartitions(client, nodes[:1], gen.Take(64)); err != nil {
		return err
	}
	if err := postEmpty(client, nodes[0].base+"/v1/sync"); err != nil {
		return err
	}
	nodes[0].srv.ClusterNode().GossipOnce()
	tid := nodes[0].srv.ClusterNode().LastRoundTrace()
	if tid.IsZero() {
		return fmt.Errorf("cluster-smoke: node 0's gossip round minted no trace id")
	}
	linked := 0
	for _, n := range nodes[1:] {
		entries, _ := n.srv.ClusterNode().DrainLineage()
		for _, e := range entries {
			if e.Trace == tid && e.Origin == urls[0] {
				linked++
			}
		}
	}
	if linked == 0 {
		return fmt.Errorf("cluster-smoke: no peer recorded an applied frame under node 0's round trace %s", tid)
	}
	fmt.Fprintf(verbose, "cluster-smoke: cross-node trace linkage verified (%d peer applies under round trace %s)\n",
		linked, tid)

	report := ClusterSmokeReport{
		Nodes: smk.Nodes, Examples: smk.Examples, Holdout: smk.Holdout, Seed: smk.Seed,
		RoundsFullPhase: roundsA, RoundsDeltaPhase: roundsB,
		BytesFullPhase: bytesA, BytesDeltaPhase: bytesB,
		BytesPerFullRound: bytesPerFullRound, BytesPerDeltaRound: bytesPerDeltaRound,
		BytesIdleRound: bytesIdle,
		FullFrames:     fullsAll, DeltaFrames: deltasAll,
		ErrUnion: errUnion, ErrPartitioned: errPart, ErrConverged: errConv,
		MaxRelGap: maxGap, Epsilon: smk.Epsilon,
		WallSeconds: time.Since(start).Seconds(),
	}
	if smk.JSONPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(smk.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(verbose, "cluster-smoke: wrote %s\n", smk.JSONPath)
	}
	return nil
}

// ingestPartitions streams each node its round-robin partition as NDJSON —
// the bulk-ingest path, exercised end to end.
func ingestPartitions(client *http.Client, nodes []*smokeNode, examples []stream.Example) error {
	for i, n := range nodes {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		count := 0
		for j := i; j < len(examples); j += len(nodes) {
			if err := enc.Encode(exampleWire(examples[j])); err != nil {
				return err
			}
			count++
		}
		resp, err := client.Post(n.base+"/v1/update", "application/x-ndjson", &buf)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("node %d ingest: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var up UpdateResponse
		if err := json.Unmarshal(body, &up); err != nil {
			return err
		}
		if up.Applied != count {
			return fmt.Errorf("node %d ingest applied %d, want %d", i, up.Applied, count)
		}
	}
	return nil
}

// gossipToQuiescence drives synchronized rounds until every node reports
// the same digest (and at least two rounds have run, so push-backs have
// settled), or maxRounds is hit.
func gossipToQuiescence(nodes []*smokeNode, maxRounds int) (int, error) {
	for round := 1; round <= maxRounds; round++ {
		for _, n := range nodes {
			n.srv.ClusterNode().GossipOnce()
		}
		if round >= 2 && digestsAgree(nodes) {
			return round, nil
		}
	}
	return maxRounds, fmt.Errorf("cluster-smoke: no quiescence after %d rounds", maxRounds)
}

func digestsAgree(nodes []*smokeNode) bool {
	ref := nodes[0].srv.ClusterNode().Digest()
	if len(ref) < len(nodes) {
		return false // not every origin has propagated yet
	}
	for _, n := range nodes[1:] {
		d := n.srv.ClusterNode().Digest()
		if len(d) != len(ref) {
			return false
		}
		for k, v := range ref {
			if d[k] != v {
				return false
			}
		}
	}
	return true
}

// transferTotals sums bytes/frames moved across all nodes' push paths plus
// pull responses, as seen by the receiving side (BytesIn counts decoded
// pull payloads; push bytes land on the pushing node's BytesOut).
func transferTotals(nodes []*smokeNode) (bytes, fulls, deltas int64) {
	for _, n := range nodes {
		st := n.srv.ClusterNode().Status()
		bytes += st.BytesIn + st.BytesOut
		fulls += st.FullsOut
		deltas += st.DeltasOut
	}
	return bytes, fulls, deltas
}

// httpHoldoutError measures the misclassification rate of a node's
// /v1/predict over the holdout set.
func httpHoldoutError(client *http.Client, base string, holdout []stream.Example) (float64, error) {
	wrong := 0
	for i := range holdout {
		blob, err := json.Marshal(PredictRequest{X: vecWire(holdout[i].X)})
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(base+"/v1/predict", "application/json", bytes.NewReader(blob))
		if err != nil {
			return 0, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("predict: HTTP %d: %s", resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			return 0, err
		}
		if pr.Label != holdout[i].Y {
			wrong++
		}
	}
	return float64(wrong) / float64(len(holdout)), nil
}

// holdoutError is the local (non-HTTP) counterpart, matching the predict
// handler's sign convention.
func holdoutError(holdout []stream.Example, predict func(stream.Vector) float64) float64 {
	wrong := 0
	for _, ex := range holdout {
		label := -1
		if predict(ex.X) > 0 {
			label = 1
		}
		if label != ex.Y {
			wrong++
		}
	}
	return float64(wrong) / float64(len(holdout))
}

func otherURLs(urls []string, self int) []string {
	out := make([]string, 0, len(urls)-1)
	for i, u := range urls {
		if i != self {
			out = append(out, u)
		}
	}
	return out
}

func exampleWire(ex stream.Example) ExampleJSON {
	return ExampleJSON{Y: ex.Y, X: vecWire(ex.X)}
}

func postEmpty(client *http.Client, url string) error {
	resp, err := client.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fmtErrs(errs []float64) []string {
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = fmt.Sprintf("%.4f", e)
	}
	return out
}
