package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wmsketch/internal/datagen"
	"wmsketch/internal/obs"
	"wmsketch/internal/stream"
	"wmsketch/internal/trace"
	"wmsketch/internal/wire"
)

// lockedBuffer is a mutex-guarded log sink: the smoke server's handlers log
// from request goroutines while the harness reads the capture.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *lockedBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, ln := range bytes.Split(b.buf.Bytes(), []byte("\n")) {
		if len(ln) > 0 {
			out = append(out, string(ln))
		}
	}
	return out
}

// Smoke boots a server on a loopback listener and exercises the whole API
// end-to-end over real HTTP: update (batch + libsvm), predict, estimate,
// topk, stats, checkpoint save → further training → restore → verify the
// restored state answers exactly like the checkpoint, then a short
// concurrent loadgen. It returns the first failure. CI runs this via
// `wmserve -smoke`; it is also a fast local sanity check after changes to
// the serving layer.
func Smoke(opt Options, verbose io.Writer) error {
	if verbose == nil {
		verbose = io.Discard
	}
	dir, err := os.MkdirTemp("", "wmserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if opt.CheckpointPath == "" {
		opt.CheckpointPath = filepath.Join(dir, "smoke.ckpt")
	}

	// Keep every trace (tail sampling at rate 1) so the span-tree assertion
	// below is deterministic, and capture structured logs at an adjustable
	// level so the level-respect check can flip it mid-run.
	opt.Trace.SampleRate = 1
	logLevel := new(slog.LevelVar)
	logLevel.Set(slog.LevelDebug)
	var logBuf lockedBuffer
	opt.Logger = slog.New(trace.NewLogHandler(
		slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: logLevel})))

	srv, err := New(opt)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close(); _ = srv.Close() }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Fprintf(verbose, "smoke: serving %s backend on %s\n", opt.Backend, base)

	// The debug surface boots on its own loopback socket, like -debug-addr.
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ds := &http.Server{Handler: srv.DebugMux()}
	go func() { _ = ds.Serve(dln) }()
	defer func() { _ = ds.Close() }()
	debugBase := "http://" + dln.Addr().String()

	post := func(path string, req, resp interface{}) error {
		blob, err := json.Marshal(req)
		if err != nil {
			return err
		}
		r, err := client.Post(base+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: HTTP %d: %s", path, r.StatusCode, body)
		}
		if resp != nil {
			return json.Unmarshal(body, resp)
		}
		return nil
	}
	get := func(path string, resp interface{}) error {
		r, err := client.Get(base + path)
		if err != nil {
			return err
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: HTTP %d: %s", path, r.StatusCode, body)
		}
		return json.Unmarshal(body, resp)
	}

	// Train on a generated stream, batched.
	gen := datagen.RCV1Like(17)
	data := gen.Take(2048)
	var up UpdateResponse
	if err := post("/v1/update", UpdateRequest{Examples: toWire(data)}, &up); err != nil {
		return err
	}
	if up.Applied != len(data) {
		return fmt.Errorf("update applied %d, want %d", up.Applied, len(data))
	}
	// Single example and libsvm forms.
	if err := post("/v1/update", UpdateRequest{
		Example: &ExampleJSON{LibSVM: "+1 3:0.5 17:1.25 # comment"},
	}, &up); err != nil {
		return err
	}
	// Malformed input must be a 400, not a 500 or a poisoned model.
	if err := post("/v1/update", UpdateRequest{
		Example: &ExampleJSON{LibSVM: "banana 3:0.5"},
	}, nil); err == nil {
		return fmt.Errorf("malformed libsvm must be rejected")
	}

	probe := gen.Next().X
	var pr PredictResponse
	if err := post("/v1/predict", PredictRequest{X: vecWire(probe)}, &pr); err != nil {
		return err
	}
	if pr.Label != 1 && pr.Label != -1 {
		return fmt.Errorf("predict label %d", pr.Label)
	}

	// Force the sharded snapshot current before reading it back.
	if err := post("/v1/sync", struct{}{}, nil); err != nil {
		return err
	}
	var top TopKResponse
	if err := get("/v1/topk?k=8", &top); err != nil {
		return err
	}
	if len(top.Features) == 0 {
		return fmt.Errorf("topk returned no features after %d examples", len(data))
	}

	// Checkpoint → divergent training → restore must return to the
	// checkpointed answers exactly.
	heavy := top.Features[0].I
	var before EstimateResponse
	if err := get(fmt.Sprintf("/v1/estimate?i=%d", heavy), &before); err != nil {
		return err
	}
	if err := post("/v1/checkpoint", CheckpointRequest{Action: "save"}, nil); err != nil {
		return err
	}
	if err := post("/v1/update", UpdateRequest{Examples: toWire(gen.Take(512))}, nil); err != nil {
		return err
	}
	if err := post("/v1/checkpoint", CheckpointRequest{Action: "restore"}, nil); err != nil {
		return err
	}
	var after EstimateResponse
	if err := get(fmt.Sprintf("/v1/estimate?i=%d", heavy), &after); err != nil {
		return err
	}
	if before.Weights[0] != after.Weights[0] {
		return fmt.Errorf("restore did not reproduce checkpoint: estimate(%d) %v != %v",
			heavy, after.Weights[0], before.Weights[0])
	}
	fmt.Fprintf(verbose, "smoke: checkpoint round-trip reproduced estimate(%d) = %g\n",
		heavy, after.Weights[0].W)

	var st StatsResponse
	if err := get("/v1/stats", &st); err != nil {
		return err
	}
	if st.Updates == 0 || st.Steps == 0 {
		return fmt.Errorf("stats did not count updates: %+v", st)
	}
	if st.UptimeSeconds <= 0 {
		return fmt.Errorf("stats reported non-positive uptime: %+v", st)
	}

	// Concurrent loadgen against the same live server.
	report, err := RunLoadgen(LoadgenOptions{
		TargetURL: base, Clients: 4, Examples: 4096, Batch: 64, Seed: 99,
	})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	if report.UpdatesPerSec <= 0 {
		return fmt.Errorf("loadgen reported no throughput")
	}
	fmt.Fprintf(verbose, "smoke: loadgen %d examples at %.0f updates/sec (p99 update %.2f ms)\n",
		report.Examples, report.UpdatesPerSec, report.Update.P99Ms)

	// Binary hot protocol leg, over a real socket against the same live
	// server: update, predict, estimate, ping, plus the error model (a
	// payload-level rejection must not kill the connection). The predict
	// answer must agree with the JSON path bit-for-bit — the same model is
	// behind both protocols.
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.ServeBin(bln) }()
	defer func() { _ = bln.Close() }()
	bcl, err := wire.Dial(bln.Addr().String(), 10*time.Second)
	if err != nil {
		return fmt.Errorf("binary dial: %w", err)
	}
	defer bcl.Close()
	binBatch := gen.Take(256)
	applied, _, err := bcl.Update(binBatch)
	if err != nil {
		return fmt.Errorf("binary update: %w", err)
	}
	if applied != len(binBatch) {
		return fmt.Errorf("binary update applied %d, want %d", applied, len(binBatch))
	}
	bm, bl, err := bcl.Predict(probe)
	if err != nil {
		return fmt.Errorf("binary predict: %w", err)
	}
	var jp PredictResponse
	if err := post("/v1/predict", PredictRequest{X: vecWire(probe)}, &jp); err != nil {
		return err
	}
	if jp.Margin != bm || jp.Label != bl {
		return fmt.Errorf("binary predict diverged from JSON: %v/%d vs %v/%d",
			bm, bl, jp.Margin, jp.Label)
	}
	if _, err := bcl.Estimate([]uint32{heavy}); err != nil {
		return fmt.Errorf("binary estimate: %w", err)
	}
	if err := bcl.Ping(); err != nil {
		return fmt.Errorf("binary ping: %w", err)
	}
	if _, _, err := bcl.Update([]stream.Example{{Y: 7}}); err == nil {
		return fmt.Errorf("binary path must reject label 7")
	}
	if err := bcl.Ping(); err != nil {
		return fmt.Errorf("binary connection died on a payload-level rejection: %w", err)
	}
	fmt.Fprintf(verbose, "smoke: binary protocol leg on %s (update/predict/estimate/ping, JSON-parity predict, 400-class survives)\n",
		bln.Addr())

	// Scrape /metrics after all that traffic: every line must parse as
	// Prometheus text and the serving/core families must be present.
	if err := scrapeMetrics(client, base, []string{
		"wmserve_http_in_flight_requests",
		"wmserve_http_requests_total",
		"wmserve_http_request_duration_seconds",
		"wmserve_http_body_bytes_total",
		"wmserve_predicts_total",
		"wmserve_estimates_total",
		"wmserve_uptime_seconds",
		"wmcore_updates_applied_total",
		"wmcore_update_batch_size",
		"wmcore_checkpoint_saves_total",
		"wmcore_checkpoint_restores_total",
		"wmcore_steps",
		"wmcore_memory_bytes",
		"wmbin_connections_total",
		"wmbin_connections_open",
		"wmbin_requests_total",
		"wmbin_request_duration_seconds",
		"wmbin_bytes_total",
		"wmbin_in_flight_requests",
	}, verbose); err != nil {
		return err
	}

	// One more update after the loadgen burst so a fresh update trace is
	// guaranteed to sit in the recent ring, then assert the flight recorder
	// serves its full span tree: route handler → backend apply → learner
	// update. This is the end-to-end proof that context propagation survives
	// the middleware, the backend call, and the batch path.
	if err := post("/v1/update", UpdateRequest{Examples: toWire(gen.Take(64))}, nil); err != nil {
		return err
	}
	var traces struct {
		Traces []trace.TraceJSON `json:"traces"`
	}
	if err := getFrom(client, debugBase, "/debug/traces", &traces); err != nil {
		return err
	}
	if len(traces.Traces) == 0 {
		return fmt.Errorf("/debug/traces returned no traces at sample rate 1")
	}
	found := false
	for _, tr := range traces.Traces {
		if tr.Root == "POST /v1/update" && hasSpanChain(tr.Spans, "POST /v1/update", "backend.apply", "learner.update") {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("/debug/traces holds no /v1/update trace with the handler→backend.apply→learner.update span chain (%d traces)",
			len(traces.Traces))
	}
	// The binary path roots its own spans; the same chain must hang under
	// bin/update (context propagation through the pipelined dispatch).
	foundBin := false
	for _, tr := range traces.Traces {
		if tr.Root == "bin/update" && hasSpanChain(tr.Spans, "bin/update", "backend.apply", "learner.update") {
			foundBin = true
			break
		}
	}
	if !foundBin {
		return fmt.Errorf("/debug/traces holds no bin/update trace with the backend.apply→learner.update span chain (%d traces)",
			len(traces.Traces))
	}
	var slowest struct {
		Traces []trace.TraceJSON `json:"traces"`
	}
	if err := getFrom(client, debugBase, "/debug/traces/slowest", &slowest); err != nil {
		return err
	}
	fmt.Fprintf(verbose, "smoke: /debug/traces served %d span trees (update chain verified), slowest ring %d\n",
		len(traces.Traces), len(slowest.Traces))

	// Structured-log assertions: every captured line is valid JSON; the
	// update request was logged at DEBUG with its route and a trace id (the
	// trace-aware handler at work).
	lines := logBuf.Lines()
	if len(lines) == 0 {
		return fmt.Errorf("no structured log lines captured at debug level")
	}
	loggedUpdate := false
	for _, ln := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			return fmt.Errorf("log line is not JSON: %q: %w", ln, err)
		}
		if rec["msg"] == "request" && rec["route"] == "POST /v1/update" && rec["level"] == "DEBUG" {
			tid, _ := rec["trace_id"].(string)
			if len(tid) != 32 {
				return fmt.Errorf("update request log carries trace_id %q, want 32 hex digits: %q", tid, ln)
			}
			loggedUpdate = true
		}
	}
	if !loggedUpdate {
		return fmt.Errorf("no DEBUG request log for /v1/update among %d lines", len(lines))
	}
	// Levels must be respected: raise the floor to WARN and verify a clean
	// request logs nothing.
	logLevel.Set(slog.LevelWarn)
	mark := logBuf.Len()
	var pr2 PredictResponse
	if err := post("/v1/predict", PredictRequest{X: vecWire(probe)}, &pr2); err != nil {
		return err
	}
	if logBuf.Len() != mark {
		return fmt.Errorf("a 200 predict logged below the WARN floor")
	}
	fmt.Fprintf(verbose, "smoke: structured logs: %d JSON lines, trace ids attached, level floor respected\n",
		len(lines))
	return nil
}

// getFrom fetches base+path and decodes the JSON response.
func getFrom(client *http.Client, base, path string, resp interface{}) error {
	r, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d: %s", path, r.StatusCode, body)
	}
	return json.Unmarshal(body, resp)
}

// hasSpanChain reports whether the rendered span forest contains the named
// ancestor→…→descendant chain (children may interleave with others).
func hasSpanChain(spans []trace.SpanTreeJSON, chain ...string) bool {
	if len(chain) == 0 {
		return true
	}
	for i := range spans {
		if spans[i].Name == chain[0] && hasSpanChain(spans[i].Children, chain[1:]...) {
			return true
		}
		// The chain may also start deeper in the tree.
		if hasSpanChain(spans[i].Children, chain...) {
			return true
		}
	}
	return false
}

// scrapeMetrics fetches /metrics, validates the exposition line-by-line,
// and requires each named family to be declared.
func scrapeMetrics(client *http.Client, base string, families []string, verbose io.Writer) error {
	r, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: HTTP %d", r.StatusCode)
	}
	seen, err := obs.CheckText(r.Body)
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	for _, fam := range families {
		if _, ok := seen[fam]; !ok {
			return fmt.Errorf("GET /metrics: family %q missing from the exposition (%d families present)",
				fam, len(seen))
		}
	}
	fmt.Fprintf(verbose, "smoke: /metrics parsed clean, %d families, all %d required present\n",
		len(seen), len(families))
	return nil
}
