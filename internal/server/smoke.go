package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"wmsketch/internal/datagen"
	"wmsketch/internal/obs"
)

// Smoke boots a server on a loopback listener and exercises the whole API
// end-to-end over real HTTP: update (batch + libsvm), predict, estimate,
// topk, stats, checkpoint save → further training → restore → verify the
// restored state answers exactly like the checkpoint, then a short
// concurrent loadgen. It returns the first failure. CI runs this via
// `wmserve -smoke`; it is also a fast local sanity check after changes to
// the serving layer.
func Smoke(opt Options, verbose io.Writer) error {
	if verbose == nil {
		verbose = io.Discard
	}
	dir, err := os.MkdirTemp("", "wmserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if opt.CheckpointPath == "" {
		opt.CheckpointPath = filepath.Join(dir, "smoke.ckpt")
	}

	srv, err := New(opt)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close(); _ = srv.Close() }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Fprintf(verbose, "smoke: serving %s backend on %s\n", opt.Backend, base)

	post := func(path string, req, resp interface{}) error {
		blob, err := json.Marshal(req)
		if err != nil {
			return err
		}
		r, err := client.Post(base+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: HTTP %d: %s", path, r.StatusCode, body)
		}
		if resp != nil {
			return json.Unmarshal(body, resp)
		}
		return nil
	}
	get := func(path string, resp interface{}) error {
		r, err := client.Get(base + path)
		if err != nil {
			return err
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: HTTP %d: %s", path, r.StatusCode, body)
		}
		return json.Unmarshal(body, resp)
	}

	// Train on a generated stream, batched.
	gen := datagen.RCV1Like(17)
	data := gen.Take(2048)
	var up UpdateResponse
	if err := post("/v1/update", UpdateRequest{Examples: toWire(data)}, &up); err != nil {
		return err
	}
	if up.Applied != len(data) {
		return fmt.Errorf("update applied %d, want %d", up.Applied, len(data))
	}
	// Single example and libsvm forms.
	if err := post("/v1/update", UpdateRequest{
		Example: &ExampleJSON{LibSVM: "+1 3:0.5 17:1.25 # comment"},
	}, &up); err != nil {
		return err
	}
	// Malformed input must be a 400, not a 500 or a poisoned model.
	if err := post("/v1/update", UpdateRequest{
		Example: &ExampleJSON{LibSVM: "banana 3:0.5"},
	}, nil); err == nil {
		return fmt.Errorf("malformed libsvm must be rejected")
	}

	probe := gen.Next().X
	var pr PredictResponse
	if err := post("/v1/predict", PredictRequest{X: vecWire(probe)}, &pr); err != nil {
		return err
	}
	if pr.Label != 1 && pr.Label != -1 {
		return fmt.Errorf("predict label %d", pr.Label)
	}

	// Force the sharded snapshot current before reading it back.
	if err := post("/v1/sync", struct{}{}, nil); err != nil {
		return err
	}
	var top TopKResponse
	if err := get("/v1/topk?k=8", &top); err != nil {
		return err
	}
	if len(top.Features) == 0 {
		return fmt.Errorf("topk returned no features after %d examples", len(data))
	}

	// Checkpoint → divergent training → restore must return to the
	// checkpointed answers exactly.
	heavy := top.Features[0].I
	var before EstimateResponse
	if err := get(fmt.Sprintf("/v1/estimate?i=%d", heavy), &before); err != nil {
		return err
	}
	if err := post("/v1/checkpoint", CheckpointRequest{Action: "save"}, nil); err != nil {
		return err
	}
	if err := post("/v1/update", UpdateRequest{Examples: toWire(gen.Take(512))}, nil); err != nil {
		return err
	}
	if err := post("/v1/checkpoint", CheckpointRequest{Action: "restore"}, nil); err != nil {
		return err
	}
	var after EstimateResponse
	if err := get(fmt.Sprintf("/v1/estimate?i=%d", heavy), &after); err != nil {
		return err
	}
	if before.Weights[0] != after.Weights[0] {
		return fmt.Errorf("restore did not reproduce checkpoint: estimate(%d) %v != %v",
			heavy, after.Weights[0], before.Weights[0])
	}
	fmt.Fprintf(verbose, "smoke: checkpoint round-trip reproduced estimate(%d) = %g\n",
		heavy, after.Weights[0].W)

	var st StatsResponse
	if err := get("/v1/stats", &st); err != nil {
		return err
	}
	if st.Updates == 0 || st.Steps == 0 {
		return fmt.Errorf("stats did not count updates: %+v", st)
	}
	if st.UptimeSeconds <= 0 {
		return fmt.Errorf("stats reported non-positive uptime: %+v", st)
	}

	// Concurrent loadgen against the same live server.
	report, err := RunLoadgen(LoadgenOptions{
		TargetURL: base, Clients: 4, Examples: 4096, Batch: 64, Seed: 99,
	})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	if report.UpdatesPerSec <= 0 {
		return fmt.Errorf("loadgen reported no throughput")
	}
	fmt.Fprintf(verbose, "smoke: loadgen %d examples at %.0f updates/sec (p99 update %.2f ms)\n",
		report.Examples, report.UpdatesPerSec, report.Update.P99Ms)

	// Scrape /metrics after all that traffic: every line must parse as
	// Prometheus text and the serving/core families must be present.
	if err := scrapeMetrics(client, base, []string{
		"wmserve_http_in_flight_requests",
		"wmserve_http_requests_total",
		"wmserve_http_request_duration_seconds",
		"wmserve_http_body_bytes_total",
		"wmserve_predicts_total",
		"wmserve_estimates_total",
		"wmserve_uptime_seconds",
		"wmcore_updates_applied_total",
		"wmcore_update_batch_size",
		"wmcore_checkpoint_saves_total",
		"wmcore_checkpoint_restores_total",
		"wmcore_steps",
		"wmcore_memory_bytes",
	}, verbose); err != nil {
		return err
	}
	return nil
}

// scrapeMetrics fetches /metrics, validates the exposition line-by-line,
// and requires each named family to be declared.
func scrapeMetrics(client *http.Client, base string, families []string, verbose io.Writer) error {
	r, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: HTTP %d", r.StatusCode)
	}
	seen, err := obs.CheckText(r.Body)
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	for _, fam := range families {
		if _, ok := seen[fam]; !ok {
			return fmt.Errorf("GET /metrics: family %q missing from the exposition (%d families present)",
				fam, len(seen))
		}
	}
	fmt.Fprintf(verbose, "smoke: /metrics parsed clean, %d families, all %d required present\n",
		len(seen), len(families))
	return nil
}
