package server

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"wmsketch/internal/obs"
	"wmsketch/internal/trace"
	"wmsketch/internal/wire"
)

// Serving instrumentation. Every HTTP route is registered through
// Server.handle, which pre-resolves that route's instrument handles at
// registration time — the per-request path touches only atomics (obs's
// zero-allocation contract) plus the two small wrapper structs every
// middleware needs anyway. The same registry also carries the core
// training/checkpoint families and, in cluster mode, the gossip families
// (cluster.Config.Registry), so GET /metrics is one coherent exposition
// for the whole process.

// serverMetrics holds the process registry and the pre-registered
// serving/core handles. Immutable after newServerMetrics.
type serverMetrics struct {
	reg *obs.Registry

	inFlight  *obs.Gauge
	requests  *obs.CounterVec   // {route, code class}
	errors    *obs.CounterVec   // {route}; 5xx responses and handler panics
	latency   *obs.HistogramVec // {route}
	bodyBytes *obs.CounterVec   // {route, dir}

	updatesApplied *obs.Counter
	batchSize      *obs.Histogram
	predicts       *obs.Counter
	estimates      *obs.Counter

	saves      *obs.Counter
	restores   *obs.Counter
	saveDur    *obs.Histogram
	restoreDur *obs.Histogram
	refreshes  *obs.Counter

	// bin carries the binary hot protocol families (binproto.go); they are
	// registered unconditionally so the exposition is stable whether or not
	// a binary listener is running.
	bin binMetrics
}

// binOpInstruments are one binary op's pre-resolved handles, the analog of
// routeInstruments: dispatch and instrumentation share one table, so an op
// cannot be served uninstrumented.
type binOpInstruments struct {
	dur      *obs.Histogram
	statuses [3]*obs.Counter // indexed by wire status code
}

func (oi *binOpInstruments) status(st byte) *obs.Counter {
	if int(st) >= len(oi.statuses) {
		st = 2
	}
	return oi.statuses[st]
}

// binStatusLabels are the status-label values, indexed by wire status code.
var binStatusLabels = [3]string{"ok", "bad_request", "error"}

// binMetrics holds the wmbin_* families. Immutable after newServerMetrics.
type binMetrics struct {
	connsTotal *obs.Counter
	connsOpen  *obs.Gauge
	connErrors *obs.Counter
	inFlight   *obs.Gauge
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	requests   *obs.CounterVec   // {op, status}
	duration   *obs.HistogramVec // {op}

	ops map[byte]*binOpInstruments
}

func (m *binMetrics) register(reg *obs.Registry) {
	m.connsTotal = reg.Counter("wmbin_connections_total",
		"binary-protocol connections accepted")
	m.connsOpen = reg.Gauge("wmbin_connections_open",
		"binary-protocol connections currently open")
	m.connErrors = reg.Counter("wmbin_connection_errors_total",
		"connections failed at the frame level (bad handshake, CRC mismatch, write timeout)")
	m.inFlight = reg.Gauge("wmbin_in_flight_requests",
		"binary requests currently executing")
	bytes := reg.CounterVec("wmbin_bytes_total",
		"frame bytes read (in) and written (out)", "dir")
	m.bytesIn = bytes.With("in")
	m.bytesOut = bytes.With("out")
	m.requests = reg.CounterVec("wmbin_requests_total",
		"binary requests completed, by op and status", "op", "status")
	m.duration = reg.HistogramVec("wmbin_request_duration_seconds",
		"binary request wall time from dispatch to response queue",
		obs.LatencyBuckets, "op")
	m.ops = make(map[byte]*binOpInstruments)
	for _, op := range []byte{wire.OpUpdate, wire.OpPredict, wire.OpEstimate, wire.OpPing} {
		name := wire.OpName(op)
		oi := &binOpInstruments{dur: m.duration.With(name)}
		for st, label := range binStatusLabels {
			oi.statuses[st] = m.requests.With(name, label)
		}
		m.ops[op] = oi
	}
}

// op returns the pre-resolved instruments for one op.
func (m *binMetrics) op(op byte) *binOpInstruments { return m.ops[op] }

// newServerMetrics registers the serving and core families and the
// backend-sourced gauges. It reads backend state through s.withBackend, so
// a scrape can never race a checkpoint restore's backend swap.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.inFlight = reg.Gauge("wmserve_http_in_flight_requests",
		"requests currently being handled")
	m.requests = reg.CounterVec("wmserve_http_requests_total",
		"requests completed, by route and status-code class", "route", "code")
	m.errors = reg.CounterVec("wmserve_http_request_errors_total",
		"requests that ended in a 5xx response or a handler panic", "route")
	m.latency = reg.HistogramVec("wmserve_http_request_duration_seconds",
		"request wall time from middleware entry to handler return",
		obs.LatencyBuckets, "route")
	m.bodyBytes = reg.CounterVec("wmserve_http_body_bytes_total",
		"request bytes read (in) and response bytes written (out)", "route", "dir")

	m.updatesApplied = reg.Counter("wmcore_updates_applied_total",
		"training examples applied to the backend")
	m.batchSize = reg.Histogram("wmcore_update_batch_size",
		"examples per applied update batch", obs.BatchBuckets)
	m.predicts = reg.Counter("wmserve_predicts_total", "predict queries answered")
	m.estimates = reg.Counter("wmserve_estimates_total", "weight estimates answered")

	m.saves = reg.Counter("wmcore_checkpoint_saves_total", "checkpoints written")
	m.restores = reg.Counter("wmcore_checkpoint_restores_total",
		"backend swaps from serialized state (file restore and upload)")
	m.saveDur = reg.Histogram("wmcore_checkpoint_save_duration_seconds",
		"checkpoint serialization and atomic rename", obs.LatencyBuckets)
	m.restoreDur = reg.Histogram("wmcore_checkpoint_restore_duration_seconds",
		"backend reconstruction from serialized state", obs.LatencyBuckets)
	m.refreshes = reg.Counter("wmcore_snapshot_refreshes_total",
		"sharded query-snapshot merges (refresh loop and /v1/sync)")

	m.bin.register(reg)

	reg.GaugeFunc("wmcore_steps", "backend training step counter",
		func() float64 {
			var v int64
			s.withBackend(func(b learner) { v = b.Steps() })
			return float64(v)
		})
	reg.GaugeFunc("wmcore_memory_bytes", "backend model memory footprint",
		func() float64 {
			var v int
			s.withBackend(func(b learner) { v = b.MemoryBytes() })
			return float64(v)
		})
	reg.GaugeFunc("wmserve_uptime_seconds", "seconds since the server was constructed",
		func() float64 { return time.Since(s.start).Seconds() })
	return m
}

// codeClasses are the status-code class labels, indexed by code/100 - 1.
var codeClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// routeInstruments are one route's pre-resolved handles.
type routeInstruments struct {
	codes    [5]*obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
}

func (m *serverMetrics) route(pattern string) *routeInstruments {
	ri := &routeInstruments{
		errors:   m.errors.With(pattern),
		latency:  m.latency.With(pattern),
		bytesIn:  m.bodyBytes.With(pattern, "in"),
		bytesOut: m.bodyBytes.With(pattern, "out"),
	}
	for i, class := range codeClasses {
		ri.codes[i] = m.requests.With(pattern, class)
	}
	return ri
}

// statusWriter captures the response status and byte count. It forwards
// Flush so streaming handlers (checkpoint download, cluster pull) keep
// their incremental writes.
type statusWriter struct {
	http.ResponseWriter
	code int
	n    int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers pattern on the mux wrapped in the metrics + tracing
// middleware and records it so tests can enumerate every instrumented
// route. Every request gets a span named after the route pattern; an
// incoming W3C traceparent header continues the caller's trace (this is
// how a gossip round on node A links to the push handler on node B). The
// span finishes — and the tail-sampling decision runs — after the status
// code is known, so 5xx responses and panics are always kept.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	ri := s.met.route(pattern)
	s.routePatterns = append(s.routePatterns, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Inc()
		began := time.Now()
		ctx := r.Context()
		if remote, ok := trace.Extract(r.Header); ok {
			ctx = trace.ContextWithRemote(ctx, remote)
		}
		ctx, span := s.tracer.StartSpan(ctx, pattern)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		cb := &countingReader{rc: r.Body}
		r.Body = cb
		logReq := func(level slog.Level, msg string, code int, elapsed time.Duration) {
			if !s.logger.Enabled(ctx, level) {
				return
			}
			s.logger.LogAttrs(ctx, level, msg,
				slog.String("route", pattern),
				slog.Int("code", code),
				slog.Duration("elapsed", elapsed),
				slog.Int64("bytes_in", cb.n),
				slog.Int64("bytes_out", sw.n))
		}
		defer func() {
			s.met.inFlight.Dec()
			elapsed := time.Since(began)
			ri.latency.ObserveDuration(elapsed)
			ri.bytesIn.Add(cb.n)
			ri.bytesOut.Add(sw.n)
			code := sw.code
			if p := recover(); p != nil {
				// A panicking handler (e.g. the pull stream aborting
				// mid-write) never completed a response; account it as a
				// server error and let net/http's recovery see the panic.
				code = http.StatusInternalServerError
				ri.codes[4].Inc()
				ri.errors.Inc()
				span.SetError()
				logReq(slog.LevelError, "handler panic", code, elapsed)
				span.Finish()
				panic(p)
			}
			if code == 0 {
				code = http.StatusOK
			}
			if cls := code/100 - 1; cls >= 0 && cls < len(ri.codes) {
				ri.codes[cls].Inc()
			}
			if code >= 500 {
				ri.errors.Inc()
				span.SetError()
			}
			// Log before Finish: the root's arena recycles once it finishes,
			// so the span context in ctx is only valid until then.
			if code >= 500 {
				logReq(slog.LevelWarn, "request failed", code, elapsed)
			} else {
				logReq(slog.LevelDebug, "request", code, elapsed)
			}
			span.Finish()
		}()
		h(sw, r)
	})
}

// countingReader counts bytes the handler reads off the request body.
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

// MetricsRegistry exposes the process registry (the /metrics source) for
// harnesses and tests.
func (s *Server) MetricsRegistry() *obs.Registry { return s.met.reg }

// Tracer exposes the server's flight recorder for harnesses and the debug
// endpoints.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// RoutePatterns lists every pattern registered through the instrumented
// mux, in registration order.
func (s *Server) RoutePatterns() []string {
	out := make([]string, len(s.routePatterns))
	copy(out, s.routePatterns)
	return out
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.reg.WritePrometheus(w)
}
