package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"wmsketch/internal/stream"
	"wmsketch/internal/wire"
)

// Binary hot protocol listener ("wmwire", SERVING.md "Binary protocol").
// The HTTP/JSON API is the compatibility surface; this path exists for the
// hot endpoints only — update, predict, estimate — where JSON encode/decode
// dominates the request cost. The differential conformance suite
// (conformance_test.go) pins this path to the JSON path: same validation,
// same error classes, bit-identical model state for the same requests.
//
// Connection model: every connection is pipelined. The read loop pulls
// frames and dispatches each to its own goroutine (bounded by
// BinOptions.MaxInFlight), so responses may complete out of order; the
// write loop serializes response frames back and coalesces flushes while
// more responses are queued. Request tags pair responses with requests —
// the server echoes them verbatim and never interprets them.

// BinOptions shapes per-connection behavior of the binary listener.
type BinOptions struct {
	// IdleTimeout closes a connection when no frame arrives for this long
	// (dead or silent clients must not pin server state forever, the same
	// reasoning as the cluster's -gossip-timeout). 0 selects 5 minutes;
	// negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds one flush of queued responses; a client that
	// stops reading is disconnected rather than allowed to wedge the
	// writer. 0 selects 30 seconds; negative disables.
	WriteTimeout time.Duration
	// MaxInFlight bounds concurrently-executing requests per connection;
	// the read loop stops pulling frames at the bound, so TCP backpressure
	// reaches the client. 0 selects 128.
	MaxInFlight int
}

func (o BinOptions) fill() BinOptions {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 128
	}
	return o
}

// binOpNames lists the binary dispatch table, in op order. Tests enumerate
// it the way TestMiddlewareCountsEveryRoute enumerates RoutePatterns, so
// an op can never be added without instrumentation.
var binOpNames = []string{
	wire.OpName(wire.OpUpdate),
	wire.OpName(wire.OpPredict),
	wire.OpName(wire.OpEstimate),
	wire.OpName(wire.OpPing),
}

// BinOpNames returns the binary dispatch table's op labels.
func (s *Server) BinOpNames() []string {
	out := make([]string, len(binOpNames))
	copy(out, binOpNames)
	return out
}

// binSpanName returns the span/metric route label for an op, the binary
// analog of an HTTP route pattern.
func binSpanName(op byte) string { return "bin/" + wire.OpName(op) }

// binBuf is a pooled frame buffer: request payloads on the way in,
// encoded response payloads on the way out.
type binBuf struct{ b []byte }

var binBufPool = sync.Pool{New: func() interface{} { return new(binBuf) }}

// Scratch pools for the synchronous (non-retaining) decode paths. Update
// batches are NOT pooled: sharded backends consume them asynchronously, so
// each update frame decodes into fresh memory (still only two allocations
// per frame — the example slice and one flat feature backing array).
var (
	binNNZPool = sync.Pool{New: func() interface{} { s := make([]int, 0, 256); return &s }}
	binVecPool = sync.Pool{New: func() interface{} { v := make(stream.Vector, 0, 256); return &v }}
	binIdxPool = sync.Pool{New: func() interface{} { s := make([]uint32, 0, 256); return &s }}
	binWtPool  = sync.Pool{New: func() interface{} { s := make([]float64, 0, 256); return &s }}
)

// ServeBin accepts binary-protocol connections on ln until the listener
// closes. Run it in its own goroutine next to the HTTP listener; a closed
// listener returns nil (the graceful-shutdown path), any other accept
// error is returned.
func (s *Server) ServeBin(ln net.Listener) error {
	opt := s.opt.Bin.fill()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinConn(conn, opt)
	}
}

// binConn is one pipelined connection's shared state.
type binConn struct {
	srv  *Server
	conn net.Conn
	opt  BinOptions
	ctx  context.Context

	out chan binResponse // handler goroutines → write loop

	// done closes when the connection is fatally broken (write timeout,
	// frame-level violation); handlers select on it so they can never
	// block on a dead write loop.
	done     chan struct{}
	doneOnce sync.Once

	sem chan struct{}  // bounds in-flight requests
	wg  sync.WaitGroup // in-flight handler goroutines
}

// binResponse is one encoded response awaiting the write loop. buf owns
// the payload bytes and returns to the pool after the write.
type binResponse struct {
	status byte
	tag    uint32
	buf    *binBuf
}

func (c *binConn) fail() {
	c.doneOnce.Do(func() {
		close(c.done)
		_ = c.conn.Close()
	})
}

// serveBinConn owns one connection: handshake, read loop, teardown. It
// returns only when every in-flight handler has finished and the write
// loop has exited, so an abrupt disconnect can never leak goroutines.
func (c *binConn) logAttrs() []slog.Attr {
	return []slog.Attr{slog.String("proto", "bin"), slog.String("remote", c.conn.RemoteAddr().String())}
}

func (s *Server) serveBinConn(conn net.Conn, opt BinOptions) {
	m := &s.met.bin
	m.connsTotal.Inc()
	m.connsOpen.Inc()
	defer m.connsOpen.Dec()

	c := &binConn{
		srv:  s,
		conn: conn,
		opt:  opt,
		ctx:  context.Background(),
		out:  make(chan binResponse, opt.MaxInFlight),
		done: make(chan struct{}),
		sem:  make(chan struct{}, opt.MaxInFlight),
	}
	defer c.fail() // idempotent close

	// Handshake, under the idle deadline: a connection that never sends
	// its preamble is torn down like any other dead client.
	if opt.IdleTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(opt.IdleTimeout))
	}
	if err := wire.ReadHandshake(conn); err != nil {
		m.connErrors.Inc()
		s.logger.LogAttrs(c.ctx, slog.LevelWarn, "bin handshake failed",
			append(c.logAttrs(), slog.String("error", err.Error()))...)
		return
	}
	if err := wire.WriteHandshake(conn); err != nil {
		m.connErrors.Inc()
		return
	}
	_ = conn.SetDeadline(time.Time{})

	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)

	br := bufio.NewReaderSize(conn, 64<<10)
	c.readLoop(br)

	// Teardown: wait for handlers (each either queued its response or saw
	// done), close the response stream, wait for the writer to drain it.
	c.wg.Wait()
	close(c.out)
	<-writerDone
	c.fail()
}

// readLoop pulls frames and dispatches handlers until the connection
// breaks, the peer closes, or the idle deadline fires.
func (c *binConn) readLoop(br *bufio.Reader) {
	m := &c.srv.met.bin
	pb := binBufPool.Get().(*binBuf)
	defer func() { binBufPool.Put(pb) }()
	for {
		if c.opt.IdleTimeout > 0 {
			_ = c.conn.SetReadDeadline(time.Now().Add(c.opt.IdleTimeout))
		}
		req, grown, err := wire.ReadRequestFrame(br, pb.b)
		pb.b = grown
		if err != nil {
			if !errors.Is(err, io.EOF) {
				m.connErrors.Inc()
				c.srv.logger.LogAttrs(c.ctx, slog.LevelWarn, "bin connection failed",
					append(c.logAttrs(), slog.String("error", err.Error()))...)
			}
			return
		}
		m.bytesIn.Add(int64(wire.FrameWireSize(len(req.Payload))))

		// Backpressure: stop pulling frames at MaxInFlight. done can only
		// fire here via a write-loop failure, in which case reading more
		// requests is pointless.
		select {
		case c.sem <- struct{}{}:
		case <-c.done:
			return
		}
		c.wg.Add(1)
		// The handler takes ownership of the payload buffer; the read
		// loop continues on a fresh pooled one.
		owned := pb
		pb = binBufPool.Get().(*binBuf)
		go c.handle(req.Op, req.Tag, owned)
	}
}

// handle decodes, executes, and queues the response for one request. It
// runs on its own goroutine so slow requests never head-of-line block the
// connection; the tag pairs the response with its request.
func (c *binConn) handle(op byte, tag uint32, pb *binBuf) {
	s := c.srv
	m := &s.met.bin
	defer func() {
		c.wg.Done()
		<-c.sem
	}()
	m.inFlight.Inc()
	began := time.Now()
	ctx, span := s.tracer.StartSpan(c.ctx, binSpanName(op))
	if hook := s.binHook; hook != nil {
		hook(op)
	}
	rb := binBufPool.Get().(*binBuf)
	status, payload := c.dispatch(ctx, op, pb.Payload(), rb.b[:0])
	rb.b = payload
	binBufPool.Put(pb)
	if status == wire.StatusError {
		span.SetError()
	}
	span.Finish()
	elapsed := time.Since(began)
	oi := m.op(op)
	oi.dur.ObserveDuration(elapsed)
	oi.status(status).Inc()
	m.inFlight.Dec()
	if status != wire.StatusOK && s.logger.Enabled(ctx, slog.LevelDebug) {
		s.logger.LogAttrs(ctx, slog.LevelDebug, "bin request rejected",
			append(c.logAttrs(), slog.String("op", wire.OpName(op)), slog.Int("status", int(status)))...)
	}
	select {
	case c.out <- binResponse{status: status, tag: tag, buf: rb}:
	case <-c.done:
		binBufPool.Put(rb)
	}
}

// Payload returns the buffer's current contents (the frame payload the
// read loop left in it).
func (b *binBuf) Payload() []byte { return b.b }

// dispatch executes one decoded request against the backend and encodes
// the response payload into dst. Decode failures are the client's fault
// (StatusBadRequest, the JSON path's 400); backend failures would be
// StatusError, but the current ops cannot fail server-side.
func (c *binConn) dispatch(ctx context.Context, op byte, payload, dst []byte) (byte, []byte) {
	s := c.srv
	switch op {
	case wire.OpUpdate:
		nnzp := binNNZPool.Get().(*[]int)
		batch, nnz, err := wire.DecodeUpdateRequest(payload, *nnzp)
		*nnzp = nnz[:0]
		binNNZPool.Put(nnzp)
		if err != nil {
			return wire.StatusBadRequest, wire.AppendErrorResponse(dst, err.Error())
		}
		steps := s.applyBatch(ctx, batch)
		return wire.StatusOK, wire.AppendUpdateResponse(dst, len(batch), steps)

	case wire.OpPredict:
		vp := binVecPool.Get().(*stream.Vector)
		x, err := wire.DecodePredictRequest(payload, *vp)
		if err != nil {
			*vp = x[:0]
			binVecPool.Put(vp)
			return wire.StatusBadRequest, wire.AppendErrorResponse(dst, err.Error())
		}
		margin := s.predict(ctx, x)
		*vp = x[:0]
		binVecPool.Put(vp)
		label := -1
		if margin > 0 {
			label = 1
		}
		s.met.predicts.Inc()
		return wire.StatusOK, wire.AppendPredictResponse(dst, margin, label)

	case wire.OpEstimate:
		ip := binIdxPool.Get().(*[]uint32)
		indices, err := wire.DecodeEstimateRequest(payload, *ip)
		if err != nil {
			*ip = indices[:0]
			binIdxPool.Put(ip)
			return wire.StatusBadRequest, wire.AppendErrorResponse(dst, err.Error())
		}
		wp := binWtPool.Get().(*[]float64)
		weights := (*wp)[:0]
		for _, idx := range indices {
			weights = append(weights, s.estimate(idx))
		}
		s.met.estimates.Add(int64(len(weights)))
		dst = wire.AppendEstimateResponse(dst, weights)
		*wp = weights[:0]
		binWtPool.Put(wp)
		*ip = indices[:0]
		binIdxPool.Put(ip)
		return wire.StatusOK, dst

	case wire.OpPing:
		return wire.StatusOK, dst

	default:
		// Unreachable: ReadRequestFrame validated the op. Kept as a
		// defensive response rather than a panic.
		return wire.StatusBadRequest, wire.AppendErrorResponse(dst, fmt.Sprintf("unknown op %d", op))
	}
}

// writeLoop serializes queued responses onto the connection, coalescing
// flushes: it writes while responses are queued and flushes once the
// queue momentarily drains, so a pipelined burst costs one syscall, not
// one per response. A write or flush failure (including the write
// deadline on a client that stopped reading) fails the connection.
func (c *binConn) writeLoop(writerDone chan struct{}) {
	defer close(writerDone)
	m := &c.srv.met.bin
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	broken := false
	writeOne := func(r binResponse) {
		if !broken {
			// Arm the deadline before the write, not only before the flush:
			// an oversized payload auto-flushes inside bufio, and must not
			// do so under a stale deadline from a previous flush.
			if c.opt.WriteTimeout > 0 {
				_ = c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
			}
			n, err := wire.WriteFrame(bw, r.status, r.tag, r.buf.b)
			m.bytesOut.Add(int64(n))
			if err != nil {
				broken = true
				m.connErrors.Inc()
				c.fail()
			}
		}
		r.buf.b = r.buf.b[:0]
		binBufPool.Put(r.buf)
	}
	flush := func() {
		if broken {
			return
		}
		if c.opt.WriteTimeout > 0 {
			_ = c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
		}
		if err := bw.Flush(); err != nil {
			broken = true
			m.connErrors.Inc()
			c.fail()
		}
	}
	for r := range c.out {
		writeOne(r)
	drain:
		for {
			select {
			case next, ok := <-c.out:
				if !ok {
					flush()
					return
				}
				writeOne(next)
			default:
				break drain
			}
		}
		flush()
	}
	flush()
}
