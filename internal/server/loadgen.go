package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wmsketch/internal/datagen"
	"wmsketch/internal/obs"
	"wmsketch/internal/stream"
	"wmsketch/internal/trace"
	"wmsketch/internal/wire"
)

// Protocol names for LoadgenOptions.Proto.
const (
	ProtoJSON   = "json"
	ProtoBinary = "binary"
)

// Load generator: drives a wmserve instance with N concurrent clients over
// generated classification streams and reports machine-readable throughput
// and latency, giving the ROADMAP's multi-core scaling question a
// repeatable, network-realistic harness (the wmbench -throughput numbers
// measure the learner alone; this measures the full serving path).

// LoadgenOptions configures a load-generation run.
type LoadgenOptions struct {
	// TargetURL is the server to drive (e.g. "http://127.0.0.1:8080"). Empty
	// boots an in-process server from the Server field on a loopback
	// listener and drives that.
	TargetURL string
	// Server configures the self-hosted server when TargetURL is empty.
	Server Options
	// Clients is the number of concurrent client goroutines (default 4).
	Clients int
	// Examples is the total number of training examples sent (default 50k).
	Examples int
	// Batch is examples per /v1/update request (default 64).
	Batch int
	// PredictEvery issues one /v1/predict per this many update requests on
	// each client (0 selects the default of 4; negative disables predicts).
	PredictEvery int
	// Seed drives the generated streams.
	Seed int64
	// Proto selects the wire protocol: ProtoJSON (default) drives the HTTP
	// API, ProtoBinary drives the binary hot protocol (SERVING.md "Binary
	// protocol") through the pipelining client.
	Proto string
	// InFlight is the binary client's pipeline depth: requests queued per
	// connection before a flush-and-drain (default 32). JSON ignores it.
	InFlight int
	// TargetBin is the remote binary listener address ("host:port") when
	// driving an existing server with Proto == ProtoBinary. Empty self-hosts,
	// like TargetURL.
	TargetBin string
}

func (o *LoadgenOptions) fill() {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Examples <= 0 {
		o.Examples = 50_000
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.PredictEvery == 0 {
		o.PredictEvery = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Proto == "" {
		o.Proto = ProtoJSON
	}
	if o.InFlight <= 0 {
		o.InFlight = 32
	}
}

// LatencySummary aggregates one endpoint's request latencies.
type LatencySummary struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// latencyBuckets spans 0.1ms to ~21s in 1.25× steps: every quantile the
// summary reports carries at most 25% relative bucket error, independent
// of how many requests the run makes (HDR-histogram-style fixed memory).
var latencyBuckets = obs.ExponentialBuckets(0.0001, 1.25, 56)

// latencyRecorder aggregates one endpoint's client-observed latencies.
// All clients share one recorder: the histogram is internally atomic, so
// recording never serializes the client goroutines, and memory stays
// O(buckets) no matter how many requests the run makes. The maximum is
// tracked exactly (a bucket bound would understate the worst case).
type latencyRecorder struct {
	hist  *obs.Histogram
	maxNs atomic.Int64
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{hist: obs.NewHistogram(latencyBuckets)}
}

func (l *latencyRecorder) observe(d time.Duration) {
	l.hist.ObserveDuration(d)
	for {
		cur := l.maxNs.Load()
		if int64(d) <= cur || l.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

func (l *latencyRecorder) summary() LatencySummary {
	n := l.hist.Count()
	if n == 0 {
		return LatencySummary{}
	}
	// Quantile interpolates within a bucket and can overshoot the true
	// maximum near the tail; the recorder knows the exact max, so clamp.
	maxMs := float64(l.maxNs.Load()) / 1e6
	ms := func(q float64) float64 { return math.Min(l.hist.Quantile(q)*1e3, maxMs) }
	return LatencySummary{
		Requests: int(n),
		P50Ms:    ms(0.50),
		P95Ms:    ms(0.95),
		P99Ms:    ms(0.99),
		MaxMs:    maxMs,
	}
}

// LoadgenReport is the machine-readable result document, recorded alongside
// BENCH_throughput.json in the perf trajectory.
type LoadgenReport struct {
	GOOS          string         `json:"goos"`
	GOARCH        string         `json:"goarch"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Timestamp     string         `json:"timestamp"`
	Backend       string         `json:"backend"`
	Workers       int            `json:"workers,omitempty"`
	Proto         string         `json:"proto"`
	InFlight      int            `json:"in_flight,omitempty"`
	Clients       int            `json:"clients"`
	Batch         int            `json:"batch"`
	Examples      int            `json:"examples"`
	WallSeconds   float64        `json:"wall_seconds"`
	UpdatesPerSec float64        `json:"updates_per_sec"`
	Update        LatencySummary `json:"update"`
	Predict       LatencySummary `json:"predict"`
	// LatencySource records how the percentiles were computed, so readers of
	// archived reports know the quantiles are bucket-interpolated.
	LatencySource string `json:"latency_source"`
	// SlowestTrace is the worst sampled span tree from the run's flight
	// recorder (self-hosted runs only): the latency table says how slow the
	// tail was, this says where the time went. CI archives it with the
	// report.
	SlowestTrace *trace.TraceJSON `json:"slowest_trace,omitempty"`
}

// RunLoadgen executes a load-generation run and returns its report. When
// self-hosting it also closes the server afterwards (without checkpointing:
// Server.CheckpointPath is honored as usual if set).
func RunLoadgen(opt LoadgenOptions) (*LoadgenReport, error) {
	opt.fill()
	switch opt.Proto {
	case ProtoJSON:
	case ProtoBinary:
		return runLoadgenBinary(opt)
	default:
		return nil, fmt.Errorf("loadgen: unknown proto %q", opt.Proto)
	}
	base := opt.TargetURL
	var shutdown func() error
	var srv *Server
	if base == "" {
		// The report embeds the run's slowest sampled trace; keep every
		// trace so "slowest" means slowest of the whole run, not of a 1%
		// sample. Tail-based recording costs a copy at root Finish — noise
		// next to the HTTP+JSON work this harness measures.
		if opt.Server.Trace.SampleRate == 0 {
			opt.Server.Trace.SampleRate = 1
		}
		var err error
		srv, err = New(opt.Server)
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		shutdown = func() error {
			_ = hs.Close()
			return srv.Close()
		}
		defer func() { _ = shutdown() }()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	perClient := opt.Examples / opt.Clients
	if perClient == 0 {
		perClient = 1
	}

	updateLat := newLatencyRecorder()
	predictLat := newLatencyRecorder()
	type clientStats struct {
		sent int
		err  error
	}
	stats := make([]clientStats, opt.Clients)
	// Generate every client's stream before starting the clock so the
	// report measures serving throughput, not datagen throughput (Zipf
	// sampling is expensive enough to dominate at binary-protocol speeds).
	inputs := loadgenInputs(opt, perClient)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			data, probes := inputs[c].data, inputs[c].probes
			reqs := 0
			for i := 0; i < len(data); i += opt.Batch {
				end := i + opt.Batch
				if end > len(data) {
					end = len(data)
				}
				d, err := postUpdate(client, base, data[i:end])
				if err != nil {
					st.err = err
					return
				}
				updateLat.observe(d)
				st.sent += end - i
				reqs++
				if opt.PredictEvery > 0 && reqs%opt.PredictEvery == 0 {
					probe := probes[reqs/opt.PredictEvery%len(probes)]
					d, err := postPredict(client, base, probe.X)
					if err != nil {
						st.err = err
						return
					}
					predictLat.observe(d)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	sent := 0
	for i := range stats {
		if stats[i].err != nil {
			return nil, fmt.Errorf("client %d: %w", i, stats[i].err)
		}
		sent += stats[i].sent
	}
	return assembleReport(opt, opt.TargetURL != "", sent, wall, updateLat, predictLat, srv), nil
}

// clientInput is one client's pre-generated workload.
type clientInput struct {
	data   []stream.Example
	probes []stream.Example
}

// loadgenInputs pre-generates each client's update stream and predict
// probes, seeded per client exactly as both protocol legs always did, so
// the JSON and binary legs replay identical workloads.
func loadgenInputs(opt LoadgenOptions, perClient int) []clientInput {
	inputs := make([]clientInput, opt.Clients)
	for c := range inputs {
		gen := datagen.RCV1Like(opt.Seed + int64(c))
		inputs[c] = clientInput{data: gen.Take(perClient), probes: gen.Take(64)}
	}
	return inputs
}

// assembleReport builds the report document shared by both protocol legs.
func assembleReport(opt LoadgenOptions, remote bool, sent int, wall time.Duration, updateLat, predictLat *latencyRecorder, srv *Server) *LoadgenReport {
	report := &LoadgenReport{
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Backend:       opt.Server.Backend,
		Workers:       opt.Server.Sharded.Workers,
		Proto:         opt.Proto,
		Clients:       opt.Clients,
		Batch:         opt.Batch,
		Examples:      sent,
		WallSeconds:   wall.Seconds(),
		UpdatesPerSec: float64(sent) / wall.Seconds(),
		Update:        updateLat.summary(),
		Predict:       predictLat.summary(),
		LatencySource: "obs_histogram",
	}
	if opt.Proto == ProtoBinary {
		report.InFlight = opt.InFlight
	}
	if remote {
		report.Backend = "remote"
		report.Workers = 0
	}
	if srv != nil {
		if rec := srv.Tracer().SlowestRecord(); rec != nil {
			tj := trace.RenderRecord(rec)
			report.SlowestTrace = &tj
		}
	}
	return report
}

// runLoadgenBinary is the binary-protocol leg: each client goroutine holds
// one pipelined connection and drives it in bursts of InFlight tagged
// update frames per flush, so framing cost amortizes across the window the
// way the protocol is designed to be used. Latency is measured from frame
// queueing to response arrival — honest pipeline latency, not bare service
// time.
func runLoadgenBinary(opt LoadgenOptions) (*LoadgenReport, error) {
	addr := opt.TargetBin
	var srv *Server
	if addr == "" {
		if opt.Server.Trace.SampleRate == 0 {
			opt.Server.Trace.SampleRate = 1
		}
		var err error
		srv, err = New(opt.Server)
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = srv.Close()
			return nil, err
		}
		go func() { _ = srv.ServeBin(ln) }()
		addr = ln.Addr().String()
		defer func() {
			_ = ln.Close()
			_ = srv.Close()
		}()
	}

	perClient := opt.Examples / opt.Clients
	if perClient == 0 {
		perClient = 1
	}
	updateLat := newLatencyRecorder()
	predictLat := newLatencyRecorder()
	type clientStats struct {
		sent int
		err  error
	}
	stats := make([]clientStats, opt.Clients)
	// Same pre-generation as the JSON leg: the timed window measures
	// serving, and both legs replay identical per-client streams.
	inputs := loadgenInputs(opt, perClient)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			cl, err := wire.Dial(addr, 10*time.Second)
			if err != nil {
				st.err = err
				return
			}
			defer cl.Close()

			data, probes := inputs[c].data, inputs[c].probes

			type slot struct {
				call   *wire.Call
				issued time.Time
				n      int
			}
			burst := make([]slot, 0, opt.InFlight)
			free := make([]*wire.Call, 0, opt.InFlight)
			var enc []byte
			flushWait := func() error {
				if len(burst) == 0 {
					return nil
				}
				if err := cl.Flush(); err != nil {
					return err
				}
				for i := range burst {
					status, resp, err := burst[i].call.Wait()
					if err != nil {
						return err
					}
					if status != wire.StatusOK {
						msg, derr := wire.DecodeErrorResponse(resp)
						if derr != nil {
							msg = derr.Error()
						}
						return fmt.Errorf("update rejected (status %d): %s", status, msg)
					}
					applied, _, err := wire.DecodeUpdateResponse(resp)
					if err != nil {
						return err
					}
					if applied != burst[i].n {
						return fmt.Errorf("update applied %d of %d examples", applied, burst[i].n)
					}
					updateLat.observe(time.Since(burst[i].issued))
					st.sent += burst[i].n
					free = append(free, burst[i].call)
				}
				burst = burst[:0]
				return nil
			}

			reqs, predicted := 0, 0
			for i := 0; i < len(data); i += opt.Batch {
				end := i + opt.Batch
				if end > len(data) {
					end = len(data)
				}
				enc, err = wire.AppendUpdateRequest(enc[:0], data[i:end])
				if err != nil {
					st.err = err
					return
				}
				var call *wire.Call
				if n := len(free); n > 0 {
					call = free[n-1]
					free = free[:n-1]
				}
				// WriteFrame copies into the client's write buffer, so enc is
				// free for reuse as soon as Go returns.
				call, err = cl.Go(wire.OpUpdate, enc, call)
				if err != nil {
					st.err = err
					return
				}
				burst = append(burst, slot{call: call, issued: time.Now(), n: end - i})
				reqs++
				if len(burst) == opt.InFlight {
					if err := flushWait(); err != nil {
						st.err = err
						return
					}
					// Same predict cadence as the JSON leg: one per
					// PredictEvery update requests, issued synchronously
					// between bursts.
					if opt.PredictEvery > 0 {
						for ; (predicted+1)*opt.PredictEvery <= reqs; predicted++ {
							probe := probes[predicted%len(probes)]
							t0 := time.Now()
							if _, _, err := cl.Predict(probe.X); err != nil {
								st.err = err
								return
							}
							predictLat.observe(time.Since(t0))
						}
					}
				}
			}
			if err := flushWait(); err != nil {
				st.err = err
				return
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	sent := 0
	for i := range stats {
		if stats[i].err != nil {
			return nil, fmt.Errorf("client %d: %w", i, stats[i].err)
		}
		sent += stats[i].sent
	}
	return assembleReport(opt, opt.TargetBin != "", sent, wall, updateLat, predictLat, srv), nil
}

// WriteReport writes the report as indented JSON to path.
func WriteReport(report *LoadgenReport, path string) error {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func toWire(batch []stream.Example) []ExampleJSON {
	out := make([]ExampleJSON, len(batch))
	for i, ex := range batch {
		fs := make([]FeatureJSON, len(ex.X))
		for j, f := range ex.X {
			fs[j] = FeatureJSON{I: f.Index, V: f.Value}
		}
		out[i] = ExampleJSON{Y: ex.Y, X: fs}
	}
	return out
}

func postJSON(client *http.Client, url string, body interface{}) (time.Duration, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return time.Since(start), nil
}

func postUpdate(client *http.Client, base string, batch []stream.Example) (time.Duration, error) {
	return postJSON(client, base+"/v1/update", UpdateRequest{Examples: toWire(batch)})
}

func vecWire(x stream.Vector) []FeatureJSON {
	fs := make([]FeatureJSON, len(x))
	for j, f := range x {
		fs[j] = FeatureJSON{I: f.Index, V: f.Value}
	}
	return fs
}

func postPredict(client *http.Client, base string, x stream.Vector) (time.Duration, error) {
	return postJSON(client, base+"/v1/predict", PredictRequest{X: vecWire(x)})
}
