package server

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
	"wmsketch/internal/wire"
)

// newBinServer boots a server with a binary listener on loopback. hook, if
// non-nil, is installed as the dispatch test hook before the listener
// starts (so its write happens-before every handler read).
func newBinServer(t *testing.T, backend string, bin BinOptions, hook func(op byte)) (*Server, string) {
	t.Helper()
	opt := testOptions(t, backend)
	opt.Bin = bin
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv.binHook = hook
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Close()
		t.Fatal(err)
	}
	go func() { _ = srv.ServeBin(ln) }()
	t.Cleanup(func() {
		_ = ln.Close()
		_ = srv.Close()
	})
	return srv, ln.Addr().String()
}

func dialBin(t *testing.T, addr string) *wire.Client {
	t.Helper()
	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

// TestBinDispatchCountsEveryOp is the binary analog of
// TestMiddlewareCountsEveryRoute: it drives every op in the dispatch table
// and asserts each recorded a status counter and a latency observation
// under its own op label — an op cannot be served uninstrumented.
func TestBinDispatchCountsEveryOp(t *testing.T) {
	srv, addr := newBinServer(t, BackendAWM, BinOptions{}, nil)
	cl := dialBin(t, addr)

	if _, _, err := cl.Update([]stream.Example{
		{Y: 1, X: stream.Vector{{Index: 3, Value: 1.5}}},
	}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if _, _, err := cl.Predict(stream.Vector{{Index: 3, Value: 1}}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if _, err := cl.Estimate([]uint32{3}); err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	reg := srv.MetricsRegistry()
	ops := srv.BinOpNames()
	if len(ops) != 4 {
		t.Fatalf("dispatch table has %d ops: %v", len(ops), ops)
	}
	for _, op := range ops {
		if v, _ := reg.Value("wmbin_requests_total", op, "ok"); v != 1 {
			t.Errorf("op %s: ok count %v, want 1", op, v)
		}
		if n, ok := reg.Value("wmbin_request_duration_seconds", op); !ok || n < 1 {
			t.Errorf("op %s: no latency observation", op)
		}
	}
	if v, _ := reg.Value("wmbin_connections_total"); v != 1 {
		t.Errorf("connections total %v, want 1", v)
	}
	if v, _ := reg.Value("wmbin_connections_open"); v != 1 {
		t.Errorf("connections open %v, want 1", v)
	}
	if v, _ := reg.Value("wmbin_in_flight_requests"); v != 0 {
		t.Errorf("in-flight gauge %v after all responses, want 0", v)
	}
	if v, _ := reg.Value("wmbin_bytes_total", "in"); v <= 0 {
		t.Error("no inbound bytes counted")
	}
	if v, _ := reg.Value("wmbin_bytes_total", "out"); v <= 0 {
		t.Error("no outbound bytes counted")
	}
	// The binary path shares the core counters with the JSON path.
	if v, _ := reg.Value("wmcore_updates_applied_total"); v != 1 {
		t.Errorf("updates applied %v, want 1", v)
	}
	if v, _ := reg.Value("wmserve_predicts_total"); v != 1 {
		t.Errorf("predicts %v, want 1", v)
	}
	if v, _ := reg.Value("wmserve_estimates_total"); v != 1 {
		t.Errorf("estimates %v, want 1", v)
	}
}

// TestBinBadRequestKeepsConnection pins the two-tier error model: a
// payload-level violation answers StatusBadRequest and the connection
// keeps serving.
func TestBinBadRequestKeepsConnection(t *testing.T) {
	srv, addr := newBinServer(t, BackendAWM, BinOptions{}, nil)
	cl := dialBin(t, addr)

	call, err := cl.Go(wire.OpUpdate, []byte{0x00}, nil) // zero examples
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	status, payload, err := call.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if status != wire.StatusBadRequest {
		t.Fatalf("status %d, want StatusBadRequest", status)
	}
	if msg, _ := wire.DecodeErrorResponse(payload); !strings.Contains(msg, "no examples") {
		t.Fatalf("error message %q", msg)
	}
	// Same connection still serves.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after bad request: %v", err)
	}
	if v, _ := srv.MetricsRegistry().Value("wmbin_requests_total", "update", "bad_request"); v != 1 {
		t.Errorf("bad_request count %v, want 1", v)
	}
	if v, _ := srv.MetricsRegistry().Value("wmcore_updates_applied_total"); v != 0 {
		t.Errorf("rejected update reached the backend (%v applied)", v)
	}
}

// TestBinFrameViolationClosesConnection pins the other tier: a frame-level
// violation (garbage after the handshake) is connection fatal.
func TestBinFrameViolationClosesConnection(t *testing.T) {
	srv, addr := newBinServer(t, BackendAWM, BinOptions{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after frame violation")
	}
	waitForValue(t, func() (float64, bool) {
		return srv.MetricsRegistry().Value("wmbin_connection_errors_total")
	}, 1)
}

// TestBinPipeliningOutOfOrder proves tag pairing: a hook stalls the first
// update so later requests complete first, and every response must still
// carry its own request's applied count.
func TestBinPipeliningOutOfOrder(t *testing.T) {
	var once sync.Once
	hook := func(op byte) {
		if op == wire.OpUpdate {
			once.Do(func() { time.Sleep(150 * time.Millisecond) })
		}
	}
	_, addr := newBinServer(t, BackendAWM, BinOptions{}, hook)
	cl := dialBin(t, addr)

	gen := datagen.RCV1Like(11)
	sizes := []int{5, 1, 2, 3, 4} // the size-5 request is the stalled one
	calls := make([]*wire.Call, len(sizes))
	var enc []byte
	for i, n := range sizes {
		var err error
		enc, err = wire.AppendUpdateRequest(enc[:0], gen.Take(n))
		if err != nil {
			t.Fatal(err)
		}
		if calls[i], err = cl.Go(wire.OpUpdate, enc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		status, payload, err := call.Wait()
		if err != nil || status != wire.StatusOK {
			t.Fatalf("request %d: status %d err %v", i, status, err)
		}
		applied, _, err := wire.DecodeUpdateResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if applied != sizes[i] {
			t.Fatalf("request %d: applied %d, want %d — response paired with the wrong tag",
				i, applied, sizes[i])
		}
	}
}

// TestBinPipeliningStress hammers the path the protocol exists for: many
// connections, each keeping a full window of tagged requests in flight,
// every response checked against its own request.
func TestBinPipeliningStress(t *testing.T) {
	const (
		conns    = 4
		inFlight = 64
		rounds   = 5
	)
	srv, addr := newBinServer(t, BackendAWM, BinOptions{MaxInFlight: inFlight}, nil)

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			gen := datagen.RCV1Like(int64(100 + c))
			var enc []byte
			for r := 0; r < rounds; r++ {
				calls := make([]*wire.Call, inFlight)
				sizes := make([]int, inFlight)
				for i := range calls {
					sizes[i] = 1 + (i+r)%7
					enc, err = wire.AppendUpdateRequest(enc[:0], gen.Take(sizes[i]))
					if err != nil {
						errs <- err
						return
					}
					if calls[i], err = cl.Go(wire.OpUpdate, enc, nil); err != nil {
						errs <- err
						return
					}
				}
				if err := cl.Flush(); err != nil {
					errs <- err
					return
				}
				for i, call := range calls {
					status, payload, err := call.Wait()
					if err != nil || status != wire.StatusOK {
						errs <- fmt.Errorf("conn %d round %d req %d: status %d err %v", c, r, i, status, err)
						return
					}
					applied, _, err := wire.DecodeUpdateResponse(payload)
					if err != nil {
						errs <- err
						return
					}
					if applied != sizes[i] {
						errs <- fmt.Errorf("conn %d round %d req %d: applied %d, want %d (tag mismatch)",
							c, r, i, applied, sizes[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < inFlight; i++ {
			want += 1 + (i+r)%7
		}
	}
	want *= conns
	if v, _ := srv.MetricsRegistry().Value("wmcore_updates_applied_total"); int(v) != want {
		t.Errorf("updates applied %v, want %d", v, want)
	}
	if v, _ := srv.MetricsRegistry().Value("wmbin_in_flight_requests"); v != 0 {
		t.Errorf("in-flight gauge %v after drain, want 0", v)
	}
}

// TestBinAbruptDisconnectNoLeak closes connections mid-pipeline (with a
// hook keeping handlers busy so responses are provably undelivered) and
// requires every server goroutine to exit.
func TestBinAbruptDisconnectNoLeak(t *testing.T) {
	hook := func(op byte) {
		if op == wire.OpUpdate {
			time.Sleep(20 * time.Millisecond)
		}
	}
	srv, addr := newBinServer(t, BackendAWM, BinOptions{}, hook)
	base := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteHandshake(conn); err != nil {
			t.Fatal(err)
		}
		if err := wire.ReadHandshake(conn); err != nil {
			t.Fatal(err)
		}
		enc, err := wire.AppendUpdateRequest(nil, []stream.Example{
			{Y: 1, X: stream.Vector{{Index: 1, Value: 1}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if _, err := wire.WriteFrame(conn, wire.OpUpdate, uint32(j), enc); err != nil {
				t.Fatal(err)
			}
		}
		_ = conn.Close() // abruptly, with all 8 responses outstanding
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		open, _ := srv.MetricsRegistry().Value("wmbin_connections_open")
		if runtime.NumGoroutine() <= base && open == 0 {
			if v, _ := srv.MetricsRegistry().Value("wmbin_in_flight_requests"); v != 0 {
				t.Fatalf("in-flight gauge %v after teardown", v)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after abrupt disconnects: %d > baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// TestBinIdleTimeout proves a silent client is disconnected at the idle
// deadline rather than pinning connection state forever.
func TestBinIdleTimeout(t *testing.T) {
	srv, addr := newBinServer(t, BackendAWM, BinOptions{IdleTimeout: 100 * time.Millisecond}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteHandshake(conn); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadHandshake(conn); err != nil {
		t.Fatal(err)
	}
	// Send nothing. The server must close within the idle deadline (plus
	// slack), observed as EOF on our read.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a silent connection open")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("disconnect took %v, idle timeout was 100ms", elapsed)
	}
	waitForValue(t, func() (float64, bool) {
		return srv.MetricsRegistry().Value("wmbin_connections_open")
	}, 0)
}

// waitForValue polls a metric until it reaches want or the deadline fires.
func waitForValue(t *testing.T, get func() (float64, bool), want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := get(); v == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	v, _ := get()
	t.Fatalf("metric stuck at %v, want %v", v, want)
}
