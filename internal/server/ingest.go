package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"strings"

	"wmsketch/internal/stream"
)

// Streaming bulk ingest. A JSON array of examples must be fully buffered
// and decoded before the first update applies, which caps practical batch
// sizes well below what one HTTP request could carry. Declaring a
// line-oriented content type on POST /v1/update switches the handler to a
// stream parser: examples apply in chunks as lines arrive, memory stays
// O(chunk), and a multi-hundred-megabyte backfill is one request.
//
//	Content-Type: application/x-ndjson   one ExampleJSON object per line
//	Content-Type: text/libsvm            raw libsvm lines ("1 3:0.5 7:1.2")
//
// Lines that are blank (either format) or #-comments (libsvm) are skipped.
// A malformed line aborts the stream with a 400 naming the line; examples
// already applied stay applied — the error body reports the count so the
// client can resume idempotently-enough for training purposes (online SGD
// has no exactly-once story to preserve).
const (
	// maxStreamIngestBytes caps one streaming ingest request body.
	maxStreamIngestBytes = 256 << 20
	// maxIngestLineBytes caps one line; a maximal accepted libsvm line
	// (MaxLibSVMFeatures features) fits with room to spare.
	maxIngestLineBytes = 64 << 20
	// ingestChunk is how many parsed examples are applied per backend
	// round-trip.
	ingestChunk = 512
)

// isStreamingIngest reports whether the update request declares a
// line-oriented body.
func isStreamingIngest(r *http.Request) bool {
	return ingestKind(r) != ""
}

// ingestKind classifies the declared content type: "ndjson", "libsvm", or
// "" for the default JSON document handling.
func ingestKind(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ""
	}
	switch mt {
	case "application/x-ndjson", "application/ndjson", "application/jsonl", "application/x-jsonlines":
		return "ndjson"
	case "text/libsvm", "application/x-libsvm":
		return "libsvm"
	}
	return ""
}

// handleStreamingUpdate consumes a line-oriented body, applying examples
// in chunks as they parse.
func (s *Server) handleStreamingUpdate(w http.ResponseWriter, r *http.Request) {
	kind := ingestKind(r)
	parse := parseNDJSONLine
	if kind == "libsvm" {
		parse = parseLibSVMIngestLine
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxIngestLineBytes)
	var (
		applied int64
		steps   int64
		lineNo  int
		batch   = make([]stream.Example, 0, ingestChunk)
	)
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if kind == "libsvm" && line[0] == '#' {
			continue
		}
		ex, err := parse(line)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				"%s line %d: %v (%d examples already applied)", kind, lineNo, err, applied)
			return
		}
		batch = append(batch, ex)
		if len(batch) == ingestChunk {
			steps = s.applyBatch(r.Context(), batch)
			applied += int64(len(batch))
			// The backend retains the batch (sharded workers consume it
			// asynchronously); a fresh slice per chunk, never a reused one.
			batch = make([]stream.Example, 0, ingestChunk)
		}
	}
	if err := sc.Err(); err != nil {
		// Oversize bodies surface here via MaxBytesReader, oversize lines
		// via bufio.ErrTooLong; both are client faults.
		writeError(w, http.StatusBadRequest,
			"%s stream after line %d: %v (%d examples already applied)", kind, lineNo, err, applied)
		return
	}
	if len(batch) > 0 {
		steps = s.applyBatch(r.Context(), batch)
		applied += int64(len(batch))
	}
	if applied == 0 {
		writeError(w, http.StatusBadRequest, "no examples")
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{Applied: int(applied), Steps: steps})
}

func parseNDJSONLine(line []byte) (stream.Example, error) {
	var e ExampleJSON
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return stream.Example{}, fmt.Errorf("bad example object: %v", err)
	}
	// Trailing garbage after the object would silently vanish otherwise.
	if dec.More() {
		return stream.Example{}, fmt.Errorf("trailing data after example object")
	}
	return toExample(&e)
}

func parseLibSVMIngestLine(line []byte) (stream.Example, error) {
	return stream.ParseLibSVMLine(strings.TrimSpace(string(line)))
}
