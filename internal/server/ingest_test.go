package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"wmsketch/internal/datagen"
)

func postBody(t *testing.T, url, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(blob)
}

// TestStreamingNDJSONIngest: one example object per line, applied in
// chunks, blank lines skipped.
func TestStreamingNDJSONIngest(t *testing.T) {
	for _, backend := range backends() {
		t.Run(backend, func(t *testing.T) {
			_, hs := newTestServer(t, backend)
			gen := datagen.RCV1Like(3)
			var b strings.Builder
			n := 700 // > ingestChunk, so the chunked path and the tail both run
			for i := 0; i < n; i++ {
				ex := gen.Next()
				blob, err := json.Marshal(exampleWire(ex))
				if err != nil {
					t.Fatal(err)
				}
				b.Write(blob)
				b.WriteString("\n")
				if i%50 == 0 {
					b.WriteString("\n") // blank lines are skipped
				}
			}
			code, body := postBody(t, hs.URL+"/v1/update", "application/x-ndjson", b.String())
			if code != http.StatusOK {
				t.Fatalf("HTTP %d: %s", code, body)
			}
			var up UpdateResponse
			if err := json.Unmarshal([]byte(body), &up); err != nil {
				t.Fatal(err)
			}
			if up.Applied != n || up.Steps != int64(n) {
				t.Fatalf("applied %d steps %d, want %d", up.Applied, up.Steps, n)
			}
		})
	}
}

// TestStreamingLibSVMIngest: raw libsvm lines with comments.
func TestStreamingLibSVMIngest(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	body := "# leading comment\n" +
		"+1 3:0.5 17:1.25\n" +
		"\n" +
		"-1 4:1.0 99:0.25 # trailing comment\n" +
		"+1 3:0.75\n"
	code, resp := postBody(t, hs.URL+"/v1/update", "text/libsvm", body)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, resp)
	}
	var up UpdateResponse
	if err := json.Unmarshal([]byte(resp), &up); err != nil {
		t.Fatal(err)
	}
	if up.Applied != 3 {
		t.Fatalf("applied %d, want 3", up.Applied)
	}
}

// TestStreamingIngestRejectsBadLines: a malformed line aborts with a 400
// that names the line and reports how many examples already applied.
func TestStreamingIngestRejectsBadLines(t *testing.T) {
	cases := []struct {
		name, ct, body, wantInErr string
	}{
		{"bad-json", "application/x-ndjson", "{\"y\":1,\"x\":[{\"i\":3,\"v\":1}]}\nnot json\n", "line 2"},
		{"unknown-field", "application/x-ndjson", "{\"y\":1,\"zzz\":4}\n", "line 1"},
		{"trailing-garbage", "application/x-ndjson", "{\"y\":1,\"x\":[{\"i\":3,\"v\":1}]} {\"y\":-1}\n", "trailing"},
		{"bad-label", "application/x-ndjson", "{\"y\":7,\"x\":[{\"i\":3,\"v\":1}]}\n", "label"},
		{"nan-value", "text/libsvm", "+1 3:nan\n", "line 1"},
		{"bad-libsvm", "text/libsvm", "+1 3:0.5\nbanana 1:2\n", "line 2"},
		{"empty", "application/x-ndjson", "\n\n", "no examples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, hs := newTestServer(t, BackendAWM)
			code, resp := postBody(t, hs.URL+"/v1/update", tc.ct, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d (want 400): %s", code, resp)
			}
			if !strings.Contains(resp, tc.wantInErr) {
				t.Fatalf("error %q does not mention %q", resp, tc.wantInErr)
			}
		})
	}
}

// TestStreamingIngestPartialApplyReported: examples before the bad line
// stay applied and the error says how many.
func TestStreamingIngestPartialApplyReported(t *testing.T) {
	srv, hs := newTestServer(t, BackendAWM)
	var b strings.Builder
	// ingestChunk examples apply as a full chunk, then one bad line.
	gen := datagen.RCV1Like(9)
	for i := 0; i < ingestChunk; i++ {
		blob, _ := json.Marshal(exampleWire(gen.Next()))
		b.Write(blob)
		b.WriteString("\n")
	}
	b.WriteString("garbage\n")
	code, resp := postBody(t, hs.URL+"/v1/update", "application/x-ndjson", b.String())
	if code != http.StatusBadRequest {
		t.Fatalf("HTTP %d: %s", code, resp)
	}
	if !strings.Contains(resp, fmt.Sprintf("%d examples already applied", ingestChunk)) {
		t.Fatalf("error does not report the applied count: %s", resp)
	}
	var steps int64
	srv.withBackend(func(b learner) { steps = b.Steps() })
	if steps != int64(ingestChunk) {
		t.Fatalf("backend steps %d, want %d", steps, ingestChunk)
	}
}

// TestStreamingIngestContentTypeDispatch: plain JSON documents keep the
// old semantics even when the body would also parse as one NDJSON line.
func TestStreamingIngestContentTypeDispatch(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	req := UpdateRequest{Example: &ExampleJSON{Y: 1, X: []FeatureJSON{{I: 3, V: 1}}}}
	blob, _ := json.Marshal(req)
	code, resp := postBody(t, hs.URL+"/v1/update", "application/json", string(blob))
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, resp)
	}
	// The same UpdateRequest document on the NDJSON path must fail: lines
	// are ExampleJSON objects, not UpdateRequest envelopes.
	code, _ = postBody(t, hs.URL+"/v1/update", "application/x-ndjson", string(blob))
	if code != http.StatusBadRequest {
		t.Fatalf("NDJSON path accepted an UpdateRequest envelope: HTTP %d", code)
	}
}

// TestIngestSizeCap: a body over the streaming cap must be cut off with an
// error, not buffered without bound. (The cap itself is 256 MB; this test
// fakes a small one by sending an oversize single line instead — the line
// cap trips first via bufio.ErrTooLong... which would need 64 MB of
// payload. Instead, verify the plain-JSON cap still applies to JSON
// bodies.)
func TestIngestSizeCap(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	big := bytes.Repeat([]byte("x"), maxRequestBytes+1024)
	code, _ := postBody(t, hs.URL+"/v1/update", "application/json", string(big))
	if code == http.StatusOK {
		t.Fatal("oversize JSON body accepted")
	}
}
