package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
	"wmsketch/internal/wire"
)

// Differential conformance suite: the binary protocol is only allowed to
// exist because it is observably the same API as HTTP/JSON. A seeded
// request generator drives the same mixed op sequence through both
// protocols against identically-seeded backends and requires:
//
//   - identical results per request — margins, labels, weights, and step
//     counters compare bit-identical (encoding/json round-trips float64
//     exactly, so bitwise equality is a fair bar for both paths);
//   - bit-identical checkpoint bytes afterwards — same model state, not
//     merely similar outputs;
//   - the same error class for malformed inputs (HTTP 400 on one side is
//     StatusBadRequest on the other), with the backend untouched by
//     rejected requests on both sides.
//
// CI runs this under -race (make test / go test -race ./...), so the suite
// also doubles as a concurrency check on the binary listener.

// jsonConformanceClient drives the HTTP path of the differential pair.
type jsonConformanceClient struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func (c *jsonConformanceClient) post(path string, body, out interface{}) (int, string) {
	c.t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	return c.postRaw(path, blob, out)
}

func (c *jsonConformanceClient) postRaw(path string, blob []byte, out interface{}) (int, string) {
	c.t.Helper()
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s: bad response %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func (c *jsonConformanceClient) update(batch []stream.Example) (int, int64) {
	var out UpdateResponse
	code, raw := c.post("/v1/update", UpdateRequest{Examples: toWire(batch)}, &out)
	if code != http.StatusOK {
		c.t.Fatalf("JSON update: HTTP %d %s", code, raw)
	}
	return out.Applied, out.Steps
}

func (c *jsonConformanceClient) predict(x stream.Vector) (float64, int) {
	var out PredictResponse
	code, raw := c.post("/v1/predict", PredictRequest{X: vecWire(x)}, &out)
	if code != http.StatusOK {
		c.t.Fatalf("JSON predict: HTTP %d %s", code, raw)
	}
	return out.Margin, out.Label
}

func (c *jsonConformanceClient) estimate(indices []uint32) []float64 {
	var out EstimateResponse
	code, raw := c.post("/v1/estimate", EstimateRequest{Indices: indices}, &out)
	if code != http.StatusOK {
		c.t.Fatalf("JSON estimate: HTTP %d %s", code, raw)
	}
	ws := make([]float64, len(out.Weights))
	for i, w := range out.Weights {
		if w.I != indices[i] {
			c.t.Fatalf("JSON estimate echoed index %d at position %d, want %d", w.I, i, indices[i])
		}
		ws[i] = w.W
	}
	return ws
}

// conformancePair boots the two identically-seeded servers and returns
// clients for both protocols plus the underlying servers (for checkpoint
// comparison).
func conformancePair(t *testing.T) (*jsonConformanceClient, *wire.Client, *Server, *Server) {
	t.Helper()
	jsrv, hs := newTestServer(t, BackendAWM)
	_ = jsrv
	bsrv, addr := newBinServer(t, BackendAWM, BinOptions{}, nil)
	jc := &jsonConformanceClient{t: t, base: hs.URL, hc: hs.Client()}
	bc := dialBin(t, addr)
	return jc, bc, jsrv, bsrv
}

// checkpointBytes serializes a server's backend, the strongest available
// statement of "same model state".
func checkpointBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	s.withBackend(func(b learner) { _, err = b.WriteTo(&buf) })
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

func TestConformanceDifferential(t *testing.T) {
	jc, bc, jsrv, bsrv := conformancePair(t)

	rng := rand.New(rand.NewSource(4242))
	gen := datagen.RCV1Like(4242)
	const requests = 400
	ops := 0
	for i := 0; i < requests; i++ {
		switch p := rng.Float64(); {
		case p < 0.55: // update
			batch := gen.Take(1 + rng.Intn(8))
			ja, js := jc.update(batch)
			ba, bs, err := bc.Update(batch)
			if err != nil {
				t.Fatalf("req %d: binary update: %v", i, err)
			}
			if ja != ba || js != bs {
				t.Fatalf("req %d: update diverged: JSON applied=%d steps=%d, binary applied=%d steps=%d",
					i, ja, js, ba, bs)
			}
		case p < 0.75: // predict
			x := gen.Take(1)[0].X
			jm, jl := jc.predict(x)
			bm, bl, err := bc.Predict(x)
			if err != nil {
				t.Fatalf("req %d: binary predict: %v", i, err)
			}
			if math.Float64bits(jm) != math.Float64bits(bm) || jl != bl {
				t.Fatalf("req %d: predict diverged: JSON %v/%d, binary %v/%d", i, jm, jl, bm, bl)
			}
		case p < 0.95: // estimate
			indices := make([]uint32, 1+rng.Intn(5))
			for j := range indices {
				indices[j] = uint32(rng.Intn(2048))
			}
			jw := jc.estimate(indices)
			bw, err := bc.Estimate(indices)
			if err != nil {
				t.Fatalf("req %d: binary estimate: %v", i, err)
			}
			if len(jw) != len(bw) {
				t.Fatalf("req %d: estimate lengths %d vs %d", i, len(jw), len(bw))
			}
			for j := range jw {
				if math.Float64bits(jw[j]) != math.Float64bits(bw[j]) {
					t.Fatalf("req %d: weight %d diverged: %v vs %v", i, j, jw[j], bw[j])
				}
			}
		default: // ping (no JSON analog; must simply succeed)
			if err := bc.Ping(); err != nil {
				t.Fatalf("req %d: ping: %v", i, err)
			}
		}
		ops++
	}
	if ops != requests {
		t.Fatalf("ran %d ops, want %d", ops, requests)
	}

	jb := checkpointBytes(t, jsrv)
	bb := checkpointBytes(t, bsrv)
	if !bytes.Equal(jb, bb) {
		t.Fatalf("checkpoint bytes diverged after identical request streams "+
			"(%d vs %d bytes) — the protocols are not serving the same model", len(jb), len(bb))
	}
}

// TestConformanceErrorClasses drives the same malformed request through
// both protocols and requires the same error class: HTTP 400 on the JSON
// side must be StatusBadRequest on the binary side, and neither rejection
// may touch the backend.
func TestConformanceErrorClasses(t *testing.T) {
	jc, bc, jsrv, bsrv := conformancePair(t)

	badUpdatePayload := func(build func() []byte) func() (byte, error) {
		return func() (byte, error) { return binDo(bc, wire.OpUpdate, build()) }
	}
	badEstimatePayload := func(build func() []byte) func() (byte, error) {
		return func() (byte, error) { return binDo(bc, wire.OpEstimate, build()) }
	}

	cases := []struct {
		name string
		json func() int
		bin  func() (byte, error)
	}{
		{
			name: "bad label",
			json: func() int {
				code, _ := jc.postRaw("/v1/update", []byte(`{"examples":[{"y":7,"x":[{"i":1,"v":1}]}]}`), nil)
				return code
			},
			bin: badUpdatePayload(func() []byte {
				p := []byte{0x01, 0x02} // one example, label byte 2
				p = append(p, 0x01)     // nnz 1
				p = append(p, 0x01)     // index 1
				var b [8]byte
				return append(p, b[:]...)
			}),
		},
		{
			name: "non-finite value",
			json: func() int {
				code, _ := jc.postRaw("/v1/update", []byte(`{"examples":[{"y":1,"x":[{"i":1,"v":1e999}]}]}`), nil)
				return code
			},
			bin: badUpdatePayload(func() []byte {
				p := []byte{0x01, 0x01, 0x01, 0x01}
				var b [8]byte
				bits := math.Float64bits(math.Inf(1))
				for i := 0; i < 8; i++ {
					b[i] = byte(bits >> (8 * i))
				}
				return append(p, b[:]...)
			}),
		},
		{
			name: "empty batch",
			json: func() int {
				code, _ := jc.postRaw("/v1/update", []byte(`{"examples":[]}`), nil)
				return code
			},
			bin: badUpdatePayload(func() []byte { return []byte{0x00} }),
		},
		{
			name: "trailing garbage",
			json: func() int {
				code, _ := jc.postRaw("/v1/update", []byte(`{"examples":[{"y":1,"x":[]}]} trailing`), nil)
				return code
			},
			bin: badUpdatePayload(func() []byte {
				p, err := wire.AppendUpdateRequest(nil, []stream.Example{{Y: 1}})
				if err != nil {
					t.Fatal(err)
				}
				return append(p, 0xEE)
			}),
		},
		{
			name: "empty estimate",
			json: func() int {
				code, _ := jc.postRaw("/v1/estimate", []byte(`{"indices":[]}`), nil)
				return code
			},
			bin: badEstimatePayload(func() []byte { return []byte{0x00} }),
		},
		{
			name: "oversize estimate",
			json: func() int {
				var sb strings.Builder
				sb.WriteString(`{"indices":[`)
				for i := 0; i <= maxEstimateBatch; i++ {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%d", i)
				}
				sb.WriteString(`]}`)
				code, _ := jc.postRaw("/v1/estimate", []byte(sb.String()), nil)
				return code
			},
			bin: badEstimatePayload(func() []byte {
				// Declared count over the limit; the decoder must reject on
				// the count alone, before any index bytes are needed.
				var p []byte
				v := uint64(wire.MaxEstimateIndices + 1)
				for v >= 0x80 {
					p = append(p, byte(v)|0x80)
					v >>= 7
				}
				return append(p, byte(v))
			}),
		},
	}

	for _, tc := range cases {
		code := tc.json()
		if code != http.StatusBadRequest {
			t.Errorf("%s: JSON path answered HTTP %d, want 400", tc.name, code)
		}
		status, err := tc.bin()
		if err != nil {
			t.Errorf("%s: binary path failed at the transport level: %v", tc.name, err)
			continue
		}
		if status != wire.StatusBadRequest {
			t.Errorf("%s: binary path answered status %d, want StatusBadRequest — "+
				"error classes diverge", tc.name, status)
		}
	}

	// Rejected requests must leave both backends in their initial (and
	// therefore still identical) state.
	for _, srv := range []*Server{jsrv, bsrv} {
		if v, _ := srv.MetricsRegistry().Value("wmcore_updates_applied_total"); v != 0 {
			t.Errorf("a rejected update reached a backend (%v applied)", v)
		}
	}
	if !bytes.Equal(checkpointBytes(t, jsrv), checkpointBytes(t, bsrv)) {
		t.Error("checkpoints diverged on rejected requests")
	}
}

// binDo sends one raw payload and waits for its status, without the typed
// client wrappers (which refuse to encode malformed requests).
func binDo(cl *wire.Client, op byte, payload []byte) (byte, error) {
	call, err := cl.Go(op, payload, nil)
	if err != nil {
		return 0, err
	}
	if err := cl.Flush(); err != nil {
		return 0, err
	}
	status, _, err := call.Wait()
	return status, err
}
