package server

import (
	"fmt"
	"net/http"
	"time"

	"wmsketch/internal/cluster"
	"wmsketch/internal/core"
	"wmsketch/internal/trace"
)

// Cluster wiring: wmserve nodes replicate model state peer-to-peer and
// serve queries from the merged view (CLUSTER.md). The server owns the
// cluster.Node, exposes its pull/push/status endpoints, and hands it a
// snapshotter that always reflects the *current* backend (checkpoint
// restores swap the backend under the node without re-wiring).

// ClusterOptions configures replication; it is enabled when Peers is
// non-empty.
type ClusterOptions struct {
	// Self is this node's unique id; conventionally its advertised URL.
	// Required when Peers is set.
	Self string
	// Peers are the base URLs of the gossip partners.
	Peers []string
	// Interval is the gossip cadence (0 → 2s, negative → manual rounds
	// only).
	Interval time.Duration
	// HistoryDepth is how many snapshot versions are retained as delta
	// bases (0 → 8).
	HistoryDepth int
	// GossipTimeout bounds one peer round's RPCs with a shared context
	// deadline (0 → 10s, negative disables the deadline).
	GossipTimeout time.Duration
	// Fanout is how many peers each gossip round samples (0 → ⌈log₂(N+1)⌉
	// floored at 3, negative → full sweep).
	Fanout int
	// OriginGCAfter is the idle age past which a departed origin's mix
	// weight starts decaying (0 → 15m, negative disables origin GC);
	// OriginGCDecay is the decay ramp width (0 → OriginGCAfter/2).
	OriginGCAfter time.Duration
	OriginGCDecay time.Duration
	// Chaos, when non-empty, is a fault-injection spec ("drop=0.1,dup=0.05,
	// corrupt=0.01,delay=50ms,delayp=0.5,seed=7") applied to this node's
	// *outbound* gossip transport — a testing aid, never for production.
	Chaos string
}

func (o *ClusterOptions) enabled() bool { return len(o.Peers) > 0 }

// backendSnapshotter adapts the server's swappable backend to
// core.Snapshotter.
type backendSnapshotter struct{ s *Server }

func (bs backendSnapshotter) ModelSnapshot() (core.Snapshot, error) {
	var sn core.Snapshot
	var err error
	bs.s.withBackend(func(b learner) {
		sr, ok := b.(core.Snapshotter)
		if !ok {
			err = fmt.Errorf("backend %T cannot snapshot its model", b)
			return
		}
		sn, err = sr.ModelSnapshot()
	})
	return sn, err
}

// startCluster builds and starts the cluster node. Called from New.
func (s *Server) startCluster() error {
	if s.opt.Cluster.Self == "" {
		return fmt.Errorf("server: cluster mode requires a node id (-node-id)")
	}
	var client *http.Client
	if s.opt.Cluster.Chaos != "" {
		chaos, err := cluster.ParseChaos(s.opt.Cluster.Chaos)
		if err != nil {
			return fmt.Errorf("server: -chaos: %w", err)
		}
		ct := cluster.NewChaosTransport(http.DefaultTransport, chaos)
		client = &http.Client{
			Timeout:   15 * time.Second,
			Transport: ct,
		}
		s.registerChaosMetrics(ct)
	}
	n, err := cluster.NewNode(cluster.Config{
		Self:  s.opt.Cluster.Self,
		Peers: s.opt.Cluster.Peers,
		Mix: core.MixOptions{
			Depth: s.opt.Config.Depth, Width: s.opt.Config.Width,
			Seed: s.opt.Config.Seed, HeapSize: s.opt.Config.HeapSize,
		},
		Local:         backendSnapshotter{s},
		Interval:      s.opt.Cluster.Interval,
		HistoryDepth:  s.opt.Cluster.HistoryDepth,
		AuthToken:     s.opt.AuthToken,
		Client:        client,
		RPCTimeout:    s.opt.Cluster.GossipTimeout,
		Fanout:        s.opt.Cluster.Fanout,
		OriginGCAfter: s.opt.Cluster.OriginGCAfter,
		OriginGCDecay: s.opt.Cluster.OriginGCDecay,
		Registry:      s.met.reg,
		Logger:        s.logger,
		Tracer:        s.tracer,
	})
	if err != nil {
		return err
	}
	s.cluster = n
	n.Start()
	return nil
}

// registerChaosMetrics surfaces the fault injector's counters as gauges
// (they are read live from the transport, not accumulated in the
// registry), so a chaos run's drop/corruption pressure shows up on the
// same /metrics page as the gossip traffic it distorts.
func (s *Server) registerChaosMetrics(ct *cluster.ChaosTransport) {
	reg := s.met.reg
	stat := func(pick func(cluster.ChaosStats) int64) func() float64 {
		return func() float64 { return float64(pick(ct.Stats())) }
	}
	reg.GaugeFunc("wmchaos_requests", "gossip RPCs seen by the fault injector",
		stat(func(st cluster.ChaosStats) int64 { return st.Requests }))
	reg.GaugeFunc("wmchaos_dropped", "gossip RPCs dropped by the fault injector",
		stat(func(st cluster.ChaosStats) int64 { return st.Dropped }))
	reg.GaugeFunc("wmchaos_duplicated", "gossip RPCs duplicated by the fault injector",
		stat(func(st cluster.ChaosStats) int64 { return st.Duplicated }))
	reg.GaugeFunc("wmchaos_corrupted", "gossip responses corrupted by the fault injector",
		stat(func(st cluster.ChaosStats) int64 { return st.Corrupted }))
	reg.GaugeFunc("wmchaos_delayed", "gossip RPCs delayed by the fault injector",
		stat(func(st cluster.ChaosStats) int64 { return st.Delayed }))
	reg.GaugeFunc("wmchaos_partitioned", "gossip RPCs refused by a simulated partition",
		stat(func(st cluster.ChaosStats) int64 { return st.Partitioned }))
}

// ClusterNode exposes the node for harnesses that drive gossip rounds
// deterministically (the cluster smoke test); nil when cluster mode is
// off.
func (s *Server) ClusterNode() *cluster.Node { return s.cluster }

// publishRestored pushes a just-restored backend into the cluster view
// (no-op outside cluster mode). Versions are example counts, so a restore
// to an *older* model cannot be published — the merged view keeps serving
// the newer pre-restore state, and the returned warning says so instead
// of letting the backend and the served view diverge silently.
func (s *Server) publishRestored() (warning string, err error) {
	if s.cluster == nil {
		return "", nil
	}
	_, published, err := s.cluster.PublishLocal()
	if err != nil {
		return "", err
	}
	if !published {
		return "restored model was not published to the cluster: its example count does not " +
			"exceed the version this node already announced, so cluster queries keep serving " +
			"the newer state (to roll a cluster back, restore on every node or rejoin under a fresh -node-id)", nil
	}
	return "", nil
}

// handleClusterPull answers a peer's digest with the frames it is missing,
// our own digest leading so the peer can push back what we lack.
func (s *Server) handleClusterPull(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "cluster mode is not enabled")
		return
	}
	var req cluster.PullRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Publish before answering so a pull always sees our latest local
	// state, even between gossip rounds.
	if _, _, err := s.cluster.PublishLocal(); err != nil {
		writeError(w, http.StatusInternalServerError, "publish: %v", err)
		return
	}
	frames := s.cluster.BuildFrames(req.Digest, true)
	w.Header().Set("Content-Type", "application/octet-stream")
	// Stamp the response stream with this handler's span — which continued
	// the puller's round trace via its traceparent header — so the apply on
	// the far side stays causally linked even off-HTTP.
	sc := trace.SpanContextOf(r.Context())
	if _, err := cluster.WriteFramesTraced(w, sc, frames); err != nil {
		// Mid-stream failure: abort the connection, the peer retries.
		panic(http.ErrAbortHandler)
	}
}

// handleClusterPush ingests frames a peer decided we are missing.
func (s *Server) handleClusterPush(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "cluster mode is not enabled")
		return
	}
	if !s.authorized(w, r) {
		return
	}
	frames, sc, err := cluster.ReadFramesTraced(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad frame stream: %v", err)
		return
	}
	// r.Context() already continues the pusher's round via traceparent; the
	// stream annotation is the fallback when the header was stripped.
	res := s.cluster.ApplyFramesCtx(trace.ContextWithRemote(r.Context(), sc), frames)
	writeJSON(w, http.StatusOK, cluster.PushResponse{
		Applied: res.Applied, Stale: res.Stale, Rejected: res.Rejected, Changed: res.Changed,
	})
}

// handleClusterStatus reports replication state: known origins and their
// versions, per-peer round health, and transfer counters.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "cluster mode is not enabled")
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Status())
}
