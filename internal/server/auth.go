package server

import (
	"crypto/subtle"
	"net/http"
	"strings"
)

// Bearer-token authorization for mutating endpoints. The model itself is
// readable by design (estimates, top-K, predictions), but anything that
// changes it — training updates, checkpoint swaps, cluster pushes — can be
// gated behind a shared token with -auth-token. Peers in an authenticated
// cluster must be configured with the same token, since gossip pushes
// state.

// authorized reports whether the request may hit a mutating endpoint,
// writing the 401 response itself when not. With no token configured every
// request is allowed.
func (s *Server) authorized(w http.ResponseWriter, r *http.Request) bool {
	if s.opt.AuthToken == "" {
		return true
	}
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) &&
		subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(s.opt.AuthToken)) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="wmserve"`)
	writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
	return false
}
