package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
)

func testOptions(t *testing.T, backend string) Options {
	t.Helper()
	return Options{
		Backend: backend,
		Config:  core.Config{Width: 512, Depth: 1, HeapSize: 64, Lambda: 1e-6, Seed: 7},
		Sharded: core.ShardedOptions{Workers: 2, SyncEvery: -1},
		// Tests drive /v1/sync explicitly; the background refresher would
		// make snapshot timing nondeterministic.
		RefreshInterval: -1,
		CheckpointPath:  filepath.Join(t.TempDir(), "test.ckpt"),
	}
}

func newTestServer(t *testing.T, backend string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testOptions(t, backend))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, hs
}

func doJSON(t *testing.T, method, url string, req, resp interface{}) int {
	t.Helper()
	var body *bytes.Reader
	if req != nil {
		blob, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(blob)
	} else {
		body = bytes.NewReader(nil)
	}
	hreq, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return r.StatusCode
}

func backends() []string { return []string{BackendSharded, BackendAWM, BackendWM} }

func TestServerEndToEnd(t *testing.T) {
	for _, backend := range backends() {
		t.Run(backend, func(t *testing.T) {
			_, hs := newTestServer(t, backend)
			gen := datagen.RCV1Like(5)
			data := gen.Take(1024)

			var up UpdateResponse
			if code := doJSON(t, "POST", hs.URL+"/v1/update", UpdateRequest{Examples: toWire(data)}, &up); code != 200 {
				t.Fatalf("update: HTTP %d", code)
			}
			if up.Applied != len(data) {
				t.Fatalf("applied %d, want %d", up.Applied, len(data))
			}
			if code := doJSON(t, "POST", hs.URL+"/v1/sync", struct{}{}, nil); code != 200 {
				t.Fatalf("sync: HTTP %d", code)
			}

			var pr PredictResponse
			probe := gen.Next().X
			if code := doJSON(t, "POST", hs.URL+"/v1/predict", PredictRequest{X: vecWire(probe)}, &pr); code != 200 {
				t.Fatalf("predict: HTTP %d", code)
			}
			if pr.Label != 1 && pr.Label != -1 {
				t.Fatalf("label %d", pr.Label)
			}

			var top TopKResponse
			if code := doJSON(t, "GET", hs.URL+"/v1/topk?k=8", nil, &top); code != 200 {
				t.Fatalf("topk: HTTP %d", code)
			}
			if len(top.Features) == 0 {
				t.Fatal("empty topk")
			}
			// TopK order: descending |weight|.
			for i := 1; i < len(top.Features); i++ {
				a, b := top.Features[i-1].W, top.Features[i].W
				if abs(a) < abs(b) {
					t.Fatalf("topk not sorted: |%g| < |%g|", a, b)
				}
			}

			var est EstimateResponse
			heavy := top.Features[0].I
			if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/estimate?i=%d", hs.URL, heavy), nil, &est); code != 200 {
				t.Fatalf("estimate: HTTP %d", code)
			}
			if est.Weights[0].W != top.Features[0].W {
				t.Fatalf("estimate %g != topk weight %g", est.Weights[0].W, top.Features[0].W)
			}
			var batch EstimateResponse
			if code := doJSON(t, "POST", hs.URL+"/v1/estimate",
				EstimateRequest{Indices: []uint32{heavy, 9999999}}, &batch); code != 200 {
				t.Fatalf("estimate batch: HTTP %d", code)
			}
			if len(batch.Weights) != 2 || batch.Weights[0].W != est.Weights[0].W {
				t.Fatalf("batch estimate mismatch: %+v", batch)
			}

			var st StatsResponse
			if code := doJSON(t, "GET", hs.URL+"/v1/stats", nil, &st); code != 200 {
				t.Fatalf("stats: HTTP %d", code)
			}
			if st.Backend != backend || st.Updates != int64(len(data)) || st.Steps == 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestServerCheckpointRestoreReproducesEstimates(t *testing.T) {
	for _, backend := range backends() {
		t.Run(backend, func(t *testing.T) {
			_, hs := newTestServer(t, backend)
			gen := datagen.RCV1Like(9)
			doJSON(t, "POST", hs.URL+"/v1/update", UpdateRequest{Examples: toWire(gen.Take(800))}, nil)
			doJSON(t, "POST", hs.URL+"/v1/sync", struct{}{}, nil)

			indices := []uint32{1, 2, 3, 5, 8, 13, 21, 34}
			var before EstimateResponse
			doJSON(t, "POST", hs.URL+"/v1/estimate", EstimateRequest{Indices: indices}, &before)

			var ck CheckpointResponse
			if code := doJSON(t, "POST", hs.URL+"/v1/checkpoint", CheckpointRequest{Action: "save"}, &ck); code != 200 {
				t.Fatalf("save: HTTP %d", code)
			}
			if ck.Bytes == 0 {
				t.Fatal("save reported 0 bytes")
			}

			// Diverge, then restore.
			doJSON(t, "POST", hs.URL+"/v1/update", UpdateRequest{Examples: toWire(gen.Take(400))}, nil)
			if code := doJSON(t, "POST", hs.URL+"/v1/checkpoint", CheckpointRequest{Action: "restore"}, nil); code != 200 {
				t.Fatalf("restore: HTTP %d", code)
			}

			var after EstimateResponse
			doJSON(t, "POST", hs.URL+"/v1/estimate", EstimateRequest{Indices: indices}, &after)
			for i := range indices {
				if before.Weights[i] != after.Weights[i] {
					t.Fatalf("estimate(%d): %v before, %v after restore",
						indices[i], before.Weights[i], after.Weights[i])
				}
			}
			// The restored backend must keep learning.
			var up UpdateResponse
			if code := doJSON(t, "POST", hs.URL+"/v1/update",
				UpdateRequest{Example: &ExampleJSON{Y: 1, X: []FeatureJSON{{I: 3, V: 1}}}}, &up); code != 200 {
				t.Fatalf("post-restore update: HTTP %d", code)
			}
		})
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	cases := []struct {
		name string
		path string
		body string
	}{
		{"empty-update", "/v1/update", `{}`},
		{"zero-label", "/v1/update", `{"example":{"y":0,"x":[{"i":1,"v":1}]}}`},
		{"bad-label", "/v1/update", `{"example":{"y":3,"x":[{"i":1,"v":1}]}}`},
		{"both-forms", "/v1/update", `{"example":{"y":1,"libsvm":"1 1:1"}}`},
		{"bad-libsvm", "/v1/update", `{"example":{"libsvm":"x y z"}}`},
		{"unknown-field", "/v1/update", `{"nope":1}`},
		{"bad-json", "/v1/predict", `{"x":`},
		{"bad-action", "/v1/checkpoint", `{"action":"frobnicate"}`},
		{"empty-estimate", "/v1/estimate", `{"indices":[]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// GET estimate without index; bad topk k.
	for _, url := range []string{hs.URL + "/v1/estimate", hs.URL + "/v1/topk?k=-2"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", url, resp.StatusCode)
		}
	}
	// Oversized body must be rejected, not buffered.
	huge := `{"example":{"libsvm":"` + strings.Repeat("1:1 ", maxRequestBytes/3) + `"}}`
	resp, err := http.Post(hs.URL+"/v1/update", "application/json", strings.NewReader(huge))
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("oversized body accepted")
		}
	}
}

func TestServerConcurrentClients(t *testing.T) {
	for _, backend := range []string{BackendSharded, BackendAWM} {
		t.Run(backend, func(t *testing.T) {
			_, hs := newTestServer(t, backend)
			gen := datagen.RCV1Like(11)
			data := gen.Take(1200)
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(off int) {
					defer wg.Done()
					for i := off * 300; i < (off+1)*300; i += 50 {
						blob, _ := json.Marshal(UpdateRequest{Examples: toWire(data[i : i+50])})
						resp, err := http.Post(hs.URL+"/v1/update", "application/json", bytes.NewReader(blob))
						if err != nil {
							errs <- err
							return
						}
						resp.Body.Close()
						if resp.StatusCode != 200 {
							errs <- fmt.Errorf("HTTP %d", resp.StatusCode)
							return
						}
					}
				}(c)
			}
			// Queries and checkpoints interleave with the updates.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					blob, _ := json.Marshal(PredictRequest{X: vecWire(data[i].X)})
					if resp, err := http.Post(hs.URL+"/v1/predict", "application/json", bytes.NewReader(blob)); err == nil {
						resp.Body.Close()
					}
					blob, _ = json.Marshal(CheckpointRequest{Action: "save"})
					if resp, err := http.Post(hs.URL+"/v1/checkpoint", "application/json", bytes.NewReader(blob)); err == nil {
						resp.Body.Close()
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			var st StatsResponse
			doJSON(t, "POST", hs.URL+"/v1/sync", struct{}{}, nil)
			doJSON(t, "GET", hs.URL+"/v1/stats", nil, &st)
			if st.Updates != 1200 {
				t.Errorf("updates %d, want 1200", st.Updates)
			}
		})
	}
}

func TestServerLibSVMPredict(t *testing.T) {
	_, hs := newTestServer(t, BackendWM)
	doJSON(t, "POST", hs.URL+"/v1/update",
		UpdateRequest{Example: &ExampleJSON{LibSVM: "+1 1:2.0 5:0.5"}}, nil)
	var viaJSON, viaLibSVM PredictResponse
	doJSON(t, "POST", hs.URL+"/v1/predict",
		PredictRequest{X: []FeatureJSON{{I: 1, V: 2}, {I: 5, V: 0.5}}}, &viaJSON)
	doJSON(t, "POST", hs.URL+"/v1/predict",
		PredictRequest{LibSVM: "1:2.0 5:0.5"}, &viaLibSVM)
	if viaJSON.Margin != viaLibSVM.Margin {
		t.Fatalf("libsvm predict margin %g != structured %g", viaLibSVM.Margin, viaJSON.Margin)
	}
}

func TestLoadgenSelfHosted(t *testing.T) {
	report, err := RunLoadgen(LoadgenOptions{
		Server:   testOptions(t, BackendSharded),
		Clients:  3,
		Examples: 900,
		Batch:    32,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Examples != 900 {
		t.Errorf("examples %d, want 900", report.Examples)
	}
	if report.UpdatesPerSec <= 0 || report.Update.Requests == 0 || report.Update.P99Ms <= 0 {
		t.Errorf("implausible report: %+v", report)
	}
	if report.Predict.Requests == 0 {
		t.Error("no predict requests recorded")
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(report, path); err != nil {
		t.Fatal(err)
	}
	var back LoadgenReport
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.UpdatesPerSec != report.UpdatesPerSec {
		t.Error("report did not round-trip")
	}
}

func TestSmoke(t *testing.T) {
	for _, backend := range backends() {
		opt := testOptions(t, backend)
		opt.CheckpointPath = "" // Smoke provisions its own temp path
		if err := Smoke(opt, nil); err != nil {
			t.Errorf("%s: %v", backend, err)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
