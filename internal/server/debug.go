package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the debug surface served on the -debug-addr listener
// (and booted by the smoke harness on a loopback socket): the Prometheus
// exposition, the net/http/pprof suite, and the flight recorder's trace
// endpoints. It is deliberately NOT part of the instrumented API mux — a
// debug scrape must never perturb the request metrics or the recorder it
// is inspecting.
//
//	GET /metrics               Prometheus text exposition
//	GET /debug/pprof/...       net/http/pprof suite
//	GET /debug/traces          recent kept traces, newest first
//	GET /debug/traces/slowest  slow/error ring, worst offenders first
func (s *Server) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.met.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.tracer.ServeRecent)
	mux.HandleFunc("GET /debug/traces/slowest", s.tracer.ServeSlowest)
	return mux
}
