package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// clusterPair boots n servers wired as a full mesh over httptest
// listeners, gossip driven manually.
func clusterServers(t *testing.T, n int, token string) ([]*Server, []*httptest.Server) {
	t.Helper()
	// Reserve listeners first so every node knows all URLs up front.
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range https {
		https[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + https[i].Listener.Addr().String()
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		opt := testOptions(t, BackendAWM)
		opt.AuthToken = token
		opt.Cluster = ClusterOptions{
			Self:     urls[i],
			Peers:    append(append([]string{}, urls[:i]...), urls[i+1:]...),
			Interval: -1,
		}
		srv, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		https[i].Config.Handler = srv
		https[i].Start()
	}
	t.Cleanup(func() {
		for i := range srvs {
			https[i].Close()
			_ = srvs[i].Close()
		}
	})
	return srvs, https
}

// TestClusterOverHTTPConverges: three real servers, disjoint training,
// gossip over the actual endpoints until every node serves the identical
// merged view.
func TestClusterOverHTTPConverges(t *testing.T) {
	srvs, https := clusterServers(t, 3, "")
	gen := datagen.RCV1Like(23)
	data := gen.Take(1800)
	for i, hs := range https {
		part := make([]stream.Example, 0, 600)
		for j := i; j < len(data); j += 3 {
			part = append(part, data[j])
		}
		if code := doJSON(t, "POST", hs.URL+"/v1/update", UpdateRequest{Examples: toWire(part)}, nil); code != 200 {
			t.Fatalf("node %d update: HTTP %d", i, code)
		}
		doJSON(t, "POST", hs.URL+"/v1/sync", struct{}{}, nil)
	}
	for round := 0; round < 3; round++ {
		for _, s := range srvs {
			s.ClusterNode().GossipOnce()
		}
	}
	// Every node must know all three origins at equal versions…
	ref := srvs[0].ClusterNode().Digest()
	if len(ref) != 3 {
		t.Fatalf("node 0 knows %d origins, want 3: %v", len(ref), ref)
	}
	for i, s := range srvs[1:] {
		d := s.ClusterNode().Digest()
		for k, v := range ref {
			if d[k] != v {
				t.Fatalf("node %d digest %v disagrees with node 0's %v", i+1, d, ref)
			}
		}
	}
	// …and serve bit-identical estimates from the merged view.
	var top TopKResponse
	if code := doJSON(t, "GET", https[0].URL+"/v1/topk?k=8", nil, &top); code != 200 || len(top.Features) == 0 {
		t.Fatalf("topk: code %d, %d features", code, len(top.Features))
	}
	for _, f := range top.Features {
		var e0, e1, e2 EstimateResponse
		doJSON(t, "GET", https[0].URL+"/v1/estimate?i="+itoa(f.I), nil, &e0)
		doJSON(t, "GET", https[1].URL+"/v1/estimate?i="+itoa(f.I), nil, &e1)
		doJSON(t, "GET", https[2].URL+"/v1/estimate?i="+itoa(f.I), nil, &e2)
		if e0.Weights[0] != e1.Weights[0] || e1.Weights[0] != e2.Weights[0] {
			t.Fatalf("estimate(%d) differs across nodes: %v %v %v", f.I, e0.Weights[0], e1.Weights[0], e2.Weights[0])
		}
	}
	// Status reflects the exchange.
	var st map[string]interface{}
	if code := doJSON(t, "GET", https[0].URL+"/v1/cluster/status", nil, &st); code != 200 {
		t.Fatalf("status: HTTP %d", code)
	}
	if st["self"] == "" || st["origins"] == nil {
		t.Fatalf("thin status document: %v", st)
	}
}

// TestClusterPushRequiresAuth: with a token configured, unauthenticated
// pushes must 401 and authenticated gossip must still converge (peers
// share the token).
func TestClusterPushRequiresAuth(t *testing.T) {
	const token = "mesh-token"
	srvs, https := clusterServers(t, 2, token)

	// Raw unauthenticated push: 401.
	resp, err := http.Post(https[0].URL+"/v1/cluster/push", "application/octet-stream",
		strings.NewReader("FCMW"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated push: HTTP %d, want 401", resp.StatusCode)
	}

	// Train node 1 (authorized), then gossip: node 0 pulls node 1's state,
	// and node 1's push back to node 0 carries the shared token.
	req, _ := http.NewRequest("POST", https[1].URL+"/v1/update",
		strings.NewReader(`{"example":{"y":1,"x":[{"i":3,"v":1}]}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+token)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("authorized update: HTTP %d", r2.StatusCode)
	}
	srvs[0].ClusterNode().GossipOnce()
	srvs[1].ClusterNode().GossipOnce()
	d := srvs[0].ClusterNode().Digest()
	if len(d) != 2 {
		t.Fatalf("authenticated gossip did not propagate: %v", d)
	}
	// Pull stays open (read path) even with auth on.
	resp, err = http.Post(https[0].URL+"/v1/cluster/pull", "application/json",
		strings.NewReader(`{"from":"probe","digest":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pull with no token: HTTP %d", resp.StatusCode)
	}
}

// TestClusterEndpointsDisabledWithoutPeers: a plain server 404s the
// cluster API.
func TestClusterEndpointsDisabledWithoutPeers(t *testing.T) {
	_, hs := newTestServer(t, BackendAWM)
	if code := doJSON(t, "GET", hs.URL+"/v1/cluster/status", nil, nil); code != http.StatusNotFound {
		t.Fatalf("status on non-cluster server: HTTP %d, want 404", code)
	}
	if code := doJSON(t, "POST", hs.URL+"/v1/cluster/pull", PullRequestJSON{}, nil); code != http.StatusNotFound {
		t.Fatalf("pull on non-cluster server: HTTP %d, want 404", code)
	}
}

// PullRequestJSON mirrors cluster.PullRequest for the disabled-endpoint
// probe without importing the package here.
type PullRequestJSON struct {
	From   string           `json:"from"`
	Digest map[string]int64 `json:"digest"`
}

func itoa(v uint32) string { return strconv.FormatUint(uint64(v), 10) }

// TestClusterSmoke runs the full multi-node harness — the same entry point
// `wmserve -cluster-smoke` and CI use.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness; skipped in -short")
	}
	opt := Options{
		Backend: BackendAWM,
		Config:  core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 42},
	}
	err := ClusterSmoke(opt, ClusterSmokeOptions{
		JSONPath: filepath.Join(t.TempDir(), "bench_cluster.json"),
	}, testWriter{t})
	if err != nil {
		t.Fatal(err)
	}
}

// testWriter routes harness narration through t.Logf.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
