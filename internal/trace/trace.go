// Package trace is the repository's stdlib-only distributed-tracing layer:
// trace/span identifiers, context.Context propagation, a lock-free
// ring-buffer flight recorder per process, and tail-based sampling.
//
// Design constraints, in order:
//
//  1. The unsampled hot path must stay allocation-flat. A span start/finish
//     pair costs exactly one heap allocation (the context.WithValue node);
//     span slots come from a pooled fixed-size arena and identifiers are
//     drawn from a seeded splitmix64 stream, so nothing else escapes.
//     BenchmarkSpanChild pins this the way BenchmarkObserve pins the
//     metrics contract.
//  2. Sampling is tail-based: the keep/drop decision happens when the ROOT
//     span finishes, so a trace that errored or blew the latency threshold
//     is always kept, and only the boring majority is probabilistically
//     thinned. Kept traces are copied into immutable Records; the arena
//     returns to the pool either way.
//  3. Determinism is injectable. Options.Now and Options.Seed let the
//     cluster simulator run tracing under its virtual clock and fixed
//     seeds, which is what makes the causal-lineage gate reproducible.
//
// The tracer never blocks and never drops a trace silently: every outcome
// is accounted in wmtrace_* metrics on the shared obs registry.
package trace

import (
	"context"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"wmsketch/internal/obs"
)

// TraceID identifies one causal request tree across process boundaries.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits (the W3C wire form).
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits (the W3C wire form).
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the portable part of a span: what crosses a process
// boundary in a traceparent header or a gossip stream annotation.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero (the W3C validity rule).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Options configures a Tracer. The zero value selects production defaults;
// the simulator overrides Now and Seed for determinism.
type Options struct {
	// Now supplies timestamps (default time.Now). The cluster layer injects
	// its virtual clock here so span durations obey clockdet discipline.
	Now func() time.Time
	// Seed seeds the identifier/sampling stream. Zero derives a seed from
	// the clock at construction; any other value makes the tracer's ID and
	// sampling sequence fully deterministic (single-threaded).
	Seed int64
	// SampleRate is the probability a non-slow, non-error trace is kept.
	// Zero selects the default 0.01; negative disables probabilistic
	// sampling entirely (errors and slow traces are still always kept).
	SampleRate float64
	// SlowThreshold is the root latency at or above which a trace is always
	// kept. Zero selects the default 100ms; negative disables the slow
	// keep-path.
	SlowThreshold time.Duration
	// MaxSpans bounds the per-trace span arena (default 64). Spans started
	// beyond the bound are counted as dropped and their subtree reattaches
	// to the nearest recorded ancestor.
	MaxSpans int
	// RecentCapacity sizes the flight recorder's recent ring (default 256).
	RecentCapacity int
	// SlowCapacity sizes the slow/error ring (default 64).
	SlowCapacity int
	// Registry receives the tracer's own instrumentation. Nil allocates a
	// private registry (the tracer still works, the metrics are just not
	// exported anywhere).
	Registry *obs.Registry
}

// Tracer mints spans, owns the flight recorder, and applies the tail
// sampling policy. All methods are safe for concurrent use and safe on a
// nil receiver (every call becomes a no-op), so call sites never need a
// "tracing enabled?" branch.
type Tracer struct {
	now      func() time.Time
	rate     float64
	slow     time.Duration
	maxSpans int

	rng  atomic.Uint64 // splitmix64 state; Add advances, mixing hashes
	pool sync.Pool     // *activeTrace arenas

	recent *ring // every kept trace, newest last
	slowed *ring // only slow/error traces (the worst offenders)
	worst  atomic.Pointer[Record] // longest-rooted kept trace ever; survives ring eviction

	traces       *obs.Counter
	keptSlow     *obs.Counter
	keptError    *obs.Counter
	keptSampled  *obs.Counter
	spansDropped *obs.Counter
	rootDur      *obs.Histogram
}

// New builds a Tracer from opt (see Options for defaulting rules).
func New(opt Options) *Tracer {
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if opt.SampleRate == 0 {
		opt.SampleRate = 0.01
	}
	if opt.SlowThreshold == 0 {
		opt.SlowThreshold = 100 * time.Millisecond
	}
	if opt.MaxSpans <= 0 {
		opt.MaxSpans = 64
	}
	if opt.RecentCapacity <= 0 {
		opt.RecentCapacity = 256
	}
	if opt.SlowCapacity <= 0 {
		opt.SlowCapacity = 64
	}
	if opt.Seed == 0 {
		opt.Seed = opt.Now().UnixNano()
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	t := &Tracer{
		now:      opt.Now,
		rate:     opt.SampleRate,
		slow:     opt.SlowThreshold,
		maxSpans: opt.MaxSpans,
		recent:   newRing(opt.RecentCapacity),
		slowed:   newRing(opt.SlowCapacity),
	}
	t.rng.Store(uint64(opt.Seed))
	t.pool.New = func() interface{} {
		return &activeTrace{tr: t, spans: make([]Span, t.maxSpans)}
	}

	t.traces = reg.Counter("wmtrace_traces_total", "root spans finished")
	kept := reg.CounterVec("wmtrace_traces_kept_total",
		"traces retained by the flight recorder, by tail-sampling reason", "reason")
	t.keptSlow = kept.With("slow")
	t.keptError = kept.With("error")
	t.keptSampled = kept.With("sampled")
	t.spansDropped = reg.Counter("wmtrace_spans_dropped_total",
		"spans discarded because a trace exceeded its span arena")
	t.rootDur = reg.Histogram("wmtrace_root_duration_seconds",
		"root span duration (the same latency buckets the HTTP metrics use)",
		obs.LatencyBuckets)
	return t
}

// splitmix64Gamma is Steele/Lea/Flood's odd increment; Add makes the state
// sequence race-free, and the output mix makes consecutive states
// independent draws.
const splitmix64Gamma = 0x9E3779B97F4A7C15

func (t *Tracer) rand64() uint64 {
	x := t.rng.Add(splitmix64Gamma)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := t.rand64(), t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * uint(7-i)))
			id[8+i] = byte(lo >> (8 * uint(7-i)))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * uint(7-i)))
		}
	}
	return id
}

// sampleHit draws one keep/drop decision for a boring (non-slow,
// non-error) trace.
func (t *Tracer) sampleHit() bool {
	if t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	// 53 uniform bits -> [0,1); the standard float ladder.
	return float64(t.rand64()>>11)/(1<<53) < t.rate
}

// activeTrace is one in-flight trace: a fixed-size span arena recycled
// through the tracer's pool. Span pointers stay valid for the lifetime of
// the trace because the backing array never reallocates.
type activeTrace struct {
	tr      *Tracer
	traceID TraceID
	remote  bool         // root's parent lives in another process
	used    atomic.Int32 // slots claimed; may exceed len(spans) (overflow = dropped)
	spans   []Span
}

// Span is one timed operation inside a trace. The zero of *Span (nil) is a
// valid no-op span, which is what a nil tracer and arena overflow return.
type Span struct {
	at     *activeTrace
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	dur    time.Duration
	root   bool
	done   bool
	err    bool
}

type spanKey struct{}
type remoteKey struct{}

// StartSpan starts a span named name. If ctx already carries a local span
// the new span becomes its child inside the same trace; if ctx carries a
// remote SpanContext (ContextWithRemote) a new local trace is started that
// CONTINUES the remote trace ID with the remote span as parent; otherwise
// a fresh root trace is minted. The returned context carries the new span
// for further nesting; Finish on the root span runs the tail-sampling
// decision for the whole trace.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		if at := parent.at; at.tr == t {
			i := int(at.used.Add(1)) - 1
			if i >= len(at.spans) {
				// Arena full: drop this span (counted at root finish); children
				// started under the dropped span attach to parent instead.
				return ctx, nil
			}
			sp := &at.spans[i]
			*sp = Span{at: at, name: name, id: t.newSpanID(), parent: parent.id, start: t.now()}
			return context.WithValue(ctx, spanKey{}, sp), sp
		}
		// The active span belongs to ANOTHER tracer (two simulated nodes share
		// one process and one context). Never touch a foreign arena — continue
		// the trace as if it had crossed a process boundary.
		ctx = ContextWithRemote(ctx, parent.Context())
	}

	at, _ := t.pool.Get().(*activeTrace)
	var parent SpanID
	if rsc, ok := ctx.Value(remoteKey{}).(SpanContext); ok && rsc.Valid() {
		at.traceID = rsc.TraceID
		at.remote = true
		parent = rsc.SpanID
	} else {
		at.traceID = t.newTraceID()
		at.remote = false
	}
	at.used.Store(1)
	sp := &at.spans[0]
	*sp = Span{at: at, name: name, id: t.newSpanID(), parent: parent, start: t.now(), root: true}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SetError marks the span (and therefore its whole trace) as errored;
// errored traces are always kept by the tail sampler.
func (s *Span) SetError() {
	if s != nil {
		s.err = true
	}
}

// Context returns the span's portable identity for propagation.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.at.traceID, SpanID: s.id}
}

// Duration returns the span's duration (zero until Finish).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Finish stops the span. Finishing the root span finalizes the trace:
// tail-sampling decides keep/drop, kept traces are copied into the flight
// recorder, and the arena returns to the pool. Finishing twice is a no-op.
// All child spans must be finished before the root (the call sites here
// are strictly nested defers, which guarantees it).
func (s *Span) Finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	t := s.at.tr
	s.dur = t.now().Sub(s.start)
	if s.root {
		t.finishTrace(s.at, s)
	}
}

func (t *Tracer) finishTrace(at *activeTrace, root *Span) {
	t.traces.Inc()
	t.rootDur.ObserveDuration(root.dur)

	used := int(at.used.Load())
	dropped := 0
	if used > len(at.spans) {
		dropped = used - len(at.spans)
		used = len(at.spans)
	}
	if dropped > 0 {
		t.spansDropped.Add(int64(dropped))
	}

	errored := false
	for i := 0; i < used; i++ {
		if at.spans[i].err {
			errored = true
			break
		}
	}
	var reason string
	var keptCtr *obs.Counter
	switch {
	case errored:
		reason, keptCtr = "error", t.keptError
	case t.slow > 0 && root.dur >= t.slow:
		reason, keptCtr = "slow", t.keptSlow
	case t.sampleHit():
		reason, keptCtr = "sampled", t.keptSampled
	}
	if reason != "" {
		rec := at.record(reason, used, dropped)
		t.recent.add(rec)
		if reason != "sampled" {
			t.slowed.add(rec)
		}
		t.pinWorst(rec)
		keptCtr.Inc()
	}
	at.used.Store(0)
	t.pool.Put(at)
}

// SpanContextOf extracts the current span identity from ctx: the active
// local span if any, else a remote context installed by ContextWithRemote,
// else the zero SpanContext.
func SpanContextOf(ctx context.Context) SpanContext {
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok && sp != nil {
		return sp.Context()
	}
	if rsc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		return rsc
	}
	return SpanContext{}
}

// ContextWithRemote returns a context carrying sc as a REMOTE parent: the
// next StartSpan becomes a local root that continues sc's trace. Invalid
// contexts are ignored.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}
