package trace

import (
	"context"
	"log/slog"
)

// slog integration: a wrapping Handler that stamps trace_id/span_id from
// the record's context onto every log line, so a kept trace and its log
// output join on one ID. Wrap the innermost handler once at process
// startup; loggers derived with With/WithGroup keep the behavior.

type logHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner so records logged with a context carrying a
// span (or a remote SpanContext) gain trace_id and span_id attributes.
func NewLogHandler(inner slog.Handler) slog.Handler {
	return logHandler{inner: inner}
}

func (h logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sc := SpanContextOf(ctx); sc.Valid() {
		rec.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h logHandler) WithGroup(name string) slog.Handler {
	return logHandler{inner: h.inner.WithGroup(name)}
}
