package trace

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, monotonically advancing clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testTracer(opt Options) *Tracer {
	if opt.Now == nil {
		opt.Now = newFakeClock().Now
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return New(opt)
}

func TestSpanTreeAndTailKeep(t *testing.T) {
	clk := newFakeClock()
	tr := testTracer(Options{Now: clk.Now, Seed: 7, SampleRate: -1, SlowThreshold: 50 * time.Millisecond})

	// Fast, clean trace: dropped (rate disabled, under threshold).
	ctx, root := tr.StartSpan(context.Background(), "fast")
	_, child := tr.StartSpan(ctx, "child")
	child.Finish()
	root.Finish()
	if got := len(tr.Recent()); got != 0 {
		t.Fatalf("fast clean trace should be dropped, recent=%d", got)
	}

	// Slow trace: always kept.
	ctx, root = tr.StartSpan(context.Background(), "slow-op")
	cctx, child := tr.StartSpan(ctx, "inner")
	_, gchild := tr.StartSpan(cctx, "leaf")
	clk.Advance(60 * time.Millisecond)
	gchild.Finish()
	child.Finish()
	root.Finish()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("slow trace not kept: recent=%d", len(recent))
	}
	rec := recent[0]
	if rec.Reason != "slow" || rec.Root != "slow-op" || len(rec.Spans) != 3 {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if rec.Duration != 60*time.Millisecond {
		t.Fatalf("root duration = %v, want 60ms", rec.Duration)
	}
	tree := RenderRecord(rec)
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "slow-op" {
		t.Fatalf("tree root = %+v", tree.Spans)
	}
	if len(tree.Spans[0].Children) != 1 || tree.Spans[0].Children[0].Name != "inner" {
		t.Fatalf("tree child = %+v", tree.Spans[0].Children)
	}
	if len(tree.Spans[0].Children[0].Children) != 1 || tree.Spans[0].Children[0].Children[0].Name != "leaf" {
		t.Fatalf("tree leaf = %+v", tree.Spans[0].Children[0].Children)
	}

	// Errored trace: always kept, lands in the slow/error ring too.
	ctx, root = tr.StartSpan(context.Background(), "failing")
	_, child = tr.StartSpan(ctx, "broken")
	child.SetError()
	child.Finish()
	root.Finish()
	slowest := tr.Slowest()
	found := false
	for _, r := range slowest {
		if r.Root == "failing" && r.Reason == "error" {
			found = true
		}
	}
	if !found {
		t.Fatalf("errored trace missing from slow ring: %+v", slowest)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		tr := testTracer(Options{Seed: seed, SampleRate: 0.5})
		kept := make([]bool, 200)
		for i := range kept {
			before := len(tr.Recent())
			_, sp := tr.StartSpan(context.Background(), "op")
			sp.Finish()
			kept[i] = len(tr.Recent()) > before
		}
		return kept
	}
	a, b := run(42), run(42)
	anyKept, anyDropped := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at trace %d", i)
		}
		anyKept = anyKept || a[i]
		anyDropped = anyDropped || !a[i]
	}
	if !anyKept || !anyDropped {
		t.Fatalf("rate 0.5 produced a degenerate sequence (kept=%v dropped=%v)", anyKept, anyDropped)
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sampling sequences")
	}
}

func TestSampleRateExtremes(t *testing.T) {
	always := testTracer(Options{Seed: 3, SampleRate: 1})
	for i := 0; i < 10; i++ {
		_, sp := always.StartSpan(context.Background(), "op")
		sp.Finish()
	}
	if got := len(always.Recent()); got != 10 {
		t.Fatalf("rate 1: kept %d of 10", got)
	}
	never := testTracer(Options{Seed: 3, SampleRate: -1})
	for i := 0; i < 10; i++ {
		_, sp := never.StartSpan(context.Background(), "op")
		sp.Finish()
	}
	if got := len(never.Recent()); got != 0 {
		t.Fatalf("rate -1: kept %d of 10", got)
	}
}

func TestRingWraparoundConcurrent(t *testing.T) {
	const cap = 32
	tr := testTracer(Options{Seed: 11, SampleRate: 1, RecentCapacity: cap, SlowCapacity: 8})
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ctx, root := tr.StartSpan(context.Background(), fmt.Sprintf("w%d", w))
				_, child := tr.StartSpan(ctx, "child")
				child.Finish()
				root.Finish()
				if i%17 == 0 {
					_ = tr.Recent() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()

	recs := tr.Recent()
	if len(recs) != cap {
		t.Fatalf("after %d kept traces, recent ring holds %d, want %d", writers*perWriter, len(recs), cap)
	}
	for i, rec := range recs {
		if rec == nil {
			t.Fatalf("nil record at %d", i)
		}
		if len(rec.Spans) != 2 {
			t.Fatalf("record %d has %d spans, want 2 (torn write?)", i, len(rec.Spans))
		}
		if rec.Spans[1].Parent != rec.Spans[0].ID {
			t.Fatalf("record %d child not parented to root", i)
		}
	}
	if got := tr.traces.Value(); got != writers*perWriter {
		t.Fatalf("traces counter = %d, want %d", got, writers*perWriter)
	}
}

func TestSpanArenaOverflow(t *testing.T) {
	tr := testTracer(Options{Seed: 5, SampleRate: 1, MaxSpans: 4})
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(ctx, "child")
		sp.Finish() // nil-safe past the arena bound
	}
	root.Finish()
	recs := tr.Recent()
	if len(recs) != 1 || len(recs[0].Spans) != 4 {
		t.Fatalf("overflow record = %+v", recs)
	}
	if recs[0].DroppedSpans != 7 {
		t.Fatalf("dropped = %d, want 7", recs[0].DroppedSpans)
	}
	if got := tr.spansDropped.Value(); got != 7 {
		t.Fatalf("wmtrace_spans_dropped_total = %d, want 7", got)
	}
}

func TestNilTracerAndNilSpan(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetError()
	sp.Finish()
	if sc := SpanContextOf(ctx); sc.Valid() {
		t.Fatal("nil tracer produced a valid span context")
	}
	if tr.Recent() != nil || tr.Slowest() != nil || tr.SlowestRecord() != nil {
		t.Fatal("nil tracer recorder not empty")
	}
}

func TestRemoteContinuation(t *testing.T) {
	a := testTracer(Options{Seed: 21, SampleRate: 1})
	b := testTracer(Options{Seed: 22, SampleRate: 1})

	ctx, rootA := a.StartSpan(context.Background(), "origin")
	sc := SpanContextOf(ctx)
	if !sc.Valid() {
		t.Fatal("origin span context invalid")
	}

	// Simulate the wire: format + parse a traceparent.
	hdr := http.Header{}
	Inject(hdr, sc)
	got, ok := Extract(hdr)
	if !ok || got != sc {
		t.Fatalf("traceparent round-trip: got %+v ok=%v want %+v", got, ok, sc)
	}

	rctx := ContextWithRemote(context.Background(), got)
	if SpanContextOf(rctx) != got {
		t.Fatal("remote context not visible before first span")
	}
	bctx, rootB := b.StartSpan(rctx, "apply")
	if SpanContextOf(bctx).TraceID != sc.TraceID {
		t.Fatal("continued trace did not keep the remote trace ID")
	}
	rootB.Finish()
	rootA.Finish()

	recsB := b.Recent()
	if len(recsB) != 1 {
		t.Fatalf("b kept %d traces", len(recsB))
	}
	rec := recsB[0]
	if rec.TraceID != sc.TraceID || !rec.Remote {
		t.Fatalf("b record = %+v, want remote continuation of %s", rec, sc.TraceID)
	}
	if rec.Spans[0].Parent != sc.SpanID {
		t.Fatalf("b root parent = %s, want %s", rec.Spans[0].Parent, sc.SpanID)
	}
	tree := RenderRecord(rec)
	if len(tree.Spans) != 1 || tree.Spans[0].ParentID != sc.SpanID.String() {
		t.Fatalf("remote-parented root not rendered as top-level: %+v", tree.Spans)
	}
}

func TestParseTraceparentHostile(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if sc, ok := ParseTraceparent(valid); !ok || sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" || sc.SpanID.String() != "b7ad6b7169203331" {
		t.Fatalf("valid header rejected: %v %v", sc, ok)
	}
	// Any flags byte is fine as long as it is lowercase hex.
	if _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-ff"); !ok {
		t.Fatal("flags ff rejected")
	}

	hostile := []string{
		"",
		"garbage",
		valid + "x",                 // trailing junk
		valid[:len(valid)-1],        // truncated
		strings.ToUpper(valid),      // uppercase hex is spec-invalid
		strings.Replace(valid, "-", "_", 1),
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // invalid version
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span ID
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex digit
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333g-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g",
		"00 0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c b7ad6b7169203331-01",
	}
	for _, h := range hostile {
		if sc, ok := ParseTraceparent(h); ok {
			t.Fatalf("hostile header accepted: %q -> %+v", h, sc)
		}
	}

	// Inject of an invalid context must not emit a header.
	hdr := http.Header{}
	Inject(hdr, SpanContext{})
	if hdr.Get(TraceparentHeader) != "" {
		t.Fatal("invalid span context injected a header")
	}
	if _, ok := Extract(http.Header{}); ok {
		t.Fatal("missing header extracted successfully")
	}
}

func TestSlowestOrdering(t *testing.T) {
	clk := newFakeClock()
	tr := testTracer(Options{Now: clk.Now, Seed: 9, SampleRate: -1, SlowThreshold: time.Millisecond})
	for _, ms := range []int{5, 50, 20} {
		_, sp := tr.StartSpan(context.Background(), fmt.Sprintf("op-%dms", ms))
		clk.Advance(time.Duration(ms) * time.Millisecond)
		sp.Finish()
	}
	slowest := tr.Slowest()
	if len(slowest) != 3 {
		t.Fatalf("slow ring holds %d", len(slowest))
	}
	if slowest[0].Root != "op-50ms" || slowest[1].Root != "op-20ms" || slowest[2].Root != "op-5ms" {
		t.Fatalf("slowest order wrong: %s %s %s", slowest[0].Root, slowest[1].Root, slowest[2].Root)
	}
	worst := tr.SlowestRecord()
	if worst == nil || worst.Root != "op-50ms" {
		t.Fatalf("SlowestRecord = %+v", worst)
	}
}
