package trace

import "net/http"

// W3C Trace Context (traceparent) encode/decode. Only the parts this
// repository needs: version 00, lowercase hex, and a strict parser —
// these headers arrive from the network, so every length, separator, and
// digit is checked before a byte is trusted (the same posture as the
// gossip wire decoder).

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "traceparent"

// traceparent layout: "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// FormatTraceparent renders sc as a version-00 traceparent value with the
// sampled flag set (this tracer makes its keep decision at the tail, so
// upstream's flag is advisory only).
func FormatTraceparent(sc SpanContext) string {
	buf := make([]byte, 0, traceparentLen)
	buf = append(buf, "00-"...)
	buf = append(buf, sc.TraceID.String()...)
	buf = append(buf, '-')
	buf = append(buf, sc.SpanID.String()...)
	buf = append(buf, "-01"...)
	return string(buf)
}

// ParseTraceparent parses a version-00 traceparent value. It rejects, in
// addition to malformed input: uppercase hex (the spec mandates
// lowercase), the invalid version 0xff, and all-zero trace or span IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) != traceparentLen {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok || ver != 0x00 {
		// Future versions may legally be longer; with a fixed length check
		// the only version this parser can vouch for is 00.
		return SpanContext{}, false
	}
	var sc SpanContext
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.TraceID[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.SpanID[i] = b
	}
	if _, ok := hexByte(s[53], s[54]); !ok {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// hexByte decodes two lowercase hex digits.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Inject writes sc into h as a traceparent header (no-op when invalid).
func Inject(h http.Header, sc SpanContext) {
	if sc.Valid() {
		h.Set(TraceparentHeader, FormatTraceparent(sc))
	}
}

// Extract reads and validates a traceparent header from h.
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}
