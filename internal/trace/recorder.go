package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// The flight recorder: two fixed-size lock-free rings of immutable trace
// Records. Writers claim a slot with one atomic add and store a pointer;
// readers snapshot whatever is present. A reader racing a writer may see a
// slot mid-rotation (an older or newer record than strict order implies) —
// acceptable for a debug surface, and it keeps the keep-path down to one
// atomic RMW plus one store.

// RecordedSpan is the immutable copy of one finished span.
type RecordedSpan struct {
	Name     string
	ID       SpanID
	Parent   SpanID // zero for a true root; remote parent for continued traces
	Start    time.Time
	Duration time.Duration
	Err      bool
	Finished bool
}

// Record is the immutable copy of one kept trace.
type Record struct {
	Seq          uint64 // recorder sequence number (monotonic per ring)
	TraceID      TraceID
	Root         string // root span name
	Reason       string // "slow" | "error" | "sampled"
	Remote       bool   // trace ID was continued from another process
	Start        time.Time
	Duration     time.Duration // root span duration
	DroppedSpans int
	Spans        []RecordedSpan
}

// record snapshots the arena's first used spans into an immutable Record.
// Unfinished spans (a bug at the call site, but recoverable) are stamped
// with the duration observed so far.
func (at *activeTrace) record(reason string, used, dropped int) *Record {
	root := &at.spans[0]
	rec := &Record{
		TraceID:      at.traceID,
		Root:         root.name,
		Reason:       reason,
		Remote:       at.remote,
		Start:        root.start,
		Duration:     root.dur,
		DroppedSpans: dropped,
		Spans:        make([]RecordedSpan, used),
	}
	for i := 0; i < used; i++ {
		sp := &at.spans[i]
		dur := sp.dur
		if !sp.done {
			dur = root.dur // best effort: bound by the root's window
		}
		rec.Spans[i] = RecordedSpan{
			Name:     sp.name,
			ID:       sp.id,
			Parent:   sp.parent,
			Start:    sp.start,
			Duration: dur,
			Err:      sp.err,
			Finished: sp.done,
		}
	}
	return rec
}

// ring is a lock-free MPMC overwrite buffer of trace records.
type ring struct {
	cursor atomic.Uint64
	slots  []atomic.Pointer[Record]
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[Record], n)}
}

// add publishes rec, overwriting the oldest slot once the ring is full.
func (r *ring) add(rec *Record) {
	seq := r.cursor.Add(1) - 1
	rec.Seq = seq
	r.slots[seq%uint64(len(r.slots))].Store(rec)
}

// snapshot returns the resident records, newest first.
func (r *ring) snapshot() []*Record {
	out := make([]*Record, 0, len(r.slots))
	cur := r.cursor.Load()
	n := uint64(len(r.slots))
	span := cur
	if span > n {
		span = n
	}
	for k := uint64(0); k < span; k++ {
		if rec := r.slots[(cur-1-k)%n].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Recent returns the kept traces in the recent ring, newest first.
func (t *Tracer) Recent() []*Record {
	if t == nil {
		return nil
	}
	return t.recent.snapshot()
}

// Slowest returns the slow/error ring's traces, worst (longest root
// duration) first.
func (t *Tracer) Slowest() []*Record {
	if t == nil {
		return nil
	}
	recs := t.slowed.snapshot()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Duration > recs[j].Duration })
	return recs
}

// SlowestRecord returns the single worst kept trace of the tracer's
// lifetime (nil when nothing has been kept). Pinned outside the rings, so
// the answer is not limited to the last few hundred traces — the bench
// harness embeds this in its report and a run's true worst must not be
// evicted by the fast traffic that followed it.
func (t *Tracer) SlowestRecord() *Record {
	if t == nil {
		return nil
	}
	return t.worst.Load()
}

// pinWorst installs rec as the lifetime-worst record if it is.
func (t *Tracer) pinWorst(rec *Record) {
	for {
		cur := t.worst.Load()
		if cur != nil && cur.Duration >= rec.Duration {
			return
		}
		if t.worst.CompareAndSwap(cur, rec) {
			return
		}
	}
}
