package trace

import (
	"context"
	"testing"
)

// The acceptance bar (ISSUE 9): span start/finish on the update hot path
// costs at most 2 allocs/op when the trace is not sampled. The only heap
// traffic is the context.WithValue node — the span arena is pooled and the
// keep/drop decision allocates nothing on the drop path. Pinned with
// testing.AllocsPerRun exactly like the obs BenchmarkObserve contract.

func TestSpanAllocsUnsampled(t *testing.T) {
	tr := testTracer(Options{Seed: 101, SampleRate: -1})
	ctx, root := tr.StartSpan(context.Background(), "bench-root")
	defer root.Finish()

	child := testing.AllocsPerRun(1000, func() {
		_, sp := tr.StartSpan(ctx, "child")
		sp.Finish()
	})
	if child > 2 {
		t.Fatalf("child span start/finish = %.1f allocs/op, want <= 2", child)
	}

	rootAllocs := testing.AllocsPerRun(1000, func() {
		_, sp := tr.StartSpan(context.Background(), "root")
		sp.Finish()
	})
	if rootAllocs > 2 {
		t.Fatalf("root span start/finish (unsampled) = %.1f allocs/op, want <= 2", rootAllocs)
	}
}

func BenchmarkSpanChildUnsampled(b *testing.B) {
	tr := testTracer(Options{Seed: 101, SampleRate: -1})
	ctx, root := tr.StartSpan(context.Background(), "bench-root")
	defer root.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, "child")
		sp.Finish()
	}
}

func BenchmarkSpanRootUnsampled(b *testing.B) {
	tr := testTracer(Options{Seed: 102, SampleRate: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(context.Background(), "root")
		sp.Finish()
	}
}

func BenchmarkSpanNilTracer(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, "noop")
		sp.Finish()
	}
}
