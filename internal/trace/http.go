package trace

import (
	"encoding/json"
	"net/http"
	"time"
)

// Debug endpoints: /debug/traces (recent kept traces, newest first) and
// /debug/traces/slowest (the slow/error ring, worst first), both rendered
// as JSON span trees. These are debug surfaces — they allocate freely and
// never touch the hot path.

// SpanTreeJSON is one span and its children in the rendered tree.
type SpanTreeJSON struct {
	Name       string         `json:"name"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	StartUnix  string         `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	Err        bool           `json:"error,omitempty"`
	Unfinished bool           `json:"unfinished,omitempty"`
	Children   []SpanTreeJSON `json:"children,omitempty"`
}

// TraceJSON is one kept trace rendered for the debug endpoints.
type TraceJSON struct {
	TraceID      string         `json:"trace_id"`
	Root         string         `json:"root"`
	Reason       string         `json:"reason"`
	Remote       bool           `json:"remote_parent,omitempty"`
	DurationMs   float64        `json:"duration_ms"`
	DroppedSpans int            `json:"dropped_spans,omitempty"`
	Spans        []SpanTreeJSON `json:"spans"`
}

// RenderRecord converts a Record into its JSON tree form. Spans whose
// parent is not in the record (true roots and remote-parented roots)
// become top-level entries.
func RenderRecord(rec *Record) TraceJSON {
	out := TraceJSON{
		TraceID:      rec.TraceID.String(),
		Root:         rec.Root,
		Reason:       rec.Reason,
		Remote:       rec.Remote,
		DurationMs:   float64(rec.Duration) / float64(time.Millisecond),
		DroppedSpans: rec.DroppedSpans,
	}
	local := make(map[SpanID]int, len(rec.Spans))
	for i := range rec.Spans {
		local[rec.Spans[i].ID] = i
	}
	children := make(map[SpanID][]int)
	var roots []int
	for i := range rec.Spans {
		p := rec.Spans[i].Parent
		if _, ok := local[p]; ok && !p.IsZero() {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	var build func(i int) SpanTreeJSON
	build = func(i int) SpanTreeJSON {
		sp := &rec.Spans[i]
		node := SpanTreeJSON{
			Name:       sp.Name,
			SpanID:     sp.ID.String(),
			StartUnix:  sp.Start.UTC().Format(time.RFC3339Nano),
			DurationMs: float64(sp.Duration) / float64(time.Millisecond),
			Err:        sp.Err,
			Unfinished: !sp.Finished,
		}
		if !sp.Parent.IsZero() {
			node.ParentID = sp.Parent.String()
		}
		for _, c := range children[sp.ID] {
			node.Children = append(node.Children, build(c))
		}
		return node
	}
	out.Spans = make([]SpanTreeJSON, 0, len(roots))
	for _, i := range roots {
		out.Spans = append(out.Spans, build(i))
	}
	return out
}

// RenderRecords converts a record list for JSON transport.
func RenderRecords(recs []*Record) []TraceJSON {
	out := make([]TraceJSON, len(recs))
	for i, rec := range recs {
		out[i] = RenderRecord(rec)
	}
	return out
}

func (t *Tracer) serveRecords(w http.ResponseWriter, recs []*Record) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Traces []TraceJSON `json:"traces"`
	}{Traces: RenderRecords(recs)})
}

// ServeRecent is the /debug/traces handler: kept traces, newest first.
func (t *Tracer) ServeRecent(w http.ResponseWriter, r *http.Request) {
	if t == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	t.serveRecords(w, t.Recent())
}

// ServeSlowest is the /debug/traces/slowest handler: the slow/error ring,
// worst offenders first.
func (t *Tracer) ServeSlowest(w http.ResponseWriter, r *http.Request) {
	if t == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	t.serveRecords(w, t.Slowest())
}
