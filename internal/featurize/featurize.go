// Package featurize converts raw text into the sparse hashed feature
// vectors the sketches consume. This is the paper's motivating pipeline
// (Section 1): an online spam/text classifier over n-gram features whose
// vocabulary grows without bound — the setting where feature identifiers
// must be hashed and the model kept in sub-linear space.
//
// Tokens are lowercased words; features are word n-grams (and optionally
// skip-grams within a window, matching the paper's "word pairs that
// co-occur within 5-word spans"). Each feature string is mapped to a
// 32-bit identifier with MurmurHash3, exactly as the paper's PMI pipeline
// does.
package featurize

import (
	"strings"

	"wmsketch/internal/hashing"
	"wmsketch/internal/stream"
)

// Config controls feature extraction.
type Config struct {
	// NGrams is the maximum n-gram order: 1 = unigrams only, 2 adds
	// bigrams, etc. Values < 1 default to 1.
	NGrams int
	// SkipWindow, when positive, additionally emits unordered word-pair
	// features for words co-occurring within the window (the paper's
	// 5-word-span pairs). 0 disables.
	SkipWindow int
	// HashSeed seeds the string hash.
	HashSeed uint32
	// Binary emits {0,1} feature values; otherwise values are term counts.
	Binary bool
}

// Extractor converts documents to feature vectors. Safe for reuse across
// documents; not safe for concurrent use.
type Extractor struct {
	cfg Config
	// names optionally records id → feature string for diagnostics.
	names     map[uint32]string
	keepNames bool
}

// New returns an extractor with the given configuration.
func New(cfg Config) *Extractor {
	if cfg.NGrams < 1 {
		cfg.NGrams = 1
	}
	return &Extractor{cfg: cfg}
}

// NewRecording returns an extractor that also records the feature string
// for every id it emits, retrievable via Name. Recording memory grows with
// the vocabulary; it is intended for debugging and result presentation,
// not for the memory-constrained path.
func NewRecording(cfg Config) *Extractor {
	e := New(cfg)
	e.keepNames = true
	e.names = make(map[uint32]string)
	return e
}

// Name returns the feature string recorded for id, if any.
func (e *Extractor) Name(id uint32) (string, bool) {
	if !e.keepNames {
		return "", false
	}
	s, ok := e.names[id]
	return s, ok
}

// Tokenize lowercases and splits text into word tokens. Punctuation splits
// tokens; digits and letters are kept.
func Tokenize(text string) []string {
	var tokens []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			tokens = append(tokens, sb.String())
			sb.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// feature hashes a feature string and records its name when enabled.
func (e *Extractor) feature(s string) uint32 {
	id := hashing.HashString(s, e.cfg.HashSeed)
	if e.keepNames {
		e.names[id] = s
	}
	return id
}

// Extract converts a document into a sparse feature vector. Duplicate
// features are merged by summing values (or capped at 1 when Binary).
func (e *Extractor) Extract(text string) stream.Vector {
	tokens := Tokenize(text)
	counts := make(map[uint32]float64)

	// Word n-grams up to the configured order.
	for i := range tokens {
		gram := tokens[i]
		counts[e.feature(gram)]++
		for n := 2; n <= e.cfg.NGrams && i+n <= len(tokens); n++ {
			gram = gram + " " + tokens[i+n-1]
			counts[e.feature(gram)]++
		}
	}
	// Skip-gram pairs within the window, unordered (sorted lexically so
	// "a b" and "b a" share a feature), mirroring the paper's co-occurring
	// word pairs.
	if e.cfg.SkipWindow > 0 {
		for i := range tokens {
			hi := i + e.cfg.SkipWindow
			if hi >= len(tokens) {
				hi = len(tokens) - 1
			}
			for j := i + 1; j <= hi; j++ {
				a, b := tokens[i], tokens[j]
				if a > b {
					a, b = b, a
				}
				counts[e.feature("pair:"+a+"|"+b)]++
			}
		}
	}

	out := make(stream.Vector, 0, len(counts))
	for id, c := range counts {
		if e.cfg.Binary && c > 1 {
			c = 1
		}
		out = append(out, stream.Feature{Index: id, Value: c})
	}
	return out.Sorted()
}

// ExtractLabeled parses a "label<TAB>text" line (label "+1"/"1" positive,
// anything else negative) into a training example.
func (e *Extractor) ExtractLabeled(line string) (stream.Example, bool) {
	tab := strings.IndexByte(line, '\t')
	if tab < 0 {
		return stream.Example{}, false
	}
	label := strings.TrimSpace(line[:tab])
	y := -1
	if label == "+1" || label == "1" {
		y = 1
	}
	return stream.Example{X: e.Extract(line[tab+1:]), Y: y}, true
}
