package featurize

import (
	"math/rand"
	"strings"
	"testing"

	"wmsketch/internal/core"
	"wmsketch/internal/stream"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"a1b2 C3", []string{"a1b2", "c3"}},
		{"", nil},
		{"!!!", nil},
		{"don't stop", []string{"don", "t", "stop"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestExtractUnigramCounts(t *testing.T) {
	e := NewRecording(Config{NGrams: 1})
	v := e.Extract("spam spam ham")
	if len(v) != 2 {
		t.Fatalf("got %d features, want 2", len(v))
	}
	byName := map[string]float64{}
	for _, f := range v {
		name, ok := e.Name(f.Index)
		if !ok {
			t.Fatalf("no recorded name for id %d", f.Index)
		}
		byName[name] = f.Value
	}
	if byName["spam"] != 2 || byName["ham"] != 1 {
		t.Fatalf("counts = %v", byName)
	}
}

func TestExtractBinary(t *testing.T) {
	e := New(Config{NGrams: 1, Binary: true})
	v := e.Extract("x x x y")
	for _, f := range v {
		if f.Value != 1 {
			t.Fatalf("binary value %g", f.Value)
		}
	}
}

func TestExtractBigrams(t *testing.T) {
	e := NewRecording(Config{NGrams: 2})
	v := e.Extract("free money now")
	names := map[string]bool{}
	for _, f := range v {
		n, _ := e.Name(f.Index)
		names[n] = true
	}
	for _, want := range []string{"free", "money", "now", "free money", "money now"} {
		if !names[want] {
			t.Fatalf("missing feature %q in %v", want, names)
		}
	}
	if names["free now"] {
		t.Fatal("non-adjacent bigram emitted")
	}
}

func TestExtractSkipPairsUnordered(t *testing.T) {
	e := NewRecording(Config{NGrams: 1, SkipWindow: 5})
	a := e.Extract("alpha beta")
	b := e.Extract("beta alpha")
	// The pair feature must be shared between both orders.
	ids := func(v stream.Vector) map[uint32]bool {
		m := map[uint32]bool{}
		for _, f := range v {
			if n, _ := e.Name(f.Index); strings.HasPrefix(n, "pair:") {
				m[f.Index] = true
			}
		}
		return m
	}
	ia, ib := ids(a), ids(b)
	if len(ia) != 1 || len(ib) != 1 {
		t.Fatalf("pair features: %d and %d, want 1 each", len(ia), len(ib))
	}
	for id := range ia {
		if !ib[id] {
			t.Fatal("pair feature differs between orders")
		}
	}
}

func TestExtractSkipWindowBounds(t *testing.T) {
	e := NewRecording(Config{NGrams: 1, SkipWindow: 2})
	v := e.Extract("a b c d")
	pairs := 0
	for _, f := range v {
		if n, _ := e.Name(f.Index); strings.HasPrefix(n, "pair:") {
			pairs++
		}
	}
	// Window 2: (a,b)(a,c)(b,c)(b,d)(c,d) = 5 pairs.
	if pairs != 5 {
		t.Fatalf("pairs = %d, want 5", pairs)
	}
}

func TestExtractSortedAndDeterministic(t *testing.T) {
	e := New(Config{NGrams: 2, SkipWindow: 3})
	a := e.Extract("the quick brown fox")
	b := e.Extract("the quick brown fox")
	if len(a) != len(b) {
		t.Fatal("non-deterministic extraction")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic extraction")
		}
		if i > 0 && a[i].Index <= a[i-1].Index {
			t.Fatal("vector not sorted by index")
		}
	}
}

func TestExtractLabeled(t *testing.T) {
	e := New(Config{NGrams: 1})
	ex, ok := e.ExtractLabeled("+1\tbuy cheap pills")
	if !ok || ex.Y != 1 || len(ex.X) != 3 {
		t.Fatalf("parse: ok=%v %+v", ok, ex)
	}
	ex, ok = e.ExtractLabeled("-1\thello friend")
	if !ok || ex.Y != -1 {
		t.Fatalf("negative parse: ok=%v y=%d", ok, ex.Y)
	}
	if _, ok := e.ExtractLabeled("no tab here"); ok {
		t.Fatal("missing tab must fail")
	}
}

func TestEndToEndSpamFilter(t *testing.T) {
	// The paper's motivating scenario: an online spam classifier over
	// hashed n-gram features in fixed memory. Synthesize spam/ham from
	// word pools and verify a 4KB AWM-Sketch separates them and surfaces
	// spam-indicative n-grams.
	spamWords := []string{"free", "money", "winner", "pills", "offer", "click"}
	hamWords := []string{"meeting", "report", "lunch", "project", "review", "thanks"}
	shared := []string{"the", "a", "and", "please", "today", "update"}

	e := NewRecording(Config{NGrams: 2})
	sketch := core.NewAWMSketch(core.Config{
		Width: 512, Depth: 1, HeapSize: 256, Lambda: 1e-6, Seed: 5,
	})
	rng := rand.New(rand.NewSource(6))
	doc := func(pool []string) string {
		words := make([]string, 8)
		for i := range words {
			if rng.Float64() < 0.5 {
				words[i] = shared[rng.Intn(len(shared))]
			} else {
				words[i] = pool[rng.Intn(len(pool))]
			}
		}
		return strings.Join(words, " ")
	}
	mistakes, total := 0, 0
	for i := 0; i < 4000; i++ {
		y := 1
		pool := spamWords
		if i%2 == 0 {
			y = -1
			pool = hamWords
		}
		x := e.Extract(doc(pool))
		if i > 1000 { // measure after warmup
			total++
			if sketch.Predict(x)*float64(y) <= 0 {
				mistakes++
			}
		}
		sketch.Update(x, y)
	}
	if rate := float64(mistakes) / float64(total); rate > 0.1 {
		t.Fatalf("spam error rate %.3f", rate)
	}
	// The heaviest positive features should be spam words.
	spamSet := map[string]bool{}
	for _, w := range spamWords {
		spamSet[w] = true
	}
	hits := 0
	for _, w := range sketch.TopK(10) {
		if w.Weight <= 0 {
			continue
		}
		name, _ := e.Name(w.Index)
		// Accept unigrams or bigrams containing a spam word.
		for tok := range spamSet {
			if strings.Contains(name, tok) {
				hits++
				break
			}
		}
	}
	if hits < 3 {
		t.Fatalf("only %d spam-indicative features in top-10", hits)
	}
}
