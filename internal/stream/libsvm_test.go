package stream

import (
	"strings"
	"testing"
)

func TestParseLibSVMLine(t *testing.T) {
	ex, err := ParseLibSVMLine("+1 3:0.5 7:-1.25 100:2")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Y != 1 {
		t.Fatalf("label = %d, want +1", ex.Y)
	}
	want := Vector{{3, 0.5}, {7, -1.25}, {100, 2}}
	if len(ex.X) != len(want) {
		t.Fatalf("got %d features", len(ex.X))
	}
	for i := range want {
		if ex.X[i] != want[i] {
			t.Fatalf("feature %d = %+v, want %+v", i, ex.X[i], want[i])
		}
	}
}

func TestParseLibSVMLabels(t *testing.T) {
	cases := []struct {
		label string
		want  int
	}{
		{"1", 1}, {"+1", 1}, {"-1", -1}, {"0", -1}, {"2.0", 1}, {"-3", -1},
	}
	for _, c := range cases {
		ex, err := ParseLibSVMLine(c.label + " 1:1")
		if err != nil {
			t.Fatalf("label %q: %v", c.label, err)
		}
		if ex.Y != c.want {
			t.Fatalf("label %q parsed to %d, want %d", c.label, ex.Y, c.want)
		}
	}
}

func TestParseLibSVMErrors(t *testing.T) {
	bad := []string{
		"",
		"x 1:1",
		"+1 nocolon",
		"+1 a:1",
		"+1 1:b",
	}
	for _, line := range bad {
		if _, err := ParseLibSVMLine(line); err == nil {
			t.Errorf("line %q: expected error", line)
		}
	}
}

func TestParseLibSVMTrailingComment(t *testing.T) {
	ex, err := ParseLibSVMLine("-1 1:1 2:2 # a comment")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.X) != 2 {
		t.Fatalf("got %d features, want 2 (comment stripped)", len(ex.X))
	}
}

func TestReadLibSVMRoundTrip(t *testing.T) {
	input := "+1 1:0.5 2:1\n# comment line\n\n-1 3:2.5\n"
	var got []Example
	err := ReadLibSVM(strings.NewReader(input), func(ex Example) error {
		got = append(got, ex)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d examples, want 2", len(got))
	}
	// Round-trip through WriteLibSVM.
	var sb strings.Builder
	for _, ex := range got {
		if err := WriteLibSVM(&sb, ex); err != nil {
			t.Fatal(err)
		}
	}
	var again []Example
	if err := ReadLibSVM(strings.NewReader(sb.String()), func(ex Example) error {
		again = append(again, ex)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0].Y != 1 || again[1].Y != -1 {
		t.Fatalf("round trip mismatch: %+v", again)
	}
	if again[0].X[0] != (Feature{1, 0.5}) || again[1].X[0] != (Feature{3, 2.5}) {
		t.Fatalf("round trip features mismatch: %+v", again)
	}
}

func TestReadLibSVMReportsLine(t *testing.T) {
	input := "+1 1:1\nbogus line here\n"
	err := ReadLibSVM(strings.NewReader(input), func(Example) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected line-2 error, got %v", err)
	}
}
