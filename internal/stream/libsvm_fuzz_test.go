package stream

import (
	"math"
	"strings"
	"testing"
)

// Hardening tests for ParseLibSVMLine: wmserve feeds it untrusted network
// input, so malformed, adversarial, and borderline lines must produce a
// clean error or a well-formed example — never a panic, a non-finite value,
// or unbounded work.

func TestParseLibSVMHardening(t *testing.T) {
	dup := func(ex Example) map[uint32][]float64 {
		m := map[uint32][]float64{}
		for _, f := range ex.X {
			m[f.Index] = append(m[f.Index], f.Value)
		}
		return m
	}

	t.Run("trailing-comments", func(t *testing.T) {
		for _, line := range []string{
			"+1 1:1 # plain",
			"+1 1:1 #no-space-after-hash 2:2",
			"+1 1:1 # 3:3 4:4", // features inside the comment are ignored
			"-1 #only-comment",
		} {
			ex, err := ParseLibSVMLine(line)
			if err != nil {
				t.Errorf("%q: %v", line, err)
				continue
			}
			if len(ex.X) > 1 {
				t.Errorf("%q: comment not stripped, got %d features", line, len(ex.X))
			}
		}
		// A '#' embedded in a value is malformed, not a comment.
		if _, err := ParseLibSVMLine("+1 1:1#c"); err == nil {
			t.Error("embedded # in value must error")
		}
	})

	t.Run("duplicate-indices", func(t *testing.T) {
		ex, err := ParseLibSVMLine("+1 5:1.5 5:-0.5 5:2")
		if err != nil {
			t.Fatal(err)
		}
		if got := dup(ex)[5]; len(got) != 3 || got[0] != 1.5 || got[1] != -0.5 || got[2] != 2 {
			t.Fatalf("duplicates not preserved in order: %v", got)
		}
	})

	t.Run("overlong-lines", func(t *testing.T) {
		var sb strings.Builder
		sb.WriteString("+1")
		for i := 0; i <= MaxLibSVMFeatures; i++ {
			sb.WriteString(" 1:1")
		}
		if _, err := ParseLibSVMLine(sb.String()); err == nil {
			t.Error("line over MaxLibSVMFeatures must error")
		}
		// A long-but-legal line parses.
		ex, err := ParseLibSVMLine("+1" + strings.Repeat(" 2:1", 1000))
		if err != nil || len(ex.X) != 1000 {
			t.Errorf("1000-feature line: %d features, err %v", len(ex.X), err)
		}
	})

	t.Run("malformed-labels", func(t *testing.T) {
		for _, line := range []string{
			"nan 1:1", "inf 1:1", "-inf 1:1", "Infinity 1:1",
			"1e 1:1", "+ 1:1", "one 1:1", "0x1p2z 1:1",
		} {
			if _, err := ParseLibSVMLine(line); err == nil {
				t.Errorf("%q: malformed label must error", line)
			}
		}
		// Numeric non-unit labels still threshold at 0.
		for line, want := range map[string]int{"2.5 1:1": 1, "-0.1 1:1": -1} {
			ex, err := ParseLibSVMLine(line)
			if err != nil || ex.Y != want {
				t.Errorf("%q: y=%d err=%v, want y=%d", line, ex.Y, err, want)
			}
		}
	})

	t.Run("non-finite-values", func(t *testing.T) {
		for _, line := range []string{
			"+1 1:nan", "+1 1:NaN", "+1 1:inf", "+1 1:-inf", "+1 1:1e999",
		} {
			if _, err := ParseLibSVMLine(line); err == nil {
				t.Errorf("%q: non-finite value must error", line)
			}
		}
	})

	t.Run("index-bounds", func(t *testing.T) {
		for _, line := range []string{
			"+1 4294967296:1", // 2^32
			"+1 -1:1",
			"+1 1.5:1",
			"+1 :1",
		} {
			if _, err := ParseLibSVMLine(line); err == nil {
				t.Errorf("%q: bad index must error", line)
			}
		}
		ex, err := ParseLibSVMLine("+1 4294967295:1") // 2^32-1 is legal
		if err != nil || ex.X[0].Index != math.MaxUint32 {
			t.Errorf("max index: %+v, err %v", ex, err)
		}
	})

	t.Run("whitespace", func(t *testing.T) {
		ex, err := ParseLibSVMLine("\t+1\t1:1 \t 2:2\t\t")
		if err != nil || len(ex.X) != 2 {
			t.Errorf("tab-separated: %d features, err %v", len(ex.X), err)
		}
	})
}

// FuzzParseLibSVMLine asserts the parser's contract on arbitrary input:
// no panic, and on success a ±1 label, finite values, and a bounded
// feature count.
func FuzzParseLibSVMLine(f *testing.F) {
	for _, seed := range []string{
		"+1 3:0.5 7:-1.25 100:2",
		"-1 1:1 2:2 # a comment",
		"0 1:0",
		"2.5 5:1e-3",
		"nan 1:1",
		"+1 1:nan",
		"+1 4294967295:1",
		"+1 5:1.5 5:-0.5",
		"",
		"# comment",
		"+1 1:1#c",
		"\t+1\t1:1",
		"+1 " + strings.Repeat("9:9 ", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		ex, err := ParseLibSVMLine(line)
		if err != nil {
			return
		}
		if ex.Y != 1 && ex.Y != -1 {
			t.Fatalf("%q: label %d not ±1", line, ex.Y)
		}
		if len(ex.X) > MaxLibSVMFeatures {
			t.Fatalf("%q: %d features exceeds cap", line, len(ex.X))
		}
		for _, feat := range ex.X {
			if math.IsNaN(feat.Value) || math.IsInf(feat.Value, 0) {
				t.Fatalf("%q: non-finite value %g accepted", line, feat.Value)
			}
		}
	})
}
