package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorNorms(t *testing.T) {
	v := Vector{{1, 3}, {5, -4}}
	if got := v.L1Norm(); got != 7 {
		t.Fatalf("L1Norm = %g, want 7", got)
	}
	if got := v.L2NormSquared(); got != 25 {
		t.Fatalf("L2NormSquared = %g, want 25", got)
	}
	if got := v.NNZ(); got != 2 {
		t.Fatalf("NNZ = %d, want 2", got)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{{1, 2}, {2, -2}}
	n := v.Normalize()
	if got := n.L1Norm(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("normalized L1 = %g, want 1", got)
	}
	// Original unchanged.
	if v[0].Value != 2 {
		t.Fatal("Normalize mutated input")
	}
	// Zero vector passes through.
	z := Vector{{1, 0}}
	if got := z.Normalize(); got[0].Value != 0 {
		t.Fatal("zero vector should be unchanged")
	}
}

func TestVectorNormalizeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		v := make(Vector, 0, len(vals))
		for i, x := range vals {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			v = append(v, Feature{Index: uint32(i), Value: x})
		}
		n := v.Normalize()
		l1 := n.L1Norm()
		return l1 == 0 || math.Abs(l1-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorSorted(t *testing.T) {
	v := Vector{{9, 1}, {2, 2}, {5, 3}}
	s := v.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i].Index < s[i-1].Index {
			t.Fatal("Sorted not ascending")
		}
	}
	if v[0].Index != 9 {
		t.Fatal("Sorted mutated input")
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(17)
	if len(v) != 1 || v[0].Index != 17 || v[0].Value != 1 {
		t.Fatalf("OneHot = %+v", v)
	}
}

func TestSortWeighted(t *testing.T) {
	ws := []Weighted{{1, 0.5}, {2, -3}, {3, 2}, {4, -3}}
	SortWeighted(ws)
	wantOrder := []uint32{2, 4, 3, 1} // |-3| ties broken by index
	for i, w := range ws {
		if w.Index != wantOrder[i] {
			t.Fatalf("position %d: index %d, want %d", i, w.Index, wantOrder[i])
		}
	}
}
