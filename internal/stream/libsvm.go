package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MaxLibSVMFeatures caps the number of features accepted on one line. The
// parser feeds learners from untrusted network input (wmserve), so a single
// adversarial line must not expand into an unbounded allocation or an
// unbounded amount of per-example work.
const MaxLibSVMFeatures = 1 << 20

// ParseLibSVMLine parses one line of libsvm/svmlight format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Labels "1", "+1" map to +1; "-1", "0" map to -1 (0/1 datasets are common).
// Indices are 1-based in the format and preserved as given; duplicate
// indices are kept in order (learners treat them additively, matching the
// dense semantics x[i] = Σ of the duplicates).
//
// The parser is hardened for untrusted input: non-finite labels and values
// ("nan", "inf") are rejected — a single NaN feature would otherwise poison
// every bucket it touches — and a line with more than MaxLibSVMFeatures
// features errors out.
func ParseLibSVMLine(line string) (Example, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Example{}, fmt.Errorf("stream: empty line")
	}
	var y int
	switch fields[0] {
	case "1", "+1":
		y = 1
	case "-1", "0":
		y = -1
	default:
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return Example{}, fmt.Errorf("stream: bad label %q: %v", fields[0], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Example{}, fmt.Errorf("stream: non-finite label %q", fields[0])
		}
		if v > 0 {
			y = 1
		} else {
			y = -1
		}
	}
	if len(fields)-1 > MaxLibSVMFeatures {
		return Example{}, fmt.Errorf("stream: %d features exceeds limit %d", len(fields)-1, MaxLibSVMFeatures)
	}
	x := make(Vector, 0, len(fields)-1)
	for _, f := range fields[1:] {
		if strings.HasPrefix(f, "#") {
			break // trailing comment
		}
		colon := strings.IndexByte(f, ':')
		if colon < 0 {
			return Example{}, fmt.Errorf("stream: bad feature %q", f)
		}
		idx, err := strconv.ParseUint(f[:colon], 10, 32)
		if err != nil {
			return Example{}, fmt.Errorf("stream: bad index in %q: %v", f, err)
		}
		val, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return Example{}, fmt.Errorf("stream: bad value in %q: %v", f, err)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return Example{}, fmt.Errorf("stream: non-finite value in %q", f)
		}
		x = append(x, Feature{Index: uint32(idx), Value: val})
	}
	return Example{X: x, Y: y}, nil
}

// ReadLibSVM reads a full libsvm-format stream, invoking fn for each parsed
// example. Blank lines and lines starting with '#' are skipped.
func ReadLibSVM(r io.Reader, fn func(Example) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ex, err := ParseLibSVMLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := fn(ex); err != nil {
			return err
		}
	}
	return sc.Err()
}

// WriteLibSVM writes one example in libsvm format.
func WriteLibSVM(w io.Writer, ex Example) error {
	var sb strings.Builder
	if ex.Y > 0 {
		sb.WriteString("+1")
	} else {
		sb.WriteString("-1")
	}
	for _, f := range ex.X {
		fmt.Fprintf(&sb, " %d:%g", f.Index, f.Value)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}
