package stream

import (
	"fmt"
	"math"
)

// Validate checks a feature vector for values that would silently corrupt
// a learner's state: NaN or infinite feature values. Learners do not pay
// for this check on their hot paths; boundary code (CLI input, network
// ingestion) should validate before updating.
func (v Vector) Validate() error {
	for i, f := range v {
		if math.IsNaN(f.Value) {
			return fmt.Errorf("stream: feature %d (index %d) is NaN", i, f.Index)
		}
		if math.IsInf(f.Value, 0) {
			return fmt.Errorf("stream: feature %d (index %d) is infinite", i, f.Index)
		}
	}
	return nil
}

// ValidateExample checks both the feature vector and the label.
func ValidateExample(ex Example) error {
	if ex.Y != 1 && ex.Y != -1 {
		return fmt.Errorf("stream: label must be ±1, got %d", ex.Y)
	}
	return ex.X.Validate()
}
