package stream

import (
	"math"
	"testing"
)

func TestValidateAcceptsCleanVectors(t *testing.T) {
	v := Vector{{1, 0.5}, {2, -3}, {3, 0}}
	if err := v.Validate(); err != nil {
		t.Fatalf("clean vector rejected: %v", err)
	}
	if err := Vector(nil).Validate(); err != nil {
		t.Fatalf("empty vector rejected: %v", err)
	}
}

func TestValidateRejectsNaNAndInf(t *testing.T) {
	cases := []Vector{
		{{1, math.NaN()}},
		{{1, math.Inf(1)}},
		{{1, math.Inf(-1)}},
		{{1, 1}, {2, math.NaN()}},
	}
	for i, v := range cases {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: bad vector accepted", i)
		}
	}
}

func TestValidateExample(t *testing.T) {
	good := Example{X: Vector{{1, 1}}, Y: 1}
	if err := ValidateExample(good); err != nil {
		t.Fatalf("good example rejected: %v", err)
	}
	if err := ValidateExample(Example{X: Vector{{1, 1}}, Y: 0}); err == nil {
		t.Error("label 0 accepted")
	}
	if err := ValidateExample(Example{X: Vector{{1, math.NaN()}}, Y: 1}); err == nil {
		t.Error("NaN example accepted")
	}
}
