// Package stream defines the data plumbing shared by every learner and
// experiment: sparse feature vectors, labeled examples, the Learner
// interface implemented by the WM-/AWM-Sketch and all baselines, and a
// libsvm-format parser for feeding external datasets through the CLI.
package stream

import "sort"

// Feature is one (index, value) coordinate of a sparse vector.
type Feature struct {
	Index uint32
	Value float64
}

// Vector is a sparse feature vector. Indices are not required to be sorted
// or unique by construction, but most producers emit them sorted.
type Vector []Feature

// NNZ returns the number of stored coordinates.
func (v Vector) NNZ() int { return len(v) }

// L1Norm returns Σ|vᵢ|.
func (v Vector) L1Norm() float64 {
	s := 0.0
	for _, f := range v {
		if f.Value < 0 {
			s -= f.Value
		} else {
			s += f.Value
		}
	}
	return s
}

// L2NormSquared returns Σvᵢ².
func (v Vector) L2NormSquared() float64 {
	s := 0.0
	for _, f := range v {
		s += f.Value * f.Value
	}
	return s
}

// Normalize returns a copy of v scaled to unit L1 norm (the normalization
// the paper assumes for its bounds: max ‖x‖₁ = 1). A zero vector is
// returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.L1Norm()
	if n == 0 {
		return v
	}
	out := make(Vector, len(v))
	for i, f := range v {
		out[i] = Feature{Index: f.Index, Value: f.Value / n}
	}
	return out
}

// Sorted returns a copy with indices in ascending order.
func (v Vector) Sorted() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// OneHot returns the 1-sparse vector with a single unit coordinate, the
// encoding used for frequency estimation and the §8 applications.
func OneHot(index uint32) Vector {
	return Vector{{Index: index, Value: 1}}
}

// Example is one labeled observation from a binary classification stream.
// Label is +1 or -1.
type Example struct {
	X Vector
	Y int
}

// Learner is the uniform interface over all memory-budgeted classifiers in
// this repository: the WM-Sketch, AWM-Sketch, truncation baselines, feature
// hashing, frequent-feature methods and unconstrained logistic regression.
type Learner interface {
	// Update performs one online gradient step on example (x, y), y ∈ {-1,+1}.
	Update(x Vector, y int)
	// Predict returns the signed margin wᵀx under the current model; the
	// predicted label is its sign.
	Predict(x Vector) float64
	// Estimate returns the model's estimate of the weight of feature i.
	Estimate(i uint32) float64
	// TopK returns the k features with the largest estimated |weight|,
	// descending. Implementations may return fewer when they track fewer.
	TopK(k int) []Weighted
	// MemoryBytes returns the cost-model footprint (Section 7.1: 4 bytes per
	// identifier, weight and auxiliary value).
	MemoryBytes() int
}

// Weighted pairs a feature index with an estimated weight.
type Weighted struct {
	Index  uint32
	Weight float64
}

// SortWeighted orders ws by descending |weight|, breaking ties by index.
func SortWeighted(ws []Weighted) {
	sort.Slice(ws, func(i, j int) bool {
		ai, aj := abs(ws[i].Weight), abs(ws[j].Weight)
		if ai != aj {
			return ai > aj
		}
		return ws[i].Index < ws[j].Index
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
