package baselines

import (
	"wmsketch/internal/heavyhitters"
	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// SSFrequent is the Space Saving Frequent Features baseline ("SS" in the
// paper's plots): a Space Saving summary identifies the Budget most
// frequently-occurring features, and model weights are maintained only for
// currently-tracked features. When Space Saving reassigns a counter, the
// evicted feature's weight is discarded and the incoming feature starts at
// zero. This heuristic works when frequent features are also discriminative
// and fails when they are not (Section 7.2's URL result).
type SSFrequent struct {
	cfg      Config
	loss     linear.Loss
	schedule linear.Schedule
	ss       *heavyhitters.SpaceSaving
	weights  map[uint32]float64 // unscaled weights for tracked features
	scale    float64
	t        int64
}

// NewSSFrequent returns a frequent-features learner with cfg.Budget
// Space Saving counters.
func NewSSFrequent(cfg Config) *SSFrequent {
	cfg.fill()
	return &SSFrequent{
		cfg:      cfg,
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		ss:       heavyhitters.NewSpaceSaving(cfg.Budget),
		weights:  make(map[uint32]float64, cfg.Budget),
		scale:    1,
	}
}

// Predict returns the margin over currently-tracked features.
func (s *SSFrequent) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		if w, ok := s.weights[f.Index]; ok {
			dot += w * f.Value
		}
	}
	return dot * s.scale
}

// Update records feature occurrences in the Space Saving summary and then
// applies a gradient step restricted to tracked features.
func (s *SSFrequent) Update(x stream.Vector, y int) {
	ys := sgn(y)
	s.t++
	eta := s.schedule.Rate(s.t)

	// Frequency maintenance first: each nonzero feature occurrence counts 1.
	for _, f := range x {
		if f.Value == 0 {
			continue
		}
		if evicted, did := s.ss.Observe(f.Index, 1); did {
			delete(s.weights, evicted)
		}
	}

	margin := ys * s.Predict(x)
	g := s.loss.Deriv(margin)
	if s.cfg.Lambda > 0 {
		s.scale *= 1 - eta*s.cfg.Lambda
		if s.scale < minScale {
			for i, w := range s.weights {
				s.weights[i] = w * s.scale
			}
			s.scale = 1
		}
	}
	if g == 0 {
		return
	}
	step := eta * ys * g / s.scale
	for _, f := range x {
		if f.Value == 0 || !s.ss.Contains(f.Index) {
			continue
		}
		s.weights[f.Index] -= step * f.Value
	}
}

// Estimate returns the weight for i when tracked, zero otherwise.
func (s *SSFrequent) Estimate(i uint32) float64 {
	if w, ok := s.weights[i]; ok {
		return w * s.scale
	}
	return 0
}

// TopK returns the k tracked features with the largest |weight|.
func (s *SSFrequent) TopK(k int) []stream.Weighted {
	out := make([]stream.Weighted, 0, len(s.weights))
	for i, w := range s.weights {
		out = append(out, stream.Weighted{Index: i, Weight: w * s.scale})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Summary exposes the underlying Space Saving structure (used directly by
// the §8.1 heavy-hitters comparison).
func (s *SSFrequent) Summary() *heavyhitters.SpaceSaving { return s.ss }

// MemoryBytes charges id + count + weight per counter slot (12 B), matching
// Section 7.1's note that Space Saving counts are auxiliary values.
func (s *SSFrequent) MemoryBytes() int { return s.ss.MemoryBytes() }
