package baselines

import (
	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// CMFrequent is the Count-Min Frequent Features baseline: feature
// frequencies are estimated with a Count-Min sketch and model weights are
// kept for the features whose estimated frequencies are currently in the
// top-K. The paper evaluated this method and omitted it from plots because
// Space Saving consistently dominated it; we include it for completeness.
type CMFrequent struct {
	cfg      Config
	loss     linear.Loss
	schedule linear.Schedule
	cm       *sketch.CountMin
	// freqHeap tracks the top HeapK features by estimated frequency.
	// Entry.Weight holds the model weight and Entry.Score the frequency.
	freqHeap *topk.Heap
	scale    float64
	t        int64
	heapK    int
}

// CMFrequentConfig extends Config with the Count-Min shape. Budget is the
// number of weight slots (heap entries); Depth×Width is the CM shape.
type CMFrequentConfig struct {
	Config
	Depth int
	Width int
}

// NewCMFrequent returns a Count-Min frequent-features learner.
func NewCMFrequent(cfg CMFrequentConfig) *CMFrequent {
	cfg.Config.fill()
	if cfg.Depth <= 0 || cfg.Width <= 0 {
		panic("baselines: CMFrequent needs positive Depth and Width")
	}
	return &CMFrequent{
		cfg:      cfg.Config,
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		cm:       sketch.NewCountMin(cfg.Depth, cfg.Width, cfg.Seed),
		freqHeap: topk.New(cfg.Budget),
		scale:    1,
		heapK:    cfg.Budget,
	}
}

// Predict returns the margin over currently-tracked features.
func (c *CMFrequent) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		if w, ok := c.freqHeap.Get(f.Index); ok {
			dot += w * f.Value
		}
	}
	return dot * c.scale
}

// Update bumps Count-Min frequencies, refreshes the frequency-ordered heap
// membership, and applies a gradient step to tracked features.
func (c *CMFrequent) Update(x stream.Vector, y int) {
	ys := sgn(y)
	c.t++
	eta := c.schedule.Rate(c.t)

	for _, f := range x {
		if f.Value == 0 {
			continue
		}
		c.cm.Update(f.Index, 1)
		freq := c.cm.Estimate(f.Index)
		if w, ok := c.freqHeap.Get(f.Index); ok {
			c.freqHeap.Update(f.Index, w, freq)
			continue
		}
		if !c.freqHeap.Full() {
			c.freqHeap.Insert(f.Index, 0, freq)
			continue
		}
		if min, _ := c.freqHeap.Min(); freq > min.Score {
			// Evict the least-frequent tracked feature; its weight is lost.
			c.freqHeap.PopMin()
			c.freqHeap.Insert(f.Index, 0, freq)
		}
	}

	margin := ys * c.Predict(x)
	g := c.loss.Deriv(margin)
	if c.cfg.Lambda > 0 {
		c.scale *= 1 - eta*c.cfg.Lambda
		if c.scale < minScale {
			c.renormalize()
		}
	}
	if g == 0 {
		return
	}
	step := eta * ys * g / c.scale
	for _, f := range x {
		if f.Value == 0 {
			continue
		}
		if w, ok := c.freqHeap.Get(f.Index); ok {
			// Preserve the frequency score; only the weight changes.
			freq := c.cm.Estimate(f.Index)
			c.freqHeap.Update(f.Index, w-step*f.Value, freq)
		}
	}
}

func (c *CMFrequent) renormalize() {
	for _, e := range c.freqHeap.Entries() {
		c.freqHeap.Update(e.Key, e.Weight*c.scale, e.Score)
	}
	c.scale = 1
}

// Estimate returns the weight for i when tracked, zero otherwise.
func (c *CMFrequent) Estimate(i uint32) float64 {
	if w, ok := c.freqHeap.Get(i); ok {
		return w * c.scale
	}
	return 0
}

// TopK returns the k tracked features with the largest |weight|.
func (c *CMFrequent) TopK(k int) []stream.Weighted {
	entries := c.freqHeap.Entries()
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight * c.scale}
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MemoryBytes charges the CM buckets plus id + weight + frequency score per
// heap slot.
func (c *CMFrequent) MemoryBytes() int {
	return c.cm.MemoryBytes() + c.freqHeap.MemoryBytes(true)
}
