package baselines

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

var (
	_ stream.Learner = (*SimpleTruncation)(nil)
	_ stream.Learner = (*ProbTruncation)(nil)
	_ stream.Learner = (*FeatureHash)(nil)
	_ stream.Learner = (*SSFrequent)(nil)
	_ stream.Learner = (*CMFrequent)(nil)
)

// plantedStream mirrors the generator used in core's tests: sparse unit
// features, a handful of planted discriminative weights, deterministic
// labels when a signal feature is present.
type plantedStream struct {
	weights map[uint32]float64
	keys    []uint32
	rng     *rand.Rand
	d, nnz  int
}

func newPlantedStream(d, nnz int, weights map[uint32]float64, seed int64) *plantedStream {
	keys := make([]uint32, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return &plantedStream{weights: weights, keys: keys,
		rng: rand.New(rand.NewSource(seed)), d: d, nnz: nnz}
}

func (p *plantedStream) next() stream.Example {
	x := make(stream.Vector, 0, p.nnz)
	seen := map[uint32]bool{}
	if p.rng.Float64() < 0.8 {
		k := p.keys[p.rng.Intn(len(p.keys))]
		seen[k] = true
		x = append(x, stream.Feature{Index: k, Value: 1})
	}
	for len(x) < p.nnz {
		i := uint32(p.rng.Intn(p.d))
		if seen[i] || p.weights[i] != 0 {
			continue
		}
		seen[i] = true
		x = append(x, stream.Feature{Index: i, Value: 1})
	}
	margin := 0.0
	for _, f := range x {
		margin += p.weights[f.Index] * f.Value
	}
	y := 1
	if margin < 0 || (margin == 0 && p.rng.Intn(2) == 0) {
		y = -1
	}
	return stream.Example{X: x, Y: y}
}

func plantedWeights() map[uint32]float64 {
	return map[uint32]float64{5: 4, 31: -3.5, 77: 3, 150: -2.5, 421: 2}
}

// trainOnline runs n examples through l and returns the online error rate.
func trainOnline(l stream.Learner, gen *plantedStream, n int) float64 {
	mistakes := 0
	for i := 0; i < n; i++ {
		ex := gen.next()
		if l.Predict(ex.X)*float64(ex.Y) <= 0 {
			mistakes++
		}
		l.Update(ex.X, ex.Y)
	}
	return float64(mistakes) / float64(n)
}

func TestAllBaselinesLearnPlantedStream(t *testing.T) {
	mk := map[string]func() stream.Learner{
		"trun":  func() stream.Learner { return NewSimpleTruncation(Config{Budget: 64, Lambda: 1e-6, Seed: 1}) },
		"ptrun": func() stream.Learner { return NewProbTruncation(Config{Budget: 64, Lambda: 1e-6, Seed: 1}) },
		"hash":  func() stream.Learner { return NewFeatureHash(Config{Budget: 512, Lambda: 1e-6, Seed: 1}) },
		"ss":    func() stream.Learner { return NewSSFrequent(Config{Budget: 64, Lambda: 1e-6, Seed: 1}) },
		"cm": func() stream.Learner {
			return NewCMFrequent(CMFrequentConfig{
				Config: Config{Budget: 64, Lambda: 1e-6, Seed: 1}, Depth: 2, Width: 128})
		},
	}
	// Bayes floor is 10% (20% of labels are coin flips). Simple truncation
	// is the paper's weakest baseline — heap churn from noise features slows
	// its convergence — so it gets a looser bound; everything must still be
	// clearly better than the 50% chance rate.
	maxRate := map[string]float64{"trun": 0.45, "ptrun": 0.3, "hash": 0.3, "ss": 0.3, "cm": 0.3}
	for name, f := range mk {
		l := f()
		gen := newPlantedStream(1000, 5, plantedWeights(), 7)
		rate := trainOnline(l, gen, 15000)
		if rate > maxRate[name] {
			t.Errorf("%s: online error %.3f exceeds %.2f", name, rate, maxRate[name])
		}
		// Planted features should carry correctly-signed estimates when the
		// method retains them at all.
		correct := 0
		for i, want := range plantedWeights() {
			if got := l.Estimate(i); got*want > 0 {
				correct++
			}
		}
		if correct < 3 {
			t.Errorf("%s: only %d/5 planted features correctly signed", name, correct)
		}
	}
}

func TestSimpleTruncationDropsSmallWeights(t *testing.T) {
	s := NewSimpleTruncation(Config{Budget: 2, Schedule: linear.Constant{Eta0: 1}})
	// Three features with increasing magnitudes: only the top 2 survive.
	s.Update(stream.Vector{{Index: 1, Value: 1}}, 1)  // w1 ≈ 0.5
	s.Update(stream.Vector{{Index: 2, Value: 4}}, 1)  // w2 ≈ 2
	s.Update(stream.Vector{{Index: 3, Value: 10}}, 1) // w3 ≈ 5, evicts w1
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("smallest weight not truncated: %g", got)
	}
	if s.Estimate(2) == 0 || s.Estimate(3) == 0 {
		t.Fatal("large weights must survive")
	}
	top := s.TopK(2)
	if len(top) != 2 || top[0].Index != 3 {
		t.Fatalf("TopK = %+v", top)
	}
}

func TestSimpleTruncationForgetsPermanently(t *testing.T) {
	// Once truncated, a feature restarts from zero — the documented
	// weakness versus the WM-Sketch.
	s := NewSimpleTruncation(Config{Budget: 1, Schedule: linear.Constant{Eta0: 1}})
	for i := 0; i < 5; i++ {
		s.Update(stream.Vector{{Index: 1, Value: 1}}, 1)
	}
	w1 := s.Estimate(1)
	s.Update(stream.Vector{{Index: 2, Value: 100}}, 1) // evicts feature 1
	s.Update(stream.Vector{{Index: 1, Value: 1}}, 1)   // cannot re-enter (tiny)
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("feature 1 estimate %g after eviction, want 0 (was %g)", got, w1)
	}
}

func TestProbTruncationRetainsProportionallyToWeight(t *testing.T) {
	// With budget 1 and two candidate features of weights ~4:1 appearing
	// once each, the heavy one should be retained ≈ 80% of runs.
	const trials = 2000
	heavyKept := 0
	for trial := 0; trial < trials; trial++ {
		p := NewProbTruncation(Config{Budget: 1, Seed: int64(trial), Schedule: linear.Constant{Eta0: 1}})
		p.Update(stream.Vector{{Index: 1, Value: 8}}, 1) // w ≈ 4
		p.Update(stream.Vector{{Index: 2, Value: 2}}, 1) // w̃ candidate ≈ 1
		if p.Estimate(1) != 0 {
			heavyKept++
		}
	}
	rate := float64(heavyKept) / trials
	// Inclusion of the incumbent vs the challenger follows the reservoir
	// key comparison u₁^(1/4) vs u₂^(1/1): P(keep heavy) = 4/5.
	if math.Abs(rate-0.8) > 0.04 {
		t.Fatalf("heavy retention rate %.3f, want ≈0.80", rate)
	}
}

func TestProbTruncationReservoirKeyDiagnostics(t *testing.T) {
	p := NewProbTruncation(Config{Budget: 4, Seed: 3, Schedule: linear.Constant{Eta0: 1}})
	p.Update(stream.Vector{{Index: 9, Value: 2}}, 1)
	key, ok := p.reservoirKey(9)
	if !ok {
		t.Fatal("retained feature must expose a reservoir key")
	}
	if key <= 0 || key > 1 {
		t.Fatalf("reservoir key %g outside (0,1]", key)
	}
	if _, ok := p.reservoirKey(1234); ok {
		t.Fatal("absent feature must not expose a key")
	}
}

func TestFeatureHashCollisionsShareBucket(t *testing.T) {
	// With a 1-bucket table every feature shares a weight (up to sign).
	fh := NewFeatureHash(Config{Budget: 1, Schedule: linear.Constant{Eta0: 1}})
	fh.Update(stream.Vector{{Index: 1, Value: 1}}, 1)
	e1, e2 := fh.Estimate(1), fh.Estimate(2)
	if math.Abs(e1) != math.Abs(e2) {
		t.Fatalf("1-bucket table: |e1| %g != |e2| %g", math.Abs(e1), math.Abs(e2))
	}
}

func TestFeatureHashTopKRequiresTracking(t *testing.T) {
	plain := NewFeatureHash(Config{Budget: 64, Seed: 2})
	plain.Update(stream.OneHot(1), 1)
	if got := plain.TopK(5); got != nil {
		t.Fatalf("untracked TopK = %v, want nil", got)
	}
	tracked := NewFeatureHashTracked(Config{Budget: 64, Seed: 2})
	tracked.Update(stream.OneHot(1), 1)
	top := tracked.TopK(5)
	if len(top) != 1 || top[0].Index != 1 {
		t.Fatalf("tracked TopK = %+v", top)
	}
	// Tracking must not change the cost model.
	if plain.MemoryBytes() != tracked.MemoryBytes() {
		t.Fatal("tracking leaked into MemoryBytes")
	}
}

func TestSSFrequentDropsEvictedWeights(t *testing.T) {
	s := NewSSFrequent(Config{Budget: 2, Schedule: linear.Constant{Eta0: 1}})
	s.Update(stream.Vector{{Index: 1, Value: 1}}, 1)
	s.Update(stream.Vector{{Index: 2, Value: 1}}, 1)
	if s.Estimate(1) == 0 || s.Estimate(2) == 0 {
		t.Fatal("tracked features must have weights")
	}
	// Feature 3 appears repeatedly and displaces one of the others.
	for i := 0; i < 5; i++ {
		s.Update(stream.Vector{{Index: 3, Value: 1}}, 1)
	}
	if s.Estimate(3) == 0 {
		t.Fatal("frequent feature 3 not tracked")
	}
	zero := 0
	for _, i := range []uint32{1, 2} {
		if s.Estimate(i) == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Fatal("expected at least one eviction among features 1,2")
	}
}

func TestSSFrequentTracksFrequentNotDiscriminative(t *testing.T) {
	// A feature that is frequent but uninformative (random labels) must
	// still occupy an SS slot — the inefficiency Figure 8 exposes.
	s := NewSSFrequent(Config{Budget: 4, Seed: 5})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		y := 2*rng.Intn(2) - 1
		// Feature 1: appears always (uninformative). Features 100+i: rare
		// but perfectly predictive.
		x := stream.Vector{{Index: 1, Value: 1}}
		if y > 0 {
			x = append(x, stream.Feature{Index: uint32(100 + rng.Intn(50)), Value: 1})
		} else {
			x = append(x, stream.Feature{Index: uint32(200 + rng.Intn(50)), Value: 1})
		}
		s.Update(x, y)
	}
	if !s.Summary().Contains(1) {
		t.Fatal("most-frequent feature must be tracked by Space Saving")
	}
	// Its weight should be near zero (uninformative), wasting the slot.
	if w := math.Abs(s.Estimate(1)); w > 0.5 {
		t.Fatalf("uninformative frequent feature has |w|=%g, expected small", w)
	}
}

func TestCMFrequentKeepsMostFrequent(t *testing.T) {
	c := NewCMFrequent(CMFrequentConfig{
		Config: Config{Budget: 2, Schedule: linear.Constant{Eta0: 0.5}, Seed: 7},
		Depth:  2, Width: 256,
	})
	// Feature 10 appears 30 times, 20 appears 10 times, 30 appears twice.
	for i := 0; i < 30; i++ {
		c.Update(stream.Vector{{Index: 10, Value: 1}}, 1)
	}
	for i := 0; i < 10; i++ {
		c.Update(stream.Vector{{Index: 20, Value: 1}}, 1)
	}
	for i := 0; i < 2; i++ {
		c.Update(stream.Vector{{Index: 30, Value: 1}}, 1)
	}
	if c.Estimate(10) == 0 || c.Estimate(20) == 0 {
		t.Fatal("two most frequent features must be tracked")
	}
	if c.Estimate(30) != 0 {
		t.Fatal("least frequent feature should not displace more frequent ones")
	}
}

func TestBaselineMemoryAccounting(t *testing.T) {
	if got := NewSimpleTruncation(Config{Budget: 128}).MemoryBytes(); got != 1024 {
		t.Errorf("SimpleTruncation(128) = %d B, want 1024 (Section 7.1 example)", got)
	}
	if got := NewProbTruncation(Config{Budget: 128}).MemoryBytes(); got != 1536 {
		t.Errorf("ProbTruncation(128) = %d B, want 1536", got)
	}
	if got := NewFeatureHash(Config{Budget: 512}).MemoryBytes(); got != 2048 {
		t.Errorf("FeatureHash(512) = %d B, want 2048", got)
	}
	if got := NewSSFrequent(Config{Budget: 128}).MemoryBytes(); got != 1536 {
		t.Errorf("SSFrequent(128) = %d B, want 1536", got)
	}
	cm := NewCMFrequent(CMFrequentConfig{Config: Config{Budget: 64}, Depth: 2, Width: 128})
	if got := cm.MemoryBytes(); got != 4*2*128+12*64 {
		t.Errorf("CMFrequent = %d B", got)
	}
}

func TestBaselineConfigValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero budget")
			}
		}()
		NewSimpleTruncation(Config{Budget: 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative lambda")
			}
		}()
		NewFeatureHash(Config{Budget: 4, Lambda: -1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for bad CM shape")
			}
		}()
		NewCMFrequent(CMFrequentConfig{Config: Config{Budget: 4}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for bad label")
			}
		}()
		NewSSFrequent(Config{Budget: 4}).Update(stream.OneHot(1), 2)
	}()
}

func TestBaselinesLambdaDecayShrinksWeights(t *testing.T) {
	// With strong regularization, an untouched weight must decay toward 0.
	s := NewSimpleTruncation(Config{Budget: 8, Lambda: 0.1, Schedule: linear.Constant{Eta0: 1}})
	s.Update(stream.OneHot(1), 1)
	w0 := math.Abs(s.Estimate(1))
	for i := 0; i < 50; i++ {
		s.Update(stream.OneHot(2), 1) // touch only feature 2
	}
	w1 := math.Abs(s.Estimate(1))
	if w1 >= w0 {
		t.Fatalf("weight did not decay: %g -> %g", w0, w1)
	}
}

func BenchmarkSimpleTruncationUpdate(b *testing.B) {
	benchLearner(b, NewSimpleTruncation(Config{Budget: 1024, Lambda: 1e-6}))
}

func BenchmarkProbTruncationUpdate(b *testing.B) {
	benchLearner(b, NewProbTruncation(Config{Budget: 1024, Lambda: 1e-6}))
}

func BenchmarkFeatureHashUpdate(b *testing.B) {
	benchLearner(b, NewFeatureHash(Config{Budget: 4096, Lambda: 1e-6}))
}

func BenchmarkSSFrequentUpdate(b *testing.B) {
	benchLearner(b, NewSSFrequent(Config{Budget: 1024, Lambda: 1e-6}))
}

func benchLearner(b *testing.B, l stream.Learner) {
	gen := newPlantedStream(100000, 10, plantedWeights(), 1)
	examples := make([]stream.Example, 4096)
	for i := range examples {
		examples[i] = gen.next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := examples[i&4095]
		l.Update(ex.X, ex.Y)
	}
}
