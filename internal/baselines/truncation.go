// Package baselines implements the memory-budgeted comparison methods from
// the paper's evaluation (Section 7 and Appendix C): Simple Truncation
// (Algorithm 3), Probabilistic Truncation (Algorithm 4), Feature Hashing,
// Space Saving Frequent Features, and Count-Min Frequent Features. All
// satisfy stream.Learner so experiments treat them interchangeably with the
// WM- and AWM-Sketch.
package baselines

import (
	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// minScale mirrors the renormalization threshold used by the sketches.
const minScale = 1e-9

// Config carries the shared learner settings for all baselines.
type Config struct {
	// Budget is the method-specific capacity: heap slots for truncation
	// methods, table buckets for feature hashing, counters for
	// frequent-feature methods.
	Budget int
	// Loss is the margin loss; nil selects logistic.
	Loss linear.Loss
	// Schedule is the learning-rate schedule; nil selects ηₜ=0.1/√t.
	Schedule linear.Schedule
	// Lambda is the ℓ2-regularization strength.
	Lambda float64
	// Seed drives any internal randomness (hashes, reservoirs).
	Seed int64
}

func (c *Config) fill() {
	if c.Budget <= 0 {
		panic("baselines: budget must be positive")
	}
	if c.Loss == nil {
		c.Loss = linear.Logistic{}
	}
	if c.Schedule == nil {
		c.Schedule = linear.DefaultSchedule()
	}
	if c.Lambda < 0 {
		panic("baselines: negative lambda")
	}
}

func sgn(y int) float64 {
	switch y {
	case 1:
		return 1
	case -1:
		return -1
	default:
		panic("baselines: label must be ±1")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SimpleTruncation is Algorithm 3: an exact weight vector truncated to the
// top-K entries by magnitude after every update. Features whose weights
// fall out of the top-K are forgotten entirely — the failure mode the
// WM-Sketch is designed to avoid.
type SimpleTruncation struct {
	cfg      Config
	loss     linear.Loss
	schedule linear.Schedule
	heap     *topk.Heap // magnitude-ordered, stores unscaled weights
	scale    float64
	t        int64
}

// NewSimpleTruncation returns a truncation learner keeping cfg.Budget
// weights.
func NewSimpleTruncation(cfg Config) *SimpleTruncation {
	cfg.fill()
	return &SimpleTruncation{
		cfg:      cfg,
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		heap:     topk.New(cfg.Budget),
		scale:    1,
	}
}

// Predict returns the margin using only the retained weights.
func (s *SimpleTruncation) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		if w, ok := s.heap.Get(f.Index); ok {
			dot += w * f.Value
		}
	}
	return dot * s.scale
}

// Update applies one OGD step and truncates back to the top-K by magnitude.
func (s *SimpleTruncation) Update(x stream.Vector, y int) {
	ys := sgn(y)
	s.t++
	eta := s.schedule.Rate(s.t)
	margin := ys * s.Predict(x)
	g := s.loss.Deriv(margin)

	if s.cfg.Lambda > 0 {
		s.scale *= 1 - eta*s.cfg.Lambda
		if s.scale < minScale {
			s.heap.ScaleWeights(s.scale)
			s.scale = 1
		}
	}
	step := eta * ys * g / s.scale
	for _, f := range x {
		if f.Value == 0 {
			continue
		}
		if w, ok := s.heap.Get(f.Index); ok {
			if g != 0 {
				s.heap.UpdateMagnitude(f.Index, w-step*f.Value)
			}
			continue
		}
		if g == 0 {
			continue
		}
		// New feature enters with weight −ηy g x; keep only if it survives
		// truncation against the current minimum.
		w := -step * f.Value
		if !s.heap.Full() {
			s.heap.InsertMagnitude(f.Index, w)
			continue
		}
		if min, _ := s.heap.Min(); absf(w) > min.Score {
			s.heap.PopMin()
			s.heap.InsertMagnitude(f.Index, w)
		}
	}
}

// Estimate returns the retained weight for i, zero if truncated away.
func (s *SimpleTruncation) Estimate(i uint32) float64 {
	if w, ok := s.heap.Get(i); ok {
		return w * s.scale
	}
	return 0
}

// TopK returns the k heaviest retained weights, descending.
func (s *SimpleTruncation) TopK(k int) []stream.Weighted {
	entries := s.heap.TopK(k)
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight * s.scale}
	}
	return out
}

// MemoryBytes charges id+weight per retained entry (Section 7.1's example:
// a 128-entry truncation instance costs 1024 B).
func (s *SimpleTruncation) MemoryBytes() int { return s.heap.MemoryBytes(false) }
