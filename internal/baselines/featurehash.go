package baselines

import (
	"wmsketch/internal/hashing"
	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// FeatureHash is the hashing-trick baseline (Shi et al. 2009, Weinberger et
// al. 2009): every feature index is hashed into a fixed table of Budget
// buckets with a random ±1 sign, and a linear model is learned directly on
// the hashed representation. All memory goes to weights — there is no
// feature-identity bookkeeping — so colliding features can never be
// disambiguated; the paper uses this to quantify "the cost of
// interpretability" (Section 9).
type FeatureHash struct {
	cfg      Config
	loss     linear.Loss
	schedule linear.Schedule
	hash     *hashing.Tabulation
	table    []float64
	scale    float64
	t        int64

	// seen is evaluation-only instrumentation: the set of feature indices
	// observed, used to answer TopK queries in recovery experiments. It is
	// NOT counted in MemoryBytes — plain feature hashing cannot answer
	// TopK at all, which is exactly the deficiency the paper highlights.
	seen map[uint32]struct{}
	// trackSeen enables the instrumentation.
	trackSeen bool
}

// NewFeatureHash returns a feature-hashing learner with a table of
// cfg.Budget buckets.
func NewFeatureHash(cfg Config) *FeatureHash {
	cfg.fill()
	return &FeatureHash{
		cfg:      cfg,
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		hash:     hashing.NewTabulation(cfg.Seed),
		table:    make([]float64, cfg.Budget),
		scale:    1,
	}
}

// NewFeatureHashTracked returns a feature-hashing learner that additionally
// records seen feature indices so TopK can be evaluated against other
// methods. The tracking memory is excluded from the cost model.
func NewFeatureHashTracked(cfg Config) *FeatureHash {
	fh := NewFeatureHash(cfg)
	fh.trackSeen = true
	fh.seen = make(map[uint32]struct{})
	return fh
}

// bucketSign maps a feature index to its table slot and sign.
func (fh *FeatureHash) bucketSign(i uint32) (int, float64) {
	return fh.hash.BucketSign(i, len(fh.table))
}

// Predict returns the margin of the hashed model.
func (fh *FeatureHash) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		b, s := fh.bucketSign(f.Index)
		dot += s * fh.table[b] * f.Value
	}
	return dot * fh.scale
}

// Update applies one OGD step in the hashed space.
func (fh *FeatureHash) Update(x stream.Vector, y int) {
	ys := sgn(y)
	fh.t++
	eta := fh.schedule.Rate(fh.t)
	margin := ys * fh.Predict(x)
	g := fh.loss.Deriv(margin)

	if fh.cfg.Lambda > 0 {
		fh.scale *= 1 - eta*fh.cfg.Lambda
		if fh.scale < minScale {
			for b := range fh.table {
				fh.table[b] *= fh.scale
			}
			fh.scale = 1
		}
	}
	if g != 0 {
		step := eta * ys * g / fh.scale
		for _, f := range x {
			b, s := fh.bucketSign(f.Index)
			fh.table[b] -= step * s * f.Value
		}
	}
	if fh.trackSeen {
		for _, f := range x {
			fh.seen[f.Index] = struct{}{}
		}
	}
}

// Estimate returns the signed table value for feature i. Collisions make
// this an undisambiguated estimate — the structural weakness this baseline
// demonstrates.
func (fh *FeatureHash) Estimate(i uint32) float64 {
	b, s := fh.bucketSign(i)
	return s * fh.table[b] * fh.scale
}

// TopK scans the seen-feature instrumentation (when enabled) and returns
// the k features with the largest |estimate|. Without tracking it returns
// nil: plain feature hashing stores no identities.
func (fh *FeatureHash) TopK(k int) []stream.Weighted {
	if !fh.trackSeen {
		return nil
	}
	out := make([]stream.Weighted, 0, len(fh.seen))
	for i := range fh.seen {
		out = append(out, stream.Weighted{Index: i, Weight: fh.Estimate(i)})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MemoryBytes charges 4 bytes per table bucket; the whole budget is
// weights.
func (fh *FeatureHash) MemoryBytes() int { return 4 * len(fh.table) }
