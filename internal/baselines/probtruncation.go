package baselines

import (
	"math"
	"math/rand"

	"wmsketch/internal/linear"
	"wmsketch/internal/reservoir"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// ProbTruncation is Algorithm 4: truncation by weighted reservoir sampling.
// Each retained feature i carries an Efraimidis–Spirakis reservoir key
// uᵢ^(1/|wᵢ|); truncation keeps the top-K keys, so retention probability is
// proportional to weight magnitude rather than deterministic, which lets
// moderately-weighted features survive long enough to prove themselves.
//
// Implementation note: Algorithm 4's rekeying step W[i] ← W[i]^|Sₜ[i]/Sₜ₊₁[i]|
// preserves the underlying uniform variate uᵢ exactly, so we store
// cᵢ = −ln uᵢ once per feature and order by the exponentially-distributed
// statistic cᵢ/|wᵢ| (smaller is better). This reproduces Algorithm 4's
// distribution exactly while avoiding the O(K) rekey over all entries on
// every step: uniform decay of all weights rescales every cᵢ/|wᵢ| by the
// same factor and leaves the ordering unchanged.
type ProbTruncation struct {
	cfg      Config
	loss     linear.Loss
	schedule linear.Schedule
	// heap is ordered by score = −cᵢ/|wᵢ| so that the heap minimum is the
	// entry with the LARGEST c/|w|, i.e. the smallest reservoir key: the
	// correct eviction candidate.
	heap  *topk.Heap
	cvals map[uint32]float64 // feature → cᵢ = −ln uᵢ
	rng   *rand.Rand
	scale float64
	t     int64
}

// NewProbTruncation returns a probabilistic truncation learner keeping
// cfg.Budget weights.
func NewProbTruncation(cfg Config) *ProbTruncation {
	cfg.fill()
	return &ProbTruncation{
		cfg:      cfg,
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		heap:     topk.New(cfg.Budget),
		cvals:    make(map[uint32]float64, cfg.Budget),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		scale:    1,
	}
}

// score computes the heap ordering statistic for weight w and variate cost
// c. Weights of zero magnitude score −inf so they are evicted first.
func (p *ProbTruncation) score(w, c float64) float64 {
	aw := absf(w)
	if aw == 0 {
		return math.Inf(-1)
	}
	return -c / aw
}

// Predict returns the margin over retained weights.
func (p *ProbTruncation) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		if w, ok := p.heap.Get(f.Index); ok {
			dot += w * f.Value
		}
	}
	return dot * p.scale
}

// Update applies one OGD step with reservoir-based truncation.
func (p *ProbTruncation) Update(x stream.Vector, y int) {
	ys := sgn(y)
	p.t++
	eta := p.schedule.Rate(p.t)
	margin := ys * p.Predict(x)
	g := p.loss.Deriv(margin)

	if p.cfg.Lambda > 0 {
		p.scale *= 1 - eta*p.cfg.Lambda
		if p.scale < minScale {
			p.heap.ScaleWeights(p.scale)
			p.scale = 1
			// ScaleWeights rescales scores linearly, which matches the
			// −c/|w| statistic's behaviour under uniform weight scaling, so
			// ordering and values stay coherent.
		}
	}
	if g == 0 {
		return
	}
	step := eta * ys * g / p.scale
	for _, f := range x {
		if f.Value == 0 {
			continue
		}
		if w, ok := p.heap.Get(f.Index); ok {
			nw := w - step*f.Value
			p.heap.Update(f.Index, nw, p.score(nw, p.cvals[f.Index]))
			continue
		}
		// New candidate: draw its permanent uniform variate.
		w := -step * f.Value
		c := p.drawC()
		sc := p.score(w, c)
		if !p.heap.Full() {
			p.heap.Insert(f.Index, w, sc)
			p.cvals[f.Index] = c
			continue
		}
		min, _ := p.heap.Min()
		if sc > min.Score {
			p.heap.PopMin()
			delete(p.cvals, min.Key)
			p.heap.Insert(f.Index, w, sc)
			p.cvals[f.Index] = c
		}
	}
}

// drawC samples c = −ln u for u uniform on (0,1).
func (p *ProbTruncation) drawC() float64 {
	u := p.rng.Float64()
	for u == 0 {
		u = p.rng.Float64()
	}
	return -math.Log(u)
}

// Estimate returns the retained weight for i, zero if not retained.
func (p *ProbTruncation) Estimate(i uint32) float64 {
	if w, ok := p.heap.Get(i); ok {
		return w * p.scale
	}
	return 0
}

// TopK returns the k heaviest retained weights by |weight| (not reservoir
// key), descending: queries want the best weights among survivors.
func (p *ProbTruncation) TopK(k int) []stream.Weighted {
	entries := p.heap.Entries()
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight * p.scale}
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MemoryBytes charges id + weight + reservoir key per entry (the auxiliary
// 4 bytes Section 7.1 mentions for "random keys in Algorithm 4").
func (p *ProbTruncation) MemoryBytes() int { return p.heap.MemoryBytes(true) }

// reservoirKey recovers the Algorithm 4 key uᵢ^(1/|wᵢ|) for diagnostics.
func (p *ProbTruncation) reservoirKey(i uint32) (float64, bool) {
	w, ok := p.heap.Get(i)
	if !ok {
		return 0, false
	}
	c, ok := p.cvals[i]
	if !ok {
		return 0, false
	}
	return reservoir.Key(math.Exp(-c), absf(w*p.scale)), true
}
