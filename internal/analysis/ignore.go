package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the finding's line or on the line directly above it drops that
// analyzer's findings there. The reason is mandatory — an unexplained
// suppression is itself reported — so every deliberate exception in the
// tree documents why the invariant does not apply.

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// suppressed reports whether a finding by analyzer at pos is covered by a
// directive on its line or the line above.
func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	return s[ignoreKey{pos.Filename, pos.Line, analyzer}] ||
		s[ignoreKey{pos.Filename, pos.Line - 1, analyzer}]
}

// collectIgnores scans every comment for lint:ignore directives. Malformed
// directives (no analyzer, or no reason) are returned as diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				set[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return set, bad
}
