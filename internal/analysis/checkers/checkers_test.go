package checkers

import (
	"path/filepath"
	"testing"

	"wmsketch/internal/analysis/analysistest"
)

// Fixtures live in the framework's shared corpus at
// internal/analysis/testdata/src/<analyzer>.
func testdata() string {
	return filepath.Join(analysistest.TestData(), "..", "..", "testdata")
}

func TestClockDet(t *testing.T) {
	analysistest.Run(t, testdata(), ClockDet, "clockdet")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, testdata(), MapOrder, "maporder")
}

func TestDecodeBounds(t *testing.T) {
	analysistest.Run(t, testdata(), DecodeBounds, "decodebounds")
}

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, testdata(), GuardedBy, "guardedby")
}

func TestNonFinite(t *testing.T) {
	analysistest.Run(t, testdata(), NonFinite, "nonfinite")
}

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, testdata(), MetricNames, "metricnames")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, testdata(), CtxFlow, "ctxflow")
}
