package checkers

import (
	"go/ast"
	"strings"

	"wmsketch/internal/analysis"
)

// clockBanned are the time-package entry points that read or schedule on
// the wall clock. time.Since and time.Until are included: both call
// time.Now internally.
var clockBanned = map[string]bool{
	"Now": true, "After": true, "Sleep": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Since": true, "Until": true,
}

// ClockDet enforces the cluster layer's virtual-time discipline: inside
// wmsketch/internal/cluster/... every read of the wall clock and every
// timer must go through the injected Clock (clock.go), or the
// discrete-event simulator cannot make a run a pure function of its seed.
var ClockDet = &analysis.Analyzer{
	Name: "clockdet",
	Doc: "flags time.Now/After/Sleep/Tick/NewTimer/NewTicker/AfterFunc/Since/Until " +
		"in internal/cluster/...; time must flow through the injected Clock so the " +
		"simulator and membership tests run on virtual time. The Clock " +
		"implementation itself carries //lint:ignore clockdet annotations.",
	Filter: func(pkgPath string) bool {
		return pkgPath == "wmsketch/internal/cluster" ||
			strings.HasPrefix(pkgPath, "wmsketch/internal/cluster/")
	},
	Run: runClockDet,
}

func runClockDet(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgSelector(pass.TypesInfo, sel, "time", clockBanned); ok {
				pass.Reportf(sel.Pos(),
					"time.%s bypasses the injected Clock; route it through Config.Clock so virtual-time runs stay deterministic", name)
			}
			return true
		})
	}
	return nil
}
