package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"wmsketch/internal/analysis"
)

// MapOrder flags `range` over a map whose body does order-sensitive work:
// accumulating floats (float addition does not commute bit-exactly),
// appending to a slice that outlives the loop (wire-bound ordering), or
// calling an encoder. Go randomizes map iteration order, so any of these
// makes output depend on the iteration seed. The fix is to iterate sorted
// keys (the sortedKeys helpers); appends are also accepted when the slice
// is sorted right after the loop.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map iteration that accumulates floats, appends to an outer slice, " +
		"or encodes: map order is randomized, so sort keys first (or sort the " +
		"result immediately after the loop).",
	Run: runMapOrder,
}

var (
	encoderRe = regexp.MustCompile(`(?i)(write|encode|marshal)`)
	sortRe    = regexp.MustCompile(`(?i)sort`)
)

func runMapOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rng, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkMapRange inspects one map-range body. rest is the tail of the
// enclosing block after the loop, consulted for the sorted-after escape.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	sortedAfter := false
	for _, s := range rest {
		if containsCall(s, sortRe) {
			sortedAfter = true
			break
		}
	}
	// The loop variables: an update keyed by them (m[k] -= w) touches each
	// element independently, so iteration order cannot matter.
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	perElement := func(lhs ast.Expr) bool {
		for _, obj := range identObjs(pass.TypesInfo, lhs) {
			if loopVars[obj] {
				return true
			}
		}
		return false
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.RangeStmt:
			// A nested range gets its own report if it ranges a map; don't
			// double-report its body against the outer loop.
			if m != rng {
				t := pass.TypeOf(m.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			switch m.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloat(pass.TypeOf(m.Lhs[0])) && !perElement(m.Lhs[0]) {
					pass.Reportf(m.Pos(),
						"accumulates a float across a map iteration; float addition is order-sensitive and map order is randomized — iterate sorted keys")
				}
			case token.ASSIGN, token.DEFINE:
				for _, rhs := range m.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && !sortedAfter {
						if target, outer := appendTarget(pass, m, rng); outer {
							pass.Reportf(m.Pos(),
								"appends to %s in map-iteration order, which is randomized — iterate sorted keys or sort the slice after the loop", target)
						}
					}
				}
			}
		case *ast.CallExpr:
			if name := calleeName(m); name != "" && name != "append" && encoderRe.MatchString(name) {
				pass.Reportf(m.Pos(),
					"calls %s inside a map iteration, emitting in randomized map order — iterate sorted keys", name)
			}
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// appendTarget reports the appended-to expression and whether it outlives
// the loop (declared before the range statement).
func appendTarget(pass *analysis.Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) (string, bool) {
	if len(assign.Lhs) != 1 {
		return "", false
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		// p.frames = append(p.frames, ...): a field always outlives the loop.
		if sel, ok := assign.Lhs[0].(*ast.SelectorExpr); ok {
			return sel.Sel.Name, true
		}
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return id.Name, false
	}
	return id.Name, obj.Pos() < rng.Pos()
}
