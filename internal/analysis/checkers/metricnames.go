package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"wmsketch/internal/analysis"
)

// metricRegistration maps a Registry method to the naming contract its
// metric kind carries in the exposition (OBSERVABILITY.md): counters are
// monotonic and must say so with _total; histograms must name their unit;
// gauges are instantaneous values and must not masquerade as counters.
var metricRegistration = map[string]string{
	"Counter": "counter", "CounterVec": "counter",
	"Gauge": "gauge", "GaugeVec": "gauge", "GaugeFunc": "gauge",
	"Histogram": "histogram", "HistogramVec": "histogram",
}

// metricSnakeRe is lower snake_case: the subset of legal Prometheus names
// the project standardizes on (no capitals, no colons, no leading _).
var metricSnakeRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnits are the unit suffixes a histogram name may end with.
var histogramUnits = []string{"_seconds", "_bytes", "_size"}

// MetricNames enforces the metric naming contract at every registration
// site: names are string literals in lower snake_case, counters end in
// _total, histograms end in a unit suffix, and gauges do not end in
// _total. Checking at the registration call means a bad name fails lint
// before it ever reaches a scrape.
var MetricNames = &analysis.Analyzer{
	Name: "metricnames",
	Doc: "flags obs.Registry registration calls (Counter, Gauge, Histogram and their " +
		"Vec/Func variants) whose metric name is not a lower snake_case string literal, " +
		"a counter not ending _total, a histogram not ending _seconds/_bytes/_size, or " +
		"a gauge ending _total. Names must be literals so the contract is checkable; " +
		"suppress a deliberate exception with //lint:ignore metricnames <reason>.",
	Run: runMetricNames,
}

func runMetricNames(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricRegistration[sel.Sel.Name]
			if !ok || !isRegistryRecv(pass, sel.X) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Args[0].Pos(),
					"%s name must be a string literal so the naming contract is checkable", kind)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkMetricName(pass, lit.Pos(), kind, name)
			return true
		})
	}
	return nil
}

func checkMetricName(pass *analysis.Pass, pos token.Pos, kind, name string) {
	if !metricSnakeRe.MatchString(name) {
		pass.Reportf(pos, "metric name %q is not lower snake_case", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total (counters are monotonic)", name)
		}
	case "histogram":
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(pos, "histogram %q must end in a unit suffix (%s)",
				name, strings.Join(histogramUnits, ", "))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix promises a monotonic counter)", name)
		}
	}
}

// isRegistryRecv reports whether e's type is (a pointer to) a named type
// called Registry — matched by name, not import path, so the fixture can
// carry its own stub.
func isRegistryRecv(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
