package checkers

import (
	"go/ast"
	"go/types"
	"regexp"

	"wmsketch/internal/analysis"
)

// DecodeBounds performs an intra-function taint walk over decode paths:
// integers produced by varint/fixed-width reads from a wire buffer are
// attacker-controlled, and must be bounded before they size an allocation
// or slice a buffer. A `make([]T, n)` where n is a decoded, unvalidated
// count is a remote allocation bomb; an unvalidated slice bound is a
// panic.
//
// Sources: binary.ReadUvarint, binary.ReadVarint, binary.LittleEndian /
// BigEndian .Uint16/32/64, and local helpers matching (?i)uvarint.
// Sanitizers: using the value in a relational comparison, or passing it
// through a function whose name matches (?i)(cap|clamp|bound|limit|min|count)
// — the project's readCount/upfrontCap helpers are the canonical form.
// Sinks: make sizes and slice-expression bounds.
var DecodeBounds = &analysis.Analyzer{
	Name: "decodebounds",
	Doc: "flags make() sizes and slice bounds that flow from decoded wire integers " +
		"without a preceding bound check: validate against a cap (readCount/upfrontCap) " +
		"before allocating or slicing.",
	Run: runDecodeBounds,
}

var (
	endianSizes = map[string]bool{"Uint16": true, "Uint32": true, "Uint64": true}
	varintReads = map[string]bool{"ReadUvarint": true, "ReadVarint": true}
	sourceRe    = regexp.MustCompile(`(?i)uvarint`)
	sanitizerRe = regexp.MustCompile(`(?i)(cap|clamp|bound|limit|min|count)`)
)

func runDecodeBounds(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDecodeFunc(pass, fn)
		}
	}
	return nil
}

// checkDecodeFunc runs the taint walk over one function body.
func checkDecodeFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)

	// Taint propagation to a fixed point: a source call taints its
	// assignment targets; any assignment whose RHS mentions a tainted
	// object taints its targets too (conversions, arithmetic).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) == 0 {
				return true
			}
			dirty := false
			for _, rhs := range assign.Rhs {
				if isDecodeSource(pass, rhs) || mentionsTainted(pass, rhs, tainted) {
					dirty = true
				}
			}
			if !dirty {
				return true
			}
			for _, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	// Sanitizers: a relational comparison involving the object, or passing
	// it to a bounding helper, clears its taint for the whole function.
	// (Position-insensitive by design: the analyzer asks "was this value
	// ever checked", not "was it checked first" — cheap, and in practice
	// decode helpers validate immediately.)
	sanitized := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.BinaryExpr:
			if m.Op.IsOperator() && isComparison(m) {
				for _, obj := range identObjs(pass.TypesInfo, m) {
					if tainted[obj] {
						sanitized[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if sanitizerRe.MatchString(calleeName(m)) {
				for _, arg := range m.Args {
					for _, obj := range identObjs(pass.TypesInfo, arg) {
						if tainted[obj] {
							sanitized[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	hot := func(e ast.Expr) (types.Object, bool) {
		for _, obj := range identObjs(pass.TypesInfo, e) {
			if tainted[obj] && !sanitized[obj] {
				return obj, true
			}
		}
		return nil, false
	}

	// Sinks.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(pass, id) {
				for _, arg := range m.Args[1:] {
					if obj, bad := hot(arg); bad {
						pass.Reportf(m.Pos(),
							"make sized by decoded value %s with no bound check before allocation — cap it first (readCount/upfrontCap)", obj.Name())
					}
				}
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{m.Low, m.High, m.Max} {
				if bound == nil {
					continue
				}
				if obj, bad := hot(bound); bad {
					pass.Reportf(m.Pos(),
						"slice bound from decoded value %s with no preceding length check — validate against len/cap first", obj.Name())
				}
			}
		}
		return true
	})
}

// isDecodeSource reports whether e is a call producing an
// attacker-controlled integer from a wire buffer.
func isDecodeSource(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if _, ok := isPkgSelector(pass.TypesInfo, call.Fun, "encoding/binary", varintReads); ok {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && endianSizes[sel.Sel.Name] {
		// binary.LittleEndian.Uint32 / binary.BigEndian.Uint64: check the
		// receiver is the binary package's byte-order value.
		if t := pass.TypeOf(sel.X); t != nil {
			if named, ok := t.(*types.Named); ok {
				if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
					return true
				}
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && sourceRe.MatchString(id.Name) {
		return true
	}
	return false
}

func mentionsTainted(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	for _, obj := range identObjs(pass.TypesInfo, e) {
		if tainted[obj] {
			return true
		}
	}
	return false
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isComparison(b *ast.BinaryExpr) bool {
	switch b.Op.String() {
	case "<", ">", "<=", ">=", "==", "!=":
		return true
	}
	return false
}
