package checkers

import (
	"go/ast"
	"regexp"

	"wmsketch/internal/analysis"
)

// NonFinite polices ingest boundaries: a function that reads, decodes,
// parses, restores, or unmarshals external data and materializes float64s
// from raw bits (math.Float64frombits) or text (strconv.ParseFloat) must
// check finiteness somewhere in its body — a NaN smuggled into sketch
// state poisons every estimate it touches, and NaN compares false against
// every bound so range checks do not catch it.
var NonFinite = &analysis.Analyzer{
	Name: "nonfinite",
	Doc: "flags decode/parse/restore functions that produce float64s from raw bits " +
		"or text without a NaN/Inf check: call math.IsNaN/IsInf or a validator " +
		"(isBad/validate.../checkFinite) before the value escapes.",
	Run: runNonFinite,
}

var (
	ingestFuncRe  = regexp.MustCompile(`(?i)(read|decode|parse|restore|unmarshal)`)
	validatorRe   = regexp.MustCompile(`(?i)(valid|finite|isbad|check)`)
	floatSourceRe = regexp.MustCompile(`^(Float64frombits|Float32frombits|ParseFloat)$`)
)

func runNonFinite(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !ingestFuncRe.MatchString(fn.Name.Name) {
				continue
			}
			checkNonFinite(pass, fn)
		}
	}
	return nil
}

func checkNonFinite(pass *analysis.Pass, fn *ast.FuncDecl) {
	// A finiteness check anywhere in the body clears the function: either a
	// direct math.IsNaN/IsInf, or delegation to a validator by name.
	checked := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "IsNaN" || name == "IsInf" || validatorRe.MatchString(name) {
			checked = true
			return false
		}
		return true
	})
	if checked {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := calleeName(call); floatSourceRe.MatchString(name) {
			pass.Reportf(call.Pos(),
				"%s crosses an ingest boundary in %s with no NaN/Inf check in scope — validate finiteness before the value escapes", name, fn.Name.Name)
		}
		return true
	})
}
