// Package checkers holds the project-specific analyzers wmlint runs. Each
// one mechanically enforces an invariant the test suite can only probe:
// clockdet (virtual-time discipline in the cluster layer), maporder
// (no order-sensitive work inside map iteration), decodebounds (decoded
// sizes are bounded before they allocate or slice), guardedby (annotated
// fields are only touched under their mutex), nonfinite (floats are
// finiteness-checked at ingest boundaries), and ctxflow (functions that
// receive a context thread it instead of minting a fresh root). See
// LINTING.md for the full
// contract of each, including how to suppress a deliberate exception with
// `//lint:ignore <analyzer> <reason>`.
package checkers

import (
	"go/ast"
	"go/types"
	"regexp"

	"wmsketch/internal/analysis"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{ClockDet, MapOrder, DecodeBounds, GuardedBy, NonFinite, MetricNames, CtxFlow}
}

// pkgFunc reports whether call is a call of (or reference to) the function
// pkgPath.name, e.g. pkgFunc(info, call.Fun, "time", "Now").
func isPkgSelector(info *types.Info, e ast.Expr, pkgPath string, names map[string]bool) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Qualified identifier: X must name the imported package itself.
	base := sel.X
	// binary.LittleEndian.Uint32: the package qualifier is one level down.
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		base = inner.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if !names[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeName returns the bare name of a call's target: the selector's last
// element or the identifier itself.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// fullCalleeName renders a call target with its qualifier chain, e.g.
// "sort.Strings" or "stream.SortWeighted", so regexes can match either the
// package/receiver or the function name.
func fullCalleeName(call *ast.CallExpr) string {
	var render func(e ast.Expr) string
	render = func(e ast.Expr) string {
		switch v := e.(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			return render(v.X) + "." + v.Sel.Name
		}
		return ""
	}
	return render(call.Fun)
}

// containsCall reports whether any call under n has a qualified callee
// name matching re.
func containsCall(n ast.Node, re *regexp.Regexp) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && re.MatchString(fullCalleeName(call)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// identObjs collects the objects of every identifier under e.
func identObjs(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}
