package checkers

import (
	"go/ast"
	"go/token"
	"strings"

	"wmsketch/internal/analysis"
)

// ctxRoots are the context-package constructors that mint a fresh root
// context, severing the trace and cancellation chain.
var ctxRoots = map[string]bool{"Background": true, "TODO": true}

// CtxFlow enforces context propagation on the request and gossip planes:
// a function that already holds a context — a context.Context parameter or
// an *http.Request (whose Context carries the handler span) — must thread
// it, not mint context.Background()/context.TODO(). A fresh root inside
// such a function drops cancellation, deadlines, and the active trace
// span, which is exactly how a cross-node lineage chain goes dark.
// Functions without an incoming context (background loops, Close paths)
// may mint roots freely.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background/context.TODO inside internal/server and " +
		"internal/cluster functions that already receive a context.Context or " +
		"*http.Request; minting a fresh root there severs cancellation and the " +
		"trace chain the causal-lineage gate depends on.",
	Filter: func(pkgPath string) bool {
		for _, p := range []string{"wmsketch/internal/server", "wmsketch/internal/cluster"} {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	// Both a FuncDecl and a FuncLit nested inside it can carry a context
	// parameter; reported positions are deduplicated so a root minted under
	// two context-bearing scopes flags once.
	seen := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasCtxParam(pass, ft) {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := isPkgSelector(pass.TypesInfo, call.Fun, "context", ctxRoots)
				if !ok || seen[call.Pos()] {
					return true
				}
				seen[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"context.%s minted in a function that already receives a context; thread the incoming one (it carries cancellation and the active trace span)", name)
				return true
			})
			return true
		})
	}
	return nil
}

// hasCtxParam reports whether the function type declares a parameter whose
// type is context.Context or *http.Request.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch t.String() {
		case "context.Context", "*net/http.Request":
			return true
		}
	}
	return false
}
