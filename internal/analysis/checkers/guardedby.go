package checkers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"wmsketch/internal/analysis"
)

// GuardedBy enforces `// guarded by <mu>` field annotations: a struct
// field carrying the annotation may only be touched in functions that
// visibly hold the lock. A function is considered to hold <mu> when it
// calls <something>.<mu>.Lock() or .RLock() itself, when its name ends in
// "Locked" (the project convention for caller-holds-lock helpers), or when
// the struct value was constructed locally (constructors initialize fields
// before the value is shared).
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "enforces `// guarded by <mu>` field comments: annotated fields may only be " +
		"accessed in functions that lock <mu>, in *Locked helpers, or on locally " +
		"constructed values.",
	Run: runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runGuardedBy(pass *analysis.Pass) error {
	// Pass 1: collect annotated fields, keyed by their types.Object.
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := fieldGuard(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}

	// Pass 2: check every access.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedFunc(pass, fn, guards)
		}
	}
	return nil
}

// fieldGuard extracts the mutex name from a field's doc or line comment.
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkGuardedFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]string) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	// Which mutex names does this function visibly lock?
	held := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			held[muSel.Sel.Name] = true
		} else if id, ok := sel.X.(*ast.Ident); ok {
			held[id.Name] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded || held[mu] {
			return true
		}
		if locallyConstructed(pass, fn, sel.X) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s is guarded by %s but accessed without holding it — lock %s, or move the access into a %sLocked helper",
			sel.Sel.Name, mu, mu, "...")
		return true
	})
}

// locallyConstructed reports whether the accessed base value is a variable
// declared inside this function's body (not the receiver or a parameter):
// a value still private to its constructor cannot be contended.
func locallyConstructed(pass *analysis.Pass, fn *ast.FuncDecl, base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() < fn.Body.End()
}
