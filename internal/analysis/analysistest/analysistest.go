// Package analysistest runs an analyzer over fixture packages and checks
// its findings against `// want "regex"` expectations embedded in the
// fixture source — the same convention as x/tools' analysistest, rebuilt
// on the project's stdlib-only analysis framework.
//
// A fixture line that must be flagged carries a trailing comment:
//
//	for k := range m { // want `iterates a map`
//
// Multiple expectations on one line are multiple quoted regexps. Lines
// without a want comment must produce no finding; both misses and
// unexpected findings fail the test.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"testing"

	"wmsketch/internal/analysis"
)

// TestData returns the caller's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// quoted matches one Go-quoted or backquoted string in a want comment.
var quoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// wantRe matches the expectation marker and its argument list.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> for each fixture, applies the analyzer
// (ignoring its package Filter, so fixtures can live anywhere), and
// compares findings with want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	moduleRoot := findModuleRoot(t, testdata)
	for _, fixture := range fixtures {
		fixture := fixture
		t.Run(fixture, func(t *testing.T) {
			t.Helper()
			// A fresh loader per fixture keeps one broken fixture from
			// poisoning another's package cache.
			l, err := analysis.NewLoader(moduleRoot)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.Load(filepath.Join(testdata, "src", fixture))
			if err != nil {
				t.Fatal(err)
			}

			unfiltered := *a
			unfiltered.Filter = nil
			diags, err := analysis.Run(pkg, []*analysis.Analyzer{&unfiltered})
			if err != nil {
				t.Fatal(err)
			}

			expects := collectWants(t, pkg)
			for _, d := range diags {
				if !match(expects, d) {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for _, e := range expects {
				if !e.matched {
					t.Errorf("%s: no finding matched want %q", e.pos, e.re)
				}
			}
		})
	}
}

func match(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.pos.Filename != d.Pos.Filename || e.pos.Line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := quoted.FindAllString(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern: %s", pos, c.Text)
				}
				for _, q := range args {
					s, err := unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					out = append(out, &expectation{pos: pos, re: re})
				}
			}
		}
	}
	return out
}

func unquote(q string) (string, error) {
	if len(q) >= 2 && q[0] == '`' {
		return q[1 : len(q)-1], nil
	}
	return strconv.Unquote(q)
}

func findModuleRoot(t *testing.T, dir string) string {
	t.Helper()
	d, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("analysistest: no go.mod above %s", dir)
		}
		d = parent
	}
}
