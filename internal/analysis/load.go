package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("wmsketch/internal/cluster").
	Path string
	// Dir is the directory the sources were read from.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads packages from source with full type information. It is a
// self-contained replacement for go/packages: module-local import paths
// resolve against the module root (from go.mod), everything else against
// GOROOT/src, so loading needs no module cache, no network, and no go
// subprocess. Cgo is disabled so every package presents its pure-Go file
// set. Loaded packages are cached for the loader's lifetime.
type Loader struct {
	fset       *token.FileSet
	ctxt       build.Context
	moduleRoot string
	modulePath string
	cache      map[string]*Package
}

// NewLoader returns a Loader for the module rooted at moduleRoot (the
// directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: loader needs a module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		fset:       token.NewFileSet(),
		ctxt:       ctxt,
		moduleRoot: abs,
		modulePath: modPath,
		cache:      make(map[string]*Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load loads and type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, l.pathForDir(abs))
}

// pathForDir derives the import path for a directory inside the module.
func (l *Loader) pathForDir(abs string) string {
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// dirForPath resolves an import path to a source directory: module-local
// paths under the module root, anything else in GOROOT/src (with the
// stdlib vendor directory as fallback).
func (l *Loader) dirForPath(path string) (string, error) {
	if path == l.modulePath {
		return l.moduleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	dir := filepath.Join(goroot, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(vdir); err == nil && fi.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle guard

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		delete(l.cache, path)
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			delete(l.cache, path)
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return l.importPath(p) }),
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		delete(l.cache, path)
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}

	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.cache[path] = p
	return p, nil
}

func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := l.dirForPath(path)
	if err != nil {
		return nil, err
	}
	p, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Expand resolves go-tool-style package patterns relative to root: a plain
// directory names itself, and a trailing "/..." walks the subtree. Like the
// go tool, the walk skips testdata, vendor, and dot/underscore directories,
// and directories with no buildable Go files are dropped silently from
// wildcard matches.
func (l *Loader) Expand(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string, wildcard bool) error {
		if seen[dir] {
			return nil
		}
		if _, err := l.ctxt.ImportDir(dir, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok && wildcard {
				return nil
			}
			return err
		}
		seen[dir] = true
		dirs = append(dirs, dir)
		return nil
	}
	for _, pat := range patterns {
		base, wild := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		start := base
		if !filepath.IsAbs(start) {
			start = filepath.Join(root, base)
		}
		if !wild {
			if err := add(start, false); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(p, true)
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
