// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. The project's
// invariant checkers (cmd/wmlint, see LINTING.md) are built on it rather
// than on x/tools so the lint suite builds from a clean module cache with
// the standard library alone.
//
// The deliberate differences from x/tools are small: there is no Fact or
// Requires machinery (every analyzer here is a single intra-package pass),
// and suppression is handled uniformly by the driver through
// `//lint:ignore <analyzer> <reason>` comments (see Suppressed).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// `//lint:ignore <name> <reason>` directives.
	Name string
	// Doc is the one-paragraph description `wmlint -help` prints: the
	// invariant enforced and how to satisfy or deliberately suppress it.
	Doc string
	// Filter, when non-nil, restricts the analyzer to packages whose import
	// path it accepts. Nil means every package.
	Filter func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Report*.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the directory the package was loaded from.
	Dir string

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Run applies every applicable analyzer to the package and returns the
// surviving findings: diagnostics on lines carrying a matching
// `//lint:ignore` directive are dropped, and malformed directives become
// findings of their own so a typo cannot silently disable a checker.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores, bad := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		if a.Filter != nil && !a.Filter(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Dir:       pkg.Dir,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diagnostics {
			if ignores.suppressed(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	return out, nil
}
