package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreDirectiveSuppressesSameAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:ignore demo constructor runs before the value is shared
var a = 1

var b = 2 //lint:ignore demo deliberate exception
`)
	set, bad := collectIgnores(fset, files)
	if len(bad) != 0 {
		t.Fatalf("well-formed directives reported: %v", bad)
	}
	// Directive on line 3 covers findings on lines 3 and 4.
	for _, line := range []int{3, 4} {
		if !set.suppressed("demo", token.Position{Filename: "x.go", Line: line}) {
			t.Fatalf("line %d not suppressed by the directive above it", line)
		}
	}
	if !set.suppressed("demo", token.Position{Filename: "x.go", Line: 6}) {
		t.Fatal("same-line directive did not suppress")
	}
	// A different analyzer's findings are untouched.
	if set.suppressed("other", token.Position{Filename: "x.go", Line: 4}) {
		t.Fatal("directive suppressed the wrong analyzer")
	}
	// Lines without a covering directive stay live.
	if set.suppressed("demo", token.Position{Filename: "x.go", Line: 1}) {
		t.Fatal("unrelated line suppressed")
	}
}

func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:ignore demo
var a = 1

//lint:ignore
var b = 2
`)
	set, bad := collectIgnores(fset, files)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %v", bad)
	}
	for _, d := range bad {
		if d.Analyzer != "lintdirective" || !strings.Contains(d.Message, "lint:ignore") {
			t.Fatalf("bad malformed-directive diagnostic: %+v", d)
		}
	}
	// A reasonless directive must not suppress anything.
	if set.suppressed("demo", token.Position{Filename: "x.go", Line: 4}) {
		t.Fatal("malformed directive suppressed a finding")
	}
}
