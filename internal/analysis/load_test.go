package analysis

import (
	"path/filepath"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLoadTypeChecksRealPackage: the loader resolves module-local and
// stdlib imports from source and produces full type information for a real
// package with a deep dependency tree (internal/cluster imports net/http).
func TestLoadTypeChecksRealPackage(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load(filepath.Join(root, "internal", "cluster"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "wmsketch/internal/cluster" {
		t.Fatalf("import path %q", p.Path)
	}
	if len(p.Files) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatalf("incomplete package: %d files", len(p.Files))
	}
	if p.Types.Scope().Lookup("Node") == nil {
		t.Fatal("type info missing cluster.Node")
	}
	// Test files must be excluded: analyzers police production code only.
	for _, f := range p.Files {
		name := l.Fset().Position(f.Pos()).Filename
		if filepath.Base(name) == "membership_test.go" {
			t.Fatal("loader included a _test.go file")
		}
	}
}

// TestExpandPatterns: "./..." walks the tree like the go tool — skipping
// testdata, vendor, and dot/underscore directories — and plain directory
// patterns name themselves.
func TestExpandPatterns(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Expand(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		got[filepath.ToSlash(rel)] = true
	}
	for _, want := range []string{"internal/cluster", "internal/sketch", "cmd/wmlint"} {
		if !got[want] {
			t.Fatalf("Expand(./...) missed %s (got %d dirs)", want, len(dirs))
		}
	}
	for dir := range got {
		if filepath.Base(dir) == "testdata" || len(dir) > len("internal/analysis/testdata") &&
			dir[:len("internal/analysis/testdata")] == "internal/analysis/testdata" {
			t.Fatalf("Expand descended into testdata: %s", dir)
		}
	}

	one, err := l.Expand(root, []string{"./internal/hashing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || filepath.Base(one[0]) != "hashing" {
		t.Fatalf("plain pattern: %v", one)
	}
}
