package decodebounds

import (
	"bufio"
	"encoding/binary"
	"errors"
)

const maxCount = 1 << 16

func badMake(r *bufio.Reader) ([]uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n) // want `make sized by decoded value n`
	return out, nil
}

func goodMake(r *bufio.Reader) ([]uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, errors.New("count too large")
	}
	return make([]uint64, n), nil
}

func badSlice(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, errors.New("short buffer")
	}
	n := binary.LittleEndian.Uint32(buf)
	return buf[4 : 4+n], nil // want `slice bound from decoded value n`
}

func goodSlice(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, errors.New("short buffer")
	}
	n := binary.LittleEndian.Uint32(buf)
	if int(n) > len(buf)-4 {
		return nil, errors.New("truncated payload")
	}
	return buf[4 : 4+n], nil
}

// Taint must follow the value through conversions and arithmetic.
func badPropagated(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	size := int(n) * 8
	return make([]byte, size), nil // want `make sized by decoded value size`
}

func clampCount(n uint64) int {
	if n > maxCount {
		return maxCount
	}
	return int(n)
}

// Passing the decoded value through a bounding helper sanitizes it.
func goodHelperBounded(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, clampCount(n)), nil
}

// A size that never saw the wire is none of this analyzer's business.
func goodStaticSize(k int) []byte {
	return make([]byte, k)
}
