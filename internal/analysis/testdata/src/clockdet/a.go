package clockdet

import "time"

type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

func bad(d time.Duration) {
	_ = time.Now()              // want `time\.Now bypasses the injected Clock`
	<-time.After(d)             // want `time\.After bypasses the injected Clock`
	time.Sleep(d)               // want `time\.Sleep bypasses the injected Clock`
	_ = time.NewTimer(d)        // want `time\.NewTimer bypasses the injected Clock`
	_ = time.NewTicker(d)       // want `time\.NewTicker bypasses the injected Clock`
	_ = time.Since(time.Time{}) // want `time\.Since bypasses the injected Clock`
}

// good goes through the injected clock; durations and time.Time values are
// not wall-clock reads and must not flag.
func good(c clock, d time.Duration) time.Time {
	deadline := c.Now().Add(2 * time.Second)
	select {
	case t := <-c.After(d):
		return t
	default:
	}
	return deadline
}

// wall is a deliberate exception: the suppression must hold the finding
// back, so this function expects no diagnostics.
func wall() time.Time {
	//lint:ignore clockdet fixture exercises the suppression path
	return time.Now()
}
