package maporder

import "sort"

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulates a float across a map iteration`
	}
	return sum
}

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to out in map-iteration order`
	}
	return out
}

func goodAppendSortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodSortedKeysFirst(m map[string]float64) float64 {
	var sum float64
	for _, k := range sortedKeys(m) {
		sum += m[k]
	}
	return sum
}

type encoder struct{}

func (encoder) WriteString(s string) {}

func badEncode(m map[string]int, e encoder) {
	for k := range m {
		e.WriteString(k) // want `calls WriteString inside a map iteration`
	}
}

// A float update keyed by the loop variable touches each element
// independently — order cannot matter, so it must not flag.
func goodPerElementUpdate(m map[string]float64, w float64) {
	for k := range m {
		m[k] -= w
	}
	for k, v := range m {
		m[k] = v * 0.5
	}
}

// Integer accumulation commutes exactly and a loop-local slice cannot leak
// iteration order: neither may flag.
func goodLocalWork(m map[string]int) int {
	n := 0
	for k := range m {
		tmp := make([]string, 0, 1)
		tmp = append(tmp, k)
		n += len(tmp)
	}
	return n
}
