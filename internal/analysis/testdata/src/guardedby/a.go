package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	rmu sync.RWMutex
	// hits counts read-side lookups.
	// guarded by rmu
	hits int

	free int // unannotated: never checked
}

func (c *counter) bad() int {
	return c.n // want `n is guarded by mu but accessed without holding it`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodRead() int {
	c.rmu.RLock()
	defer c.rmu.RUnlock()
	return c.hits
}

// hitsLocked follows the caller-holds-the-lock naming convention.
func (c *counter) hitsLocked() int {
	return c.hits
}

// newCounter initializes fields before the value is shared: allowed.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.hits = 0
	return c
}

func (c *counter) badWrongLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.hits++ // want `hits is guarded by rmu but accessed without holding it`
}

func (c *counter) goodUnguarded() int {
	return c.free
}
