package metricnames

// Registry is a stub mirroring wmsketch/internal/obs.Registry — the
// analyzer matches the receiver's named type, not the import path, so the
// fixture stays self-contained.
type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

func (*Registry) Counter(name, help string) *Counter                         { return nil }
func (*Registry) Gauge(name, help string) *Gauge                             { return nil }
func (*Registry) GaugeFunc(name, help string, fn func() float64) *Gauge      { return nil }
func (*Registry) Histogram(name, help string, buckets []float64) *Histogram  { return nil }
func (*Registry) CounterVec(name, help string, labels ...string) *CounterVec { return nil }
func (*Registry) GaugeVec(name, help string, labels ...string) *GaugeVec     { return nil }
func (*Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}

// other has the same method names but is not a Registry; it must not flag.
type other struct{}

func (other) Counter(name, help string) int { return 0 }

func good(r *Registry, o other) {
	r.Counter("wmserve_requests_total", "requests served")
	r.CounterVec("wmserve_http_requests_total", "per route", "route", "code")
	r.Gauge("wmserve_in_flight_requests", "live requests")
	r.GaugeVec("wmgossip_peer_state", "per peer", "peer")
	r.GaugeFunc("wmcore_memory_bytes", "resident sketch bytes", func() float64 { return 0 })
	r.Histogram("wmserve_request_duration_seconds", "latency", nil)
	r.Histogram("wmserve_body_bytes", "body sizes", nil)
	r.HistogramVec("wmcore_update_batch_size", "batch sizes", nil, "route")
	o.Counter("NotAMetric", "different receiver type, out of scope")
}

func bad(r *Registry, dynamic string) {
	r.Counter("wmserve_requests", "no suffix")                                        // want `counter "wmserve_requests" must end in _total`
	r.CounterVec("wmserveRequests_total", "camel", "route")                           // want `metric name "wmserveRequests_total" is not lower snake_case`
	r.Gauge("wmserve_in_flight_total", "gauge as counter")                            // want `gauge "wmserve_in_flight_total" must not end in _total`
	r.GaugeFunc("_uptime_seconds", "leading underscore", func() float64 { return 0 }) // want `metric name "_uptime_seconds" is not lower snake_case`
	r.Histogram("wmserve_latency", "no unit", nil)                                    // want `histogram "wmserve_latency" must end in a unit suffix`
	r.HistogramVec("wmserve_latency_ms", "wrong unit", nil, "route")                  // want `histogram "wmserve_latency_ms" must end in a unit suffix`
	r.Counter(dynamic, "not a literal")                                               // want `counter name must be a string literal`
}

// exempt is a deliberate exception: the suppression must hold the finding
// back, so this function expects no diagnostics.
func exempt(r *Registry) {
	//lint:ignore metricnames fixture exercises the suppression path
	r.Counter("legacy_requests", "grandfathered name")
}
