package ctxflow

import (
	"context"
	"net/http"
)

// bad already receives a context: a fresh root severs cancellation and the
// trace chain.
func bad(ctx context.Context) {
	_ = context.Background() // want `context\.Background minted in a function that already receives a context`
	_ = context.TODO()       // want `context\.TODO minted in a function that already receives a context`
	use(ctx)
}

// badHandler holds an *http.Request, whose Context carries the handler
// span — minting a root instead of r.Context() drops the trace.
func badHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background minted in a function that already receives a context`
	use(ctx)
	_ = r
}

// badLit: a function literal with its own context parameter is in scope
// even when the enclosing function is not.
func badLit() func(context.Context) {
	return func(ctx context.Context) {
		_ = context.TODO() // want `context\.TODO minted in a function that already receives a context`
		use(ctx)
	}
}

// good threads the incoming context.
func good(ctx context.Context) context.Context {
	return context.WithValue(ctx, key{}, 1)
}

// goodRoot has no incoming context — background loops and Close paths may
// mint roots freely.
func goodRoot() context.Context {
	return context.Background()
}

// goodIgnored is a deliberate exception: the suppression must hold the
// finding back.
func goodIgnored(ctx context.Context) context.Context {
	use(ctx)
	//lint:ignore ctxflow fixture exercises the suppression path
	return context.Background()
}

type key struct{}

func use(context.Context) {}
