package nonfinite

import (
	"errors"
	"math"
	"strconv"
)

func parseBad(s string) (float64, error) {
	return strconv.ParseFloat(s, 64) // want `ParseFloat crosses an ingest boundary in parseBad`
}

func parseGood(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errors.New("non-finite value")
	}
	return v, nil
}

func decodeBad(bits uint64) float64 {
	return math.Float64frombits(bits) // want `Float64frombits crosses an ingest boundary in decodeBad`
}

// Delegating to a validator by name (isBad, validate*, checkFinite, ...)
// also clears the function.
func decodeGoodDelegated(bits uint64) float64 {
	v := math.Float64frombits(bits)
	if isBad(v) {
		return 0
	}
	return v
}

func isBad(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// frombitsHelper is outside the analyzer's scope: its name marks no ingest
// boundary, so its caller owns validation.
func frombitsHelper(bits uint64) float64 {
	return math.Float64frombits(bits)
}
