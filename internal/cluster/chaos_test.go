package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// recordingRT is a scriptable http.RoundTripper that records requests and
// answers each with a fixed body.
type recordingRT struct {
	calls  int
	bodies []string // request bodies seen
	reply  string
}

func (r *recordingRT) RoundTrip(req *http.Request) (*http.Response, error) {
	r.calls++
	if req.Body != nil {
		b, _ := io.ReadAll(req.Body)
		req.Body.Close()
		r.bodies = append(r.bodies, string(b))
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(r.reply)),
		Header:     make(http.Header),
	}, nil
}

func chaosReq(t *testing.T, host, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+host+"/v1/cluster/pull", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestChaosDropAndPartition(t *testing.T) {
	base := &recordingRT{reply: "ok"}
	ct := NewChaosTransport(base, ChaosConfig{
		Seed: 42, Drop: 1,
		Partition: func(host string) bool { return host == "cut:1" },
	})
	if _, err := ct.RoundTrip(chaosReq(t, "cut:1", "")); err == nil {
		t.Fatal("partitioned host reachable")
	}
	if _, err := ct.RoundTrip(chaosReq(t, "up:1", "")); err == nil {
		t.Fatal("drop=1 let a request through")
	}
	if base.calls != 0 {
		t.Fatalf("faulted requests reached the base transport %d times", base.calls)
	}
	st := ct.Stats()
	if st.Dropped != 1 || st.Partitioned != 1 {
		t.Fatalf("stats %+v, want 1 dropped + 1 partitioned", st)
	}
}

func TestChaosDuplicateReplaysBody(t *testing.T) {
	base := &recordingRT{reply: "ok"}
	ct := NewChaosTransport(base, ChaosConfig{Seed: 7, Dup: 1})
	resp, err := ct.RoundTrip(chaosReq(t, "up:1", "payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if base.calls != 2 {
		t.Fatalf("dup=1 sent %d requests, want 2", base.calls)
	}
	if len(base.bodies) != 2 || base.bodies[0] != "payload" || base.bodies[1] != "payload" {
		t.Fatalf("duplicated bodies %q, want two copies of the payload", base.bodies)
	}
	if st := ct.Stats(); st.Duplicated != 1 {
		t.Fatalf("stats %+v, want 1 duplicated", st)
	}
}

// TestChaosCorruptionRejectedByDecoder: a corrupted frame stream must fail
// frame decoding, never be ingested.
func TestChaosCorruptionRejectedByDecoder(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrames(&buf, []Frame{{Kind: kindDigest, Digest: map[string]int64{"a": 3}}}); err != nil {
		t.Fatal(err)
	}
	clean := buf.String()
	base := &recordingRT{reply: clean}
	ct := NewChaosTransport(base, ChaosConfig{Seed: 3, Corrupt: 1})
	resp, err := ct.RoundTrip(chaosReq(t, "up:1", ""))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == clean {
		t.Fatal("corrupt=1 left the body intact")
	}
	if _, err := ReadFrames(bytes.NewReader(body)); err == nil {
		// Flips in the header break magic/version/kind checks; flips in the
		// payload or trailer fail the per-frame CRC.
		t.Fatal("decoder accepted a corrupted stream")
	}
}

// TestChaosDeterministicSchedule: the same seed produces the same
// drop/pass schedule; a different seed produces a different one.
func TestChaosDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) string {
		ct := NewChaosTransport(&recordingRT{reply: "ok"}, ChaosConfig{Seed: seed, Drop: 0.5})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if resp, err := ct.RoundTrip(chaosReq(t, "up:1", "")); err != nil {
				sb.WriteByte('x')
			} else {
				resp.Body.Close()
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	a, b := schedule(11), schedule(11)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if c := schedule(12); c == a {
		t.Fatalf("different seeds produced the same 64-request schedule")
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("drop=0.5 schedule is degenerate: %s", a)
	}
}

// TestChaosDelayRunsOnInjectedClock: with a VirtualClock injected, the
// delay blocks until the clock is advanced — no wall-clock sleeping — and
// a canceled request context unblocks it.
func TestChaosDelayRunsOnInjectedClock(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	base := &recordingRT{reply: "ok"}
	ct := NewChaosTransport(base, ChaosConfig{
		Seed: 5, DelayProb: 1, Delay: time.Hour, Clock: clock,
	})

	done := make(chan error, 1)
	go func() {
		resp, err := ct.RoundTrip(chaosReq(t, "up:1", ""))
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// An hour of virtual delay must not complete on its own.
	select {
	case <-done:
		t.Fatal("delayed request completed without the clock advancing")
	case <-time.After(20 * time.Millisecond):
	}

	clock.Advance(time.Hour)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("delayed request failed after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Advance did not release the delayed request")
	}
	if st := ct.Stats(); st.Delayed != 1 {
		t.Fatalf("stats %+v, want 1 delayed", st)
	}

	// A canceled context aborts the virtual wait instead of leaking the
	// goroutine until the next Advance.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, err := ct.RoundTrip(chaosReq(t, "up:1", "").WithContext(ctx))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled delayed request returned no error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("context cancel did not unblock the delayed request")
	}
}

// TestChaosDelayScheduleDeterministic: which requests get delayed is a pure
// function of the seed, independent of the clock driving the delays.
func TestChaosDelayScheduleDeterministic(t *testing.T) {
	schedule := func(seed int64) string {
		clock := NewVirtualClock(time.Unix(0, 0))
		ct := NewChaosTransport(&recordingRT{reply: "ok"}, ChaosConfig{
			Seed: seed, DelayProb: 0.5, Delay: time.Minute, Clock: clock,
		})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			before := ct.Stats().Delayed
			done := make(chan struct{})
			go func() {
				if resp, err := ct.RoundTrip(chaosReq(t, "up:1", "")); err == nil {
					resp.Body.Close()
				}
				close(done)
			}()
			// Lock-step: wait for the roll, then release any pending delay.
			for ct.Stats().Requests == int64(i) {
				time.Sleep(time.Millisecond)
			}
			if ct.Stats().Delayed > before {
				sb.WriteByte('d')
				clock.Advance(time.Minute)
			} else {
				sb.WriteByte('.')
			}
			<-done
		}
		return sb.String()
	}
	a, b := schedule(11), schedule(11)
	if a != b {
		t.Fatalf("same seed, different delay schedules:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "d") || !strings.Contains(a, ".") {
		t.Fatalf("delayp=0.5 schedule is degenerate: %s", a)
	}
}

func TestParseChaos(t *testing.T) {
	cfg, err := ParseChaos("drop=0.1,dup=0.05,corrupt=0.01,delay=50ms,delayp=0.5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.1 || cfg.Dup != 0.05 || cfg.Corrupt != 0.01 ||
		cfg.Delay != 50*time.Millisecond || cfg.DelayProb != 0.5 || cfg.Seed != 7 {
		t.Fatalf("parsed %+v", cfg)
	}
	// delay alone implies delayp=1.
	cfg, err = ParseChaos("delay=10ms")
	if err != nil || cfg.DelayProb != 1 {
		t.Fatalf("bare delay: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"drop=2", "drop=-1", "drop=NaN", "delayp=nan", "delay=xyz", "nope=1", "drop"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Fatalf("ParseChaos(%q) accepted garbage", bad)
		}
	}
	// ChaosConfig holds a func field, so compare the parsed fields directly.
	if cfg, err := ParseChaos(""); err != nil || cfg.Drop != 0 || cfg.Dup != 0 ||
		cfg.Corrupt != 0 || cfg.Delay != 0 || cfg.DelayProb != 0 || cfg.Seed != 0 {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
}
