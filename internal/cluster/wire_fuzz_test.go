package cluster

import (
	"bytes"
	"testing"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
)

// fuzzCorpus builds seed inputs from real encoded streams: a digest-only
// stream, a full sync, a delta, plus truncated and bit-flipped variants —
// the corpus CI's fuzz smoke starts from.
func fuzzCorpus(f *testing.F) {
	b := newMemberF(f, "node-b")
	for _, ex := range datagen.RCV1Like(21).Take(300) {
		b.learner.Update(ex.X, ex.Y)
	}
	if _, _, err := b.node.PublishLocal(); err != nil {
		f.Fatal(err)
	}
	full := b.node.BuildFrames(map[string]int64{}, true)
	var buf bytes.Buffer
	if _, err := WriteFrames(&buf, full); err != nil {
		f.Fatal(err)
	}
	fullStream := append([]byte(nil), buf.Bytes()...)
	base := full[len(full)-1].Version

	for _, ex := range datagen.RCV1Like(22).Take(40) {
		b.learner.Update(ex.X, ex.Y)
	}
	if _, _, err := b.node.PublishLocal(); err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if _, err := WriteFrames(&buf, b.node.BuildFrames(map[string]int64{"node-b": base}, false)); err != nil {
		f.Fatal(err)
	}
	deltaStream := append([]byte(nil), buf.Bytes()...)

	buf.Reset()
	if _, err := WriteFrames(&buf, []Frame{{Kind: kindDigest, Digest: map[string]int64{"a": 1, "b": 2}}}); err != nil {
		f.Fatal(err)
	}
	digestStream := append([]byte(nil), buf.Bytes()...)

	for _, s := range [][]byte{digestStream, fullStream, deltaStream} {
		f.Add(s)
		// Truncations at interesting depths: inside the header, the length
		// prefix, the payload, and the checksum trailer.
		for _, cut := range []int{3, 9, len(s) / 2, len(s) - 3, len(s) - 1} {
			if cut > 0 && cut < len(s) {
				f.Add(append([]byte(nil), s[:cut]...))
			}
		}
		// Bit flips across the stream.
		for _, at := range []int{0, 5, 8, len(s) / 3, 2 * len(s) / 3, len(s) - 2} {
			if at >= 0 && at < len(s) {
				c := append([]byte(nil), s...)
				c[at] ^= 0xA5
				f.Add(c)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("WMCF"))
}

// newMemberF mirrors newMember for fuzz seeding (testing.F, not testing.T).
func newMemberF(f *testing.F, id string) *testMember {
	f.Helper()
	cfg := clusterConfig()
	l := core.NewAWMSketch(cfg)
	n, err := NewNode(Config{Self: id, Mix: mixOpt(cfg), Local: l, Interval: -1})
	if err != nil {
		f.Fatal(err)
	}
	return &testMember{node: n, learner: l}
}

// FuzzReadFrames: whatever bytes arrive, the decoder must return cleanly —
// no panic, no unbounded allocation — and anything it does accept must
// survive a re-encode/re-decode round trip (decoded state is well-formed,
// not just non-crashing).
func FuzzReadFrames(f *testing.F) {
	fuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := ReadFrames(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := WriteFrames(&buf, frames); err != nil {
			t.Fatalf("accepted stream failed to re-encode: %v", err)
		}
		again, err := ReadFrames(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(again) != len(frames) {
			t.Fatalf("round trip changed frame count: %d -> %d", len(frames), len(again))
		}
	})
}
