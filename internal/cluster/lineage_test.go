package cluster

import (
	"bytes"
	"context"
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/trace"
)

// TestLineageRecordsApplyTrace: every adopted frame lands in the lineage
// ring under the trace that delivered it — the wire annotation survives the
// encode/decode round trip and a remote-continued apply records the
// sender's trace id, while an untraced apply records a zero id (which is
// exactly what the simulator's gate flags).
func TestLineageRecordsApplyTrace(t *testing.T) {
	a := newMember(t, "a")
	b := newMember(t, "b")
	train(b, datagen.RCV1Like(41).Take(50))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}

	sender := trace.SpanContext{
		TraceID: trace.TraceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		SpanID:  trace.SpanID{1, 2, 3, 4, 5, 6, 7, 8},
	}
	var buf bytes.Buffer
	frames := b.node.BuildFrames(map[string]int64{}, true)
	if _, err := WriteFramesTraced(&buf, sender, frames); err != nil {
		t.Fatal(err)
	}
	decoded, sc, err := ReadFramesTraced(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc != sender {
		t.Fatalf("annotation %+v did not survive the wire, want %+v", sc, sender)
	}

	res := a.node.ApplyFramesCtx(trace.ContextWithRemote(context.Background(), sc), decoded)
	if res.Applied == 0 {
		t.Fatalf("nothing applied: %+v", res)
	}
	entries, dropped := a.node.DrainLineage()
	if dropped != 0 || len(entries) != res.Applied {
		t.Fatalf("lineage recorded %d entries (%d dropped), want %d", len(entries), dropped, res.Applied)
	}
	for _, e := range entries {
		if e.Trace != sender.TraceID {
			t.Fatalf("entry %+v recorded trace %s, want the sender's %s", e, e.Trace, sender.TraceID)
		}
		if e.Origin != "b" || e.Version <= 0 {
			t.Fatalf("bogus lineage entry %+v", e)
		}
	}
	if again, _ := a.node.DrainLineage(); len(again) != 0 {
		t.Fatalf("drain did not empty the ring: %d entries remain", len(again))
	}

	// An untraced apply (no tracer, no annotation) records the zero trace —
	// the "state out of thin air" signature the simulator's gate rejects.
	train(b, datagen.RCV1Like(42).Take(50))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	res = a.node.ApplyFrames(b.node.BuildFrames(map[string]int64{}, true))
	if res.Applied == 0 {
		t.Fatalf("nothing applied on the second exchange: %+v", res)
	}
	entries, _ = a.node.DrainLineage()
	if len(entries) != res.Applied {
		t.Fatalf("lineage recorded %d entries, want %d", len(entries), res.Applied)
	}
	for _, e := range entries {
		if !e.Trace.IsZero() {
			t.Fatalf("untraced apply recorded trace %s, want zero", e.Trace)
		}
	}
}
