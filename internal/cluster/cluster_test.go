package cluster

import (
	"bytes"
	"fmt"
	"log/slog"
	"testing"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// testLogWriter routes slog text output through t.Logf.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testLogger builds a debug-level slog.Logger narrating into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t: t},
		&slog.HandlerOptions{Level: slog.LevelDebug}))
}

func clusterConfig() core.Config {
	return core.Config{Width: 512, Depth: 1, HeapSize: 64, Lambda: 1e-6, Seed: 7}
}

func mixOpt(cfg core.Config) core.MixOptions {
	return core.MixOptions{Depth: cfg.Depth, Width: cfg.Width, Seed: cfg.Seed, HeapSize: cfg.HeapSize}
}

type testMember struct {
	node    *Node
	learner *core.AWMSketch
}

func newMember(t *testing.T, id string) *testMember {
	t.Helper()
	cfg := clusterConfig()
	l := core.NewAWMSketch(cfg)
	n, err := NewNode(Config{
		Self:     id,
		Mix:      mixOpt(cfg),
		Local:    l,
		Interval: -1, // manual rounds
		Logger:   testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testMember{node: n, learner: l}
}

// exchange reconciles b's state into a (one directed pull, a ← b),
// round-tripping the frames through the wire encoding like real gossip.
func exchange(t *testing.T, a, b *testMember) ApplyResult {
	t.Helper()
	if _, _, err := a.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	frames := b.node.BuildFrames(a.node.Digest(), true)
	var buf bytes.Buffer
	if _, err := WriteFrames(&buf, frames); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := a.node.ApplyFrames(decoded)
	if len(res.NeedFull) > 0 {
		// Delta base missing: force fulls, as the gossip client does.
		digest := a.node.Digest()
		for _, origin := range res.NeedFull {
			digest[origin] = 0
		}
		full := b.node.BuildFrames(digest, false)
		var buf2 bytes.Buffer
		if _, err := WriteFrames(&buf2, full); err != nil {
			t.Fatal(err)
		}
		dec2, err := ReadFrames(&buf2)
		if err != nil {
			t.Fatal(err)
		}
		r2 := a.node.ApplyFrames(dec2)
		res.Applied += r2.Applied
		res.Rejected += r2.Rejected
	}
	return res
}

func train(m *testMember, examples []stream.Example) {
	for _, ex := range examples {
		m.learner.Update(ex.X, ex.Y)
	}
}

// TestTwoNodeConvergenceViaWire trains two nodes on disjoint halves,
// reconciles both directions over the encoded wire, and checks both views
// agree bit-wise with each other and with directly mixing the two local
// snapshots.
func TestTwoNodeConvergenceViaWire(t *testing.T) {
	cfg := clusterConfig()
	a, b := newMember(t, "node-a"), newMember(t, "node-b")
	data := datagen.RCV1Like(31).Take(3000)
	train(a, data[:1500])
	train(b, data[1500:])

	exchange(t, a, b)
	exchange(t, b, a)

	snA, err := a.learner.ModelSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snB, err := b.learner.ModelSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snA.Origin, snB.Origin = "node-a", "node-b"
	canonical := func(sn core.Snapshot) core.Snapshot {
		h := append([]stream.Weighted(nil), sn.Heavy...)
		stream.SortWeighted(h)
		sn.Heavy = h
		return sn
	}
	want, err := core.MixSnapshots([]core.Snapshot{canonical(snA), canonical(snB)}, mixOpt(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2048; i++ {
		va, vb, vw := a.node.View().Estimate(i), b.node.View().Estimate(i), want.Estimate(i)
		if va != vw || vb != vw {
			t.Fatalf("Estimate(%d): a=%v b=%v direct-mix=%v", i, va, vb, vw)
		}
	}
}

// TestDeltaFramesAfterFirstSync: the first reconciliation ships a full
// snapshot; subsequent rounds, with the base acked, must ship deltas — and
// they must reconstruct the newer version exactly.
func TestDeltaFramesAfterFirstSync(t *testing.T) {
	a, b := newMember(t, "node-a"), newMember(t, "node-b")
	gen := datagen.RCV1Like(5)
	train(b, gen.Take(1000))

	exchange(t, a, b)
	st := b.node.Status()
	if st.FullsOut != 1 || st.DeltasOut != 0 {
		t.Fatalf("first sync: fulls=%d deltas=%d, want 1/0", st.FullsOut, st.DeltasOut)
	}

	// A little more training on b: now a holds the base, so b must send a
	// delta.
	train(b, gen.Take(50))
	exchange(t, a, b)
	st = b.node.Status()
	if st.DeltasOut != 1 {
		t.Fatalf("second sync sent no delta: fulls=%d deltas=%d", st.FullsOut, st.DeltasOut)
	}

	// The reconstructed state must match b's own snapshot bit-wise.
	snB, err := b.learner.ModelSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	aStatus := a.node.Status()
	var got *OriginStatus
	for i := range aStatus.Origins {
		if aStatus.Origins[i].ID == "node-b" {
			got = &aStatus.Origins[i]
		}
	}
	if got == nil || got.Steps != snB.Steps {
		t.Fatalf("a's view of node-b: %+v, want steps %d", got, snB.Steps)
	}
	// And a's merged view of a heavy b-feature equals direct mixing.
	frames := b.node.BuildFrames(a.node.Digest(), false)
	if len(frames) != 0 {
		t.Fatalf("a is fully synced yet b built %d frames", len(frames))
	}
}

// TestDeltaSmallerThanFull measures what the ISSUE requires: after a small
// increment, the delta frame must encode to fewer bytes than the full
// snapshot.
func TestDeltaSmallerThanFull(t *testing.T) {
	a, b := newMember(t, "node-a"), newMember(t, "node-b")
	gen := datagen.RCV1Like(5)
	train(b, gen.Take(2000))
	exchange(t, a, b)

	train(b, gen.Take(20))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	deltaFrames := b.node.BuildFrames(a.node.Digest(), false)
	if len(deltaFrames) != 1 || deltaFrames[0].Kind != kindDelta {
		t.Fatalf("expected one delta frame, got %+v", deltaFrames)
	}
	var deltaBuf bytes.Buffer
	deltaBytes, err := WriteFrames(&deltaBuf, deltaFrames)
	if err != nil {
		t.Fatal(err)
	}
	fullDigest := map[string]int64{} // knows nothing → full
	fullFrames := b.node.BuildFrames(fullDigest, false)
	if len(fullFrames) != 1 || fullFrames[0].Kind != kindFull {
		t.Fatalf("expected one full frame, got %d", len(fullFrames))
	}
	var fullBuf bytes.Buffer
	fullBytes, err := WriteFrames(&fullBuf, fullFrames)
	if err != nil {
		t.Fatal(err)
	}
	if deltaBytes >= fullBytes {
		t.Fatalf("delta (%d B) not smaller than full (%d B)", deltaBytes, fullBytes)
	}
	t.Logf("delta %d B vs full %d B (%.1f%%)", deltaBytes, fullBytes, 100*float64(deltaBytes)/float64(fullBytes))
}

// TestTransitiveRelay: in a line topology a—b—c, a's state must reach c
// through b without a and c ever talking.
func TestTransitiveRelay(t *testing.T) {
	a, b, c := newMember(t, "node-a"), newMember(t, "node-b"), newMember(t, "node-c")
	train(a, datagen.RCV1Like(3).Take(800))

	exchange(t, b, a) // b learns a
	exchange(t, c, b) // c learns a via b

	found := false
	for _, o := range c.node.Status().Origins {
		if o.ID == "node-a" && o.Steps == 800 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node-a did not relay through b to c: %+v", c.node.Status().Origins)
	}
}

// TestIdempotentReplay: applying the same frames twice must change nothing
// the second time.
func TestIdempotentReplay(t *testing.T) {
	a, b := newMember(t, "node-a"), newMember(t, "node-b")
	train(b, datagen.RCV1Like(17).Take(500))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	frames := b.node.BuildFrames(a.node.Digest(), false)
	first := a.node.ApplyFrames(frames)
	if first.Applied != 1 {
		t.Fatalf("first apply: %+v", first)
	}
	second := a.node.ApplyFrames(frames)
	if second.Applied != 0 || second.Stale != 1 {
		t.Fatalf("replay applied state again: %+v", second)
	}
}

// TestRejectsOwnOriginAndBadGeometry: a node must not let a peer overwrite
// its own origin, nor adopt state from a differently-seeded cluster.
func TestRejectsOwnOriginAndBadGeometry(t *testing.T) {
	a := newMember(t, "node-a")
	train(a, datagen.RCV1Like(2).Take(100))
	if _, _, err := a.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}

	// Forge a frame claiming a's own origin at a huge version.
	impostor := newMember(t, "node-a")
	train(impostor, datagen.RCV1Like(99).Take(2000))
	if _, _, err := impostor.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	frames := impostor.node.BuildFrames(map[string]int64{}, false)
	res := a.node.ApplyFrames(frames)
	if res.Applied != 0 || res.Rejected != 1 {
		t.Fatalf("own-origin frame not rejected: %+v", res)
	}

	// A node from a different-seed cluster must be rejected too.
	otherCfg := clusterConfig()
	otherCfg.Seed = 12345
	l := core.NewAWMSketch(otherCfg)
	other, err := NewNode(Config{Self: "node-x", Mix: core.MixOptions{
		Depth: otherCfg.Depth, Width: otherCfg.Width, Seed: otherCfg.Seed, HeapSize: otherCfg.HeapSize,
	}, Local: l, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range datagen.RCV1Like(1).Take(200) {
		l.Update(ex.X, ex.Y)
	}
	if _, _, err := other.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	frames = other.BuildFrames(map[string]int64{}, false)
	res = a.node.ApplyFrames(frames)
	if res.Applied != 0 || res.Rejected != 1 {
		t.Fatalf("wrong-seed frame not rejected: %+v", res)
	}
}

// TestStaleBaseFallsBackToFull: when the requester's acked version has
// aged out of the history window, the responder must send a full frame
// rather than fail.
func TestStaleBaseFallsBackToFull(t *testing.T) {
	cfg := clusterConfig()
	l := core.NewAWMSketch(cfg)
	b, err := NewNode(Config{
		Self: "node-b", Mix: mixOpt(cfg), Local: l, Interval: -1, HistoryDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.RCV1Like(8)
	for _, ex := range gen.Take(100) {
		l.Update(ex.X, ex.Y)
	}
	v1, _, err := b.PublishLocal()
	if err != nil {
		t.Fatal(err)
	}
	// Age v1 out of the 2-deep history with two more publishes.
	for round := 0; round < 2; round++ {
		for _, ex := range gen.Take(100) {
			l.Update(ex.X, ex.Y)
		}
		if _, _, err := b.PublishLocal(); err != nil {
			t.Fatal(err)
		}
	}
	frames := b.BuildFrames(map[string]int64{"node-b": v1}, false)
	if len(frames) != 1 || frames[0].Kind != kindFull {
		t.Fatalf("stale base did not fall back to full: %+v", frames)
	}
}

// TestWireRoundTripAllKinds round-trips every frame kind through the
// encoder.
func TestWireRoundTripAllKinds(t *testing.T) {
	b := newMember(t, "node-b")
	train(b, datagen.RCV1Like(4).Take(300))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	full := b.node.BuildFrames(map[string]int64{}, true)
	if len(full) != 2 || full[0].Kind != kindDigest || full[1].Kind != kindFull {
		t.Fatalf("unexpected frames: %d", len(full))
	}
	train(b, datagen.RCV1Like(44).Take(30))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	delta := b.node.BuildFrames(map[string]int64{"node-b": full[1].Version}, false)
	if len(delta) != 1 || delta[0].Kind != kindDelta {
		t.Fatalf("expected delta frame, got kind %d", delta[0].Kind)
	}
	all := append(append([]Frame{}, full...), delta...)
	var buf bytes.Buffer
	if _, err := WriteFrames(&buf, all); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrames(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("round-trip %d frames, want %d", len(got), len(all))
	}
	for i := range all {
		w, g := all[i], got[i]
		if g.Kind != w.Kind || g.Origin != w.Origin || g.Version != w.Version || g.Base != w.Base {
			t.Fatalf("frame %d header mismatch: %+v vs %+v", i, g, w)
		}
		if w.Kind == kindDigest && fmt.Sprint(g.Digest) != fmt.Sprint(w.Digest) {
			t.Fatalf("digest mismatch: %v vs %v", g.Digest, w.Digest)
		}
		if len(g.Changes) != len(w.Changes) || len(g.Heavy) != len(w.Heavy) || len(g.HeavyUpserts) != len(w.HeavyUpserts) {
			t.Fatalf("frame %d payload size mismatch", i)
		}
		for j := range w.Changes {
			if g.Changes[j] != w.Changes[j] {
				t.Fatalf("frame %d change %d mismatch", i, j)
			}
		}
	}
}

// TestReadFramesRejectsGarbage: corrupt streams must error cleanly.
func TestReadFramesRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		{0x46, 0x43, 0x4d, 0x57, 1, 0, 0, 0, 99}, // good header, bad kind
	}
	for i, c := range cases {
		if _, err := ReadFrames(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}
