package cluster

import (
	"wmsketch/internal/obs"
)

// Gossip instrumentation. Every counter the node used to keep as an ad-hoc
// atomic now lives as a pre-registered handle in an obs.Registry, so the
// same numbers drive Status(), /v1/cluster/status, the /metrics exposition,
// and the simulator's journal-vs-registry exact-match invariant. All
// handles are resolved at construction; the gossip hot path only touches
// atomics (obs's zero-allocation contract).
//
// Direction semantics mirror the gossip client exactly:
//
//   - in:  frames/bytes this node READ off pull responses (counted only
//     after ReadFrames succeeds, so a corrupted stream counts nothing);
//   - out: frames/bytes this node WROTE into push requests (counted only
//     after the transport accepts the push).
//
// Frames a node builds while *answering* a peer's pull are credited to the
// puller's "in" counters, not the responder's "out" — byte-for-byte, wire
// traffic is counted exactly once, by its consumer. Built/applied frame
// counters (delta-vs-full economics) are kind-scoped and independent of
// direction.

// kindLabel names a frame kind for metric labels. Unknown kinds cannot
// reach the counters (ReadFrames rejects them; builders only emit the
// three).
func kindLabel(kind byte) string {
	switch kind {
	case kindDigest:
		return "digest"
	case kindFull:
		return "full"
	case kindDelta:
		return "delta"
	}
	return "other"
}

// nodeMetrics holds the node's pre-registered instrument handles. The
// struct is immutable after newNodeMetrics; the instruments themselves are
// internally synchronized.
type nodeMetrics struct {
	reg *obs.Registry

	rounds   *obs.Counter   // gossip rounds started
	roundDur *obs.Histogram // one peer reconciliation, on the injected Clock

	peerRoundOK   *obs.Counter
	peerRoundFail *obs.Counter

	bytesIn  *obs.Counter // pull-response stream bytes (incl. 36-byte header)
	bytesOut *obs.Counter // push-request stream bytes (incl. 36-byte header)

	// Indexed by frame kind byte (kindDigest..kindDelta).
	framesIn      [4]*obs.Counter
	framesOut     [4]*obs.Counter
	frameBytesIn  [4]*obs.Counter
	frameBytesOut [4]*obs.Counter

	builtFull    *obs.Counter
	builtDelta   *obs.Counter
	appliedFull  *obs.Counter
	appliedDelta *obs.Counter

	staleDropped    *obs.Counter
	rejectedFrames  *obs.Counter
	originsGCed     *obs.Counter
	retriesDeferred *obs.Counter

	// Indexed by PeerLiveness (alive/suspect/dead).
	transitions [3]*obs.Counter
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &nodeMetrics{reg: reg}

	m.rounds = reg.Counter("wmgossip_rounds_total", "gossip rounds started")
	m.roundDur = reg.Histogram("wmgossip_round_duration_seconds",
		"one peer reconciliation (pull, apply, push back), measured on the injected clock",
		obs.LatencyBuckets)

	results := reg.CounterVec("wmgossip_peer_rounds_total",
		"peer reconciliations by outcome", "result")
	m.peerRoundOK = results.With("ok")
	m.peerRoundFail = results.With("fail")

	streamBytes := reg.CounterVec("wmgossip_stream_bytes_total",
		"gossip stream bytes counted by the client (header included)", "dir")
	m.bytesIn = streamBytes.With("in")
	m.bytesOut = streamBytes.With("out")

	frames := reg.CounterVec("wmgossip_frames_total",
		"frames read from pulls (in) and written to pushes (out), by kind", "dir", "kind")
	frameBytes := reg.CounterVec("wmgossip_frame_bytes_total",
		"encoded frame bytes by direction and kind (excludes the stream header)", "dir", "kind")
	for _, kind := range []byte{kindDigest, kindFull, kindDelta} {
		m.framesIn[kind] = frames.With("in", kindLabel(kind))
		m.framesOut[kind] = frames.With("out", kindLabel(kind))
		m.frameBytesIn[kind] = frameBytes.With("in", kindLabel(kind))
		m.frameBytesOut[kind] = frameBytes.With("out", kindLabel(kind))
	}

	built := reg.CounterVec("wmgossip_frames_built_total",
		"state frames assembled for peers (pull answers and pushes), by kind", "kind")
	m.builtFull = built.With("full")
	m.builtDelta = built.With("delta")
	applied := reg.CounterVec("wmgossip_frames_applied_total",
		"state frames adopted into the origin table, by kind", "kind")
	m.appliedFull = applied.With("full")
	m.appliedDelta = applied.With("delta")
	reg.GaugeFunc("wmgossip_delta_built_ratio",
		"fraction of built state frames that were deltas (the compression win)",
		func() float64 {
			d, f := float64(m.builtDelta.Value()), float64(m.builtFull.Value())
			if d+f == 0 {
				return 0
			}
			return d / (d + f)
		})

	m.staleDropped = reg.Counter("wmgossip_stale_frames_total",
		"frames dropped because the held version was not older")
	m.rejectedFrames = reg.Counter("wmgossip_rejected_frames_total",
		"frames refused by validation (bad kind, own origin, geometry, decode)")
	m.originsGCed = reg.Counter("wmgossip_origins_gced_total",
		"origins tombstoned by the age-based GC")
	m.retriesDeferred = reg.Counter("wmgossip_retries_deferred_total",
		"rounds whose inline full re-pull was deferred to the next digest")

	trans := reg.CounterVec("wmgossip_peer_transitions_total",
		"peer membership transitions, by destination state", "to")
	for st := PeerAlive; st <= PeerDead; st++ {
		m.transitions[st] = trans.With(st.String())
	}
	return m
}

// transition records one peer membership state change.
func (m *nodeMetrics) transition(to PeerLiveness) {
	if to >= PeerAlive && to <= PeerDead {
		m.transitions[to].Inc()
	}
}

// countFrames attributes a delivered frame list to one direction's
// per-kind counters.
func (m *nodeMetrics) countFrames(frames []Frame, in bool) {
	counts, sizes := &m.framesOut, &m.frameBytesOut
	if in {
		counts, sizes = &m.framesIn, &m.frameBytesIn
	}
	for i := range frames {
		k := frames[i].Kind
		if int(k) >= len(counts) || counts[k] == nil {
			continue
		}
		counts[k].Inc()
		sizes[k].Add(frames[i].WireBytes)
	}
}

// sumKinds totals a per-kind counter bank (the aggregate Status fields).
func sumKinds(bank *[4]*obs.Counter) int64 {
	var total int64
	for _, c := range bank {
		if c != nil {
			total += c.Value()
		}
	}
	return total
}

// Metrics returns the registry backing this node's instrumentation — the
// node's own when Config.Registry was nil, the shared one otherwise.
func (n *Node) Metrics() *obs.Registry { return n.met.reg }
