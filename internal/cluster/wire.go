// Package cluster replicates WM-/AWM-Sketch models between wmserve nodes
// without a coordinator or shared disk. Each node periodically exchanges
// model state with its configured peers and merges everything it knows via
// example-count-weighted parameter mixing (core.MixSnapshots) — the
// paper's linear-mergeability property applied across machines instead of
// across cores. State is replicated per origin (one entry per node id),
// which makes merging idempotent and convergent: receiving the same frame
// twice, or the same state along two gossip paths, cannot double-count an
// example. See CLUSTER.md for the topology and convergence discussion.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"wmsketch/internal/core"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/trace"
)

// Wire format (little-endian). A frame stream is
//
//	magic    uint32 ("WMCF")
//	version  uint32
//	trace id [16]byte (v3: W3C trace id of the round this stream belongs to)
//	span id  [8]byte  (v3: the sending span; all-zero trace/span = untraced)
//	crc32    uint32   (v3: IEEE, over the 32 bytes above)
//
//	frames  until EOF
//
// The trace annotation is how a gossip stream stays causally attributable
// without a per-frame cost: the receiver continues the sender's trace when
// applying the stream, which is what the simulator's causal-lineage gate
// checks end to end. It rides in the header (not a frame) so the fixed
// stream overhead stays constant and the byte-accounting invariant stays
// exact. The header CRC exists for the same reason the per-frame one does:
// magic/version checks cannot see a flipped bit inside the annotation, and
// an apply recorded under a corrupted trace id would be lineage evidence
// pointing at a round that never happened.
//
// Each frame is
//
//	kind    byte
//	length  uvarint (payload bytes)
//	payload length bytes, kind-specific fields
//	crc32   uint32 (IEEE, over the payload)
//
// The per-frame CRC exists because structural validation alone cannot
// catch payload corruption: a bit flip inside a float64 weight is still
// finite, bounded, and perfectly parseable — without the checksum it would
// be ingested into model state at a valid version and gossip onward. With
// it, any corrupted frame fails the stream whole and the round is retried.
//
// Within a payload: origins are length-prefixed UTF-8 strings; counts and
// bucket indices are uvarints; model versions are uvarints (a version IS
// the origin's example count, so it is non-negative and monotonic);
// weights and bucket values are raw float64 bits.
//
// Frame kinds:
//
//	digest: the sender's origin → version map. Carried in pull responses so
//	        the requester can push back what the responder lacks
//	        (push-pull anti-entropy in one round trip).
//	full:   a complete snapshot of one origin's model — heavy list plus the
//	        folded Count-Sketch in its own (hardened) serialization.
//	delta:  only what changed between the receiver's acked version (base)
//	        and the sender's current version: changed buckets as
//	        gap-encoded flat indices with their new values, plus the heavy
//	        list diff (removed keys + upserted entries). Values are
//	        absolute, not additive, so replay is harmless.
const (
	frameMagic  = 0x574d4346 // "WMCF"
	wireVersion = 3          // v2 added per-frame length + CRC32; v3 the header trace annotation
	// streamHeaderSize is the fixed stream prefix: magic, version, the
	// 24-byte trace annotation, and the header CRC.
	streamHeaderSize = 4 + 4 + 16 + 8 + 4
	kindDigest       = byte(1)
	kindFull     = byte(2)
	kindDelta    = byte(3)
	maxOriginLen = 256
	// maxFrameBytes bounds one frame's declared payload length.
	maxFrameBytes = 1 << 28
	// Per-kind count bounds, each matched to what the data can legitimately
	// hold: a digest has one entry per cluster member, a heavy list is
	// capped by the serialization layer's heap bound (2^24, mirroring
	// core's maxSerializedHeap), and a change list by the sketch bucket
	// bound (2^27, mirroring sketch's maxSerializedBuckets).
	maxDigestEntries = 1 << 16
	maxHeavyEntries  = 1 << 24
	maxChangeEntries = 1 << 27
	// maxUpfrontAlloc caps the capacity allocated from a wire-supplied
	// count alone. Larger (still-bounded) counts grow by append as payload
	// bytes actually arrive, so a tiny hostile frame claiming 2^27 entries
	// cannot demand gigabytes before its (absent) payload fails to read.
	maxUpfrontAlloc = 1 << 16
)

func upfrontCap(n int) int {
	if n > maxUpfrontAlloc {
		return maxUpfrontAlloc
	}
	return n
}

// Frame is one decoded wire frame.
type Frame struct {
	Kind    byte
	Origin  string
	Version int64 // the origin's example count at this state
	Base    int64 // delta: the version the changes apply to
	// Scale is the model's global decay multiplier at this version
	// (model = Scale·CS). Buckets travel raw so deltas stay sparse; the
	// scale is one float per frame.
	Scale float64

	// Full payload.
	CS    *sketch.CountSketch
	Heavy []stream.Weighted

	// Delta payload.
	Changes      []sketch.BucketChange
	HeavyRemoved []uint32
	HeavyUpserts []stream.Weighted

	// Digest payload.
	Digest map[string]int64

	// WireBytes is this frame's full encoded size (kind byte + length
	// prefix + payload + CRC trailer), filled in by WriteFrames and
	// ReadFrames. The per-frame-type byte metrics and the simulator's
	// journal-vs-registry invariant are both built on it: the stream size
	// is always streamHeaderSize (36) + Σ WireBytes.
	WireBytes int64
}

// FullFrame builds a full-snapshot frame for sn.
func FullFrame(sn core.Snapshot) Frame {
	return Frame{Kind: kindFull, Origin: sn.Origin, Version: sn.Steps, Scale: scaleOr1(sn.Scale), CS: sn.CS, Heavy: sn.Heavy}
}

func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteFrames encodes the stream header and frames with no trace
// annotation, returning the bytes written. Each frame's payload is
// length-prefixed and trailed by its CRC32, so receivers can prove
// integrity before decoding a byte of it.
func WriteFrames(w io.Writer, frames []Frame) (int64, error) {
	return WriteFramesTraced(w, trace.SpanContext{}, frames)
}

// WriteFramesTraced is WriteFrames with the sender's span identity stamped
// into the stream header, linking this stream to the gossip round that
// produced it. An invalid (zero) sc writes an untraced header of the same
// size.
func WriteFramesTraced(w io.Writer, sc trace.SpanContext, frames []Frame) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	var hdr [streamHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], wireVersion)
	if sc.Valid() {
		copy(hdr[8:24], sc.TraceID[:])
		copy(hdr[24:32], sc.SpanID[:])
	}
	binary.LittleEndian.PutUint32(hdr[32:], crc32.ChecksumIEEE(hdr[:32]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	var scratch bytes.Buffer
	for i := range frames {
		scratch.Reset()
		if err := writeFramePayload(&scratch, &frames[i]); err != nil {
			return cw.n, fmt.Errorf("cluster: frame %d (%q): %w", i, frames[i].Origin, err)
		}
		payload := scratch.Bytes()
		if len(payload) > maxFrameBytes {
			return cw.n, fmt.Errorf("cluster: frame %d (%q): payload %d exceeds %d bytes",
				i, frames[i].Origin, len(payload), maxFrameBytes)
		}
		if err := bw.WriteByte(frames[i].Kind); err != nil {
			return cw.n, err
		}
		writeUvarint(bw, uint64(len(payload)))
		if _, err := bw.Write(payload); err != nil {
			return cw.n, err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(crc[:]); err != nil {
			return cw.n, err
		}
		frames[i].WireBytes = frameWireSize(len(payload))
	}
	err := bw.Flush()
	return cw.n, err
}

// writeFramePayload encodes f's kind-specific fields into buf.
func writeFramePayload(buf *bytes.Buffer, f *Frame) error {
	bw := bufio.NewWriter(buf)
	if err := writeFrameFields(bw, buf, f); err != nil {
		return err
	}
	return bw.Flush()
}

// writeFrameFields writes through bw; the kindFull arm flushes and hands
// the sketch's own serializer the raw buffer, as it writes directly.
func writeFrameFields(bw *bufio.Writer, raw *bytes.Buffer, f *Frame) error {
	switch f.Kind {
	case kindDigest:
		writeUvarint(bw, uint64(len(f.Digest)))
		// Deterministic order is not required on the wire (receivers build a
		// map), but stable output helps tests and debugging.
		for _, id := range sortedKeys(f.Digest) {
			if err := writeString(bw, id); err != nil {
				return err
			}
			writeUvarint(bw, uint64(f.Digest[id]))
		}
		return nil
	case kindFull:
		if err := writeString(bw, f.Origin); err != nil {
			return err
		}
		writeUvarint(bw, uint64(f.Version))
		writeFloat(bw, scaleOr1(f.Scale))
		if err := writeWeighted(bw, f.Heavy); err != nil {
			return err
		}
		// The sketch's own serialization carries shape, seed, and bucket
		// validation; flush our buffer first since WriteTo writes directly.
		if err := bw.Flush(); err != nil {
			return err
		}
		_, err := f.CS.WriteTo(raw)
		return err
	case kindDelta:
		if err := writeString(bw, f.Origin); err != nil {
			return err
		}
		writeUvarint(bw, uint64(f.Version))
		writeUvarint(bw, uint64(f.Base))
		writeFloat(bw, scaleOr1(f.Scale))
		writeUvarint(bw, uint64(len(f.Changes)))
		prev := uint32(0)
		for i, ch := range f.Changes {
			if i > 0 && ch.Index <= prev {
				return fmt.Errorf("changes not strictly ascending at %d", i)
			}
			writeUvarint(bw, uint64(ch.Index-prev))
			writeFloat(bw, ch.Value)
			prev = ch.Index
		}
		writeUvarint(bw, uint64(len(f.HeavyRemoved)))
		for _, k := range f.HeavyRemoved {
			writeUvarint(bw, uint64(k))
		}
		return writeWeighted(bw, f.HeavyUpserts)
	default:
		return fmt.Errorf("unknown frame kind %d", f.Kind)
	}
}

// ReadFrames decodes a full frame stream, discarding the header's trace
// annotation. Every frame's CRC is verified before its payload is decoded,
// every count is bounded, and every float checked finite before it can
// reach model state — so a corrupt, truncated, or hostile stream yields an
// error, not an OOM or a poisoned sketch.
func ReadFrames(r io.Reader) ([]Frame, error) {
	frames, _, err := ReadFramesTraced(r)
	return frames, err
}

// ReadFramesTraced is ReadFrames plus the stream's trace annotation. The
// returned SpanContext is the sender's span identity, or the zero value
// for an untraced stream; it needs no validation beyond Valid() because an
// all-zero annotation is exactly the invalid SpanContext.
func ReadFramesTraced(r io.Reader) ([]Frame, trace.SpanContext, error) {
	br := bufio.NewReader(r)
	var hdr [streamHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, trace.SpanContext{}, fmt.Errorf("cluster: truncated stream header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != frameMagic {
		return nil, trace.SpanContext{}, fmt.Errorf("cluster: bad frame magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != wireVersion {
		return nil, trace.SpanContext{}, fmt.Errorf("cluster: unsupported wire version %d", v)
	}
	if got := binary.LittleEndian.Uint32(hdr[32:]); got != crc32.ChecksumIEEE(hdr[:32]) {
		return nil, trace.SpanContext{}, fmt.Errorf("cluster: stream header CRC mismatch")
	}
	var sc trace.SpanContext
	copy(sc.TraceID[:], hdr[8:24])
	copy(sc.SpanID[:], hdr[24:32])
	var frames []Frame
	for {
		kind, err := br.ReadByte()
		if err == io.EOF {
			return frames, sc, nil
		}
		if err != nil {
			return nil, trace.SpanContext{}, err
		}
		if kind != kindDigest && kind != kindFull && kind != kindDelta {
			return nil, trace.SpanContext{}, fmt.Errorf("cluster: frame %d: unknown frame kind %d", len(frames), kind)
		}
		payload, err := readPayload(br)
		if err != nil {
			return nil, trace.SpanContext{}, fmt.Errorf("cluster: frame %d: %w", len(frames), err)
		}
		f, err := decodeFramePayload(kind, payload)
		if err != nil {
			return nil, trace.SpanContext{}, fmt.Errorf("cluster: frame %d: %w", len(frames), err)
		}
		f.WireBytes = frameWireSize(len(payload))
		frames = append(frames, f)
	}
}

// readPayload reads one frame's length-prefixed payload and verifies its
// CRC. The declared length is bounded, and allocation grows by bounded
// chunks as bytes actually arrive, so a tiny hostile frame claiming a huge
// payload cannot demand the memory up front.
func readPayload(br *bufio.Reader) ([]byte, error) {
	n, err := readCount(br, maxFrameBytes)
	if err != nil {
		return nil, fmt.Errorf("payload length: %w", err)
	}
	payload := make([]byte, 0, upfrontCap(n))
	for len(payload) < n {
		chunk := n - len(payload)
		if chunk > maxUpfrontAlloc {
			chunk = maxUpfrontAlloc
		}
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, payload[start:]); err != nil {
			return nil, fmt.Errorf("truncated payload: %w", err)
		}
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("truncated checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("checksum mismatch (payload %#x, trailer %#x)", got, want)
	}
	return payload, nil
}

// decodeFramePayload decodes one CRC-verified payload and requires it to
// be fully consumed — trailing bytes mark a malformed frame.
func decodeFramePayload(kind byte, payload []byte) (Frame, error) {
	pr := bytes.NewReader(payload)
	br := bufio.NewReader(pr)
	f, err := readFrame(br, kind)
	if err != nil {
		return f, err
	}
	if br.Buffered() > 0 || pr.Len() > 0 {
		return f, fmt.Errorf("%d trailing bytes after payload", br.Buffered()+pr.Len())
	}
	return f, nil
}

func readFrame(br *bufio.Reader, kind byte) (Frame, error) {
	f := Frame{Kind: kind}
	switch kind {
	case kindDigest:
		n, err := readCount(br, maxDigestEntries)
		if err != nil {
			return f, err
		}
		f.Digest = make(map[string]int64, upfrontCap(n))
		for i := 0; i < n; i++ {
			id, err := readString(br)
			if err != nil {
				return f, err
			}
			v, err := readUvarint(br)
			if err != nil {
				return f, err
			}
			f.Digest[id] = int64(v)
		}
		return f, nil
	case kindFull:
		var err error
		if f.Origin, err = readString(br); err != nil {
			return f, err
		}
		v, err := readUvarint(br)
		if err != nil {
			return f, err
		}
		f.Version = int64(v)
		if f.Scale, err = readScale(br); err != nil {
			return f, err
		}
		if f.Heavy, err = readWeighted(br); err != nil {
			return f, err
		}
		if f.CS, err = sketch.ReadCountSketch(br); err != nil {
			return f, err
		}
		return f, nil
	case kindDelta:
		var err error
		if f.Origin, err = readString(br); err != nil {
			return f, err
		}
		v, err := readUvarint(br)
		if err != nil {
			return f, err
		}
		f.Version = int64(v)
		b, err := readUvarint(br)
		if err != nil {
			return f, err
		}
		f.Base = int64(b)
		if f.Scale, err = readScale(br); err != nil {
			return f, err
		}
		n, err := readCount(br, maxChangeEntries)
		if err != nil {
			return f, err
		}
		f.Changes = make([]sketch.BucketChange, 0, upfrontCap(n))
		prev := uint64(0)
		for i := 0; i < n; i++ {
			gap, err := readUvarint(br)
			if err != nil {
				return f, err
			}
			idx := prev + gap
			if i > 0 && gap == 0 {
				return f, fmt.Errorf("non-ascending change index at %d", i)
			}
			if idx > math.MaxUint32 {
				return f, fmt.Errorf("change index %d overflows", idx)
			}
			val, err := readFloat(br)
			if err != nil {
				return f, err
			}
			f.Changes = append(f.Changes, sketch.BucketChange{Index: uint32(idx), Value: val})
			prev = idx
		}
		nr, err := readCount(br, maxHeavyEntries)
		if err != nil {
			return f, err
		}
		f.HeavyRemoved = make([]uint32, 0, upfrontCap(nr))
		for i := 0; i < nr; i++ {
			k, err := readUvarint(br)
			if err != nil {
				return f, err
			}
			if k > math.MaxUint32 {
				return f, fmt.Errorf("removed key %d overflows", k)
			}
			f.HeavyRemoved = append(f.HeavyRemoved, uint32(k))
		}
		if f.HeavyUpserts, err = readWeighted(br); err != nil {
			return f, err
		}
		return f, nil
	default:
		return f, fmt.Errorf("unknown frame kind %d", kind)
	}
}

// frameWireSize is the encoded size of a frame with the given payload
// length: kind byte, uvarint length prefix, payload, CRC32 trailer.
func frameWireSize(payloadLen int) int64 {
	var buf [binary.MaxVarintLen64]byte
	return int64(1 + binary.PutUvarint(buf[:], uint64(payloadLen)) + payloadLen + 4)
}

// ---- primitive encoders ----

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = bw.Write(buf[:n])
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}

func readCount(br *bufio.Reader, limit int) (int, error) {
	v, err := readUvarint(br)
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, fmt.Errorf("count %d exceeds limit %d", v, limit)
	}
	return int(v), nil
}

func writeString(bw *bufio.Writer, s string) error {
	if len(s) == 0 || len(s) > maxOriginLen {
		return fmt.Errorf("origin length %d out of range [1,%d]", len(s), maxOriginLen)
	}
	writeUvarint(bw, uint64(len(s)))
	_, err := bw.WriteString(s)
	return err
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readCount(br, maxOriginLen)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("empty origin")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeFloat(bw *bufio.Writer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, _ = bw.Write(b[:])
}

// readFloat decodes one float64 and rejects NaN/±Inf centrally: no frame
// field — weight, scale, or delta value — legitimately carries a
// non-finite float, and a NaN smuggled past here would poison sketch state
// while comparing false against every later bound.
func readFloat(br *bufio.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return 0, err
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite float on the wire (%g)", v)
	}
	return v, nil
}

// readScale reads and validates a model scale: real learners keep it in
// (0, 1] via renormalization, so anything non-positive marks a corrupt or
// hostile frame (readFloat already rejects non-finite values).
func readScale(br *bufio.Reader) (float64, error) {
	s, err := readFloat(br)
	if err != nil {
		return 0, err
	}
	if s <= 0 {
		return 0, fmt.Errorf("corrupt model scale %g", s)
	}
	return s, nil
}

func writeWeighted(bw *bufio.Writer, ws []stream.Weighted) error {
	writeUvarint(bw, uint64(len(ws)))
	for _, w := range ws {
		writeUvarint(bw, uint64(w.Index))
		writeFloat(bw, w.Weight)
	}
	return nil
}

func readWeighted(br *bufio.Reader) ([]stream.Weighted, error) {
	n, err := readCount(br, maxHeavyEntries)
	if err != nil {
		return nil, err
	}
	out := make([]stream.Weighted, 0, upfrontCap(n))
	for i := 0; i < n; i++ {
		k, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if k > math.MaxUint32 {
			return nil, fmt.Errorf("weighted key %d overflows", k)
		}
		// readFloat rejects non-finite weights at the decode layer.
		w, err := readFloat(br)
		if err != nil {
			return nil, err
		}
		out = append(out, stream.Weighted{Index: uint32(k), Weight: w})
	}
	return out, nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
