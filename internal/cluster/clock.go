package cluster

import (
	"sort"
	"sync"
	"time"
)

// Clock is the cluster layer's single source of time. Everything in this
// package that needs wall time — membership aging, backoff deadlines,
// origin GC, the gossip ticker, chaos delay injection — goes through an
// injected Clock, never the time package directly, so the discrete-event
// simulator (internal/cluster/sim) and the membership tests can drive a
// whole fleet on virtual time with zero wall-clock sleeps. The custom
// clockdet analyzer (cmd/wmlint, LINTING.md) mechanically enforces this:
// any raw time.Now/time.After/time.Sleep/time.NewTimer/time.NewTicker call
// in internal/cluster/... outside this file is a lint error.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed on this clock. Like time.After, a non-positive d fires
	// immediately.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker that delivers a tick every d on this
	// clock. d must be positive.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the Clock-level counterpart of *time.Ticker.
type Ticker interface {
	// Chan returns the delivery channel. Like time.Ticker, delivery is
	// lossy: a receiver that falls behind misses ticks instead of queueing
	// them.
	Chan() <-chan time.Time
	// Stop ends delivery. It does not close the channel.
	Stop()
}

// WallClock is the production Clock: real time from the time package.
var WallClock Clock = wallClock{}

type wallClock struct{}

//lint:ignore clockdet this is the Clock implementation the rest of the package is routed through
func (wallClock) Now() time.Time { return time.Now() }

//lint:ignore clockdet this is the Clock implementation the rest of the package is routed through
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

//lint:ignore clockdet this is the Clock implementation the rest of the package is routed through
func (wallClock) NewTicker(d time.Duration) Ticker { return wallTicker{time.NewTicker(d)} }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) Chan() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()                  { w.t.Stop() }

// VirtualClock is a manually-advanced Clock for tests and the simulator.
// Time moves only on Advance/Set; timers registered via After and NewTicker
// fire during the advance, in deadline order, stamped with their scheduled
// virtual fire time (never the wall clock). Safe for concurrent use, so a
// goroutine blocked in ChaosTransport's delay can be released by a test
// advancing the clock from outside.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*virtualTimer
}

type virtualTimer struct {
	at      time.Time
	period  time.Duration // 0 for one-shot After timers
	ch      chan time.Time
	stopped bool
}

// NewVirtualClock returns a VirtualClock reading start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. A non-positive d fires immediately at the
// current virtual time.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, &virtualTimer{at: c.now.Add(d), ch: ch})
	return ch
}

// NewTicker implements Clock. Ticks are delivered on Advance; like
// time.Ticker, delivery is lossy when the receiver is not ready.
func (c *VirtualClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("cluster: VirtualClock.NewTicker requires a positive period")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &virtualTimer{at: c.now.Add(d), period: d, ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return virtualTicker{c: c, t: t}
}

type virtualTicker struct {
	c *VirtualClock
	t *virtualTimer
}

func (v virtualTicker) Chan() <-chan time.Time { return v.t.ch }

func (v virtualTicker) Stop() {
	v.c.mu.Lock()
	v.t.stopped = true
	v.c.mu.Unlock()
}

// Advance moves the clock forward by d, firing every due timer in deadline
// order at its scheduled virtual time.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setLocked(c.now.Add(d))
}

// Set jumps the clock to t (which must not be earlier than Now), firing
// every timer due on the way.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic("cluster: VirtualClock cannot move backwards")
	}
	c.setLocked(t)
}

// setLocked advances to target, repeatedly firing the earliest due timer so
// interleaved one-shots and ticker re-arms are delivered in global deadline
// order. Caller holds c.mu.
func (c *VirtualClock) setLocked(target time.Time) {
	for {
		// Find the earliest live timer at or before target.
		idx := -1
		for i, t := range c.timers {
			if t.stopped {
				continue
			}
			if !t.at.After(target) && (idx < 0 || t.at.Before(c.timers[idx].at)) {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		t := c.timers[idx]
		c.now = t.at
		select {
		case t.ch <- t.at:
		default: // lossy, like time.Ticker
		}
		if t.period > 0 {
			t.at = t.at.Add(t.period)
		} else {
			t.stopped = true
		}
		c.compactLocked()
	}
	c.now = target
}

// compactLocked drops stopped timers so long-lived clocks do not leak
// one-shot entries. Caller holds c.mu.
func (c *VirtualClock) compactLocked() {
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.stopped {
			live = append(live, t)
		}
	}
	// Keep a stable order for determinism when deadlines tie.
	sort.SliceStable(live, func(i, j int) bool { return live[i].at.Before(live[j].at) })
	c.timers = live
}
