package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wmsketch/internal/core"
	"wmsketch/internal/obs"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/trace"
)

// Config configures a cluster Node.
type Config struct {
	// Self is this node's globally unique id (conventionally its advertised
	// address). It names the node's origin in every peer's state table; two
	// nodes sharing an id silently shadow each other.
	Self string
	// Peers are the base URLs (http://host:port) of the nodes to gossip
	// with. The peer graph must be connected for full convergence; it does
	// not need to be complete — state relays transitively.
	Peers []string
	// Mix is the sketch geometry every node in the cluster must share.
	Mix core.MixOptions
	// Local exports the local learner's model for publication.
	Local core.Snapshotter
	// Interval is the gossip cadence. 0 selects 2s; negative disables the
	// background loop (rounds then run only via GossipOnce, which tests and
	// the smoke harness drive directly).
	Interval time.Duration
	// HistoryDepth is how many recent versions of each origin's snapshot
	// are retained as delta bases. A peer whose acked version has aged out
	// of the window (or that was never seen) falls back to a full-snapshot
	// sync. 0 selects 8.
	HistoryDepth int
	// AuthToken, when set, is sent as a bearer token on cluster push
	// requests (the receiving node's -auth-token must match).
	AuthToken string
	// Client is the HTTP client used for gossip; nil selects a client with
	// a 15s timeout (a coarse backstop — per-round deadlines come from
	// RPCTimeout).
	Client *http.Client
	// RPCTimeout bounds one peer round's RPCs: pull, the bounded full
	// re-pull, and the push-back share a single context deadline, so a
	// stalled peer costs at most this much wall time per round. 0 selects
	// 10s; negative disables the deadline (the Client timeout still
	// applies per request).
	RPCTimeout time.Duration
	// Fanout is how many peers each round samples. 0 selects
	// ⌈log₂(N+1)⌉ with a floor of 3 (so clusters of ≤3 peers keep full
	// sweeps); negative forces a full sweep of every peer.
	Fanout int
	// SuspectAfter is the consecutive-failure count that marks a peer
	// suspect. 0 selects 3.
	SuspectAfter int
	// DeadAfter is how long a failing peer goes without a successful round
	// before it is declared dead and leaves the sampling pool (it is still
	// probed occasionally so a rejoin is noticed). 0 selects
	// max(30s, 10×Interval).
	DeadAfter time.Duration
	// OriginGCAfter is the idle age (no version advance) past which an
	// origin's mix weight starts decaying toward zero, so departed nodes
	// fade from the served model instead of freezing into it. 0 selects
	// 15m; negative disables origin GC.
	OriginGCAfter time.Duration
	// OriginGCDecay is the width of the linear decay ramp from full weight
	// to tombstoned. 0 selects OriginGCAfter/2.
	OriginGCDecay time.Duration
	// Seed drives peer sampling and dead-peer probing. 0 derives a seed
	// from Self, so distinct nodes sample distinct sequences and a fixed
	// (Self, Seed) pair replays deterministically.
	Seed int64
	// Clock is the time source; nil selects WallClock. Tests and the
	// discrete-event simulator inject a VirtualClock here, which is what
	// makes membership timing (backoff, suspect/dead promotion, origin GC),
	// the gossip ticker, and chaos delay injection drivable without
	// wall-clock sleeps.
	Clock Clock
	// Transport carries gossip RPCs; nil selects HTTP via Client, with
	// AuthToken on pushes.
	Transport Transport
	// Registry receives the node's gossip instrumentation (see metrics.go
	// for the family catalog). nil gives the node a private registry,
	// still readable via Metrics() — Status() is sourced from it either
	// way.
	Registry *obs.Registry
	// Logger receives gossip diagnostics; nil discards them. The node logs
	// through it with a node_id attribute and passes span contexts, so a
	// handler wrapped in trace.NewLogHandler joins gossip log lines to
	// their round traces.
	Logger *slog.Logger
	// Tracer spans gossip rounds, peer reconciliations, and frame applies,
	// and feeds the causal-lineage machinery. Nil disables tracing (every
	// span call is a no-op and lineage entries carry a zero trace ID). The
	// simulator injects a virtual-clock, fixed-seed tracer here.
	Tracer *trace.Tracer
}

func (c *Config) fill() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: Self id must be set")
	}
	if len(c.Self) > maxOriginLen {
		return fmt.Errorf("cluster: Self id longer than %d bytes", maxOriginLen)
	}
	if c.Local == nil {
		return fmt.Errorf("cluster: Local snapshotter must be set")
	}
	if c.Mix.Depth <= 0 || c.Mix.Width <= 0 {
		return fmt.Errorf("cluster: Mix geometry must be set")
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Second
	}
	if c.HistoryDepth <= 0 {
		c.HistoryDepth = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 10 * c.Interval
		if c.DeadAfter < 30*time.Second {
			c.DeadAfter = 30 * time.Second
		}
	}
	if c.OriginGCAfter == 0 {
		c.OriginGCAfter = 15 * time.Minute
	}
	if c.OriginGCDecay <= 0 {
		c.OriginGCDecay = c.OriginGCAfter / 2
	}
	if c.Seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(c.Self))
		c.Seed = int64(h.Sum64())
	}
	if c.Clock == nil {
		c.Clock = WallClock
	}
	if c.Transport == nil {
		c.Transport = httpTransport{client: c.Client, authToken: c.AuthToken}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	c.Logger = c.Logger.With(slog.String("node_id", c.Self))
	return nil
}

// versioned is one retained snapshot version, a delta base candidate.
type versioned struct {
	version int64
	snap    core.Snapshot
}

// originState is everything known about one node's model: the current
// snapshot plus a bounded history of recent versions kept as delta bases,
// and the GC bookkeeping that ages it out of the mix once it stops
// advancing.
type originState struct {
	id      string
	version int64
	snap    core.Snapshot
	history []versioned // ascending version, ≤ HistoryDepth entries, includes current
	// lastAdvance is when this node last adopted a NEW version of the
	// origin (local observation time — frames carry no timestamps).
	lastAdvance time.Time
	// gone marks a tombstone: the snapshot is freed and the origin mixes at
	// zero weight, but the version is retained so peers cannot gossip the
	// dead state back. A genuinely newer version revives it.
	gone bool
	// factorQ is the quantized GC factor at the last view rebuild, used to
	// re-dirty the view only when the decay ramp has moved perceptibly.
	factorQ uint8
}

func (o *originState) baseFor(version int64) (core.Snapshot, bool) {
	for _, v := range o.history {
		if v.version == version {
			return v.snap, true
		}
	}
	return core.Snapshot{}, false
}

func (o *originState) adopt(version int64, snap core.Snapshot, depth int, now time.Time) {
	o.version = version
	o.snap = snap
	o.lastAdvance = now
	o.gone = false
	o.history = append(o.history, versioned{version: version, snap: snap})
	if len(o.history) > depth {
		o.history = o.history[len(o.history)-depth:]
	}
}

// Node is one cluster member: the per-origin state table, the merged
// serving view, and the gossip machinery. All methods are safe for
// concurrent use.
type Node struct {
	cfg Config

	mu      sync.Mutex              // guards origins and view rebuild
	origins map[string]*originState // guarded by mu
	view    atomic.Pointer[core.Mixed]
	// viewDirty marks the served view stale; View() rebuilds lazily, so a
	// burst of applied frames (or a 100-node simulator round) costs one
	// re-mix at the next query instead of one per frame batch.
	viewDirty atomic.Bool

	peers []*peerState

	// rng drives peer sampling and dead-peer probing, seeded from
	// cfg.Seed for deterministic replay; rmu serializes access.
	rmu sync.Mutex
	rng *rand.Rand // guarded by rmu

	stop     chan struct{}
	wg       sync.WaitGroup
	startOne sync.Once
	stopOne  sync.Once

	// met holds the pre-registered aggregate instruments (per-peer
	// counters live on peerState); Status() and /metrics both read it.
	met *nodeMetrics

	// Causal-lineage bookkeeping (see DrainLineage): every applied frame
	// records which trace carried it, and the simulator checks each entry
	// against the set of round traces actually minted.
	lmu            sync.Mutex
	lineage        []LineageEntry // guarded by lmu
	lineageDropped int64          // guarded by lmu
	lastRound      trace.TraceID  // guarded by lmu
}

// maxLineageEntries bounds the per-node lineage ring between drains. The
// simulator drains every round; a node applying more frames than this
// between drains records the overflow in DrainLineage's dropped count (the
// lineage gate fails on any drop — silence would hide missing evidence).
const maxLineageEntries = 8192

// LineageEntry is the provenance record of one applied frame: which
// origin's state advanced to which version, and the trace of the gossip
// round that delivered it. A zero Trace means the frame arrived outside
// any traced round — exactly what the causal-lineage gate exists to catch.
type LineageEntry struct {
	Origin  string
	Version int64
	Trace   trace.TraceID
}

// appendLineage records one applied frame's provenance.
func (n *Node) appendLineage(origin string, version int64, tid trace.TraceID) {
	n.lmu.Lock()
	defer n.lmu.Unlock()
	if len(n.lineage) >= maxLineageEntries {
		n.lineageDropped++
		return
	}
	n.lineage = append(n.lineage, LineageEntry{Origin: origin, Version: version, Trace: tid})
}

// DrainLineage returns and clears the applied-frame provenance recorded
// since the last drain, plus how many entries overflowed the ring (always
// zero unless the caller drains too rarely).
func (n *Node) DrainLineage() ([]LineageEntry, int64) {
	n.lmu.Lock()
	defer n.lmu.Unlock()
	out := n.lineage
	dropped := n.lineageDropped
	n.lineage = nil
	n.lineageDropped = 0
	return out, dropped
}

// LastRoundTrace reports the trace ID minted by this node's most recent
// GossipOnce (zero before the first round or without a tracer).
func (n *Node) LastRoundTrace() trace.TraceID {
	n.lmu.Lock()
	defer n.lmu.Unlock()
	return n.lastRound
}

func (n *Node) setLastRoundTrace(tid trace.TraceID) {
	n.lmu.Lock()
	n.lastRound = tid
	n.lmu.Unlock()
}

// NewNode validates cfg and assembles a node. The gossip loop starts on
// Start; state exchange via ApplyFrames/BuildFrames works immediately.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		origins: make(map[string]*originState),
		stop:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		met:     newNodeMetrics(cfg.Registry),
	}
	now := cfg.Clock.Now()
	for _, u := range cfg.Peers {
		// lastOK starts at boot time so a peer that never answers is
		// promoted dead by the DeadAfter clock, not instantly at start.
		n.peers = append(n.peers, &peerState{url: u, lastOK: now})
	}
	n.view.Store(core.EmptyMixed(cfg.Mix))
	return n, nil
}

// Self returns the node's id.
func (n *Node) Self() string { return n.cfg.Self }

// View returns the current merged model over every known origin (self
// included), weighted by example count and faded by origin-GC age. The
// view rebuilds lazily on first access after any state change.
func (n *Node) View() *core.Mixed {
	if n.viewDirty.Load() {
		n.mu.Lock()
		if n.viewDirty.Load() {
			n.rebuildViewLocked()
		}
		n.mu.Unlock()
	}
	return n.view.Load()
}

// PublishLocal snapshots the local learner and, when it has progressed,
// installs it as this origin's newest version. Returns the current version
// and whether a new one was published.
func (n *Node) PublishLocal() (int64, bool, error) {
	sn, err := n.cfg.Local.ModelSnapshot()
	if err != nil {
		return 0, false, fmt.Errorf("cluster: local snapshot: %w", err)
	}
	sn.Origin = n.cfg.Self
	// Canonical heavy order so identical states produce identical frames.
	sn.Heavy = append([]stream.Weighted(nil), sn.Heavy...)
	stream.SortWeighted(sn.Heavy)

	n.mu.Lock()
	defer n.mu.Unlock()
	self := n.origins[n.cfg.Self]
	if self == nil {
		self = &originState{id: n.cfg.Self}
		n.origins[n.cfg.Self] = self
	}
	// The version IS the example count: monotonic while the process lives,
	// and it resumes rather than regresses after a checkpoint restore.
	if sn.Steps <= self.version {
		return self.version, false, nil
	}
	self.adopt(sn.Steps, sn, n.cfg.HistoryDepth, n.cfg.Clock.Now())
	n.viewDirty.Store(true)
	return self.version, true, nil
}

// Digest returns origin → version for every origin this node knows.
func (n *Node) Digest() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := make(map[string]int64, len(n.origins))
	for id, o := range n.origins {
		d[id] = o.version
	}
	return d
}

// BuildFrames assembles the frames a peer with the given digest is
// missing: for each origin where our version is newer, a delta frame when
// the peer's acked version is still in our history window (and the diff is
// actually smaller than a full snapshot), otherwise a full frame. When
// includeDigest is set the stream leads with our own digest so the peer
// can push back what we lack.
func (n *Node) BuildFrames(theirs map[string]int64, includeDigest bool) []Frame {
	n.mu.Lock()
	defer n.mu.Unlock()
	var frames []Frame
	if includeDigest {
		d := make(map[string]int64, len(n.origins))
		for id, o := range n.origins {
			d[id] = o.version
		}
		frames = append(frames, Frame{Kind: kindDigest, Digest: d})
	}
	ids := make([]string, 0, len(n.origins))
	for id := range n.origins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := n.origins[id]
		// Tombstoned origins have no snapshot to serve; the digest still
		// carries their version so peers do not push the dead state back.
		if o.gone {
			continue
		}
		acked := theirs[id]
		if o.version <= acked {
			continue
		}
		frames = append(frames, n.frameForLocked(o, acked))
	}
	return frames
}

// frameForLocked picks delta vs full for one origin. Caller holds n.mu.
func (n *Node) frameForLocked(o *originState, acked int64) Frame {
	if acked > 0 {
		if base, ok := o.baseFor(acked); ok {
			changes, err := sketch.Diff(base.CS, o.snap.CS)
			if err == nil {
				removed, upserts := diffHeavy(base.Heavy, o.snap.Heavy)
				// A delta entry costs ~1.5× a raw bucket (varint gap +
				// 8-byte value vs 8 bytes in the dense dump); past ~2/3 of
				// the buckets changed, the full snapshot is the smaller
				// frame.
				if 3*len(changes) <= 2*o.snap.CS.Size() {
					n.met.builtDelta.Inc()
					return Frame{
						Kind: kindDelta, Origin: o.id, Version: o.version, Base: acked,
						Scale:   o.snap.Scale,
						Changes: changes, HeavyRemoved: removed, HeavyUpserts: upserts,
					}
				}
			}
		}
	}
	n.met.builtFull.Inc()
	return FullFrame(o.snap)
}

// ApplyResult reports what one ApplyFrames call did.
type ApplyResult struct {
	// TheirDigest is the digest frame carried in the stream, if any.
	TheirDigest map[string]int64
	// Applied counts adopted versions; Stale counts frames at or below the
	// version already held; Rejected counts frames that failed validation.
	Applied, Stale, Rejected int
	// NeedFull lists origins whose delta base we did not have: the caller
	// should re-request them with a zeroed digest entry to force a full.
	NeedFull []string
	// Changed reports whether the merged view was rebuilt.
	Changed bool
}

// ApplyFrames ingests a frame stream with no trace context. Use
// ApplyFramesCtx when the stream arrived inside a traced exchange so the
// apply links into the sender's round.
func (n *Node) ApplyFrames(frames []Frame) ApplyResult {
	return n.ApplyFramesCtx(context.Background(), frames)
}

// ApplyFramesCtx ingests a frame stream from a peer: full frames replace an
// origin's snapshot when newer, delta frames reconstruct the new version
// from the acked base, and everything is validated (geometry, finiteness,
// bounds) before it can touch the state table. Frames claiming this node's
// own origin are rejected — each node is authoritative for itself.
//
// The ctx carries the delivery's trace (remote-continued from the sender's
// gossip round when the stream header had an annotation); every adopted
// version is recorded in the lineage ring under that trace ID, which is how
// the simulator proves each applied frame descends from a real round.
func (n *Node) ApplyFramesCtx(ctx context.Context, frames []Frame) ApplyResult {
	ctx, span := n.cfg.Tracer.StartSpan(ctx, "gossip.apply")
	defer span.Finish()
	tid := trace.SpanContextOf(ctx).TraceID
	var res ApplyResult
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := range frames {
		f := &frames[i]
		switch f.Kind {
		case kindDigest:
			res.TheirDigest = f.Digest
			continue
		case kindFull, kindDelta:
		default:
			res.Rejected++
			n.met.rejectedFrames.Inc()
			continue
		}
		if f.Origin == n.cfg.Self {
			res.Rejected++
			n.met.rejectedFrames.Inc()
			n.cfg.Logger.LogAttrs(ctx, slog.LevelWarn,
				"peer sent a frame for our own origin; dropped",
				slog.String("origin", f.Origin))
			continue
		}
		o := n.origins[f.Origin]
		if o != nil && f.Version <= o.version {
			res.Stale++
			n.met.staleDropped.Inc()
			continue
		}
		var snap core.Snapshot
		var err error
		switch f.Kind {
		case kindFull:
			snap, err = n.snapshotFromFullLocked(f)
			if err == nil {
				n.met.appliedFull.Inc()
			}
		case kindDelta:
			if o == nil {
				res.NeedFull = append(res.NeedFull, f.Origin)
				continue
			}
			base, ok := o.baseFor(f.Base)
			if !ok {
				res.NeedFull = append(res.NeedFull, f.Origin)
				continue
			}
			snap, err = applyDelta(base, f)
			if err == nil {
				n.met.appliedDelta.Inc()
			}
		}
		if err != nil {
			res.Rejected++
			n.met.rejectedFrames.Inc()
			n.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "dropping frame",
				slog.String("origin", f.Origin),
				slog.Int64("version", f.Version),
				slog.String("error", err.Error()))
			continue
		}
		if o == nil {
			o = &originState{id: f.Origin}
			n.origins[f.Origin] = o
		}
		o.adopt(f.Version, snap, n.cfg.HistoryDepth, n.cfg.Clock.Now())
		n.appendLineage(f.Origin, f.Version, tid)
		res.Applied++
	}
	if res.Applied > 0 {
		n.viewDirty.Store(true)
		res.Changed = true
	}
	return res
}

func (n *Node) snapshotFromFullLocked(f *Frame) (core.Snapshot, error) {
	if f.CS == nil {
		return core.Snapshot{}, fmt.Errorf("full frame without a sketch")
	}
	if f.CS.Depth() != n.cfg.Mix.Depth || f.CS.Width() != n.cfg.Mix.Width {
		return core.Snapshot{}, fmt.Errorf("geometry %dx%d, cluster runs %dx%d",
			f.CS.Depth(), f.CS.Width(), n.cfg.Mix.Depth, n.cfg.Mix.Width)
	}
	if f.CS.Seed() != n.cfg.Mix.Seed {
		return core.Snapshot{}, fmt.Errorf("seed %d, cluster runs %d (different hash functions cannot mix)",
			f.CS.Seed(), n.cfg.Mix.Seed)
	}
	return core.Snapshot{Origin: f.Origin, CS: f.CS, Scale: f.Scale, Heavy: f.Heavy, Steps: f.Version}, nil
}

// applyDelta reconstructs version f.Version from the base snapshot: clone,
// set changed buckets, patch the heavy list.
func applyDelta(base core.Snapshot, f *Frame) (core.Snapshot, error) {
	cs := base.CS.Clone()
	if err := cs.ApplyDiff(f.Changes); err != nil {
		return core.Snapshot{}, err
	}
	heavy := applyHeavyDiff(base.Heavy, f.HeavyRemoved, f.HeavyUpserts)
	return core.Snapshot{Origin: f.Origin, CS: cs, Scale: f.Scale, Heavy: heavy, Steps: f.Version}, nil
}

// rebuildViewLocked re-mixes every origin's current snapshot, weighting
// each by its example count times its origin-GC factor (tombstoned and
// fully-decayed origins contribute nothing). Caller holds n.mu.
func (n *Node) rebuildViewLocked() {
	now := n.cfg.Clock.Now()
	snaps := make([]core.Snapshot, 0, len(n.origins))
	for _, o := range n.origins {
		f := n.originFactorLocked(o, now)
		o.factorQ = quantizeFactor(f)
		if f <= 0 {
			continue
		}
		sn := o.snap
		sn.WeightFactor = f
		//lint:ignore maporder MixSnapshots canonicalizes order by sorting snapshots by Origin before summing
		snaps = append(snaps, sn)
	}
	// Clear the dirty bit even on the (unreachable) mix error below, so a
	// poisoned state cannot spin the rebuild on every query.
	n.viewDirty.Store(false)
	v, err := core.MixSnapshots(snaps, n.cfg.Mix)
	if err != nil {
		// Unreachable: geometry is validated at frame ingest. Keep the old
		// view rather than serving a broken one.
		n.cfg.Logger.Error("view rebuild failed", slog.String("error", err.Error()))
		return
	}
	n.view.Store(v)
}

// OriginMixWeights reports each known origin's effective mixing weight
// (Steps × GC factor; zero once decayed or tombstoned) at the current
// clock — the observable the simulator's GC assertions are written
// against.
func (n *Node) OriginMixWeights() map[string]float64 {
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]float64, len(n.origins))
	for id, o := range n.origins {
		out[id] = float64(o.snap.Steps) * n.originFactorLocked(o, now)
	}
	return out
}

// diffHeavy computes the set difference between two canonical heavy lists:
// keys present in base but not cur, and entries of cur that are new or
// changed.
func diffHeavy(base, cur []stream.Weighted) (removed []uint32, upserts []stream.Weighted) {
	prev := make(map[uint32]float64, len(base))
	for _, w := range base {
		prev[w.Index] = w.Weight
	}
	for _, w := range cur {
		if old, ok := prev[w.Index]; !ok || old != w.Weight {
			upserts = append(upserts, w)
		}
		delete(prev, w.Index)
	}
	for _, w := range base {
		if _, stillThere := prev[w.Index]; stillThere {
			removed = append(removed, w.Index)
		}
	}
	return removed, upserts
}

// applyHeavyDiff patches base with a heavy diff and returns the result in
// canonical order.
func applyHeavyDiff(base []stream.Weighted, removed []uint32, upserts []stream.Weighted) []stream.Weighted {
	m := make(map[uint32]float64, len(base)+len(upserts))
	for _, w := range base {
		m[w.Index] = w.Weight
	}
	for _, k := range removed {
		delete(m, k)
	}
	for _, w := range upserts {
		m[w.Index] = w.Weight
	}
	out := make([]stream.Weighted, 0, len(m))
	for k, w := range m {
		out = append(out, stream.Weighted{Index: k, Weight: w})
	}
	stream.SortWeighted(out)
	return out
}
