// Package sim is a discrete-event simulator for the cluster replication
// layer: it drives 100+ real cluster.Nodes — real gossip client, real wire
// codec, real membership and origin-GC machinery — over an in-memory
// transport with seeded message loss, corruption, partitions, and node
// churn, all on a virtual clock, so a full fleet-scale failure scenario
// runs deterministically in seconds of CPU and zero wall-clock sleeps.
//
// The convergence gate compares every surviving node's served view against
// the union baseline (directly parameter-mixing every live learner's final
// snapshot): relative L2 error over the feature prefix must come in under
// RelErrGate. Because gossip mixing is exact once state has fully spread,
// a healthy run converges to bit-identical views and the gate's slack only
// absorbs propagation lag, not approximation error.
package sim

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"wmsketch/internal/cluster"
	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
	"wmsketch/internal/trace"

	"context"
)

// RelErrGate is the CI convergence gate: max per-node relative error of the
// served view against the union baseline.
const RelErrGate = 0.05

// Scenario is one simulated run. Zero values select the documented
// defaults; the acceptance scenario the CI gate runs is Default100().
type Scenario struct {
	// Nodes is the fleet size; PeersPerNode the gossip-graph degree (a ring
	// plus random chords, so the graph is always connected). 0 selects 6.
	Nodes        int `json:"nodes"`
	PeersPerNode int `json:"peers_per_node"`
	// Rounds is the total simulated gossip rounds; TrainRounds how many of
	// them each live node ingests ChunkPerRound fresh examples before
	// gossiping (training then stops so the fleet can quiesce and the gate
	// measures convergence, not lag). 0 selects Rounds-25 and 8.
	Rounds        int `json:"rounds"`
	TrainRounds   int `json:"train_rounds"`
	ChunkPerRound int `json:"chunk_per_round"`
	// RoundStep is the virtual time one round advances the shared clock.
	// 0 selects 2s (the per-peer backoff base, so one failed round backs a
	// peer off exactly one round).
	RoundStep time.Duration `json:"round_step"`
	// Seed drives everything: topology, fault schedule, data. Same seed,
	// same run, bit for bit. 0 selects 1.
	Seed int64 `json:"seed"`
	// Loss is the per-RPC drop probability; Corrupt the per-pull/push
	// probability of flipping a byte in the frame stream (which the decoder
	// must reject — a corrupted frame counts as a failed round, never as
	// ingested state).
	Loss    float64 `json:"loss"`
	Corrupt float64 `json:"corrupt"`
	// PartitionStart/PartitionRounds cut the fleet into two halves (node
	// index below/above Nodes/2) for that round span; cross-half RPCs fail.
	// PartitionRounds 0 disables.
	PartitionStart  int `json:"partition_start"`
	PartitionRounds int `json:"partition_rounds"`
	// ChurnRound permanently kills ChurnFrac of the fleet (every ⌈1/f⌉-th
	// node, so both halves lose members) at the start of that round.
	// ChurnFrac 0 disables.
	ChurnRound int     `json:"churn_round"`
	ChurnFrac  float64 `json:"churn_frac"`
	// GCAfter/GCDecay are the origin-GC knobs under test: dead nodes'
	// origins must decay to zero weight in every survivor's view before the
	// run ends. 0 selects 80s and 40s of virtual time.
	GCAfter time.Duration `json:"gc_after"`
	GCDecay time.Duration `json:"gc_decay"`
	// EvalFeatures is the feature-index prefix the relative-error gate sums
	// over. 0 selects 2048.
	EvalFeatures int `json:"eval_features"`

	// Logf receives round-by-round narration; nil discards it.
	Logf func(format string, args ...interface{}) `json:"-"`
}

func (sc *Scenario) fill() error {
	if sc.Nodes < 2 {
		return fmt.Errorf("sim: need at least 2 nodes, have %d", sc.Nodes)
	}
	if sc.PeersPerNode == 0 {
		sc.PeersPerNode = 6
	}
	if sc.PeersPerNode >= sc.Nodes {
		sc.PeersPerNode = sc.Nodes - 1
	}
	if sc.Rounds == 0 {
		sc.Rounds = 130
	}
	if sc.TrainRounds == 0 {
		sc.TrainRounds = sc.Rounds - 25
		if sc.TrainRounds < 1 {
			sc.TrainRounds = 1
		}
	}
	if sc.ChunkPerRound == 0 {
		sc.ChunkPerRound = 8
	}
	if sc.RoundStep == 0 {
		sc.RoundStep = 2 * time.Second
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.GCAfter == 0 {
		sc.GCAfter = 80 * time.Second
	}
	if sc.GCDecay == 0 {
		sc.GCDecay = 40 * time.Second
	}
	if sc.EvalFeatures == 0 {
		sc.EvalFeatures = 2048
	}
	if sc.Loss < 0 || sc.Loss > 1 || sc.Corrupt < 0 || sc.Corrupt > 1 ||
		sc.ChurnFrac < 0 || sc.ChurnFrac > 1 {
		return fmt.Errorf("sim: probabilities must be in [0,1]")
	}
	if sc.Logf == nil {
		sc.Logf = func(string, ...interface{}) {}
	}
	return nil
}

// Default100 is the CI acceptance scenario: 100 nodes, 10% message loss,
// one 30-round partition, 20% churn, fixed seed. The timeline is laid out
// so the churned nodes' final versions finish spreading before the
// partition cuts the fleet (rounds 20→40), the partition heals with enough
// rounds left for cross-half state to flow (70→80), and the origin-GC
// window fully elapses for dead origins (gone by ~round 85) while live
// origins stay fresh through the quiesce (ages ≤ 40s < GCAfter at eval).
func Default100() Scenario {
	return Scenario{
		Nodes:           100,
		Rounds:          100,
		TrainRounds:     80,
		Seed:            20260807,
		Loss:            0.10,
		Corrupt:         0.02,
		PartitionStart:  40,
		PartitionRounds: 30,
		ChurnRound:      20,
		ChurnFrac:       0.20,
		GCAfter:         60 * time.Second,
		GCDecay:         30 * time.Second,
	}
}

// Report is the run outcome, serialized to BENCH_sim.json by `make
// bench-sim`.
type Report struct {
	Scenario Scenario `json:"scenario"`

	LiveNodes int `json:"live_nodes"`
	DeadNodes int `json:"dead_nodes"`

	// Transport-level fault accounting.
	RPCs              int64 `json:"rpcs"`
	Dropped           int64 `json:"dropped"`
	PartitionRefusals int64 `json:"partition_refusals"`
	Corrupted         int64 `json:"corrupted"`
	// BytesOnWire sums every surviving node's gossip bytes (in + out) as
	// counted by the real client instrumentation.
	BytesOnWire int64 `json:"bytes_on_wire"`
	// OriginsGCed sums tombstoned origins across survivors.
	OriginsGCed int64 `json:"origins_gced"`
	// RejectedFrames counts frames the validators refused (corruption must
	// land here, never in model state).
	RejectedFrames int64 `json:"rejected_frames"`

	// Convergence: per-node relative L2 error of the served view against
	// the union baseline, and how many survivors hold every live origin at
	// its final version.
	MaxRelErr   float64 `json:"max_rel_err"`
	MeanRelErr  float64 `json:"mean_rel_err"`
	FullySynced int     `json:"fully_synced"`
	// MaxDeadWeight is the largest mixing weight any survivor still assigns
	// to any churned-out origin; the GC gate requires exactly zero.
	MaxDeadWeight float64 `json:"max_dead_weight"`

	// Journal-vs-registry invariant: the transport's own record of
	// delivered traffic against the fleet's summed metric registries
	// (every node, dead ones included — their counters stop at death but
	// the journal stopped delivering to them then too). The bytes must
	// match exactly; MetricsConsistent also requires every per-kind frame
	// count and byte total to agree, and gates Converged.
	JournalPullBytes  int64 `json:"journal_pull_bytes"`
	JournalPushBytes  int64 `json:"journal_push_bytes"`
	MetricPullBytes   int64 `json:"metric_pull_bytes"`
	MetricPushBytes   int64 `json:"metric_push_bytes"`
	MetricsConsistent bool  `json:"metrics_consistent"`

	// Causal lineage: every frame any node applied must carry the trace id
	// of a gossip round some node actually minted — under loss, corruption,
	// partition, AND churn, no state may materialize out of thin air.
	// LineageApplies counts checked apply records, LineageViolations the
	// ones whose trace was zero or unknown, LineageDropped entries lost to
	// ring overflow (must be zero: lost evidence is failed evidence).
	// LineageConsistent requires applies > 0 with zero violations and zero
	// drops, and gates Converged.
	LineageApplies    int64 `json:"lineage_applies"`
	LineageViolations int64 `json:"lineage_violations"`
	LineageDropped    int64 `json:"lineage_dropped"`
	LineageConsistent bool  `json:"lineage_consistent"`

	Converged bool `json:"converged"`
}

// simGeometry is the sketch configuration every simulated node shares.
// Width is kept small so a 100-node fleet's full origin tables stay cheap;
// the replication layer is what is under test, not sketch accuracy.
func simGeometry() core.Config {
	return core.Config{Width: 128, Depth: 1, HeapSize: 16, Lambda: 1e-6, Seed: 7}
}

func simMixOptions() core.MixOptions {
	g := simGeometry()
	return core.MixOptions{Depth: g.Depth, Width: g.Width, Seed: g.Seed, HeapSize: g.HeapSize}
}

// simNode is one fleet member: a real learner behind a real cluster node.
type simNode struct {
	id    string
	index int
	alive bool
	gen   *datagen.Classification
	learn *core.AWMSketch
	node  *cluster.Node
}

// world owns the virtual clock, the seeded fault schedule, and the fleet.
// Everything runs on one goroutine, so a run is a pure function of the
// scenario.
type world struct {
	sc    Scenario
	clock *cluster.VirtualClock
	rng   *rand.Rand
	nodes []*simNode
	byID  map[string]*simNode

	partitionOn bool

	rpcs, dropped, refusals, corrupted int64

	journal wireJournal

	// minted accumulates every round trace id any node's GossipOnce has
	// produced; lineage entries are checked against it.
	minted map[trace.TraceID]bool

	lineageApplies, lineageViolations, lineageDropped int64
}

// wireJournal is the transport's own record of *delivered* traffic: a pull
// response or push stream is journaled only when it reached its consumer
// uncorrupted (routed OK, byte-exact). The client-side registry counters
// must then match it exactly — every delivered byte counted once, every
// dropped or corrupted byte counted never — which evaluate() asserts as
// the MetricsConsistent gate. Frame kinds index by their wire kind byte.
type wireJournal struct {
	pullBytes, pushBytes           int64
	pullFrames, pushFrames         [4]int64
	pullFrameBytes, pushFrameBytes [4]int64
}

func (j *wireJournal) recordPull(frames []cluster.Frame, streamLen int) {
	j.pullBytes += int64(streamLen)
	for i := range frames {
		k := frames[i].Kind
		j.pullFrames[k]++
		j.pullFrameBytes[k] += frames[i].WireBytes
	}
}

func (j *wireJournal) recordPush(frames []cluster.Frame, streamLen int) {
	j.pushBytes += int64(streamLen)
	for i := range frames {
		k := frames[i].Kind
		j.pushFrames[k]++
		j.pushFrameBytes[k] += frames[i].WireBytes
	}
}

// memTransport is the in-memory cluster.Transport: an RPC is a direct call
// into the destination node, filtered through the world's fault rules.
type memTransport struct {
	w   *world
	src *simNode
}

// route applies reachability rules: dead targets refuse, partitions cut
// cross-half traffic, and lossy links drop at random.
func (w *world) route(src *simNode, dstID string) (*simNode, error) {
	w.rpcs++
	dst := w.byID[dstID]
	if dst == nil {
		return nil, fmt.Errorf("sim: no route to %q", dstID)
	}
	if !dst.alive {
		w.dropped++
		return nil, fmt.Errorf("sim: %s is down", dstID)
	}
	if w.partitionOn && w.half(src.index) != w.half(dst.index) {
		w.refusals++
		return nil, fmt.Errorf("sim: partitioned from %s", dstID)
	}
	if w.sc.Loss > 0 && w.rng.Float64() < w.sc.Loss {
		w.dropped++
		return nil, fmt.Errorf("sim: message to %s lost", dstID)
	}
	return dst, nil
}

func (w *world) half(index int) int {
	if index < w.sc.Nodes/2 {
		return 0
	}
	return 1
}

// maybeCorrupt flips one byte of an encoded frame stream with probability
// Corrupt, reporting whether it did. The decoder must reject the result
// (the per-frame CRC catches every single-byte flip); the simulation
// asserts the rejection shows up in RejectedFrames or a failed round,
// never in state — and never in the byte counters, which is why corrupted
// streams are excluded from the wire journal.
func (w *world) maybeCorrupt(b []byte) ([]byte, bool) {
	if w.sc.Corrupt > 0 && len(b) > 0 && w.rng.Float64() < w.sc.Corrupt {
		w.corrupted++
		b = append([]byte(nil), b...)
		b[w.rng.Intn(len(b))] ^= 0xA5
		return b, true
	}
	return b, false
}

func (t memTransport) Pull(ctx context.Context, peerURL string, req cluster.PullRequest) (io.ReadCloser, error) {
	dst, err := t.w.route(t.src, peerURL)
	if err != nil {
		return nil, err
	}
	frames := dst.node.BuildFrames(req.Digest, true)
	var buf bytes.Buffer
	// Stamp the response with the puller's round span (ctx comes from its
	// gossip client), exactly like the HTTP handler continuing a
	// traceparent — the wire annotation is what keeps lineage intact here.
	if _, err := cluster.WriteFramesTraced(&buf, trace.SpanContextOf(ctx), frames); err != nil {
		return nil, err
	}
	stream, corrupted := t.w.maybeCorrupt(buf.Bytes())
	if !corrupted {
		// Delivered intact: the puller will read and count exactly this.
		t.w.journal.recordPull(frames, len(stream))
	}
	return io.NopCloser(bytes.NewReader(stream)), nil
}

func (t memTransport) Push(ctx context.Context, peerURL string, frames []byte) error {
	dst, err := t.w.route(t.src, peerURL)
	if err != nil {
		return err
	}
	stream, corrupted := t.w.maybeCorrupt(frames)
	decoded, sc, err := cluster.ReadFramesTraced(bytes.NewReader(stream))
	if err != nil {
		return fmt.Errorf("sim: push to %s: %w", peerURL, err)
	}
	if !corrupted {
		// Delivered intact: the pusher counts its stream after this returns.
		t.w.journal.recordPush(decoded, len(stream))
	}
	// The receiving node continues the pusher's round trace (read back off
	// the wire annotation), so its lineage records point at the real round.
	dst.node.ApplyFramesCtx(trace.ContextWithRemote(ctx, sc), decoded)
	return nil
}

// topology wires node i to its ring neighbors plus random chords, deduped,
// degree PeersPerNode. The ring keeps the graph connected whatever the
// chords do.
func (w *world) topology(i int) []string {
	n := w.sc.Nodes
	peers := map[int]bool{(i + 1) % n: true, (i - 1 + n) % n: true}
	for len(peers) < w.sc.PeersPerNode {
		j := w.rng.Intn(n)
		if j != i {
			peers[j] = true
		}
	}
	ids := make([]int, 0, len(peers))
	for j := range peers {
		ids = append(ids, j)
	}
	sort.Ints(ids)
	out := make([]string, len(ids))
	for k, j := range ids {
		out[k] = nodeID(j)
	}
	return out
}

func nodeID(i int) string { return fmt.Sprintf("n%03d", i) }

// churned reports whether node i is in the churn set: every ⌈1/f⌉-th node,
// so the dead are spread across both partition halves.
func (sc *Scenario) churned(i int) bool {
	if sc.ChurnFrac <= 0 {
		return false
	}
	period := int(math.Ceil(1 / sc.ChurnFrac))
	return i%period == period-1
}

// Run executes the scenario and evaluates the gates.
func Run(sc Scenario) (Report, error) {
	if err := sc.fill(); err != nil {
		return Report{}, err
	}
	w := &world{
		sc:     sc,
		clock:  cluster.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
		rng:    rand.New(rand.NewSource(sc.Seed)),
		byID:   make(map[string]*simNode, sc.Nodes),
		minted: make(map[trace.TraceID]bool),
	}
	geom := simGeometry()
	for i := 0; i < sc.Nodes; i++ {
		s := &simNode{
			id:    nodeID(i),
			index: i,
			alive: true,
			gen:   datagen.RCV1Like(sc.Seed + int64(i)),
			learn: core.NewAWMSketch(geom),
		}
		node, err := cluster.NewNode(cluster.Config{
			Self:          s.id,
			Peers:         w.topology(i),
			Mix:           simMixOptions(),
			Local:         s.learn,
			Interval:      -1, // rounds are driven manually
			HistoryDepth:  2,  // bounds fleet-wide memory: N² origins each hold ≤2 versions
			OriginGCAfter: sc.GCAfter,
			OriginGCDecay: sc.GCDecay,
			Clock:         w.clock,
			Transport:     memTransport{w: w, src: s},
			Seed:          sc.Seed + int64(i)*7919,
			// Every node gets its own deterministic tracer on the shared
			// virtual clock: rounds mint trace ids the lineage gate collects.
			// Probabilistic sampling is off — the recorder is not what is
			// under test, the id propagation is.
			Tracer: trace.New(trace.Options{
				Now:        w.clock.Now,
				Seed:       sc.Seed + int64(i)*104729,
				SampleRate: -1,
			}),
		})
		if err != nil {
			return Report{}, err
		}
		s.node = node
		w.nodes = append(w.nodes, s)
		w.byID[s.id] = s
	}

	for round := 0; round < sc.Rounds; round++ {
		if sc.ChurnFrac > 0 && round == sc.ChurnRound {
			killed := 0
			for _, s := range w.nodes {
				if sc.churned(s.index) {
					s.alive = false
					killed++
				}
			}
			sc.Logf("sim: round %d: churn killed %d nodes", round, killed)
		}
		if sc.PartitionRounds > 0 {
			wasOn := w.partitionOn
			w.partitionOn = round >= sc.PartitionStart && round < sc.PartitionStart+sc.PartitionRounds
			if w.partitionOn != wasOn {
				sc.Logf("sim: round %d: partition %v", round, w.partitionOn)
			}
		}
		for _, s := range w.nodes {
			if !s.alive {
				continue
			}
			if round < sc.TrainRounds {
				for _, ex := range s.gen.Take(sc.ChunkPerRound) {
					s.learn.Update(ex.X, ex.Y)
				}
			}
			s.node.GossipOnce()
			if tid := s.node.LastRoundTrace(); !tid.IsZero() {
				w.minted[tid] = true
			}
		}
		// Check causal lineage while the evidence is fresh: every frame any
		// node (dead ones included — they may hold entries from before their
		// death) applied this round must trace back to a minted round.
		w.drainLineage()
		w.clock.Advance(sc.RoundStep)
		if round%10 == 9 {
			h := w.nodes[0].node.Health()
			sc.Logf("sim: round %d done (n000 health %+v)", round, h)
		}
	}

	return w.evaluate()
}

// drainLineage empties every node's applied-frame provenance ring and
// checks each entry against the minted round-trace set.
func (w *world) drainLineage() {
	for _, s := range w.nodes {
		entries, dropped := s.node.DrainLineage()
		w.lineageDropped += dropped
		for _, e := range entries {
			w.lineageApplies++
			if e.Trace.IsZero() || !w.minted[e.Trace] {
				w.lineageViolations++
				w.sc.Logf("sim: LINEAGE VIOLATION: %s applied %s v%d under unknown trace %s",
					s.id, e.Origin, e.Version, e.Trace)
			}
		}
	}
}

// evaluate runs the gates: union-baseline relative error per surviving
// node, full-sync census, and the dead-origin zero-weight check.
func (w *world) evaluate() (Report, error) {
	rep := Report{Scenario: w.sc}
	rep.RPCs, rep.Dropped, rep.PartitionRefusals, rep.Corrupted =
		w.rpcs, w.dropped, w.refusals, w.corrupted

	var live, dead []*simNode
	for _, s := range w.nodes {
		if s.alive {
			live = append(live, s)
		} else {
			dead = append(dead, s)
		}
	}
	rep.LiveNodes, rep.DeadNodes = len(live), len(dead)

	// Union baseline: directly mix every surviving learner's snapshot —
	// the model a single learner would have reached on the concatenation
	// of every survivor's stream.
	finalVersion := make(map[string]int64, len(live))
	snaps := make([]core.Snapshot, 0, len(live))
	for _, s := range live {
		sn, err := s.learn.ModelSnapshot()
		if err != nil {
			return rep, err
		}
		sn.Origin = s.id
		sn.Heavy = append([]stream.Weighted(nil), sn.Heavy...)
		stream.SortWeighted(sn.Heavy)
		snaps = append(snaps, sn)
		finalVersion[s.id] = sn.Steps
	}
	want, err := core.MixSnapshots(snaps, simMixOptions())
	if err != nil {
		return rep, err
	}

	var sumRel float64
	for _, s := range live {
		st := s.node.Status()
		rep.BytesOnWire += st.BytesIn + st.BytesOut
		rep.OriginsGCed += st.OriginsGCed
		rep.RejectedFrames += st.RejectedFrames

		view := s.node.View()
		var num, den float64
		for i := 0; i < w.sc.EvalFeatures; i++ {
			g, wv := view.Estimate(uint32(i)), want.Estimate(uint32(i))
			num += (g - wv) * (g - wv)
			den += wv * wv
		}
		rel := 1.0
		if den > 0 {
			rel = math.Sqrt(num / den)
		}
		sumRel += rel
		if rel > rep.MaxRelErr {
			rep.MaxRelErr = rel
		}

		synced := true
		digest := s.node.Digest()
		for id, v := range finalVersion {
			if digest[id] != v {
				synced = false
				break
			}
		}
		if synced {
			rep.FullySynced++
		}

		weights := s.node.OriginMixWeights()
		for _, d := range dead {
			if weight := weights[d.id]; weight > rep.MaxDeadWeight {
				rep.MaxDeadWeight = weight
			}
		}
	}
	if len(live) > 0 {
		rep.MeanRelErr = sumRel / float64(len(live))
	}
	w.checkMetrics(&rep)
	w.drainLineage() // catch any applies after the final round's drain
	rep.LineageApplies = w.lineageApplies
	rep.LineageViolations = w.lineageViolations
	rep.LineageDropped = w.lineageDropped
	rep.LineageConsistent = w.lineageApplies > 0 && w.lineageViolations == 0 && w.lineageDropped == 0
	if rep.LineageConsistent {
		w.sc.Logf("sim: lineage consistent: all %d applied frames trace to one of %d minted rounds",
			rep.LineageApplies, len(w.minted))
	} else {
		w.sc.Logf("sim: LINEAGE INCONSISTENT: %d applies, %d violations, %d dropped entries",
			rep.LineageApplies, rep.LineageViolations, rep.LineageDropped)
	}
	rep.Converged = rep.MaxRelErr <= RelErrGate && rep.MaxDeadWeight == 0 &&
		rep.MetricsConsistent && rep.LineageConsistent
	w.sc.Logf("sim: max rel err %.4g, mean %.4g, %d/%d fully synced, max dead weight %g, %d origins GCed, %.1f MB on wire",
		rep.MaxRelErr, rep.MeanRelErr, rep.FullySynced, len(live), rep.MaxDeadWeight,
		rep.OriginsGCed, float64(rep.BytesOnWire)/1e6)
	return rep, nil
}

// frameKinds maps wire kind bytes to their metric label values (mirrors
// the cluster package's exposition labels). A slice, not a map, so even
// mismatch narration comes out in a deterministic order.
var frameKinds = []struct {
	kind  byte
	label string
}{{1, "digest"}, {2, "full"}, {3, "delta"}}

// checkMetrics asserts the fleet's summed metric registries agree with the
// wire journal exactly: Σ stream_bytes{in} == delivered pull bytes,
// Σ stream_bytes{out} == delivered push bytes, and every per-kind frame
// count/byte total matches. The sums run over ALL nodes — a churned node's
// registry is frozen at its death, exactly when the journal stopped
// recording its traffic.
func (w *world) checkMetrics(rep *Report) {
	sum := func(name string, labels ...string) int64 {
		var total float64
		for _, s := range w.nodes {
			if v, ok := s.node.Metrics().Value(name, labels...); ok {
				total += v
			}
		}
		return int64(total)
	}
	rep.JournalPullBytes = w.journal.pullBytes
	rep.JournalPushBytes = w.journal.pushBytes
	rep.MetricPullBytes = sum("wmgossip_stream_bytes_total", "in")
	rep.MetricPushBytes = sum("wmgossip_stream_bytes_total", "out")

	ok := rep.MetricPullBytes == rep.JournalPullBytes && rep.MetricPushBytes == rep.JournalPushBytes
	if !ok {
		w.sc.Logf("sim: METRIC MISMATCH stream bytes: registry in=%d out=%d, journal pull=%d push=%d",
			rep.MetricPullBytes, rep.MetricPushBytes, rep.JournalPullBytes, rep.JournalPushBytes)
	}
	for _, fk := range frameKinds {
		checks := []struct {
			what    string
			metric  string
			dir     string
			journal int64
		}{
			{"frames in", "wmgossip_frames_total", "in", w.journal.pullFrames[fk.kind]},
			{"frames out", "wmgossip_frames_total", "out", w.journal.pushFrames[fk.kind]},
			{"frame bytes in", "wmgossip_frame_bytes_total", "in", w.journal.pullFrameBytes[fk.kind]},
			{"frame bytes out", "wmgossip_frame_bytes_total", "out", w.journal.pushFrameBytes[fk.kind]},
		}
		for _, c := range checks {
			if got := sum(c.metric, c.dir, fk.label); got != c.journal {
				ok = false
				w.sc.Logf("sim: METRIC MISMATCH %s %s: registry %d, journal %d", fk.label, c.what, got, c.journal)
			}
		}
	}
	rep.MetricsConsistent = ok
	if ok {
		w.sc.Logf("sim: metrics consistent: %d pull + %d push bytes match the delivery journal exactly",
			rep.JournalPullBytes, rep.JournalPushBytes)
	}
}
