package sim

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"wmsketch/internal/cluster"
)

// TestFaultFreeFleetConvergesExactly: with no faults, after training stops
// and the fleet quiesces, every node's served view is bit-identical to the
// union baseline — gossip mixing is exact, not approximate.
func TestFaultFreeFleetConvergesExactly(t *testing.T) {
	rep, err := Run(Scenario{
		Nodes:       16,
		Rounds:      40,
		TrainRounds: 25,
		Seed:        3,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullySynced != rep.LiveNodes {
		t.Fatalf("only %d/%d nodes fully synced with no faults", rep.FullySynced, rep.LiveNodes)
	}
	if rep.MaxRelErr != 0 {
		t.Fatalf("fault-free convergence is not exact: max rel err %g", rep.MaxRelErr)
	}
	if rep.Dropped != 0 || rep.Corrupted != 0 || rep.PartitionRefusals != 0 {
		t.Fatalf("faults injected in a fault-free run: %+v", rep)
	}
}

// TestSameSeedSameRun: the simulator is deterministic — two runs of the
// same scenario produce identical fault schedules and identical outcomes.
func TestSameSeedSameRun(t *testing.T) {
	sc := Scenario{Nodes: 12, Rounds: 30, TrainRounds: 20, Seed: 9, Loss: 0.2, Corrupt: 0.05}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.RPCs != b.RPCs || a.Dropped != b.Dropped || a.Corrupted != b.Corrupted ||
		a.MaxRelErr != b.MaxRelErr || a.BytesOnWire != b.BytesOnWire {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a, b)
	}
}

// TestCorruptionNeverReachesState: heavy corruption must surface as
// rejected frames and failed rounds, never as divergent model state — the
// fleet still converges because every corrupt stream is refused whole.
func TestCorruptionNeverReachesState(t *testing.T) {
	rep, err := Run(Scenario{
		Nodes:       12,
		Rounds:      50,
		TrainRounds: 30,
		Seed:        11,
		Corrupt:     0.15,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupted == 0 {
		t.Fatal("corrupt=0.15 injected nothing")
	}
	if rep.MaxRelErr > RelErrGate {
		t.Fatalf("corruption leaked into state: max rel err %g", rep.MaxRelErr)
	}
	// The hard case for the byte-accounting invariant: corrupted streams
	// are journaled by nobody and counted by nobody, so the registries must
	// still match the journal exactly.
	if !rep.MetricsConsistent {
		t.Fatalf("metric registries diverged from the wire journal under corruption: %+v", rep)
	}
	if rep.MetricPullBytes == 0 || rep.MetricPushBytes == 0 {
		t.Fatalf("no bytes counted: %+v", rep)
	}
	// Corruption is also the hard case for lineage: a flipped byte in the
	// header's trace annotation must fail the header CRC and reject the
	// stream — it must never surface as an apply under a garbage trace id.
	if !rep.LineageConsistent {
		t.Fatalf("lineage gate failed under corruption: %d applies, %d violations, %d dropped",
			rep.LineageApplies, rep.LineageViolations, rep.LineageDropped)
	}
}

// TestMetricsMatchJournalUnderChurn: loss + corruption + churn together.
// Dead nodes' registries freeze at death, exactly when the journal stops
// recording their traffic, so fleet-wide sums (dead nodes included) must
// still equal the journal byte for byte and frame for frame.
func TestMetricsMatchJournalUnderChurn(t *testing.T) {
	rep, err := Run(Scenario{
		Nodes:       16,
		Rounds:      40,
		TrainRounds: 25,
		Seed:        13,
		Loss:        0.15,
		Corrupt:     0.08,
		ChurnRound:  12,
		ChurnFrac:   0.25,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadNodes == 0 || rep.Corrupted == 0 || rep.Dropped == 0 {
		t.Fatalf("fault schedule did not fire: %+v", rep)
	}
	if !rep.MetricsConsistent {
		t.Fatalf("metric registries diverged from the wire journal: journal pull=%d push=%d, registry pull=%d push=%d",
			rep.JournalPullBytes, rep.JournalPushBytes, rep.MetricPullBytes, rep.MetricPushBytes)
	}
	if !rep.LineageConsistent || rep.LineageApplies == 0 {
		t.Fatalf("lineage gate failed under loss+corruption+churn: %d applies, %d violations, %d dropped",
			rep.LineageApplies, rep.LineageViolations, rep.LineageDropped)
	}
}

// TestAcceptanceScenario is the CI gate from the ISSUE: 100 nodes, 10%
// message loss, one 30-round partition, 20% churn, fixed seed. Survivors
// must converge within the relative-error gate, and every churned-out
// node's origin must weigh exactly zero in every survivor's view.
func TestAcceptanceScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("100-node scenario skipped in -short")
	}
	rep, err := Run(withLog(Default100(), t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveNodes != 80 || rep.DeadNodes != 20 {
		t.Fatalf("churn: %d live / %d dead, want 80/20", rep.LiveNodes, rep.DeadNodes)
	}
	if rep.Dropped == 0 || rep.PartitionRefusals == 0 || rep.Corrupted == 0 {
		t.Fatalf("fault schedule did not fire: %+v", rep)
	}
	if !rep.LineageConsistent || rep.LineageApplies == 0 {
		t.Fatalf("causal-lineage gate failed: %d applies, %d violations, %d dropped",
			rep.LineageApplies, rep.LineageViolations, rep.LineageDropped)
	}
	if rep.MaxRelErr > RelErrGate {
		t.Fatalf("max relative error %.4g exceeds the %.0f%% gate (mean %.4g, %d/%d synced)",
			rep.MaxRelErr, RelErrGate*100, rep.MeanRelErr, rep.FullySynced, rep.LiveNodes)
	}
	if rep.MaxDeadWeight != 0 {
		t.Fatalf("a dead origin still weighs %g in a survivor's view; origin GC failed", rep.MaxDeadWeight)
	}
	if !rep.MetricsConsistent {
		t.Fatalf("metric registries diverged from the wire journal: journal pull=%d push=%d, registry pull=%d push=%d",
			rep.JournalPullBytes, rep.JournalPushBytes, rep.MetricPullBytes, rep.MetricPushBytes)
	}
	if rep.OriginsGCed == 0 {
		t.Fatal("no origins were tombstoned despite 20%% churn")
	}
	if !rep.Converged {
		t.Fatalf("report not marked converged: %+v", rep)
	}
	// Bytes-on-wire sanity ceiling: the whole 130-round, 100-node run must
	// stay within a fixed transfer budget, or delta compression/digests
	// have regressed.
	const bytesBudget = int64(2 << 30)
	if rep.BytesOnWire <= 0 || rep.BytesOnWire > bytesBudget {
		t.Fatalf("bytes on wire %d outside (0, %d]", rep.BytesOnWire, bytesBudget)
	}
	t.Logf("acceptance: %.1f MB on wire, %d RPCs, %d dropped, %d partition refusals, %d GCed",
		float64(rep.BytesOnWire)/1e6, rep.RPCs, rep.Dropped, rep.PartitionRefusals, rep.OriginsGCed)
}

func withLog(sc Scenario, t *testing.T) Scenario {
	sc.Logf = t.Logf
	return sc
}

// okRT answers every request with an empty 200.
type okRT struct{}

func (okRT) RoundTrip(*http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("")),
		Header:     make(http.Header),
	}, nil
}

// TestChaosDelayDeterministicUnderSimClock: `-chaos delay` injection runs
// on the simulator's virtual clock — hours of injected delay complete in
// milliseconds of wall time, and the delay schedule is a pure function of
// the seed, identical across runs.
func TestChaosDelayDeterministicUnderSimClock(t *testing.T) {
	const requests = 32
	run := func() cluster.ChaosStats {
		clock := cluster.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		ct := cluster.NewChaosTransport(okRT{}, cluster.ChaosConfig{
			Seed: 20260807, DelayProb: 0.5, Delay: time.Hour, Clock: clock,
		})
		for i := 0; i < requests; i++ {
			req, err := http.NewRequest(http.MethodPost, "http://n001/v1/cluster/pull", nil)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				resp, err := ct.RoundTrip(req)
				if err == nil {
					resp.Body.Close()
				}
				done <- err
			}()
			// Drive the request the way the sim drives rounds: advance the
			// shared virtual clock until it completes. Undelayed requests
			// finish without any advance; delayed ones need exactly their
			// hour of virtual time, never an hour of wall time.
			for {
				select {
				case err := <-done:
					if err != nil {
						t.Fatalf("request %d: %v", i, err)
					}
				case <-time.After(5 * time.Millisecond):
					clock.Advance(time.Hour)
					continue
				}
				break
			}
		}
		return ct.Stats()
	}

	wallStart := time.Now()
	a := run()
	b := run()
	if a != b {
		t.Fatalf("same seed, different fault schedules:\n%+v\n%+v", a, b)
	}
	if a.Delayed == 0 || a.Delayed == requests {
		t.Fatalf("delayp=0.5 schedule is degenerate: %+v", a)
	}
	// ~16 hours of injected virtual delay must not cost real time.
	if wall := time.Since(wallStart); wall > 30*time.Second {
		t.Fatalf("virtual delays leaked into wall time: %v elapsed", wall)
	}
}
