package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// newFakeClock is the manually-advanced clock injected via Config.Clock.
func newFakeClock() *VirtualClock {
	return NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

// stubTransport answers every pull with an empty digest frame (a peer that
// knows nothing) and accepts every push — unless failing is set, in which
// case everything errors. It counts attempts per peer URL.
type stubTransport struct {
	mu       sync.Mutex
	failing  bool
	attempts map[string]int
}

func newStubTransport() *stubTransport {
	return &stubTransport{attempts: make(map[string]int)}
}

func (s *stubTransport) setFailing(v bool) {
	s.mu.Lock()
	s.failing = v
	s.mu.Unlock()
}

func (s *stubTransport) attemptsTo(url string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts[url]
}

func (s *stubTransport) Pull(ctx context.Context, peerURL string, req PullRequest) (io.ReadCloser, error) {
	s.mu.Lock()
	s.attempts[peerURL]++
	failing := s.failing
	s.mu.Unlock()
	if failing {
		return nil, fmt.Errorf("stub: %s unreachable", peerURL)
	}
	var buf bytes.Buffer
	if _, err := WriteFrames(&buf, []Frame{{Kind: kindDigest, Digest: map[string]int64{}}}); err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
}

func (s *stubTransport) Push(ctx context.Context, peerURL string, frames []byte) error {
	s.mu.Lock()
	failing := s.failing
	s.mu.Unlock()
	if failing {
		return fmt.Errorf("stub: %s unreachable", peerURL)
	}
	return nil
}

// clockedNode builds a node on a fake clock and stub transport with the
// given peers and membership knobs.
func clockedNode(t *testing.T, clock *VirtualClock, tr Transport, peers []string, tweak func(*Config)) *Node {
	t.Helper()
	cfg := clusterConfig()
	l := core.NewAWMSketch(cfg)
	for _, ex := range datagen.RCV1Like(11).Take(50) {
		l.Update(ex.X, ex.Y)
	}
	c := Config{
		Self:      "self",
		Peers:     peers,
		Mix:       mixOpt(cfg),
		Local:     l,
		Interval:  -1,
		Clock:     clock,
		Transport: tr,
		Seed:      1,
		Logger:    testLogger(t),
	}
	if tweak != nil {
		tweak(&c)
	}
	n, err := NewNode(c)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// advancePastBackoff moves the clock beyond the peer's current backoff
// deadline.
func advancePastBackoff(clock *VirtualClock, p *peerState) {
	p.mu.Lock()
	until := p.backoffUntil
	p.mu.Unlock()
	if wait := until.Sub(clock.Now()); wait > 0 {
		clock.Advance(wait + time.Millisecond)
	}
}

// TestBackoffGrowsToMaxAndResetsOnSuccess: consecutive failures double the
// backoff window up to maxBackoff; one success fully resets it.
func TestBackoffGrowsToMaxAndResetsOnSuccess(t *testing.T) {
	clock := newFakeClock()
	tr := newStubTransport()
	tr.setFailing(true)
	// DeadAfter huge so this test sees pure backoff, no dead promotion.
	n := clockedNode(t, clock, tr, []string{"p1"}, func(c *Config) { c.DeadAfter = 24 * time.Hour })
	p := n.peers[0]

	wantBackoffs := []time.Duration{
		2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second,
		32 * time.Second, time.Minute, time.Minute,
	}
	for i, want := range wantBackoffs {
		advancePastBackoff(clock, p)
		if got := n.GossipOnce(); got != 0 {
			t.Fatalf("round %d: %d successes from a failing transport", i, got)
		}
		p.mu.Lock()
		got := p.backoffUntil.Sub(clock.Now())
		fails := p.failures
		p.mu.Unlock()
		if got != want {
			t.Fatalf("after %d failures: backoff %v, want %v", fails, got, want)
		}
	}

	// A single success resets the window completely.
	tr.setFailing(false)
	advancePastBackoff(clock, p)
	if got := n.GossipOnce(); got != 1 {
		t.Fatalf("recovery round reconciled %d peers, want 1", got)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failures != 0 || !p.backoffUntil.IsZero() || p.state != PeerAlive {
		t.Fatalf("success did not reset peer: failures=%d backoffUntil=%v state=%v",
			p.failures, p.backoffUntil, p.state)
	}
}

// TestSuspectPromotionAndRecovery: SuspectAfter consecutive failures mark
// the peer suspect; a suspect peer stays in the sampling pool and one
// success returns it to alive.
func TestSuspectPromotionAndRecovery(t *testing.T) {
	clock := newFakeClock()
	tr := newStubTransport()
	tr.setFailing(true)
	n := clockedNode(t, clock, tr, []string{"p1"}, func(c *Config) {
		c.SuspectAfter = 3
		c.DeadAfter = 24 * time.Hour
	})
	p := n.peers[0]

	for i := 0; i < 3; i++ {
		advancePastBackoff(clock, p)
		n.GossipOnce()
	}
	h := n.Health()
	if h.PeersSuspect != 1 || h.PeersAlive != 0 {
		t.Fatalf("after 3 failures: health %+v, want 1 suspect", h)
	}

	// Suspect peers must keep being sampled, or they could never recover.
	before := tr.attemptsTo("p1")
	tr.setFailing(false)
	advancePastBackoff(clock, p)
	if got := n.GossipOnce(); got != 1 {
		t.Fatalf("suspect peer not reconciled: %d successes", got)
	}
	if tr.attemptsTo("p1") != before+1 {
		t.Fatalf("suspect peer was not sampled")
	}
	if h := n.Health(); h.PeersAlive != 1 || h.PeersSuspect != 0 {
		t.Fatalf("recovery did not restore alive: %+v", h)
	}
}

// TestDeadPeerLeavesSamplingAndRejoins: a peer failing past DeadAfter is
// declared dead, leaves the per-round sample (probed only occasionally),
// and rejoins as alive on a successful probe.
func TestDeadPeerLeavesSamplingAndRejoins(t *testing.T) {
	clock := newFakeClock()
	tr := newStubTransport()
	tr.setFailing(true)
	n := clockedNode(t, clock, tr, []string{"p1"}, func(c *Config) {
		c.SuspectAfter = 2
		c.DeadAfter = 30 * time.Second
	})
	p := n.peers[0]

	// Fail until the DeadAfter clock runs out.
	for clock.Now().Sub(func() time.Time { p.mu.Lock(); defer p.mu.Unlock(); return p.lastOK }()) < 31*time.Second {
		advancePastBackoff(clock, p)
		n.GossipOnce()
	}
	if h := n.Health(); h.PeersDead != 1 {
		t.Fatalf("peer not promoted to dead: %+v", h)
	}

	// Dead peers are probed with probability deadProbeProb, not swept every
	// round: over many rounds the attempt rate must sit well under 100%.
	start := tr.attemptsTo("p1")
	const rounds = 200
	for i := 0; i < rounds; i++ {
		advancePastBackoff(clock, p)
		n.GossipOnce()
	}
	probes := tr.attemptsTo("p1") - start
	if probes == 0 {
		t.Fatalf("dead peer was never probed; it could never rejoin")
	}
	if probes > rounds/2 {
		t.Fatalf("dead peer probed %d/%d rounds; sampling is not excluding it", probes, rounds)
	}

	// A successful probe rejoins the peer as alive.
	tr.setFailing(false)
	for i := 0; i < 100; i++ {
		advancePastBackoff(clock, p)
		if n.GossipOnce() == 1 {
			break
		}
	}
	if h := n.Health(); h.PeersAlive != 1 || h.PeersDead != 0 {
		t.Fatalf("dead peer did not rejoin after success: %+v", h)
	}
}

// TestHealthDegradedBit: fewer than half the peers alive flips Degraded.
func TestHealthDegradedBit(t *testing.T) {
	clock := newFakeClock()
	tr := newStubTransport()
	n := clockedNode(t, clock, tr, []string{"p1", "p2"}, func(c *Config) {
		c.SuspectAfter = 1
		c.DeadAfter = 10 * time.Second
	})
	if h := n.Health(); h.Degraded {
		t.Fatalf("healthy cluster reports degraded: %+v", h)
	}
	// Kill both peers long enough to go dead.
	tr.setFailing(true)
	for i := 0; i < 10; i++ {
		clock.Advance(5 * time.Second)
		for _, p := range n.peers {
			p.mu.Lock()
			p.backoffUntil = time.Time{}
			p.mu.Unlock()
		}
		n.GossipOnce()
	}
	h := n.Health()
	if !h.Degraded || h.PeersDead != 2 {
		t.Fatalf("dead fleet not reported degraded: %+v", h)
	}
}

// TestAutoFanoutSamplesLogOfPeers: with many healthy peers, one round
// touches only the O(log N) sample, not the full set.
func TestAutoFanoutSamplesLogOfPeers(t *testing.T) {
	clock := newFakeClock()
	tr := newStubTransport()
	peers := make([]string, 32)
	for i := range peers {
		peers[i] = fmt.Sprintf("p%02d", i)
	}
	n := clockedNode(t, clock, tr, peers, nil)
	if got := n.GossipOnce(); got != autoFanout(len(peers)) {
		t.Fatalf("round reconciled %d peers, want fanout %d", got, autoFanout(len(peers)))
	}
	total := 0
	for _, u := range peers {
		total += tr.attemptsTo(u)
	}
	if total != autoFanout(len(peers)) {
		t.Fatalf("round attempted %d RPCs, want %d", total, autoFanout(len(peers)))
	}
	// Negative fanout forces the historical full sweep.
	n2 := clockedNode(t, clock, newStubTransport(), peers, func(c *Config) { c.Fanout = -1 })
	if got := n2.GossipOnce(); got != len(peers) {
		t.Fatalf("full-sweep round reconciled %d peers, want %d", got, len(peers))
	}
}

// TestOriginGCDecayAndTombstone: an origin that stops advancing fades out
// of the mix (weight ramps to zero), is tombstoned, stops being offered to
// peers, and revives on a genuinely newer version.
func TestOriginGCDecayAndTombstone(t *testing.T) {
	clock := newFakeClock()
	a := clockedNode(t, clock, newStubTransport(), nil, func(c *Config) {
		c.OriginGCAfter = time.Minute
		c.OriginGCDecay = time.Minute
	})
	b := newMember(t, "node-b")
	train(b, datagen.RCV1Like(9).Take(400))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	frames := b.node.BuildFrames(map[string]int64{}, false)
	if res := a.ApplyFrames(frames); res.Applied != 1 {
		t.Fatalf("apply: %+v", res)
	}
	if w := a.OriginMixWeights()["node-b"]; w != 400 {
		t.Fatalf("fresh origin weight %v, want 400", w)
	}

	// Mid-ramp: half the decay window past GCAfter → half weight.
	clock.Advance(time.Minute + 30*time.Second)
	if w := a.OriginMixWeights()["node-b"]; w <= 190 || w >= 210 {
		t.Fatalf("mid-decay weight %v, want ≈200", w)
	}

	// Fully decayed: swept to a tombstone, zero weight, absent from frames.
	clock.Advance(31 * time.Second)
	a.GossipOnce() // runs the sweep (no peers, so no RPCs)
	if w := a.OriginMixWeights()["node-b"]; w != 0 {
		t.Fatalf("decayed origin still weighs %v", w)
	}
	st := a.Status()
	var ob *OriginStatus
	for i := range st.Origins {
		if st.Origins[i].ID == "node-b" {
			ob = &st.Origins[i]
		}
	}
	if ob == nil || !ob.Gone || ob.GCFactor != 0 {
		t.Fatalf("origin not tombstoned: %+v", ob)
	}
	if ob.Version != 400 {
		t.Fatalf("tombstone lost the version: %+v", ob)
	}
	if fs := a.BuildFrames(map[string]int64{}, false); len(fs) != 1 {
		t.Fatalf("tombstoned origin still offered to peers: %d frames", len(fs))
	}
	// The served view must now equal mixing self alone.
	sn, err := a.cfg.Local.ModelSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	sn.Origin = "self"
	sn.Heavy = append([]stream.Weighted(nil), sn.Heavy...)
	stream.SortWeighted(sn.Heavy)
	want, err := core.MixSnapshots([]core.Snapshot{sn}, a.cfg.Mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1024; i++ {
		if got, w := a.View().Estimate(i), want.Estimate(i); got != w {
			t.Fatalf("Estimate(%d) after GC: %v, want self-only %v", i, got, w)
		}
	}

	// Revival: a newer version of node-b is adopted at full weight.
	train(b, datagen.RCV1Like(10).Take(100))
	if _, _, err := b.node.PublishLocal(); err != nil {
		t.Fatal(err)
	}
	frames = b.node.BuildFrames(map[string]int64{"node-b": 400}, false)
	// The tombstone freed the delta base, so only a full frame can apply.
	res := a.ApplyFrames(frames)
	if len(res.NeedFull) == 1 {
		full := b.node.BuildFrames(map[string]int64{"node-b": 0}, false)
		res = a.ApplyFrames(full)
	}
	if res.Applied != 1 {
		t.Fatalf("revival apply: %+v", res)
	}
	if w := a.OriginMixWeights()["node-b"]; w != 500 {
		t.Fatalf("revived origin weight %v, want 500", w)
	}
}

// TestInlineRetryCapped: a peer that needs a full re-pull every round gets
// at most maxInlineFullRetries inline retries in a row; after that the
// forced fulls ride the next round's digest (single pull per round).
func TestInlineRetryCapped(t *testing.T) {
	clock := newFakeClock()
	// needFullTransport answers the first pull of a round with a delta whose
	// base the node cannot have, forcing NeedFull, and answers zeroed-digest
	// pulls cleanly — so the flap repeats every round the zero is absent.
	tr := &needFullTransport{}
	n := clockedNode(t, clock, tr, []string{"pb"}, nil)
	for i := 0; i < 6; i++ {
		advancePastBackoff(clock, n.peers[0])
		n.GossipOnce()
	}
	if n.met.retriesDeferred.Value() != 1 {
		t.Fatalf("deferred %d retries over 6 flapping rounds, want 1 (pulls=%d)",
			n.met.retriesDeferred.Value(), tr.pulls)
	}
	// Per 4-round cycle: 2 inline-retry rounds (2 pulls each), 1 deferred
	// round (1 pull), 1 forced-full round (1 pull, resets the streak) —
	// 6 pulls per cycle, then rounds 5–6 retry inline again.
	if wantPulls := 10; tr.pulls != wantPulls {
		t.Fatalf("6 rounds cost %d pulls, want %d (inline retries capped at %d)",
			tr.pulls, wantPulls, maxInlineFullRetries)
	}
}

// needFullTransport forges pull responses containing a delta frame with an
// unknown base, so the puller always reports NeedFull; zeroed re-pulls get
// an empty digest-only answer (the origin "flaps" forever).
type needFullTransport struct {
	mu    sync.Mutex
	pulls int
}

func (s *needFullTransport) Pull(ctx context.Context, peerURL string, req PullRequest) (io.ReadCloser, error) {
	s.mu.Lock()
	s.pulls++
	s.mu.Unlock()
	frames := []Frame{{Kind: kindDigest, Digest: map[string]int64{}}}
	if v, zeroed := req.Digest["ghost"]; !zeroed || v != 0 {
		// No zeroed entry: send a delta for an origin the puller has never
		// seen in full, at a base it cannot hold.
		frames = append(frames, Frame{
			Kind: kindDelta, Origin: "ghost", Version: 100, Base: 50, Scale: 1,
		})
	}
	var buf bytes.Buffer
	if _, err := WriteFrames(&buf, frames); err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
}

func (s *needFullTransport) Push(ctx context.Context, peerURL string, frames []byte) error {
	return nil
}
