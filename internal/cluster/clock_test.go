package cluster

import (
	"testing"
	"time"
)

func TestVirtualClockAfterFiresOnAdvance(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClock(start)

	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before the clock moved")
	default:
	}

	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired 1s early")
	default:
	}

	c.Advance(time.Second)
	select {
	case at := <-ch:
		// The delivered time is the scheduled virtual deadline, not wall time.
		if want := start.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("timer delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualClockAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewVirtualClock(time.Unix(100, 0))
	select {
	case at := <-c.After(0):
		if !at.Equal(time.Unix(100, 0)) {
			t.Fatalf("immediate fire delivered %v", at)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualClockTimersFireInDeadlineOrder(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewVirtualClock(start)
	// Register out of order; one Advance must deliver them deadline-first,
	// each stamped with its own deadline.
	late := c.After(30 * time.Second)
	early := c.After(10 * time.Second)
	mid := c.After(20 * time.Second)
	c.Advance(time.Minute)
	for _, tc := range []struct {
		ch   <-chan time.Time
		want time.Duration
	}{{early, 10 * time.Second}, {mid, 20 * time.Second}, {late, 30 * time.Second}} {
		select {
		case at := <-tc.ch:
			if !at.Equal(start.Add(tc.want)) {
				t.Fatalf("timer for +%v delivered %v", tc.want, at)
			}
		default:
			t.Fatalf("timer for +%v did not fire", tc.want)
		}
	}
}

func TestVirtualClockTickerReArmsAndIsLossy(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	tk := c.NewTicker(time.Second)
	defer tk.Stop()

	// Advancing 5s with nobody draining delivers only the buffered tick:
	// lossy, like time.Ticker.
	c.Advance(5 * time.Second)
	got := 0
	for {
		select {
		case <-tk.Chan():
			got++
			continue
		default:
		}
		break
	}
	if got != 1 {
		t.Fatalf("undrained ticker queued %d ticks, want 1 (lossy delivery)", got)
	}

	// Drained each step, it ticks once per period.
	for i := 0; i < 3; i++ {
		c.Advance(time.Second)
		select {
		case <-tk.Chan():
		default:
			t.Fatalf("drained ticker missed tick %d", i)
		}
	}

	tk.Stop()
	c.Advance(10 * time.Second)
	select {
	case <-tk.Chan():
		t.Fatal("stopped ticker still ticking")
	default:
	}
}

func TestVirtualClockSetRefusesToGoBackwards(t *testing.T) {
	c := NewVirtualClock(time.Unix(100, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Set into the past did not panic")
		}
	}()
	c.Set(time.Unix(50, 0))
}

func TestVirtualClockReleasesBlockedGoroutine(t *testing.T) {
	// The property the chaos-delay path depends on: a goroutine blocked on
	// After is released by another goroutine advancing the clock.
	c := NewVirtualClock(time.Unix(0, 0))
	done := make(chan struct{})
	ready := make(chan (<-chan time.Time), 1)
	go func() {
		ch := c.After(time.Hour)
		ready <- ch
		<-ch
		close(done)
	}()
	<-ready
	select {
	case <-done:
		t.Fatal("goroutine ran past an unexpired virtual timer")
	case <-time.After(20 * time.Millisecond):
	}
	c.Advance(time.Hour)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Advance did not release the blocked goroutine")
	}
}
