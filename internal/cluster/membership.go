package cluster

import (
	"log/slog"
	"math/bits"
	"time"

	"wmsketch/internal/core"
)

// Membership: every peer carries a liveness state derived from its round
// history, and every origin (peers and transitively-learned nodes alike)
// carries an idle age that eventually garbage-collects it out of the mix.
//
//	alive ──failures ≥ SuspectAfter──▶ suspect ──no success for DeadAfter──▶ dead
//	  ▲                                  │                                    │
//	  └────────────── one success ───────┴──── occasional probe succeeds ─────┘
//
// Alive and suspect peers stay in the per-round sampling pool (a suspect
// peer must keep being tried or it could never recover); dead peers leave
// the pool and are only probed occasionally, so a departed node costs one
// speculative RPC every few rounds instead of a timeout every round.
//
// Origins are GC'd by age, independently of peer liveness (most origins are
// not direct peers — their state arrived transitively). An origin whose
// version has not advanced for OriginGCAfter starts losing mix weight
// linearly over OriginGCDecay, hits zero, and is tombstoned: its snapshot
// memory is freed, its version is retained so peers cannot gossip the dead
// state back, and a genuinely newer version (a restarted node with the same
// id restoring its checkpoint) revives it. Each node ages origins on its
// own clock, so during the decay ramp two nodes' views may differ slightly;
// once the origin is fully collected (or fully fresh) views agree again.

// PeerLiveness is a peer's membership state.
type PeerLiveness int8

const (
	// PeerAlive peers reconcile normally.
	PeerAlive PeerLiveness = iota
	// PeerSuspect peers have failed SuspectAfter consecutive rounds; they
	// remain in the sampling pool but are one DeadAfter window from dead.
	PeerSuspect
	// PeerDead peers have not succeeded for DeadAfter; they leave the
	// sampling pool and are probed occasionally for rejoin.
	PeerDead
)

func (s PeerLiveness) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// deadProbeProb is the per-round probability that one dead peer is sampled
// anyway, so a rejoining node is noticed without sweeping every corpse.
const deadProbeProb = 0.2

// classifyLocked derives p's liveness from its failure history. Caller
// holds p.mu.
func (n *Node) classifyLocked(p *peerState, now time.Time) PeerLiveness {
	if p.failures == 0 {
		return PeerAlive
	}
	if now.Sub(p.lastOK) >= n.cfg.DeadAfter {
		return PeerDead
	}
	if p.failures >= int64(n.cfg.SuspectAfter) {
		return PeerSuspect
	}
	return PeerAlive
}

// autoFanout is the default per-round sample size: ⌈log₂(N+1)⌉ with a floor
// of 3, so small clusters keep full sweeps and large ones pay O(log N)
// RPCs per round while rumors still spread in O(log N) rounds.
func autoFanout(total int) int {
	f := bits.Len(uint(total)) // ⌈log₂(total+1)⌉ for total ≥ 1
	if f < 3 {
		f = 3
	}
	if f > total {
		f = total
	}
	return f
}

// samplePeers refreshes every peer's liveness and picks this round's
// targets: a seeded random sample of Fanout alive/suspect peers whose
// backoff has passed, plus (with probability deadProbeProb) one dead peer
// as a rejoin probe.
func (n *Node) samplePeers() []*peerState {
	now := n.cfg.Clock.Now()
	var pool, deadPool []*peerState
	for _, p := range n.peers {
		p.mu.Lock()
		st := n.classifyLocked(p, now)
		if st != p.state {
			n.cfg.Logger.Info("peer liveness transition",
				slog.String("peer", p.url),
				slog.String("from", p.state.String()),
				slog.String("to", st.String()))
			p.state = st
			n.met.transition(st)
		}
		ready := !now.Before(p.backoffUntil)
		p.mu.Unlock()
		if !ready {
			continue
		}
		if st == PeerDead {
			deadPool = append(deadPool, p)
		} else {
			pool = append(pool, p)
		}
	}
	k := n.cfg.Fanout
	if k < 0 || k > len(n.peers) {
		k = len(n.peers)
	} else if k == 0 {
		k = autoFanout(len(n.peers))
	}
	n.rmu.Lock()
	n.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	var probe *peerState
	if len(deadPool) > 0 && n.rng.Float64() < deadProbeProb {
		probe = deadPool[n.rng.Intn(len(deadPool))]
	}
	n.rmu.Unlock()
	if len(pool) > k {
		pool = pool[:k]
	}
	if probe != nil {
		pool = append(pool, probe)
	}
	return pool
}

// gcFactor maps an origin's idle age to its mix-weight factor: full weight
// inside the GC window, a linear ramp to zero across the decay window,
// zero after.
func gcFactor(age, after, decay time.Duration) float64 {
	if age <= after {
		return 1
	}
	if decay <= 0 || age >= after+decay {
		return 0
	}
	return 1 - float64(age-after)/float64(decay)
}

// originFactorLocked is o's current mix-weight factor. The node's own
// origin never decays (it is trivially alive), and a tombstoned origin is
// pinned at zero. Caller holds n.mu.
func (n *Node) originFactorLocked(o *originState, now time.Time) float64 {
	if o.gone {
		return 0
	}
	if o.id == n.cfg.Self || n.cfg.OriginGCAfter < 0 {
		return 1
	}
	return gcFactor(now.Sub(o.lastAdvance), n.cfg.OriginGCAfter, n.cfg.OriginGCDecay)
}

// quantizeFactor buckets a factor so the view is only rebuilt when the
// decay ramp has moved perceptibly, not on every clock tick.
func quantizeFactor(f float64) uint8 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 64
	}
	return uint8(f * 64)
}

// sweepOrigins tombstones fully-decayed origins (freeing their snapshot
// memory, keeping their version so peers cannot gossip the dead state
// back) and marks the view dirty whenever any origin's decay factor has
// moved since the last rebuild. Called once per gossip round.
func (n *Node) sweepOrigins() {
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	dirty := false
	for _, o := range n.origins {
		f := n.originFactorLocked(o, now)
		if f <= 0 && !o.gone {
			o.gone = true
			o.snap = core.Snapshot{}
			o.history = nil
			n.met.originsGCed.Inc()
			n.cfg.Logger.Info("origin idle past the GC window; dropped from the mix",
				slog.String("origin", o.id),
				slog.Int64("tombstone_version", o.version))
			dirty = true
		} else if quantizeFactor(f) != o.factorQ {
			dirty = true
		}
	}
	if dirty {
		n.viewDirty.Store(true)
	}
}

// Health is the node-level liveness summary surfaced by /healthz and
// /v1/cluster/status.
type Health struct {
	PeersTotal   int `json:"peers_total"`
	PeersAlive   int `json:"peers_alive"`
	PeersSuspect int `json:"peers_suspect"`
	PeersDead    int `json:"peers_dead"`
	// OriginsGCed counts origins tombstoned by the age-based GC.
	OriginsGCed int64 `json:"origins_gced"`
	// Degraded is set when fewer than half the configured peers are alive:
	// the node keeps serving, but its merged view may be stale or
	// partitioned and callers deserve to know.
	Degraded bool `json:"degraded"`
	// LastSuccess is the most recent successful peer round across all
	// peers (zero before the first success).
	LastSuccess time.Time `json:"last_success,omitempty"`
	// LastGossipUnix maps each peer URL to the unix time of its last
	// successful round (0 before the first success) — the per-peer
	// freshness signal /healthz surfaces for dashboards and probes.
	LastGossipUnix map[string]int64 `json:"last_gossip_unix,omitempty"`
}

// Health classifies every peer at the current clock and summarizes.
func (n *Node) Health() Health {
	now := n.cfg.Clock.Now()
	h := Health{PeersTotal: len(n.peers), OriginsGCed: n.met.originsGCed.Value()}
	if len(n.peers) > 0 {
		h.LastGossipUnix = make(map[string]int64, len(n.peers))
	}
	for _, p := range n.peers {
		p.mu.Lock()
		st := n.classifyLocked(p, now)
		if p.lastSuccess.After(h.LastSuccess) {
			h.LastSuccess = p.lastSuccess
		}
		if p.lastSuccess.IsZero() {
			h.LastGossipUnix[p.url] = 0
		} else {
			h.LastGossipUnix[p.url] = p.lastSuccess.Unix()
		}
		p.mu.Unlock()
		switch st {
		case PeerAlive:
			h.PeersAlive++
		case PeerSuspect:
			h.PeersSuspect++
		case PeerDead:
			h.PeersDead++
		}
	}
	h.Degraded = h.PeersTotal > 0 && 2*h.PeersAlive < h.PeersTotal
	return h
}
