package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"wmsketch/internal/trace"
)

// Transport carries gossip RPCs to peers. The default implementation speaks
// HTTP against the peer's ordinary wmserve listener; tests and the
// discrete-event simulator (internal/cluster/sim) plug in in-memory — and
// fault-injected — implementations, so the whole gossip client (sampling,
// backoff, membership, retry policy) can be driven without sockets or
// wall-clock time.
type Transport interface {
	// Pull POSTs our digest to the peer and returns its frame stream. The
	// caller owns closing the stream; implementations must honor ctx.
	Pull(ctx context.Context, peerURL string, req PullRequest) (io.ReadCloser, error)
	// Push delivers an encoded frame stream to the peer.
	Push(ctx context.Context, peerURL string, frames []byte) error
}

// httpTransport is the production Transport: gossip over the peers' HTTP
// listeners, bearer-authenticated pushes.
type httpTransport struct {
	client    *http.Client
	authToken string
}

func (t httpTransport) Pull(ctx context.Context, peerURL string, req PullRequest) (io.ReadCloser, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL+"/v1/cluster/pull", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Carry the gossip round's span so the peer's handler continues our
	// trace — the HTTP half of cross-node causal linkage.
	trace.Inject(hreq.Header, trace.SpanContextOf(ctx))
	resp, err := t.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("pull: HTTP %d: %s", resp.StatusCode, msg)
	}
	return resp.Body, nil
}

func (t httpTransport) Push(ctx context.Context, peerURL string, frames []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL+"/v1/cluster/push", bytes.NewReader(frames))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	trace.Inject(req.Header, trace.SpanContextOf(ctx))
	if t.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+t.authToken)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	return nil
}
