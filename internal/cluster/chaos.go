package cluster

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault injection at the HTTP layer: ChaosTransport wraps any
// http.RoundTripper with seeded, deterministic drop/delay/duplicate/
// corrupt/partition rules. Tests use it to drive the gossip client through
// failure schedules; `wmserve -chaos "drop=0.1,delay=50ms"` wires it into
// the cluster client for smoke runs, so an operator can watch membership,
// backoff, and /healthz react to a known fault mix on a live fleet.

// ChaosConfig is the fault mix. All probabilities are per request in
// [0,1]; zero values inject nothing.
type ChaosConfig struct {
	// Seed makes the fault schedule deterministic; 0 selects 1.
	Seed int64
	// Drop fails the request outright (connection-refused analog).
	Drop float64
	// Dup sends the request twice, returning the second response —
	// protocol idempotency must make the first harmless.
	Dup float64
	// Corrupt flips bytes of the response body, which the frame decoder
	// must reject rather than ingest.
	Corrupt float64
	// DelayProb delays a request by Delay before it is sent.
	DelayProb float64
	Delay     time.Duration
	// Partition, when non-nil, fails any request whose target host it
	// reports as unreachable.
	Partition func(host string) bool
	// Clock drives the Delay injection; nil selects WallClock. The
	// simulator and tests inject a VirtualClock so a delay schedule runs
	// on virtual time — deterministic, with zero wall-clock sleeps.
	Clock Clock
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Requests, Dropped, Duplicated, Corrupted, Delayed, Partitioned int64
}

// ChaosTransport is an http.RoundTripper that injects the configured
// faults, deterministically under its seed. Safe for concurrent use.
type ChaosTransport struct {
	base http.RoundTripper
	cfg  ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats ChaosStats
}

// NewChaosTransport wraps base (nil selects http.DefaultTransport).
func NewChaosTransport(base http.RoundTripper, cfg ChaosConfig) *ChaosTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	return &ChaosTransport{base: base, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats snapshots the injected-fault counters.
func (c *ChaosTransport) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// roll draws the per-request fault decisions under one lock acquisition,
// keeping the schedule a pure function of the seed and request order.
func (c *ChaosTransport) roll() (drop, dup, corrupt, delay bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Requests++
	drop = c.cfg.Drop > 0 && c.rng.Float64() < c.cfg.Drop
	dup = c.cfg.Dup > 0 && c.rng.Float64() < c.cfg.Dup
	corrupt = c.cfg.Corrupt > 0 && c.rng.Float64() < c.cfg.Corrupt
	delay = c.cfg.DelayProb > 0 && c.rng.Float64() < c.cfg.DelayProb
	switch {
	case drop:
		c.stats.Dropped++
	case dup:
		c.stats.Duplicated++
	}
	if corrupt {
		c.stats.Corrupted++
	}
	if delay {
		c.stats.Delayed++
	}
	return drop, dup, corrupt, delay
}

// RoundTrip implements http.RoundTripper.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if p := c.cfg.Partition; p != nil && p(req.URL.Host) {
		c.mu.Lock()
		c.stats.Partitioned++
		c.mu.Unlock()
		return nil, fmt.Errorf("chaos: partitioned from %s", req.URL.Host)
	}
	drop, dup, corrupt, delay := c.roll()
	if drop {
		return nil, fmt.Errorf("chaos: dropped request to %s", req.URL.Host)
	}
	if delay && c.cfg.Delay > 0 {
		// The delay runs on the injected Clock, not the time package, so a
		// delay schedule under the simulator's VirtualClock is a pure
		// function of the seed — virtual time, zero wall-clock sleeps.
		select {
		case <-c.cfg.Clock.After(c.cfg.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	// Duplication needs a rewindable body: buffer it once, replay twice.
	var bodyCopy []byte
	if dup && req.Body != nil {
		var err error
		bodyCopy, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		req.Body = io.NopCloser(bytes.NewReader(bodyCopy))
	}
	resp, err := c.base.RoundTrip(req)
	if dup && err == nil {
		// Drain and discard the first response, then send again — the
		// receiver saw the request twice, exactly like a retried datagram.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		second := req.Clone(req.Context())
		if bodyCopy != nil {
			second.Body = io.NopCloser(bytes.NewReader(bodyCopy))
		}
		resp, err = c.base.RoundTrip(second)
	}
	if err != nil {
		return nil, err
	}
	if corrupt {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			c.mu.Lock()
			// Flip a handful of bytes at seeded offsets.
			for i := 0; i < 1+len(body)/256; i++ {
				body[c.rng.Intn(len(body))] ^= 0xA5
			}
			c.mu.Unlock()
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}

// ParseChaos parses the -chaos flag grammar: comma-separated key=value
// pairs from {drop,dup,corrupt,delayp} (probabilities), delay (duration),
// and seed (int). Example: "drop=0.1,delay=50ms,delayp=0.5,seed=7".
func ParseChaos(s string) (ChaosConfig, error) {
	var cfg ChaosConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: %q is not key=value", part)
		}
		switch key {
		case "drop", "dup", "corrupt", "delayp":
			p, err := strconv.ParseFloat(val, 64)
			// NaN compares false to both bounds, so reject it explicitly —
			// a NaN probability would poison every rng comparison.
			if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
				return cfg, fmt.Errorf("chaos: %s must be a probability in [0,1], got %q", key, val)
			}
			switch key {
			case "drop":
				cfg.Drop = p
			case "dup":
				cfg.Dup = p
			case "corrupt":
				cfg.Corrupt = p
			case "delayp":
				cfg.DelayProb = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("chaos: bad delay %q", val)
			}
			cfg.Delay = d
			if cfg.DelayProb == 0 {
				cfg.DelayProb = 1
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q", val)
			}
			cfg.Seed = n
		default:
			return cfg, fmt.Errorf("chaos: unknown key %q (want drop/dup/corrupt/delay/delayp/seed)", key)
		}
	}
	return cfg, nil
}
