package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"wmsketch/internal/trace"
)

// Anti-entropy rounds. Each round a node, per peer:
//
//  1. publishes its local model (new version only if it progressed),
//  2. POSTs its digest to the peer's /v1/cluster/pull and applies the
//     frames that come back (the peer's newer state, delta-compressed
//     where the peer still holds our acked base),
//  3. reads the peer's digest off the same response and POSTs back, via
//     /v1/cluster/push, whatever the peer is missing.
//
// One round trip therefore reconciles both directions. Rounds are
// independent per peer, failures back off exponentially per peer, and all
// state transfer is idempotent, so any interleaving of retries converges.

// maxPullBytes bounds a pull response read by the gossip client.
const maxPullBytes = 1 << 30

// PullRequest is the JSON body of POST /v1/cluster/pull.
type PullRequest struct {
	From   string           `json:"from"`
	Digest map[string]int64 `json:"digest"`
}

// PushResponse is the JSON reply to POST /v1/cluster/push.
type PushResponse struct {
	Applied  int  `json:"applied"`
	Stale    int  `json:"stale"`
	Rejected int  `json:"rejected"`
	Changed  bool `json:"changed"`
}

// peerState is the per-peer round state: liveness, backoff, and transfer
// counters.
type peerState struct {
	url string

	mu           sync.Mutex
	state        PeerLiveness // guarded by mu
	rounds       int64        // guarded by mu
	failures     int64        // guarded by mu; consecutive
	totalFails   int64        // guarded by mu
	lastError    string       // guarded by mu
	lastSuccess  time.Time    // guarded by mu
	lastOK       time.Time    // guarded by mu; last success, or boot time — the dead clock's epoch
	backoffUntil time.Time    // guarded by mu
	bytesIn      int64        // guarded by mu
	bytesOut     int64        // guarded by mu
	framesIn     int64        // guarded by mu
	framesOut    int64        // guarded by mu
	// fullRetries counts consecutive rounds that needed an inline full
	// re-pull; past maxInlineFullRetries the re-pull is deferred to the
	// next round's digest instead (forceFull), so a flapping peer cannot
	// double every round's cost forever.
	fullRetries int             // guarded by mu
	forceFull   map[string]bool // guarded by mu
}

// maxBackoff caps the per-peer retry backoff.
const maxBackoff = time.Minute

// maxInlineFullRetries bounds how many consecutive rounds may re-pull
// inline for missing delta bases before the re-pull is deferred to the
// next round's digest.
const maxInlineFullRetries = 2

// Start launches the background gossip loop (no-op when Interval < 0 or
// there are no peers). Close stops it.
func (n *Node) Start() {
	if n.cfg.Interval < 0 || len(n.peers) == 0 {
		return
	}
	n.startOne.Do(func() {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := n.cfg.Clock.NewTicker(n.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-t.Chan():
					n.GossipOnce()
				}
			}
		}()
	})
}

// Close stops the gossip loop and waits for an in-flight round to finish.
func (n *Node) Close() {
	n.stopOne.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// GossipOnce runs one round: publish the local model, sweep the origin GC,
// then reconcile with a random sample of live peers (plus an occasional
// dead-peer probe). It returns the number of peers successfully
// reconciled. Tests, the smoke harness, and the simulator call it directly
// for deterministic rounds.
func (n *Node) GossipOnce() int {
	n.met.rounds.Inc()
	// The round span is the trace every downstream apply must link back to:
	// its ID rides the traceparent header (HTTP transport) and the stream
	// annotation (wire header), and the simulator's causal-lineage gate
	// checks applied frames against the set of round IDs minted here.
	ctx, round := n.cfg.Tracer.StartSpan(context.Background(), "gossip.round")
	n.setLastRoundTrace(trace.SpanContextOf(ctx).TraceID)
	defer round.Finish()
	if _, _, err := n.PublishLocal(); err != nil {
		n.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "publish failed",
			slog.String("error", err.Error()))
	}
	n.sweepOrigins()
	ok := 0
	for _, p := range n.samplePeers() {
		// Round latency is measured on the injected Clock: real deployments
		// observe wall time, the simulator observes virtual time (zero), so
		// a sim run stays a pure function of its seed.
		began := n.cfg.Clock.Now()
		pctx, span := n.cfg.Tracer.StartSpan(ctx, "gossip.peer")
		err := n.gossipPeer(pctx, p)
		if err != nil {
			span.SetError()
		}
		span.Finish()
		n.met.roundDur.ObserveDuration(n.cfg.Clock.Now().Sub(began))
		if err != nil {
			n.met.peerRoundFail.Inc()
			n.peerFailed(p, err)
		} else {
			n.met.peerRoundOK.Inc()
			n.peerSucceeded(p)
			ok++
		}
	}
	return ok
}

func (n *Node) peerFailed(p *peerState, err error) {
	now := n.cfg.Clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures++
	p.totalFails++
	p.lastError = err.Error()
	backoff := n.cfg.Interval
	if backoff <= 0 {
		backoff = 2 * time.Second
	}
	for i := int64(1); i < p.failures && backoff < maxBackoff; i++ {
		backoff *= 2
	}
	if backoff > maxBackoff {
		backoff = maxBackoff
	}
	p.backoffUntil = now.Add(backoff)
	if st := n.classifyLocked(p, now); st != p.state {
		n.cfg.Logger.Info("peer liveness transition",
			slog.String("peer", p.url),
			slog.String("from", p.state.String()),
			slog.String("to", st.String()))
		p.state = st
		n.met.transition(st)
	}
	n.cfg.Logger.Warn("peer round failed",
		slog.String("peer", p.url),
		slog.Int64("consecutive", p.failures),
		slog.Duration("backoff", backoff.Round(time.Millisecond)),
		slog.String("error", err.Error()))
}

func (n *Node) peerSucceeded(p *peerState) {
	now := n.cfg.Clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state != PeerAlive {
		n.cfg.Logger.Info("peer liveness transition",
			slog.String("peer", p.url),
			slog.String("from", p.state.String()),
			slog.String("to", PeerAlive.String()))
		n.met.transition(PeerAlive)
	}
	p.state = PeerAlive
	p.rounds++
	p.failures = 0
	p.lastError = ""
	p.lastSuccess = now
	p.lastOK = now
	p.backoffUntil = time.Time{}
}

// gossipPeer reconciles with one peer: pull, apply, push back. The ctx
// carries the round's span (the trace every RPC propagates) and the whole
// round shares one context deadline (RPCTimeout), so a stalled peer costs
// bounded wall time however many RPCs the round needs.
func (n *Node) gossipPeer(ctx context.Context, p *peerState) error {
	if n.cfg.RPCTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.cfg.RPCTimeout)
		defer cancel()
	}
	digest := n.Digest()
	// Origins whose inline re-pull was deferred last round: zero their
	// digest entries so this round's single pull fetches fulls.
	p.mu.Lock()
	for origin := range p.forceFull {
		digest[origin] = 0
	}
	p.forceFull = nil
	p.mu.Unlock()
	res, err := n.pull(ctx, p, digest)
	if err != nil {
		return err
	}
	// Deltas whose base we lack: re-pull those origins with a zeroed digest
	// entry, which forces full frames — but only a bounded number of rounds
	// in a row. A peer that keeps flapping gets its fulls folded into the
	// next round's pull instead of doubling this round's cost again.
	if len(res.NeedFull) > 0 {
		p.mu.Lock()
		p.fullRetries++
		deferred := p.fullRetries > maxInlineFullRetries
		if deferred {
			if p.forceFull == nil {
				p.forceFull = make(map[string]bool, len(res.NeedFull))
			}
			for _, origin := range res.NeedFull {
				p.forceFull[origin] = true
			}
		}
		p.mu.Unlock()
		if deferred {
			n.met.retriesDeferred.Inc()
		} else {
			retry := n.Digest()
			for _, origin := range res.NeedFull {
				retry[origin] = 0
			}
			if r2, err := n.pull(ctx, p, retry); err == nil {
				if r2.TheirDigest != nil {
					res.TheirDigest = r2.TheirDigest
				}
			} else {
				return fmt.Errorf("full re-pull: %w", err)
			}
		}
	} else {
		p.mu.Lock()
		p.fullRetries = 0
		p.mu.Unlock()
	}
	// Push back whatever the peer is missing.
	if res.TheirDigest != nil {
		frames := n.BuildFrames(res.TheirDigest, false)
		if len(frames) > 0 {
			if err := n.push(ctx, p, frames); err != nil {
				return fmt.Errorf("push: %w", err)
			}
		}
	}
	return nil
}

// pull sends our digest over the transport and applies the peer's response
// frames.
func (n *Node) pull(ctx context.Context, p *peerState, digest map[string]int64) (ApplyResult, error) {
	rc, err := n.cfg.Transport.Pull(ctx, p.url, PullRequest{From: n.cfg.Self, Digest: digest})
	if err != nil {
		return ApplyResult{}, err
	}
	defer rc.Close()
	// Decode straight off the wire — a full sync of a large model must not
	// be buffered whole just to count its bytes.
	cr := &countingReader{r: io.LimitReader(rc, maxPullBytes)}
	frames, sc, err := ReadFramesTraced(cr)
	if err != nil {
		return ApplyResult{}, err
	}
	// ctx already carries our round's span, so the apply nests under it; the
	// stream annotation (the peer's handler span, which itself continued our
	// round via the traceparent header) is the fallback lineage evidence when
	// this node runs untraced.
	res := n.ApplyFramesCtx(trace.ContextWithRemote(ctx, sc), frames)
	n.met.bytesIn.Add(cr.n)
	n.met.countFrames(frames, true)
	p.mu.Lock()
	p.bytesIn += cr.n
	p.framesIn += int64(len(frames))
	p.mu.Unlock()
	return res, nil
}

// countingReader tracks bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// push sends frames the peer is missing over the transport.
func (n *Node) push(ctx context.Context, p *peerState, frames []Frame) error {
	var buf bytes.Buffer
	nBytes, err := WriteFramesTraced(&buf, trace.SpanContextOf(ctx), frames)
	if err != nil {
		return err
	}
	if err := n.cfg.Transport.Push(ctx, p.url, buf.Bytes()); err != nil {
		return err
	}
	n.met.bytesOut.Add(nBytes)
	n.met.countFrames(frames, false)
	p.mu.Lock()
	p.bytesOut += nBytes
	p.framesOut += int64(len(frames))
	p.mu.Unlock()
	return nil
}

// ---- status ----

// PeerStatus is one peer's round state as reported by /v1/cluster/status.
type PeerStatus struct {
	URL                 string    `json:"url"`
	State               string    `json:"state"`
	Rounds              int64     `json:"rounds"`
	ConsecutiveFailures int64     `json:"consecutive_failures"`
	TotalFailures       int64     `json:"total_failures"`
	LastError           string    `json:"last_error,omitempty"`
	LastSuccess         time.Time `json:"last_success,omitempty"`
	BackoffUntil        time.Time `json:"backoff_until,omitempty"`
	BytesIn             int64     `json:"bytes_in"`
	BytesOut            int64     `json:"bytes_out"`
	FramesIn            int64     `json:"frames_in"`
	FramesOut           int64     `json:"frames_out"`
}

// OriginStatus is one known origin's replication state.
type OriginStatus struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
	Steps   int64  `json:"steps"`
	Heavy   int    `json:"heavy"`
	// GCFactor is the origin's current mix-weight factor: 1 fresh, in
	// (0,1) on the decay ramp, 0 tombstoned.
	GCFactor float64 `json:"gc_factor"`
	// Gone marks a tombstoned origin (version retained, snapshot freed).
	Gone bool `json:"gone,omitempty"`
}

// Status is the /v1/cluster/status document.
type Status struct {
	Self    string         `json:"self"`
	Version int64          `json:"version"`
	Origins []OriginStatus `json:"origins"`
	Peers   []PeerStatus   `json:"peers"`

	Rounds         int64 `json:"rounds"`
	FramesIn       int64 `json:"frames_in"`
	FramesOut      int64 `json:"frames_out"`
	BytesIn        int64 `json:"bytes_in"`
	BytesOut       int64 `json:"bytes_out"`
	FullsOut       int64 `json:"fulls_out"`
	DeltasOut      int64 `json:"deltas_out"`
	FullsIn        int64 `json:"fulls_in"`
	DeltasIn       int64 `json:"deltas_in"`
	StaleDropped   int64 `json:"stale_dropped"`
	RejectedFrames int64 `json:"rejected_frames"`
	// OriginsGCed counts origins tombstoned by the age-based GC;
	// RetriesDeferred counts rounds where the inline full re-pull was
	// pushed to the next round's digest instead.
	OriginsGCed     int64 `json:"origins_gced"`
	RetriesDeferred int64 `json:"retries_deferred"`

	// Health is the membership summary also surfaced by /healthz.
	Health Health `json:"health"`
}

// Status snapshots the node's replication state. Every aggregate counter
// is read back from the metrics registry — /v1/cluster/status and /metrics
// can never disagree because they share instruments.
func (n *Node) Status() Status {
	st := Status{
		Self:            n.cfg.Self,
		Rounds:          n.met.rounds.Value(),
		FramesIn:        sumKinds(&n.met.framesIn),
		FramesOut:       sumKinds(&n.met.framesOut),
		BytesIn:         n.met.bytesIn.Value(),
		BytesOut:        n.met.bytesOut.Value(),
		FullsOut:        n.met.builtFull.Value(),
		DeltasOut:       n.met.builtDelta.Value(),
		FullsIn:         n.met.appliedFull.Value(),
		DeltasIn:        n.met.appliedDelta.Value(),
		StaleDropped:    n.met.staleDropped.Value(),
		RejectedFrames:  n.met.rejectedFrames.Value(),
		OriginsGCed:     n.met.originsGCed.Value(),
		RetriesDeferred: n.met.retriesDeferred.Value(),
		Health:          n.Health(),
	}
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	ids := make([]string, 0, len(n.origins))
	for id := range n.origins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := n.origins[id]
		st.Origins = append(st.Origins, OriginStatus{
			ID: o.id, Version: o.version, Steps: o.snap.Steps, Heavy: len(o.snap.Heavy),
			GCFactor: n.originFactorLocked(o, now), Gone: o.gone,
		})
		if id == n.cfg.Self {
			st.Version = o.version
		}
	}
	n.mu.Unlock()
	for _, p := range n.peers {
		p.mu.Lock()
		st.Peers = append(st.Peers, PeerStatus{
			URL:                 p.url,
			State:               p.state.String(),
			Rounds:              p.rounds,
			ConsecutiveFailures: p.failures,
			TotalFailures:       p.totalFails,
			LastError:           p.lastError,
			LastSuccess:         p.lastSuccess,
			BackoffUntil:        p.backoffUntil,
			BytesIn:             p.bytesIn,
			BytesOut:            p.bytesOut,
			FramesIn:            p.framesIn,
			FramesOut:           p.framesOut,
		})
		p.mu.Unlock()
	}
	return st
}
