package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Anti-entropy rounds. Each round a node, per peer:
//
//  1. publishes its local model (new version only if it progressed),
//  2. POSTs its digest to the peer's /v1/cluster/pull and applies the
//     frames that come back (the peer's newer state, delta-compressed
//     where the peer still holds our acked base),
//  3. reads the peer's digest off the same response and POSTs back, via
//     /v1/cluster/push, whatever the peer is missing.
//
// One round trip therefore reconciles both directions. Rounds are
// independent per peer, failures back off exponentially per peer, and all
// state transfer is idempotent, so any interleaving of retries converges.

// maxPullBytes bounds a pull response read by the gossip client.
const maxPullBytes = 1 << 30

// PullRequest is the JSON body of POST /v1/cluster/pull.
type PullRequest struct {
	From   string           `json:"from"`
	Digest map[string]int64 `json:"digest"`
}

// PushResponse is the JSON reply to POST /v1/cluster/push.
type PushResponse struct {
	Applied  int  `json:"applied"`
	Stale    int  `json:"stale"`
	Rejected int  `json:"rejected"`
	Changed  bool `json:"changed"`
}

// peerState is the per-peer round state: liveness, backoff, and transfer
// counters.
type peerState struct {
	url string

	mu           sync.Mutex
	rounds       int64
	failures     int64 // consecutive
	totalFails   int64
	lastError    string
	lastSuccess  time.Time
	backoffUntil time.Time
	bytesIn      int64
	bytesOut     int64
	framesIn     int64
	framesOut    int64
}

// maxBackoff caps the per-peer retry backoff.
const maxBackoff = time.Minute

// Start launches the background gossip loop (no-op when Interval < 0 or
// there are no peers). Close stops it.
func (n *Node) Start() {
	if n.cfg.Interval < 0 || len(n.peers) == 0 {
		return
	}
	n.startOne.Do(func() {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := time.NewTicker(n.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-t.C:
					n.GossipOnce()
				}
			}
		}()
	})
}

// Close stops the gossip loop and waits for an in-flight round to finish.
func (n *Node) Close() {
	n.stopOne.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// GossipOnce runs one full round: publish the local model, then reconcile
// with every peer whose backoff window has passed. It returns the number
// of peers successfully reconciled. Tests and the smoke harness call it
// directly for deterministic rounds.
func (n *Node) GossipOnce() int {
	n.rounds.Add(1)
	if _, _, err := n.PublishLocal(); err != nil {
		n.cfg.Logf("cluster: publish: %v", err)
	}
	ok := 0
	for _, p := range n.peers {
		p.mu.Lock()
		wait := time.Until(p.backoffUntil)
		p.mu.Unlock()
		if wait > 0 {
			continue
		}
		if err := n.gossipPeer(p); err != nil {
			n.peerFailed(p, err)
		} else {
			n.peerSucceeded(p)
			ok++
		}
	}
	return ok
}

func (n *Node) peerFailed(p *peerState, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures++
	p.totalFails++
	p.lastError = err.Error()
	backoff := n.cfg.Interval
	if backoff <= 0 {
		backoff = 2 * time.Second
	}
	for i := int64(1); i < p.failures && backoff < maxBackoff; i++ {
		backoff *= 2
	}
	if backoff > maxBackoff {
		backoff = maxBackoff
	}
	p.backoffUntil = time.Now().Add(backoff)
	n.cfg.Logf("cluster: peer %s failed (%d consecutive, next attempt in %s): %v",
		p.url, p.failures, backoff.Round(time.Millisecond), err)
}

func (n *Node) peerSucceeded(p *peerState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rounds++
	p.failures = 0
	p.lastError = ""
	p.lastSuccess = time.Now()
	p.backoffUntil = time.Time{}
}

// gossipPeer reconciles with one peer: pull, apply, push back.
func (n *Node) gossipPeer(p *peerState) error {
	res, err := n.pull(p, n.Digest())
	if err != nil {
		return err
	}
	// Deltas whose base we lack: re-pull those origins with a zeroed digest
	// entry, which forces full frames.
	if len(res.NeedFull) > 0 {
		retry := n.Digest()
		for _, origin := range res.NeedFull {
			retry[origin] = 0
		}
		if r2, err := n.pull(p, retry); err == nil {
			if r2.TheirDigest != nil {
				res.TheirDigest = r2.TheirDigest
			}
		} else {
			return fmt.Errorf("full re-pull: %w", err)
		}
	}
	// Push back whatever the peer is missing.
	if res.TheirDigest != nil {
		frames := n.BuildFrames(res.TheirDigest, false)
		if len(frames) > 0 {
			if err := n.push(p, frames); err != nil {
				return fmt.Errorf("push: %w", err)
			}
		}
	}
	return nil
}

// pull POSTs our digest and applies the peer's response frames.
func (n *Node) pull(p *peerState, digest map[string]int64) (ApplyResult, error) {
	body, err := json.Marshal(PullRequest{From: n.cfg.Self, Digest: digest})
	if err != nil {
		return ApplyResult{}, err
	}
	req, err := http.NewRequest(http.MethodPost, p.url+"/v1/cluster/pull", bytes.NewReader(body))
	if err != nil {
		return ApplyResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return ApplyResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ApplyResult{}, fmt.Errorf("pull: HTTP %d: %s", resp.StatusCode, msg)
	}
	// Decode straight off the wire — a full sync of a large model must not
	// be buffered whole just to count its bytes.
	cr := &countingReader{r: io.LimitReader(resp.Body, maxPullBytes)}
	frames, err := ReadFrames(cr)
	if err != nil {
		return ApplyResult{}, err
	}
	res := n.ApplyFrames(frames)
	n.bytesIn.Add(cr.n)
	n.framesIn.Add(int64(len(frames)))
	p.mu.Lock()
	p.bytesIn += cr.n
	p.framesIn += int64(len(frames))
	p.mu.Unlock()
	return res, nil
}

// countingReader tracks bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// push POSTs frames the peer is missing.
func (n *Node) push(p *peerState, frames []Frame) error {
	var buf bytes.Buffer
	nBytes, err := WriteFrames(&buf, frames)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, p.url+"/v1/cluster/push", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if n.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+n.cfg.AuthToken)
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	n.bytesOut.Add(nBytes)
	n.framesOut.Add(int64(len(frames)))
	p.mu.Lock()
	p.bytesOut += nBytes
	p.framesOut += int64(len(frames))
	p.mu.Unlock()
	return nil
}

// ---- status ----

// PeerStatus is one peer's round state as reported by /v1/cluster/status.
type PeerStatus struct {
	URL                 string    `json:"url"`
	Rounds              int64     `json:"rounds"`
	ConsecutiveFailures int64     `json:"consecutive_failures"`
	TotalFailures       int64     `json:"total_failures"`
	LastError           string    `json:"last_error,omitempty"`
	LastSuccess         time.Time `json:"last_success,omitempty"`
	BackoffUntil        time.Time `json:"backoff_until,omitempty"`
	BytesIn             int64     `json:"bytes_in"`
	BytesOut            int64     `json:"bytes_out"`
	FramesIn            int64     `json:"frames_in"`
	FramesOut           int64     `json:"frames_out"`
}

// OriginStatus is one known origin's replication state.
type OriginStatus struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
	Steps   int64  `json:"steps"`
	Heavy   int    `json:"heavy"`
}

// Status is the /v1/cluster/status document.
type Status struct {
	Self    string         `json:"self"`
	Version int64          `json:"version"`
	Origins []OriginStatus `json:"origins"`
	Peers   []PeerStatus   `json:"peers"`

	Rounds         int64 `json:"rounds"`
	FramesIn       int64 `json:"frames_in"`
	FramesOut      int64 `json:"frames_out"`
	BytesIn        int64 `json:"bytes_in"`
	BytesOut       int64 `json:"bytes_out"`
	FullsOut       int64 `json:"fulls_out"`
	DeltasOut      int64 `json:"deltas_out"`
	FullsIn        int64 `json:"fulls_in"`
	DeltasIn       int64 `json:"deltas_in"`
	StaleDropped   int64 `json:"stale_dropped"`
	RejectedFrames int64 `json:"rejected_frames"`
}

// Status snapshots the node's replication state.
func (n *Node) Status() Status {
	st := Status{
		Self:           n.cfg.Self,
		Rounds:         n.rounds.Load(),
		FramesIn:       n.framesIn.Load(),
		FramesOut:      n.framesOut.Load(),
		BytesIn:        n.bytesIn.Load(),
		BytesOut:       n.bytesOut.Load(),
		FullsOut:       n.fullsOut.Load(),
		DeltasOut:      n.deltasOut.Load(),
		FullsIn:        n.fullsIn.Load(),
		DeltasIn:       n.deltasIn.Load(),
		StaleDropped:   n.staleDropped.Load(),
		RejectedFrames: n.rejectedFrames.Load(),
	}
	n.mu.Lock()
	ids := make([]string, 0, len(n.origins))
	for id := range n.origins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := n.origins[id]
		st.Origins = append(st.Origins, OriginStatus{
			ID: o.id, Version: o.version, Steps: o.snap.Steps, Heavy: len(o.snap.Heavy),
		})
		if id == n.cfg.Self {
			st.Version = o.version
		}
	}
	n.mu.Unlock()
	for _, p := range n.peers {
		p.mu.Lock()
		st.Peers = append(st.Peers, PeerStatus{
			URL:                 p.url,
			Rounds:              p.rounds,
			ConsecutiveFailures: p.failures,
			TotalFailures:       p.totalFails,
			LastError:           p.lastError,
			LastSuccess:         p.lastSuccess,
			BackoffUntil:        p.backoffUntil,
			BytesIn:             p.bytesIn,
			BytesOut:            p.bytesOut,
			FramesIn:            p.framesIn,
			FramesOut:           p.framesOut,
		})
		p.mu.Unlock()
	}
	return st
}
