package memory

import "testing"

func TestBaselineCapacities(t *testing.T) {
	// Section 7.1's example: a 128-entry truncation instance costs 1024 B.
	if got := TruncationEntries(1024); got != 128 {
		t.Errorf("TruncationEntries(1024) = %d, want 128", got)
	}
	if got := TruncationEntries(2048); got != 256 {
		t.Errorf("TruncationEntries(2048) = %d, want 256", got)
	}
	if got := ProbTruncationEntries(12 * 100); got != 100 {
		t.Errorf("ProbTruncationEntries = %d, want 100", got)
	}
	if got := SpaceSavingEntries(2048); got != 170 {
		t.Errorf("SpaceSavingEntries(2048) = %d, want 170", got)
	}
	if got := HashBuckets(2048); got != 512 {
		t.Errorf("HashBuckets(2048) = %d, want 512", got)
	}
}

func TestPaperAWMConfigMatchesTable2(t *testing.T) {
	// Table 2's AWM column: budget → (|S|, width, depth 1).
	cases := []struct {
		budget      int
		heap, width int
	}{
		{2 * 1024, 128, 256},
		{4 * 1024, 256, 512},
		{8 * 1024, 512, 1024},
		{16 * 1024, 1024, 2048},
		{32 * 1024, 2048, 4096},
	}
	for _, c := range cases {
		cfg := PaperAWMConfig(c.budget)
		if cfg.Heap != c.heap || cfg.Width != c.width || cfg.Depth != 1 {
			t.Errorf("PaperAWMConfig(%d) = %+v, want {%d %d 1}",
				c.budget, cfg, c.heap, c.width)
		}
		if !cfg.Fits(c.budget) {
			t.Errorf("PaperAWMConfig(%d) overflows: %d B", c.budget, cfg.Bytes())
		}
		if cfg.Bytes() != c.budget {
			t.Errorf("PaperAWMConfig(%d) uses %d B, want exact fill", c.budget, cfg.Bytes())
		}
	}
}

func TestPaperWMConfigFitsAndUsesBudget(t *testing.T) {
	for _, budget := range StandardBudgets {
		cfg := PaperWMConfig(budget)
		if !cfg.Fits(budget) {
			t.Errorf("PaperWMConfig(%d) = %+v overflows (%d B)", budget, cfg, cfg.Bytes())
		}
		if cfg.Bytes()*2 < budget {
			t.Errorf("PaperWMConfig(%d) = %+v wastes budget (%d B)", budget, cfg, cfg.Bytes())
		}
		if cfg.Depth < 1 {
			t.Errorf("PaperWMConfig(%d): depth %d", budget, cfg.Depth)
		}
	}
	// Larger budgets buy depth at fixed width (Section 7.3's finding).
	small := PaperWMConfig(8 * 1024)
	large := PaperWMConfig(16 * 1024)
	if large.Depth <= small.Depth {
		t.Errorf("depth should scale with budget: %+v vs %+v", small, large)
	}
}

func TestEnumerateSketchConfigs(t *testing.T) {
	configs := EnumerateSketchConfigs(8*1024, 16)
	if len(configs) == 0 {
		t.Fatal("no configurations enumerated")
	}
	seen := map[SketchConfig]bool{}
	for _, c := range configs {
		if !c.Fits(8 * 1024) {
			t.Errorf("config %+v overflows 8KB: %d B", c, c.Bytes())
		}
		if c.Bytes()*2 < 8*1024 {
			t.Errorf("config %+v uses less than half the budget", c)
		}
		if seen[c] {
			t.Errorf("duplicate config %+v", c)
		}
		seen[c] = true
	}
	// The paper's best 8KB AWM config (512, 1024, 1) must be in the sweep.
	want := SketchConfig{Heap: 512, Width: 1024, Depth: 1}
	if !seen[want] {
		t.Errorf("sweep missing the paper's best 8KB config %+v", want)
	}
}

func TestSketchConfigBytes(t *testing.T) {
	c := SketchConfig{Heap: 128, Width: 128, Depth: 2}
	// 128·8 + 2·128·4 = 1024 + 1024 = 2048: the paper's 2KB WM config.
	if got := c.Bytes(); got != 2048 {
		t.Errorf("Bytes = %d, want 2048", got)
	}
	if !c.Fits(2048) || c.Fits(2047) {
		t.Error("Fits boundary incorrect")
	}
}

func TestPairedCMConfig(t *testing.T) {
	cfg := PairedCMConfig(32*1024, 4, 2048)
	// heap: 2048·8 = 16KB; remaining 16KB over two sketches = 8KB each;
	// width = 8192/(4·4) = 512.
	if cfg.Width != 512 || cfg.Depth != 4 || cfg.Heap != 2048 {
		t.Errorf("PairedCMConfig = %+v", cfg)
	}
	// Degenerate: heap swallows the budget.
	tiny := PairedCMConfig(1024, 4, 2048)
	if tiny.Width < 1 {
		t.Errorf("width must stay positive: %+v", tiny)
	}
}

func TestRoundPow2Down(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 1000: 512, 1024: 1024}
	for in, want := range cases {
		if got := roundPow2Down(in); got != want {
			t.Errorf("roundPow2Down(%d) = %d, want %d", in, got, want)
		}
	}
}
