// Package memory implements the Section 7.1 memory cost model: every
// feature identifier, feature weight and auxiliary value (Space Saving
// count, reservoir key, frequency score) is charged 4 bytes. Given a byte
// budget it derives the capacity of each baseline and enumerates the sketch
// configurations compatible with the budget, mirroring the paper's
// per-budget configuration sweep.
package memory

// Cost-model unit sizes in bytes.
const (
	BytesPerID     = 4
	BytesPerWeight = 4
	BytesPerAux    = 4
)

// Standard budgets evaluated in the paper (Section 7.1).
var StandardBudgets = []int{2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024}

// TruncationEntries returns the number of (id, weight) entries a simple
// truncation instance can hold within budget bytes: budget / 8.
func TruncationEntries(budget int) int {
	return budget / (BytesPerID + BytesPerWeight)
}

// ProbTruncationEntries returns the entry count for probabilistic
// truncation, which also stores a 4-byte reservoir key per entry.
func ProbTruncationEntries(budget int) int {
	return budget / (BytesPerID + BytesPerWeight + BytesPerAux)
}

// SpaceSavingEntries returns the counter count for the Space Saving
// frequent-features baseline (id + count + weight per slot).
func SpaceSavingEntries(budget int) int {
	return budget / (BytesPerID + BytesPerWeight + BytesPerAux)
}

// HashBuckets returns the table size for feature hashing: the entire budget
// goes to weights.
func HashBuckets(budget int) int {
	return budget / BytesPerWeight
}

// SketchConfig is one (heap, width, depth) configuration for a WM- or
// AWM-Sketch.
type SketchConfig struct {
	Heap  int // heap capacity |S|
	Width int // buckets per row (k/s)
	Depth int // rows s
}

// Bytes returns the configuration's cost-model footprint.
func (c SketchConfig) Bytes() int {
	return c.Heap*(BytesPerID+BytesPerWeight) + c.Depth*c.Width*BytesPerWeight
}

// Fits reports whether the configuration fits within budget bytes.
func (c SketchConfig) Fits(budget int) bool { return c.Bytes() <= budget }

// EnumerateSketchConfigs lists the power-of-two (heap, width, depth)
// configurations that fit within budget and use at least half of it,
// matching the paper's configuration sweep. maxDepth caps the number of
// rows considered (the paper explored depth up to ~32).
func EnumerateSketchConfigs(budget, maxDepth int) []SketchConfig {
	var out []SketchConfig
	for heap := 16; heap*(BytesPerID+BytesPerWeight) <= budget; heap *= 2 {
		remaining := budget - heap*(BytesPerID+BytesPerWeight)
		totalBuckets := remaining / BytesPerWeight
		if totalBuckets < 1 {
			continue
		}
		for depth := 1; depth <= maxDepth; depth++ {
			// Largest power-of-two width such that depth*width fits.
			width := 1
			for width*2*depth <= totalBuckets {
				width *= 2
			}
			if width < 2 {
				continue
			}
			cfg := SketchConfig{Heap: heap, Width: width, Depth: depth}
			if cfg.Fits(budget) && cfg.Bytes()*2 >= budget {
				out = append(out, cfg)
			}
		}
	}
	return out
}

// PaperAWMConfig returns the AWM-Sketch configuration the paper found
// uniformly best (Section 7.3): half the budget to the active set, the
// remainder to a depth-1 sketch. For a 2KB budget this yields |S|=128,
// width=256, matching Table 2.
func PaperAWMConfig(budget int) SketchConfig {
	heap := roundPow2Down(budget / 2 / (BytesPerID + BytesPerWeight))
	width := roundPow2Down((budget - heap*(BytesPerID+BytesPerWeight)) / BytesPerWeight)
	return SketchConfig{Heap: heap, Width: width, Depth: 1}
}

// PaperWMConfig returns the WM-Sketch classification configuration from
// Section 7.3: width 128 or 256 with depth scaling proportionally to the
// budget and a 128-entry heap, matching Table 2's WM column.
func PaperWMConfig(budget int) SketchConfig {
	heap := 128
	if budget <= 4*1024 {
		heap = budget / 2 / (BytesPerID + BytesPerWeight)
	}
	remaining := budget - heap*(BytesPerID+BytesPerWeight)
	width := 128
	if budget >= 32*1024 {
		width = 256
	}
	depth := remaining / (width * BytesPerWeight)
	if depth < 1 {
		depth = 1
	}
	return SketchConfig{Heap: heap, Width: width, Depth: depth}
}

// CMPairConfig sizes a pair of Count-Min sketches plus a top-K heap for the
// deltoid baseline within budget: half the bucket budget per stream.
type CMPairConfig struct {
	Depth int
	Width int
	Heap  int
}

// PairedCMConfig splits budget across two CM sketches of the given depth
// plus a heap of heapK (id + 2 aux counters per entry is approximated as
// id + weight).
func PairedCMConfig(budget, depth, heapK int) CMPairConfig {
	heapBytes := heapK * (BytesPerID + BytesPerWeight)
	remaining := budget - heapBytes
	if remaining < 0 {
		remaining = 0
	}
	perSketch := remaining / 2
	width := roundPow2Down(perSketch / (depth * BytesPerWeight))
	if width < 1 {
		width = 1
	}
	return CMPairConfig{Depth: depth, Width: width, Heap: heapK}
}

func roundPow2Down(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
