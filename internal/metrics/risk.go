package metrics

import (
	"math"
	"sort"
)

// RiskTracker accumulates exact per-feature contingency counts over a
// labeled stream of 1-sparse attribute observations (the Section 8.1
// encoding: one feature vector per attribute of each row) and computes the
// relative risk rₓ = p(y=1 | x=1) / p(y=1 | x=0).
type RiskTracker struct {
	pos      map[uint32]int64 // feature present, label +1
	neg      map[uint32]int64 // feature present, label −1
	totalPos int64
	totalNeg int64
}

// NewRiskTracker returns an empty tracker.
func NewRiskTracker() *RiskTracker {
	return &RiskTracker{pos: make(map[uint32]int64), neg: make(map[uint32]int64)}
}

// Observe records one attribute occurrence with outlier label y ∈ {−1,+1}.
func (r *RiskTracker) Observe(feature uint32, y int) {
	if y > 0 {
		r.pos[feature]++
		r.totalPos++
	} else {
		r.neg[feature]++
		r.totalNeg++
	}
}

// Count returns (positive, negative) occurrence counts for feature.
func (r *RiskTracker) Count(feature uint32) (pos, neg int64) {
	return r.pos[feature], r.neg[feature]
}

// Total returns the total number of observations.
func (r *RiskTracker) Total() int64 { return r.totalPos + r.totalNeg }

// RelativeRisk returns rₓ for feature x. When the feature never occurs in
// the negative-exposure group the risk is +Inf (conventional); features
// never observed at all yield NaN.
func (r *RiskTracker) RelativeRisk(feature uint32) float64 {
	fp, fn := float64(r.pos[feature]), float64(r.neg[feature])
	exposed := fp + fn
	if exposed == 0 {
		return math.NaN()
	}
	// p(y=1 | x=1)
	pExposed := fp / exposed
	// p(y=1 | x=0): positives and totals excluding this feature's rows.
	unexposedPos := float64(r.totalPos) - fp
	unexposed := float64(r.Total()) - exposed
	if unexposed == 0 {
		return math.NaN()
	}
	pUnexposed := unexposedPos / unexposed
	if pUnexposed == 0 {
		if pExposed == 0 {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return pExposed / pUnexposed
}

// LogOdds returns the empirical log-odds ratio for feature x with add-half
// (Haldane–Anscombe) smoothing; logistic regression weights over 1-sparse
// encodings converge to this quantity, which is what Figure 9 correlates
// against relative risk.
func (r *RiskTracker) LogOdds(feature uint32) float64 {
	fp, fn := float64(r.pos[feature])+0.5, float64(r.neg[feature])+0.5
	op := float64(r.totalPos) - float64(r.pos[feature]) + 0.5
	on := float64(r.totalNeg) - float64(r.neg[feature]) + 0.5
	return math.Log((fp / fn) / (op / on))
}

// Features returns every feature observed at least once.
func (r *RiskTracker) Features() []uint32 {
	seen := make(map[uint32]bool, len(r.pos)+len(r.neg))
	out := make([]uint32, 0, len(r.pos)+len(r.neg))
	for f := range r.pos {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for f := range r.neg {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	// Map order is randomized; return a sorted list so downstream
	// evaluation walks features in a reproducible order.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
