package metrics

import "math"

// PMITracker accumulates exact unigram and bigram counts so that sketched
// PMI estimates (Section 8.3) can be validated against ground truth:
//
//	PMI(u,v) = log p(u,v) / (p(u)·p(v)).
type PMITracker struct {
	unigrams      map[uint32]int64
	bigrams       map[uint64]int64
	totalUnigrams int64
	totalBigrams  int64
}

// NewPMITracker returns an empty tracker.
func NewPMITracker() *PMITracker {
	return &PMITracker{
		unigrams: make(map[uint32]int64),
		bigrams:  make(map[uint64]int64),
	}
}

func pairKey(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// ObserveUnigram records one occurrence of token u.
func (p *PMITracker) ObserveUnigram(u uint32) {
	p.unigrams[u]++
	p.totalUnigrams++
}

// ObserveBigram records one co-occurrence of the ordered pair (u, v).
func (p *PMITracker) ObserveBigram(u, v uint32) {
	p.bigrams[pairKey(u, v)]++
	p.totalBigrams++
}

// UnigramCount returns the exact count of token u.
func (p *PMITracker) UnigramCount(u uint32) int64 { return p.unigrams[u] }

// BigramCount returns the exact count of pair (u, v).
func (p *PMITracker) BigramCount(u, v uint32) int64 { return p.bigrams[pairKey(u, v)] }

// BigramFrequency returns the empirical probability of pair (u, v).
func (p *PMITracker) BigramFrequency(u, v uint32) float64 {
	if p.totalBigrams == 0 {
		return 0
	}
	return float64(p.bigrams[pairKey(u, v)]) / float64(p.totalBigrams)
}

// PMI returns the exact pointwise mutual information of (u, v) from the
// accumulated counts, or NaN when any required count is zero.
func (p *PMITracker) PMI(u, v uint32) float64 {
	cuv := p.bigrams[pairKey(u, v)]
	cu, cv := p.unigrams[u], p.unigrams[v]
	if cuv == 0 || cu == 0 || cv == 0 || p.totalBigrams == 0 || p.totalUnigrams == 0 {
		return math.NaN()
	}
	puv := float64(cuv) / float64(p.totalBigrams)
	pu := float64(cu) / float64(p.totalUnigrams)
	pv := float64(cv) / float64(p.totalUnigrams)
	return math.Log(puv / (pu * pv))
}

// DistinctBigrams returns the number of distinct pairs observed.
func (p *PMITracker) DistinctBigrams() int { return len(p.bigrams) }

// DistinctUnigrams returns the number of distinct tokens observed.
func (p *PMITracker) DistinctUnigrams() int { return len(p.unigrams) }
