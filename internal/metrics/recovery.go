// Package metrics implements the evaluation measures used throughout the
// paper: the relative ℓ2 recovery error of Section 7.2, recall of
// threshold-exceeding items (Section 8.2), Pearson correlation (Figure 9),
// exact relative-risk computation (Section 8.1), exact PMI from counts
// (Section 8.3) and online classification error tracking (Section 7.3).
package metrics

import (
	"math"
	"sort"

	"wmsketch/internal/stream"
)

// RelErr computes the paper's relative ℓ2 error metric for top-K recovery:
//
//	RelErr(wK, w*) = ‖wK − w*‖₂ / ‖wK* − w*‖₂
//
// where wK is the K-sparse vector of the method's estimated top-K weights,
// w* is the reference (uncompressed) weight vector, and wK* is the K-sparse
// vector of the true top-K entries of w*. The metric is bounded below by 1;
// 1 means the method's top-K exactly matches the true top-K in both
// identity and value.
//
// estimated holds the method's top-K (index, estimated weight) pairs; truth
// holds the full reference weight vector.
func RelErr(estimated []stream.Weighted, truth map[uint32]float64) float64 {
	// Deduplicate on index first: K is the number of distinct estimated
	// coordinates, and only the first estimate per coordinate counts.
	distinct := make([]stream.Weighted, 0, len(estimated))
	dedup := make(map[uint32]bool, len(estimated))
	for _, e := range estimated {
		if dedup[e.Index] {
			continue
		}
		dedup[e.Index] = true
		distinct = append(distinct, e)
	}
	estimated = distinct
	k := len(estimated)
	if k == 0 {
		return math.Inf(1)
	}
	// ‖w*‖² and the true top-K by magnitude. Iterate in sorted key order:
	// float accumulation is order-sensitive, and map order is randomized,
	// so summing in map order would make the metric differ in the last bits
	// from run to run.
	keys := make([]uint32, 0, len(truth))
	for i := range truth {
		keys = append(keys, i)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	norm2 := 0.0
	mags := make([]float64, 0, len(truth))
	for _, i := range keys {
		w := truth[i]
		norm2 += w * w
		mags = append(mags, w*w)
	}
	// Denominator: ‖wK* − w*‖² = ‖w*‖² − Σ_{top-K} w*².
	topSum := sumLargest(mags, k)
	den2 := norm2 - topSum
	// Numerator: ‖wK − w*‖² = Σ_{i∈est}[(wKᵢ − w*ᵢ)² − w*ᵢ²] + ‖w*‖².
	num2 := norm2
	for _, e := range estimated {
		wt := truth[e.Index]
		d := e.Weight - wt
		num2 += d*d - wt*wt
	}
	if num2 < 0 {
		num2 = 0 // guard tiny negative rounding
	}
	if den2 <= 0 {
		// Fewer than K nonzero true weights: perfect recovery denominator is
		// zero. Report the ratio against a tiny epsilon to stay finite when
		// the numerator is also ~0.
		if num2 < 1e-18 {
			return 1
		}
		return math.Inf(1)
	}
	return math.Sqrt(num2 / den2)
}

// sumLargest returns the sum of the k largest values in xs (xs holds
// squared magnitudes, all non-negative). xs is reordered.
func sumLargest(xs []float64, k int) float64 {
	if k >= len(xs) {
		total := 0.0
		for _, v := range xs {
			total += v
		}
		return total
	}
	// Quickselect partition to find the k largest.
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partitionDesc(xs, lo, hi)
		switch {
		case p == k-1:
			lo = hi // done
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	total := 0.0
	for i := 0; i < k; i++ {
		total += xs[i]
	}
	return total
}

// partitionDesc partitions xs[lo..hi] descending around a pivot and returns
// the pivot's final index.
func partitionDesc(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot for adversarial orders.
	if xs[mid] > xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] > xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] > xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi] = xs[hi], xs[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if xs[i] > pivot {
			xs[i], xs[store] = xs[store], xs[i]
			store++
		}
	}
	xs[store], xs[hi] = xs[hi], xs[store]
	return store
}

// Recall returns |retrieved ∩ relevant| / |relevant|; 1 when relevant is
// empty (vacuous truth).
func Recall(retrieved []uint32, relevant map[uint32]bool) float64 {
	if len(relevant) == 0 {
		return 1
	}
	hit := 0
	seen := make(map[uint32]bool, len(retrieved))
	for _, r := range retrieved {
		if seen[r] {
			continue
		}
		seen[r] = true
		if relevant[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}

// Pearson returns the sample Pearson correlation coefficient of (xs, ys).
// It panics on length mismatch and returns 0 for degenerate inputs.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("metrics: Pearson length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ErrorRate tracks the online classification error of Section 7.3: for each
// example, record whether the prediction made before the update was wrong.
type ErrorRate struct {
	mistakes int64
	total    int64
}

// Record notes one prediction outcome given the margin and true label.
// Zero margins count as mistakes (no confident prediction).
func (e *ErrorRate) Record(margin float64, y int) {
	e.total++
	if margin*float64(y) <= 0 {
		e.mistakes++
	}
}

// Rate returns mistakes/total, 0 before any example.
func (e *ErrorRate) Rate() float64 {
	if e.total == 0 {
		return 0
	}
	return float64(e.mistakes) / float64(e.total)
}

// Count returns the number of recorded examples.
func (e *ErrorRate) Count() int64 { return e.total }

// Mistakes returns the cumulative number of errors.
func (e *ErrorRate) Mistakes() int64 { return e.mistakes }
