package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wmsketch/internal/stream"
)

func TestRelErrPerfectRecoveryIsOne(t *testing.T) {
	truth := map[uint32]float64{1: 5, 2: -4, 3: 3, 4: -2, 5: 1}
	est := []stream.Weighted{{Index: 1, Weight: 5}, {Index: 2, Weight: -4}, {Index: 3, Weight: 3}}
	if got := RelErr(est, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RelErr = %g, want 1 for exact top-3", got)
	}
}

func TestRelErrBoundedBelowByOne(t *testing.T) {
	// Any estimate is at least as far from w* as the true top-K.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		truth := map[uint32]float64{}
		for i := uint32(0); i < 50; i++ {
			truth[i] = rng.NormFloat64() * 10
		}
		k := 1 + rng.Intn(20)
		est := make([]stream.Weighted, k)
		for i := range est {
			est[i] = stream.Weighted{Index: uint32(rng.Intn(60)), Weight: rng.NormFloat64() * 10}
		}
		// Dedup indices (RelErr ignores duplicates, but keep the test clean).
		if got := RelErr(est, truth); got < 1-1e-9 {
			t.Fatalf("trial %d: RelErr = %g < 1", trial, got)
		}
	}
}

func TestRelErrMatchesDirectComputation(t *testing.T) {
	// Cross-check the incremental formula against a dense reference.
	rng := rand.New(rand.NewSource(2))
	const d = 100
	truth := map[uint32]float64{}
	for i := uint32(0); i < d; i++ {
		truth[i] = rng.NormFloat64()
	}
	const k = 10
	est := make([]stream.Weighted, k)
	for i := range est {
		est[i] = stream.Weighted{Index: uint32(i * 7 % d), Weight: rng.NormFloat64()}
	}
	// Dense numerator: build wK and subtract.
	wk := map[uint32]float64{}
	for _, e := range est {
		wk[e.Index] = e.Weight
	}
	num := 0.0
	for i := uint32(0); i < d; i++ {
		dv := wk[i] - truth[i]
		num += dv * dv
	}
	// Dense denominator: true top-k.
	type kv struct {
		i uint32
		w float64
	}
	all := make([]kv, 0, d)
	for i, w := range truth {
		all = append(all, kv{i, w})
	}
	sort.Slice(all, func(a, b int) bool {
		return math.Abs(all[a].w) > math.Abs(all[b].w)
	})
	den := 0.0
	topSet := map[uint32]bool{}
	for _, e := range all[:k] {
		topSet[e.i] = true
	}
	for i, w := range truth {
		if !topSet[i] {
			den += w * w
		}
	}
	want := math.Sqrt(num / den)
	got := RelErr(est, truth)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("RelErr = %g, dense reference %g", got, want)
	}
	// Duplicate indices in the estimate must not change the result (the
	// second occurrence is ignored).
	dup := append(append([]stream.Weighted{}, est...), est[0])
	if got2 := RelErr(dup, truth); math.Abs(got2-got) > 1e-9 {
		t.Fatalf("duplicate handling changed RelErr: %g vs %g", got2, got)
	}
}

func TestRelErrWorseEstimatesScoreHigher(t *testing.T) {
	truth := map[uint32]float64{1: 10, 2: 8, 3: 6, 4: 1, 5: 0.5}
	good := []stream.Weighted{{Index: 1, Weight: 10}, {Index: 2, Weight: 8}}
	offValue := []stream.Weighted{{Index: 1, Weight: 7}, {Index: 2, Weight: 8}}
	wrongID := []stream.Weighted{{Index: 4, Weight: 10}, {Index: 5, Weight: 8}}
	g, o, w := RelErr(good, truth), RelErr(offValue, truth), RelErr(wrongID, truth)
	if !(g <= o && o < w) {
		t.Fatalf("ordering violated: good=%g offValue=%g wrongID=%g", g, o, w)
	}
}

func TestRelErrEdgeCases(t *testing.T) {
	if got := RelErr(nil, map[uint32]float64{1: 1}); !math.IsInf(got, 1) {
		t.Fatalf("empty estimate: %g, want +Inf", got)
	}
	// K ≥ number of nonzero weights with perfect estimates → 1.
	truth := map[uint32]float64{1: 2, 2: 3}
	est := []stream.Weighted{{Index: 1, Weight: 2}, {Index: 2, Weight: 3}, {Index: 9, Weight: 0}}
	if got := RelErr(est, truth); got != 1 {
		t.Fatalf("over-complete exact recovery: %g, want 1", got)
	}
	// K ≥ nonzero truth with an error → +Inf (denominator zero).
	bad := []stream.Weighted{{Index: 1, Weight: 5}, {Index: 2, Weight: 3}, {Index: 9, Weight: 0}}
	if got := RelErr(bad, truth); !math.IsInf(got, 1) {
		t.Fatalf("imperfect over-complete recovery: %g, want +Inf", got)
	}
}

func TestSumLargest(t *testing.T) {
	xs := []float64{4, 1, 9, 16, 25}
	if got := sumLargest(append([]float64{}, xs...), 2); got != 41 {
		t.Fatalf("sumLargest(2) = %g, want 41", got)
	}
	if got := sumLargest(append([]float64{}, xs...), 5); got != 55 {
		t.Fatalf("sumLargest(all) = %g, want 55", got)
	}
	if got := sumLargest(append([]float64{}, xs...), 50); got != 55 {
		t.Fatalf("sumLargest(k>n) = %g, want 55", got)
	}
}

func TestSumLargestQuick(t *testing.T) {
	f := func(raw []float64, k8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Skip values whose sums could overflow — both the quickselect
			// and the reference would produce ±Inf and compare as NaN.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				continue
			}
			xs = append(xs, math.Abs(v))
		}
		if len(xs) == 0 {
			return true
		}
		k := int(k8)%len(xs) + 1
		got := sumLargest(append([]float64{}, xs...), k)
		sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
		want := 0.0
		for i := 0; i < k; i++ {
			want += xs[i]
		}
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecall(t *testing.T) {
	relevant := map[uint32]bool{1: true, 2: true, 3: true, 4: true}
	if got := Recall([]uint32{1, 2, 99}, relevant); got != 0.5 {
		t.Fatalf("Recall = %g, want 0.5", got)
	}
	if got := Recall([]uint32{1, 1, 1}, relevant); got != 0.25 {
		t.Fatalf("duplicate retrieval Recall = %g, want 0.25", got)
	}
	if got := Recall(nil, relevant); got != 0 {
		t.Fatalf("empty retrieval Recall = %g, want 0", got)
	}
	if got := Recall([]uint32{5}, map[uint32]bool{}); got != 1 {
		t.Fatalf("vacuous Recall = %g, want 1", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect positive: %g", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect negative: %g", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(xs, flat); got != 0 {
		t.Fatalf("degenerate: %g, want 0", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Fatalf("empty: %g", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on length mismatch")
			}
		}()
		Pearson([]float64{1}, []float64{1, 2})
	}()
}

func TestPearsonRangeQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw[:2*n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrorRate(t *testing.T) {
	var e ErrorRate
	if e.Rate() != 0 {
		t.Fatal("empty rate should be 0")
	}
	e.Record(1.5, 1)   // correct
	e.Record(-0.5, -1) // correct
	e.Record(0.5, -1)  // wrong
	e.Record(0, 1)     // zero margin counts as mistake
	if e.Count() != 4 || e.Mistakes() != 2 {
		t.Fatalf("count=%d mistakes=%d", e.Count(), e.Mistakes())
	}
	if got := e.Rate(); got != 0.5 {
		t.Fatalf("Rate = %g, want 0.5", got)
	}
}
