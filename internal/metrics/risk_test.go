package metrics

import (
	"math"
	"testing"
)

func TestRelativeRiskBasic(t *testing.T) {
	r := NewRiskTracker()
	// Feature 1: 30 positive, 10 negative. Others: 10 positive, 50 negative.
	for i := 0; i < 30; i++ {
		r.Observe(1, 1)
	}
	for i := 0; i < 10; i++ {
		r.Observe(1, -1)
	}
	for i := 0; i < 10; i++ {
		r.Observe(2, 1)
	}
	for i := 0; i < 50; i++ {
		r.Observe(2, -1)
	}
	// p(y=1|x1=1) = 30/40 = 0.75; p(y=1|x1=0) = 10/60 ≈ 0.1667.
	want := 0.75 / (10.0 / 60.0)
	if got := r.RelativeRisk(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RelativeRisk(1) = %g, want %g", got, want)
	}
	// Feature 2 should have risk < 1 (anti-correlated with outliers).
	if got := r.RelativeRisk(2); got >= 1 {
		t.Fatalf("RelativeRisk(2) = %g, want < 1", got)
	}
}

func TestRelativeRiskEdgeCases(t *testing.T) {
	r := NewRiskTracker()
	if got := r.RelativeRisk(9); !math.IsNaN(got) {
		t.Fatalf("unobserved feature risk = %g, want NaN", got)
	}
	// Feature only ever appears with positives, and nothing else observed:
	// unexposed group empty → NaN.
	r.Observe(1, 1)
	if got := r.RelativeRisk(1); !math.IsNaN(got) {
		t.Fatalf("degenerate risk = %g, want NaN", got)
	}
	// Now another feature appears only with negatives: p(y=1|x1=0)=0 → +Inf.
	r.Observe(2, -1)
	if got := r.RelativeRisk(1); !math.IsInf(got, 1) {
		t.Fatalf("risk = %g, want +Inf", got)
	}
}

func TestRiskCountsAndFeatures(t *testing.T) {
	r := NewRiskTracker()
	r.Observe(5, 1)
	r.Observe(5, 1)
	r.Observe(5, -1)
	r.Observe(7, -1)
	pos, neg := r.Count(5)
	if pos != 2 || neg != 1 {
		t.Fatalf("Count(5) = %d,%d", pos, neg)
	}
	if r.Total() != 4 {
		t.Fatalf("Total = %d", r.Total())
	}
	fs := r.Features()
	if len(fs) != 2 {
		t.Fatalf("Features = %v", fs)
	}
}

func TestLogOddsOrdering(t *testing.T) {
	r := NewRiskTracker()
	// Feature 1 strongly positive, feature 2 strongly negative, feature 3
	// balanced.
	for i := 0; i < 100; i++ {
		r.Observe(1, 1)
		r.Observe(2, -1)
		r.Observe(3, 1)
		r.Observe(3, -1)
	}
	lo1, lo2, lo3 := r.LogOdds(1), r.LogOdds(2), r.LogOdds(3)
	if !(lo1 > lo3 && lo3 > lo2) {
		t.Fatalf("log-odds ordering violated: %g, %g, %g", lo1, lo3, lo2)
	}
	if math.Abs(lo3) > 0.2 {
		t.Fatalf("balanced feature log-odds %g, want ≈0", lo3)
	}
	// Smoothing keeps everything finite.
	if math.IsInf(lo1, 0) || math.IsInf(lo2, 0) {
		t.Fatal("smoothed log-odds must be finite")
	}
}

func TestLogOddsCorrelatesWithRisk(t *testing.T) {
	// Over a spread of features with varying positive rates, log-odds and
	// relative risk must be strongly positively correlated — the basis of
	// Figure 9.
	r := NewRiskTracker()
	for f := uint32(0); f < 20; f++ {
		posCount := int(f + 1)
		negCount := 21 - int(f)
		for i := 0; i < posCount*10; i++ {
			r.Observe(f, 1)
		}
		for i := 0; i < negCount*10; i++ {
			r.Observe(f, -1)
		}
	}
	var lo, rr []float64
	for f := uint32(0); f < 20; f++ {
		risk := r.RelativeRisk(f)
		if math.IsNaN(risk) || math.IsInf(risk, 0) {
			continue
		}
		lo = append(lo, r.LogOdds(f))
		rr = append(rr, risk)
	}
	if got := Pearson(lo, rr); got < 0.8 {
		t.Fatalf("Pearson(logodds, risk) = %g, want > 0.8", got)
	}
}
