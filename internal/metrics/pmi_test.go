package metrics

import (
	"math"
	"testing"
)

func TestPMIIndependentPairsNearZero(t *testing.T) {
	p := NewPMITracker()
	// Two tokens each appearing half the time, pairs in exact proportion to
	// the product distribution → PMI = 0.
	for i := 0; i < 100; i++ {
		p.ObserveUnigram(1)
		p.ObserveUnigram(2)
	}
	// p(1)=p(2)=0.5; independent bigrams: (1,1) 25, (1,2) 25, (2,1) 25, (2,2) 25.
	for i := 0; i < 25; i++ {
		p.ObserveBigram(1, 1)
		p.ObserveBigram(1, 2)
		p.ObserveBigram(2, 1)
		p.ObserveBigram(2, 2)
	}
	for _, pair := range [][2]uint32{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		if got := p.PMI(pair[0], pair[1]); math.Abs(got) > 1e-12 {
			t.Fatalf("PMI(%d,%d) = %g, want 0", pair[0], pair[1], got)
		}
	}
}

func TestPMICorrelatedPairsPositive(t *testing.T) {
	p := NewPMITracker()
	// Tokens 1 and 2 rare but always together: strongly positive PMI.
	for i := 0; i < 5; i++ {
		p.ObserveUnigram(1)
		p.ObserveUnigram(2)
	}
	for i := 0; i < 90; i++ {
		p.ObserveUnigram(3)
	}
	for i := 0; i < 5; i++ {
		p.ObserveBigram(1, 2)
	}
	for i := 0; i < 95; i++ {
		p.ObserveBigram(3, 3)
	}
	pmi := p.PMI(1, 2)
	// p(1,2)=0.05, p(1)=p(2)=0.05 → PMI = log(0.05/0.0025) = log 20.
	if math.Abs(pmi-math.Log(20)) > 1e-12 {
		t.Fatalf("PMI = %g, want log 20 = %g", pmi, math.Log(20))
	}
}

func TestPMINegativeForAvoidantPairs(t *testing.T) {
	p := NewPMITracker()
	for i := 0; i < 50; i++ {
		p.ObserveUnigram(1)
		p.ObserveUnigram(2)
	}
	// They co-occur far less than independence predicts.
	p.ObserveBigram(1, 2)
	for i := 0; i < 99; i++ {
		p.ObserveBigram(1, 1)
	}
	if got := p.PMI(1, 2); got >= 0 {
		t.Fatalf("avoidant pair PMI = %g, want negative", got)
	}
}

func TestPMIUnobservedNaN(t *testing.T) {
	p := NewPMITracker()
	p.ObserveUnigram(1)
	if got := p.PMI(1, 2); !math.IsNaN(got) {
		t.Fatalf("PMI with missing counts = %g, want NaN", got)
	}
}

func TestPMITrackerCounts(t *testing.T) {
	p := NewPMITracker()
	p.ObserveUnigram(7)
	p.ObserveUnigram(7)
	p.ObserveBigram(7, 8)
	if p.UnigramCount(7) != 2 || p.BigramCount(7, 8) != 1 {
		t.Fatal("counts wrong")
	}
	if p.DistinctUnigrams() != 1 || p.DistinctBigrams() != 1 {
		t.Fatal("distinct counts wrong")
	}
	if got := p.BigramFrequency(7, 8); got != 1 {
		t.Fatalf("BigramFrequency = %g", got)
	}
	// Order sensitivity.
	if p.BigramCount(8, 7) != 0 {
		t.Fatal("bigram counts must be order-sensitive")
	}
}
