package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkInvariant verifies the min-heap property and index consistency.
func checkInvariant(t *testing.T, h *Heap) {
	t.Helper()
	for i := 1; i < len(h.entries); i++ {
		parent := (i - 1) / 2
		if h.entries[parent].Score > h.entries[i].Score {
			t.Fatalf("heap violated at %d: parent score %g > child %g",
				i, h.entries[parent].Score, h.entries[i].Score)
		}
	}
	// Every entry must be findable through the open-addressed index, and its
	// recorded slot must point back at it.
	occupied := 0
	for _, s := range h.slots {
		if s.pos >= 0 {
			occupied++
			if int(s.pos) >= len(h.entries) || h.entries[s.pos].Key != s.key {
				t.Fatalf("index slot stale for key %d (pos %d)", s.key, s.pos)
			}
		}
	}
	if occupied != len(h.entries) {
		t.Fatalf("index has %d occupied slots, want %d", occupied, len(h.entries))
	}
	for i := range h.entries {
		e := h.entries[i]
		if h.slots[e.slot].key != e.Key || int(h.slots[e.slot].pos) != i {
			t.Fatalf("entry %d (key %d) has stale slot back-pointer", i, e.Key)
		}
		if s := h.findSlot(e.Key); s != e.slot {
			t.Fatalf("findSlot(%d) = %d, want %d (broken probe chain)", e.Key, s, e.slot)
		}
	}
}

func TestHeapInsertGetMin(t *testing.T) {
	h := New(8)
	h.InsertMagnitude(1, -5)
	h.InsertMagnitude(2, 3)
	h.InsertMagnitude(3, 10)
	checkInvariant(t, h)
	if w, ok := h.Get(1); !ok || w != -5 {
		t.Fatalf("Get(1) = %g,%v want -5,true", w, ok)
	}
	min, ok := h.Min()
	if !ok || min.Key != 2 {
		t.Fatalf("Min = %+v, want key 2 (|3| smallest)", min)
	}
	if h.Len() != 3 || h.Cap() != 8 || h.Full() {
		t.Fatal("Len/Cap/Full inconsistent")
	}
}

func TestHeapUpdateReorders(t *testing.T) {
	h := New(4)
	h.InsertMagnitude(1, 1)
	h.InsertMagnitude(2, 2)
	h.InsertMagnitude(3, 3)
	h.UpdateMagnitude(3, 0.5)
	checkInvariant(t, h)
	min, _ := h.Min()
	if min.Key != 3 {
		t.Fatalf("after update, min key = %d, want 3", min.Key)
	}
	h.UpdateMagnitude(3, -100)
	min, _ = h.Min()
	if min.Key != 1 {
		t.Fatalf("after second update, min key = %d, want 1", min.Key)
	}
}

func TestHeapRemove(t *testing.T) {
	h := New(8)
	for i := uint32(0); i < 8; i++ {
		h.InsertMagnitude(i, float64(i+1))
	}
	e, ok := h.Remove(4)
	if !ok || e.Key != 4 || e.Weight != 5 {
		t.Fatalf("Remove(4) = %+v,%v", e, ok)
	}
	checkInvariant(t, h)
	if h.Contains(4) {
		t.Fatal("key 4 still present after removal")
	}
	if _, ok := h.Remove(4); ok {
		t.Fatal("second removal should report absent")
	}
}

func TestHeapPopMinOrder(t *testing.T) {
	h := New(64)
	rng := rand.New(rand.NewSource(1))
	for i := uint32(0); i < 64; i++ {
		h.InsertMagnitude(i, rng.NormFloat64()*100)
	}
	prev := math.Inf(-1)
	for {
		e, ok := h.PopMin()
		if !ok {
			break
		}
		if e.Score < prev {
			t.Fatalf("PopMin out of order: %g after %g", e.Score, prev)
		}
		prev = e.Score
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeapTopKDescending(t *testing.T) {
	h := New(16)
	weights := []float64{5, -9, 1, 7, -2, 8, -8.5, 0.5}
	for i, w := range weights {
		h.InsertMagnitude(uint32(i), w)
	}
	got := h.TopK(3)
	if len(got) != 3 {
		t.Fatalf("TopK returned %d entries", len(got))
	}
	wantKeys := []uint32{1, 6, 5} // |-9|, |-8.5|, |8|
	for i, e := range got {
		if e.Key != wantKeys[i] {
			t.Fatalf("TopK[%d].Key = %d, want %d", i, e.Key, wantKeys[i])
		}
	}
	// Requesting more than stored returns all, sorted.
	all := h.TopK(100)
	if len(all) != len(weights) {
		t.Fatalf("TopK(100) returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Fatal("TopK not descending")
		}
	}
}

func TestHeapScaleWeights(t *testing.T) {
	h := New(4)
	h.InsertMagnitude(1, 4)
	h.InsertMagnitude(2, -8)
	h.ScaleWeights(0.5)
	checkInvariant(t, h)
	if w, _ := h.Get(1); w != 2 {
		t.Fatalf("Get(1) = %g after scale, want 2", w)
	}
	if w, _ := h.Get(2); w != -4 {
		t.Fatalf("Get(2) = %g after scale, want -4", w)
	}
	min, _ := h.Min()
	if min.Key != 1 {
		t.Fatal("scaling changed relative order")
	}
}

func TestHeapDuplicateInsertPanics(t *testing.T) {
	h := New(4)
	h.InsertMagnitude(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate insert")
		}
	}()
	h.InsertMagnitude(1, 2)
}

func TestHeapFullInsertPanics(t *testing.T) {
	h := New(2)
	h.InsertMagnitude(1, 1)
	h.InsertMagnitude(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on insert into full heap")
		}
	}()
	h.InsertMagnitude(3, 3)
}

func TestHeapUpdateAbsentPanics(t *testing.T) {
	h := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on update of absent key")
		}
	}()
	h.UpdateMagnitude(9, 1)
}

func TestHeapZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	New(0)
}

func TestHeapReset(t *testing.T) {
	h := New(4)
	h.InsertMagnitude(1, 1)
	h.InsertMagnitude(2, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(1) {
		t.Fatal("Reset did not clear heap")
	}
	h.InsertMagnitude(1, 5) // reusable after reset
	if w, _ := h.Get(1); w != 5 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestHeapMemoryBytes(t *testing.T) {
	h := New(128)
	if got := h.MemoryBytes(false); got != 1024 {
		t.Fatalf("MemoryBytes(false) = %d, want 1024", got)
	}
	if got := h.MemoryBytes(true); got != 1536 {
		t.Fatalf("MemoryBytes(true) = %d, want 1536", got)
	}
}

func TestHeapRandomOperationsInvariant(t *testing.T) {
	// Fuzz a long random op sequence against a reference map.
	h := New(64)
	ref := map[uint32]float64{}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 20000; step++ {
		key := uint32(rng.Intn(128))
		switch op := rng.Intn(4); {
		case op == 0 && !h.Contains(key) && !h.Full():
			w := rng.NormFloat64()
			h.InsertMagnitude(key, w)
			ref[key] = w
		case op == 1 && h.Contains(key):
			w := rng.NormFloat64()
			h.UpdateMagnitude(key, w)
			ref[key] = w
		case op == 2 && h.Contains(key):
			h.Remove(key)
			delete(ref, key)
		case op == 3 && h.Len() > 0:
			e, _ := h.PopMin()
			// Verify it really was the minimum |weight| in the reference.
			for k, w := range ref {
				if math.Abs(w) < e.Score-1e-12 {
					t.Fatalf("step %d: popped score %g but key %d has |w|=%g",
						step, e.Score, k, math.Abs(w))
				}
			}
			delete(ref, e.Key)
		}
	}
	checkInvariant(t, h)
	if len(ref) != h.Len() {
		t.Fatalf("reference size %d != heap size %d", len(ref), h.Len())
	}
	for k, w := range ref {
		if got, ok := h.Get(k); !ok || got != w {
			t.Fatalf("key %d: heap weight %g, want %g", k, got, w)
		}
	}
}

func TestHeapTopKMatchesSortQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		h := New(64)
		clean := make([]float64, 0, len(raw))
		for i, w := range raw {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			if h.Contains(uint32(i)) {
				continue
			}
			h.InsertMagnitude(uint32(i), w)
			clean = append(clean, math.Abs(w))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(clean)))
		got := h.TopK(len(clean))
		for i := range got {
			if got[i].Score != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapGetRefStableAcrossWeightUpdates(t *testing.T) {
	h := New(16)
	for i := uint32(0); i < 16; i++ {
		h.InsertMagnitude(i, float64(i+1))
	}
	r, ok := h.GetRef(7)
	if !ok {
		t.Fatal("GetRef missed a present key")
	}
	if w := h.WeightRef(r); w != 8 {
		t.Fatalf("WeightRef = %g, want 8", w)
	}
	// Weight updates (including ones that reorder the heap) keep refs valid.
	h.UpdateMagnitude(3, 100)
	h.UpdateMagnitude(12, 0.25)
	h.UpdateMagnitudeRef(r, -50)
	if w, _ := h.Get(7); w != -50 {
		t.Fatalf("Get(7) = %g after UpdateMagnitudeRef, want -50", w)
	}
	if w := h.WeightRef(r); w != -50 {
		t.Fatalf("WeightRef = %g after update, want -50", w)
	}
	checkInvariant(t, h)
	if _, ok := h.GetRef(99); ok {
		t.Fatal("GetRef found an absent key")
	}
}

func TestHeapKeys(t *testing.T) {
	h := New(8)
	want := map[uint32]bool{3: true, 9: true, 27: true}
	for k := range want {
		h.InsertMagnitude(k, float64(k))
	}
	keys := h.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys returned %d entries, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("Keys returned unexpected key %d", k)
		}
	}
}

// Benchmarks of the hottest heap operations: membership probes dominate the
// AWM-Sketch update path (one per feature per example).

func BenchmarkHeapGetHit(b *testing.B) {
	h := New(2048)
	for i := uint32(0); i < 2048; i++ {
		h.InsertMagnitude(i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		w, _ := h.Get(uint32(i & 2047))
		sink += w
	}
	_ = sink
}

func BenchmarkHeapGetMiss(b *testing.B) {
	h := New(2048)
	for i := uint32(0); i < 2048; i++ {
		h.InsertMagnitude(i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.Get(uint32(i&2047) + 100000); ok {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkHeapGetRefUpdate(b *testing.B) {
	h := New(2048)
	for i := uint32(0); i < 2048; i++ {
		h.InsertMagnitude(i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := h.GetRef(uint32(i & 2047))
		h.UpdateMagnitudeRef(r, h.WeightRef(r)+0.001)
	}
}

func BenchmarkHeapInsertPopCycle(b *testing.B) {
	h := New(1024)
	for i := uint32(0); i < 1024; i++ {
		h.InsertMagnitude(i, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := h.PopMin()
		h.InsertMagnitude(e.Key, e.Weight+1)
	}
}

func BenchmarkHeapUpdate(b *testing.B) {
	h := New(1024)
	for i := uint32(0); i < 1024; i++ {
		h.InsertMagnitude(i, float64(i))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.UpdateMagnitude(uint32(i%1024), rng.NormFloat64()*1000)
	}
}
