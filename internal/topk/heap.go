// Package topk provides an indexed min-heap used everywhere the paper keeps
// a fixed-capacity "active set" of heavy items: the AWM-Sketch heap
// (Algorithm 2), the passive WM-Sketch heap, the truncation baselines
// (Algorithms 3 and 4), and the top-K tracking of the unconstrained logistic
// regression baseline.
//
// Entries carry a 32-bit key, a model weight, and a score. The heap is a
// min-heap on score, so the root is always the eviction candidate. For
// magnitude-ordered heaps the score is |weight|; the probabilistic
// truncation baseline instead orders by reservoir weight.
package topk

import "sort"

// Entry is a heap element.
type Entry struct {
	Key    uint32
	Weight float64
	Score  float64
}

// Heap is a fixed-capacity indexed min-heap on Entry.Score. The zero value
// is not usable; construct with New.
type Heap struct {
	capacity int
	entries  []Entry
	pos      map[uint32]int // key -> index in entries
}

// New returns an empty heap with the given capacity. Capacity must be
// positive.
func New(capacity int) *Heap {
	if capacity <= 0 {
		panic("topk: capacity must be positive")
	}
	return &Heap{
		capacity: capacity,
		entries:  make([]Entry, 0, capacity),
		pos:      make(map[uint32]int, capacity),
	}
}

// Len returns the number of entries currently stored.
func (h *Heap) Len() int { return len(h.entries) }

// Cap returns the fixed capacity.
func (h *Heap) Cap() int { return h.capacity }

// Full reports whether the heap is at capacity.
func (h *Heap) Full() bool { return len(h.entries) == h.capacity }

// Contains reports whether key is stored.
func (h *Heap) Contains(key uint32) bool {
	_, ok := h.pos[key]
	return ok
}

// Get returns the weight stored for key.
func (h *Heap) Get(key uint32) (float64, bool) {
	i, ok := h.pos[key]
	if !ok {
		return 0, false
	}
	return h.entries[i].Weight, true
}

// Min returns the root entry (smallest score) without removing it.
// ok is false when the heap is empty.
func (h *Heap) Min() (Entry, bool) {
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	return h.entries[0], true
}

// Insert adds key with the given weight and score. It panics if key is
// already present or the heap is full; callers decide eviction policy.
func (h *Heap) Insert(key uint32, weight, score float64) {
	if _, ok := h.pos[key]; ok {
		panic("topk: duplicate insert")
	}
	if len(h.entries) == h.capacity {
		panic("topk: insert into full heap")
	}
	h.entries = append(h.entries, Entry{Key: key, Weight: weight, Score: score})
	i := len(h.entries) - 1
	h.pos[key] = i
	h.up(i)
}

// InsertMagnitude adds key with score = |weight|.
func (h *Heap) InsertMagnitude(key uint32, weight float64) {
	h.Insert(key, weight, abs(weight))
}

// Update replaces the weight and score for an existing key and restores heap
// order. It panics if key is absent.
func (h *Heap) Update(key uint32, weight, score float64) {
	i, ok := h.pos[key]
	if !ok {
		panic("topk: update of absent key")
	}
	h.entries[i].Weight = weight
	h.entries[i].Score = score
	h.fix(i)
}

// UpdateMagnitude replaces the weight for key with score = |weight|.
func (h *Heap) UpdateMagnitude(key uint32, weight float64) {
	h.Update(key, weight, abs(weight))
}

// Remove deletes key and returns its entry. ok is false when absent.
func (h *Heap) Remove(key uint32) (Entry, bool) {
	i, ok := h.pos[key]
	if !ok {
		return Entry{}, false
	}
	e := h.entries[i]
	h.removeAt(i)
	return e, true
}

// PopMin removes and returns the root entry. ok is false when empty.
func (h *Heap) PopMin() (Entry, bool) {
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	e := h.entries[0]
	h.removeAt(0)
	return e, true
}

// Entries returns a copy of the stored entries in unspecified order.
func (h *Heap) Entries() []Entry {
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	return out
}

// TopK returns up to k entries with the largest scores, in descending score
// order. For magnitude heaps this is the top-K heaviest weights.
func (h *Heap) TopK(k int) []Entry {
	out := h.Entries()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ScaleWeights multiplies every stored weight (and score, preserving the
// magnitude ordering) by c. Used for explicit ℓ2 decay of an active set.
func (h *Heap) ScaleWeights(c float64) {
	for i := range h.entries {
		h.entries[i].Weight *= c
		h.entries[i].Score *= abs(c)
	}
	// Scaling by a constant preserves heap order; no re-heapify needed.
}

// Reset removes all entries.
func (h *Heap) Reset() {
	h.entries = h.entries[:0]
	for k := range h.pos {
		delete(h.pos, k)
	}
}

// MemoryBytes returns the cost-model footprint: 4 bytes each for the key and
// the weight, plus 4 bytes per auxiliary score when aux is true (Section 7.1
// charges auxiliary values like reservoir keys separately).
func (h *Heap) MemoryBytes(aux bool) int {
	per := 8
	if aux {
		per = 12
	}
	return per * h.capacity
}

func (h *Heap) removeAt(i int) {
	last := len(h.entries) - 1
	delete(h.pos, h.entries[i].Key)
	if i != last {
		h.entries[i] = h.entries[last]
		h.pos[h.entries[i].Key] = i
	}
	h.entries = h.entries[:last]
	if i < len(h.entries) {
		h.fix(i)
	}
}

func (h *Heap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].Score <= h.entries[i].Score {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) down(i int) bool {
	moved := false
	n := len(h.entries)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.entries[right].Score < h.entries[left].Score {
			smallest = right
		}
		if h.entries[i].Score <= h.entries[smallest].Score {
			break
		}
		h.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}

func (h *Heap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].Key] = i
	h.pos[h.entries[j].Key] = j
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
