// Package topk provides an indexed min-heap used everywhere the paper keeps
// a fixed-capacity "active set" of heavy items: the AWM-Sketch heap
// (Algorithm 2), the passive WM-Sketch heap, the truncation baselines
// (Algorithms 3 and 4), and the top-K tracking of the unconstrained logistic
// regression baseline.
//
// Entries carry a 32-bit key, a model weight, and a score. The heap is a
// min-heap on score, so the root is always the eviction candidate. For
// magnitude-ordered heaps the score is |weight|; the probabilistic
// truncation baseline instead orders by reservoir weight.
//
// The key → heap-position index is an open-addressed hash table with linear
// probing rather than a Go map: Get/Contains/UpdateMagnitude are the hottest
// branch of every AWM-Sketch update (one membership probe per feature per
// example), and the flat table keeps them allocation-free with a single
// cache line touched in the common case.
package topk

import "sort"

// Entry is a heap element.
type Entry struct {
	Key    uint32
	Weight float64
	Score  float64
	// slot is the entry's position in the open-addressed index, maintained
	// so heap swaps can update the index in O(1) without re-probing.
	slot int32
}

// indexSlot is one cell of the open-addressed key → heap-position table.
// pos < 0 marks an empty cell; deletion backward-shifts, so no tombstones.
type indexSlot struct {
	key uint32
	pos int32
}

// Heap is a fixed-capacity indexed min-heap on Entry.Score. The zero value
// is not usable; construct with New.
type Heap struct {
	capacity int
	entries  []Entry
	slots    []indexSlot // open-addressed index, power-of-two length
	mask     uint32      // len(slots)-1, for probe wraparound
	shift    uint32      // 32-log2(len(slots)), for multiply-shift hashing
}

// New returns an empty heap with the given capacity. Capacity must be
// positive.
func New(capacity int) *Heap {
	if capacity <= 0 {
		panic("topk: capacity must be positive")
	}
	// Size the index at ≥4× capacity (load factor ≤ 0.25) so linear probe
	// chains stay near 1 even when the heap is full. Even at the paper's
	// largest active set (2048 entries) the table is 64 KB — small next to
	// the cache traffic of the sketch itself — and membership probes are the
	// single hottest operation of an AWM-Sketch update.
	size := 8
	for size < 4*capacity {
		size <<= 1
	}
	h := &Heap{
		capacity: capacity,
		entries:  make([]Entry, 0, capacity),
		slots:    make([]indexSlot, size),
		mask:     uint32(size - 1),
		shift:    32 - log2(uint32(size)),
	}
	for i := range h.slots {
		h.slots[i].pos = -1
	}
	return h
}

func log2(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// home returns the preferred index cell for key (Fibonacci multiply-shift:
// the high output bits of the multiply are well mixed, unlike key & mask).
func (h *Heap) home(key uint32) uint32 {
	return (key * 0x9E3779B9) >> h.shift
}

// findSlot returns the index cell holding key, or -1 when absent.
func (h *Heap) findSlot(key uint32) int32 {
	i := h.home(key)
	for {
		s := h.slots[i]
		if s.pos < 0 {
			return -1
		}
		if s.key == key {
			return int32(i)
		}
		i = (i + 1) & h.mask
	}
}

// indexInsert stores key → pos and returns the cell used. key must be absent.
func (h *Heap) indexInsert(key uint32, pos int32) int32 {
	i := h.home(key)
	for h.slots[i].pos >= 0 {
		i = (i + 1) & h.mask
	}
	h.slots[i] = indexSlot{key: key, pos: pos}
	return int32(i)
}

// indexDelete empties cell i and backward-shifts the probe chain so lookups
// never need tombstones.
func (h *Heap) indexDelete(i uint32) {
	mask := h.mask
	for {
		h.slots[i] = indexSlot{pos: -1}
		j := i
		for {
			j = (j + 1) & mask
			s := h.slots[j]
			if s.pos < 0 {
				return
			}
			// Move s back to the vacated cell iff its home precedes or equals
			// the vacancy on the cyclic probe path (i ∈ [home, j)).
			if (j-h.home(s.key))&mask >= (j-i)&mask {
				h.slots[i] = s
				h.entries[s.pos].slot = int32(i)
				i = j
				break
			}
		}
	}
}

// Len returns the number of entries currently stored.
func (h *Heap) Len() int { return len(h.entries) }

// Cap returns the fixed capacity.
func (h *Heap) Cap() int { return h.capacity }

// Full reports whether the heap is at capacity.
func (h *Heap) Full() bool { return len(h.entries) == h.capacity }

// Contains reports whether key is stored.
func (h *Heap) Contains(key uint32) bool {
	return h.findSlot(key) >= 0
}

// Get returns the weight stored for key.
func (h *Heap) Get(key uint32) (float64, bool) {
	s := h.findSlot(key)
	if s < 0 {
		return 0, false
	}
	return h.entries[h.slots[s].pos].Weight, true
}

// Ref is a stable reference to a stored entry: the entry's cell in the
// open-addressed index. A Ref obtained from GetRef stays valid until the
// next *structural* change to the heap — Insert, Remove, PopMin, or Reset —
// because deletions backward-shift index cells. Weight/score updates
// (Update, UpdateMagnitude, UpdateMagnitudeRef, ScaleWeights) never move
// cells and keep refs valid. The fused sketch update paths use refs to
// probe each feature once per example instead of once per access.
type Ref int32

// NoRef is the sentinel for "key absent".
const NoRef Ref = -1

// GetRef probes for key once, returning a stable reference usable with
// WeightRef/UpdateMagnitudeRef. ok is false when key is absent.
func (h *Heap) GetRef(key uint32) (Ref, bool) {
	s := h.findSlot(key)
	if s < 0 {
		return NoRef, false
	}
	return Ref(s), true
}

// WeightRef returns the current weight of the entry r refers to.
func (h *Heap) WeightRef(r Ref) float64 {
	return h.entries[h.slots[r].pos].Weight
}

// UpdateMagnitudeRef is UpdateMagnitude without the index probe: r must be a
// valid reference obtained since the heap's last structural change.
func (h *Heap) UpdateMagnitudeRef(r Ref, weight float64) {
	i := h.slots[r].pos
	h.entries[i].Weight = weight
	h.entries[i].Score = abs(weight)
	h.fix(int(i))
}

// Min returns the root entry (smallest score) without removing it.
// ok is false when the heap is empty.
func (h *Heap) Min() (Entry, bool) {
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	return h.entries[0], true
}

// Insert adds key with the given weight and score. It panics if key is
// already present or the heap is full; callers decide eviction policy.
func (h *Heap) Insert(key uint32, weight, score float64) {
	if h.findSlot(key) >= 0 {
		panic("topk: duplicate insert")
	}
	if len(h.entries) == h.capacity {
		panic("topk: insert into full heap")
	}
	i := int32(len(h.entries))
	slot := h.indexInsert(key, i)
	h.entries = append(h.entries, Entry{Key: key, Weight: weight, Score: score, slot: slot})
	h.up(int(i))
}

// InsertMagnitude adds key with score = |weight|.
func (h *Heap) InsertMagnitude(key uint32, weight float64) {
	h.Insert(key, weight, abs(weight))
}

// Update replaces the weight and score for an existing key and restores heap
// order. It panics if key is absent.
func (h *Heap) Update(key uint32, weight, score float64) {
	s := h.findSlot(key)
	if s < 0 {
		panic("topk: update of absent key")
	}
	i := h.slots[s].pos
	h.entries[i].Weight = weight
	h.entries[i].Score = score
	h.fix(int(i))
}

// UpdateMagnitude replaces the weight for key with score = |weight|.
func (h *Heap) UpdateMagnitude(key uint32, weight float64) {
	h.Update(key, weight, abs(weight))
}

// Remove deletes key and returns its entry. ok is false when absent.
func (h *Heap) Remove(key uint32) (Entry, bool) {
	s := h.findSlot(key)
	if s < 0 {
		return Entry{}, false
	}
	i := h.slots[s].pos
	e := h.entries[i]
	h.removeAt(int(i))
	return e, true
}

// PopMin removes and returns the root entry. ok is false when empty.
func (h *Heap) PopMin() (Entry, bool) {
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	e := h.entries[0]
	h.removeAt(0)
	return e, true
}

// Entries returns a copy of the stored entries in unspecified order.
func (h *Heap) Entries() []Entry {
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	return out
}

// Keys returns a copy of the stored keys in unspecified order.
func (h *Heap) Keys() []uint32 {
	out := make([]uint32, len(h.entries))
	for i := range h.entries {
		out[i] = h.entries[i].Key
	}
	return out
}

// TopK returns up to k entries with the largest scores, in descending score
// order. For magnitude heaps this is the top-K heaviest weights.
func (h *Heap) TopK(k int) []Entry {
	out := h.Entries()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ScaleWeights multiplies every stored weight (and score, preserving the
// magnitude ordering) by c. Used for explicit ℓ2 decay of an active set.
func (h *Heap) ScaleWeights(c float64) {
	for i := range h.entries {
		h.entries[i].Weight *= c
		h.entries[i].Score *= abs(c)
	}
	// Scaling by a constant preserves heap order; no re-heapify needed.
}

// Reset removes all entries.
func (h *Heap) Reset() {
	h.entries = h.entries[:0]
	for i := range h.slots {
		h.slots[i] = indexSlot{pos: -1}
	}
}

// MemoryBytes returns the cost-model footprint: 4 bytes each for the key and
// the weight, plus 4 bytes per auxiliary score when aux is true (Section 7.1
// charges auxiliary values like reservoir keys separately).
func (h *Heap) MemoryBytes(aux bool) int {
	per := 8
	if aux {
		per = 12
	}
	return per * h.capacity
}

func (h *Heap) removeAt(i int) {
	last := len(h.entries) - 1
	h.indexDelete(uint32(h.entries[i].slot))
	if i != last {
		h.entries[i] = h.entries[last]
		h.slots[h.entries[i].slot].pos = int32(i)
	}
	h.entries = h.entries[:last]
	if i < len(h.entries) {
		h.fix(i)
	}
}

func (h *Heap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].Score <= h.entries[i].Score {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) down(i int) bool {
	moved := false
	n := len(h.entries)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.entries[right].Score < h.entries[left].Score {
			smallest = right
		}
		if h.entries[i].Score <= h.entries[smallest].Score {
			break
		}
		h.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}

func (h *Heap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.slots[h.entries[i].slot].pos = int32(i)
	h.slots[h.entries[j].slot].pos = int32(j)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
