package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Exposition-format validation. wmserve -smoke scrapes its own /metrics
// through CheckText so a malformed line or a silently-vanished family
// fails CI instead of a production scrape. The grammar accepted here is
// the text exposition format 0.0.4 subset this package emits (plus
// summaries, so the checker stays honest against foreign registries).

// maxCheckLineBytes bounds one exposition line during validation.
const maxCheckLineBytes = 1 << 20

// CheckText validates a text-exposition stream and returns the set of
// family names it declares. It fails on: metric lines with unparseable
// values or malformed label blocks, samples that appear before their
// family's # TYPE line, and names outside the Prometheus grammar.
func CheckText(r io.Reader) (map[string]string, error) {
	families := make(map[string]string) // name -> type
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxCheckLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line, families); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

func checkComment(line string, families map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		// Free-form comments are legal exposition; only HELP/TYPE carry
		// structure worth checking.
		return nil
	}
	name := fields[2]
	if !validExpoName(name) {
		return fmt.Errorf("%s for invalid metric name %q", fields[1], name)
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("TYPE line for %q missing a type", name)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE line for %q declares unknown type %q", name, typ)
		}
		families[name] = typ
	}
	return nil
}

func checkSample(line string, families map[string]string) error {
	name, rest := splitName(line)
	if !validExpoName(name) {
		return fmt.Errorf("sample %q has an invalid metric name", line)
	}
	rest = strings.TrimLeft(rest, " \t")
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = consumeLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %q: %w", line, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want 'name[{labels}] value [timestamp]'", line)
	}
	if err := checkValue(fields[0]); err != nil {
		return fmt.Errorf("sample %q: %w", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	base := familyBase(name, families)
	if _, ok := families[base]; !ok {
		return fmt.Errorf("sample %q appears before any # TYPE for %q", line, base)
	}
	return nil
}

// familyBase strips the histogram/summary suffix when the prefix is a
// declared family, so name_bucket/_sum/_count samples attach to name.
func familyBase(name string, families map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := families[base]; declared {
				return base
			}
		}
	}
	return name
}

func splitName(line string) (name, rest string) {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '{' || c == ' ' || c == '\t' {
			return line[:i], line[i:]
		}
	}
	return line, ""
}

func validExpoName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// consumeLabels validates a {k="v",...} block and returns what follows it.
func consumeLabels(s string) (rest string, err error) {
	s = s[1:] // past '{'
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return "", fmt.Errorf("label block missing '='")
		}
		key := strings.TrimSpace(s[:eq])
		if !validExpoName(key) || strings.Contains(key, ":") {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if !strings.HasPrefix(s, `"`) {
			return "", fmt.Errorf("label %q value is not quoted", key)
		}
		s = s[1:]
		for {
			i := strings.IndexAny(s, `"\`)
			if i < 0 {
				return "", fmt.Errorf("label %q value is unterminated", key)
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return "", fmt.Errorf("label %q value has a dangling escape", key)
				}
				s = s[i+2:]
				continue
			}
			s = s[i+1:]
			break
		}
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		return "", fmt.Errorf("label block expects ',' or '}' after a value")
	}
}

// checkValue accepts the exposition value grammar: Go float syntax plus
// +Inf/-Inf/NaN.
func checkValue(s string) error {
	switch s {
	case "+Inf", "-Inf", "NaN", "Nan", "nan", "inf", "+inf", "-inf":
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", s)
	}
	_ = math.Signbit(v)
	return nil
}
