package obs

import (
	"io"
	"testing"
)

// The hot-path contract: incrementing a pre-registered counter and
// observing into a pre-registered histogram allocate nothing. The serving
// and gossip layers lean on this — instruments sit inside per-request and
// per-round code whose benchmarks gate PRs.

func BenchmarkObserveCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_events_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if testing.AllocsPerRun(1000, func() { c.Add(2) }) != 0 {
		b.Fatalf("counter Add allocates")
	}
}

func BenchmarkObserveHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench_lat_seconds", "", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
	if testing.AllocsPerRun(1000, func() { h.Observe(0.1) }) != 0 {
		b.Fatalf("histogram Observe allocates")
	}
}

func BenchmarkObserveGauge(b *testing.B) {
	g := NewRegistry().Gauge("bench_level", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Inc()
		g.Dec()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_frames_total", "", "dir", "kind")
	for _, d := range []string{"in", "out"} {
		for _, k := range []string{"digest", "full", "delta"} {
			v.With(d, k).Add(1234)
		}
	}
	h := r.HistogramVec("bench_rtt_seconds", "", LatencyBuckets, "route")
	h.With("/v1/update").Observe(0.001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.WritePrometheus(io.Discard)
	}
}
