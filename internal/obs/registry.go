package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families are registered once (typically at
// construction of the component they instrument); registration is
// idempotent for an identical (name, kind, labels) signature and panics on
// a conflicting one — a name collision between two different instruments
// is a programmer error that must not survive to production scrapes.
//
// Exposition output is deterministic: families sort by name, children by
// label values, so golden tests and diff-based dashboards are stable.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labeled instrument inside a family. Exactly one of the
// instrument fields is set, matching the family kind.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *Histogram
}

type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child // guarded by mu; key = joined label values
}

// metricNameRe is the registration-time name gate, deliberately stricter
// than the Prometheus grammar: lower snake_case only, so the catalog in
// OBSERVABILITY.md stays greppable and consistent. wmlint's metricnames
// analyzer enforces the same shape statically at call sites.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// labelNameRe is the label-key gate.
var labelNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func (r *Registry) family(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q is not lower snake_case", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: label name %q on %q is not lower snake_case", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	if kind == kindHistogram {
		// Validate once via the standalone constructor; keep the validated copy.
		f.buckets = NewHistogram(buckets).upper
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childKey joins label values with a separator that cannot appear in a
// well-formed label value boundary ambiguity (0x00 is not printable and
// values are operator-chosen constants, not request data).
func childKey(values []string) string { return strings.Join(values, "\x00") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = NewHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Counter registers (or returns) an unlabeled counter. Counter names end
// in _total by convention, enforced by wmlint's metricnames analyzer.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil).counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil).gauge
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
// fn runs while the registry renders, so it must not scrape the registry
// itself and should return quickly.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	c := f.child(nil)
	f.mu.Lock()
	c.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram over the given
// bucket upper bounds (see LatencyBuckets and friends).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, buckets, nil).child(nil).hist
}

// CounterVec is a counter family with labels; With interns one child per
// label-value tuple.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// With returns the child counter for the given label values, creating it
// on first use. Call at registration time and keep the handle: With itself
// takes the family lock and allocates on first use — it is not the hot
// path, the returned *Counter is.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, buckets, labels)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).hist }

// Value looks one instrument's current value up by name and label values:
// counters and gauges return their value, histograms their observation
// count. The second result reports whether the instrument exists. This is
// the assertion surface the cluster simulator uses to cross-check wire
// metrics against its journal.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	c := f.children[childKey(labelValues)]
	f.mu.Unlock()
	if c == nil {
		return 0, false
	}
	switch {
	case c.counter != nil:
		return float64(c.counter.Value()), true
	case c.gaugeFn != nil:
		return c.gaugeFn(), true
	case c.gauge != nil:
		return float64(c.gauge.Value()), true
	case c.hist != nil:
		return float64(c.hist.Count()), true
	}
	return 0, false
}

// ---- exposition ----

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k="v",...}; extra is an optional trailing label
// (the histogram "le") appended after the family labels.
func writeLabels(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus renders every family in text exposition format (0.0.4).
// Output is sorted and therefore stable for identical registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, len(keys))
	for i, k := range keys {
		kids[i] = f.children[k]
	}
	f.mu.Unlock()
	if len(kids) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range kids {
		switch f.kind {
		case kindCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, c.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(c.counter.Value(), 10))
			b.WriteByte('\n')
		case kindGauge:
			v := float64(c.gauge.Value())
			if c.gaugeFn != nil {
				v = c.gaugeFn()
			}
			b.WriteString(f.name)
			writeLabels(b, f.labels, c.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
		case kindHistogram:
			f.renderHistogram(b, c)
		}
	}
}

func (f *family) renderHistogram(b *strings.Builder, c *child) {
	h := c.hist
	var cum int64
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, c.labelValues, "le", formatFloat(bound))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.upper)].Load()
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabels(b, f.labels, c.labelValues, "le", "+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, c.labelValues, "", "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, c.labelValues, "", "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(h.Count(), 10))
	b.WriteByte('\n')
}
