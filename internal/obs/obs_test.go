package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration of the identical family returns the same instrument.
	if again := r.Counter("events_total", "events"); again != c {
		t.Fatalf("re-registration returned a distinct counter")
	}

	g := r.Gauge("pool_size", "pool")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual_total", "second")
}

func TestRegistryBadNamePanics(t *testing.T) {
	for _, bad := range []string{"CamelCase", "has-dash", "_leading", "trailing_", "double__under", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must be rejected", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.5+1.5+1.5+3+3+3+6+20; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// The median lands in the (2,4] bucket; interpolation stays inside it.
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %g, want in (2,4]", q)
	}
	// The max lands in +Inf, which clamps to the top finite bound.
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %g, want clamp to 8", q)
	}
	if q := NewHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	// NaN observations are dropped, keeping sum and quantiles finite.
	h.Observe(math.NaN())
	if h.Count() != 8 || math.IsNaN(h.Sum()) {
		t.Fatalf("NaN observation must be dropped")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q < 0.0025 || q > 0.005 {
		t.Fatalf("3ms landed at %gs, want inside (2.5ms, 5ms]", q)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestRegistryValueLookup(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("frames_total", "frames", "dir", "kind")
	v.With("in", "full").Add(3)
	got, ok := r.Value("frames_total", "in", "full")
	if !ok || got != 3 {
		t.Fatalf("Value = %g, %v; want 3, true", got, ok)
	}
	if _, ok := r.Value("frames_total", "out", "full"); ok {
		t.Fatalf("unregistered child must not resolve")
	}
	if _, ok := r.Value("absent_total"); ok {
		t.Fatalf("unregistered family must not resolve")
	}
	r.GaugeFunc("temperature_celsius", "fn gauge", func() float64 { return 21.5 })
	if got, ok := r.Value("temperature_celsius"); !ok || got != 21.5 {
		t.Fatalf("gauge func Value = %g, %v", got, ok)
	}
}

// TestExpositionGolden pins the exposition byte-for-byte: families sorted
// by name, children by label values, histogram buckets cumulative with
// _sum/_count trailing. maporder-clean output is part of the contract —
// a reordered scrape would break golden-based dashboards diffs.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	req := r.CounterVec("http_requests_total", "requests by route and class", "route", "code")
	req.With("POST /v1/update", "2xx").Add(10)
	req.With("POST /v1/update", "4xx").Add(2)
	req.With("GET /v1/stats", "2xx").Add(1)
	r.Gauge("in_flight_requests", "current in-flight").Set(3)
	h := r.Histogram("request_duration_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(5)
	r.Counter("zz_last_total", `help with "quotes" and \ backslash`).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP http_requests_total requests by route and class
# TYPE http_requests_total counter
http_requests_total{route="GET /v1/stats",code="2xx"} 1
http_requests_total{route="POST /v1/update",code="2xx"} 10
http_requests_total{route="POST /v1/update",code="4xx"} 2
# HELP in_flight_requests current in-flight
# TYPE in_flight_requests gauge
in_flight_requests 3
# HELP request_duration_seconds latency
# TYPE request_duration_seconds histogram
request_duration_seconds_bucket{le="0.001"} 1
request_duration_seconds_bucket{le="0.01"} 1
request_duration_seconds_bucket{le="0.1"} 2
request_duration_seconds_bucket{le="+Inf"} 3
request_duration_seconds_sum 5.0205
request_duration_seconds_count 3
# HELP zz_last_total help with "quotes" and \\ backslash
# TYPE zz_last_total counter
zz_last_total 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// A second render of unchanged state must be byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Fatalf("exposition is not deterministic")
	}
	// And the emitted text must satisfy our own scrape validator.
	fams, err := CheckText(strings.NewReader(got))
	if err != nil {
		t.Fatalf("CheckText rejected our own output: %v", err)
	}
	for _, name := range []string{"http_requests_total", "in_flight_requests", "request_duration_seconds", "zz_last_total"} {
		if _, ok := fams[name]; !ok {
			t.Fatalf("CheckText lost family %q (have %v)", name, fams)
		}
	}
}

func TestCheckTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"no_type_first 1\n",
		"# TYPE x counter\nx{unclosed=\"v 1\n",
		"# TYPE x counter\nx banana\n",
		"# TYPE x notatype\n",
		"# TYPE x counter\nx{k=\"v\"} 1 notatimestamp\n",
		"# TYPE 9bad counter\n",
	}
	for _, c := range cases {
		if _, err := CheckText(strings.NewReader(c)); err == nil {
			t.Errorf("CheckText accepted malformed input %q", c)
		}
	}
	// Foreign-but-valid exposition (summary, timestamps, free comments).
	ok := "# random comment\n# HELP s a summary\n# TYPE s summary\ns_sum 1.5\ns_count 2\ns{quantile=\"0.5\"} 0.7 1700000000000\n"
	if _, err := CheckText(strings.NewReader(ok)); err != nil {
		t.Errorf("CheckText rejected valid input: %v", err)
	}
}

// TestConcurrentObserve hammers one counter, one gauge, one histogram, and
// the scraper from many goroutines; `go test -race ./internal/obs` is the
// real assertion, the count check just keeps the compiler honest.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spins_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat_seconds", "", LatencyBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				if i%256 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
					_, _ = r.Value("spins_total")
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), 0.0; got <= want {
		t.Fatalf("histogram sum = %g, want > 0", got)
	}
}
