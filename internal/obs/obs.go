// Package obs is the repository's stdlib-only metrics layer: atomic
// counters and gauges, fixed-bucket histograms, and a process-wide Registry
// with labeled families and Prometheus-text exposition (OBSERVABILITY.md).
//
// The package is built for the serving hot path. Instruments are handles
// obtained once at registration time; every observation afterwards is a
// handful of atomic operations with zero heap allocations (BenchmarkObserve
// pins this), so counters can sit inside the per-request and per-gossip-
// round code without moving the benchmarks. Label lookup, map access, and
// string work all happen at registration, never at observation.
//
// Cardinality is deliberately bounded: label values are pre-registered
// (route patterns, frame kinds, status classes), not derived from request
// data, so a hostile client cannot grow the registry.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer instrument. The zero value
// is NOT usable — obtain counters from a Registry (or a Vec) so they are
// exposed; all methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is ignored: counters only go up, and a negative
// add is always a caller bug that would otherwise corrupt rate queries.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer instrument that can go up and down (in-flight
// requests, pool sizes). Safe for concurrent use, allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 accumulated with a CAS loop on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram in the HDR spirit: bucket bounds
// are chosen once at construction (see Buckets helpers), each observation
// is one atomic increment plus one atomic float add, and quantiles are
// estimated by interpolating within the landing bucket. There is no
// per-observation allocation and no lock.
type Histogram struct {
	// upper holds the ascending inclusive upper bounds; counts has one
	// extra slot for the implicit +Inf bucket. counts[i] is the number of
	// observations in (upper[i-1], upper[i]].
	upper  []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a standalone histogram over the given ascending
// bucket upper bounds. Standalone histograms are for harness-side use
// (e.g. the loadgen's client-side latency); registry-exposed histograms
// come from Registry.Histogram / HistogramVec. Panics on empty, unsorted,
// or non-finite bounds — bucket layout is a compile-time decision.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	for i, b := range upper {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bucket bounds must be finite")
		}
		if i > 0 && b <= upper[i-1] {
			panic("obs: histogram bucket bounds must be strictly ascending")
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and every quantile; a NaN latency or size is always an
// upstream bug, not a measurement).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the landing bucket. The error is bounded by the bucket width;
// choose bounds accordingly (ExponentialBuckets keeps relative error
// roughly constant). Returns 0 on an empty histogram; observations in the
// +Inf bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i == len(h.upper) {
				// +Inf bucket: no finite upper bound to interpolate toward.
				return h.upper[len(h.upper)-1]
			}
			frac := (rank - cum) / n
			return lower + frac*(h.upper[i]-lower)
		}
		cum += n
		if i < len(h.upper) {
			lower = h.upper[i]
		}
	}
	return h.upper[len(h.upper)-1]
}
