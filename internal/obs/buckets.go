package obs

// Shared bucket layouts. Rationale (OBSERVABILITY.md has the long form):
// fixed buckets make every observation O(buckets) scan + one atomic add,
// with no per-observation allocation and no rebalancing, at the cost of
// quantile error bounded by the bucket width — the HDR-histogram tradeoff.
// Exponential spacing keeps that error roughly constant in relative terms.

// LatencyBuckets spans 100µs to 10s: the serving path's p50 sits near 1ms
// on loopback (BENCH_serve.json), gossip rounds near 10ms, and anything
// past 10s is an outage, not a latency.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets spans 64B to 256MB in powers of four: gossip idle rounds sit
// near 512B, delta frames in the tens of KB, full syncs and streaming
// ingest bodies up to the 256MB request cap.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// BatchBuckets spans 1 to 16384 examples: the loadgen default batch is 64,
// streaming ingest applies chunks of 512, and /v1/estimate caps at 65536.
var BatchBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 16384,
}

// ExponentialBuckets returns n bounds starting at start, each factor times
// the previous — the generator for HDR-style layouts where relative error
// stays near (factor-1)/2. Panics on a non-positive start, a factor ≤ 1,
// or n < 1 (bucket layout is a compile-time decision).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
