package linear

import "math"

// Schedule yields the learning rate ηₜ for online gradient descent at step
// t (1-based).
type Schedule interface {
	Rate(t int64) float64
	Name() string
}

// Constant is ηₜ = η₀.
type Constant struct{ Eta0 float64 }

// Rate implements Schedule.
func (c Constant) Rate(int64) float64 { return c.Eta0 }

// Name implements Schedule.
func (c Constant) Name() string { return "constant" }

// InvSqrt is ηₜ = η₀/√t, the standard rate for general convex OGD with
// O(√T) regret (Zinkevich 2003). This is the schedule used throughout the
// paper's experiments with η₀ = 0.1.
type InvSqrt struct{ Eta0 float64 }

// Rate implements Schedule.
func (s InvSqrt) Rate(t int64) float64 {
	if t < 1 {
		t = 1
	}
	return s.Eta0 / math.Sqrt(float64(t))
}

// Name implements Schedule.
func (s InvSqrt) Name() string { return "inv_sqrt" }

// InvLinear is ηₜ = η₀/(1 + η₀λt), the Bottou-style rate matched to
// λ-strongly-convex objectives with O(log T) regret.
type InvLinear struct {
	Eta0   float64
	Lambda float64
}

// Rate implements Schedule.
func (s InvLinear) Rate(t int64) float64 {
	if t < 1 {
		t = 1
	}
	return s.Eta0 / (1 + s.Eta0*s.Lambda*float64(t))
}

// Name implements Schedule.
func (s InvLinear) Name() string { return "inv_linear" }

// DefaultSchedule is the paper's experimental setting: η₀=0.1, ηₜ = η₀/√t.
func DefaultSchedule() Schedule { return InvSqrt{Eta0: 0.1} }
