package linear

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogisticValues(t *testing.T) {
	l := Logistic{}
	if got := l.Value(0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("Value(0) = %g, want ln 2", got)
	}
	if got := l.Deriv(0); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("Deriv(0) = %g, want -0.5", got)
	}
	// Large positive margin: near-zero loss and derivative.
	if got := l.Value(50); got > 1e-20 {
		t.Fatalf("Value(50) = %g, want ~0", got)
	}
	if got := l.Deriv(50); got < -1e-20 {
		t.Fatalf("Deriv(50) = %g, want ~0", got)
	}
	// Large negative margin: loss ≈ -margin, derivative ≈ -1.
	if got := l.Value(-100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Value(-100) = %g, want ≈100", got)
	}
	if got := l.Deriv(-100); math.Abs(got+1) > 1e-9 {
		t.Fatalf("Deriv(-100) = %g, want ≈-1", got)
	}
}

func TestLogisticStableNoOverflow(t *testing.T) {
	l := Logistic{}
	for _, m := range []float64{-1e8, -745, 745, 1e8} {
		v, d := l.Value(m), l.Deriv(m)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Value(%g) = %g", m, v)
		}
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("Deriv(%g) = %g", m, d)
		}
	}
}

// numericDeriv estimates dℓ/dτ by central differences.
func numericDeriv(l Loss, m float64) float64 {
	const h = 1e-6
	return (l.Value(m+h) - l.Value(m-h)) / (2 * h)
}

func TestDerivMatchesNumeric(t *testing.T) {
	losses := []Loss{Logistic{}, NewSmoothedHinge(), SmoothedHinge{Gamma: 0.5}}
	for _, l := range losses {
		for m := -5.0; m <= 5.0; m += 0.37 {
			want := numericDeriv(l, m)
			got := l.Deriv(m)
			if math.Abs(got-want) > 1e-4 {
				t.Fatalf("%s: Deriv(%g) = %g, numeric %g", l.Name(), m, got, want)
			}
		}
	}
}

func TestLossConvexity(t *testing.T) {
	// Derivative must be non-decreasing (convexity) and in [-1, 0]
	// (both losses are 1-Lipschitz and non-increasing).
	losses := []Loss{Logistic{}, NewSmoothedHinge()}
	for _, l := range losses {
		prev := math.Inf(-1)
		for m := -10.0; m <= 10.0; m += 0.01 {
			d := l.Deriv(m)
			if d < prev-1e-12 {
				t.Fatalf("%s: derivative decreased at %g", l.Name(), m)
			}
			if d < -1-1e-12 || d > 1e-12 {
				t.Fatalf("%s: derivative %g outside [-1,0] at %g", l.Name(), d, m)
			}
			prev = d
		}
	}
}

func TestSmoothedHingeRegions(t *testing.T) {
	s := NewSmoothedHinge()
	if got := s.Value(2); got != 0 {
		t.Fatalf("Value(2) = %g, want 0", got)
	}
	if got := s.Deriv(2); got != 0 {
		t.Fatalf("Deriv(2) = %g, want 0", got)
	}
	if got := s.Value(-1); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Value(-1) = %g, want 1.5", got)
	}
	if got := s.Deriv(-1); got != -1 {
		t.Fatalf("Deriv(-1) = %g, want -1", got)
	}
	// Quadratic region midpoint.
	if got := s.Value(0.5); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("Value(0.5) = %g, want 0.125", got)
	}
}

func TestSmoothedHingeZeroGammaDefaults(t *testing.T) {
	s := SmoothedHinge{} // Gamma 0 must behave as gamma 1
	ref := NewSmoothedHinge()
	for m := -3.0; m <= 3.0; m += 0.5 {
		if s.Value(m) != ref.Value(m) || s.Deriv(m) != ref.Deriv(m) {
			t.Fatalf("gamma=0 differs from gamma=1 at %g", m)
		}
	}
}

func TestSmoothedHingeStrongSmoothness(t *testing.T) {
	// β-strong smoothness: |ℓ'(a) − ℓ'(b)| ≤ (1/γ)|a−b|.
	for _, g := range []float64{0.5, 1, 2} {
		s := SmoothedHinge{Gamma: g}
		beta := 1 / g
		f := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
				return true
			}
			return math.Abs(s.Deriv(a)-s.Deriv(b)) <= beta*math.Abs(a-b)+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("gamma=%g: %v", g, err)
		}
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %g", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000) = %g", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Fatalf("Sigmoid(-1000) = %g", got)
	}
	// Symmetry: σ(z) + σ(-z) = 1.
	f := func(z float64) bool {
		if math.IsNaN(z) || math.Abs(z) > 700 {
			return true
		}
		return math.Abs(Sigmoid(z)+Sigmoid(-z)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleRates(t *testing.T) {
	c := Constant{Eta0: 0.3}
	if c.Rate(1) != 0.3 || c.Rate(1000) != 0.3 {
		t.Fatal("Constant schedule not constant")
	}
	s := InvSqrt{Eta0: 0.1}
	if got := s.Rate(1); got != 0.1 {
		t.Fatalf("InvSqrt.Rate(1) = %g", got)
	}
	if got := s.Rate(100); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("InvSqrt.Rate(100) = %g, want 0.01", got)
	}
	// Guard against t<1.
	if got := s.Rate(0); got != 0.1 {
		t.Fatalf("InvSqrt.Rate(0) = %g, want clamped 0.1", got)
	}
	il := InvLinear{Eta0: 1, Lambda: 0.1}
	if got := il.Rate(1); math.Abs(got-1/1.1) > 1e-12 {
		t.Fatalf("InvLinear.Rate(1) = %g", got)
	}
}

func TestSchedulesDecreasing(t *testing.T) {
	scheds := []Schedule{InvSqrt{Eta0: 0.1}, InvLinear{Eta0: 0.5, Lambda: 0.01}}
	for _, s := range scheds {
		prev := math.Inf(1)
		for t64 := int64(1); t64 < 100000; t64 *= 3 {
			r := s.Rate(t64)
			if r > prev {
				t.Fatalf("%s increased at t=%d", s.Name(), t64)
			}
			if r <= 0 {
				t.Fatalf("%s non-positive at t=%d", s.Name(), t64)
			}
			prev = r
		}
	}
}
