package linear

import (
	"math"

	"wmsketch/internal/stream"
)

// SparseLogReg is online logistic regression with elastic-net
// regularization: the ℓ2 term of Eq. 1 plus the ℓ1 augmentation Section
// 6.1 suggests for inducing sparsity ("this corresponds to elastic
// net-style composite ℓ1/ℓ2 regularization"). The ℓ1 penalty is applied
// with the cumulative-penalty method (Tsuruoka, Tsujii & Ananiadou 2009):
// a global accumulator u tracks the total ℓ1 penalty each weight should
// have absorbed, a per-feature ledger q_i tracks how much it actually has,
// and the difference is settled lazily whenever the feature is touched —
// exact sparsification at O(nnz(x)) per update.
type SparseLogReg struct {
	loss     Loss
	schedule Schedule
	lambda1  float64
	lambda2  float64

	weights map[uint32]float64
	applied map[uint32]float64 // q_i: l1 penalty already absorbed by i
	u       float64            // cumulative available l1 penalty
	scale   float64            // lazy l2 decay
	t       int64
}

// SparseLogRegConfig configures NewSparseLogReg.
type SparseLogRegConfig struct {
	Loss     Loss
	Schedule Schedule
	// Lambda1 is the ℓ1 strength (sparsity); Lambda2 the ℓ2 strength.
	Lambda1 float64
	Lambda2 float64
}

// NewSparseLogReg returns an elastic-net online logistic regression model.
func NewSparseLogReg(cfg SparseLogRegConfig) *SparseLogReg {
	if cfg.Loss == nil {
		cfg.Loss = Logistic{}
	}
	if cfg.Schedule == nil {
		cfg.Schedule = DefaultSchedule()
	}
	if cfg.Lambda1 < 0 || cfg.Lambda2 < 0 {
		panic("linear: negative regularization")
	}
	return &SparseLogReg{
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		lambda1:  cfg.Lambda1,
		lambda2:  cfg.Lambda2,
		weights:  make(map[uint32]float64),
		applied:  make(map[uint32]float64),
		scale:    1,
	}
}

// settle applies feature i's outstanding ℓ1 penalty, clipping at zero (the
// weight may not cross the origin due to a penalty). Weights driven to
// exactly zero are deleted — this is where the sparsity comes from.
func (s *SparseLogReg) settle(i uint32) {
	w, ok := s.weights[i]
	if !ok {
		// An absent feature is at zero; mark it as fully settled so a
		// future gradient re-entry doesn't inherit stale debt.
		s.applied[i] = s.u
		return
	}
	due := s.u - s.applied[i]
	if due <= 0 {
		return
	}
	// Work in true weight units (the stored value is unscaled).
	trueW := w * s.scale
	switch {
	case trueW > 0:
		trueW = math.Max(0, trueW-due)
	case trueW < 0:
		trueW = math.Min(0, trueW+due)
	}
	s.applied[i] = s.u
	if trueW == 0 {
		delete(s.weights, i)
		delete(s.applied, i)
		return
	}
	s.weights[i] = trueW / s.scale
}

// Predict returns the margin wᵀx after settling touched features.
func (s *SparseLogReg) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		s.settle(f.Index)
		dot += s.weights[f.Index] * f.Value
	}
	return dot * s.scale
}

// Update performs one elastic-net OGD step.
func (s *SparseLogReg) Update(x stream.Vector, y int) {
	s.t++
	eta := s.schedule.Rate(s.t)
	margin := float64(y) * s.Predict(x)
	g := s.loss.Deriv(margin)

	if s.lambda2 > 0 {
		s.scale *= 1 - eta*s.lambda2
		if s.scale < minScale {
			for i, w := range s.weights {
				s.weights[i] = w * s.scale
			}
			s.scale = 1
		}
	}
	if g != 0 {
		step := eta * float64(y) * g
		for _, f := range x {
			s.weights[f.Index] -= step * f.Value / s.scale
			if _, ok := s.applied[f.Index]; !ok {
				s.applied[f.Index] = s.u
			}
		}
	}
	// Accrue this step's l1 penalty for everyone; it is settled lazily.
	s.u += eta * s.lambda1
}

// Estimate returns the settled weight of feature i.
func (s *SparseLogReg) Estimate(i uint32) float64 {
	s.settle(i)
	return s.weights[i] * s.scale
}

// NNZ returns the number of currently-nonzero weights after settling all
// outstanding penalties (an O(d_live) operation).
func (s *SparseLogReg) NNZ() int {
	for i := range s.weights {
		s.settle(i)
	}
	return len(s.weights)
}

// TopK returns the k heaviest settled weights.
func (s *SparseLogReg) TopK(k int) []stream.Weighted {
	for i := range s.weights {
		s.settle(i)
	}
	out := make([]stream.Weighted, 0, len(s.weights))
	for i, w := range s.weights {
		out = append(out, stream.Weighted{Index: i, Weight: w * s.scale})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MemoryBytes charges id + weight + penalty ledger per live feature.
func (s *SparseLogReg) MemoryBytes() int { return 12 * len(s.weights) }

var _ stream.Learner = (*SparseLogReg)(nil)
