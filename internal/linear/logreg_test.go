package linear

import (
	"math"
	"math/rand"
	"testing"

	"wmsketch/internal/stream"
)

// synthExample draws (x, y) from a 2-feature linear model for smoke tests.
func synthStream(n int, seed int64) []stream.Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Example, n)
	for i := range out {
		x := stream.Vector{
			{Index: 0, Value: rng.NormFloat64()},
			{Index: 1, Value: rng.NormFloat64()},
		}
		// True weights (2, -1).
		margin := 2*x[0].Value - x[1].Value
		y := 1
		if margin < 0 {
			y = -1
		}
		out[i] = stream.Example{X: x, Y: y}
	}
	return out
}

func TestLogRegLearnsSeparableData(t *testing.T) {
	lr := NewLogReg(LogRegConfig{Lambda: 1e-6})
	examples := synthStream(5000, 1)
	for _, ex := range examples {
		lr.Update(ex.X, ex.Y)
	}
	// Evaluate on fresh data.
	test := synthStream(1000, 2)
	mistakes := 0
	for _, ex := range test {
		if lr.Predict(ex.X)*float64(ex.Y) <= 0 {
			mistakes++
		}
	}
	if rate := float64(mistakes) / 1000; rate > 0.05 {
		t.Fatalf("error rate %.3f on separable data", rate)
	}
	// Weight signs must match the generating model.
	if lr.Estimate(0) <= 0 || lr.Estimate(1) >= 0 {
		t.Fatalf("weights (%g, %g) have wrong signs", lr.Estimate(0), lr.Estimate(1))
	}
}

func TestLogRegGradientStep(t *testing.T) {
	// Single update with constant rate: w = -η·y·ℓ'(0)·x.
	lr := NewLogReg(LogRegConfig{Schedule: Constant{Eta0: 0.5}})
	x := stream.Vector{{Index: 3, Value: 2}}
	lr.Update(x, 1)
	// ℓ'(0) = -0.5 for logistic; w = -0.5·1·(-0.5)·2 = 0.5.
	if got := lr.Estimate(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("weight after one step = %g, want 0.5", got)
	}
	if lr.Steps() != 1 {
		t.Fatalf("Steps = %d", lr.Steps())
	}
}

func TestLogRegLazyDecayMatchesExplicit(t *testing.T) {
	// The lazily-scaled model must match a reference that applies decay
	// explicitly to every weight at each step.
	lambda := 0.01
	lr := NewLogReg(LogRegConfig{Lambda: lambda, Schedule: Constant{Eta0: 0.1}})
	ref := map[uint32]float64{}
	loss := Logistic{}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 500; step++ {
		x := stream.Vector{
			{Index: uint32(rng.Intn(10)), Value: rng.NormFloat64()},
			{Index: uint32(10 + rng.Intn(10)), Value: rng.NormFloat64()},
		}
		y := 2*rng.Intn(2) - 1
		// Reference explicit update.
		margin := 0.0
		for _, f := range x {
			margin += ref[f.Index] * f.Value
		}
		margin *= float64(y)
		g := loss.Deriv(margin)
		for i := range ref {
			ref[i] *= 1 - 0.1*lambda
		}
		for _, f := range x {
			ref[f.Index] -= 0.1 * float64(y) * g * f.Value
		}
		lr.Update(x, y)
	}
	for i, w := range ref {
		if got := lr.Estimate(i); math.Abs(got-w) > 1e-9 {
			t.Fatalf("feature %d: lazy %g vs explicit %g", i, got, w)
		}
	}
}

func TestLogRegRenormalization(t *testing.T) {
	// Huge λ drives the scale below the renormalization threshold quickly;
	// the model must stay finite and consistent.
	lr := NewLogReg(LogRegConfig{Lambda: 0.9, Schedule: Constant{Eta0: 1.0}})
	x := stream.Vector{{Index: 1, Value: 1}}
	for i := 0; i < 300; i++ {
		lr.Update(x, 1)
	}
	w := lr.Estimate(1)
	if math.IsNaN(w) || math.IsInf(w, 0) {
		t.Fatalf("weight diverged: %g", w)
	}
	if w <= 0 || w > 10 {
		t.Fatalf("weight %g out of plausible range", w)
	}
}

func TestLogRegTopKTracksHeaviest(t *testing.T) {
	lr := NewLogReg(LogRegConfig{HeapK: 4, Schedule: Constant{Eta0: 0.1}})
	// Train so features 0..9 get monotonically increasing weights: feature i
	// appears with value proportional to i+1 and always label +1. Few enough
	// steps that margins stay small and logistic saturation cannot invert
	// the ordering.
	for step := 0; step < 20; step++ {
		for i := uint32(0); i < 10; i++ {
			lr.Update(stream.Vector{{Index: i, Value: float64(i+1) / 10}}, 1)
		}
	}
	top := lr.TopK(4)
	if len(top) != 4 {
		t.Fatalf("TopK returned %d", len(top))
	}
	want := map[uint32]bool{6: true, 7: true, 8: true, 9: true}
	for _, w := range top {
		if !want[w.Index] {
			t.Fatalf("unexpected top-4 feature %d (weights should grow with index)", w.Index)
		}
	}
	// Heap TopK must agree with the exact scan.
	exact := lr.ExactTopK(4)
	for i := range top {
		if top[i].Index != exact[i].Index {
			t.Fatalf("heap top-%d = %d, exact = %d", i, top[i].Index, exact[i].Index)
		}
		if math.Abs(top[i].Weight-exact[i].Weight) > 1e-12 {
			t.Fatalf("weight mismatch at %d", i)
		}
	}
}

func TestLogRegWeightsSnapshot(t *testing.T) {
	lr := NewLogReg(LogRegConfig{Schedule: Constant{Eta0: 0.5}})
	lr.Update(stream.Vector{{Index: 5, Value: 1}}, 1)
	ws := lr.Weights()
	if len(ws) != 1 {
		t.Fatalf("Weights has %d entries", len(ws))
	}
	if math.Abs(ws[5]-lr.Estimate(5)) > 1e-15 {
		t.Fatal("snapshot differs from Estimate")
	}
	ws[5] = 999
	if lr.Estimate(5) == 999 {
		t.Fatal("Weights not a copy")
	}
}

func TestLogRegMemoryBytes(t *testing.T) {
	lr := NewLogReg(LogRegConfig{Dim: 1000, HeapK: 128})
	want := 4*1000 + 8*128
	if got := lr.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
	// Without Dim, falls back to live features.
	lr2 := NewLogReg(LogRegConfig{HeapK: 16})
	lr2.Update(stream.Vector{{Index: 1, Value: 1}, {Index: 2, Value: 1}}, 1)
	if got := lr2.MemoryBytes(); got != 4*2+8*16 {
		t.Fatalf("MemoryBytes fallback = %d", got)
	}
}

func TestLogRegSmoothedHinge(t *testing.T) {
	lr := NewLogReg(LogRegConfig{Loss: NewSmoothedHinge(), Lambda: 1e-5})
	for _, ex := range synthStream(3000, 5) {
		lr.Update(ex.X, ex.Y)
	}
	mistakes := 0
	test := synthStream(500, 6)
	for _, ex := range test {
		if lr.Predict(ex.X)*float64(ex.Y) <= 0 {
			mistakes++
		}
	}
	if rate := float64(mistakes) / 500; rate > 0.06 {
		t.Fatalf("smoothed hinge error rate %.3f", rate)
	}
}

func BenchmarkLogRegUpdate(b *testing.B) {
	lr := NewLogReg(LogRegConfig{Lambda: 1e-6})
	examples := synthStream(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := examples[i&4095]
		lr.Update(ex.X, ex.Y)
	}
}
