package linear

import (
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// minScale is the global-scale renormalization threshold; below it the scale
// is folded into the stored weights to avoid floating-point underflow.
const minScale = 1e-9

// LogReg is the memory-unconstrained online linear classifier ("LR" in the
// paper's plots): exact per-feature weights, ℓ2 regularization applied
// lazily through a global scale factor, and a size-K magnitude heap tracking
// the heaviest weights exactly as the paper's timing baseline does
// (Section 7.4, K=128).
type LogReg struct {
	loss     Loss
	schedule Schedule
	lambda   float64
	dim      int // declared dimensionality, for the cost model

	weights map[uint32]float64 // stored unscaled; true weight = scale·w
	scale   float64
	t       int64
	heap    *topk.Heap
}

// LogRegConfig configures NewLogReg. Zero values select the paper's
// defaults: logistic loss, η₀=0.1 inverse-sqrt schedule, K=128 heap.
type LogRegConfig struct {
	Loss     Loss
	Schedule Schedule
	Lambda   float64
	Dim      int
	HeapK    int
}

// NewLogReg returns an unconstrained online linear classifier.
func NewLogReg(cfg LogRegConfig) *LogReg {
	if cfg.Loss == nil {
		cfg.Loss = Logistic{}
	}
	if cfg.Schedule == nil {
		cfg.Schedule = DefaultSchedule()
	}
	if cfg.HeapK <= 0 {
		cfg.HeapK = 128
	}
	return &LogReg{
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		lambda:   cfg.Lambda,
		dim:      cfg.Dim,
		weights:  make(map[uint32]float64),
		scale:    1,
		heap:     topk.New(cfg.HeapK),
	}
}

// Predict returns the margin wᵀx.
func (lr *LogReg) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		dot += lr.weights[f.Index] * f.Value
	}
	return dot * lr.scale
}

// Update performs one OGD step on (x, y) with lazy ℓ2 decay.
func (lr *LogReg) Update(x stream.Vector, y int) {
	lr.t++
	eta := lr.schedule.Rate(lr.t)
	margin := float64(y) * lr.Predict(x)
	g := lr.loss.Deriv(margin)

	// Lazy decay: scale ← (1−ηλ)·scale.
	if lr.lambda > 0 {
		lr.scale *= 1 - eta*lr.lambda
		if lr.scale < minScale {
			lr.renormalize()
		}
	}
	if g != 0 {
		step := eta * float64(y) * g
		for _, f := range x {
			// True update wᵢ ← wᵢ − η·y·g·xᵢ; divide by scale because the
			// stored value is unscaled.
			lr.weights[f.Index] -= step * f.Value / lr.scale
		}
	}
	// Maintain the top-K heap over touched features.
	for _, f := range x {
		lr.offerToHeap(f.Index)
	}
}

func (lr *LogReg) offerToHeap(i uint32) {
	w := lr.weights[i] // unscaled; heap stores unscaled too (order preserved)
	if lr.heap.Contains(i) {
		lr.heap.UpdateMagnitude(i, w)
		return
	}
	if !lr.heap.Full() {
		lr.heap.InsertMagnitude(i, w)
		return
	}
	min, _ := lr.heap.Min()
	if absf(w) > min.Score {
		lr.heap.PopMin()
		lr.heap.InsertMagnitude(i, w)
	}
}

// renormalize folds the global scale into the stored weights.
func (lr *LogReg) renormalize() {
	for i, w := range lr.weights {
		lr.weights[i] = w * lr.scale
	}
	lr.heap.ScaleWeights(lr.scale)
	lr.scale = 1
}

// Estimate returns the exact current weight of feature i.
func (lr *LogReg) Estimate(i uint32) float64 {
	return lr.weights[i] * lr.scale
}

// TopK returns the K heaviest weights tracked by the heap, descending.
func (lr *LogReg) TopK(k int) []stream.Weighted {
	entries := lr.heap.TopK(k)
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight * lr.scale}
	}
	return out
}

// ExactTopK scans all stored weights (not just the heap) and returns the
// true top-k; used as ground truth w* when computing recovery error.
func (lr *LogReg) ExactTopK(k int) []stream.Weighted {
	out := make([]stream.Weighted, 0, len(lr.weights))
	for i, w := range lr.weights {
		out = append(out, stream.Weighted{Index: i, Weight: w * lr.scale})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Weights returns a snapshot of all nonzero weights (rescaled).
func (lr *LogReg) Weights() map[uint32]float64 {
	out := make(map[uint32]float64, len(lr.weights))
	for i, w := range lr.weights {
		out[i] = w * lr.scale
	}
	return out
}

// Steps returns the number of updates applied.
func (lr *LogReg) Steps() int64 { return lr.t }

// MemoryBytes reports the cost-model footprint of a dense weight array of
// the declared dimension plus the top-K heap (Section 7.4's baseline
// layout). When Dim was not declared, the live feature count is used.
func (lr *LogReg) MemoryBytes() int {
	d := lr.dim
	if d == 0 {
		d = len(lr.weights)
	}
	return 4*d + lr.heap.MemoryBytes(false)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
