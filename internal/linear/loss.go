// Package linear provides the online-learning machinery of Section 3.2:
// margin-based convex losses (logistic, smoothed hinge), learning-rate
// schedules for online gradient descent, and the memory-unconstrained
// logistic regression baseline ("LR" in the paper's figures) with lazy ℓ2
// decay and top-K weight tracking.
package linear

import "math"

// Loss is a convex, differentiable margin loss ℓ(τ) where τ = y·wᵀx.
// Deriv returns dℓ/dτ. All losses here are β-strongly smooth with β ≤ 1,
// matching the assumption of Theorems 1 and 2.
type Loss interface {
	Value(margin float64) float64
	Deriv(margin float64) float64
	Name() string
}

// Logistic is ℓ(τ) = log(1 + exp(−τ)), the loss defining logistic
// regression; its weights admit the log-odds interpretation used by the
// PMI application (Section 8.3).
type Logistic struct{}

// Value returns log(1+exp(−τ)) computed stably for large |τ|.
func (Logistic) Value(margin float64) float64 {
	if margin < -30 {
		return -margin
	}
	return math.Log1p(math.Exp(-margin))
}

// Deriv returns −σ(−τ) = −1/(1+exp(τ)).
func (Logistic) Deriv(margin float64) float64 {
	return -Sigmoid(-margin)
}

// Name implements Loss.
func (Logistic) Name() string { return "logistic" }

// SmoothedHinge is the quadratically-smoothed hinge loss with smoothing
// parameter gamma (β = 1/gamma strongly smooth):
//
//	ℓ(τ) = 0                        τ ≥ 1
//	     = (1-τ)²/(2γ)              1-γ < τ < 1
//	     = 1 - τ - γ/2              τ ≤ 1-γ
//
// With γ=1 this is the common "smooth hinge" defining an SVM relative.
type SmoothedHinge struct {
	Gamma float64
}

// NewSmoothedHinge returns a smoothed hinge with γ=1.
func NewSmoothedHinge() SmoothedHinge { return SmoothedHinge{Gamma: 1} }

// Value implements Loss.
func (s SmoothedHinge) Value(margin float64) float64 {
	g := s.gamma()
	switch {
	case margin >= 1:
		return 0
	case margin > 1-g:
		d := 1 - margin
		return d * d / (2 * g)
	default:
		return 1 - margin - g/2
	}
}

// Deriv implements Loss.
func (s SmoothedHinge) Deriv(margin float64) float64 {
	g := s.gamma()
	switch {
	case margin >= 1:
		return 0
	case margin > 1-g:
		return (margin - 1) / g
	default:
		return -1
	}
}

// Name implements Loss.
func (s SmoothedHinge) Name() string { return "smoothed_hinge" }

func (s SmoothedHinge) gamma() float64 {
	if s.Gamma <= 0 {
		return 1
	}
	return s.Gamma
}

// Sigmoid returns 1/(1+exp(−z)), computed stably at both tails.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
