package linear

import (
	"math"
	"math/rand"
	"testing"

	"wmsketch/internal/stream"
)

func TestSparseLogRegInducesSparsity(t *testing.T) {
	// Noise features should be driven to exactly zero by the l1 penalty
	// while signal features survive.
	mk := func(l1 float64) *SparseLogReg {
		return NewSparseLogReg(SparseLogRegConfig{
			Lambda1: l1, Lambda2: 1e-6, Schedule: Constant{Eta0: 0.1},
		})
	}
	plain := mk(0)
	sparse := mk(0.02)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		// Feature 0 is the signal; features 1..200 are noise.
		y := 2*rng.Intn(2) - 1
		x := stream.Vector{
			{Index: 0, Value: float64(y)},
			{Index: uint32(1 + rng.Intn(200)), Value: rng.NormFloat64() * 0.3},
		}
		plain.Update(x, y)
		sparse.Update(x, y)
	}
	if sp, pl := sparse.NNZ(), plain.NNZ(); sp >= pl/2 {
		t.Fatalf("l1 model has %d nonzeros vs %d without — no sparsification", sp, pl)
	}
	if got := sparse.Estimate(0); got <= 0.5 {
		t.Fatalf("signal weight %g too small under l1", got)
	}
}

func TestSparseLogRegZeroL1MatchesLogReg(t *testing.T) {
	a := NewSparseLogReg(SparseLogRegConfig{Lambda2: 1e-4, Schedule: Constant{Eta0: 0.1}})
	b := NewLogReg(LogRegConfig{Lambda: 1e-4, Schedule: Constant{Eta0: 0.1}})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		y := 2*rng.Intn(2) - 1
		x := stream.Vector{
			{Index: uint32(rng.Intn(20)), Value: rng.NormFloat64()},
			{Index: uint32(rng.Intn(20)), Value: rng.NormFloat64()},
		}
		a.Update(x, y)
		b.Update(x, y)
	}
	for i := uint32(0); i < 20; i++ {
		if math.Abs(a.Estimate(i)-b.Estimate(i)) > 1e-9 {
			t.Fatalf("feature %d: %g vs %g", i, a.Estimate(i), b.Estimate(i))
		}
	}
}

func TestSparseLogRegPenaltyDoesNotCrossZero(t *testing.T) {
	// One positive update then heavy accumulated penalty: the weight must
	// clip at zero, not go negative.
	s := NewSparseLogReg(SparseLogRegConfig{Lambda1: 1.0, Schedule: Constant{Eta0: 1.0}})
	s.Update(stream.OneHot(1), 1) // w1 = 0.5
	// Penalty accrues on updates that don't touch feature 1.
	for i := 0; i < 10; i++ {
		s.Update(stream.OneHot(2), -1)
	}
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("weight %g, want exactly 0 (clipped)", got)
	}
}

func TestSparseLogRegSettledLazily(t *testing.T) {
	// A feature untouched for many steps absorbs exactly the accumulated
	// penalty when next read, matching an eager implementation.
	lazy := NewSparseLogReg(SparseLogRegConfig{Lambda1: 0.01, Schedule: Constant{Eta0: 0.1}})
	lazy.Update(stream.OneHot(1), 1)
	w0 := lazy.Estimate(1)
	const steps = 30 // few enough that the weight does not clip at zero
	for i := 0; i < steps; i++ {
		lazy.Update(stream.OneHot(2), 1)
	}
	// Eager expectation: w0 minus steps × η·λ1 (all settled at once).
	want := w0 - steps*0.1*0.01
	if got := lazy.Estimate(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("lazy settle %g, eager expectation %g", got, want)
	}
}

func TestSparseLogRegTopKSettled(t *testing.T) {
	s := NewSparseLogReg(SparseLogRegConfig{Lambda1: 0.05, Schedule: Constant{Eta0: 0.5}})
	s.Update(stream.OneHot(1), 1)
	s.Update(stream.OneHot(2), 1)
	for i := 0; i < 40; i++ {
		s.Update(stream.OneHot(3), 1)
	}
	top := s.TopK(10)
	for _, w := range top {
		if w.Weight == 0 {
			t.Fatalf("TopK returned a zero weight: %+v", w)
		}
	}
	// Feature 3 (constantly refreshed) must be the heaviest survivor.
	if len(top) == 0 || top[0].Index != 3 {
		t.Fatalf("TopK = %+v, want feature 3 first", top)
	}
}

func TestSparseLogRegValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative lambda")
		}
	}()
	NewSparseLogReg(SparseLogRegConfig{Lambda1: -1})
}
