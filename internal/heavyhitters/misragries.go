package heavyhitters

import "sort"

// MisraGries is the classic deterministic frequent-items summary: k counters
// where an untracked item either claims a free counter or decrements all
// counters by the incoming weight. Estimates underestimate true counts by at
// most Total/(k+1).
type MisraGries struct {
	capacity int
	total    float64
	counts   map[uint32]float64
}

// NewMisraGries returns a summary with the given counter budget.
func NewMisraGries(capacity int) *MisraGries {
	if capacity <= 0 {
		panic("heavyhitters: capacity must be positive")
	}
	return &MisraGries{capacity: capacity, counts: make(map[uint32]float64, capacity)}
}

// Len returns the number of live counters.
func (mg *MisraGries) Len() int { return len(mg.counts) }

// Total returns the total observed weight.
func (mg *MisraGries) Total() float64 { return mg.total }

// Observe records one occurrence of key with weight 1.
func (mg *MisraGries) Observe(key uint32) { mg.ObserveWeighted(key, 1) }

// ObserveWeighted records weight occurrences of key.
func (mg *MisraGries) ObserveWeighted(key uint32, weight float64) {
	if weight < 0 {
		panic("heavyhitters: negative weight")
	}
	mg.total += weight
	if _, ok := mg.counts[key]; ok {
		mg.counts[key] += weight
		return
	}
	if len(mg.counts) < mg.capacity {
		mg.counts[key] = weight
		return
	}
	// Decrement-all step: reduce every counter by the smaller of weight and
	// the current minimum, repeatedly, until the new item fits or its weight
	// is exhausted. For unit weights this is the textbook single decrement.
	for weight > 0 {
		min := minValue(mg.counts)
		if min > weight {
			for k := range mg.counts {
				mg.counts[k] -= weight
			}
			return
		}
		for k, v := range mg.counts {
			if v-min <= 0 {
				delete(mg.counts, k)
			} else {
				mg.counts[k] = v - min
			}
		}
		weight -= min
		if weight > 0 && len(mg.counts) < mg.capacity {
			mg.counts[key] = weight
			return
		}
	}
}

func minValue(m map[uint32]float64) float64 {
	first := true
	min := 0.0
	for _, v := range m {
		if first || v < min {
			min = v
			first = false
		}
	}
	return min
}

// Estimate returns the (under-)estimated count for key.
func (mg *MisraGries) Estimate(key uint32) float64 { return mg.counts[key] }

// TopK returns up to k tracked items by descending counter value.
func (mg *MisraGries) TopK(k int) []Counter {
	out := make([]Counter, 0, len(mg.counts))
	for key, c := range mg.counts {
		out = append(out, Counter{Key: key, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MemoryBytes is the cost-model footprint: key + count per counter.
func (mg *MisraGries) MemoryBytes() int { return 8 * mg.capacity }
