package heavyhitters

import (
	"math/rand"
	"testing"
)

func TestLossyCountingNeverOverestimates(t *testing.T) {
	lc := NewLossyCounting(0.01)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		key := uint32(rng.Intn(1000))
		lc.Observe(key)
		truth[key]++
	}
	for key, v := range truth {
		if got := lc.Estimate(key); got > v+1e-9 {
			t.Fatalf("key %d: estimate %g exceeds true %g", key, got, v)
		}
	}
}

func TestLossyCountingUnderestimateBound(t *testing.T) {
	const eps = 0.005
	lc := NewLossyCounting(eps)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(2))
	zipfGen := rand.NewZipf(rng, 1.3, 1, 5000)
	const n = 100000
	for i := 0; i < n; i++ {
		key := uint32(zipfGen.Uint64())
		lc.Observe(key)
		truth[key]++
	}
	for key, v := range truth {
		if v-lc.Estimate(key) > eps*n+1e-9 {
			t.Fatalf("key %d: undercount %g exceeds εN=%g", key, v-lc.Estimate(key), eps*n)
		}
	}
}

func TestLossyCountingHeavyHittersComplete(t *testing.T) {
	const eps = 0.01
	lc := NewLossyCounting(eps)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	for i := 0; i < n; i++ {
		var key uint32
		switch {
		case rng.Float64() < 0.25:
			key = 1
		case rng.Float64() < 0.10:
			key = 2
		default:
			key = uint32(10 + rng.Intn(5000))
		}
		lc.Observe(key)
		truth[key]++
	}
	const phi = 0.05
	got := map[uint32]bool{}
	for _, c := range lc.HeavyHitters(phi) {
		got[c.Key] = true
	}
	for key, v := range truth {
		if v >= phi*n && !got[key] {
			t.Fatalf("true %g-heavy item %d missing", phi, key)
		}
	}
}

func TestLossyCountingPrunesTail(t *testing.T) {
	lc := NewLossyCounting(0.01)
	rng := rand.New(rand.NewSource(4))
	// A stream of mostly-unique keys: the summary must stay far below the
	// number of distinct items thanks to pruning.
	const n = 100000
	for i := 0; i < n; i++ {
		lc.Observe(uint32(rng.Intn(n)))
	}
	if lc.Len() > n/10 {
		t.Fatalf("summary holds %d counters for %d near-unique items", lc.Len(), n)
	}
	if lc.Seen() != n {
		t.Fatalf("Seen = %d", lc.Seen())
	}
}

func TestLossyCountingTopKOrder(t *testing.T) {
	lc := NewLossyCounting(0.1)
	for i := 0; i < 30; i++ {
		lc.Observe(1)
	}
	for i := 0; i < 10; i++ {
		lc.Observe(2)
	}
	top := lc.TopK(2)
	if len(top) == 0 || top[0].Key != 1 {
		t.Fatalf("TopK = %+v", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("TopK not descending")
		}
	}
}

func TestLossyCountingValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("epsilon %g: expected panic", eps)
				}
			}()
			NewLossyCounting(eps)
		}()
	}
}
