package heavyhitters

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpaceSavingExactBelowCapacity(t *testing.T) {
	ss := NewSpaceSaving(16)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		key := uint32(rng.Intn(10)) // only 10 distinct < 16 capacity
		ss.Observe(key, 1)
		truth[key]++
	}
	for key, v := range truth {
		if got := ss.Estimate(key); got != v {
			t.Fatalf("key %d: estimate %g, want exact %g", key, got, v)
		}
		if got := ss.GuaranteedCount(key); got != v {
			t.Fatalf("key %d: guaranteed %g, want %g (no evictions)", key, got, v)
		}
	}
}

func TestSpaceSavingNeverUnderestimates(t *testing.T) {
	ss := NewSpaceSaving(20)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(2))
	zipfGen := rand.NewZipf(rng, 1.3, 1, 5000)
	for i := 0; i < 50000; i++ {
		key := uint32(zipfGen.Uint64())
		ss.Observe(key, 1)
		truth[key]++
	}
	for key, v := range truth {
		if !ss.Contains(key) {
			continue
		}
		if got := ss.Estimate(key); got < v-1e-9 {
			t.Fatalf("key %d: estimate %g under true %g", key, got, v)
		}
		if lo := ss.GuaranteedCount(key); lo > v+1e-9 {
			t.Fatalf("key %d: guaranteed lower bound %g exceeds true %g", key, lo, v)
		}
	}
}

func TestSpaceSavingHeavyItemsTracked(t *testing.T) {
	// Any item with frequency > N/capacity is guaranteed to be tracked.
	const capacity = 10
	ss := NewSpaceSaving(capacity)
	const n = 10000
	// Key 1 gets 30% of the stream; the rest is spread over many keys.
	rng := rand.New(rand.NewSource(3))
	heavyCount := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			ss.Observe(1, 1)
			heavyCount++
		} else {
			ss.Observe(uint32(2+rng.Intn(5000)), 1)
		}
	}
	if !ss.Contains(1) {
		t.Fatal("30% heavy hitter not tracked with capacity 10")
	}
	est := ss.Estimate(1)
	if est < float64(heavyCount) {
		t.Fatalf("estimate %g below true %d", est, heavyCount)
	}
	if est > float64(heavyCount)+float64(n)/capacity {
		t.Fatalf("estimate %g exceeds true+N/k bound", est)
	}
}

func TestSpaceSavingOverestimateBound(t *testing.T) {
	// Overestimation of any tracked item is at most Total/capacity.
	const capacity = 25
	ss := NewSpaceSaving(capacity)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30000; i++ {
		key := uint32(rng.Intn(1000))
		ss.Observe(key, 1)
		truth[key]++
	}
	bound := ss.Total() / capacity
	for _, c := range ss.Counters() {
		over := c.Count - truth[c.Key]
		if over > bound+1e-9 {
			t.Fatalf("key %d: overestimate %g exceeds N/k=%g", c.Key, over, bound)
		}
		if c.Error > bound+1e-9 {
			t.Fatalf("key %d: error bound %g exceeds N/k=%g", c.Key, c.Error, bound)
		}
	}
}

func TestSpaceSavingEvictionReporting(t *testing.T) {
	ss := NewSpaceSaving(2)
	if _, ev := ss.Observe(1, 1); ev {
		t.Fatal("eviction reported while below capacity")
	}
	ss.Observe(2, 5)
	evicted, ev := ss.Observe(3, 1)
	if !ev || evicted != 1 {
		t.Fatalf("expected eviction of key 1, got %d,%v", evicted, ev)
	}
	// Key 3 inherited key 1's count (1) + its own weight (1) = 2, error 1.
	if got := ss.Estimate(3); got != 2 {
		t.Fatalf("inherited estimate %g, want 2", got)
	}
	if got := ss.GuaranteedCount(3); got != 1 {
		t.Fatalf("guaranteed %g, want 1", got)
	}
}

func TestSpaceSavingMinCount(t *testing.T) {
	ss := NewSpaceSaving(3)
	if ss.MinCount() != 0 {
		t.Fatal("MinCount should be 0 before full")
	}
	ss.Observe(1, 5)
	ss.Observe(2, 3)
	ss.Observe(3, 7)
	if got := ss.MinCount(); got != 3 {
		t.Fatalf("MinCount = %g, want 3", got)
	}
}

func TestSpaceSavingTopKOrder(t *testing.T) {
	ss := NewSpaceSaving(8)
	counts := map[uint32]int{1: 50, 2: 30, 3: 20, 4: 10}
	for key, n := range counts {
		for i := 0; i < n; i++ {
			ss.Observe(key, 1)
		}
	}
	top := ss.TopK(2)
	if len(top) != 2 || top[0].Key != 1 || top[1].Key != 2 {
		t.Fatalf("TopK(2) = %+v", top)
	}
}

func TestSpaceSavingHeavyHittersContainsAllTrue(t *testing.T) {
	ss := NewSpaceSaving(50)
	rng := rand.New(rand.NewSource(5))
	truth := map[uint32]float64{}
	const n = 20000
	for i := 0; i < n; i++ {
		var key uint32
		switch {
		case rng.Float64() < 0.2:
			key = 100
		case rng.Float64() < 0.15:
			key = 200
		default:
			key = uint32(rng.Intn(3000))
		}
		ss.Observe(key, 1)
		truth[key]++
	}
	const phi = 0.1
	hh := ss.HeavyHitters(phi)
	got := map[uint32]bool{}
	for _, c := range hh {
		got[c.Key] = true
	}
	for key, v := range truth {
		if v > phi*float64(n) && !got[key] {
			t.Fatalf("true heavy hitter %d (count %g) missing", key, v)
		}
	}
}

func TestSpaceSavingPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for capacity 0")
			}
		}()
		NewSpaceSaving(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative weight")
			}
		}()
		NewSpaceSaving(2).Observe(1, -1)
	}()
}

func TestSpaceSavingMemoryBytes(t *testing.T) {
	if got := NewSpaceSaving(100).MemoryBytes(); got != 1200 {
		t.Fatalf("MemoryBytes = %d, want 1200", got)
	}
}

func TestSpaceSavingHeapConsistency(t *testing.T) {
	ss := NewSpaceSaving(32)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50000; i++ {
		ss.Observe(uint32(rng.Intn(500)), 1+rng.Float64())
	}
	// Min-heap property on counts.
	for i := 1; i < len(ss.items); i++ {
		parent := (i - 1) / 2
		if ss.items[parent].Count > ss.items[i].Count {
			t.Fatalf("heap violated at index %d", i)
		}
	}
	for key, i := range ss.pos {
		if ss.items[i].Key != key {
			t.Fatalf("stale index for key %d", key)
		}
	}
	// MinCount equals the true minimum.
	min := math.Inf(1)
	for _, c := range ss.items {
		min = math.Min(min, c.Count)
	}
	if ss.MinCount() != min {
		t.Fatalf("MinCount %g != true min %g", ss.MinCount(), min)
	}
}

func BenchmarkSpaceSavingObserve(b *testing.B) {
	ss := NewSpaceSaving(1024)
	rng := rand.New(rand.NewSource(1))
	zipfGen := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([]uint32, 1<<16)
	for i := range keys {
		keys[i] = uint32(zipfGen.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Observe(keys[i&(1<<16-1)], 1)
	}
}
