package heavyhitters

import (
	"math/rand"
	"testing"
)

func TestMisraGriesExactBelowCapacity(t *testing.T) {
	mg := NewMisraGries(8)
	for i := 0; i < 5; i++ {
		mg.Observe(1)
	}
	for i := 0; i < 3; i++ {
		mg.Observe(2)
	}
	if got := mg.Estimate(1); got != 5 {
		t.Fatalf("Estimate(1) = %g, want 5", got)
	}
	if got := mg.Estimate(2); got != 3 {
		t.Fatalf("Estimate(2) = %g, want 3", got)
	}
}

func TestMisraGriesUnderestimateBound(t *testing.T) {
	// Underestimation is at most Total/(capacity+1).
	const capacity = 20
	mg := NewMisraGries(capacity)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(1))
	const n = 30000
	for i := 0; i < n; i++ {
		key := uint32(rng.Intn(500))
		mg.Observe(key)
		truth[key]++
	}
	bound := float64(n)/(capacity+1) + 1e-9
	for key, v := range truth {
		got := mg.Estimate(key)
		if got > v+1e-9 {
			t.Fatalf("key %d: MG overestimates: %g > %g", key, got, v)
		}
		if v-got > bound {
			t.Fatalf("key %d: underestimate %g exceeds N/(k+1)=%g", key, v-got, bound)
		}
	}
}

func TestMisraGriesHeavyItemSurvives(t *testing.T) {
	mg := NewMisraGries(10)
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			mg.Observe(7)
		} else {
			mg.Observe(uint32(100 + rng.Intn(2000)))
		}
	}
	if mg.Estimate(7) == 0 {
		t.Fatal("40% heavy item lost by Misra-Gries with k=10")
	}
}

func TestMisraGriesWeightedMatchesRepeated(t *testing.T) {
	a := NewMisraGries(4)
	b := NewMisraGries(4)
	seq := []uint32{1, 2, 1, 3, 1, 4, 5, 1, 2, 2}
	for _, k := range seq {
		a.Observe(k)
	}
	// Weighted single observations of the same multiset, same order of first
	// appearance with merged consecutive runs would differ in general;
	// instead check weighted observation of one key equals repeats.
	for i := 0; i < 7; i++ {
		b.Observe(9)
	}
	c := NewMisraGries(4)
	c.ObserveWeighted(9, 7)
	if b.Estimate(9) != c.Estimate(9) {
		t.Fatalf("weighted %g != repeated %g", c.Estimate(9), b.Estimate(9))
	}
	_ = a
}

func TestMisraGriesTopK(t *testing.T) {
	mg := NewMisraGries(8)
	for i := 0; i < 10; i++ {
		mg.Observe(1)
	}
	for i := 0; i < 6; i++ {
		mg.Observe(2)
	}
	mg.Observe(3)
	top := mg.TopK(2)
	if len(top) != 2 || top[0].Key != 1 || top[1].Key != 2 {
		t.Fatalf("TopK(2) = %+v", top)
	}
}

func TestMisraGriesDecrementEvicts(t *testing.T) {
	mg := NewMisraGries(2)
	mg.Observe(1)
	mg.Observe(2)
	mg.Observe(3) // decrements both 1 and 2 to 0, evicting them
	if mg.Len() != 0 {
		t.Fatalf("expected empty summary after decrement, got %d live", mg.Len())
	}
	if mg.Total() != 3 {
		t.Fatalf("Total = %g, want 3", mg.Total())
	}
}

func TestMisraGriesPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for capacity 0")
			}
		}()
		NewMisraGries(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative weight")
			}
		}()
		NewMisraGries(2).ObserveWeighted(1, -2)
	}()
}

func TestMisraGriesMemoryBytes(t *testing.T) {
	if got := NewMisraGries(64).MemoryBytes(); got != 512 {
		t.Fatalf("MemoryBytes = %d, want 512", got)
	}
}
