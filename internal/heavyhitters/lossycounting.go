package heavyhitters

import (
	"math"
	"sort"
)

// LossyCounting is the Manku–Motwani deterministic frequent-items summary
// (VLDB 2002), the third counter-based method from the related-work family
// in Section 2. The stream is processed in buckets of width ⌈1/ε⌉; at each
// bucket boundary, items whose count plus error bound falls below the
// current bucket id are pruned. Guarantees: estimated counts underestimate
// by at most εN, and all items with true frequency ≥ φN are reported for
// any φ > ε.
type LossyCounting struct {
	epsilon     float64
	bucketWidth int64
	current     int64 // current bucket id
	seen        int64
	counts      map[uint32]lcEntry
}

type lcEntry struct {
	count float64
	// delta is the maximum undercount at insertion time (bucket id - 1).
	delta float64
}

// NewLossyCounting returns a summary with error parameter epsilon in (0,1).
func NewLossyCounting(epsilon float64) *LossyCounting {
	if epsilon <= 0 || epsilon >= 1 {
		panic("heavyhitters: epsilon must be in (0,1)")
	}
	return &LossyCounting{
		epsilon:     epsilon,
		bucketWidth: int64(math.Ceil(1 / epsilon)),
		current:     1,
		counts:      make(map[uint32]lcEntry),
	}
}

// Observe records one occurrence of key.
func (lc *LossyCounting) Observe(key uint32) {
	lc.seen++
	if e, ok := lc.counts[key]; ok {
		e.count++
		lc.counts[key] = e
	} else {
		lc.counts[key] = lcEntry{count: 1, delta: float64(lc.current - 1)}
	}
	if lc.seen%lc.bucketWidth == 0 {
		lc.prune()
		lc.current++
	}
}

// prune removes entries whose maximum possible count falls below the
// current bucket id.
func (lc *LossyCounting) prune() {
	for key, e := range lc.counts {
		if e.count+e.delta <= float64(lc.current) {
			delete(lc.counts, key)
		}
	}
}

// Estimate returns the (under-)estimated count of key; zero when pruned.
func (lc *LossyCounting) Estimate(key uint32) float64 {
	return lc.counts[key].count
}

// Seen returns the number of observations.
func (lc *LossyCounting) Seen() int64 { return lc.seen }

// Len returns the number of live counters. Manku–Motwani bound this by
// (1/ε)·log(εN).
func (lc *LossyCounting) Len() int { return len(lc.counts) }

// HeavyHitters returns all items with estimated count ≥ (phi−ε)·N; this
// contains every item with true frequency ≥ phi·N.
func (lc *LossyCounting) HeavyHitters(phi float64) []Counter {
	threshold := (phi - lc.epsilon) * float64(lc.seen)
	var out []Counter
	for key, e := range lc.counts {
		if e.count >= threshold {
			out = append(out, Counter{Key: key, Count: e.count, Error: e.delta})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TopK returns up to k live counters by descending estimated count.
func (lc *LossyCounting) TopK(k int) []Counter {
	out := make([]Counter, 0, len(lc.counts))
	for key, e := range lc.counts {
		out = append(out, Counter{Key: key, Count: e.count, Error: e.delta})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// MemoryBytes charges key + count + delta per live counter. Unlike the
// fixed-capacity summaries, Lossy Counting's footprint varies with the
// stream; this reports the current size.
func (lc *LossyCounting) MemoryBytes() int { return 12 * len(lc.counts) }
