// Package heavyhitters implements counter-based frequent-item summaries:
// the Space Saving algorithm of Metwally, Agrawal and El Abbadi (the paper's
// primary frequent-features baseline and the MacroBase-style heavy-hitters
// comparator in Section 8.1) and the Misra–Gries summary, an additional
// counter-based method from the related-work family (Section 2).
package heavyhitters

import "sort"

// Counter is one tracked item in a Space Saving summary.
type Counter struct {
	Key   uint32
	Count float64
	// Error is the maximum overestimation of Count: when the item replaced a
	// previous minimum its true count may be as low as Count-Error.
	Error float64
}

// SpaceSaving maintains at most capacity counters. On observing an untracked
// item when full, the minimum counter is reassigned to the new item and its
// count inherited (the defining Space Saving move). Guarantees: tracked
// counts never underestimate, and any item with true count > N/capacity is
// tracked.
type SpaceSaving struct {
	capacity int
	total    float64
	pos      map[uint32]int
	items    []Counter // min-heap on Count
}

// NewSpaceSaving returns a summary tracking at most capacity items.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		panic("heavyhitters: capacity must be positive")
	}
	return &SpaceSaving{
		capacity: capacity,
		pos:      make(map[uint32]int, capacity),
		items:    make([]Counter, 0, capacity),
	}
}

// Len returns the number of tracked items.
func (ss *SpaceSaving) Len() int { return len(ss.items) }

// Cap returns the capacity.
func (ss *SpaceSaving) Cap() int { return ss.capacity }

// Total returns the total weight observed.
func (ss *SpaceSaving) Total() float64 { return ss.total }

// Contains reports whether key is currently tracked.
func (ss *SpaceSaving) Contains(key uint32) bool {
	_, ok := ss.pos[key]
	return ok
}

// Observe records one occurrence of key with the given weight (typically 1).
// It returns the key that was evicted to make room, with evicted=false when
// no eviction occurred.
func (ss *SpaceSaving) Observe(key uint32, weight float64) (evictedKey uint32, evicted bool) {
	if weight < 0 {
		panic("heavyhitters: negative weight")
	}
	ss.total += weight
	if i, ok := ss.pos[key]; ok {
		ss.items[i].Count += weight
		ss.down(i)
		return 0, false
	}
	if len(ss.items) < ss.capacity {
		ss.items = append(ss.items, Counter{Key: key, Count: weight})
		i := len(ss.items) - 1
		ss.pos[key] = i
		ss.up(i)
		return 0, false
	}
	// Replace the minimum counter: new item inherits min count as error.
	min := ss.items[0]
	delete(ss.pos, min.Key)
	ss.items[0] = Counter{Key: key, Count: min.Count + weight, Error: min.Count}
	ss.pos[key] = 0
	ss.down(0)
	return min.Key, true
}

// Estimate returns the (over-)estimated count for key; zero when untracked.
func (ss *SpaceSaving) Estimate(key uint32) float64 {
	if i, ok := ss.pos[key]; ok {
		return ss.items[i].Count
	}
	return 0
}

// GuaranteedCount returns the count minus the maximum possible
// overestimation for key (a certified lower bound), zero when untracked.
func (ss *SpaceSaving) GuaranteedCount(key uint32) float64 {
	if i, ok := ss.pos[key]; ok {
		return ss.items[i].Count - ss.items[i].Error
	}
	return 0
}

// MinCount returns the smallest tracked count (0 when not yet full); this
// bounds the count of every untracked item.
func (ss *SpaceSaving) MinCount() float64 {
	if len(ss.items) < ss.capacity || len(ss.items) == 0 {
		return 0
	}
	return ss.items[0].Count
}

// Counters returns all tracked counters sorted by descending count.
func (ss *SpaceSaving) Counters() []Counter {
	out := make([]Counter, len(ss.items))
	copy(out, ss.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TopK returns up to k counters with the largest counts, descending.
func (ss *SpaceSaving) TopK(k int) []Counter {
	out := ss.Counters()
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// HeavyHitters returns all tracked items whose guaranteed count exceeds
// phi*Total; the answer contains every true phi-heavy hitter (possibly with
// false positives when guaranteed bounds are loose).
func (ss *SpaceSaving) HeavyHitters(phi float64) []Counter {
	threshold := phi * ss.total
	var out []Counter
	for _, c := range ss.Counters() {
		if c.Count > threshold {
			out = append(out, c)
		}
	}
	return out
}

// MemoryBytes is the cost-model footprint: 4 bytes each for key, count and
// the per-entry error bound (an auxiliary value under Section 7.1's model).
func (ss *SpaceSaving) MemoryBytes() int { return 12 * ss.capacity }

func (ss *SpaceSaving) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if ss.items[parent].Count <= ss.items[i].Count {
			break
		}
		ss.swap(parent, i)
		i = parent
	}
}

func (ss *SpaceSaving) down(i int) {
	n := len(ss.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && ss.items[right].Count < ss.items[left].Count {
			smallest = right
		}
		if ss.items[i].Count <= ss.items[smallest].Count {
			break
		}
		ss.swap(i, smallest)
		i = smallest
	}
}

func (ss *SpaceSaving) swap(i, j int) {
	ss.items[i], ss.items[j] = ss.items[j], ss.items[i]
	ss.pos[ss.items[i].Key] = i
	ss.pos[ss.items[j].Key] = j
}
