package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// testOpt keeps experiment tests fast while remaining large enough for the
// qualitative shapes to emerge.
func testOpt() Options { return Options{Examples: 20_000, Seed: 42} }

// cell fetches a table cell by filtering on leading columns.
func findRows(t *Table, match map[string]string) [][]string {
	var out [][]string
	for _, row := range t.Rows {
		ok := true
		for col, want := range match {
			idx := -1
			for i, c := range t.Columns {
				if c == col {
					idx = i
					break
				}
			}
			if idx < 0 || row[idx] != want {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func cellFloat(t *testing.T, row []string, tab *Table, col string) float64 {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				t.Fatalf("cell %q in column %s not a float: %v", row[i], col, err)
			}
			return v
		}
	}
	t.Fatalf("no column %s", col)
	return 0
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bb") {
		t.Fatalf("bad render:\n%s", s)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong arity")
			}
		}()
		tab.AddRow("only-one")
	}()
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "hello")
	tab.AddRow("2", "world")
	want := "a,b\n1,hello\n2,world\n"
	if got := tab.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestRegistryCoversAllArtifacts(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablation"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, err := Run("nope", testOpt()); err == nil {
		t.Error("unknown id must error")
	}
	if tab, err := Run("table1", testOpt()); err != nil || tab.ID != "table1" {
		t.Errorf("Run(table1) = %v, %v", tab, err)
	}
}

func TestNewLearnerAllMethods(t *testing.T) {
	for _, m := range ClassificationMethods {
		l := NewLearner(m, 8*1024, 1e-6, 1)
		if l == nil {
			t.Fatalf("nil learner for %s", m)
		}
		if m != MethodLR && l.MemoryBytes() > 8*1024 {
			t.Errorf("%s exceeds budget: %d B", m, l.MemoryBytes())
		}
	}
	l := NewLearner(MethodCM, 8*1024, 1e-6, 1)
	if l.MemoryBytes() > 8*1024 {
		t.Errorf("CMFreq exceeds budget: %d B", l.MemoryBytes())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unknown method")
			}
		}()
		NewLearner(Method("bogus"), 1024, 0, 1)
	}()
}

func TestTable1Shape(t *testing.T) {
	tab := RunTable1(testOpt())
	if len(tab.Rows) != 6 {
		t.Fatalf("table1 has %d rows, want 6 datasets", len(tab.Rows))
	}
}

func TestFig3AWMBeatsHashAndTruncation(t *testing.T) {
	tab := RunFig3(Options{Examples: 15_000, Seed: 42})
	get := func(ds, m string) float64 {
		rows := findRows(tab, map[string]string{"dataset": ds, "method": m, "K": "64"})
		if len(rows) != 1 {
			t.Fatalf("%s/%s: %d rows", ds, m, len(rows))
		}
		return cellFloat(t, rows[0], tab, "relerr")
	}
	// The paper's claims preserved by the synthetic substitutes: AWM beats
	// feature hashing everywhere; AWM beats magnitude truncation on rcv1;
	// frequency-based tracking (SS) is unreliable on url, where the
	// discriminative features are rare.
	for _, ds := range []string{"rcv1", "url", "kdda"} {
		awm, hash := get(ds, "AWM"), get(ds, "Hash")
		if awm >= hash {
			t.Errorf("%s: AWM relerr %.4f not below Hash %.4f", ds, awm, hash)
		}
		if awm < 1 {
			t.Errorf("%s: relerr %.4f below metric floor 1", ds, awm)
		}
	}
	if awm, trun := get("rcv1", "AWM"), get("rcv1", "Trun"); awm >= trun {
		t.Errorf("rcv1: AWM relerr %.4f not below Trun %.4f", awm, trun)
	}
	if awm, ss := get("url", "AWM"), get("url", "SS"); awm >= ss {
		t.Errorf("url: AWM relerr %.4f not below SS %.4f", awm, ss)
	}
}

func TestFig4RecoveryImprovesWithBudget(t *testing.T) {
	tab := RunFig4(Options{Examples: 15_000, Seed: 42})
	get := func(budget string) float64 {
		rows := findRows(tab, map[string]string{"budget": budget, "method": "AWM", "K": "128"})
		if len(rows) != 1 {
			t.Fatalf("%s: %d rows", budget, len(rows))
		}
		return cellFloat(t, rows[0], tab, "relerr")
	}
	small, large := get("2KB"), get("16KB")
	if large > small {
		t.Errorf("AWM relerr grew with budget: 2KB=%.4f 16KB=%.4f", small, large)
	}
}

func TestFig5MoreRegularizationLowersError(t *testing.T) {
	tab := RunFig5(Options{Examples: 15_000, Seed: 42})
	get := func(lambda string) float64 {
		rows := findRows(tab, map[string]string{"dataset": "rcv1", "lambda": lambda, "K": "128"})
		if len(rows) != 1 {
			t.Fatalf("lambda %s: %d rows", lambda, len(rows))
		}
		return cellFloat(t, rows[0], tab, "relerr")
	}
	strong, weak := get("1e-03"), get("1e-06")
	if strong > weak*1.1 {
		t.Errorf("strong regularization relerr %.4f should not exceed weak %.4f", strong, weak)
	}
}

func TestFig6AWMCompetitiveWithHash(t *testing.T) {
	tab := RunFig6(Options{Examples: 15_000, Seed: 42})
	for _, budget := range []string{"2KB", "8KB", "32KB"} {
		get := func(m string) float64 {
			rows := findRows(tab, map[string]string{"dataset": "rcv1", "budget": budget, "method": m})
			if len(rows) != 1 {
				t.Fatalf("%s/%s: %d rows", budget, m, len(rows))
			}
			return cellFloat(t, rows[0], tab, "error_rate")
		}
		awm, hash, lr := get("AWM"), get("Hash"), get("LR")
		// The paper's headline: AWM within a small margin of (usually below)
		// feature hashing, and above the unconstrained floor.
		if awm > hash+0.03 {
			t.Errorf("%s: AWM error %.4f far above Hash %.4f", budget, awm, hash)
		}
		if awm < lr-0.005 {
			t.Errorf("%s: AWM error %.4f below unconstrained LR %.4f", budget, awm, lr)
		}
	}
}

func TestFig7HashFasterThanAWM(t *testing.T) {
	tab := RunFig7(Options{Examples: 10_000, Seed: 42})
	rows := findRows(tab, map[string]string{"budget": "8KB", "method": "Hash"})
	hashNs := cellFloat(t, rows[0], tab, "ns_per_update")
	rows = findRows(tab, map[string]string{"budget": "8KB", "method": "AWM"})
	awmNs := cellFloat(t, rows[0], tab, "ns_per_update")
	if hashNs <= 0 || awmNs <= 0 {
		t.Fatal("non-positive timings")
	}
	// AWM pays for heap maintenance; it must not be faster than plain
	// hashing by more than noise.
	if awmNs < hashNs*0.5 {
		t.Errorf("AWM (%.0f ns) implausibly faster than Hash (%.0f ns)", awmNs, hashNs)
	}
}

func TestFig8ClassifierFindsExtremeRisks(t *testing.T) {
	run := runExplanation(Options{Examples: 60_000, Seed: 42})
	hhBoth := run.extremeFraction("hh_both")
	awm := run.extremeFraction("awm")
	lr := run.extremeFraction("lr_exact")
	// Classifier-based retrieval concentrates on risk extremes; HH over
	// both classes wastes capacity on risk≈1 features.
	if awm <= hhBoth {
		t.Errorf("AWM extreme fraction %.3f not above HH-both %.3f", awm, hhBoth)
	}
	if lr <= hhBoth {
		t.Errorf("LR extreme fraction %.3f not above HH-both %.3f", lr, hhBoth)
	}
}

func TestFig9WeightsCorrelateWithRisk(t *testing.T) {
	tab := RunFig9(Options{Examples: 60_000, Seed: 42})
	for _, method := range []string{"lr_exact", "awm"} {
		rows := findRows(tab, map[string]string{"method": method})
		if len(rows) != 1 {
			t.Fatalf("%s: %d rows", method, len(rows))
		}
		r := cellFloat(t, rows[0], tab, "pearson_weight_vs_risk")
		if r < 0.5 {
			t.Errorf("%s: Pearson %.3f, want strongly positive", method, r)
		}
	}
}

func TestFig10AWMBeatsPairedCM(t *testing.T) {
	tab := RunFig10(Options{Examples: 150_000, Seed: 42})
	get := func(th, m string) float64 {
		rows := findRows(tab, map[string]string{"threshold_log_ratio": th, "method": m})
		if len(rows) != 1 {
			t.Fatalf("%s/%s: %d rows", th, m, len(rows))
		}
		return cellFloat(t, rows[0], tab, "recall")
	}
	awm, cm, lr := get("2.0", "AWM"), get("2.0", "CM"), get("2.0", "LR")
	if awm <= cm {
		t.Errorf("AWM recall %.3f not above paired-CM %.3f", awm, cm)
	}
	if awm < 0.5*lr {
		t.Errorf("AWM recall %.3f far below LR %.3f", awm, lr)
	}
}

func TestTable3RecoversPlantedPairs(t *testing.T) {
	tab := RunTable3(Options{Examples: 120_000, Seed: 42})
	good := 0
	ranked := 0
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "freq") {
			continue
		}
		ranked++
		// A good retrieval is either a planted pair or a genuinely
		// high-PMI chance collocation.
		exact := cellFloat(t, row, tab, "exact_pmi")
		if row[4] == "true" || exact > 1 {
			good++
		}
	}
	if ranked < 3 {
		t.Fatalf("only %d pairs recovered", ranked)
	}
	if float64(good)/float64(ranked) < 0.6 {
		t.Errorf("only %d/%d top pairs are high-PMI", good, ranked)
	}
	// Estimated PMI should track exact PMI for recovered planted pairs.
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "freq") || row[4] != "true" {
			continue
		}
		est := cellFloat(t, row, tab, "est_pmi")
		exact := cellFloat(t, row, tab, "exact_pmi")
		if math.IsNaN(exact) {
			continue
		}
		if math.Abs(est-exact) > 2.5 {
			t.Errorf("pair %s: est PMI %.2f vs exact %.2f", row[1], est, exact)
		}
	}
}

func TestFig11WidthAndLambdaShapes(t *testing.T) {
	tab := RunFig11(Options{Examples: 60_000, Seed: 42})
	get := func(logW, lambda, col string) float64 {
		rows := findRows(tab, map[string]string{"log2_width": logW, "lambda": lambda})
		if len(rows) != 1 {
			t.Fatalf("%s/%s: %d rows", logW, lambda, len(rows))
		}
		return cellFloat(t, rows[0], tab, col)
	}
	// Paper shape 1: wider sketches retrieve higher-PMI pairs.
	narrowPMI := get("10", "1e-06", "median_pmi")
	widePMI := get("16", "1e-06", "median_pmi")
	if widePMI < narrowPMI {
		t.Errorf("wider sketch retrieved lower PMI pairs: %.3g vs %.3g", widePMI, narrowPMI)
	}
	// Paper shape 2: stronger regularization discards low-frequency pairs,
	// raising the median frequency of what remains.
	heavyFreq := get("16", "1e-04", "median_freq")
	lightFreq := get("16", "1e-06", "median_freq")
	if heavyFreq < lightFreq {
		t.Errorf("strong lambda kept rarer pairs: %.3g vs %.3g", heavyFreq, lightFreq)
	}
}

func TestAblationShapes(t *testing.T) {
	tab := RunAblation(Options{Examples: 15_000, Seed: 42})
	// Active set on must beat off on recovery.
	onRows := findRows(tab, map[string]string{"ablation": "active_set", "variant": "on (AWM)"})
	offRows := findRows(tab, map[string]string{"ablation": "active_set", "variant": "off (WM)"})
	if len(onRows) != 1 || len(offRows) != 1 {
		t.Fatal("missing active_set rows")
	}
	on := cellFloat(t, onRows[0], tab, "relerr")
	off := cellFloat(t, offRows[0], tab, "relerr")
	if on > off*1.05 {
		t.Errorf("active set on (%.4f) worse than off (%.4f)", on, off)
	}
	// Scale trick must not change accuracy materially.
	lazyRows := findRows(tab, map[string]string{"ablation": "scale_trick", "variant": "lazy scale"})
	explRows := findRows(tab, map[string]string{"ablation": "scale_trick", "variant": "explicit decay"})
	lazy := cellFloat(t, lazyRows[0], tab, "relerr")
	expl := cellFloat(t, explRows[0], tab, "relerr")
	if math.Abs(lazy-expl) > 0.05*(1+math.Abs(expl)) {
		t.Errorf("scale trick changed accuracy: lazy %.4f vs explicit %.4f", lazy, expl)
	}
}

func TestTable2BestConfigsFitBudget(t *testing.T) {
	tab := RunTable2(Options{Examples: 8_000, Seed: 42})
	if len(tab.Rows) != 10 { // 5 budgets × 2 methods
		t.Fatalf("table2 has %d rows, want 10", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		budgetKB, _ := strconv.Atoi(strings.TrimSuffix(row[0], "KB"))
		heap, _ := strconv.Atoi(row[2])
		width, _ := strconv.Atoi(row[3])
		depth, _ := strconv.Atoi(row[4])
		bytes := heap*8 + width*depth*4
		if bytes > budgetKB*1024 {
			t.Errorf("config %v uses %d B > %d KB budget", row, bytes, budgetKB)
		}
		if heap == 0 || width == 0 || depth == 0 {
			t.Errorf("degenerate best config: %v", row)
		}
	}
}
