// Package experiments contains one harness per table and figure in the
// paper's evaluation (Sections 7 and 8). Each Run function trains the
// relevant methods on the synthetic substitute workloads under the Section
// 7.1 memory cost model and returns a Table whose rows mirror the series
// the paper plots. cmd/wmbench exposes every harness behind -exp flags, and
// bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"

	"wmsketch/internal/baselines"
	"wmsketch/internal/core"
	"wmsketch/internal/linear"
	"wmsketch/internal/memory"
	"wmsketch/internal/stream"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the expected qualitative shape from the paper for
	// side-by-side comparison in EXPERIMENTS.md.
	Notes string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (cells in
// this repository never contain commas or quotes) for downstream plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Options scales experiments between quick (tests, benches) and full
// (cmd/wmbench) runs.
type Options struct {
	// Examples is the stream length per dataset.
	Examples int
	// Seed derives all dataset and sketch seeds.
	Seed int64
}

// Quick returns options sized for unit tests and benchmarks.
func Quick() Options { return Options{Examples: 30_000, Seed: 42} }

// Full returns options sized for the full experiment run.
func Full() Options { return Options{Examples: 300_000, Seed: 42} }

// Method identifies one of the compared algorithms.
type Method string

// The methods compared in Section 7's figures, plus the CM-frequent variant.
const (
	MethodTrun  Method = "Trun"
	MethodPTrun Method = "PTrun"
	MethodSS    Method = "SS"
	MethodHash  Method = "Hash"
	MethodWM    Method = "WM"
	MethodAWM   Method = "AWM"
	MethodCM    Method = "CMFreq"
	MethodLR    Method = "LR"
)

// RecoveryMethods are the budgeted methods compared in Figures 3-5.
var RecoveryMethods = []Method{MethodTrun, MethodPTrun, MethodSS, MethodHash, MethodWM, MethodAWM}

// ClassificationMethods adds the unconstrained LR reference of Figure 6.
var ClassificationMethods = []Method{MethodTrun, MethodPTrun, MethodSS, MethodHash, MethodWM, MethodAWM, MethodLR}

// NewLearner constructs the named method sized for a memory budget in bytes
// under the Section 7.1 cost model. λ and seed are shared across methods so
// comparisons isolate the data-structure choice.
func NewLearner(m Method, budget int, lambda float64, seed int64) stream.Learner {
	base := baselines.Config{Lambda: lambda, Seed: seed}
	switch m {
	case MethodTrun:
		base.Budget = memory.TruncationEntries(budget)
		return baselines.NewSimpleTruncation(base)
	case MethodPTrun:
		base.Budget = memory.ProbTruncationEntries(budget)
		return baselines.NewProbTruncation(base)
	case MethodSS:
		base.Budget = memory.SpaceSavingEntries(budget)
		return baselines.NewSSFrequent(base)
	case MethodHash:
		base.Budget = memory.HashBuckets(budget)
		return baselines.NewFeatureHashTracked(base)
	case MethodWM:
		cfg := memory.PaperWMConfig(budget)
		return core.NewWMSketch(core.Config{
			Width: cfg.Width, Depth: cfg.Depth, HeapSize: cfg.Heap,
			Lambda: lambda, Seed: seed,
		})
	case MethodAWM:
		cfg := memory.PaperAWMConfig(budget)
		return core.NewAWMSketch(core.Config{
			Width: cfg.Width, Depth: cfg.Depth, HeapSize: cfg.Heap,
			Lambda: lambda, Seed: seed,
		})
	case MethodCM:
		entries := budget / 2 / (memory.BytesPerID + memory.BytesPerWeight + memory.BytesPerAux)
		width := (budget / 2) / (2 * memory.BytesPerWeight)
		if entries < 1 {
			entries = 1
		}
		if width < 1 {
			width = 1
		}
		base.Budget = entries
		return baselines.NewCMFrequent(baselines.CMFrequentConfig{
			Config: base, Depth: 2, Width: width,
		})
	case MethodLR:
		return linear.NewLogReg(linear.LogRegConfig{Lambda: lambda})
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", m))
	}
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtBudget renders a byte budget as the paper's KB labels.
func fmtBudget(b int) string { return fmt.Sprintf("%dKB", b/1024) }
