package experiments

import (
	"fmt"

	"wmsketch/internal/core"
	"wmsketch/internal/memory"
	"wmsketch/internal/metrics"
	"wmsketch/internal/stream"
)

// RunAblation extends the paper's evaluation with ablations of the design
// choices DESIGN.md calls out: (a) sketch depth versus width at a fixed
// bucket count, (b) the active-set mechanism (AWM vs WM at matched memory),
// (c) the heap/sketch budget split within the AWM-Sketch, and (d) the lazy
// global-scale regularization trick versus explicit per-bucket decay.
func RunAblation(opt Options) *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "Design-choice ablations (rcv1, 8KB, K=128)",
		Columns: []string{"ablation", "variant", "relerr", "error_rate", "ns_per_update"},
		Notes: "expected shape: depth 1-2 best for AWM-style recovery at fixed size; " +
			"active set strictly improves recovery; ~1/2 heap split optimal; " +
			"scale trick changes runtime, not accuracy",
	}
	const budget = 8 * 1024
	const lambda = 1e-6
	const k = 128
	gen := classificationStream("rcv1", opt.Seed)
	examples := gen.Take(opt.Examples)
	ref := trainReference(examples, lambda)
	truth := ref.Weights()

	evaluate := func(l stream.Learner) (relerr, errRate, nsPerUpdate float64) {
		var er metrics.ErrorRate
		nsPerUpdate = timeUpdatesWithErrors(l, examples, &er)
		return metrics.RelErr(l.TopK(k), truth), er.Rate(), nsPerUpdate
	}

	// (a) Depth vs width at fixed total buckets (no heap interference:
	// modest fixed heap).
	const totalBuckets = 1024
	for _, depth := range []int{1, 2, 4, 8} {
		l := core.NewWMSketch(core.Config{
			Width: totalBuckets / depth, Depth: depth, HeapSize: 128,
			Lambda: lambda, Seed: opt.Seed + 1,
		})
		re, er, ns := evaluate(l)
		t.AddRow("depth_vs_width", fmt.Sprintf("depth=%d,width=%d", depth, totalBuckets/depth),
			fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))
	}

	// (b) Active set on/off at matched memory.
	awmCfg := memory.PaperAWMConfig(budget)
	awm := core.NewAWMSketch(core.Config{
		Width: awmCfg.Width, Depth: 1, HeapSize: awmCfg.Heap,
		Lambda: lambda, Seed: opt.Seed + 1,
	})
	re, er, ns := evaluate(awm)
	t.AddRow("active_set", "on (AWM)", fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))
	wmCfg := memory.PaperWMConfig(budget)
	wm := core.NewWMSketch(core.Config{
		Width: wmCfg.Width, Depth: wmCfg.Depth, HeapSize: wmCfg.Heap,
		Lambda: lambda, Seed: opt.Seed + 1,
	})
	re, er, ns = evaluate(wm)
	t.AddRow("active_set", "off (WM)", fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))

	// (c) Heap/sketch budget split for the AWM-Sketch.
	for _, frac := range []struct {
		label string
		heap  int
	}{
		{"1/4 heap", 256}, {"1/2 heap", 512}, {"3/4 heap", 768},
	} {
		width := (budget - frac.heap*8) / 4
		l := core.NewAWMSketch(core.Config{
			Width: width, Depth: 1, HeapSize: frac.heap,
			Lambda: lambda, Seed: opt.Seed + 1,
		})
		re, er, ns := evaluate(l)
		t.AddRow("heap_split", frac.label, fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))
	}

	// (d) Per-bucket adaptive learning rates (Section 9's open question):
	// AdaGrad WM-Sketch vs the plain schedule at matched sketch shape. Note
	// the accumulators double the sketch's memory, so at equal BYTES the
	// adaptive variant gets half the buckets.
	ag := core.NewAdaGradWMSketch(core.Config{
		Width: wmCfg.Width / 2, Depth: wmCfg.Depth, HeapSize: wmCfg.Heap,
		Lambda: lambda, Seed: opt.Seed + 1,
	})
	re, er, ns = evaluate(ag)
	t.AddRow("learning_rate", "adagrad (half width)", fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))
	wm2 := core.NewWMSketch(core.Config{
		Width: wmCfg.Width, Depth: wmCfg.Depth, HeapSize: wmCfg.Heap,
		Lambda: lambda, Seed: opt.Seed + 1,
	})
	re, er, ns = evaluate(wm2)
	t.AddRow("learning_rate", "eta0/sqrt(t)", fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))

	// (e) Lazy scale trick vs explicit decay: identical model, different
	// update cost.
	for _, variant := range []struct {
		label   string
		noTrick bool
	}{
		{"lazy scale", false}, {"explicit decay", true},
	} {
		l := core.NewAWMSketch(core.Config{
			Width: awmCfg.Width, Depth: 1, HeapSize: awmCfg.Heap,
			Lambda: 1e-4, Seed: opt.Seed + 1, NoScaleTrick: variant.noTrick,
		})
		re, er, ns := evaluate(l)
		t.AddRow("scale_trick", variant.label, fmtF(re), fmtF(er), fmt.Sprintf("%.0f", ns))
	}
	return t
}

// timeUpdatesWithErrors trains l while recording online errors and returns
// mean ns/update.
func timeUpdatesWithErrors(l stream.Learner, examples []stream.Example, er *metrics.ErrorRate) float64 {
	start := nowNanos()
	for _, ex := range examples {
		er.Record(l.Predict(ex.X), ex.Y)
		l.Update(ex.X, ex.Y)
	}
	return float64(nowNanos()-start) / float64(len(examples))
}
