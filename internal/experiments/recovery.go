package experiments

import (
	"fmt"
	"math"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/linear"
	"wmsketch/internal/memory"
	"wmsketch/internal/metrics"
	"wmsketch/internal/stream"
)

// recoveryKs are the K values at which Figures 3-5 report top-K recovery
// error.
var recoveryKs = []int{8, 16, 32, 64, 128}

// datasetLambdas are the per-dataset regularization settings used in
// Figure 3's captions.
var datasetLambdas = map[string]float64{
	"rcv1": 1e-6,
	"url":  1e-5,
	"kdda": 1e-5,
}

// classificationStream builds the named synthetic dataset.
func classificationStream(name string, seed int64) *datagen.Classification {
	switch name {
	case "rcv1":
		return datagen.RCV1Like(seed)
	case "url":
		return datagen.URLLike(seed)
	case "kdda":
		return datagen.KDDALike(seed)
	default:
		panic("experiments: unknown dataset " + name)
	}
}

// trainReference runs memory-unconstrained logistic regression over the
// examples and returns it as the ground-truth w* proxy.
func trainReference(examples []stream.Example, lambda float64) *linear.LogReg {
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: lambda})
	for _, ex := range examples {
		lr.Update(ex.X, ex.Y)
	}
	return lr
}

// relErrAtKs trains l on examples and evaluates RelErr against truth at
// each K.
func relErrAtKs(l stream.Learner, examples []stream.Example, truth map[uint32]float64, ks []int) map[int]float64 {
	for _, ex := range examples {
		l.Update(ex.X, ex.Y)
	}
	out := make(map[int]float64, len(ks))
	for _, k := range ks {
		out[k] = metrics.RelErr(l.TopK(k), truth)
	}
	return out
}

// RunFig3 reproduces Figure 3: relative ℓ2 error of estimated top-K weights
// versus the true top-K under an 8KB budget, across the three
// classification datasets and all six budgeted methods.
func RunFig3(opt Options) *Table {
	t := &Table{
		ID:      "fig3",
		Title:   "Relative L2 error of top-K weights, 8KB budget",
		Columns: []string{"dataset", "method", "K", "relerr"},
		Notes: "expected shape: AWM lowest on all datasets; SS competitive on " +
			"rcv1 but worse than PTrun on url; Hash worst (no disambiguation)",
	}
	const budget = 8 * 1024
	for _, ds := range []string{"rcv1", "url", "kdda"} {
		lambda := datasetLambdas[ds]
		gen := classificationStream(ds, opt.Seed)
		examples := gen.Take(opt.Examples)
		ref := trainReference(examples, lambda)
		truth := ref.Weights()
		for _, m := range RecoveryMethods {
			l := NewLearner(m, budget, lambda, opt.Seed+1)
			errs := relErrAtKs(l, examples, truth, recoveryKs)
			for _, k := range recoveryKs {
				t.AddRow(ds, string(m), fmt.Sprint(k), fmtF(errs[k]))
			}
		}
	}
	return t
}

// RunFig4 reproduces Figure 4: recovery error on the RCV1-like dataset
// across memory budgets (λ = 1e-6).
func RunFig4(opt Options) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Relative L2 error vs memory budget (rcv1, lambda=1e-6)",
		Columns: []string{"budget", "method", "K", "relerr"},
		Notes:   "expected shape: AWM error decreases quickly with budget and dominates at every size",
	}
	const lambda = 1e-6
	gen := classificationStream("rcv1", opt.Seed)
	examples := gen.Take(opt.Examples)
	ref := trainReference(examples, lambda)
	truth := ref.Weights()
	for _, budget := range []int{2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024} {
		for _, m := range RecoveryMethods {
			l := NewLearner(m, budget, lambda, opt.Seed+1)
			errs := relErrAtKs(l, examples, truth, recoveryKs)
			for _, k := range recoveryKs {
				t.AddRow(fmtBudget(budget), string(m), fmt.Sprint(k), fmtF(errs[k]))
			}
		}
	}
	return t
}

// RunFig5 reproduces Figure 5: AWM-Sketch recovery error under varying
// ℓ2-regularization strength on the rcv1- and url-like datasets, 8KB.
func RunFig5(opt Options) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "AWM-Sketch top-K error vs lambda, 8KB budget",
		Columns: []string{"dataset", "lambda", "K", "relerr"},
		Notes:   "expected shape: higher lambda -> lower recovery error (weights shrink toward 0)",
	}
	const budget = 8 * 1024
	for _, ds := range []string{"rcv1", "url"} {
		gen := classificationStream(ds, opt.Seed)
		examples := gen.Take(opt.Examples)
		for _, lambda := range []float64{1e-3, 1e-4, 1e-5, 1e-6} {
			ref := trainReference(examples, lambda)
			truth := ref.Weights()
			l := NewLearner(MethodAWM, budget, lambda, opt.Seed+1)
			errs := relErrAtKs(l, examples, truth, recoveryKs)
			for _, k := range recoveryKs {
				t.AddRow(ds, fmt.Sprintf("%.0e", lambda), fmt.Sprint(k), fmtF(errs[k]))
			}
		}
	}
	return t
}

// RunTable2 reproduces Table 2: for each budget, sweep (heap, width, depth)
// configurations of the WM- and AWM-Sketch and report the configuration
// minimizing ℓ2 recovery error at K=128 on the rcv1-like dataset.
func RunTable2(opt Options) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Sketch configurations minimizing recovery error (rcv1)",
		Columns: []string{"budget", "method", "heap", "width", "depth", "relerr"},
		Notes: "expected shape: AWM's best configs allocate half the budget to the " +
			"heap and use depth 1; WM prefers moderate width with depth growing with budget",
	}
	const lambda = 1e-6
	const k = 128
	gen := classificationStream("rcv1", opt.Seed)
	examples := gen.Take(opt.Examples)
	ref := trainReference(examples, lambda)
	truth := ref.Weights()

	for _, budget := range memory.StandardBudgets {
		configs := memory.EnumerateSketchConfigs(budget, 8)
		for _, method := range []Method{MethodWM, MethodAWM} {
			best := memory.SketchConfig{}
			bestErr := math.Inf(1)
			for _, cfg := range configs {
				// A heap smaller than K cannot answer the top-K query the
				// metric evaluates (the paper's Table 2 configs all have
				// |S| ≥ 128 for this reason).
				if cfg.Heap < k {
					continue
				}
				// AWM uses depth 1 overwhelmingly; restrict its sweep.
				if method == MethodAWM && cfg.Depth > 2 {
					continue
				}
				var l stream.Learner
				coreCfg := core.Config{
					Width: cfg.Width, Depth: cfg.Depth, HeapSize: cfg.Heap,
					Lambda: lambda, Seed: opt.Seed + 1,
				}
				if method == MethodWM {
					l = core.NewWMSketch(coreCfg)
				} else {
					l = core.NewAWMSketch(coreCfg)
				}
				errs := relErrAtKs(l, examples, truth, []int{k})
				if errs[k] < bestErr {
					bestErr = errs[k]
					best = cfg
				}
			}
			t.AddRow(fmtBudget(budget), string(method),
				fmt.Sprint(best.Heap), fmt.Sprint(best.Width), fmt.Sprint(best.Depth),
				fmtF(bestErr))
		}
	}
	return t
}
