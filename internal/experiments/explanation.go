package experiments

import (
	"fmt"
	"math"
	"sort"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/heavyhitters"
	"wmsketch/internal/linear"
	"wmsketch/internal/memory"
	"wmsketch/internal/metrics"
	"wmsketch/internal/stream"
)

// explanationTopK is the retrieval size used by Figures 8 and 9.
const explanationTopK = 2048

// explanationRun trains all Section 8.1 comparators over one explanation
// stream and returns the retrieved feature sets plus the exact risk tracker.
type explanationRun struct {
	tracker *metrics.RiskTracker
	// retrieved maps each comparator to its top-2048 feature list.
	retrieved map[string][]stream.Weighted
}

func runExplanation(opt Options) *explanationRun {
	gen := datagen.NewExplanation(datagen.DefaultExplanationConfig(opt.Seed))
	const budget = 32 * 1024
	const lambda = 1e-6

	tracker := metrics.NewRiskTracker()
	// Heavy-hitter comparators: Space Saving over positive-class attributes
	// only, and over both classes (Figure 8's top row). Sized to hold 2048
	// candidates within the 32KB budget (2048 × 12B = 24KB ≤ 32KB).
	hhPos := heavyhitters.NewSpaceSaving(explanationTopK)
	hhBoth := heavyhitters.NewSpaceSaving(explanationTopK)
	// Classifier comparators: exact LR and the 32KB AWM-Sketch. A constant
	// learning rate is used here: with 1-sparse encodings each weight
	// converges to the feature's log-odds, and a decaying global rate would
	// starve rare attributes of updates within a laptop-scale stream.
	sched := linear.Constant{Eta0: 0.1}
	lr := linear.NewLogReg(linear.LogRegConfig{
		Lambda: lambda, HeapK: explanationTopK, Schedule: sched})
	awmCfg := memory.PaperAWMConfig(budget)
	awm := core.NewAWMSketch(core.Config{
		Width: awmCfg.Width, Depth: awmCfg.Depth, HeapSize: awmCfg.Heap,
		Lambda: lambda, Seed: opt.Seed + 1, Schedule: sched,
	})

	rows := opt.Examples / 6 // six 1-sparse examples per row
	for i := 0; i < rows; i++ {
		row := gen.Next()
		for _, a := range row.Attrs {
			tracker.Observe(a, row.Y)
			if row.Y > 0 {
				hhPos.Observe(a, 1)
			}
			hhBoth.Observe(a, 1)
		}
		for _, ex := range row.Examples() {
			lr.Update(ex.X, ex.Y)
			awm.Update(ex.X, ex.Y)
		}
	}

	retrieved := map[string][]stream.Weighted{
		"hh_positive": hhToWeighted(hhPos.TopK(explanationTopK)),
		"hh_both":     hhToWeighted(hhBoth.TopK(explanationTopK)),
		"lr_exact":    lr.ExactTopK(explanationTopK),
		"awm":         awm.TopK(explanationTopK),
	}
	return &explanationRun{tracker: tracker, retrieved: retrieved}
}

func hhToWeighted(cs []heavyhitters.Counter) []stream.Weighted {
	out := make([]stream.Weighted, len(cs))
	for i, c := range cs {
		out[i] = stream.Weighted{Index: c.Key, Weight: c.Count}
	}
	return out
}

// RunFig8 reproduces Figure 8: the distribution of exact relative risks
// among the top-2048 features retrieved by heavy-hitter methods versus
// classifier-based methods under a 32KB budget.
func RunFig8(opt Options) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "Relative-risk distribution of top-2048 retrieved features (32KB)",
		Columns: []string{"method", "risk_bin", "fraction"},
		Notes: "expected shape: heavy-hitter methods concentrate near risk≈1 " +
			"(frequent-but-uninformative); classifier methods mass at the extremes",
	}
	run := runExplanation(opt)
	bins := []struct {
		label  string
		lo, hi float64
	}{
		{"[0,0.5)", 0, 0.5},
		{"[0.5,1)", 0.5, 1},
		{"[1,2)", 1, 2},
		{"[2,3)", 2, 3},
		{"[3,5)", 3, 5},
		{"[5,inf)", 5, math.Inf(1)},
	}
	for _, method := range []string{"hh_positive", "hh_both", "lr_exact", "awm"} {
		risks := run.risks(method)
		total := float64(len(risks))
		if total == 0 {
			continue
		}
		for _, b := range bins {
			count := 0
			for _, r := range risks {
				if r >= b.lo && r < b.hi {
					count++
				}
			}
			t.AddRow(method, b.label, fmtF(float64(count)/total))
		}
	}
	return t
}

// risks returns the finite exact relative risks of the method's retrieved
// features.
func (r *explanationRun) risks(method string) []float64 {
	var out []float64
	for _, w := range r.retrieved[method] {
		risk := r.tracker.RelativeRisk(w.Index)
		if math.IsNaN(risk) || math.IsInf(risk, 0) {
			continue
		}
		out = append(out, risk)
	}
	return out
}

// RunFig9 reproduces Figure 9: the Pearson correlation between retrieved
// classifier weights and exact relative risk, for unconstrained LR and the
// 32KB AWM-Sketch. The paper reports 0.95 and 0.91 respectively.
func RunFig9(opt Options) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Correlation of top-2048 weights with relative risk (32KB)",
		Columns: []string{"method", "pearson_weight_vs_risk", "n"},
		Notes:   "expected shape: both strongly positive; AWM slightly below exact LR (paper: 0.95 vs 0.91)",
	}
	run := runExplanation(opt)
	for _, method := range []string{"lr_exact", "awm"} {
		var weights, risks []float64
		for _, w := range run.retrieved[method] {
			risk := run.tracker.RelativeRisk(w.Index)
			if math.IsNaN(risk) || math.IsInf(risk, 0) {
				continue
			}
			weights = append(weights, w.Weight)
			risks = append(risks, risk)
		}
		t.AddRow(method, fmtF(metrics.Pearson(weights, risks)), fmt.Sprint(len(weights)))
	}
	return t
}

// RiskQuantiles summarizes the retrieved risk distributions for tests:
// the fraction of each method's retrieval with risk outside [0.5, 2).
func (r *explanationRun) extremeFraction(method string) float64 {
	risks := r.risks(method)
	if len(risks) == 0 {
		return 0
	}
	sort.Float64s(risks)
	extreme := 0
	for _, risk := range risks {
		if risk < 0.5 || risk >= 2 {
			extreme++
		}
	}
	return float64(extreme) / float64(len(risks))
}
