package experiments

import (
	"fmt"

	"wmsketch/internal/datagen"
)

// RunTable1 reproduces Table 1: summary statistics of the benchmark
// workloads — example counts, feature-space sizes, and the memory cost of
// representing full weight vectors with 32-bit identifiers and weights
// (8 bytes per feature). The paper's originals are listed alongside the
// synthetic substitutes' parameters.
func RunTable1(opt Options) *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Benchmark workload summary (synthetic substitutes)",
		Columns: []string{"dataset", "examples", "features", "space_MB", "substitute_for"},
		Notes:   "space = 8 bytes/feature (id + weight), as in the paper's Table 1",
	}
	type ds struct {
		name     string
		features int
		original string
	}
	list := []ds{
		{"rcv1", datagen.RCV1Like(opt.Seed).Dim(), "Reuters RCV1 (677K ex, 47K feat)"},
		{"url", datagen.URLLike(opt.Seed).Dim(), "Malicious URLs (2.4M ex, 3.2M feat)"},
		{"kdda", datagen.KDDALike(opt.Seed).Dim(), "KDD Cup Algebra (8.4M ex, 20M feat)"},
	}
	for _, d := range list {
		t.AddRow(d.name, fmt.Sprint(opt.Examples), fmt.Sprint(d.features),
			fmt.Sprintf("%.1f", float64(d.features)*8/1e6), d.original)
	}
	// Application streams (Section 8).
	exp := datagen.NewExplanation(datagen.DefaultExplanationConfig(opt.Seed))
	t.AddRow("fec", fmt.Sprint(opt.Examples), fmt.Sprint(exp.NumFeatures()),
		fmt.Sprintf("%.1f", float64(exp.NumFeatures())*8/1e6),
		"Senate/House disbursements (41M rows, 514K feat)")
	ptCfg := datagen.DefaultPacketTraceConfig(opt.Seed)
	t.AddRow("trace", fmt.Sprint(opt.Examples), fmt.Sprint(ptCfg.NumIPs),
		fmt.Sprintf("%.1f", float64(ptCfg.NumIPs)*8/1e6),
		"CAIDA OC48 trace (18.6M pkts, 126K addrs)")
	cCfg := datagen.DefaultCorpusConfig(opt.Seed)
	t.AddRow("corpus", fmt.Sprint(opt.Examples), fmt.Sprint(cCfg.Vocab),
		fmt.Sprintf("%.1f", float64(cCfg.Vocab)*8/1e6),
		"Newswire corpus (2.1B tokens, 47M bigrams)")
	return t
}
