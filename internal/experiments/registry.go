package experiments

import (
	"fmt"
	"sort"
	"time"
)

// nowNanos wraps the monotonic clock for timing helpers.
func nowNanos() int64 { return time.Now().UnixNano() }

// Runner is a harness that produces one experiment table.
type Runner func(Options) *Table

// Registry maps experiment ids to their harnesses, covering every table
// and figure in the paper's evaluation plus the ablation extension.
var Registry = map[string]Runner{
	"table1":   RunTable1,
	"table2":   RunTable2,
	"table3":   RunTable3,
	"fig3":     RunFig3,
	"fig4":     RunFig4,
	"fig5":     RunFig5,
	"fig6":     RunFig6,
	"fig7":     RunFig7,
	"fig8":     RunFig8,
	"fig9":     RunFig9,
	"fig10":    RunFig10,
	"fig11":    RunFig11,
	"ablation": RunAblation,
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r(opt), nil
}
