package experiments

import (
	"fmt"
	"math"
	"sort"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/hashing"
	"wmsketch/internal/linear"
	"wmsketch/internal/metrics"
	"wmsketch/internal/reservoir"
	"wmsketch/internal/stream"
)

// pmiNegatives is the number of synthetic (negative) samples generated per
// true bigram, as in Section 8.3.
const pmiNegatives = 5

// pmiEstimator runs the paper's sparse online PMI estimation pipeline:
// positive examples are bigrams from a sliding window over the token
// stream, negative examples are synthesized from a unigram reservoir, and
// an AWM-Sketch logistic model over hashed pair features converges to the
// (shifted) PMI.
type pmiEstimator struct {
	awm     *core.AWMSketch
	res     *reservoir.Uniform
	window  *datagen.BigramWindow
	tracker *metrics.PMITracker
	pairOf  map[uint32]datagen.TokenPair // eval-only: feature id → pair
}

func newPMIEstimator(width, heap int, lambda float64, seed int64) *pmiEstimator {
	return &pmiEstimator{
		// A constant learning rate lets weights of rare pairs converge to
		// their log-odds within a laptop-scale stream; the decaying global
		// schedule would freeze them near zero (cf. Section 8.3, which uses
		// asymptotic convergence of the weights to the PMI).
		awm: core.NewAWMSketch(core.Config{
			Width: width, Depth: 1, HeapSize: heap,
			Lambda: lambda, Seed: seed,
			Schedule: linear.Constant{Eta0: 0.2},
		}),
		res:     reservoir.NewUniform(4000, seed+1),
		window:  datagen.NewBigramWindow(5),
		tracker: metrics.NewPMITracker(),
		pairOf:  make(map[uint32]datagen.TokenPair),
	}
}

// pairFeature keys the ordered pair, mirroring the paper's double-hashing
// of Murmur-hashed strings.
func (p *pmiEstimator) pairFeature(u, v uint32) uint32 {
	return hashing.HashPair(u, v)
}

// consume processes one token: records exact counts, emits positive bigram
// examples for the current window, and pmiNegatives synthetic examples per
// positive from the unigram reservoir.
func (p *pmiEstimator) consume(tok uint32) {
	p.tracker.ObserveUnigram(tok)
	p.window.Push(tok, func(u, v uint32) {
		p.tracker.ObserveBigram(u, v)
		f := p.pairFeature(u, v)
		p.pairOf[f] = datagen.TokenPair{U: u, V: v}
		p.awm.Update(stream.OneHot(f), 1)
		for i := 0; i < pmiNegatives; i++ {
			nu, ok1 := p.res.Sample()
			nv, ok2 := p.res.Sample()
			if !ok1 || !ok2 {
				continue
			}
			nf := p.pairFeature(nu, nv)
			p.pairOf[nf] = datagen.TokenPair{U: nu, V: nv}
			p.awm.Update(stream.OneHot(nf), -1)
		}
	})
	p.res.Observe(tok)
}

// estimatePMI converts a model weight to a PMI estimate. With pmiNegatives
// synthetic samples per true sample, the logistic weight converges to
// PMI − log(pmiNegatives); the offset is corrected here.
func (p *pmiEstimator) estimatePMI(weight float64) float64 {
	return weight + math.Log(pmiNegatives)
}

// retrieved is one recovered pair with estimated and exact statistics.
type retrievedPair struct {
	Pair      datagen.TokenPair
	EstPMI    float64
	ExactPMI  float64
	Frequency float64
}

// top returns the k recovered pairs with the most positive weights (the
// highest estimated PMI), annotated with exact statistics. Ranking is by
// signed weight: large negative weights belong to pairs that were
// negative-sampled far more often than observed, i.e. the low-PMI extreme,
// which is not what the PMI retrieval use case asks for.
func (p *pmiEstimator) top(k int) []retrievedPair {
	ws := p.awm.TopK(p.awm.ActiveSetSize())
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Weight != ws[j].Weight {
			return ws[i].Weight > ws[j].Weight
		}
		return ws[i].Index < ws[j].Index
	})
	out := make([]retrievedPair, 0, k)
	for _, w := range ws {
		if len(out) == k || w.Weight <= 0 {
			break
		}
		pair, ok := p.pairOf[w.Index]
		if !ok {
			continue
		}
		out = append(out, retrievedPair{
			Pair:      pair,
			EstPMI:    p.estimatePMI(w.Weight),
			ExactPMI:  p.tracker.PMI(pair.U, pair.V),
			Frequency: p.tracker.BigramFrequency(pair.U, pair.V),
		})
	}
	return out
}

// RunTable3 reproduces Table 3: the top pairs recovered by AWM-Sketch PMI
// estimation, with model-estimated PMI against PMI computed from exact
// counts, plus the most frequent pairs in the corpus for contrast.
func RunTable3(opt Options) *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Top recovered pairs: estimated vs exact PMI (width 2^16, heap 1024)",
		Columns: []string{"rank", "pair", "est_pmi", "exact_pmi", "planted"},
		Notes: "expected shape: recovered pairs are high-PMI planted pairs with " +
			"estimates tracking exact values; most-frequent pairs (bottom rows) have near-zero PMI",
	}
	gen := datagen.NewCorpus(datagen.DefaultCorpusConfig(opt.Seed))
	est := newPMIEstimator(1<<16, 1024, 1e-5, opt.Seed+1)
	// Tokens are ~5x cheaper than classifier examples, and PMI convergence
	// needs volume (the paper trained on 77.7M tokens); stretch the stream.
	for i := 0; i < 5*opt.Examples; i++ {
		est.consume(gen.NextToken())
	}
	for rank, rp := range est.top(8) {
		t.AddRow(fmt.Sprint(rank+1),
			fmt.Sprintf("(%d,%d)", rp.Pair.U, rp.Pair.V),
			fmtF(rp.EstPMI), fmtF(rp.ExactPMI),
			fmt.Sprint(gen.IsPlanted(rp.Pair.U, rp.Pair.V)))
	}
	// Contrast: the most frequent pairs (low PMI, as in Table 3's right
	// panel showing ", the" etc.).
	for i, fp := range est.mostFrequent(4) {
		t.AddRow(fmt.Sprintf("freq%d", i+1),
			fmt.Sprintf("(%d,%d)", fp.Pair.U, fp.Pair.V),
			"-", fmtF(fp.ExactPMI), fmt.Sprint(gen.IsPlanted(fp.Pair.U, fp.Pair.V)))
	}
	return t
}

// mostFrequent returns the k most frequent pairs seen, with exact PMI.
func (p *pmiEstimator) mostFrequent(k int) []retrievedPair {
	type fc struct {
		pair datagen.TokenPair
		freq float64
	}
	all := make([]fc, 0, len(p.pairOf))
	for _, pair := range p.pairOf {
		f := p.tracker.BigramFrequency(pair.U, pair.V)
		if f > 0 {
			all = append(all, fc{pair: pair, freq: f})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].freq != all[j].freq {
			return all[i].freq > all[j].freq
		}
		if all[i].pair.U != all[j].pair.U {
			return all[i].pair.U < all[j].pair.U
		}
		return all[i].pair.V < all[j].pair.V
	})
	if k < len(all) {
		all = all[:k]
	}
	out := make([]retrievedPair, len(all))
	for i, a := range all {
		out[i] = retrievedPair{
			Pair:      a.pair,
			ExactPMI:  p.tracker.PMI(a.pair.U, a.pair.V),
			Frequency: a.freq,
		}
	}
	return out
}

// RunFig11 reproduces Figure 11: the median exact frequency and median
// exact PMI of the top-1024 retrieved pairs as the sketch width and λ vary.
// Wider sketches and lighter regularization retrieve rarer, higher-PMI
// pairs.
func RunFig11(opt Options) *Table {
	t := &Table{
		ID:      "fig11",
		Title:   "Median frequency and PMI of retrieved pairs vs width and lambda",
		Columns: []string{"log2_width", "lambda", "median_freq", "median_pmi", "retrieved"},
		Notes: "expected shape: larger widths -> lower median frequency and higher " +
			"median PMI; lower lambda favors rarer pairs",
	}
	widths := []int{10, 12, 14, 16}
	lambdas := []float64{1e-4, 1e-5, 1e-6}
	for _, logW := range widths {
		for _, lambda := range lambdas {
			gen := datagen.NewCorpus(datagen.DefaultCorpusConfig(opt.Seed))
			est := newPMIEstimator(1<<logW, 1024, lambda, opt.Seed+1)
			for i := 0; i < 2*opt.Examples; i++ {
				est.consume(gen.NextToken())
			}
			var freqs, pmis []float64
			for _, rp := range est.top(1024) {
				if rp.Frequency > 0 && !math.IsNaN(rp.ExactPMI) {
					freqs = append(freqs, rp.Frequency)
					pmis = append(pmis, rp.ExactPMI)
				}
			}
			t.AddRow(fmt.Sprint(logW), fmt.Sprintf("%.0e", lambda),
				fmtF(medianOf(freqs)), fmtF(medianOf(pmis)), fmt.Sprint(len(freqs)))
		}
	}
	return t
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return cp[n/2-1]/2 + cp[n/2]/2
}
