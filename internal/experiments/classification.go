package experiments

import (
	"wmsketch/internal/metrics"
)

// RunFig6 reproduces Figure 6: online classification error rate (mistakes
// before update / examples) for every method across memory budgets on the
// three classification datasets, with unconstrained logistic regression as
// the reference line.
func RunFig6(opt Options) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "Online classification error rate vs memory budget",
		Columns: []string{"dataset", "budget", "method", "error_rate"},
		Notes: "expected shape: AWM at or below Hash at every budget, both below " +
			"heavy-hitter methods; LR (unconstrained) is the floor; gaps shrink as budget grows",
	}
	// Per-dataset lambda chosen as in Section 7.3 (lowest achievable error).
	lambdas := map[string]float64{"rcv1": 1e-6, "url": 1e-6, "kdda": 1e-6}
	budgets := []int{2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024}
	for _, ds := range []string{"rcv1", "url", "kdda"} {
		lambda := lambdas[ds]
		gen := classificationStream(ds, opt.Seed)
		examples := gen.Take(opt.Examples)
		// The unconstrained reference is budget-independent; run it once.
		lr := NewLearner(MethodLR, 0, lambda, opt.Seed+1)
		var lrErr metrics.ErrorRate
		for _, ex := range examples {
			lrErr.Record(lr.Predict(ex.X), ex.Y)
			lr.Update(ex.X, ex.Y)
		}
		for _, budget := range budgets {
			for _, m := range ClassificationMethods {
				if m == MethodLR {
					continue
				}
				l := NewLearner(m, budget, lambda, opt.Seed+1)
				var er metrics.ErrorRate
				for _, ex := range examples {
					er.Record(l.Predict(ex.X), ex.Y)
					l.Update(ex.X, ex.Y)
				}
				t.AddRow(ds, fmtBudget(budget), string(m), fmtF(er.Rate()))
			}
			t.AddRow(ds, fmtBudget(budget), string(MethodLR), fmtF(lrErr.Rate()))
		}
	}
	return t
}
