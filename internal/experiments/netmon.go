package experiments

import (
	"fmt"
	"math"
	"sort"

	"wmsketch/internal/baselines"
	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/linear"
	"wmsketch/internal/memory"
	"wmsketch/internal/metrics"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
)

// netmonTopK is the retrieval size of Figure 10.
const netmonTopK = 2048

// RunFig10 reproduces Figure 10: recall of addresses whose inter-stream
// occurrence ratio exceeds a threshold, comparing classifier-based deltoid
// detection (AWM, truncation baselines, unconstrained LR) against the
// paired Count-Min approach of Cormode & Muthukrishnan at 1x and 8x memory.
func RunFig10(opt Options) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Deltoid recall vs log-ratio threshold (32KB)",
		Columns: []string{"threshold_log_ratio", "method", "recall"},
		Notes: "expected shape: AWM ≈ LR ≫ paired CM (even at 8x memory); " +
			"truncation baselines in between",
	}
	const budget = 32 * 1024
	const lambda = 1e-6
	gen := datagen.NewPacketTrace(datagen.DefaultPacketTraceConfig(opt.Seed))
	packets := gen.Take(opt.Examples)

	// Exact per-address counts define ground truth.
	outCount := map[uint32]float64{}
	inCount := map[uint32]float64{}
	for _, p := range packets {
		if p.Outbound {
			outCount[p.IP]++
		} else {
			inCount[p.IP]++
		}
	}

	// Classifier methods treat each packet as a 1-sparse example labeled by
	// stream membership.
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: lambda, HeapK: netmonTopK})
	awmCfg := memory.PaperAWMConfig(budget)
	awm := core.NewAWMSketch(core.Config{
		Width: awmCfg.Width, Depth: awmCfg.Depth, HeapSize: awmCfg.Heap,
		Lambda: lambda, Seed: opt.Seed + 1,
	})
	trun := baselines.NewSimpleTruncation(baselines.Config{
		Budget: memory.TruncationEntries(budget), Lambda: lambda, Seed: opt.Seed + 1})
	ptrun := baselines.NewProbTruncation(baselines.Config{
		Budget: memory.ProbTruncationEntries(budget), Lambda: lambda, Seed: opt.Seed + 1})

	// Paired Count-Min baselines at 1x and 8x the budget; candidate set for
	// ratio retrieval is the set of observed addresses (evaluation-only
	// instrumentation, as in the paper's methodology).
	cm1 := newPairedCM(budget, opt.Seed+2)
	cm8 := newPairedCM(8*budget, opt.Seed+2)

	for _, p := range packets {
		x := stream.OneHot(p.IP)
		y := -1
		if p.Outbound {
			y = 1
		}
		lr.Update(x, y)
		awm.Update(x, y)
		trun.Update(x, y)
		ptrun.Update(x, y)
		cm1.observe(p)
		cm8.observe(p)
	}

	// Candidate universe for evaluation: all observed addresses.
	candidates := make([]uint32, 0, len(outCount)+len(inCount))
	seen := map[uint32]bool{}
	for ip := range outCount {
		seen[ip] = true
		candidates = append(candidates, ip)
	}
	for ip := range inCount {
		if !seen[ip] {
			candidates = append(candidates, ip)
		}
	}
	// Map order is randomized; sort so tie-breaks in the ratio rankings
	// below are reproducible run to run.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	methods := map[string][]uint32{
		"LR":    weightedIndices(lr.ExactTopK(netmonTopK)),
		"Trun":  weightedIndices(trun.TopK(netmonTopK)),
		"PTrun": weightedIndices(ptrun.TopK(netmonTopK)),
		"AWM":   weightedIndices(awm.TopK(netmonTopK)),
		"CM":    cm1.topByRatio(candidates, netmonTopK),
		"CMx8":  cm8.topByRatio(candidates, netmonTopK),
	}

	// Ground-truth relevant sets at each log-ratio threshold, restricted to
	// addresses observed enough times for the ratio to be meaningful.
	thresholds := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5}
	order := []string{"LR", "Trun", "PTrun", "CM", "CMx8", "AWM"}
	for _, th := range thresholds {
		relevant := map[uint32]bool{}
		for ip := range outCount {
			o, i := outCount[ip], inCount[ip]
			if o+i < 20 {
				continue
			}
			if math.Log(o/math.Max(i, 0.5)) >= th {
				relevant[ip] = true
			}
		}
		for _, m := range order {
			t.AddRow(fmt.Sprintf("%.1f", th), m, fmtF(metrics.Recall(methods[m], relevant)))
		}
	}
	return t
}

func weightedIndices(ws []stream.Weighted) []uint32 {
	out := make([]uint32, 0, len(ws))
	for _, w := range ws {
		// Only positively-weighted addresses indicate outbound-heavy
		// deltoids; negative weights indicate the reciprocal side.
		if w.Weight > 0 {
			out = append(out, w.Index)
		}
	}
	return out
}

// pairedCM is the Cormode-Muthukrishnan deltoid baseline: one Count-Min
// sketch per stream, ratios estimated by dividing point queries.
type pairedCM struct {
	out *sketch.CountMin
	in  *sketch.CountMin
}

func newPairedCM(budget int, seed int64) *pairedCM {
	cfg := memory.PairedCMConfig(budget, 4, 0)
	return &pairedCM{
		out: sketch.NewCountMin(cfg.Depth, cfg.Width, seed),
		in:  sketch.NewCountMin(cfg.Depth, cfg.Width, seed+1),
	}
}

func (p *pairedCM) observe(pkt datagen.Packet) {
	if pkt.Outbound {
		p.out.Update(pkt.IP, 1)
	} else {
		p.in.Update(pkt.IP, 1)
	}
}

// topByRatio ranks candidates by estimated out/in ratio and returns the top
// k. CM overestimation of the denominator systematically deflates ratios,
// which is why this baseline underperforms (Section 8.2).
func (p *pairedCM) topByRatio(candidates []uint32, k int) []uint32 {
	type scored struct {
		ip    uint32
		ratio float64
	}
	scoredList := make([]scored, 0, len(candidates))
	for _, ip := range candidates {
		o := p.out.Estimate(ip)
		i := p.in.Estimate(ip)
		if o < 1 {
			continue
		}
		scoredList = append(scoredList, scored{ip: ip, ratio: o / math.Max(i, 0.5)})
	}
	sort.Slice(scoredList, func(a, b int) bool {
		if scoredList[a].ratio != scoredList[b].ratio {
			return scoredList[a].ratio > scoredList[b].ratio
		}
		return scoredList[a].ip < scoredList[b].ip
	})
	if k < len(scoredList) {
		scoredList = scoredList[:k]
	}
	out := make([]uint32, len(scoredList))
	for i, s := range scoredList {
		out[i] = s.ip
	}
	return out
}
