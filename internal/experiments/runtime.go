package experiments

import (
	"fmt"
	"time"

	"wmsketch/internal/stream"
)

// RunFig7 reproduces Figure 7: per-update runtime of each method normalized
// against memory-unconstrained logistic regression, using the
// recovery-optimal configurations across budgets on the rcv1-like dataset.
func RunFig7(opt Options) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "Normalized update runtime vs unconstrained LR (rcv1)",
		Columns: []string{"budget", "method", "ns_per_update", "normalized"},
		Notes: "expected shape: Hash ~2x LR (extra hashing per access); AWM ~2x Hash " +
			"(heap maintenance); WM grows with depth; heavy-hitter baselines in between",
	}
	const lambda = 1e-6
	gen := classificationStream("rcv1", opt.Seed)
	examples := gen.Take(opt.Examples)

	// Baseline: unconstrained LR.
	lrNs := timeUpdates(NewLearner(MethodLR, 0, lambda, opt.Seed+1), examples)

	for _, budget := range []int{2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024} {
		for _, m := range RecoveryMethods {
			l := NewLearner(m, budget, lambda, opt.Seed+1)
			ns := timeUpdates(l, examples)
			t.AddRow(fmtBudget(budget), string(m),
				fmt.Sprintf("%.0f", ns), fmt.Sprintf("%.2f", ns/lrNs))
		}
		t.AddRow(fmtBudget(budget), string(MethodLR),
			fmt.Sprintf("%.0f", lrNs), "1.00")
	}
	return t
}

// timeUpdates trains l on examples and returns mean wall-clock nanoseconds
// per update (including the prediction each update makes internally).
func timeUpdates(l stream.Learner, examples []stream.Example) float64 {
	start := time.Now()
	for _, ex := range examples {
		l.Update(ex.X, ex.Y)
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(len(examples))
}
