// Package hashing provides the hash families used throughout the sketches:
// 3-wise independent tabulation hashing for bucket and sign assignment
// (Appendix B of the paper), and MurmurHash3 for mapping strings to 32-bit
// feature identifiers (Section 8.3).
//
// Tabulation hashing splits a 32-bit key into four bytes and XORs together
// four random 64-bit table entries, one per byte. The resulting family is
// 3-wise independent, which the paper found empirically indistinguishable
// from the O(log(d/δ))-wise independence required by the analysis.
package hashing

import "math/rand"

// tableBytes is the number of byte positions in a 32-bit key.
const tableBytes = 4

// tableSize is the number of entries per byte table.
const tableSize = 256

// Tabulation is a 3-wise independent hash function over 32-bit keys producing
// 64-bit outputs. The zero value is not usable; construct with NewTabulation.
type Tabulation struct {
	tables [tableBytes][tableSize]uint64
}

// NewTabulation returns a tabulation hash seeded deterministically by seed.
func NewTabulation(seed int64) *Tabulation {
	rng := rand.New(rand.NewSource(seed))
	t := &Tabulation{}
	for i := 0; i < tableBytes; i++ {
		for j := 0; j < tableSize; j++ {
			t.tables[i][j] = rng.Uint64()
		}
	}
	return t
}

// Hash returns the 64-bit tabulation hash of key.
func (t *Tabulation) Hash(key uint32) uint64 {
	return t.tables[0][byte(key)] ^
		t.tables[1][byte(key>>8)] ^
		t.tables[2][byte(key>>16)] ^
		t.tables[3][byte(key>>24)]
}

// Sign returns ±1 derived from the top bit of the hash, independent of the
// low bits used for bucket selection.
func (t *Tabulation) Sign(key uint32) float64 {
	if t.Hash(key)>>63 == 1 {
		return -1
	}
	return 1
}

// Bucket returns a bucket index in [0, width) from the low bits of the hash.
// width need not be a power of two; reduction uses the high-quality
// multiply-shift trick on the low 32 bits to avoid modulo bias hot paths.
func (t *Tabulation) Bucket(key uint32, width int) int {
	return int((t.Hash(key) & 0xffffffff) * uint64(width) >> 32)
}

// BucketSign returns both the bucket in [0, width) and the ±1 sign with a
// single hash evaluation. This is the hot path for every sketch update.
func (t *Tabulation) BucketSign(key uint32, width int) (int, float64) {
	h := t.Hash(key)
	b := int((h & 0xffffffff) * uint64(width) >> 32)
	if h>>63 == 1 {
		return b, -1
	}
	return b, 1
}

// Family is a collection of independent tabulation hash functions, one per
// sketch row. Rows are seeded by splitting the base seed.
type Family struct {
	rows []*Tabulation
}

// NewFamily returns depth independent tabulation hashes derived from seed.
func NewFamily(depth int, seed int64) *Family {
	if depth <= 0 {
		panic("hashing: family depth must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]*Tabulation, depth)
	for i := range rows {
		rows[i] = NewTabulation(rng.Int63())
	}
	return &Family{rows: rows}
}

// Depth returns the number of rows in the family.
func (f *Family) Depth() int { return len(f.rows) }

// Row returns the hash function for row j.
func (f *Family) Row(j int) *Tabulation { return f.rows[j] }

// BucketSign returns the bucket and sign for key in row j with width buckets.
func (f *Family) BucketSign(j int, key uint32, width int) (int, float64) {
	return f.rows[j].BucketSign(key, width)
}

// BucketsSigns fills buckets[j] and signs[j] for every row with a single
// hash evaluation per row. This is the hash-once primitive backing the fused
// predict+update hot path: callers record the locations once per (feature,
// example) pair and reuse them for the margin, the gradient write, and the
// post-update estimate. Both slices must have length ≥ Depth().
func (f *Family) BucketsSigns(key uint32, width int, buckets []int32, signs []float64) {
	for j, row := range f.rows {
		b, sign := row.BucketSign(key, width)
		buckets[j] = int32(b)
		signs[j] = sign
	}
}
