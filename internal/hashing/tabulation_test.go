package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTabulationDeterministic(t *testing.T) {
	a := NewTabulation(42)
	b := NewTabulation(42)
	for key := uint32(0); key < 1000; key++ {
		if a.Hash(key) != b.Hash(key) {
			t.Fatalf("same seed produced different hashes for key %d", key)
		}
	}
}

func TestTabulationSeedsDiffer(t *testing.T) {
	a := NewTabulation(1)
	b := NewTabulation(2)
	same := 0
	const n = 10000
	for key := uint32(0); key < n; key++ {
		if a.Hash(key) == b.Hash(key) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided on %d/%d keys", same, n)
	}
}

func TestTabulationBucketRange(t *testing.T) {
	h := NewTabulation(7)
	widths := []int{1, 2, 3, 7, 128, 1000, 1 << 20}
	for _, w := range widths {
		for key := uint32(0); key < 2000; key++ {
			b := h.Bucket(key, w)
			if b < 0 || b >= w {
				t.Fatalf("bucket %d out of range [0,%d) for key %d", b, w, key)
			}
		}
	}
}

func TestTabulationBucketRangeQuick(t *testing.T) {
	h := NewTabulation(13)
	f := func(key uint32, w uint16) bool {
		width := int(w)%4096 + 1
		b := h.Bucket(key, width)
		return b >= 0 && b < width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTabulationSignValues(t *testing.T) {
	h := NewTabulation(3)
	plus, minus := 0, 0
	const n = 100000
	for key := uint32(0); key < n; key++ {
		switch h.Sign(key) {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("sign must be ±1")
		}
	}
	// Signs should be approximately balanced: expect 50% ± 5 sigma.
	dev := math.Abs(float64(plus)-n/2) / math.Sqrt(n/4)
	if dev > 5 {
		t.Fatalf("sign imbalance: %d plus vs %d minus (%.1f sigma)", plus, minus, dev)
	}
}

func TestTabulationBucketUniformity(t *testing.T) {
	h := NewTabulation(99)
	const width = 64
	const n = 64 * 4096
	counts := make([]int, width)
	for key := uint32(0); key < n; key++ {
		counts[h.Bucket(key, width)]++
	}
	// Chi-squared test with width-1 dof; mean chi2 = 63, sd = sqrt(2*63)≈11.2.
	expected := float64(n) / width
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > float64(width-1)+8*math.Sqrt(2*float64(width-1)) {
		t.Fatalf("bucket distribution far from uniform: chi2=%.1f", chi2)
	}
}

func TestTabulationPairwiseCollisions(t *testing.T) {
	// Pairwise independence implies collision probability ~1/width between
	// distinct keys. Check the empirical rate.
	h := NewTabulation(5)
	const width = 256
	const n = 2000
	collisions := 0
	pairs := 0
	buckets := make([]int, n)
	for i := 0; i < n; i++ {
		buckets[i] = h.Bucket(uint32(i*2654435761), width)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if buckets[i] == buckets[j] {
				collisions++
			}
		}
	}
	rate := float64(collisions) / float64(pairs)
	if rate < 0.5/width || rate > 2.0/width {
		t.Fatalf("collision rate %.5f far from 1/%d", rate, width)
	}
}

func TestFamilyRowsIndependent(t *testing.T) {
	f := NewFamily(4, 11)
	if f.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", f.Depth())
	}
	// Rows must hash differently (they are independently seeded).
	same := 0
	for key := uint32(0); key < 1000; key++ {
		if f.Row(0).Hash(key) == f.Row(1).Hash(key) {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("rows 0 and 1 agree on %d/1000 keys", same)
	}
}

func TestFamilyBucketSignMatchesRow(t *testing.T) {
	f := NewFamily(3, 21)
	for j := 0; j < 3; j++ {
		for key := uint32(0); key < 500; key++ {
			b1, s1 := f.BucketSign(j, key, 128)
			b2, s2 := f.Row(j).BucketSign(key, 128)
			if b1 != b2 || s1 != s2 {
				t.Fatalf("row %d key %d: BucketSign mismatch", j, key)
			}
		}
	}
}

func TestFamilyBucketsSignsMatchesPerRow(t *testing.T) {
	f := NewFamily(4, 33)
	buckets := make([]int32, 4)
	signs := make([]float64, 4)
	for key := uint32(0); key < 500; key++ {
		f.BucketsSigns(key, 256, buckets, signs)
		for j := 0; j < 4; j++ {
			b, s := f.BucketSign(j, key, 256)
			if buckets[j] != int32(b) || signs[j] != s {
				t.Fatalf("row %d key %d: BucketsSigns (%d,%g) != BucketSign (%d,%g)",
					j, key, buckets[j], signs[j], b, s)
			}
		}
	}
}

func TestFamilyPanicsOnZeroDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for depth 0")
		}
	}()
	NewFamily(0, 1)
}

func TestBucketSignConsistentWithParts(t *testing.T) {
	h := NewTabulation(77)
	f := func(key uint32) bool {
		b, s := h.BucketSign(key, 512)
		return b == h.Bucket(key, 512) && s == h.Sign(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTabulationHash(b *testing.B) {
	h := NewTabulation(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint32(i))
	}
	_ = sink
}

func BenchmarkTabulationBucketSign(b *testing.B) {
	h := NewTabulation(1)
	var sink int
	for i := 0; i < b.N; i++ {
		bb, _ := h.BucketSign(uint32(i), 4096)
		sink += bb
	}
	_ = sink
}
