package hashing

import (
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x86 32-bit, cross-checked against the
// canonical C++ implementation (smhasher).
func TestMurmur3KnownVectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514e28b7},
		{"", 0xffffffff, 0x81f16f39},
		{"a", 0, 0x3c2569b2},
		{"ab", 0, 0x9bbfd75f},
		{"abc", 0, 0xb3dd93fa},
		{"abcd", 0, 0x43ed676a},
		{"hello", 0, 0x248bfa47},
		{"hello, world", 0, 0x149bbb7f},
		{"The quick brown fox jumps over the lazy dog", 0x9747b28c, 0x2fa826cd},
	}
	for _, c := range cases {
		got := Murmur3_32([]byte(c.data), c.seed)
		if got != c.want {
			t.Errorf("Murmur3_32(%q, %#x) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestMurmur3AllTailLengths(t *testing.T) {
	// Exercise every tail length (0-3 bytes) to cover the fallthrough cases.
	data := []byte("0123456789abcdef")
	seen := map[uint32]bool{}
	for n := 0; n <= len(data); n++ {
		h := Murmur3_32(data[:n], 42)
		if n > 0 && seen[h] {
			t.Errorf("collision for prefix length %d", n)
		}
		seen[h] = true
	}
}

func TestHashStringMatchesBytes(t *testing.T) {
	f := func(s string, seed uint32) bool {
		return HashString(s, seed) == Murmur3_32([]byte(s), seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashStringDeterministic(t *testing.T) {
	if HashString("prime minister", 7) != HashString("prime minister", 7) {
		t.Fatal("HashString not deterministic")
	}
	if HashString("prime minister", 7) == HashString("prime minister", 8) {
		t.Fatal("HashString ignores seed")
	}
}

func TestHashPairOrderSensitive(t *testing.T) {
	if HashPair(1, 2) == HashPair(2, 1) {
		t.Fatal("HashPair must be order sensitive")
	}
}

func TestHashPairSpread(t *testing.T) {
	// Sequential ids should produce well-spread hashes; count low-byte
	// duplicates as a crude dispersion check.
	counts := make([]int, 256)
	const n = 256 * 64
	for i := uint32(0); i < n; i++ {
		counts[byte(HashPair(i, i+1))]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("low byte %d never produced", b)
		}
		if c > 64*4 {
			t.Fatalf("low byte %d over-produced: %d", b, c)
		}
	}
}

func BenchmarkMurmur3Short(b *testing.B) {
	data := []byte("src_ip=10.1.2.3")
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= Murmur3_32(data, uint32(i))
	}
	_ = sink
}
