package hashing

// Murmur3_32 implements the x86 32-bit variant of MurmurHash3. The paper's
// PMI application (Section 8.3) hashes strings to 32-bit identifiers with
// MurmurHash3 before sketching; we reproduce that pipeline exactly.
func Murmur3_32(data []byte, seed uint32) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(data)
	// Body: process 4-byte blocks.
	nblocks := n / 4
	for i := 0; i < nblocks; i++ {
		k := uint32(data[i*4]) | uint32(data[i*4+1])<<8 |
			uint32(data[i*4+2])<<16 | uint32(data[i*4+3])<<24
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
		h = h<<13 | h>>19
		h = h*5 + 0xe6546b64
	}
	// Tail: up to 3 remaining bytes.
	var k uint32
	tail := data[nblocks*4:]
	switch len(tail) {
	case 3:
		k ^= uint32(tail[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(tail[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(tail[0])
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
	}
	// Finalization mix.
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// HashString maps a string to a 32-bit feature identifier using MurmurHash3
// with the given seed. This is the string-keying front end used by the PMI
// and explanation applications.
func HashString(s string, seed uint32) uint32 {
	return Murmur3_32([]byte(s), seed)
}

// HashPair maps an ordered pair of 32-bit identifiers (e.g. a bigram of
// hashed tokens) to a single 32-bit identifier by mixing both halves through
// the Murmur3 finalizer. Used to key bigram features in the PMI application.
func HashPair(a, b uint32) uint32 {
	x := uint64(a)<<32 | uint64(b)
	// 64-bit Murmur3 finalizer (fmix64), then fold to 32 bits.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x) ^ uint32(x>>32)
}
