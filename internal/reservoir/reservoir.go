// Package reservoir implements reservoir sampling: the classic uniform
// reservoir (Vitter's Algorithm R), used by the PMI application to sample
// from the unigram distribution (Section 8.3), and exponential weighted
// reservoir keys (Efraimidis–Spirakis A-ES), used by the Probabilistic
// Truncation baseline (Algorithm 4) to retain features with probability
// proportional to weight magnitude.
package reservoir

import (
	"math"
	"math/rand"
)

// Uniform maintains a uniform random sample of fixed size over a stream.
type Uniform struct {
	capacity int
	seen     int64
	items    []uint32
	rng      *rand.Rand
}

// NewUniform returns an empty reservoir of the given capacity and seed.
func NewUniform(capacity int, seed int64) *Uniform {
	if capacity <= 0 {
		panic("reservoir: capacity must be positive")
	}
	return &Uniform{
		capacity: capacity,
		items:    make([]uint32, 0, capacity),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Observe offers item to the reservoir.
func (r *Uniform) Observe(item uint32) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, item)
		return
	}
	// Replace a random slot with probability capacity/seen.
	if j := r.rng.Int63n(r.seen); j < int64(r.capacity) {
		r.items[j] = item
	}
}

// Sample returns one uniformly random element of the reservoir.
// ok is false when the reservoir is empty.
func (r *Uniform) Sample() (uint32, bool) {
	if len(r.items) == 0 {
		return 0, false
	}
	return r.items[r.rng.Intn(len(r.items))], true
}

// Len returns the current number of stored items.
func (r *Uniform) Len() int { return len(r.items) }

// Seen returns the number of items offered so far.
func (r *Uniform) Seen() int64 { return r.seen }

// Items exposes the reservoir contents (a copy).
func (r *Uniform) Items() []uint32 {
	out := make([]uint32, len(r.items))
	copy(out, r.items)
	return out
}

// Key draws an Efraimidis–Spirakis reservoir key r^(1/w) for an item with
// weight w, using the provided uniform variate u in (0,1). Items with larger
// keys are retained; this yields inclusion probability proportional to
// weight. Weight must be positive.
func Key(u, w float64) float64 {
	if w <= 0 {
		return 0
	}
	return math.Pow(u, 1/w)
}

// Rekey adjusts an existing reservoir key when an item's weight changes from
// oldW to newW without redrawing randomness, per Algorithm 4's update rule
// W[i] ← W[i]^{|oldW/newW|}: the underlying uniform variate is preserved and
// re-exponentiated, keeping inclusion probabilities proportional to the
// current weights.
func Rekey(key, oldW, newW float64) float64 {
	if newW == 0 {
		return 0
	}
	if oldW == 0 {
		return key
	}
	return math.Pow(key, math.Abs(oldW/newW))
}
