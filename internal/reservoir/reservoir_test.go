package reservoir

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformFillsToCapacity(t *testing.T) {
	r := NewUniform(10, 1)
	for i := uint32(0); i < 5; i++ {
		r.Observe(i)
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	for i := uint32(5); i < 100; i++ {
		r.Observe(i)
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (capacity)", r.Len())
	}
	if r.Seen() != 100 {
		t.Fatalf("Seen = %d, want 100", r.Seen())
	}
}

func TestUniformInclusionProbability(t *testing.T) {
	// Each of n items should be retained with probability capacity/n.
	// Run many trials and check the inclusion rate of item 0.
	const capacity = 8
	const n = 64
	const trials = 4000
	hits := 0
	for trial := 0; trial < trials; trial++ {
		r := NewUniform(capacity, int64(trial))
		for i := uint32(0); i < n; i++ {
			r.Observe(i)
		}
		for _, it := range r.Items() {
			if it == 0 {
				hits++
				break
			}
		}
	}
	want := float64(capacity) / n
	got := float64(hits) / trials
	// Binomial sd ≈ sqrt(p(1-p)/trials) ≈ 0.0052; allow 5 sigma.
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("inclusion rate %.4f, want %.4f", got, want)
	}
}

func TestUniformSampleFromContents(t *testing.T) {
	r := NewUniform(4, 2)
	if _, ok := r.Sample(); ok {
		t.Fatal("Sample from empty reservoir should report !ok")
	}
	r.Observe(42)
	for i := 0; i < 10; i++ {
		v, ok := r.Sample()
		if !ok || v != 42 {
			t.Fatalf("Sample = %d,%v want 42,true", v, ok)
		}
	}
}

func TestUniformItemsIsCopy(t *testing.T) {
	r := NewUniform(2, 3)
	r.Observe(1)
	items := r.Items()
	items[0] = 999
	if got := r.Items()[0]; got != 1 {
		t.Fatalf("Items not a copy: internal state mutated to %d", got)
	}
}

func TestUniformPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(0, 1)
}

func TestKeyMonotoneInWeight(t *testing.T) {
	// For a fixed uniform variate, larger weight → larger key, so heavier
	// items survive preferentially.
	f := func(u64 uint32) bool {
		u := (float64(u64) + 1) / (math.MaxUint32 + 2.0) // in (0,1)
		return Key(u, 2) >= Key(u, 1) && Key(u, 10) >= Key(u, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRange(t *testing.T) {
	f := func(u64 uint32, w8 uint8) bool {
		u := (float64(u64) + 1) / (math.MaxUint32 + 2.0)
		w := float64(w8) + 0.5
		k := Key(u, w)
		return k > 0 && k <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Key(0.5, 0) != 0 || Key(0.5, -1) != 0 {
		t.Fatal("non-positive weights must key to 0")
	}
}

func TestRekeyPreservesVariate(t *testing.T) {
	// Rekey(Key(u,w1), w1, w2) must equal Key(u,w2): the uniform variate is
	// carried through the exponent change.
	us := []float64{0.1, 0.37, 0.5, 0.93}
	ws := []float64{0.5, 1, 2, 7}
	for _, u := range us {
		for _, w1 := range ws {
			for _, w2 := range ws {
				got := Rekey(Key(u, w1), w1, w2)
				want := Key(u, w2)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("Rekey(Key(%g,%g),%g,%g) = %g, want %g", u, w1, w1, w2, got, want)
				}
			}
		}
	}
}

func TestRekeyZeroHandling(t *testing.T) {
	if Rekey(0.7, 1, 0) != 0 {
		t.Fatal("Rekey to zero weight must return 0")
	}
	if Rekey(0.7, 0, 1) != 0.7 {
		t.Fatal("Rekey from zero weight must pass key through")
	}
}

func TestWeightedSelectionBias(t *testing.T) {
	// Simulate Algorithm 4's selection: keep the top-1 of two items by
	// reservoir key, one with weight 4 and one with weight 1; the heavy item
	// should win ~ 4/(4+1) = 80% of the time.
	rng := rand.New(rand.NewSource(7))
	const trials = 20000
	heavyWins := 0
	for i := 0; i < trials; i++ {
		kHeavy := Key(rng.Float64(), 4)
		kLight := Key(rng.Float64(), 1)
		if kHeavy > kLight {
			heavyWins++
		}
	}
	rate := float64(heavyWins) / trials
	if math.Abs(rate-0.8) > 0.02 {
		t.Fatalf("heavy win rate %.3f, want ≈0.80", rate)
	}
}
