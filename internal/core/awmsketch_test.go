package core

import (
	"math"
	"math/rand"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

func TestAWMSketchRecoversPlantedWeights(t *testing.T) {
	weights := defaultPlantedWeights()
	gen := newPlanted(1000, 5, weights, 41)
	a := NewAWMSketch(Config{Width: 256, Depth: 1, HeapSize: 128, Lambda: 1e-5, Seed: 43})
	for i := 0; i < 20000; i++ {
		ex := gen.next()
		a.Update(ex.X, ex.Y)
	}
	// All planted features should be in the active set with correct signs.
	for i, want := range weights {
		if !a.InActiveSet(i) {
			t.Errorf("planted feature %d not in active set", i)
			continue
		}
		got := a.Estimate(i)
		if got*want <= 0 {
			t.Errorf("feature %d: estimate %g disagrees in sign with %g", i, got, want)
		}
	}
	top := a.TopK(5)
	found := 0
	for _, e := range top {
		if _, ok := weights[e.Index]; ok {
			found++
		}
	}
	if found < 4 {
		t.Errorf("only %d/5 planted in top-5: %+v", found, top)
	}
}

func TestAWMSketchBeatsWMOnRecovery(t *testing.T) {
	// The headline empirical claim (Section 7.2): under the same memory,
	// AWM recovery error ≤ WM recovery error. Compare summed absolute error
	// on planted weights with matched budgets.
	weights := defaultPlantedWeights()
	sumErr := func(l stream.Learner) float64 {
		gen := newPlanted(2000, 5, weights, 47)
		for i := 0; i < 25000; i++ {
			ex := gen.next()
			l.Update(ex.X, ex.Y)
		}
		total := 0.0
		for i, want := range weights {
			total += math.Abs(l.Estimate(i) - want)
		}
		return total
	}
	// 2KB-style budget: WM = heap 64 + 2×128 sketch; AWM = heap 64 + 1×256.
	wmErr := sumErr(NewWMSketch(Config{Width: 128, Depth: 2, HeapSize: 64, Lambda: 1e-5, Seed: 53}))
	awmErr := sumErr(NewAWMSketch(Config{Width: 256, Depth: 1, HeapSize: 64, Lambda: 1e-5, Seed: 53}))
	if awmErr > wmErr*1.25 {
		t.Fatalf("AWM error %.4f much worse than WM %.4f", awmErr, wmErr)
	}
}

func TestAWMSketchActiveSetExactWithoutCollisedTail(t *testing.T) {
	// When everything fits in the heap, AWM is exact online LR (no sketch
	// involvement) — compare against linear.LogReg.
	const d = 16
	a := NewAWMSketch(Config{Width: 64, Depth: 1, HeapSize: d, Lambda: 1e-4, Seed: 59,
		Schedule: linear.Constant{Eta0: 0.1}})
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-4, Schedule: linear.Constant{Eta0: 0.1}})
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 2000; i++ {
		x := stream.Vector{
			{Index: uint32(rng.Intn(d)), Value: rng.NormFloat64()},
			{Index: uint32(rng.Intn(d)), Value: rng.NormFloat64()},
		}
		y := 1
		if x[0].Value-x[1].Value < 0 {
			y = -1
		}
		a.Update(x, y)
		lr.Update(x, y)
	}
	for i := uint32(0); i < d; i++ {
		got, want := a.Estimate(i), lr.Estimate(i)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("feature %d: AWM %g vs LR %g (should be exact)", i, got, want)
		}
	}
}

func TestAWMSketchEvictionWritesBack(t *testing.T) {
	// Build a tiny heap, force an eviction, and check the evicted feature's
	// weight is approximately recoverable from the sketch afterwards.
	a := NewAWMSketch(Config{Width: 1 << 12, Depth: 1, HeapSize: 2, Seed: 67,
		Schedule: linear.Constant{Eta0: 1.0}})
	// Feature 1 gets weight ~0.5 (one logistic step at margin 0), then
	// feature 2 bigger, then feature 3 biggest forces eviction of the
	// smallest.
	a.Update(stream.OneHot(1), 1) // w1 = 0.5
	a.Update(stream.Vector{{Index: 2, Value: 2}}, 1)
	a.Update(stream.Vector{{Index: 3, Value: 5}}, 1)
	if a.ActiveSetSize() != 2 {
		t.Fatalf("active set size %d, want 2", a.ActiveSetSize())
	}
	if a.InActiveSet(1) {
		t.Fatal("feature 1 (smallest) should have been evicted")
	}
	// Its weight must live on in the sketch.
	got := a.Estimate(1)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("evicted feature estimate %g, want ≈0.5", got)
	}
}

func TestAWMSketchPromotionUsesSketchEstimate(t *testing.T) {
	// A feature that accumulates weight in the sketch and is then promoted
	// must carry its sketched estimate into the heap (w̃ = Query − step).
	a := NewAWMSketch(Config{Width: 1 << 12, Depth: 1, HeapSize: 2, Seed: 71,
		Schedule: linear.Constant{Eta0: 1.0}})
	// Fill the heap with two heavy features.
	a.Update(stream.Vector{{Index: 10, Value: 10}}, 1)
	a.Update(stream.Vector{{Index: 11, Value: 10}}, 1)
	// Feature 5 accumulates in the sketch via small updates.
	for i := 0; i < 40; i++ {
		a.Update(stream.Vector{{Index: 5, Value: 0.2}}, 1)
	}
	w5 := a.Estimate(5)
	if w5 <= 0 {
		t.Fatalf("sketched weight for feature 5 = %g, want positive", w5)
	}
	// A large negative-label update drives a big gradient (the logistic
	// derivative is ≈ −1 at a strongly violated margin), forcing promotion
	// with w̃ = Query(5) − step ≈ w5 − 30.
	a.Update(stream.Vector{{Index: 5, Value: 30}}, -1)
	if !a.InActiveSet(5) {
		t.Fatal("feature 5 not promoted")
	}
	got := a.Estimate(5)
	if got >= 0 {
		t.Fatalf("promoted weight %g, want strongly negative", got)
	}
	if math.Abs(got-(w5-30)) > 1.0 {
		t.Fatalf("promoted weight %g, want ≈ %g (sketched estimate carried over)", got, w5-30)
	}
}

func TestAWMSketchScaleTrickEquivalence(t *testing.T) {
	mk := func(noTrick bool) *AWMSketch {
		return NewAWMSketch(Config{Width: 128, Depth: 1, HeapSize: 32, Lambda: 1e-3,
			Seed: 73, NoScaleTrick: noTrick, Schedule: linear.Constant{Eta0: 0.1}})
	}
	lazy, explicit := mk(false), mk(true)
	gen := newPlanted(500, 4, defaultPlantedWeights(), 79)
	for i := 0; i < 3000; i++ {
		ex := gen.next()
		lazy.Update(ex.X, ex.Y)
		explicit.Update(ex.X, ex.Y)
	}
	for i := uint32(0); i < 500; i++ {
		x, y := lazy.Estimate(i), explicit.Estimate(i)
		if math.Abs(x-y) > 1e-6*(1+math.Abs(y)) {
			t.Fatalf("feature %d: lazy %g vs explicit %g", i, x, y)
		}
	}
}

func TestAWMSketchPredictSplitsHeapAndSketch(t *testing.T) {
	a := NewAWMSketch(Config{Width: 1 << 12, Depth: 1, HeapSize: 1, Seed: 83,
		Schedule: linear.Constant{Eta0: 1.0}})
	a.Update(stream.OneHot(1), 1) // heap: {1: 0.5}
	// Feature 2 is forced to the sketch (heap full, weight smaller).
	a.Update(stream.Vector{{Index: 2, Value: 0.1}}, 1)
	if !a.InActiveSet(1) || a.InActiveSet(2) {
		t.Fatal("unexpected active set membership")
	}
	// Prediction over both features must combine heap and sketch parts.
	pred := a.Predict(stream.Vector{{Index: 1, Value: 1}, {Index: 2, Value: 1}})
	want := a.Estimate(1) + a.Estimate(2)
	if math.Abs(pred-want) > 1e-9 {
		t.Fatalf("Predict = %g, want %g (sum of estimates, depth 1)", pred, want)
	}
}

func TestAWMSketchOnlineErrorBeatsChance(t *testing.T) {
	gen := newPlanted(1000, 5, defaultPlantedWeights(), 89)
	a := NewAWMSketch(Config{Width: 256, Depth: 1, HeapSize: 128, Lambda: 1e-6, Seed: 97})
	mistakes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ex := gen.next()
		if a.Predict(ex.X)*float64(ex.Y) <= 0 {
			mistakes++
		}
		a.Update(ex.X, ex.Y)
	}
	if rate := float64(mistakes) / n; rate > 0.3 {
		t.Fatalf("online error %.3f not far better than chance", rate)
	}
}

func TestAWMSketchRenormalizationStability(t *testing.T) {
	a := NewAWMSketch(Config{Width: 64, Depth: 1, HeapSize: 8, Lambda: 0.5, Seed: 101,
		Schedule: linear.Constant{Eta0: 1.0}})
	for i := 0; i < 500; i++ {
		a.Update(stream.Vector{{Index: uint32(i % 20), Value: 1}}, 1)
	}
	for i := uint32(0); i < 20; i++ {
		if isBad(a.Estimate(i)) {
			t.Fatalf("estimate %d diverged", i)
		}
	}
	if a.Scale() < minScale || a.Scale() > 1 {
		t.Fatalf("scale %g out of range", a.Scale())
	}
}

func TestAWMSketchMemoryBytes(t *testing.T) {
	a := NewAWMSketch(Config{Width: 256, Depth: 1, HeapSize: 128})
	want := 4*256 + 8*128 // = 2048: the paper's 2KB AWM configuration
	if got := a.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestAWMSketchTopKFromActiveSet(t *testing.T) {
	gen := newPlanted(500, 5, defaultPlantedWeights(), 103)
	a := NewAWMSketch(Config{Width: 256, Depth: 1, HeapSize: 64, Lambda: 1e-6, Seed: 107})
	for i := 0; i < 10000; i++ {
		ex := gen.next()
		a.Update(ex.X, ex.Y)
	}
	top := a.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if math.Abs(top[i].Weight) > math.Abs(top[i-1].Weight)+1e-12 {
			t.Fatal("TopK not descending")
		}
	}
}

func BenchmarkAWMSketchUpdate(b *testing.B) {
	gen := newPlanted(100000, 10, defaultPlantedWeights(), 1)
	examples := make([]stream.Example, 4096)
	for i := range examples {
		examples[i] = gen.next()
	}
	a := NewAWMSketch(Config{Width: 2048, Depth: 1, HeapSize: 1024, Lambda: 1e-6, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := examples[i&4095]
		a.Update(ex.X, ex.Y)
	}
}
