package core

import (
	"math"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// AdaGradWMSketch answers the paper's Section 9 open question — "is a
// variable learning rate across features worth the associated memory cost
// in the streaming setting?" — by implementing per-BUCKET adaptive rates:
// alongside each sketch bucket it stores the accumulated squared gradient
// G[j][b] and steps with η₀/√(G[j][b]+ε) (Duchi, Hazan & Singer 2011).
//
// Because buckets, not features, carry the accumulators, the memory
// overhead is exactly one extra value per bucket (2× the sketch array, +4
// bytes per bucket under the cost model) rather than one per feature — the
// same compromise the sketch itself makes. Collisions mean a rare feature
// sharing a bucket with a frequent one also receives the dampened rate;
// the ablation harness quantifies the net effect.
type AdaGradWMSketch struct {
	cfg   Config
	cs    *sketch.CountSketch
	accum [][]float64 // per-bucket Σg², same shape as the sketch
	loss  linear.Loss
	eta0  float64
	sqrtS float64
	t     int64
	heap  *topk.Heap
}

// adaGradEpsilon stabilizes the adaptive denominator.
const adaGradEpsilon = 1e-8

// NewAdaGradWMSketch returns a WM-Sketch with per-bucket adaptive learning
// rates. The Schedule field of cfg supplies only the base rate η₀ (its
// value at t=1); ℓ2 decay is applied explicitly per update since the lazy
// global-scale trick does not commute with per-bucket step sizes.
func NewAdaGradWMSketch(cfg Config) *AdaGradWMSketch {
	cfg.fill()
	cs := sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed)
	accum := make([][]float64, cfg.Depth)
	for j := range accum {
		accum[j] = make([]float64, cfg.Width)
	}
	return &AdaGradWMSketch{
		cfg:   cfg,
		cs:    cs,
		accum: accum,
		loss:  cfg.Loss,
		eta0:  cfg.Schedule.Rate(1),
		sqrtS: math.Sqrt(float64(cfg.Depth)),
		heap:  topk.New(cfg.HeapSize),
	}
}

// Predict returns the margin zᵀRx.
func (w *AdaGradWMSketch) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		dot += f.Value * w.cs.SumSigned(f.Index)
	}
	return dot / w.sqrtS
}

// Update applies one adaptive gradient step.
func (w *AdaGradWMSketch) Update(x stream.Vector, y int) {
	ys := sgn(y)
	w.t++
	margin := ys * w.Predict(x)
	g := w.loss.Deriv(margin)

	if w.cfg.Lambda > 0 {
		// Explicit decay at the base rate; O(k) per update by design.
		decay := 1 - w.eta0/math.Sqrt(float64(w.t))*w.cfg.Lambda
		w.cs.Scale(decay)
		w.heap.ScaleWeights(decay)
	}
	if g != 0 {
		base := ys * g / w.sqrtS
		for _, f := range x {
			if f.Value == 0 {
				continue
			}
			for j := 0; j < w.cfg.Depth; j++ {
				b, sign := w.cs.Hashes().BucketSign(j, f.Index, w.cfg.Width)
				grad := base * f.Value * sign
				w.accum[j][b] += grad * grad
				step := w.eta0 / (math.Sqrt(w.accum[j][b]) + adaGradEpsilon)
				w.cs.Row(j)[b] -= step * grad
			}
		}
	}
	for _, f := range x {
		w.offerToHeap(f.Index)
	}
}

func (w *AdaGradWMSketch) offerToHeap(i uint32) {
	est := w.Estimate(i)
	if w.heap.Contains(i) {
		w.heap.UpdateMagnitude(i, est)
		return
	}
	if !w.heap.Full() {
		w.heap.InsertMagnitude(i, est)
		return
	}
	if min, _ := w.heap.Min(); absf(est) > min.Score {
		w.heap.PopMin()
		w.heap.InsertMagnitude(i, est)
	}
}

// Estimate returns the Count-Sketch median recovery of feature i's weight.
func (w *AdaGradWMSketch) Estimate(i uint32) float64 {
	return w.sqrtS * w.cs.Estimate(i)
}

// TopK returns the k heaviest tracked features with fresh estimates.
func (w *AdaGradWMSketch) TopK(k int) []stream.Weighted {
	entries := w.heap.Entries()
	out := make([]stream.Weighted, 0, len(entries))
	for _, e := range entries {
		out = append(out, stream.Weighted{Index: e.Key, Weight: w.Estimate(e.Key)})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Steps returns the number of updates applied.
func (w *AdaGradWMSketch) Steps() int64 { return w.t }

// MemoryBytes charges the sketch buckets, the same-shaped accumulator
// array, and the heap.
func (w *AdaGradWMSketch) MemoryBytes() int {
	return 2*w.cs.MemoryBytes() + w.heap.MemoryBytes(false)
}

var _ stream.Learner = (*AdaGradWMSketch)(nil)
