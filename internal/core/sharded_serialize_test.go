package core

import (
	"bytes"
	"sync"
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// Checkpoint/restore tests for the Sharded learner: per-shard state must
// survive a WriteTo/LoadSharded round trip exactly, including while training
// continues on other goroutines.

func TestShardedCheckpointRoundTrip(t *testing.T) {
	for _, variant := range []ShardVariant{ShardAWM, ShardWM} {
		cfg := Config{Width: 512, Depth: 1, HeapSize: 64, Lambda: 1e-5, Seed: 21}
		s := NewSharded(cfg, ShardedOptions{Workers: 3, SyncEvery: -1, Variant: variant})
		gen := datagen.RCV1Like(8)
		data := gen.Take(3000)
		for i := 0; i+64 <= len(data); i += 64 {
			s.UpdateBatch(data[i : i+64])
		}

		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("variant %d: WriteTo: %v", variant, err)
		}
		s.Sync() // learner must still be live after a checkpoint

		got, err := LoadSharded(bytes.NewReader(buf.Bytes()), nil, nil, ShardedOptions{})
		if err != nil {
			t.Fatalf("variant %d: LoadSharded: %v", variant, err)
		}
		defer got.Close()

		if got.Steps() != s.Steps() {
			t.Errorf("variant %d: steps %d != %d", variant, got.Steps(), s.Steps())
		}
		for i := uint32(0); i < 2048; i++ {
			if g, w := got.Estimate(i), s.Estimate(i); g != w {
				t.Fatalf("variant %d: Estimate(%d) = %v, want %v", variant, i, g, w)
			}
		}
		probe := gen.Next().X
		if g, w := got.Predict(probe), s.Predict(probe); g != w {
			t.Fatalf("variant %d: Predict = %v, want %v", variant, g, w)
		}
		gotTop, wantTop := got.TopK(16), s.TopK(16)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("variant %d: TopK lengths %d vs %d", variant, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("variant %d: TopK[%d] = %+v, want %+v", variant, i, gotTop[i], wantTop[i])
			}
		}

		// The restored learner must keep training.
		got.Update(probe, 1)
		got.Sync()
		s.Close()
	}
}

// TestShardedCheckpointAfterClose covers the quiescent path: a closed
// learner serializes without the freeze handshake.
func TestShardedCheckpointAfterClose(t *testing.T) {
	cfg := Config{Width: 128, Depth: 2, HeapSize: 16, Lambda: 0, Seed: 5}
	s := NewSharded(cfg, ShardedOptions{Workers: 2, SyncEvery: -1})
	gen := datagen.RCV1Like(3)
	for _, ex := range gen.Take(500) {
		s.Update(ex.X, ex.Y)
	}
	s.Close()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSharded(&buf, nil, nil, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	for i := uint32(0); i < 512; i++ {
		if g, w := got.Estimate(i), s.Estimate(i); g != w {
			t.Fatalf("Estimate(%d) = %v, want %v", i, g, w)
		}
	}
}

// TestShardedCheckpointConcurrentWithUpdates exercises the freeze handshake
// under contention: checkpoints interleave with concurrent Update callers
// and must neither deadlock nor corrupt state (-race covers the rest).
func TestShardedCheckpointConcurrentWithUpdates(t *testing.T) {
	cfg := Config{Width: 256, Depth: 1, HeapSize: 32, Lambda: 1e-6, Seed: 2}
	s := NewSharded(cfg, ShardedOptions{Workers: 2, SyncEvery: -1})
	defer s.Close()
	gen := datagen.RCV1Like(4)
	data := gen.Take(2000)

	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < len(data); i += 2 {
				s.Update(data[i].X, data[i].Y)
			}
		}(p)
	}
	for c := 0; c < 5; c++ {
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Errorf("checkpoint %d: %v", c, err)
		}
		got, err := LoadSharded(&buf, nil, nil, ShardedOptions{})
		if err != nil {
			t.Fatalf("checkpoint %d: %v", c, err)
		}
		got.Close()
	}
	wg.Wait()
}

func TestShardedHogwildCheckpointUnsupported(t *testing.T) {
	cfg := Config{Width: 128, Depth: 1, HeapSize: 16, Lambda: 0, Seed: 1}
	s := NewSharded(cfg, ShardedOptions{Workers: 2, Hogwild: true, SyncEvery: -1})
	defer s.Close()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err == nil {
		t.Error("hogwild checkpoint must error")
	}
	if _, err := LoadSharded(&buf, nil, nil, ShardedOptions{Hogwild: true}); err == nil {
		t.Error("hogwild restore must error")
	}
}

func TestLoadShardedRejectsCorruptHeader(t *testing.T) {
	cfg := Config{Width: 64, Depth: 1, HeapSize: 8, Lambda: 0, Seed: 1}
	s := NewSharded(cfg, ShardedOptions{Workers: 1, SyncEvery: -1})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	blob := buf.Bytes()

	// Implausible worker count (offset 12 = magic+version+variant).
	bad := append([]byte(nil), blob...)
	bad[12], bad[13], bad[14], bad[15] = 0xff, 0xff, 0xff, 0x7f
	if _, err := LoadSharded(bytes.NewReader(bad), nil, nil, ShardedOptions{}); err == nil {
		t.Error("implausible worker count must be rejected")
	}
	// Truncated model payload.
	if _, err := LoadSharded(bytes.NewReader(blob[:len(blob)-9]), nil, nil, ShardedOptions{}); err == nil {
		t.Error("truncated shard payload must be rejected")
	}
}

var _ stream.Learner = (*Sharded)(nil)
