package core

import (
	"fmt"
	"math"
	"sort"

	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// Parameter mixing — the paper's structural argument for distributed
// training: Count-Sketches are linear projections, so the weighted average
// of independently trained sketches is exactly the sketch of the weighted
// average of the underlying models. Sharded uses this across cores; the
// cluster subsystem (internal/cluster) uses the same primitive across
// machines, weighting each node's model by its observed example count so a
// node that saw twice the stream contributes twice the mass.

// Snapshot is a consistent, immutable copy of one learner's model state:
// the Count-Sketch with the active set written back, a global scale
// multiplier, the heavy-hitter candidates at true scale, and the number of
// examples the model has observed. Snapshots are the unit of merging
// everywhere — shard → process view, node → cluster view — and must be
// treated as read-only by every holder.
//
// The model weight of feature i is √depth·Scale·CS.Estimate(i). Keeping
// the lazy ℓ2-decay scale OUT of the buckets matters for replication:
// decay multiplies every nonzero bucket on every step, so a scale-folded
// sketch differs everywhere between any two versions and bucket-level
// deltas degenerate to full snapshots. In raw space only gradient-touched
// buckets change, and the scale travels as one float.
type Snapshot struct {
	// Origin identifies the sub-stream this model was trained on (a shard
	// index, a cluster node id). MixSnapshots canonicalizes the summation
	// order by Origin, which is what makes mixing order-independent bit for
	// bit: floating-point addition commutes but does not associate, so a
	// deterministic order is the only way two replicas mixing the same set
	// arrive at identical buckets.
	Origin string
	// CS is the raw sketch (active set written back, decay not folded).
	CS *sketch.CountSketch
	// Scale is the global decay multiplier; 0 is treated as 1 so that
	// hand-built snapshots of scale-free sketches stay valid.
	Scale float64
	// Heavy holds the heavy-weight candidates, raw like the buckets: the
	// model weight of entry e is Scale·e.Weight. (True-scale weights would
	// change on every decay step, which would make heavy-list deltas dense
	// for the same reason scale-folded buckets would.)
	Heavy []stream.Weighted
	// Steps is the number of examples observed; it is the snapshot's mixing
	// weight.
	Steps int64
	// WeightFactor scales the snapshot's mixing weight multiplicatively
	// (effective weight = Steps·WeightFactor). 0 means unset and is treated
	// as 1, so hand-built snapshots stay valid. The cluster layer uses
	// factors in (0,1) to fade a departed origin out of the merged view
	// (origin GC) instead of letting its frozen example count weigh in
	// forever; a snapshot the caller wants fully excluded should simply not
	// be passed.
	WeightFactor float64
}

// scaleOr1 returns the snapshot's scale with the zero value defaulted.
func (sn *Snapshot) scaleOr1() float64 {
	if sn.Scale == 0 {
		return 1
	}
	return sn.Scale
}

// factorOr1 returns the snapshot's weight factor with the zero value
// defaulted.
func (sn *Snapshot) factorOr1() float64 {
	if sn.WeightFactor == 0 {
		return 1
	}
	return sn.WeightFactor
}

// Snapshotter is implemented by learners that can export their model state
// for merging. All core learners implement it.
type Snapshotter interface {
	ModelSnapshot() (Snapshot, error)
}

// MixOptions fixes the sketch geometry a mix must agree on.
type MixOptions struct {
	Depth, Width int
	Seed         int64
	// HeapSize caps the merged top-weight list.
	HeapSize int
}

// Mixed is an immutable model produced by parameter mixing. All methods
// are read-only and safe for concurrent use; Sharded serves queries from
// one, and cluster nodes serve queries from one mixed over every known
// node's snapshot.
type Mixed struct {
	cs    *sketch.CountSketch
	sqrtS float64
	top   []stream.Weighted // descending |weight|, ≤ HeapSize entries
	// exact holds mixed heavy-key weights, preferred over the
	// (collision-noisier) merged-sketch median query when present.
	exact map[uint32]float64
}

// EmptyMixed returns the zero model of the given geometry: every estimate
// is 0. It is the well-defined answer before any snapshot exists.
func EmptyMixed(opt MixOptions) *Mixed {
	return &Mixed{
		cs:    sketch.NewCountSketch(opt.Depth, opt.Width, opt.Seed),
		sqrtS: math.Sqrt(float64(opt.Depth)),
	}
}

// MixSnapshots parameter-mixes model snapshots, weighting each by its
// example count: the result estimates the model a single learner would
// have reached on the concatenation of the sub-streams (Section 9's
// distributed extension). Snapshots with zero steps (or a nil sketch)
// contribute nothing and are skipped; mixing none yields the zero model.
//
// The summation order is canonicalized by Snapshot.Origin, so the result
// is bit-wise independent of the order snapshots are passed in. When all
// live snapshots report identical step counts the weights cancel and the
// arithmetic reduces to the plain average (sum, then one scale by 1/K),
// bit-identical to unweighted merging.
//
// Inputs are never mutated; the mixed sketch is freshly allocated.
func MixSnapshots(snaps []Snapshot, opt MixOptions) (*Mixed, error) {
	live := make([]Snapshot, 0, len(snaps))
	for _, sn := range snaps {
		if sn.Steps > 0 && sn.CS != nil && sn.factorOr1() > 0 {
			live = append(live, sn)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].Origin < live[j].Origin })

	sqrtS := math.Sqrt(float64(opt.Depth))
	if len(live) == 0 {
		return EmptyMixed(opt), nil
	}

	// Weights: example counts scaled by the per-snapshot factor, except that
	// the all-equal case uses 1 so the equal-weight mix stays bit-identical
	// to the historical unweighted average (w·x/(K·w) and x/K differ in the
	// last ulp).
	effective := func(sn Snapshot) float64 {
		return float64(sn.Steps) * sn.factorOr1()
	}
	equal := true
	for _, sn := range live[1:] {
		if effective(sn) != effective(live[0]) {
			equal = false
			break
		}
	}
	weight := func(sn Snapshot) float64 {
		if equal {
			return 1
		}
		return effective(sn)
	}
	var totalW float64
	for _, sn := range live {
		totalW += weight(sn)
	}

	// Mixed heavy-candidate weights, computed against the per-snapshot
	// folded sketches: for each candidate key, the weighted average over
	// snapshots of the snapshot's exact heavy weight where present and its
	// sketch estimate where not.
	heavyVal := make([]map[uint32]float64, len(live))
	for i, sn := range live {
		m := make(map[uint32]float64, len(sn.Heavy))
		for _, hv := range sn.Heavy {
			m[hv.Index] = hv.Weight
		}
		heavyVal[i] = m
	}
	exact := make(map[uint32]float64)
	for _, sn := range live {
		for _, hv := range sn.Heavy {
			k := hv.Index
			if _, done := exact[k]; done {
				continue
			}
			sum := 0.0
			for i, other := range live {
				var v float64
				if raw, ok := heavyVal[i][k]; ok {
					v = other.scaleOr1() * raw
				} else {
					v = sqrtS * (other.scaleOr1() * other.CS.Estimate(k))
				}
				sum += weight(other) * v
			}
			exact[k] = sum / totalW
		}
	}

	merged := sketch.NewCountSketch(opt.Depth, opt.Width, opt.Seed)
	for _, sn := range live {
		// The contribution coefficient folds the snapshot's decay scale
		// into the mixing weight (model = Scale·CS); the normalizer stays
		// Σweights, since the scale is part of the model, not its mass.
		if err := merged.AddScaled(sn.CS, weight(sn)*sn.scaleOr1()); err != nil {
			return nil, fmt.Errorf("core: mix %q: %w", sn.Origin, err)
		}
	}
	if totalW != 1 {
		merged.Scale(1 / totalW)
	}

	top := make([]stream.Weighted, 0, len(exact))
	for k, v := range exact {
		top = append(top, stream.Weighted{Index: k, Weight: v})
	}
	stream.SortWeighted(top)
	if opt.HeapSize > 0 && len(top) > opt.HeapSize {
		top = top[:opt.HeapSize]
	}
	return &Mixed{cs: merged, sqrtS: sqrtS, top: top, exact: exact}, nil
}

// Estimate returns the mixed model's weight estimate for feature i.
func (m *Mixed) Estimate(i uint32) float64 {
	if w, ok := m.exact[i]; ok {
		return w
	}
	return m.sqrtS * m.cs.Estimate(i)
}

// Predict evaluates the margin wᵀx under the mixed model.
func (m *Mixed) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		dot += f.Value * m.cs.SumSigned(f.Index)
	}
	return dot / m.sqrtS
}

// TopK returns the k heaviest features of the mixed model.
func (m *Mixed) TopK(k int) []stream.Weighted {
	if k > len(m.top) {
		k = len(m.top)
	}
	out := make([]stream.Weighted, k)
	copy(out, m.top[:k])
	return out
}

// Sketch exposes the merged Count-Sketch read-only.
func (m *Mixed) Sketch() *sketch.CountSketch { return m.cs }

// ---- Snapshotter implementations ----

// ModelSnapshot implements Snapshotter: a raw deep copy plus the current
// decay scale, so that version-to-version deltas stay sparse.
func (w *WMSketch) ModelSnapshot() (Snapshot, error) {
	return Snapshot{CS: w.cs.Clone(), Scale: w.scale, Heavy: rawHeapWeights(w.heap.Entries()), Steps: w.t}, nil
}

// ModelSnapshot implements Snapshotter: a raw deep copy with the active
// set written back, plus the current decay scale.
func (a *AWMSketch) ModelSnapshot() (Snapshot, error) {
	return Snapshot{CS: a.rawSketch(), Scale: a.scale, Heavy: rawHeapWeights(a.active.Entries()), Steps: a.t}, nil
}

// rawHeapWeights converts heap entries to unscaled Weighted pairs (the
// decay scale travels separately on Snapshot.Scale).
func rawHeapWeights(entries []topk.Entry) []stream.Weighted {
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight}
	}
	return out
}

// ModelSnapshot snapshots the wrapped learner under the read lock. It
// errors when the wrapped learner cannot export its state.
func (c *Concurrent) ModelSnapshot() (Snapshot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.l.(Snapshotter)
	if !ok {
		return Snapshot{}, fmt.Errorf("core: learner %T cannot snapshot its model", c.l)
	}
	return s.ModelSnapshot()
}

// ModelSnapshot refreshes the merged view (reflecting every example routed
// before the call) and returns it as a snapshot: the node-level model the
// cluster layer replicates. The returned sketch is the live immutable view
// and must not be mutated.
func (s *Sharded) ModelSnapshot() (Snapshot, error) {
	// Capture the routed-update counter BEFORE the sync: the refreshed view
	// reflects at least these examples, so the snapshot's step count can
	// never claim examples its state lacks. (The opposite order would let a
	// concurrently-routed tail inflate the version and permanently suppress
	// the later publish that actually carries those examples.)
	steps := s.pending.Load()
	if !s.closed.Load() {
		s.Sync()
	}
	v := s.currentView()
	// The merged view is already at true scale. Its buckets shift a little
	// on every re-merge, so sharded-backed cluster nodes ship full frames
	// more often than single-model ones; see CLUSTER.md.
	return Snapshot{CS: v.cs, Scale: 1, Heavy: v.top, Steps: steps}, nil
}

var (
	_ Snapshotter = (*WMSketch)(nil)
	_ Snapshotter = (*AWMSketch)(nil)
	_ Snapshotter = (*Concurrent)(nil)
	_ Snapshotter = (*Sharded)(nil)
)
