package core

import (
	"fmt"
	"io"
	"sync"

	"wmsketch/internal/stream"
)

// Concurrent wraps any Learner with a reader/writer lock so that one
// writer (the update path) and many readers (Estimate/TopK/Predict
// queries) can share a sketch safely across goroutines. Section 9 notes
// that sketched gradient updates tolerate Hogwild-style lock-free
// execution; this wrapper is the conservative, race-free counterpart —
// the right default for a library, with the lock-free mode left as an
// opt-in research configuration.
type Concurrent struct {
	mu sync.RWMutex
	l  stream.Learner
}

// NewConcurrent wraps l.
func NewConcurrent(l stream.Learner) *Concurrent {
	if l == nil {
		panic("core: nil learner")
	}
	return &Concurrent{l: l}
}

// Update applies one gradient step under the write lock.
func (c *Concurrent) Update(x stream.Vector, y int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.l.Update(x, y)
}

// Predict evaluates the margin under the read lock.
func (c *Concurrent) Predict(x stream.Vector) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.l.Predict(x)
}

// Estimate queries one weight under the read lock.
func (c *Concurrent) Estimate(i uint32) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.l.Estimate(i)
}

// TopK retrieves the heaviest weights under the read lock.
func (c *Concurrent) TopK(k int) []stream.Weighted {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.l.TopK(k)
}

// WriteTo checkpoints the wrapped learner under the read lock (writers are
// excluded, concurrent queries are not). It errors when the wrapped learner
// is not serializable.
func (c *Concurrent) WriteTo(w io.Writer) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	wt, ok := c.l.(io.WriterTo)
	if !ok {
		return 0, fmt.Errorf("core: learner %T is not serializable", c.l)
	}
	return wt.WriteTo(w)
}

// Steps reports the wrapped learner's update count when it exposes one
// (all learners in core do), and 0 otherwise.
func (c *Concurrent) Steps() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if s, ok := c.l.(interface{ Steps() int64 }); ok {
		return s.Steps()
	}
	return 0
}

// MemoryBytes reports the wrapped learner's footprint.
func (c *Concurrent) MemoryBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.l.MemoryBytes()
}

var _ stream.Learner = (*Concurrent)(nil)
