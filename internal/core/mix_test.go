package core

import (
	"fmt"
	"math/rand"
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

func mixTestConfig() Config {
	return Config{Width: 512, Depth: 1, HeapSize: 64, Lambda: 1e-6, Seed: 11}
}

func snapshotOf(t *testing.T, l Snapshotter, origin string) Snapshot {
	t.Helper()
	sn, err := l.ModelSnapshot()
	if err != nil {
		t.Fatalf("ModelSnapshot(%s): %v", origin, err)
	}
	sn.Origin = origin
	return sn
}

func requireSameMixed(t *testing.T, a, b *Mixed, probes []uint32, label string) {
	t.Helper()
	for _, i := range probes {
		if ea, eb := a.Estimate(i), b.Estimate(i); ea != eb {
			t.Fatalf("%s: Estimate(%d) = %v vs %v", label, i, ea, eb)
		}
	}
	ta, tb := a.TopK(64), b.TopK(64)
	if len(ta) != len(tb) {
		t.Fatalf("%s: TopK lengths %d vs %d", label, len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("%s: TopK[%d] = %v vs %v", label, i, ta[i], tb[i])
		}
	}
}

// TestMixOrderIndependence is the core replication property: two replicas
// that mix the same set of snapshots must agree bit for bit, no matter in
// which order gossip delivered them. MixSnapshots canonicalizes by Origin,
// so every permutation of the input must produce an identical model.
func TestMixOrderIndependence(t *testing.T) {
	cfg := mixTestConfig()
	opt := MixOptions{Depth: cfg.Depth, Width: cfg.Width, Seed: cfg.Seed, HeapSize: cfg.HeapSize}

	// Three learners with deliberately unequal example counts so the
	// weighted (non-uniform) path is exercised.
	sizes := []int{1500, 700, 2600}
	snaps := make([]Snapshot, len(sizes))
	gen := datagen.RCV1Like(5)
	for i, n := range sizes {
		l := NewAWMSketch(cfg)
		for _, ex := range gen.Take(n) {
			l.Update(ex.X, ex.Y)
		}
		snaps[i] = snapshotOf(t, l, fmt.Sprintf("node-%c", 'a'+i))
	}

	probes := make([]uint32, 200)
	for i := range probes {
		probes[i] = uint32(i * 37)
	}

	ref, err := MixSnapshots(snaps, opt)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		shuffled := []Snapshot{snaps[p[0]], snaps[p[1]], snaps[p[2]]}
		got, err := MixSnapshots(shuffled, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameMixed(t, ref, got, probes, fmt.Sprintf("perm %v", p))
	}
}

// TestMixEqualWeightsMatchSequentialOnSharedStream: learners trained on the
// *same* stream hold identical models, so mixing K of them must reproduce
// the sequential reference model exactly — (x+x)/2 and any power-of-two
// replication is exact in binary floating point. The reference serving
// view is the sequential model's own snapshot mixed alone (for AWM models
// the folded snapshot legitimately differs from live tail queries, because
// folding writes the active set back into shared buckets).
func TestMixEqualWeightsMatchSequentialOnSharedStream(t *testing.T) {
	cfg := mixTestConfig()
	opt := MixOptions{Depth: cfg.Depth, Width: cfg.Width, Seed: cfg.Seed, HeapSize: cfg.HeapSize}
	data := datagen.RCV1Like(9).Take(3000)

	seq := NewAWMSketch(cfg)
	for _, ex := range data {
		seq.Update(ex.X, ex.Y)
	}
	ref, err := MixSnapshots([]Snapshot{snapshotOf(t, seq, "seq")}, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 4} {
		snaps := make([]Snapshot, k)
		for i := range snaps {
			l := NewAWMSketch(cfg)
			for _, ex := range data {
				l.Update(ex.X, ex.Y)
			}
			snaps[i] = snapshotOf(t, l, fmt.Sprintf("replica-%d", i))
		}
		mixed, err := MixSnapshots(snaps, opt)
		if err != nil {
			t.Fatal(err)
		}
		probes := make([]uint32, 2048)
		for i := range probes {
			probes[i] = uint32(i)
		}
		requireSameMixed(t, ref, mixed, probes, fmt.Sprintf("k=%d", k))
		for _, ex := range data[:100] {
			if got, want := mixed.Predict(ex.X), ref.Predict(ex.X); got != want {
				t.Fatalf("k=%d: Predict diverges: %v vs %v", k, got, want)
			}
		}
		// The exact heavy-key path must also reproduce the sequential
		// model's own active-set weights.
		for _, e := range seq.TopK(16) {
			if got := mixed.Estimate(e.Index); got != e.Weight {
				t.Fatalf("k=%d: heavy Estimate(%d) = %v, sequential %v", k, e.Index, got, e.Weight)
			}
		}
	}
}

// TestMixWeightsAreExampleCounts verifies the weighting semantics: a
// snapshot with 2n steps must count exactly like two identical snapshots
// of n steps each. With power-of-two counts every weight multiply is an
// exact scaling, so 2048·a + 1024·b over total 3072 and (a + a + b)/3 are
// the same bit pattern — which is what "weighted averaging by observed
// example count" means operationally.
func TestMixWeightsAreExampleCounts(t *testing.T) {
	cfg := mixTestConfig()
	opt := MixOptions{Depth: cfg.Depth, Width: cfg.Width, Seed: cfg.Seed, HeapSize: cfg.HeapSize}
	gen := datagen.RCV1Like(13)

	a := NewAWMSketch(cfg)
	for _, ex := range gen.Take(2048) {
		a.Update(ex.X, ex.Y)
	}
	b := NewAWMSketch(cfg)
	for _, ex := range gen.Take(1024) {
		b.Update(ex.X, ex.Y)
	}

	snapA := snapshotOf(t, a, "a")
	snapB := snapshotOf(t, b, "b")

	weighted, err := MixSnapshots([]Snapshot{snapA, snapB}, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Split a's mass into two half-weight copies under distinct origins that
	// keep the canonical order (a1, a2, b).
	halfA1, halfA2 := snapA, snapA
	halfA1.Origin, halfA1.Steps = "a1", 1024
	halfA2.Origin, halfA2.Steps = "a2", 1024
	duplicated, err := MixSnapshots([]Snapshot{halfA1, halfA2, snapB}, opt)
	if err != nil {
		t.Fatal(err)
	}
	probes := make([]uint32, 500)
	for i := range probes {
		probes[i] = uint32(i * 13)
	}
	requireSameMixed(t, weighted, duplicated, probes, "2n vs n+n")
}

// TestMixSkipsEmptyAndZeroStepSnapshots: idle nodes must not dilute the
// mix, and mixing nothing must be the well-defined zero model.
func TestMixSkipsEmptyAndZeroStepSnapshots(t *testing.T) {
	cfg := mixTestConfig()
	opt := MixOptions{Depth: cfg.Depth, Width: cfg.Width, Seed: cfg.Seed, HeapSize: cfg.HeapSize}

	l := NewAWMSketch(cfg)
	for _, ex := range datagen.RCV1Like(21).Take(1000) {
		l.Update(ex.X, ex.Y)
	}
	trained := snapshotOf(t, l, "trained")
	idle := snapshotOf(t, NewAWMSketch(cfg), "idle")

	alone, err := MixSnapshots([]Snapshot{trained}, opt)
	if err != nil {
		t.Fatal(err)
	}
	withIdle, err := MixSnapshots([]Snapshot{trained, idle, {Origin: "nil-cs", Steps: 5}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	probes := []uint32{0, 1, 17, 400, 999}
	requireSameMixed(t, alone, withIdle, probes, "idle dilution")

	empty, err := MixSnapshots(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if est := empty.Estimate(rng.Uint32()); est != 0 {
			t.Fatalf("empty mix estimates %v, want 0", est)
		}
	}
	if p := empty.Predict(stream.Vector{{Index: 3, Value: 1}}); p != 0 {
		t.Fatalf("empty mix predicts %v, want 0", p)
	}
}

// TestMixRejectsIncompatibleGeometry: a snapshot with a different seed or
// shape cannot be parameter-mixed and must produce an error, not silent
// garbage.
func TestMixRejectsIncompatibleGeometry(t *testing.T) {
	cfg := mixTestConfig()
	opt := MixOptions{Depth: cfg.Depth, Width: cfg.Width, Seed: cfg.Seed, HeapSize: cfg.HeapSize}

	good := NewAWMSketch(cfg)
	badCfg := cfg
	badCfg.Seed = 999
	bad := NewAWMSketch(badCfg)
	ex := datagen.RCV1Like(2).Take(50)
	for _, e := range ex {
		good.Update(e.X, e.Y)
		bad.Update(e.X, e.Y)
	}
	if _, err := MixSnapshots([]Snapshot{snapshotOf(t, good, "good"), snapshotOf(t, bad, "bad")}, opt); err == nil {
		t.Fatal("seed mismatch not rejected")
	}
}
