package core

import (
	"sync"
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// TestShardedSingleWorkerMatchesSequential: with one worker and round-robin
// routing, the private shard sees exactly the sequential stream, so the
// merged view's active-set estimates and TopK must match a sequential
// AWM-Sketch.
func TestShardedSingleWorkerMatchesSequential(t *testing.T) {
	cfg := Config{Width: 512, Depth: 1, HeapSize: 128, Lambda: 1e-6, Seed: 7}
	sh := NewSharded(cfg, ShardedOptions{Workers: 1, SyncEvery: -1})
	seq := NewAWMSketch(cfg)

	gen := datagen.RCV1Like(7)
	for i := 0; i < 5000; i++ {
		ex := gen.Next()
		sh.Update(ex.X, ex.Y)
		seq.Update(ex.X, ex.Y)
	}
	sh.Close()

	seqTop := seq.TopK(cfg.HeapSize)
	shTop := sh.TopK(cfg.HeapSize)
	if len(shTop) != len(seqTop) {
		t.Fatalf("TopK sizes differ: %d vs %d", len(shTop), len(seqTop))
	}
	for i := range seqTop {
		if shTop[i].Index != seqTop[i].Index || shTop[i].Weight != seqTop[i].Weight {
			t.Fatalf("TopK[%d] = %+v, sequential %+v", i, shTop[i], seqTop[i])
		}
	}
	for _, e := range seqTop {
		if got := sh.Estimate(e.Index); got != e.Weight {
			t.Fatalf("Estimate(%d) = %v, sequential %v", e.Index, got, e.Weight)
		}
	}
}

// TestShardedMatchesSequentialTopK: parameter mixing over 4 sub-streams is
// an approximation of the sequential model, but on the same stream the two
// must largely agree on which features are heavy.
func TestShardedMatchesSequentialTopK(t *testing.T) {
	cfg := Config{Width: 4096, Depth: 1, HeapSize: 256, Lambda: 1e-6, Seed: 3}
	for _, opt := range []ShardedOptions{
		{Workers: 4, SyncEvery: -1},
		{Workers: 4, SyncEvery: -1, Variant: ShardWM},
	} {
		sh := NewSharded(cfg, opt)
		var seq stream.Learner
		if opt.Variant == ShardWM {
			seq = NewWMSketch(cfg)
		} else {
			seq = NewAWMSketch(cfg)
		}
		gen := datagen.RCV1Like(3)
		for i := 0; i < 40000; i++ {
			ex := gen.Next()
			sh.Update(ex.X, ex.Y)
			seq.Update(ex.X, ex.Y)
		}
		sh.Close()

		seqTop := seq.TopK(32)
		inSh := map[uint32]bool{}
		for _, e := range sh.TopK(64) {
			inSh[e.Index] = true
		}
		overlap := 0
		for _, e := range seqTop {
			if inSh[e.Index] {
				overlap++
			}
		}
		if overlap < 20 {
			t.Fatalf("variant=%v: only %d/32 sequential top features in sharded TopK(64)",
				opt.Variant, overlap)
		}
		// Mixed estimates of the sequential model's heavy features must
		// agree in sign and rough magnitude.
		for _, e := range seqTop[:8] {
			got := sh.Estimate(e.Index)
			if got*e.Weight <= 0 {
				t.Fatalf("variant=%v: Estimate(%d) = %v, sequential %v (sign flip)",
					opt.Variant, e.Index, got, e.Weight)
			}
		}
	}
}

// TestShardedHogwildSingleWorkerMatchesWMSketch: with a single worker the
// Hogwild path is deterministic and its CAS arithmetic is exact, so it must
// reproduce the sequential WM-Sketch (λ=0) bit for bit.
func TestShardedHogwildSingleWorkerMatchesWMSketch(t *testing.T) {
	cfg := Config{Width: 512, Depth: 2, HeapSize: 128, Lambda: 0, Seed: 9}
	sh := NewSharded(cfg, ShardedOptions{Workers: 1, SyncEvery: -1, Hogwild: true})
	seq := NewWMSketch(cfg)

	gen := datagen.RCV1Like(9)
	for i := 0; i < 3000; i++ {
		ex := gen.Next()
		sh.Update(ex.X, ex.Y)
		seq.Update(ex.X, ex.Y)
	}
	sh.Close()

	for i := uint32(0); i < 4096; i++ {
		if got, want := sh.Estimate(i), seq.Estimate(i); got != want {
			t.Fatalf("Estimate(%d) = %v, sequential WM %v", i, got, want)
		}
	}
}

// TestShardedHogwildConvergesMultiWorker: under real lock-free parallelism
// the model is nondeterministic but must still learn: its top features
// should largely agree with a sequential WM-Sketch trained on the same
// stream.
func TestShardedHogwildConvergesMultiWorker(t *testing.T) {
	cfg := Config{Width: 4096, Depth: 1, HeapSize: 256, Lambda: 0, Seed: 5}
	sh := NewSharded(cfg, ShardedOptions{Workers: 4, SyncEvery: -1, Hogwild: true})
	seq := NewWMSketch(cfg)
	gen := datagen.RCV1Like(5)
	examples := gen.Take(40000)

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(examples); i += 4 {
				sh.Update(examples[i].X, examples[i].Y)
			}
		}(p)
	}
	wg.Wait()
	sh.Close()
	for _, ex := range examples {
		seq.Update(ex.X, ex.Y)
	}

	seqTop := seq.TopK(32)
	inSh := map[uint32]bool{}
	for _, e := range sh.TopK(64) {
		inSh[e.Index] = true
	}
	overlap := 0
	for _, e := range seqTop {
		if inSh[e.Index] {
			overlap++
		}
	}
	if overlap < 20 {
		t.Fatalf("only %d/32 sequential top features in Hogwild TopK(64)", overlap)
	}
}

// TestShardedConcurrentUpdatesAndQueries hammers Update, Estimate, TopK,
// Predict, and Sync from many goroutines; run under -race this is the
// safety test for the whole sharded path (default and Hogwild).
func TestShardedConcurrentUpdatesAndQueries(t *testing.T) {
	for _, hog := range []bool{false, true} {
		cfg := Config{Width: 512, Depth: 1, HeapSize: 64, Seed: 31}
		if !hog {
			cfg.Lambda = 1e-6
		}
		sh := NewSharded(cfg, ShardedOptions{Workers: 4, QueueSize: 64, SyncEvery: 500, Hogwild: hog})
		gen := datagen.RCV1Like(31)
		examples := gen.Take(2048)

		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := p; i < len(examples); i += 4 {
					sh.Update(examples[i].X, examples[i].Y)
				}
			}(p)
		}
		stop := make(chan struct{})
		var qg sync.WaitGroup
		for q := 0; q < 3; q++ {
			qg.Add(1)
			go func(q int) {
				defer qg.Done()
				var sink float64
				for i := 0; ; i++ {
					select {
					case <-stop:
						_ = sink
						return
					default:
					}
					switch i % 3 {
					case 0:
						sink += sh.Estimate(uint32(i % 4096))
					case 1:
						sink += float64(len(sh.TopK(16)))
					case 2:
						sink += sh.Predict(examples[i%len(examples)].X)
					}
					if i%100 == 0 {
						sh.Sync()
					}
				}
			}(q)
		}
		wg.Wait()
		close(stop)
		qg.Wait()
		sh.Close()
		if got := sh.Steps(); got != int64(len(examples)) {
			t.Fatalf("hogwild=%v: routed %d updates, want %d", hog, got, len(examples))
		}
	}
}

func TestShardedUpdateAfterClosePanics(t *testing.T) {
	sh := NewSharded(Config{Width: 64, Depth: 1, HeapSize: 8, Seed: 1}, ShardedOptions{Workers: 1})
	sh.Close()
	sh.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Update after Close")
		}
	}()
	sh.Update(stream.OneHot(1), 1)
}

func TestShardedHogwildRejectsLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Hogwild with Lambda > 0")
		}
	}()
	NewSharded(Config{Width: 64, Depth: 1, HeapSize: 8, Lambda: 1e-6, Seed: 1},
		ShardedOptions{Workers: 2, Hogwild: true})
}

// TestShardedIsDropInLearner checks interface conformance and that memory
// accounting follows the cost model.
func TestShardedIsDropInLearner(t *testing.T) {
	var l stream.Learner = NewSharded(
		Config{Width: 256, Depth: 1, HeapSize: 32, Seed: 2},
		ShardedOptions{Workers: 2})
	sh := l.(*Sharded)
	defer sh.Close()
	l.Update(stream.OneHot(5), 1)
	// 2 shards × (sketch 4·256 + heap 8·32).
	if got, want := l.MemoryBytes(), 2*(4*256+8*32); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}
