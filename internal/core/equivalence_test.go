package core

// Equivalence tests for the fused hot path ("eXtreme Modelling" style: the
// optimized implementation is checked against an independent executable
// specification, not just benchmarked). refWM and refAWM below re-implement
// Algorithms 1 and 2 exactly as the textbook Predict-then-Update
// formulation, using only the public sketch/topk/linear APIs — each feature
// is hashed on every access and the heap probed through the map-equivalent
// path. The fused implementations (hash-once, depth-1 specialization,
// ref-based heap probing) must produce bit-identical models: same sketch
// buckets, same estimates, same top-K, same scale and step count.

import (
	"math"
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// refWM is the unfused WM-Sketch (Algorithm 1) reference.
type refWM struct {
	cfg      Config
	cs       *sketch.CountSketch
	loss     linear.Loss
	schedule linear.Schedule
	sqrtS    float64
	scale    float64
	t        int64
	heap     *topk.Heap
}

func newRefWM(cfg Config) *refWM {
	if cfg.Loss == nil {
		cfg.Loss = linear.Logistic{}
	}
	if cfg.Schedule == nil {
		cfg.Schedule = linear.DefaultSchedule()
	}
	return &refWM{
		cfg:      cfg,
		cs:       sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed),
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		sqrtS:    math.Sqrt(float64(cfg.Depth)),
		scale:    1,
		heap:     topk.New(cfg.HeapSize),
	}
}

func (w *refWM) predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		dot += f.Value * w.cs.SumSigned(f.Index)
	}
	return dot * w.scale / w.sqrtS
}

func (w *refWM) update(x stream.Vector, y int) {
	ys := float64(y)
	w.t++
	eta := w.schedule.Rate(w.t)
	margin := ys * w.predict(x)
	g := w.loss.Deriv(margin)

	if w.cfg.Lambda > 0 {
		if w.cfg.NoScaleTrick {
			w.cs.Scale(1 - eta*w.cfg.Lambda)
			w.heap.ScaleWeights(1 - eta*w.cfg.Lambda)
		} else {
			w.scale *= 1 - eta*w.cfg.Lambda
			if w.scale < minScale {
				w.cs.Scale(w.scale)
				w.heap.ScaleWeights(w.scale)
				w.scale = 1
			}
		}
	}
	if g != 0 {
		step := eta * ys * g / (w.sqrtS * w.scale)
		if w.cfg.NoScaleTrick {
			step = eta * ys * g / w.sqrtS
		}
		for _, f := range x {
			w.cs.Update(f.Index, -step*f.Value)
		}
	}
	for _, f := range x {
		w.offer(f.Index, w.sqrtS*w.cs.Estimate(f.Index))
	}
}

func (w *refWM) offer(i uint32, est float64) {
	if w.heap.Contains(i) {
		w.heap.UpdateMagnitude(i, est)
		return
	}
	if !w.heap.Full() {
		w.heap.InsertMagnitude(i, est)
		return
	}
	if min, _ := w.heap.Min(); math.Abs(est) > min.Score {
		w.heap.PopMin()
		w.heap.InsertMagnitude(i, est)
	}
}

func (w *refWM) estimate(i uint32) float64 {
	return w.scale * (w.sqrtS * w.cs.Estimate(i))
}

// refAWM is the unfused AWM-Sketch (Algorithm 2) reference.
type refAWM struct {
	cfg      Config
	cs       *sketch.CountSketch
	loss     linear.Loss
	schedule linear.Schedule
	sqrtS    float64
	scale    float64
	t        int64
	active   *topk.Heap
}

func newRefAWM(cfg Config) *refAWM {
	if cfg.Loss == nil {
		cfg.Loss = linear.Logistic{}
	}
	if cfg.Schedule == nil {
		cfg.Schedule = linear.DefaultSchedule()
	}
	return &refAWM{
		cfg:      cfg,
		cs:       sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed),
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		sqrtS:    math.Sqrt(float64(cfg.Depth)),
		scale:    1,
		active:   topk.New(cfg.HeapSize),
	}
}

func (a *refAWM) queryUnscaled(i uint32) float64 { return a.sqrtS * a.cs.Estimate(i) }

func (a *refAWM) sketchAdd(i uint32, delta float64) { a.cs.Update(i, delta/a.sqrtS) }

func (a *refAWM) predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		if w, ok := a.active.Get(f.Index); ok {
			dot += w * f.Value
		} else {
			dot += f.Value * a.cs.SumSigned(f.Index) / a.sqrtS
		}
	}
	return dot * a.scale
}

func (a *refAWM) update(x stream.Vector, y int) {
	ys := float64(y)
	a.t++
	eta := a.schedule.Rate(a.t)
	margin := ys * a.predict(x)
	g := a.loss.Deriv(margin)

	if a.cfg.Lambda > 0 {
		if a.cfg.NoScaleTrick {
			decay := 1 - eta*a.cfg.Lambda
			a.cs.Scale(decay)
			a.active.ScaleWeights(decay)
		} else {
			a.scale *= 1 - eta*a.cfg.Lambda
			if a.scale < minScale {
				a.cs.Scale(a.scale)
				a.active.ScaleWeights(a.scale)
				a.scale = 1
			}
		}
	}

	effScale := a.scale
	if a.cfg.NoScaleTrick {
		effScale = 1
	}
	step := eta * ys * g / effScale

	for _, f := range x {
		if f.Value == 0 {
			continue
		}
		if w, ok := a.active.Get(f.Index); ok {
			if g != 0 {
				a.active.UpdateMagnitude(f.Index, w-step*f.Value)
			}
			continue
		}
		wTilde := a.queryUnscaled(f.Index) - step*f.Value
		if !a.active.Full() {
			a.active.InsertMagnitude(f.Index, wTilde)
			continue
		}
		min, _ := a.active.Min()
		if math.Abs(wTilde) > min.Score {
			a.active.PopMin()
			delta := min.Weight - a.queryUnscaled(min.Key)
			a.sketchAdd(min.Key, delta)
			a.active.InsertMagnitude(f.Index, wTilde)
		} else if g != 0 {
			a.sketchAdd(f.Index, -step*f.Value)
		}
	}
}

func (a *refAWM) estimate(i uint32) float64 {
	if w, ok := a.active.Get(i); ok {
		return w * a.scale
	}
	return a.scale * a.queryUnscaled(i)
}

// equivalenceConfigs covers the depth-1 specialization, even- and
// odd-depth medians, decay on/off, and the explicit-decay ablation.
func equivalenceConfigs() []Config {
	return []Config{
		{Width: 256, Depth: 1, HeapSize: 128, Lambda: 1e-6, Seed: 11},
		{Width: 256, Depth: 1, HeapSize: 128, Lambda: 0, Seed: 12},
		{Width: 128, Depth: 2, HeapSize: 64, Lambda: 1e-6, Seed: 13},
		{Width: 128, Depth: 3, HeapSize: 64, Lambda: 1e-5, Seed: 14},
		{Width: 64, Depth: 5, HeapSize: 32, Lambda: 1e-6, Seed: 15},
		{Width: 256, Depth: 1, HeapSize: 128, Lambda: 1e-6, Seed: 16, NoScaleTrick: true},
		{Width: 128, Depth: 2, HeapSize: 64, Lambda: 1e-6, Seed: 17, NoScaleTrick: true},
	}
}

func compareSketches(t *testing.T, tag string, got, want *sketch.CountSketch) {
	t.Helper()
	for j := 0; j < want.Depth(); j++ {
		gr, wr := got.Row(j), want.Row(j)
		for b := range wr {
			if gr[b] != wr[b] {
				t.Fatalf("%s: bucket [%d][%d] = %v, reference %v", tag, j, b, gr[b], wr[b])
			}
		}
	}
}

func TestWMSketchFusedMatchesReference(t *testing.T) {
	for _, cfg := range equivalenceConfigs() {
		gen := datagen.RCV1Like(cfg.Seed)
		fused := NewWMSketch(cfg)
		ref := newRefWM(cfg)
		for i := 0; i < 2000; i++ {
			ex := gen.Next()
			fused.Update(ex.X, ex.Y)
			ref.update(ex.X, ex.Y)
		}
		tag := tagOf(cfg)
		if fused.Steps() != ref.t {
			t.Fatalf("%s: steps %d vs %d", tag, fused.Steps(), ref.t)
		}
		if fused.Scale() != ref.scale {
			t.Fatalf("%s: scale %v vs %v", tag, fused.Scale(), ref.scale)
		}
		compareSketches(t, tag, fused.Sketch(), ref.cs)
		for i := uint32(0); i < 4096; i++ {
			if g, w := fused.Estimate(i), ref.estimate(i); g != w {
				t.Fatalf("%s: Estimate(%d) = %v, reference %v", tag, i, g, w)
			}
		}
		probe := gen.Next().X
		if g, w := fused.Predict(probe), ref.predict(probe); g != w {
			t.Fatalf("%s: Predict = %v, reference %v", tag, g, w)
		}
		// The passive heaps must hold identical key sets. (TopK re-estimates
		// entries, so ask for the whole heap and compare membership.)
		gotTop := fused.TopK(cfg.HeapSize)
		if len(gotTop) != ref.heap.Len() {
			t.Fatalf("%s: heap sizes differ: %d vs %d", tag, len(gotTop), ref.heap.Len())
		}
		gotSet := map[uint32]bool{}
		for _, e := range gotTop {
			gotSet[e.Index] = true
		}
		for _, e := range ref.heap.Entries() {
			if !gotSet[e.Key] {
				t.Fatalf("%s: reference heap key %d missing from fused heap", tag, e.Key)
			}
		}
	}
}

func TestAWMSketchFusedMatchesReference(t *testing.T) {
	for _, cfg := range equivalenceConfigs() {
		gen := datagen.RCV1Like(cfg.Seed + 100)
		fused := NewAWMSketch(cfg)
		ref := newRefAWM(cfg)
		for i := 0; i < 2000; i++ {
			ex := gen.Next()
			fused.Update(ex.X, ex.Y)
			ref.update(ex.X, ex.Y)
		}
		tag := tagOf(cfg)
		if fused.Scale() != ref.scale {
			t.Fatalf("%s: scale %v vs %v", tag, fused.Scale(), ref.scale)
		}
		compareSketches(t, tag, fused.Sketch(), ref.cs)
		if fused.ActiveSetSize() != ref.active.Len() {
			t.Fatalf("%s: active set size %d vs %d", tag, fused.ActiveSetSize(), ref.active.Len())
		}
		for i := uint32(0); i < 4096; i++ {
			if g, w := fused.Estimate(i), ref.estimate(i); g != w {
				t.Fatalf("%s: Estimate(%d) = %v, reference %v", tag, i, g, w)
			}
		}
		probe := gen.Next().X
		if g, w := fused.Predict(probe), ref.predict(probe); g != w {
			t.Fatalf("%s: Predict = %v, reference %v", tag, g, w)
		}
	}
}

// TestAWMSketchDuplicateFeaturesMatchReference drives the rare in-example
// paths: duplicate feature indices, zero values, and a heap so small that a
// feature resident at predict time is evicted before its second occurrence
// is processed (the spareLocs fallback).
func TestAWMSketchDuplicateFeaturesMatchReference(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		cfg := Config{Width: 32, Depth: depth, HeapSize: 2, Lambda: 1e-4, Seed: 21}
		fused := NewAWMSketch(cfg)
		ref := newRefAWM(cfg)
		y := 1
		for i := 0; i < 500; i++ {
			a := uint32(i % 7)
			b := uint32(i % 5)
			x := stream.Vector{
				{Index: a, Value: 1},
				{Index: b, Value: 0.5},
				{Index: a, Value: -0.25}, // duplicate of the first feature
				{Index: uint32(i % 11), Value: 0},
				{Index: b, Value: 2}, // duplicate of the second feature
			}
			fused.Update(x, y)
			ref.update(x, y)
			y = -y
		}
		tag := tagOf(cfg)
		compareSketches(t, tag, fused.Sketch(), ref.cs)
		for i := uint32(0); i < 16; i++ {
			if g, w := fused.Estimate(i), ref.estimate(i); g != w {
				t.Fatalf("%s: Estimate(%d) = %v, reference %v", tag, i, g, w)
			}
		}
	}
}

func tagOf(cfg Config) string {
	tag := "depth=" + itoa(cfg.Depth) + " lambda>0=" + boolStr(cfg.Lambda > 0)
	if cfg.NoScaleTrick {
		tag += " noscale"
	}
	return tag
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
