package core

import (
	"math"
	"sync/atomic"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// Hogwild-style lock-free training (Section 9). All workers apply gradient
// steps to one shared Count-Sketch through compare-and-swap adds; no lock
// is ever taken on the update path. Section 9 observes that sketched
// gradient updates tolerate this: the sketch is a linear projection, so
// lost ordering only perturbs which intermediate margins gradients are
// computed against (bounded staleness, as in Recht et al.'s HOGWILD!), not
// where the mass lands.
//
// Unlike the racy textbook formulation, every shared access here is atomic,
// so the implementation is exact under the Go memory model and clean under
// the race detector — "lock-free" rather than "data-race-y". Each worker
// keeps a private passive top-K heap (the WM-Sketch flavor; an AWM active
// set holds exact weights and cannot be shared without locks), and the
// sharded merger unions the heaps' candidates at snapshot time.
//
// The learning-rate schedule is driven by a shared atomic step counter, and
// ℓ2 decay is unsupported (the lazy global scale factor would itself need
// synchronization); NewSharded enforces Lambda == 0.

// hogwildState is the state shared by all Hogwild workers.
type hogwildState struct {
	cs *sketch.CountSketch
	t  atomic.Int64
}

func newHogwildState(cfg Config) *hogwildState {
	return &hogwildState{cs: sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed)}
}

// hogwildWorker is one worker's view: the shared sketch plus a private heap
// and scratch buffers. Only its owning goroutine touches the private parts.
type hogwildWorker struct {
	st       *hogwildState
	loss     linear.Loss
	schedule linear.Schedule
	sqrtS    float64
	heap     *topk.Heap
	locBuf   []sketch.Loc
	steps    int64
}

func newHogwildWorker(st *hogwildState, cfg Config) *hogwildWorker {
	return &hogwildWorker{
		st:       st,
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		sqrtS:    math.Sqrt(float64(cfg.Depth)),
		heap:     topk.New(cfg.HeapSize),
	}
}

// update is the fused WM-style gradient step against the shared sketch:
// hash once per feature, atomic reads for the margin, CAS adds for the
// gradient, atomic reads again for the heap refresh.
func (hw *hogwildWorker) update(x stream.Vector, y int) {
	ys := sgn(y)
	t := hw.st.t.Add(1)
	eta := hw.schedule.Rate(t)
	cs := hw.st.cs
	s := cs.Depth()

	need := len(x) * s
	if cap(hw.locBuf) < need {
		hw.locBuf = make([]sketch.Loc, need)
	}
	locs := hw.locBuf[:need]

	dot := 0.0
	for i, f := range x {
		l := locs[i*s : (i+1)*s]
		cs.Locate(f.Index, l)
		dot += f.Value * cs.AtomicSumAt(l)
	}
	margin := ys * (dot / hw.sqrtS)
	g := hw.loss.Deriv(margin)

	if g != 0 {
		step := eta * ys * g / hw.sqrtS
		for i, f := range x {
			cs.AtomicAddAt(locs[i*s:(i+1)*s], -step*f.Value)
		}
	}
	for i, f := range x {
		hw.offer(f.Index, hw.sqrtS*cs.AtomicEstimateAt(locs[i*s:(i+1)*s]))
	}
	hw.steps++
}

// offer maintains the worker-private passive heap (same policy as the
// WM-Sketch's offerToHeap).
func (hw *hogwildWorker) offer(i uint32, est float64) {
	if r, ok := hw.heap.GetRef(i); ok {
		hw.heap.UpdateMagnitudeRef(r, est)
		return
	}
	if !hw.heap.Full() {
		hw.heap.InsertMagnitude(i, est)
		return
	}
	if min, _ := hw.heap.Min(); absf(est) > min.Score {
		hw.heap.PopMin()
		hw.heap.InsertMagnitude(i, est)
	}
}
