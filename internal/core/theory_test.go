package core

import (
	"math"
	"math/rand"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// These tests empirically validate the scaling behaviour promised by the
// paper's theory (Theorem 1 and the surrounding discussion), not exact
// constants: recovery error should (a) decrease as the sketch grows, (b)
// decrease with stronger ℓ2 regularization, and (c) scale with ‖w*‖₁ of
// the underlying uncompressed model.

// trainPair trains an uncompressed reference and a WM-Sketch on the same
// example sequence and returns the max per-feature recovery error over the
// reference's nonzero weights, normalized by ‖w*‖₁.
func recoveryErrNormalized(t *testing.T, width, depth int, lambda float64,
	examples []stream.Example) float64 {
	t.Helper()
	maxErr, l1 := recoveryErrParts(t, width, depth, lambda, examples)
	return maxErr / l1
}

// recoveryErrParts returns the max per-feature absolute recovery error and
// the reference model's ℓ1 norm.
func recoveryErrParts(t *testing.T, width, depth int, lambda float64,
	examples []stream.Example) (maxErr, l1 float64) {
	t.Helper()
	ref := linear.NewLogReg(linear.LogRegConfig{Lambda: lambda})
	w := NewWMSketch(Config{Width: width, Depth: depth, HeapSize: 16,
		Lambda: lambda, Seed: 1234})
	for _, ex := range examples {
		ref.Update(ex.X, ex.Y)
		w.Update(ex.X, ex.Y)
	}
	weights := ref.Weights()
	for _, v := range weights {
		l1 += math.Abs(v)
	}
	if l1 == 0 {
		t.Fatal("degenerate reference model")
	}
	for i, v := range weights {
		if e := math.Abs(w.Estimate(i) - v); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, l1
}

func theoryExamples(n int, seed int64) []stream.Example {
	gen := newPlanted(2000, 6, defaultPlantedWeights(), seed)
	out := make([]stream.Example, n)
	for i := range out {
		out[i] = gen.next()
	}
	return out
}

func TestTheoremOneErrorShrinksWithWidth(t *testing.T) {
	// ε scales like k^(-1/4) in Theorem 1; verify monotone improvement
	// (with slack for noise) over a 16x width range.
	examples := theoryExamples(15000, 51)
	errNarrow := recoveryErrNormalized(t, 64, 2, 1e-4, examples)
	errMid := recoveryErrNormalized(t, 256, 2, 1e-4, examples)
	errWide := recoveryErrNormalized(t, 1024, 2, 1e-4, examples)
	if errWide > errMid*1.2 || errMid > errNarrow*1.2 {
		t.Fatalf("error not shrinking with width: %g -> %g -> %g",
			errNarrow, errMid, errWide)
	}
	// Theorem 1's rate is ε ~ k^(-1/4): a 16x width increase should buy
	// roughly a 2x error reduction. Demand at least 1.6x.
	if errWide > errNarrow/1.6 {
		t.Fatalf("16x width bought too little: %g -> %g", errNarrow, errWide)
	}
}

func TestTheoremOneErrorShrinksWithRegularization(t *testing.T) {
	// k and s scale inversely with λ: at fixed size, stronger
	// regularization should reduce absolute recovery error because both
	// the true and sketched weights shrink toward zero (Figure 5's
	// mechanism).
	examples := theoryExamples(15000, 53)
	errWeak, _ := recoveryErrParts(t, 128, 2, 1e-6, examples)
	errStrong, _ := recoveryErrParts(t, 128, 2, 1e-2, examples)
	if errStrong > errWeak {
		t.Fatalf("stronger lambda did not reduce absolute error: %g vs %g",
			errStrong, errWeak)
	}
}

func TestRecoveryErrorBoundedByL1(t *testing.T) {
	// The Theorem 1 guarantee has the form ‖w*−ŵ‖∞ ≤ ε‖w*‖₁. At a
	// generous sketch size the normalized error must be well below 1.
	examples := theoryExamples(15000, 57)
	if err := recoveryErrNormalized(t, 2048, 4, 1e-4, examples); err > 0.3 {
		t.Fatalf("normalized recovery error %g too large at generous size", err)
	}
}

func TestOnlineOrderSensitivity(t *testing.T) {
	// Theorem 2 guarantees recovery in expectation over random orderings
	// but NOT for adversarial ones. Verify the benign direction: two
	// random shuffles of the same example multiset recover similar
	// estimates for the planted heavy features.
	base := theoryExamples(20000, 61)
	shuffleTrain := func(seed int64) *WMSketch {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(base))
		w := NewWMSketch(Config{Width: 512, Depth: 2, HeapSize: 16,
			Lambda: 1e-4, Seed: 77})
		for _, idx := range perm {
			w.Update(base[idx].X, base[idx].Y)
		}
		return w
	}
	a, b := shuffleTrain(1), shuffleTrain(2)
	for i := range defaultPlantedWeights() {
		ea, eb := a.Estimate(i), b.Estimate(i)
		if math.Abs(ea-eb) > 0.3*(1+math.Abs(ea)) {
			t.Fatalf("feature %d: order-sensitive estimates %g vs %g", i, ea, eb)
		}
		if ea*eb < 0 {
			t.Fatalf("feature %d: sign flipped across orderings", i)
		}
	}
}

func TestJLInnerProductPreservation(t *testing.T) {
	// The analysis rests on the scaled Count-Sketch matrix R = A/√s having
	// the JL property (Lemma 4: |v₁ᵀv₂ − (Rv₁)ᵀ(Rv₂)| ≤ 2ε‖v₁‖₁‖v₂‖₁).
	// Verify empirically that sparse unit vectors keep their norms and
	// inner products through the projection.
	const d = 1000
	const depth = 8
	const width = 1024
	w := NewWMSketch(Config{Width: width, Depth: depth, HeapSize: 4, Seed: 91})
	cs := w.Sketch()
	rng := rand.New(rand.NewSource(92))

	// Project 30 random sparse vectors by feeding them as updates to a
	// fresh sketch each (using the shared hash family via manual bucket
	// computation would duplicate code; instead use the linearity of the
	// structure: project v by zeroing and applying Update-like increments).
	project := func(v map[uint32]float64) []float64 {
		cs.Reset()
		for i, val := range v {
			cs.Update(i, val/math.Sqrt(depth))
		}
		flat := make([]float64, 0, depth*width)
		for j := 0; j < depth; j++ {
			flat = append(flat, cs.Row(j)...)
		}
		return flat
	}
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for trial := 0; trial < 30; trial++ {
		v1 := map[uint32]float64{}
		v2 := map[uint32]float64{}
		for n := 0; n < 10; n++ {
			v1[uint32(rng.Intn(d))] = rng.NormFloat64()
			v2[uint32(rng.Intn(d))] = rng.NormFloat64()
		}
		trueDot := 0.0
		norm1, norm2 := 0.0, 0.0
		for i, a := range v1 {
			trueDot += a * v2[i]
			norm1 += a * a
		}
		for _, b := range v2 {
			norm2 += b * b
		}
		p1 := project(v1)
		p2 := project(v2)
		got := dot(p1, p2)
		scale := math.Sqrt(norm1 * norm2)
		if math.Abs(got-trueDot) > 0.5*scale {
			t.Fatalf("trial %d: projected dot %g vs true %g (scale %g)",
				trial, got, trueDot, scale)
		}
	}
}
