package core

import (
	"math/rand"
	"testing"

	"wmsketch/internal/stream"
)

// threeClassExample draws a 3-class example: class c puts mass on features
// in block [100c, 100c+10).
func threeClassExample(rng *rand.Rand) (stream.Vector, int) {
	c := rng.Intn(3)
	x := make(stream.Vector, 0, 3)
	for j := 0; j < 3; j++ {
		x = append(x, stream.Feature{
			Index: uint32(100*c + rng.Intn(10)),
			Value: 1,
		})
	}
	// Small noise feature shared across classes.
	x = append(x, stream.Feature{Index: uint32(900 + rng.Intn(5)), Value: 1})
	return x, c
}

func TestMulticlassLearnsBlocks(t *testing.T) {
	mc := NewMulticlass(3, Config{Width: 512, Depth: 1, HeapSize: 64, Lambda: 1e-6, Seed: 5})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 6000; i++ {
		x, c := threeClassExample(rng)
		mc.Update(x, c)
	}
	mistakes := 0
	const n = 1000
	for i := 0; i < n; i++ {
		x, c := threeClassExample(rng)
		if mc.Predict(x) != c {
			mistakes++
		}
	}
	if rate := float64(mistakes) / n; rate > 0.05 {
		t.Fatalf("multiclass error %.3f on separable blocks", rate)
	}
}

func TestMulticlassMargins(t *testing.T) {
	mc := NewMulticlass(4, Config{Width: 128, Depth: 1, HeapSize: 16, Seed: 2})
	if mc.NumClasses() != 4 {
		t.Fatalf("NumClasses = %d", mc.NumClasses())
	}
	x := stream.OneHot(7)
	mc.Update(x, 2)
	m := mc.Margins(x)
	if len(m) != 4 {
		t.Fatalf("Margins returned %d values", len(m))
	}
	// Class 2 saw +1, others −1, so class 2's margin must be the largest.
	for c, v := range m {
		if c != 2 && v >= m[2] {
			t.Fatalf("class %d margin %g not below class 2's %g", c, v, m[2])
		}
	}
	if mc.Predict(x) != 2 {
		t.Fatalf("Predict = %d, want 2", mc.Predict(x))
	}
}

func TestMulticlassTopKPerClass(t *testing.T) {
	mc := NewMulticlass(2, Config{Width: 256, Depth: 1, HeapSize: 32, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		c := rng.Intn(2)
		x := stream.OneHot(uint32(50*c + rng.Intn(5)))
		mc.Update(x, c)
	}
	for c := 0; c < 2; c++ {
		top := mc.TopK(c, 10)
		if len(top) == 0 {
			t.Fatalf("class %d: empty TopK", c)
		}
		// One-vs-all training makes the other block's features heavy with
		// negative weight, so restrict to the heaviest positive weight: it
		// must lie in class c's own block.
		foundPositive := false
		for _, e := range top {
			if e.Weight > 0 {
				foundPositive = true
				if int(e.Index)/50 != c {
					t.Fatalf("class %d: top positive feature %d outside block", c, e.Index)
				}
				if mc.Estimate(c, e.Index) != e.Weight {
					t.Fatalf("Estimate disagrees with TopK")
				}
				break
			}
		}
		if !foundPositive {
			t.Fatalf("class %d: no positive weight in top-10", c)
		}
	}
}

func TestMulticlassValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for M=1")
			}
		}()
		NewMulticlass(1, Config{Width: 16, Depth: 1, HeapSize: 4})
	}()
	mc := NewMulticlass(2, Config{Width: 16, Depth: 1, HeapSize: 4})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range class")
			}
		}()
		mc.Update(stream.OneHot(1), 5)
	}()
}

func TestMulticlassMemoryScalesWithM(t *testing.T) {
	cfg := Config{Width: 128, Depth: 1, HeapSize: 16}
	one := NewAWMSketch(cfg).MemoryBytes()
	mc := NewMulticlass(3, cfg)
	if got := mc.MemoryBytes(); got != 3*one {
		t.Fatalf("MemoryBytes = %d, want %d", got, 3*one)
	}
}
