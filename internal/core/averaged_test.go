package core

import (
	"math"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

func TestAveragedMatchesLastAfterConvergence(t *testing.T) {
	// On a stationary stream both the averaged and last iterates should
	// recover the planted weights with the same signs and similar values.
	weights := defaultPlantedWeights()
	gen := newPlanted(500, 5, weights, 301)
	a := NewAveragedWMSketch(Config{Width: 512, Depth: 3, HeapSize: 32, Lambda: 1e-5, Seed: 21})
	for i := 0; i < 20000; i++ {
		ex := gen.next()
		a.Update(ex.X, ex.Y)
	}
	for i, want := range weights {
		avg, last := a.EstimateAveraged(i), a.EstimateLast(i)
		if avg*want <= 0 {
			t.Errorf("feature %d: averaged estimate %g wrong sign vs %g", i, avg, want)
		}
		if last*want <= 0 {
			t.Errorf("feature %d: last estimate %g wrong sign vs %g", i, last, want)
		}
	}
}

func TestAveragedSmootherThanLast(t *testing.T) {
	// The averaged iterate has lower variance across the tail of training:
	// measure the fluctuation of both estimators for one heavy feature
	// over the last phase of the stream.
	weights := map[uint32]float64{7: 3}
	gen := newPlanted(200, 4, weights, 303)
	a := NewAveragedWMSketch(Config{Width: 256, Depth: 3, HeapSize: 8, Seed: 23,
		Schedule: linear.Constant{Eta0: 0.3}})
	for i := 0; i < 3000; i++ {
		ex := gen.next()
		a.Update(ex.X, ex.Y)
	}
	var varAvg, varLast float64
	var prevAvg, prevLast float64
	first := true
	for i := 0; i < 500; i++ {
		ex := gen.next()
		a.Update(ex.X, ex.Y)
		ea, el := a.EstimateAveraged(7), a.EstimateLast(7)
		if !first {
			da, dl := ea-prevAvg, el-prevLast
			varAvg += da * da
			varLast += dl * dl
		}
		prevAvg, prevLast = ea, el
		first = false
	}
	if varAvg >= varLast {
		t.Fatalf("averaged estimator not smoother: step-variance %g vs %g", varAvg, varLast)
	}
}

func TestAveragedSingleStepEqualsIterate(t *testing.T) {
	a := NewAveragedWMSketch(Config{Width: 128, Depth: 2, HeapSize: 4, Seed: 25,
		Schedule: linear.Constant{Eta0: 0.2}})
	a.Update(stream.OneHot(3), 1)
	// After one step the average IS the iterate.
	if got, want := a.EstimateAveraged(3), a.EstimateLast(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("averaged %g != last %g after one step", got, want)
	}
}

func TestAveragedMemoryBytes(t *testing.T) {
	plain := NewWMSketch(Config{Width: 128, Depth: 2, HeapSize: 16})
	avg := NewAveragedWMSketch(Config{Width: 128, Depth: 2, HeapSize: 16})
	if got := avg.MemoryBytes() - plain.MemoryBytes(); got != 4*128*2 {
		t.Fatalf("averaging overhead %d B", got)
	}
}

func TestTrainBatchImprovesWithEpochs(t *testing.T) {
	weights := defaultPlantedWeights()
	gen := newPlanted(800, 5, weights, 307)
	examples := make([]stream.Example, 4000)
	for i := range examples {
		examples[i] = gen.next()
	}
	cfg := Config{Width: 512, Depth: 2, HeapSize: 32, Lambda: 1e-4, Seed: 27}
	errFor := func(epochs int) float64 {
		w := TrainBatch(cfg, examples, epochs)
		total := 0.0
		for i, want := range weights {
			total += math.Abs(w.Estimate(i) - want)
		}
		return total
	}
	one, five := errFor(1), errFor(5)
	if five > one {
		t.Fatalf("5 epochs (err %g) worse than 1 (err %g)", five, one)
	}
}

func TestTrainBatchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 epochs")
		}
	}()
	TrainBatch(Config{Width: 8, Depth: 1, HeapSize: 2}, nil, 0)
}

func TestMedianFloat(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{4}, 4},
		{[]float64{2, 6}, 4},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := medianFloat(in); got != c.want {
			t.Errorf("medianFloat(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}
