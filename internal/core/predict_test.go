package core

import (
	"testing"

	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// TestWMSketchPredictDepth1Equivalence pins the Predict depth-1 fast path
// (the serving hot path) bit-identical to the textbook formulation, probing
// throughout training rather than only at the end — the same equivalence-
// test pattern used for the fused Update paths.
func TestWMSketchPredictDepth1Equivalence(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 256, Depth: 1, HeapSize: 32, Lambda: 1e-4, Seed: 11},
		{Width: 128, Depth: 1, HeapSize: 16, Lambda: 0, Seed: 12},
		{Width: 256, Depth: 3, HeapSize: 32, Lambda: 1e-4, Seed: 13}, // general path control
	} {
		gen := datagen.RCV1Like(cfg.Seed)
		fused := NewWMSketch(cfg)
		ref := newRefWM(cfg)
		for i := 0; i < 500; i++ {
			ex := gen.Next()
			fused.Update(ex.X, ex.Y)
			ref.update(ex.X, ex.Y)
			if i%17 == 0 {
				probe := gen.Next().X
				if g, w := fused.Predict(probe), ref.predict(probe); g != w {
					t.Fatalf("depth=%d step %d: Predict = %v, reference %v", cfg.Depth, i, g, w)
				}
			}
		}
		// Edge probes: empty vector, single feature, duplicate indices.
		for _, probe := range []stream.Vector{
			{},
			{{Index: 7, Value: 1.5}},
			{{Index: 7, Value: 1}, {Index: 7, Value: -2}, {Index: 9, Value: 0}},
		} {
			if g, w := fused.Predict(probe), ref.predict(probe); g != w {
				t.Fatalf("depth=%d edge probe: Predict = %v, reference %v", cfg.Depth, g, w)
			}
		}
	}
}

func benchmarkWMPredict(b *testing.B, depth int) {
	cfg := Config{Width: 4096 / depth, Depth: depth, HeapSize: 128, Lambda: 1e-6, Seed: 1}
	w := NewWMSketch(cfg)
	gen := datagen.RCV1Like(1)
	data := gen.Take(4096)
	for _, ex := range data {
		w.Update(ex.X, ex.Y)
	}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += w.Predict(data[i%len(data)].X)
	}
	benchSink = sink
}

var benchSink float64

func BenchmarkWMPredictDepth1(b *testing.B) { benchmarkWMPredict(b, 1) }
func BenchmarkWMPredictDepth2(b *testing.B) { benchmarkWMPredict(b, 2) }
