package core

import (
	"math"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// Regression tests for the decay underflow/sign-flip bug: with η·λ ≥ 1 the
// per-step factor 1−ηλ is zero or negative, and the unclamped code either
// zeroed the lazy scale or drove it negative — the next renormalize then
// sign-flipped and amplified every bucket. The fixed code rejects constant
// schedules where this happens on every step, and clamps the factor at 0
// (full decay) for schedules where only a transient prefix is pathological.

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic for η·λ ≥ 1 constant schedule", name)
		}
	}()
	fn()
}

func TestConstantScheduleRejectsFullDecay(t *testing.T) {
	bad := Config{
		Width: 64, Depth: 2, HeapSize: 8,
		Lambda:   0.5,
		Schedule: linear.Constant{Eta0: 2}, // η·λ = 1 exactly
	}
	mustPanic(t, "WMSketch", func() { NewWMSketch(bad) })
	mustPanic(t, "AWMSketch", func() { NewAWMSketch(bad) })

	// η·λ just under 1 is extreme but representable; it must construct.
	ok := bad
	ok.Schedule = linear.Constant{Eta0: 1.99}
	NewWMSketch(ok)
	NewAWMSketch(ok)
}

// TestPathologicalDecayClampsToZero pins the clamp semantics: a step whose
// factor 1−ηλ would be negative must behave as full decay (model pulled
// exactly to zero before the gradient), not as a sign-flipping negative
// scale. The InvSqrt schedule with Eta0·Lambda > 1 is pathological only on
// the first step(s), so it is accepted at construction and must be clamped.
func TestPathologicalDecayClampsToZero(t *testing.T) {
	exA := stream.Vector{{Index: 1, Value: 1}}
	exB := stream.Vector{{Index: 2, Value: 1}}
	for _, depth := range []int{1, 2} {
		for _, noTrick := range []bool{false, true} {
			cfg := Config{
				Width: 64, Depth: depth, HeapSize: 8,
				Lambda:   1,
				Schedule: linear.InvSqrt{Eta0: 20}, // t=1: η·λ = 20
				Seed:     7,
			}
			cfg.NoScaleTrick = noTrick

			// decayOnly has no features: the update applies the regularizer
			// but no gradient, so the zero assertion below cannot be
			// perturbed by a hash collision with a freshly-written feature.
			decayOnly := stream.Vector{}

			w := NewWMSketch(cfg)
			w.Update(exA, 1) // writes weight on feature 1
			// Step 2: η = 20/√2 ≈ 14.1, factor = 1−14.1 < 0 → clamp to 0.
			// Everything learned before this step must be exactly erased.
			w.Update(decayOnly, -1)
			if got := w.Estimate(1); got != 0 {
				t.Errorf("WM depth=%d noTrick=%v: clamped decay must zero prior "+
					"weights, Estimate(1) = %g", depth, noTrick, got)
			}
			w.Update(exB, -1)
			if bad := w.Estimate(2); math.IsNaN(bad) || math.IsInf(bad, 0) {
				t.Errorf("WM depth=%d noTrick=%v: non-finite estimate %g", depth, noTrick, bad)
			}
			if w.Scale() <= 0 || math.IsNaN(w.Scale()) {
				t.Errorf("WM depth=%d noTrick=%v: scale %g not positive", depth, noTrick, w.Scale())
			}

			a := NewAWMSketch(cfg)
			a.Update(exA, 1)
			a.Update(decayOnly, -1)
			if got := a.Estimate(1); got != 0 {
				t.Errorf("AWM depth=%d noTrick=%v: clamped decay must zero prior "+
					"weights, Estimate(1) = %g", depth, noTrick, got)
			}
			a.Update(exB, -1)
			if a.Scale() <= 0 || math.IsNaN(a.Scale()) {
				t.Errorf("AWM depth=%d noTrick=%v: scale %g not positive", depth, noTrick, a.Scale())
			}
		}
	}
}

// TestPathologicalDecayStaysFinite runs a longer pathological stream and
// asserts every touched estimate remains finite throughout.
func TestPathologicalDecayStaysFinite(t *testing.T) {
	cfg := Config{
		Width: 128, Depth: 1, HeapSize: 16,
		Lambda:   0.5,
		Schedule: linear.InvSqrt{Eta0: 10},
		Seed:     3,
	}
	w := NewWMSketch(cfg)
	a := NewAWMSketch(cfg)
	for i := 0; i < 200; i++ {
		x := stream.Vector{
			{Index: uint32(i % 17), Value: 1},
			{Index: uint32(100 + i%5), Value: 0.5},
		}
		y := 1
		if i%3 == 0 {
			y = -1
		}
		w.Update(x, y)
		a.Update(x, y)
		for _, f := range x {
			if v := w.Estimate(f.Index); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("step %d: WM estimate(%d) = %g", i, f.Index, v)
			}
			if v := a.Estimate(f.Index); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("step %d: AWM estimate(%d) = %g", i, f.Index, v)
			}
		}
	}
}
