package core

import (
	"math"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

func TestAdaGradRecoversPlantedSigns(t *testing.T) {
	weights := defaultPlantedWeights()
	gen := newPlanted(1000, 5, weights, 201)
	w := NewAdaGradWMSketch(Config{Width: 512, Depth: 3, HeapSize: 64, Lambda: 1e-5, Seed: 7})
	for i := 0; i < 20000; i++ {
		ex := gen.next()
		w.Update(ex.X, ex.Y)
	}
	for i, want := range weights {
		got := w.Estimate(i)
		if got*want <= 0 {
			t.Errorf("feature %d: estimate %g disagrees in sign with %g", i, got, want)
		}
	}
	top := w.TopK(5)
	found := 0
	for _, e := range top {
		if _, ok := weights[e.Index]; ok {
			found++
		}
	}
	if found < 4 {
		t.Errorf("only %d/5 planted features in top-5", found)
	}
}

func TestAdaGradOnlineErrorBeatsChance(t *testing.T) {
	gen := newPlanted(1000, 5, defaultPlantedWeights(), 203)
	w := NewAdaGradWMSketch(Config{Width: 512, Depth: 2, HeapSize: 64, Lambda: 1e-6, Seed: 9})
	mistakes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ex := gen.next()
		if w.Predict(ex.X)*float64(ex.Y) <= 0 {
			mistakes++
		}
		w.Update(ex.X, ex.Y)
	}
	if rate := float64(mistakes) / n; rate > 0.3 {
		t.Fatalf("online error %.3f not far better than chance", rate)
	}
}

func TestAdaGradAdaptiveStepsShrink(t *testing.T) {
	// Repeated identical updates must produce diminishing weight increments
	// (the adaptive denominator grows), unlike a constant-rate sketch.
	w := NewAdaGradWMSketch(Config{Width: 1 << 12, Depth: 1, HeapSize: 4, Seed: 11,
		Schedule: linear.Constant{Eta0: 0.5}})
	x := stream.Vector{{Index: 5, Value: 1}}
	var prev, prevDelta float64
	for i := 0; i < 5; i++ {
		w.Update(x, 1)
		est := w.Estimate(5)
		delta := est - prev
		if i > 0 && delta > prevDelta+1e-12 {
			t.Fatalf("step %d: increment %g grew from %g", i, delta, prevDelta)
		}
		prev, prevDelta = est, delta
	}
	if prev <= 0 {
		t.Fatalf("weight %g, want positive", prev)
	}
}

func TestAdaGradFirstStepMagnitude(t *testing.T) {
	// First update with depth 1: the AdaGrad step normalizes the gradient
	// to unit magnitude, so each bucket moves by exactly η₀ in the gradient
	// direction and the recovered weight is √s·η₀ = η₀.
	w := NewAdaGradWMSketch(Config{Width: 256, Depth: 1, HeapSize: 4, Seed: 13,
		Schedule: linear.Constant{Eta0: 0.25}})
	w.Update(stream.OneHot(9), 1)
	if got := w.Estimate(9); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("first-step estimate %g, want ≈0.25", got)
	}
	if w.Steps() != 1 {
		t.Fatalf("Steps = %d", w.Steps())
	}
}

func TestAdaGradMemoryDoublesSketch(t *testing.T) {
	plain := NewWMSketch(Config{Width: 256, Depth: 2, HeapSize: 16})
	ada := NewAdaGradWMSketch(Config{Width: 256, Depth: 2, HeapSize: 16})
	wantExtra := 4 * 256 * 2
	if got := ada.MemoryBytes() - plain.MemoryBytes(); got != wantExtra {
		t.Fatalf("AdaGrad overhead %d B, want %d", got, wantExtra)
	}
}

func TestAdaGradLambdaDecays(t *testing.T) {
	w := NewAdaGradWMSketch(Config{Width: 256, Depth: 1, HeapSize: 4, Lambda: 0.05, Seed: 15,
		Schedule: linear.Constant{Eta0: 0.5}})
	w.Update(stream.OneHot(1), 1)
	w0 := w.Estimate(1)
	for i := 0; i < 200; i++ {
		w.Update(stream.OneHot(2), 1) // touch only feature 2
	}
	w1 := w.Estimate(1)
	if math.Abs(w1) >= math.Abs(w0) {
		t.Fatalf("weight did not decay: %g -> %g", w0, w1)
	}
}
