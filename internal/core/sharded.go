package core

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
)

// Sharded is a parallel learner that scales WM-/AWM-Sketch training across
// cores, realizing the asynchronous-update extension sketched in Section 9
// of the paper. The incoming stream is partitioned round-robin across P
// workers. In the default mode each worker owns a *private* sketch and
// heap — no shared mutable state on the update path at all — and the
// per-shard models are periodically merged into a read-only snapshot by
// exploiting Count-Sketch linearity (internal/sketch/merge.go): the average
// of the shard sketches is exactly the sketch of the averaged shard models
// (parameter mixing). In Hogwild mode (ShardedOptions.Hogwild) all workers
// share a single sketch updated with lock-free compare-and-swap adds
// instead, trading bounded gradient staleness for zero merge latency.
//
// Queries (Predict/Estimate/TopK) are served from the most recent merged
// snapshot under a read lock, so they never contend with training beyond
// the snapshot swap. The snapshot refreshes every SyncEvery updates and on
// demand via Sync.
//
// Concurrency contract: Update may be called from any number of
// goroutines. The vector passed to Update is retained until a worker
// processes it and must not be mutated afterwards. Close must not run
// concurrently with Update. Config.Loss and Config.Schedule must be
// stateless (all implementations in internal/linear are).
type Sharded struct {
	cfg      Config
	opt      ShardedOptions
	sqrtS    float64
	workers  []*shardWorker
	hog      *hogwildState // non-nil in Hogwild mode
	memBytes int

	next    atomic.Uint64 // round-robin router
	pending atomic.Int64  // updates routed since construction
	closed  atomic.Bool

	syncMu    sync.Mutex // single-flight snapshot/merge
	viewMu    sync.RWMutex
	view      *Mixed
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// ShardVariant selects the per-shard model type.
type ShardVariant int

const (
	// ShardAWM gives each worker a private AWM-Sketch (the default; the
	// paper's best-performing configuration).
	ShardAWM ShardVariant = iota
	// ShardWM gives each worker a private basic WM-Sketch.
	ShardWM
)

// ShardedOptions configures the parallel learner.
type ShardedOptions struct {
	// Workers is the number of training goroutines. Defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueSize is each worker's input buffer in examples. Defaults to 256.
	QueueSize int
	// SyncEvery refreshes the merged query snapshot after this many routed
	// updates. 0 selects the default (65536); negative disables automatic
	// refresh (snapshots then only rebuild on explicit Sync/Close).
	SyncEvery int
	// Hogwild shares one sketch across all workers with lock-free CAS
	// updates (Section 9) instead of private shards. Requires Lambda == 0:
	// the lazy global decay factor cannot be maintained without
	// synchronization. Workers keep private passive top-K heaps (WM-style);
	// Variant is ignored.
	Hogwild bool
	// Variant selects the per-shard model in private-shard mode.
	Variant ShardVariant
}

func (o *ShardedOptions) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 65536
	}
}

// shardMsg is one unit of work for a worker: a training example, a batch
// of examples, (when snap is non-nil) a request to report the worker's
// current state, or (when freeze is non-nil) a request to pause in place.
// Control requests ride the same FIFO channel as examples, so they reflect
// every example routed to that worker before the request.
type shardMsg struct {
	x      stream.Vector
	y      int
	batch  []stream.Example
	snap   chan<- *shardSnapshot
	freeze *shardFreeze
}

// shardFreeze quiesces a worker for checkpointing: the worker signals ready
// and then blocks until release is closed. While every worker is parked
// between its ready send and the release, the checkpoint writer may read
// worker-private model state directly — the channel handshake provides the
// happens-before edges in both directions.
type shardFreeze struct {
	ready   chan<- struct{}
	release <-chan struct{}
}

// shardSnapshot is a worker's state handed to the merger: a deep copy with
// the global scale folded in and (for AWM shards) the active set written
// back, plus the worker's heavy-hitter candidates with their true-scale
// weights (exact for AWM active sets, heap estimates for WM).
type shardSnapshot struct {
	folded *sketch.CountSketch // nil in Hogwild mode (the sketch is shared)
	heavy  []stream.Weighted
	steps  int64
}

type shardWorker struct {
	in    chan shardMsg
	model shardModel     // private-shard mode
	hw    *hogwildWorker // Hogwild mode
}

// shardModel is the contract a per-shard learner must satisfy to be
// mergeable: in addition to normal learning it can produce a folded deep
// copy of its sketch (scale applied, exact heap weights reconciled), report
// its heavy-hitter candidates with true-scale weights, and serialize itself
// for checkpointing.
type shardModel interface {
	stream.Learner
	io.WriterTo
	Steps() int64
	foldedSketch() *sketch.CountSketch
	heavyWeights() []stream.Weighted
}

// foldedSketch returns a deep copy of the WM-Sketch's projection with the
// lazy decay factor folded into the buckets, so that √s·median queries on
// the copy return true-scale weights.
func (w *WMSketch) foldedSketch() *sketch.CountSketch {
	c := w.cs.Clone()
	if w.scale != 1 {
		c.Scale(w.scale)
	}
	return c
}

func (w *WMSketch) heavyWeights() []stream.Weighted {
	entries := w.heap.Entries()
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: w.scale * e.Weight}
	}
	return out
}

// rawSketch returns a deep copy of the AWM-Sketch's projection with every
// active-set weight written back (sketch(i) += S[i] − Query(i), the same
// reconciliation Algorithm 2 performs on eviction) but the decay scale NOT
// folded, so it answers √s·scale·median queries for *all* features.
func (a *AWMSketch) rawSketch() *sketch.CountSketch {
	c := a.cs.Clone()
	for _, e := range a.active.Entries() {
		delta := e.Weight - a.sqrtS*c.Estimate(e.Key)
		c.Update(e.Key, delta/a.sqrtS)
	}
	return c
}

// foldedSketch is rawSketch with the decay factor folded in, so the copy
// answers √s·median queries directly.
func (a *AWMSketch) foldedSketch() *sketch.CountSketch {
	c := a.rawSketch()
	if a.scale != 1 {
		c.Scale(a.scale)
	}
	return c
}

func (a *AWMSketch) heavyWeights() []stream.Weighted {
	entries := a.active.Entries()
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight * a.scale}
	}
	return out
}

// NewSharded returns a parallel learner over cfg with opt.Workers training
// goroutines already running. Callers must Close it to stop the workers and
// fold the final state into the query snapshot.
func NewSharded(cfg Config, opt ShardedOptions) *Sharded {
	cfg.fill()
	opt.fill()
	if opt.Hogwild && cfg.Lambda != 0 {
		panic(fmt.Sprintf("core: Hogwild mode requires Lambda == 0 (lazy decay needs synchronization), got %g", cfg.Lambda))
	}
	s := &Sharded{
		cfg:   cfg,
		opt:   opt,
		sqrtS: math.Sqrt(float64(cfg.Depth)),
	}
	s.workers = make([]*shardWorker, opt.Workers)
	if opt.Hogwild {
		s.hog = newHogwildState(cfg)
		for i := range s.workers {
			s.workers[i] = &shardWorker{
				in: make(chan shardMsg, opt.QueueSize),
				hw: newHogwildWorker(s.hog, cfg),
			}
		}
		// One shared sketch plus a private heap per worker.
		s.memBytes = s.hog.cs.MemoryBytes() + opt.Workers*s.workers[0].hw.heap.MemoryBytes(false)
	} else {
		models := make([]shardModel, opt.Workers)
		for i := range models {
			if opt.Variant == ShardWM {
				models[i] = NewWMSketch(cfg)
			} else {
				models[i] = NewAWMSketch(cfg)
			}
		}
		return newShardedFromModels(cfg, opt, models)
	}
	s.startWorkers()
	return s
}

// newShardedFromModels assembles a private-shard learner around existing
// models — freshly constructed by NewSharded, or deserialized by
// LoadSharded — and starts its workers. cfg must be filled and opt final.
func newShardedFromModels(cfg Config, opt ShardedOptions, models []shardModel) *Sharded {
	s := &Sharded{
		cfg:   cfg,
		opt:   opt,
		sqrtS: math.Sqrt(float64(cfg.Depth)),
	}
	s.workers = make([]*shardWorker, len(models))
	for i, m := range models {
		s.workers[i] = &shardWorker{in: make(chan shardMsg, opt.QueueSize), model: m}
		s.memBytes += m.MemoryBytes()
	}
	s.startWorkers()
	return s
}

// startWorkers installs the initial empty query snapshot and launches one
// goroutine per worker.
func (s *Sharded) startWorkers() {
	// Start with an empty (zero-sketch) snapshot so queries before the
	// first sync are well defined.
	s.view = EmptyMixed(s.mixOptions())
	s.wg.Add(len(s.workers))
	for _, w := range s.workers {
		go s.runWorker(w)
	}
}

func (s *Sharded) runWorker(w *shardWorker) {
	defer s.wg.Done()
	for msg := range w.in {
		switch {
		case msg.freeze != nil:
			msg.freeze.ready <- struct{}{}
			<-msg.freeze.release
		case msg.snap != nil:
			msg.snap <- w.snapshot()
		case msg.batch != nil:
			if w.hw != nil {
				for _, ex := range msg.batch {
					w.hw.update(ex.X, ex.Y)
				}
			} else {
				for _, ex := range msg.batch {
					w.model.Update(ex.X, ex.Y)
				}
			}
		default:
			if w.hw != nil {
				w.hw.update(msg.x, msg.y)
			} else {
				w.model.Update(msg.x, msg.y)
			}
		}
	}
}

func (w *shardWorker) snapshot() *shardSnapshot {
	if w.hw != nil {
		keys := w.hw.heap.Keys()
		heavy := make([]stream.Weighted, len(keys))
		for i, k := range keys {
			heavy[i] = stream.Weighted{Index: k}
		}
		return &shardSnapshot{heavy: heavy, steps: w.hw.steps}
	}
	return &shardSnapshot{
		folded: w.model.foldedSketch(),
		heavy:  w.model.heavyWeights(),
		steps:  w.model.Steps(),
	}
}

// Update routes example (x, y) to a worker. It blocks only when the
// worker's queue is full, and briefly when it is the update that triggers a
// periodic snapshot refresh. High-throughput producers should prefer
// UpdateBatch: a channel synchronization per example costs more than a
// depth-1 sketch update itself.
func (s *Sharded) Update(x stream.Vector, y int) {
	if s.closed.Load() {
		panic("core: Update on closed Sharded")
	}
	i := int(s.next.Add(1)-1) % len(s.workers)
	s.workers[i].in <- shardMsg{x: x, y: y}
	if n := s.pending.Add(1); s.opt.SyncEvery > 0 && n%int64(s.opt.SyncEvery) == 0 {
		s.Sync()
	}
}

// UpdateBatch routes a batch of examples, splitting it into one contiguous
// chunk per worker so the channel synchronization is amortized over
// len(batch)/Workers examples. The starting worker rotates per call, so
// repeated batches spread load evenly. The batch (and the vectors inside)
// must not be mutated after the call.
func (s *Sharded) UpdateBatch(batch []stream.Example) {
	if s.closed.Load() {
		panic("core: UpdateBatch on closed Sharded")
	}
	n := len(batch)
	if n == 0 {
		return
	}
	p := len(s.workers)
	chunk := (n + p - 1) / p
	start := int(s.next.Add(1)-1) % p
	for i, c := 0, 0; i < n; i, c = i+chunk, c+1 {
		end := i + chunk
		if end > n {
			end = n
		}
		s.workers[(start+c)%p].in <- shardMsg{batch: batch[i:end]}
	}
	prev := s.pending.Add(int64(n)) - int64(n)
	if se := int64(s.opt.SyncEvery); se > 0 && (prev+int64(n))/se > prev/se {
		s.Sync()
	}
}

// Sync rebuilds the merged query snapshot from the current worker states.
// It blocks until every example routed before the call has been applied
// (the snapshot request travels the same FIFO queues as the examples).
// Concurrent Syncs coalesce behind a single-flight lock.
func (s *Sharded) Sync() {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.closed.Load() {
		return // final snapshot was installed by Close
	}
	replies := make([]chan *shardSnapshot, len(s.workers))
	for i, w := range s.workers {
		ch := make(chan *shardSnapshot, 1)
		replies[i] = ch
		w.in <- shardMsg{snap: ch}
	}
	snaps := make([]*shardSnapshot, len(replies))
	for i, ch := range replies {
		snaps[i] = <-ch
	}
	s.install(s.buildView(snaps))
}

// Close stops the workers, waits for queued examples to drain, and installs
// the final merged snapshot. Queries remain valid after Close; Update
// panics. Close is idempotent and must not race with Update.
func (s *Sharded) Close() {
	s.closeOnce.Do(func() {
		s.syncMu.Lock()
		defer s.syncMu.Unlock()
		s.closed.Store(true)
		for _, w := range s.workers {
			close(w.in)
		}
		s.wg.Wait()
		// Workers have exited; wg.Wait is the happens-before barrier that
		// makes their private state safe to read directly.
		snaps := make([]*shardSnapshot, len(s.workers))
		for i, w := range s.workers {
			snaps[i] = w.snapshot()
		}
		s.install(s.buildView(snaps))
	})
}

func (s *Sharded) install(v *Mixed) {
	s.viewMu.Lock()
	s.view = v
	s.viewMu.Unlock()
}

func (s *Sharded) currentView() *Mixed {
	s.viewMu.RLock()
	v := s.view
	s.viewMu.RUnlock()
	return v
}

func (s *Sharded) mixOptions() MixOptions {
	return MixOptions{Depth: s.cfg.Depth, Width: s.cfg.Width, Seed: s.cfg.Seed, HeapSize: s.cfg.HeapSize}
}

// buildView merges shard snapshots into a read-only model. In Hogwild mode
// the shared sketch is atomically cloned and the union of worker heap keys
// is re-estimated against it. In private-shard mode the folded shard
// sketches go through core.MixSnapshots — the same example-count-weighted
// parameter mixing the cluster layer uses across machines — which also
// gives every heavy-key candidate a mixed "exact" weight that Estimate and
// TopK prefer over the (collision-noisier) merged-sketch query.
func (s *Sharded) buildView(snaps []*shardSnapshot) *Mixed {
	if s.hog != nil {
		merged := s.hog.cs.AtomicClone()
		seen := make(map[uint32]struct{})
		var top []stream.Weighted
		for _, sn := range snaps {
			for _, hv := range sn.heavy {
				if _, dup := seen[hv.Index]; dup {
					continue
				}
				seen[hv.Index] = struct{}{}
				top = append(top, stream.Weighted{Index: hv.Index, Weight: s.sqrtS * merged.Estimate(hv.Index)})
			}
		}
		stream.SortWeighted(top)
		if len(top) > s.cfg.HeapSize {
			top = top[:s.cfg.HeapSize]
		}
		return &Mixed{cs: merged, sqrtS: s.sqrtS, top: top}
	}

	in := make([]Snapshot, len(snaps))
	for i, sn := range snaps {
		in[i] = Snapshot{
			// Zero-padded so the canonical Origin order equals worker order.
			Origin: fmt.Sprintf("%06d", i),
			CS:     sn.folded,
			Scale:  1, // shard snapshots arrive scale-folded
			Heavy:  sn.heavy,
			Steps:  sn.steps,
		}
	}
	v, err := MixSnapshots(in, s.mixOptions())
	if err != nil {
		// Same shape and seed by construction; mixing cannot fail.
		panic("core: shard merge: " + err.Error())
	}
	return v
}

// Predict evaluates the margin under the current merged snapshot.
func (s *Sharded) Predict(x stream.Vector) float64 {
	return s.currentView().Predict(x)
}

// Estimate returns the merged-model weight estimate for feature i, as of
// the last snapshot refresh.
func (s *Sharded) Estimate(i uint32) float64 {
	return s.currentView().Estimate(i)
}

// TopK returns the k heaviest features of the merged model, as of the last
// snapshot refresh.
func (s *Sharded) TopK(k int) []stream.Weighted {
	return s.currentView().TopK(k)
}

// Steps returns the number of updates routed so far (not necessarily yet
// applied by the workers).
func (s *Sharded) Steps() int64 { return s.pending.Load() }

// MemoryBytes reports the aggregate cost-model footprint of the training
// state: P private shards, or in Hogwild mode one shared sketch plus P
// private heaps. The merged query snapshot is transient and not charged.
func (s *Sharded) MemoryBytes() int { return s.memBytes }

var _ stream.Learner = (*Sharded)(nil)
