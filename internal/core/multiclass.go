package core

import (
	"fmt"

	"wmsketch/internal/stream"
)

// Multiclass extends the sketched binary classifier to M output classes by
// the construction in Section 9: maintain M copies of the sketch, evaluate
// all copies at prediction time, and return the argmax margin. Updates are
// one-vs-all: the copy for the true class sees label +1 and every other
// copy sees label −1. For very large M the paper suggests noise contrastive
// estimation; here we provide the exact OVA form, whose update cost scales
// linearly with M.
type Multiclass struct {
	classes []*AWMSketch
}

// NewMulticlass returns an M-class one-vs-all ensemble of AWM-Sketches,
// each configured by cfg with a distinct derived seed.
func NewMulticlass(m int, cfg Config) *Multiclass {
	if m < 2 {
		panic(fmt.Sprintf("core: multiclass needs ≥2 classes, got %d", m))
	}
	classes := make([]*AWMSketch, m)
	for c := range classes {
		cc := cfg
		cc.Seed = cfg.Seed + int64(c)*1000003
		classes[c] = NewAWMSketch(cc)
	}
	return &Multiclass{classes: classes}
}

// NumClasses returns M.
func (mc *Multiclass) NumClasses() int { return len(mc.classes) }

// Update applies a one-vs-all gradient step for true class y ∈ [0, M).
func (mc *Multiclass) Update(x stream.Vector, y int) {
	if y < 0 || y >= len(mc.classes) {
		panic(fmt.Sprintf("core: class %d out of range [0,%d)", y, len(mc.classes)))
	}
	for c, cls := range mc.classes {
		if c == y {
			cls.Update(x, 1)
		} else {
			cls.Update(x, -1)
		}
	}
}

// Predict returns the class with the largest margin.
func (mc *Multiclass) Predict(x stream.Vector) int {
	best, bestMargin := 0, mc.classes[0].Predict(x)
	for c := 1; c < len(mc.classes); c++ {
		if m := mc.classes[c].Predict(x); m > bestMargin {
			best, bestMargin = c, m
		}
	}
	return best
}

// Margins returns the per-class margins.
func (mc *Multiclass) Margins(x stream.Vector) []float64 {
	out := make([]float64, len(mc.classes))
	for c, cls := range mc.classes {
		out[c] = cls.Predict(x)
	}
	return out
}

// Estimate returns class c's weight estimate for feature i.
func (mc *Multiclass) Estimate(c int, i uint32) float64 {
	return mc.classes[c].Estimate(i)
}

// TopK returns class c's heaviest features.
func (mc *Multiclass) TopK(c, k int) []stream.Weighted {
	return mc.classes[c].TopK(k)
}

// MemoryBytes sums the footprint over all class copies.
func (mc *Multiclass) MemoryBytes() int {
	total := 0
	for _, cls := range mc.classes {
		total += cls.MemoryBytes()
	}
	return total
}
