package core

import (
	"wmsketch/internal/stream"
)

// AveragedWMSketch wraps a WM-Sketch and additionally maintains the running
// average z̄ = (1/T)·Σ zₜ of the compressed iterates. Theorem 2's online
// recovery guarantee is stated for Count-Sketch recovery on this average
// rather than the final iterate; the paper's implementation skips the
// average to halve memory and relies on the last iterate working well in
// practice. This type makes the analyzed estimator available — and
// measurable against the last-iterate shortcut — at the documented 2× cost.
type AveragedWMSketch struct {
	*WMSketch
	// avg holds the running average of the UNscaled sketch array times the
	// scale at accumulation time, flattened row-major.
	avg []float64
}

// NewAveragedWMSketch returns an averaging WM-Sketch.
func NewAveragedWMSketch(cfg Config) *AveragedWMSketch {
	w := NewWMSketch(cfg)
	return &AveragedWMSketch{
		WMSketch: w,
		avg:      make([]float64, cfg.Depth*cfg.Width),
	}
}

// Update performs the base WM-Sketch step and folds the post-update iterate
// into the running average: z̄ₜ = z̄ₜ₋₁ + (zₜ − z̄ₜ₋₁)/t.
func (a *AveragedWMSketch) Update(x stream.Vector, y int) {
	a.WMSketch.Update(x, y)
	t := float64(a.WMSketch.Steps())
	idx := 0
	for j := 0; j < a.cfg.Depth; j++ {
		row := a.cs.Row(j)
		for b := 0; b < a.cfg.Width; b++ {
			z := row[b] * a.scale // true (scaled) iterate value
			a.avg[idx] += (z - a.avg[idx]) / t
			idx++
		}
	}
}

// EstimateAveraged recovers feature i's weight from the averaged iterate
// z̄ — the estimator Theorem 2 analyzes.
func (a *AveragedWMSketch) EstimateAveraged(i uint32) float64 {
	vals := make([]float64, a.cfg.Depth)
	for j := 0; j < a.cfg.Depth; j++ {
		b, sign := a.cs.Hashes().BucketSign(j, i, a.cfg.Width)
		vals[j] = sign * a.avg[j*a.cfg.Width+b]
	}
	return a.sqrtS * medianFloat(vals)
}

// EstimateLast recovers from the current (last) iterate, the paper's
// practical shortcut; identical to the embedded WMSketch's Estimate.
func (a *AveragedWMSketch) EstimateLast(i uint32) float64 {
	return a.WMSketch.Estimate(i)
}

// MemoryBytes doubles the sketch portion relative to the plain WM-Sketch.
func (a *AveragedWMSketch) MemoryBytes() int {
	return a.WMSketch.MemoryBytes() + 4*len(a.avg)
}

// medianFloat mirrors the sketch package's median for the averaged path.
func medianFloat(xs []float64) float64 {
	n := len(xs)
	switch n {
	case 0:
		return 0
	case 1:
		return xs[0]
	case 2:
		return xs[0]/2 + xs[1]/2
	}
	// Insertion sort: depth is small (≤ tens of rows).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return xs[n/2-1]/2 + xs[n/2]/2
}

// TrainBatch runs multi-epoch training over a stored dataset — the batch
// setting of Theorem 1, where the learner may take multiple passes to
// approach the regularized empirical minimum z* before recovery. Returns
// the trained sketch.
func TrainBatch(cfg Config, examples []stream.Example, epochs int) *WMSketch {
	if epochs < 1 {
		panic("core: epochs must be positive")
	}
	w := NewWMSketch(cfg)
	for e := 0; e < epochs; e++ {
		for _, ex := range examples {
			w.Update(ex.X, ex.Y)
		}
	}
	return w
}
