package core

import (
	"math"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// AWMSketch is the Active-Set Weight-Median Sketch of Algorithm 2. The
// heaviest weights live exactly in a fixed-capacity min-heap (the active
// set); the sketch estimates only the tail. Heap-resident features are
// updated exactly and lazily written back into the sketch on eviction,
// which reduces collision error for precisely the features that cause the
// most damage. Empirically this variant dominates the basic WM-Sketch in
// both recovery and classification accuracy (Section 7).
type AWMSketch struct {
	cfg      Config
	cs       *sketch.CountSketch
	loss     linear.Loss
	schedule linear.Schedule
	sqrtS    float64
	scale    float64 // global decay α applied to both heap and sketch
	t        int64
	active   *topk.Heap // exact weights, stored unscaled
	// Per-example scratch reused by the fused Update so that every feature
	// is hashed and heap-probed exactly once per example in the common case.
	// refBuf[i] holds feature i's heap reference from the predict pass
	// (topk.NoRef for misses, whose sketch locations are in locBuf instead).
	locBuf    []sketch.Loc
	refBuf    []topk.Ref
	spareLocs []sketch.Loc // fallback for features evicted mid-example
}

// NewAWMSketch returns an AWM-Sketch with the given configuration.
func NewAWMSketch(cfg Config) *AWMSketch {
	cfg.fill()
	return &AWMSketch{
		cfg:       cfg,
		cs:        sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed),
		loss:      cfg.Loss,
		schedule:  cfg.Schedule,
		sqrtS:     math.Sqrt(float64(cfg.Depth)),
		scale:     1,
		active:    topk.New(cfg.HeapSize),
		spareLocs: make([]sketch.Loc, cfg.Depth),
	}
}

// Predict returns the margin: exact heap weights for active-set features
// plus the compressed inner product zᵀRx over the remaining features
// (Algorithm 2's τ).
func (a *AWMSketch) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		if w, ok := a.active.Get(f.Index); ok {
			dot += w * f.Value
		} else {
			dot += f.Value * a.cs.SumSigned(f.Index) / a.sqrtS
		}
	}
	return dot * a.scale
}

// Update applies one Algorithm 2 step: gradient updates to heap-resident
// features, lazy ℓ2 decay of heap and sketch via the shared global scale,
// and per-feature promote-or-sketch decisions for non-resident features.
//
// The prediction is fused into the update: the predict pass records each
// non-resident feature's sketch locations, and the gradient pass reuses
// them, so every (feature, example) pair is hashed exactly once. Depth-1
// sketches (the paper's uniformly-best configuration) take a dedicated path
// with no row loop, median, or √s arithmetic. Both paths are bit-identical
// to the textbook Predict-then-Update formulation.
func (a *AWMSketch) Update(x stream.Vector, y int) {
	if a.cs.Depth() == 1 {
		a.updateDepth1(x, y)
		return
	}
	ys := sgn(y)
	a.t++
	eta := a.schedule.Rate(a.t)

	// Predict pass: exact weights for active-set hits, sketch reads (with
	// location capture) for the tail. Heap refs and sketch locations are
	// recorded so the gradient pass repeats neither the probe nor the hash.
	s := a.cs.Depth()
	locAll, refs := a.ensureBufs(len(x))
	dot := 0.0
	for i, f := range x {
		if r, ok := a.active.GetRef(f.Index); ok {
			refs[i] = r
			dot += a.active.WeightRef(r) * f.Value
		} else {
			refs[i] = topk.NoRef
			l := locAll[i*s : (i+1)*s]
			a.cs.Locate(f.Index, l)
			dot += f.Value * a.cs.SumAt(l) / a.sqrtS
		}
	}
	margin := ys * (dot * a.scale)
	g := a.loss.Deriv(margin)

	// Regularization: S ← (1−λη)S and z ← (1−λη)z, applied lazily; the
	// factor is clamped at 0 so aggressive (η, λ) cannot sign-flip the model.
	if a.cfg.Lambda > 0 {
		decay := decayFactor(eta, a.cfg.Lambda)
		if a.cfg.NoScaleTrick {
			a.cs.Scale(decay)
			a.active.ScaleWeights(decay)
		} else {
			a.scale *= decay
			if a.scale < minScale {
				a.renormalize()
			}
		}
	}

	// step is the true-space gradient step magnitude −ηy g (per unit x_f),
	// expressed in unscaled storage units.
	effScale := a.scale
	if a.cfg.NoScaleTrick {
		effScale = 1
	}
	step := eta * ys * g / effScale

	// refsValid: no structural heap change has occurred since the predict
	// pass, so the recorded refs (and recorded misses) are still accurate.
	// The first promotion or eviction invalidates them and later features
	// fall back to a fresh probe — exactly the accesses the unfused
	// formulation would make.
	refsValid := true
	for i, f := range x {
		if f.Value == 0 {
			continue
		}
		r := refs[i]
		if !refsValid {
			r, _ = a.active.GetRef(f.Index)
		}
		if r != topk.NoRef {
			// Heap update: S[i] ← S[i] − ηy∇ℓ·xᵢ (exact).
			if g != 0 {
				a.active.UpdateMagnitudeRef(r, a.active.WeightRef(r)-step*f.Value)
			}
			continue
		}
		var l []sketch.Loc
		if refs[i] == topk.NoRef {
			l = locAll[i*s : (i+1)*s]
		} else {
			// The feature was heap-resident at predict time but has been
			// evicted by a duplicate index earlier in this example; hash it
			// now (rare).
			l = a.spareLocs
			a.cs.Locate(f.Index, l)
		}
		// Candidate weight for promotion: w̃ ← Query(i) − ηy xᵢ∇ℓ(yτ).
		wTilde := a.sqrtS*a.cs.EstimateAt(l) - step*f.Value

		if !a.active.Full() {
			// Free heap slot: promote unconditionally. The feature's stale
			// sketched mass remains in the sketch (per Algorithm 2) and is
			// reconciled on eviction.
			a.active.InsertMagnitude(f.Index, wTilde)
			refsValid = false
			continue
		}
		min, _ := a.active.Min()
		if absf(wTilde) > min.Score {
			// Evict the smallest heap entry and write its weight back into
			// the sketch as a delta: sketch(imin) += S[imin] − Query(imin),
			// restoring Query(imin) ≈ S[imin].
			a.active.PopMin()
			delta := min.Weight - a.queryUnscaled(min.Key)
			a.sketchAdd(min.Key, delta)
			a.active.InsertMagnitude(f.Index, wTilde)
			refsValid = false
		} else if g != 0 {
			// Not promoted: apply the gradient step to the sketch.
			a.cs.AddAt(l, (-step*f.Value)/a.sqrtS)
		}
	}
}

// updateDepth1 is Update specialized for Depth=1: one hash per non-resident
// feature, direct row access, no median, and no √s arithmetic (√1 = 1, so
// eliding it is exact).
func (a *AWMSketch) updateDepth1(x stream.Vector, y int) {
	ys := sgn(y)
	a.t++
	eta := a.schedule.Rate(a.t)

	cs := a.cs
	tab := cs.Hashes().Row(0)
	row := cs.Row(0)
	width := cs.Width()
	locs, refs := a.ensureBufs(len(x))

	dot := 0.0
	for i, f := range x {
		if r, ok := a.active.GetRef(f.Index); ok {
			refs[i] = r
			dot += a.active.WeightRef(r) * f.Value
		} else {
			refs[i] = topk.NoRef
			b, sign := tab.BucketSign(f.Index, width)
			locs[i] = sketch.Loc{Bucket: int32(b), Sign: sign}
			dot += f.Value * (sign * row[b])
		}
	}
	margin := ys * (dot * a.scale)
	g := a.loss.Deriv(margin)

	if a.cfg.Lambda > 0 {
		decay := decayFactor(eta, a.cfg.Lambda)
		if a.cfg.NoScaleTrick {
			cs.Scale(decay)
			a.active.ScaleWeights(decay)
		} else {
			a.scale *= decay
			if a.scale < minScale {
				a.renormalize()
			}
		}
	}

	effScale := a.scale
	if a.cfg.NoScaleTrick {
		effScale = 1
	}
	step := eta * ys * g / effScale

	refsValid := true
	for i, f := range x {
		if f.Value == 0 {
			continue
		}
		r := refs[i]
		if !refsValid {
			r, _ = a.active.GetRef(f.Index)
		}
		if r != topk.NoRef {
			if g != 0 {
				a.active.UpdateMagnitudeRef(r, a.active.WeightRef(r)-step*f.Value)
			}
			continue
		}
		var l sketch.Loc
		if refs[i] == topk.NoRef {
			l = locs[i]
		} else {
			b, sign := tab.BucketSign(f.Index, width)
			l = sketch.Loc{Bucket: int32(b), Sign: sign}
		}
		wTilde := l.Sign*row[l.Bucket] - step*f.Value

		if !a.active.Full() {
			a.active.InsertMagnitude(f.Index, wTilde)
			refsValid = false
			continue
		}
		min, _ := a.active.Min()
		if absf(wTilde) > min.Score {
			a.active.PopMin()
			mb, msign := tab.BucketSign(min.Key, width)
			delta := min.Weight - msign*row[mb]
			row[mb] += msign * delta
			a.active.InsertMagnitude(f.Index, wTilde)
			refsValid = false
		} else if g != 0 {
			row[l.Bucket] += l.Sign * (-step * f.Value)
		}
	}
}

// ensureBufs returns the per-example scratch buffers grown to cover n
// features at the sketch's depth.
func (a *AWMSketch) ensureBufs(n int) ([]sketch.Loc, []topk.Ref) {
	need := n * a.cs.Depth()
	if cap(a.locBuf) < need {
		a.locBuf = make([]sketch.Loc, need)
	}
	if cap(a.refBuf) < n {
		a.refBuf = make([]topk.Ref, n)
	}
	return a.locBuf[:need], a.refBuf[:n]
}

// sketchAdd adds delta (in unscaled storage units) to feature i's sketched
// weight; the per-bucket increment carries the 1/√s projection factor so
// that queryUnscaled returns √s·median ≈ delta.
func (a *AWMSketch) sketchAdd(i uint32, delta float64) {
	a.cs.Update(i, delta/a.sqrtS)
}

// queryUnscaled returns the sketch's tail estimate for i in unscaled units.
func (a *AWMSketch) queryUnscaled(i uint32) float64 {
	return a.sqrtS * a.cs.Estimate(i)
}

// Estimate returns the model's weight estimate for feature i: exact when i
// is in the active set, the Count-Sketch median query otherwise.
func (a *AWMSketch) Estimate(i uint32) float64 {
	if w, ok := a.active.Get(i); ok {
		return w * a.scale
	}
	return a.scale * a.queryUnscaled(i)
}

// TopK returns the k heaviest active-set features, descending by |weight|.
func (a *AWMSketch) TopK(k int) []stream.Weighted {
	entries := a.active.TopK(k)
	out := make([]stream.Weighted, len(entries))
	for i, e := range entries {
		out[i] = stream.Weighted{Index: e.Key, Weight: e.Weight * a.scale}
	}
	return out
}

// InActiveSet reports whether feature i currently resides in the heap.
func (a *AWMSketch) InActiveSet(i uint32) bool { return a.active.Contains(i) }

// ActiveSetSize returns the number of features in the active set.
func (a *AWMSketch) ActiveSetSize() int { return a.active.Len() }

// renormalize folds the global scale into heap and sketch.
func (a *AWMSketch) renormalize() {
	a.cs.Scale(a.scale)
	a.active.ScaleWeights(a.scale)
	a.scale = 1
}

// Steps returns the number of updates applied.
func (a *AWMSketch) Steps() int64 { return a.t }

// Scale exposes the global decay factor for tests.
func (a *AWMSketch) Scale() float64 { return a.scale }

// Sketch exposes the backing Count-Sketch for white-box tests.
func (a *AWMSketch) Sketch() *sketch.CountSketch { return a.cs }

// MemoryBytes reports the Section 7.1 footprint: sketch buckets plus
// id+weight per active-set slot.
func (a *AWMSketch) MemoryBytes() int {
	return a.cs.MemoryBytes() + a.active.MemoryBytes(false)
}
