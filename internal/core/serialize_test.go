package core

import (
	"bytes"
	"strings"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

func trainBoth(t *testing.T, n int) (*WMSketch, *AWMSketch) {
	t.Helper()
	gen := newPlanted(1000, 5, defaultPlantedWeights(), 11)
	w := NewWMSketch(Config{Width: 128, Depth: 2, HeapSize: 32, Lambda: 1e-4, Seed: 3})
	a := NewAWMSketch(Config{Width: 256, Depth: 1, HeapSize: 32, Lambda: 1e-4, Seed: 3})
	for i := 0; i < n; i++ {
		ex := gen.next()
		w.Update(ex.X, ex.Y)
		a.Update(ex.X, ex.Y)
	}
	return w, a
}

func TestWMSketchRoundTrip(t *testing.T) {
	w, _ := trainBoth(t, 3000)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWMSketch(&buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps() != w.Steps() || got.Scale() != w.Scale() {
		t.Fatalf("state mismatch: steps %d/%d scale %g/%g",
			got.Steps(), w.Steps(), got.Scale(), w.Scale())
	}
	for i := uint32(0); i < 1000; i++ {
		if got.Estimate(i) != w.Estimate(i) {
			t.Fatalf("estimate mismatch for feature %d", i)
		}
	}
	// TopK must agree.
	a, b := w.TopK(10), got.TopK(10)
	if len(a) != len(b) {
		t.Fatalf("TopK sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d] %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAWMSketchRoundTripAndResume(t *testing.T) {
	_, a := trainBoth(t, 3000)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAWMSketch(&buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1000; i++ {
		if got.Estimate(i) != a.Estimate(i) {
			t.Fatalf("estimate mismatch for feature %d", i)
		}
	}
	if got.ActiveSetSize() != a.ActiveSetSize() {
		t.Fatalf("active set size %d/%d", got.ActiveSetSize(), a.ActiveSetSize())
	}
	// Resumed training must stay bit-identical to uninterrupted training.
	gen1 := newPlanted(1000, 5, defaultPlantedWeights(), 99)
	gen2 := newPlanted(1000, 5, defaultPlantedWeights(), 99)
	for i := 0; i < 500; i++ {
		e1, e2 := gen1.next(), gen2.next()
		a.Update(e1.X, e1.Y)
		got.Update(e2.X, e2.Y)
	}
	for i := uint32(0); i < 1000; i++ {
		if got.Estimate(i) != a.Estimate(i) {
			t.Fatalf("post-resume estimate mismatch for feature %d", i)
		}
	}
}

func TestLoadCustomLossAndSchedule(t *testing.T) {
	a := NewAWMSketch(Config{Width: 64, Depth: 1, HeapSize: 8, Seed: 1,
		Loss: linear.NewSmoothedHinge(), Schedule: linear.Constant{Eta0: 0.5}})
	a.Update(stream.OneHot(3), 1)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAWMSketch(&buf, linear.NewSmoothedHinge(), linear.Constant{Eta0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Same next update on both must agree (behaviour restored by caller).
	a.Update(stream.OneHot(3), 1)
	got.Update(stream.OneHot(3), 1)
	if got.Estimate(3) != a.Estimate(3) {
		t.Fatal("custom loss/schedule resume diverged")
	}
}

func TestSerializeErrors(t *testing.T) {
	if _, err := LoadAWMSketch(strings.NewReader("nope"), nil, nil); err == nil {
		t.Error("garbage input must error")
	}
	// WM blob into AWM loader: magic mismatch.
	w, _ := trainBoth(t, 100)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAWMSketch(&buf, nil, nil); err == nil {
		t.Error("magic mismatch must error")
	}
	// Truncated stream.
	buf.Reset()
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadWMSketch(bytes.NewReader(short), nil, nil); err == nil {
		t.Error("truncated stream must error")
	}
}
