package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"wmsketch/internal/datagen"
)

// Hardening tests for the learner restore path, mirroring the sketch-layer
// ones: a corrupt checkpoint must produce a clean error — not a huge
// allocation, a Config.fill panic, or NaN-poisoned state.
//
// Serialized layout (little-endian): magic(0) version(4) width(8) depth(12)
// heapSize(16) lambda(20,f64) seed(28,i64) scale(36,f64) t(44,i64)
// heapLen(52), then heapLen × (key u32, weight f64) from offset 56.
const (
	hdrOffHeapSize = 16
	hdrOffLambda   = 20
	hdrOffScale    = 36
	hdrOffT        = 44
	hdrOffHeapLen  = 52
	hdrOffEntries  = 56
)

func trainedWMBlob(t *testing.T) []byte {
	t.Helper()
	w := NewWMSketch(Config{Width: 64, Depth: 2, HeapSize: 8, Lambda: 1e-4, Seed: 3})
	gen := datagen.RCV1Like(1)
	for _, ex := range gen.Take(200) {
		w.Update(ex.X, ex.Y)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsImplausibleHeap(t *testing.T) {
	blob := trainedWMBlob(t)
	// heapSize = heapLen = 0xFFFFFFFF passes the heapLen<=heapSize check but
	// would demand a ~100 GiB entries slice plus a 4x index table; the load
	// must error on the capacity bound before allocating.
	bad := append([]byte(nil), blob...)
	for _, off := range []int{hdrOffHeapSize, hdrOffHeapLen} {
		binary.LittleEndian.PutUint32(bad[off:], math.MaxUint32)
	}
	if _, err := LoadWMSketch(bytes.NewReader(bad), nil, nil); err == nil {
		t.Error("implausible heap capacity must be rejected")
	}
	// heapSize = 0 would panic Config.fill; it must error instead.
	bad = append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[hdrOffHeapSize:], 0)
	binary.LittleEndian.PutUint32(bad[hdrOffHeapLen:], 0)
	if _, err := LoadWMSketch(bytes.NewReader(bad), nil, nil); err == nil {
		t.Error("zero heap capacity must be rejected, not panic")
	}
}

func TestLoadRejectsCorruptScalars(t *testing.T) {
	blob := trainedWMBlob(t)
	nan := math.Float64bits(math.NaN())
	cases := []struct {
		name  string
		patch func(b []byte)
	}{
		{"nan-scale", func(b []byte) { binary.LittleEndian.PutUint64(b[hdrOffScale:], nan) }},
		{"zero-scale", func(b []byte) { binary.LittleEndian.PutUint64(b[hdrOffScale:], 0) }},
		{"negative-scale", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrOffScale:], math.Float64bits(-1))
		}},
		{"nan-lambda", func(b []byte) { binary.LittleEndian.PutUint64(b[hdrOffLambda:], nan) }},
		{"negative-lambda", func(b []byte) {
			// Would panic Config.fill("negative lambda") if it got through.
			binary.LittleEndian.PutUint64(b[hdrOffLambda:], math.Float64bits(-0.5))
		}},
		{"negative-steps", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrOffT:], uint64(math.MaxUint64)) // -1
		}},
		{"nan-heap-weight", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrOffEntries+4:], nan) // entry 0's weight
		}},
	}
	for _, tc := range cases {
		bad := append([]byte(nil), blob...)
		tc.patch(bad)
		if _, err := LoadWMSketch(bytes.NewReader(bad), nil, nil); err == nil {
			t.Errorf("%s: corrupt checkpoint must be rejected", tc.name)
		}
	}
	// The unpatched blob still loads (the patches above, not the harness,
	// cause the rejections).
	if _, err := LoadWMSketch(bytes.NewReader(blob), nil, nil); err != nil {
		t.Fatalf("pristine blob failed to load: %v", err)
	}
}
