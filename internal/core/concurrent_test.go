package core

import (
	"sync"
	"testing"

	"wmsketch/internal/stream"
)

func TestConcurrentParallelUpdatesAndQueries(t *testing.T) {
	c := NewConcurrent(NewAWMSketch(Config{
		Width: 512, Depth: 1, HeapSize: 64, Lambda: 1e-6, Seed: 31,
	}))
	gens := make([]*planted, 4)
	for i := range gens {
		gens[i] = newPlanted(500, 5, defaultPlantedWeights(), int64(400+i))
	}
	var wg sync.WaitGroup
	// Two writer goroutines, two query goroutines.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(gen *planted) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				ex := gen.next()
				c.Update(ex.X, ex.Y)
			}
		}(gens[g])
	}
	for g := 2; g < 4; g++ {
		wg.Add(1)
		go func(gen *planted) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				ex := gen.next()
				_ = c.Predict(ex.X)
				_ = c.Estimate(ex.X[0].Index)
				if i%100 == 0 {
					_ = c.TopK(8)
				}
			}
		}(gens[g])
	}
	wg.Wait()
	// The model must have learned the planted signs despite interleaving.
	correct := 0
	for i, want := range defaultPlantedWeights() {
		if c.Estimate(i)*want > 0 {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("only %d/5 planted signs correct after concurrent training", correct)
	}
	if c.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must pass through")
	}
}

func TestConcurrentNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil learner")
		}
	}()
	NewConcurrent(nil)
}

func TestConcurrentIsDropInLearner(t *testing.T) {
	var l stream.Learner = NewConcurrent(NewWMSketch(Config{
		Width: 64, Depth: 1, HeapSize: 8, Seed: 33,
	}))
	l.Update(stream.OneHot(1), 1)
	if l.Estimate(1) == 0 {
		t.Fatal("wrapped update lost")
	}
}
