// Package core implements the paper's primary contribution: the
// Weight-Median Sketch (WM-Sketch, Algorithm 1) and the Active-Set
// Weight-Median Sketch (AWM-Sketch, Algorithm 2) for learning compressed
// linear classifiers over data streams with approximate recovery of the
// most heavily-weighted features.
//
// Both sketches maintain a Count-Sketch projection z of the weight vector
// of a linear classifier and update it by online gradient descent on the
// compressed objective
//
//	L̂ₜ(z) = ℓ(yₜ·zᵀRxₜ) + (λ/2)‖z‖²₂,
//
// where R = A/√s is the Count-Sketch matrix scaled so it has the
// Johnson-Lindenstrauss property (Kane & Nelson 2014). Weight estimates are
// recovered by the standard Count-Sketch median query scaled by √s.
package core

import (
	"fmt"
	"math"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// Config configures a WM-Sketch or AWM-Sketch.
type Config struct {
	// Width is the number of buckets per row (k/s in the paper).
	Width int
	// Depth is the number of rows s. The AWM-Sketch configuration that
	// performed uniformly best in the paper uses Depth=1.
	Depth int
	// HeapSize is the capacity of the top-weight heap: the passive
	// maintenance heap for the WM-Sketch, the active set for the AWM-Sketch.
	HeapSize int
	// Loss is the margin loss; nil selects logistic loss.
	Loss linear.Loss
	// Schedule is the learning-rate schedule; nil selects η₀=0.1, ηₜ=η₀/√t.
	Schedule linear.Schedule
	// Lambda is the ℓ2-regularization strength λ.
	Lambda float64
	// Seed drives the sketch's hash functions.
	Seed int64
	// NoScaleTrick disables the lazy global-scale regularization
	// optimization and applies weight decay to every bucket explicitly.
	// Exposed for the ablation study; results are identical up to float
	// rounding but updates cost O(k + s·nnz(x)) instead of O(s·nnz(x)).
	NoScaleTrick bool
}

func (c *Config) fill() {
	if c.Width <= 0 {
		panic(fmt.Sprintf("core: width must be positive, got %d", c.Width))
	}
	if c.Depth <= 0 {
		panic(fmt.Sprintf("core: depth must be positive, got %d", c.Depth))
	}
	if c.HeapSize <= 0 {
		panic(fmt.Sprintf("core: heap size must be positive, got %d", c.HeapSize))
	}
	if c.Loss == nil {
		c.Loss = linear.Logistic{}
	}
	if c.Schedule == nil {
		c.Schedule = linear.DefaultSchedule()
	}
	if c.Lambda < 0 {
		panic("core: negative lambda")
	}
	if cs, ok := c.Schedule.(linear.Constant); ok && cs.Eta0*c.Lambda >= 1 {
		panic(fmt.Sprintf("core: constant schedule with Eta0·Lambda = %g ≥ 1: "+
			"the decay factor 1−ηλ is non-positive on every step, which zeroes "+
			"or sign-flips the model; lower Eta0 or Lambda", cs.Eta0*c.Lambda))
	}
}

// decayFactor returns the per-step ℓ2 decay multiplier 1−ηλ, clamped at 0.
// Without the clamp a transiently large learning rate (e.g. the first steps
// of an aggressive InvSqrt schedule) makes the factor negative: the lazy
// global scale then goes negative and the next renormalize sign-flips and
// amplifies every bucket, silently corrupting the model. A factor of 0 is
// the correct saturation: full decay, i.e. the regularizer pulls the model
// exactly to zero before the gradient step.
func decayFactor(eta, lambda float64) float64 {
	d := 1 - eta*lambda
	if d < 0 {
		return 0
	}
	return d
}

// minScale triggers folding the global scale into the buckets to avoid
// floating-point underflow on long streams.
const minScale = 1e-9

// sgn returns the float ±1 for a ±1 integer label and panics otherwise:
// silent acceptance of 0/1 labels would corrupt gradients.
func sgn(y int) float64 {
	switch y {
	case 1:
		return 1
	case -1:
		return -1
	default:
		panic(fmt.Sprintf("core: label must be ±1, got %d", y))
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func isBad(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// assertLearner statically checks both sketches satisfy stream.Learner.
var (
	_ stream.Learner = (*WMSketch)(nil)
	_ stream.Learner = (*AWMSketch)(nil)
)
