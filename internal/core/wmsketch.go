package core

import (
	"math"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// WMSketch is the Weight-Median Sketch of Algorithm 1: a Count-Sketch
// data structure updated by online gradient descent on the projected
// classification objective, supporting median-query recovery of individual
// weights. A passive magnitude heap tracks the heaviest estimates seen so
// far so that TopK queries do not require enumerating the feature space.
type WMSketch struct {
	cfg      Config
	cs       *sketch.CountSketch
	loss     linear.Loss
	schedule linear.Schedule
	sqrtS    float64
	scale    float64 // global decay factor α; true z = scale · stored z
	t        int64
	heap     *topk.Heap // passive top-weight tracking (unscaled scores)
}

// NewWMSketch returns a WM-Sketch with the given configuration.
func NewWMSketch(cfg Config) *WMSketch {
	cfg.fill()
	return &WMSketch{
		cfg:      cfg,
		cs:       sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed),
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		sqrtS:    math.Sqrt(float64(cfg.Depth)),
		scale:    1,
		heap:     topk.New(cfg.HeapSize),
	}
}

// Predict returns the margin τ = zᵀRx of the compressed classifier.
// Expanding the projection, τ = (α/√s)·Σ_f x_f · Σⱼ σⱼ(f)·z[j][hⱼ(f)].
func (w *WMSketch) Predict(x stream.Vector) float64 {
	dot := 0.0
	for _, f := range x {
		dot += f.Value * w.cs.SumSigned(f.Index)
	}
	return dot * w.scale / w.sqrtS
}

// Update applies one online gradient descent step on example (x, y):
//
//	z ← (1−ληₜ)z − ηₜ·y·ℓ'(y·zᵀRx)·Rx
//
// using the lazy global-scale trick for the decay term, so the cost is
// O(s·nnz(x)) (plus heap maintenance).
func (w *WMSketch) Update(x stream.Vector, y int) {
	ys := sgn(y)
	w.t++
	eta := w.schedule.Rate(w.t)
	margin := ys * w.Predict(x)
	g := w.loss.Deriv(margin)

	if w.cfg.Lambda > 0 {
		if w.cfg.NoScaleTrick {
			w.cs.Scale(1 - eta*w.cfg.Lambda)
			w.heap.ScaleWeights(1 - eta*w.cfg.Lambda)
		} else {
			w.scale *= 1 - eta*w.cfg.Lambda
			if w.scale < minScale {
				w.renormalize()
			}
		}
	}
	if g != 0 {
		// Gradient term: each feature f contributes −η·y·g·x_f·(1/√s) to its
		// signed buckets; divide by scale because buckets store unscaled z.
		step := eta * ys * g / (w.sqrtS * w.scale)
		if w.cfg.NoScaleTrick {
			step = eta * ys * g / w.sqrtS
		}
		for _, f := range x {
			w.cs.Update(f.Index, -step*f.Value)
		}
	}
	// Passively refresh the heap with the touched features' new estimates.
	for _, f := range x {
		w.offerToHeap(f.Index)
	}
}

// offerToHeap inserts or refreshes feature i with its current unscaled
// estimate. Unscaled values keep heap ordering consistent across decay.
func (w *WMSketch) offerToHeap(i uint32) {
	est := w.queryUnscaled(i)
	if w.heap.Contains(i) {
		w.heap.UpdateMagnitude(i, est)
		return
	}
	if !w.heap.Full() {
		w.heap.InsertMagnitude(i, est)
		return
	}
	if min, _ := w.heap.Min(); absf(est) > min.Score {
		w.heap.PopMin()
		w.heap.InsertMagnitude(i, est)
	}
}

// queryUnscaled is the Count-Sketch median query scaled by √s but not by the
// global decay factor.
func (w *WMSketch) queryUnscaled(i uint32) float64 {
	return w.sqrtS * w.cs.Estimate(i)
}

// Estimate returns the recovered weight ŵᵢ: the median over rows of
// √s·σⱼ(i)·z[j][hⱼ(i)], times the global scale (Algorithm 1's Query).
func (w *WMSketch) Estimate(i uint32) float64 {
	return w.scale * w.queryUnscaled(i)
}

// TopK returns the k heaviest features tracked by the passive heap, with
// fresh sketch estimates, in descending |weight| order.
func (w *WMSketch) TopK(k int) []stream.Weighted {
	entries := w.heap.Entries()
	out := make([]stream.Weighted, 0, len(entries))
	for _, e := range entries {
		out = append(out, stream.Weighted{Index: e.Key, Weight: w.Estimate(e.Key)})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// renormalize folds the global scale into the bucket array; O(k).
func (w *WMSketch) renormalize() {
	w.cs.Scale(w.scale)
	w.heap.ScaleWeights(w.scale)
	w.scale = 1
}

// Steps returns the number of updates applied.
func (w *WMSketch) Steps() int64 { return w.t }

// Scale exposes the current global decay factor (diagnostics and tests).
func (w *WMSketch) Scale() float64 { return w.scale }

// Sketch exposes the backing Count-Sketch (white-box tests, ablations).
func (w *WMSketch) Sketch() *sketch.CountSketch { return w.cs }

// MemoryBytes reports the Section 7.1 cost-model footprint: 4 bytes per
// sketch bucket plus id+weight per heap slot.
func (w *WMSketch) MemoryBytes() int {
	return w.cs.MemoryBytes() + w.heap.MemoryBytes(false)
}
