package core

import (
	"math"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
	"wmsketch/internal/topk"
)

// WMSketch is the Weight-Median Sketch of Algorithm 1: a Count-Sketch
// data structure updated by online gradient descent on the projected
// classification objective, supporting median-query recovery of individual
// weights. A passive magnitude heap tracks the heaviest estimates seen so
// far so that TopK queries do not require enumerating the feature space.
type WMSketch struct {
	cfg      Config
	cs       *sketch.CountSketch
	loss     linear.Loss
	schedule linear.Schedule
	sqrtS    float64
	scale    float64 // global decay factor α; true z = scale · stored z
	t        int64
	heap     *topk.Heap // passive top-weight tracking (unscaled scores)
	// locBuf holds each feature's (bucket, sign) locations for the example
	// being processed, so Update hashes each feature exactly once and reuses
	// the locations for the margin read, the gradient write, and the heap
	// refresh. Grown on demand; never shared across goroutines.
	locBuf []sketch.Loc
}

// NewWMSketch returns a WM-Sketch with the given configuration.
func NewWMSketch(cfg Config) *WMSketch {
	cfg.fill()
	return &WMSketch{
		cfg:      cfg,
		cs:       sketch.NewCountSketch(cfg.Depth, cfg.Width, cfg.Seed),
		loss:     cfg.Loss,
		schedule: cfg.Schedule,
		sqrtS:    math.Sqrt(float64(cfg.Depth)),
		scale:    1,
		heap:     topk.New(cfg.HeapSize),
	}
}

// Predict returns the margin τ = zᵀRx of the compressed classifier.
// Expanding the projection, τ = (α/√s)·Σ_f x_f · Σⱼ σⱼ(f)·z[j][hⱼ(f)].
//
// Depth-1 sketches take a dedicated path (the serving hot path): the row,
// hash table, and width are hoisted out of the loop and the √1 = 1 division
// is elided, which is exact, so the result is bit-identical to the general
// path (asserted by the equivalence tests).
func (w *WMSketch) Predict(x stream.Vector) float64 {
	if w.cs.Depth() == 1 {
		tab := w.cs.Hashes().Row(0)
		row := w.cs.Row(0)
		width := w.cs.Width()
		dot := 0.0
		for _, f := range x {
			b, sign := tab.BucketSign(f.Index, width)
			dot += f.Value * (sign * row[b])
		}
		return dot * w.scale
	}
	dot := 0.0
	for _, f := range x {
		dot += f.Value * w.cs.SumSigned(f.Index)
	}
	return dot * w.scale / w.sqrtS
}

// Update applies one online gradient descent step on example (x, y):
//
//	z ← (1−ληₜ)z − ηₜ·y·ℓ'(y·zᵀRx)·Rx
//
// using the lazy global-scale trick for the decay term, so the cost is
// O(s·nnz(x)) (plus heap maintenance).
//
// The implementation fuses the prediction into the update: each feature is
// hashed exactly once per example, and the recorded (bucket, sign)
// locations are reused for the margin, the gradient write, and the heap
// refresh. Depth-1 sketches take a dedicated path that also skips the √s
// scaling and the per-row loop. Both paths produce bit-identical results to
// the textbook Predict-then-Update formulation (asserted by the equivalence
// tests).
func (w *WMSketch) Update(x stream.Vector, y int) {
	if w.cs.Depth() == 1 {
		w.updateDepth1(x, y)
		return
	}
	ys := sgn(y)
	w.t++
	eta := w.schedule.Rate(w.t)

	s := w.cs.Depth()
	locs := w.ensureLocs(len(x) * s)
	dot := 0.0
	for i, f := range x {
		l := locs[i*s : (i+1)*s]
		w.cs.Locate(f.Index, l)
		dot += f.Value * w.cs.SumAt(l)
	}
	margin := ys * (dot * w.scale / w.sqrtS)
	g := w.loss.Deriv(margin)

	if w.cfg.Lambda > 0 {
		decay := decayFactor(eta, w.cfg.Lambda)
		if w.cfg.NoScaleTrick {
			w.cs.Scale(decay)
			w.heap.ScaleWeights(decay)
		} else {
			w.scale *= decay
			if w.scale < minScale {
				w.renormalize()
			}
		}
	}
	if g != 0 {
		// Gradient term: each feature f contributes −η·y·g·x_f·(1/√s) to its
		// signed buckets; divide by scale because buckets store unscaled z.
		step := eta * ys * g / (w.sqrtS * w.scale)
		if w.cfg.NoScaleTrick {
			step = eta * ys * g / w.sqrtS
		}
		for i, f := range x {
			w.cs.AddAt(locs[i*s:(i+1)*s], -step*f.Value)
		}
	}
	// Passively refresh the heap with the touched features' new estimates.
	for i, f := range x {
		w.offerToHeap(f.Index, w.sqrtS*w.cs.EstimateAt(locs[i*s:(i+1)*s]))
	}
}

// updateDepth1 is Update specialized for Depth=1: one hash per feature, no
// row loop, no median, and no √s multiplies (√1 = 1, so eliding them is
// exact).
func (w *WMSketch) updateDepth1(x stream.Vector, y int) {
	ys := sgn(y)
	w.t++
	eta := w.schedule.Rate(w.t)

	cs := w.cs
	tab := cs.Hashes().Row(0)
	row := cs.Row(0)
	width := cs.Width()
	locs := w.ensureLocs(len(x))

	dot := 0.0
	for i, f := range x {
		b, sign := tab.BucketSign(f.Index, width)
		locs[i] = sketch.Loc{Bucket: int32(b), Sign: sign}
		dot += f.Value * (sign * row[b])
	}
	margin := ys * (dot * w.scale)
	g := w.loss.Deriv(margin)

	if w.cfg.Lambda > 0 {
		decay := decayFactor(eta, w.cfg.Lambda)
		if w.cfg.NoScaleTrick {
			cs.Scale(decay)
			w.heap.ScaleWeights(decay)
		} else {
			w.scale *= decay
			if w.scale < minScale {
				w.renormalize()
			}
		}
	}
	if g != 0 {
		step := eta * ys * g / w.scale
		if w.cfg.NoScaleTrick {
			step = eta * ys * g
		}
		for i, f := range x {
			l := locs[i]
			row[l.Bucket] += l.Sign * (-step * f.Value)
		}
	}
	for i, f := range x {
		l := locs[i]
		w.offerToHeap(f.Index, l.Sign*row[l.Bucket])
	}
}

// ensureLocs returns the reusable location buffer grown to at least n.
func (w *WMSketch) ensureLocs(n int) []sketch.Loc {
	if cap(w.locBuf) < n {
		w.locBuf = make([]sketch.Loc, n)
	}
	return w.locBuf[:n]
}

// offerToHeap inserts or refreshes feature i with est, its current unscaled
// estimate. Unscaled values keep heap ordering consistent across decay.
// A single index probe covers both the membership test and the update.
func (w *WMSketch) offerToHeap(i uint32, est float64) {
	if r, ok := w.heap.GetRef(i); ok {
		w.heap.UpdateMagnitudeRef(r, est)
		return
	}
	if !w.heap.Full() {
		w.heap.InsertMagnitude(i, est)
		return
	}
	if min, _ := w.heap.Min(); absf(est) > min.Score {
		w.heap.PopMin()
		w.heap.InsertMagnitude(i, est)
	}
}

// queryUnscaled is the Count-Sketch median query scaled by √s but not by the
// global decay factor.
func (w *WMSketch) queryUnscaled(i uint32) float64 {
	return w.sqrtS * w.cs.Estimate(i)
}

// Estimate returns the recovered weight ŵᵢ: the median over rows of
// √s·σⱼ(i)·z[j][hⱼ(i)], times the global scale (Algorithm 1's Query).
func (w *WMSketch) Estimate(i uint32) float64 {
	return w.scale * w.queryUnscaled(i)
}

// TopK returns the k heaviest features tracked by the passive heap, with
// fresh sketch estimates, in descending |weight| order.
func (w *WMSketch) TopK(k int) []stream.Weighted {
	entries := w.heap.Entries()
	out := make([]stream.Weighted, 0, len(entries))
	for _, e := range entries {
		out = append(out, stream.Weighted{Index: e.Key, Weight: w.Estimate(e.Key)})
	}
	stream.SortWeighted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// renormalize folds the global scale into the bucket array; O(k).
func (w *WMSketch) renormalize() {
	w.cs.Scale(w.scale)
	w.heap.ScaleWeights(w.scale)
	w.scale = 1
}

// Steps returns the number of updates applied.
func (w *WMSketch) Steps() int64 { return w.t }

// Scale exposes the current global decay factor (diagnostics and tests).
func (w *WMSketch) Scale() float64 { return w.scale }

// Sketch exposes the backing Count-Sketch (white-box tests, ablations).
func (w *WMSketch) Sketch() *sketch.CountSketch { return w.cs }

// MemoryBytes reports the Section 7.1 cost-model footprint: 4 bytes per
// sketch bucket plus id+weight per heap slot.
func (w *WMSketch) MemoryBytes() int {
	return w.cs.MemoryBytes() + w.heap.MemoryBytes(false)
}
