package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/topk"
)

// Serialization lets a trained classifier be checkpointed and resumed — a
// practical necessity for long-running streams. The format captures the
// sketch buckets, the heap contents, the global scale, and the step
// counter. Loss and Schedule are behaviour, not state; the loader takes
// them from the caller (nil selects the defaults used throughout the
// paper) so custom losses round-trip without a registry.
//
// Layout (little-endian), after a 4-byte magic + 4-byte version:
//
//	width, depth, heapSize uint32
//	lambda float64, seed int64, scale float64, t int64
//	heapLen uint32, then heapLen × (key uint32, weight float64)
//	the backing Count-Sketch in its own format
const (
	magicWM      = 0x574d5357 // "WMSW"
	magicAWM     = 0x574d5341 // "WMSA"
	magicSharded = 0x574d5353 // "WMSS"
)

// WriteTo serializes the WM-Sketch state. It implements io.WriterTo.
func (w *WMSketch) WriteTo(out io.Writer) (int64, error) {
	return writeSketchState(out, magicWM, &w.cfg, w.scale, w.t, w.heap, w.cs)
}

// LoadWMSketch restores a WM-Sketch written by WriteTo. loss and schedule
// replace the serialized behaviour; nil selects the defaults.
func LoadWMSketch(r io.Reader, loss linear.Loss, schedule linear.Schedule) (*WMSketch, error) {
	cfg, scale, t, entries, cs, err := readSketchState(r, magicWM)
	if err != nil {
		return nil, err
	}
	cfg.Loss = loss
	cfg.Schedule = schedule
	w := NewWMSketch(cfg)
	w.cs = cs
	w.scale = scale
	w.t = t
	for _, e := range entries {
		w.heap.Insert(e.Key, e.Weight, e.Score)
	}
	return w, nil
}

// WriteTo serializes the AWM-Sketch state. It implements io.WriterTo.
func (a *AWMSketch) WriteTo(out io.Writer) (int64, error) {
	return writeSketchState(out, magicAWM, &a.cfg, a.scale, a.t, a.active, a.cs)
}

// LoadAWMSketch restores an AWM-Sketch written by WriteTo.
func LoadAWMSketch(r io.Reader, loss linear.Loss, schedule linear.Schedule) (*AWMSketch, error) {
	cfg, scale, t, entries, cs, err := readSketchState(r, magicAWM)
	if err != nil {
		return nil, err
	}
	cfg.Loss = loss
	cfg.Schedule = schedule
	a := NewAWMSketch(cfg)
	a.cs = cs
	a.scale = scale
	a.t = t
	for _, e := range entries {
		a.active.Insert(e.Key, e.Weight, e.Score)
	}
	return a, nil
}

// WriteTo checkpoints the parallel learner in private-shard mode: a header
// (magic, version, variant, worker count, routed-update counter) followed by
// each worker's model in its own serialization. The workers are quiesced in
// place for the duration of the write via a freeze handshake on the same
// FIFO queues that carry examples, so the checkpoint reflects every example
// routed before the call and training resumes as soon as the write ends —
// no teardown, no merge. Hogwild mode is not checkpointable: the shared
// sketch admits no consistent cut while CAS writers race.
//
// WriteTo may run concurrently with Update; updates queue behind the freeze
// and are applied after it releases.
func (s *Sharded) WriteTo(out io.Writer) (int64, error) {
	if s.hog != nil {
		return 0, fmt.Errorf("core: hogwild-mode Sharded cannot be checkpointed")
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if !s.closed.Load() {
		ready := make(chan struct{})
		release := make(chan struct{})
		for _, w := range s.workers {
			w.in <- shardMsg{freeze: &shardFreeze{ready: ready, release: release}}
		}
		for range s.workers {
			<-ready
		}
		defer close(release)
	}
	// Workers are parked (or exited, after Close); their models are safe to
	// read directly.
	bw := bufio.NewWriter(out)
	var n int64
	variant := uint32(s.opt.Variant)
	fields := []interface{}{
		uint32(magicSharded), uint32(serializeVersion),
		variant, uint32(len(s.workers)), s.pending.Load(),
	}
	for _, f := range fields {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return n, err
		}
		n += int64(binary.Size(f))
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	for _, w := range s.workers {
		m, err := w.model.WriteTo(out)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// LoadSharded restores a parallel learner checkpointed by Sharded.WriteTo.
// loss and schedule replace the serialized behaviour (nil selects the
// defaults); opt configures queue sizes and sync cadence, but the worker
// count and shard variant come from the checkpoint — per-shard state cannot
// be re-partitioned — and Hogwild must be off. The restored learner is live
// (workers running) with its query snapshot already rebuilt.
func LoadSharded(r io.Reader, loss linear.Loss, schedule linear.Schedule, opt ShardedOptions) (*Sharded, error) {
	if opt.Hogwild {
		return nil, fmt.Errorf("core: hogwild-mode Sharded cannot be restored from a checkpoint")
	}
	br := bufio.NewReader(r)
	var magic, version, variant, workers uint32
	var pending int64
	for _, p := range []interface{}{&magic, &version, &variant, &workers, &pending} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: truncated sharded header: %w", err)
		}
	}
	if magic != magicSharded {
		return nil, fmt.Errorf("core: bad sharded magic %#x", magic)
	}
	if version != serializeVersion {
		return nil, fmt.Errorf("core: unsupported sharded version %d", version)
	}
	if workers == 0 || workers > maxShardedWorkers {
		return nil, fmt.Errorf("core: implausible worker count %d", workers)
	}
	if variant != uint32(ShardAWM) && variant != uint32(ShardWM) {
		return nil, fmt.Errorf("core: unknown shard variant %d", variant)
	}
	if pending < 0 {
		return nil, fmt.Errorf("core: negative update counter %d", pending)
	}
	models := make([]shardModel, workers)
	var cfg Config
	for i := range models {
		var (
			m   shardModel
			c   Config
			err error
		)
		if ShardVariant(variant) == ShardWM {
			var w *WMSketch
			w, err = LoadWMSketch(br, loss, schedule)
			if w != nil {
				m, c = w, w.cfg
			}
		} else {
			var a *AWMSketch
			a, err = LoadAWMSketch(br, loss, schedule)
			if a != nil {
				m, c = a, a.cfg
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		if i == 0 {
			cfg = c
		} else if c.Width != cfg.Width || c.Depth != cfg.Depth || c.Seed != cfg.Seed {
			return nil, fmt.Errorf("core: shard %d shape/seed disagrees with shard 0", i)
		}
		models[i] = m
	}
	opt.Workers = int(workers)
	opt.Variant = ShardVariant(variant)
	opt.fill()
	s := newShardedFromModels(cfg, opt, models)
	s.pending.Store(pending)
	s.Sync()
	return s, nil
}

// maxShardedWorkers bounds the worker count accepted from a checkpoint so a
// corrupt header cannot demand millions of goroutines and sketches.
const maxShardedWorkers = 4096

// maxSerializedHeap bounds the heap capacity accepted from a checkpoint:
// without it a corrupt 4-byte heapSize/heapLen pair could demand a ~100 GiB
// entries allocation (plus a 4× index table in topk.New) before a single
// heap byte is read. 2^24 slots is far above any configuration the paper
// uses, far below an OOM.
const maxSerializedHeap = 1 << 24

func writeSketchState(out io.Writer, magic uint32, cfg *Config, scale float64,
	t int64, heap *topk.Heap, cs *sketch.CountSketch) (int64, error) {
	bw := bufio.NewWriter(out)
	var n int64
	entries := heap.Entries()
	fields := []interface{}{
		magic, uint32(serializeVersion),
		uint32(cfg.Width), uint32(cfg.Depth), uint32(cfg.HeapSize),
		cfg.Lambda, cfg.Seed, scale, t,
		uint32(len(entries)),
	}
	for _, f := range fields {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return n, err
		}
		n += int64(binary.Size(f))
	}
	for _, e := range entries {
		for _, f := range []interface{}{e.Key, e.Weight} {
			if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
				return n, err
			}
			n += int64(binary.Size(f))
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	m, err := cs.WriteTo(out)
	return n + m, err
}

const serializeVersion = 1

func readSketchState(r io.Reader, wantMagic uint32) (cfg Config, scale float64,
	t int64, entries []topk.Entry, cs *sketch.CountSketch, err error) {
	br := bufio.NewReader(r)
	var magic, version, width, depth, heapSize, heapLen uint32
	var lambda float64
	var seed int64
	for _, p := range []interface{}{&magic, &version, &width, &depth, &heapSize,
		&lambda, &seed, &scale, &t, &heapLen} {
		if err = binary.Read(br, binary.LittleEndian, p); err != nil {
			err = fmt.Errorf("core: truncated header: %w", err)
			return
		}
	}
	if magic != wantMagic {
		err = fmt.Errorf("core: bad magic %#x", magic)
		return
	}
	if version != serializeVersion {
		err = fmt.Errorf("core: unsupported version %d", version)
		return
	}
	// Defensive restore, mirroring the sketch layer: every header field that
	// sizes an allocation or feeds arithmetic is validated before use, so a
	// corrupt checkpoint yields a clean error rather than an OOM, a panic in
	// Config.fill, or NaN-poisoned estimates.
	if heapSize == 0 || heapSize > maxSerializedHeap {
		err = fmt.Errorf("core: implausible heap capacity %d", heapSize)
		return
	}
	if heapLen > heapSize {
		err = fmt.Errorf("core: heap length %d exceeds capacity %d", heapLen, heapSize)
		return
	}
	if isBad(lambda) || lambda < 0 {
		err = fmt.Errorf("core: corrupt lambda %g", lambda)
		return
	}
	if isBad(scale) || scale <= 0 {
		err = fmt.Errorf("core: corrupt scale %g", scale)
		return
	}
	if t < 0 {
		err = fmt.Errorf("core: negative step counter %d", t)
		return
	}
	entries = make([]topk.Entry, heapLen)
	for i := range entries {
		var key uint32
		var weight float64
		if err = binary.Read(br, binary.LittleEndian, &key); err != nil {
			err = fmt.Errorf("core: truncated heap: %w", err)
			return
		}
		if err = binary.Read(br, binary.LittleEndian, &weight); err != nil {
			err = fmt.Errorf("core: truncated heap: %w", err)
			return
		}
		if isBad(weight) {
			err = fmt.Errorf("core: heap entry %d has non-finite weight", i)
			return
		}
		score := weight
		if score < 0 {
			score = -score
		}
		entries[i] = topk.Entry{Key: key, Weight: weight, Score: score}
	}
	cs, err = sketch.ReadCountSketch(br)
	if err != nil {
		return
	}
	if cs.Width() != int(width) || cs.Depth() != int(depth) {
		err = fmt.Errorf("core: sketch shape %dx%d disagrees with header %dx%d",
			cs.Depth(), cs.Width(), depth, width)
		return
	}
	cfg = Config{
		Width: int(width), Depth: int(depth), HeapSize: int(heapSize),
		Lambda: lambda, Seed: seed,
	}
	return
}
