package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"wmsketch/internal/linear"
	"wmsketch/internal/sketch"
	"wmsketch/internal/topk"
)

// Serialization lets a trained classifier be checkpointed and resumed — a
// practical necessity for long-running streams. The format captures the
// sketch buckets, the heap contents, the global scale, and the step
// counter. Loss and Schedule are behaviour, not state; the loader takes
// them from the caller (nil selects the defaults used throughout the
// paper) so custom losses round-trip without a registry.
//
// Layout (little-endian), after a 4-byte magic + 4-byte version:
//
//	width, depth, heapSize uint32
//	lambda float64, seed int64, scale float64, t int64
//	heapLen uint32, then heapLen × (key uint32, weight float64)
//	the backing Count-Sketch in its own format
const (
	magicWM  = 0x574d5357 // "WMSW"
	magicAWM = 0x574d5341 // "WMSA"
)

// WriteTo serializes the WM-Sketch state. It implements io.WriterTo.
func (w *WMSketch) WriteTo(out io.Writer) (int64, error) {
	return writeSketchState(out, magicWM, &w.cfg, w.scale, w.t, w.heap, w.cs)
}

// LoadWMSketch restores a WM-Sketch written by WriteTo. loss and schedule
// replace the serialized behaviour; nil selects the defaults.
func LoadWMSketch(r io.Reader, loss linear.Loss, schedule linear.Schedule) (*WMSketch, error) {
	cfg, scale, t, entries, cs, err := readSketchState(r, magicWM)
	if err != nil {
		return nil, err
	}
	cfg.Loss = loss
	cfg.Schedule = schedule
	w := NewWMSketch(cfg)
	w.cs = cs
	w.scale = scale
	w.t = t
	for _, e := range entries {
		w.heap.Insert(e.Key, e.Weight, e.Score)
	}
	return w, nil
}

// WriteTo serializes the AWM-Sketch state. It implements io.WriterTo.
func (a *AWMSketch) WriteTo(out io.Writer) (int64, error) {
	return writeSketchState(out, magicAWM, &a.cfg, a.scale, a.t, a.active, a.cs)
}

// LoadAWMSketch restores an AWM-Sketch written by WriteTo.
func LoadAWMSketch(r io.Reader, loss linear.Loss, schedule linear.Schedule) (*AWMSketch, error) {
	cfg, scale, t, entries, cs, err := readSketchState(r, magicAWM)
	if err != nil {
		return nil, err
	}
	cfg.Loss = loss
	cfg.Schedule = schedule
	a := NewAWMSketch(cfg)
	a.cs = cs
	a.scale = scale
	a.t = t
	for _, e := range entries {
		a.active.Insert(e.Key, e.Weight, e.Score)
	}
	return a, nil
}

func writeSketchState(out io.Writer, magic uint32, cfg *Config, scale float64,
	t int64, heap *topk.Heap, cs *sketch.CountSketch) (int64, error) {
	bw := bufio.NewWriter(out)
	var n int64
	entries := heap.Entries()
	fields := []interface{}{
		magic, uint32(serializeVersion),
		uint32(cfg.Width), uint32(cfg.Depth), uint32(cfg.HeapSize),
		cfg.Lambda, cfg.Seed, scale, t,
		uint32(len(entries)),
	}
	for _, f := range fields {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return n, err
		}
		n += int64(binary.Size(f))
	}
	for _, e := range entries {
		for _, f := range []interface{}{e.Key, e.Weight} {
			if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
				return n, err
			}
			n += int64(binary.Size(f))
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	m, err := cs.WriteTo(out)
	return n + m, err
}

const serializeVersion = 1

func readSketchState(r io.Reader, wantMagic uint32) (cfg Config, scale float64,
	t int64, entries []topk.Entry, cs *sketch.CountSketch, err error) {
	br := bufio.NewReader(r)
	var magic, version, width, depth, heapSize, heapLen uint32
	var lambda float64
	var seed int64
	for _, p := range []interface{}{&magic, &version, &width, &depth, &heapSize,
		&lambda, &seed, &scale, &t, &heapLen} {
		if err = binary.Read(br, binary.LittleEndian, p); err != nil {
			err = fmt.Errorf("core: truncated header: %w", err)
			return
		}
	}
	if magic != wantMagic {
		err = fmt.Errorf("core: bad magic %#x", magic)
		return
	}
	if version != serializeVersion {
		err = fmt.Errorf("core: unsupported version %d", version)
		return
	}
	if heapLen > heapSize {
		err = fmt.Errorf("core: heap length %d exceeds capacity %d", heapLen, heapSize)
		return
	}
	entries = make([]topk.Entry, heapLen)
	for i := range entries {
		var key uint32
		var weight float64
		if err = binary.Read(br, binary.LittleEndian, &key); err != nil {
			err = fmt.Errorf("core: truncated heap: %w", err)
			return
		}
		if err = binary.Read(br, binary.LittleEndian, &weight); err != nil {
			err = fmt.Errorf("core: truncated heap: %w", err)
			return
		}
		score := weight
		if score < 0 {
			score = -score
		}
		entries[i] = topk.Entry{Key: key, Weight: weight, Score: score}
	}
	cs, err = sketch.ReadCountSketch(br)
	if err != nil {
		return
	}
	if cs.Width() != int(width) || cs.Depth() != int(depth) {
		err = fmt.Errorf("core: sketch shape %dx%d disagrees with header %dx%d",
			cs.Depth(), cs.Width(), depth, width)
		return
	}
	cfg = Config{
		Width: int(width), Depth: int(depth), HeapSize: int(heapSize),
		Lambda: lambda, Seed: seed,
	}
	return
}
