package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// planted describes a synthetic linear-model stream for recovery tests.
type planted struct {
	weights map[uint32]float64
	keys    []uint32
	rng     *rand.Rand
	d       int
	nnz     int
}

func newPlanted(d, nnz int, weights map[uint32]float64, seed int64) *planted {
	keys := make([]uint32, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return &planted{
		weights: weights,
		keys:    keys,
		rng:     rand.New(rand.NewSource(seed)),
		d:       d,
		nnz:     nnz,
	}
}

// next draws x with nnz unit features — with probability 0.8 one of them is
// a planted signal feature — and labels from the noiseless sign of the
// planted model (random when no signal feature is present).
func (p *planted) next() stream.Example {
	x := make(stream.Vector, 0, p.nnz)
	seen := map[uint32]bool{}
	if p.rng.Float64() < 0.8 {
		k := p.keys[p.rng.Intn(len(p.keys))]
		seen[k] = true
		x = append(x, stream.Feature{Index: k, Value: 1})
	}
	for len(x) < p.nnz {
		i := uint32(p.rng.Intn(p.d))
		if seen[i] || p.weights[i] != 0 {
			continue
		}
		seen[i] = true
		x = append(x, stream.Feature{Index: i, Value: 1})
	}
	margin := 0.0
	for _, f := range x {
		margin += p.weights[f.Index] * f.Value
	}
	y := 1
	if margin < 0 {
		y = -1
	} else if margin == 0 && p.rng.Intn(2) == 0 {
		y = -1
	}
	return stream.Example{X: x, Y: y}
}

func defaultPlantedWeights() map[uint32]float64 {
	return map[uint32]float64{
		3:   4.0,
		17:  -3.5,
		42:  3.0,
		99:  -2.5,
		123: 2.0,
	}
}

func TestWMSketchRecoversPlantedSigns(t *testing.T) {
	weights := defaultPlantedWeights()
	gen := newPlanted(1000, 5, weights, 1)
	w := NewWMSketch(Config{Width: 512, Depth: 3, HeapSize: 64, Lambda: 1e-5, Seed: 7})
	for i := 0; i < 20000; i++ {
		ex := gen.next()
		w.Update(ex.X, ex.Y)
	}
	for i, want := range weights {
		got := w.Estimate(i)
		if got*want <= 0 {
			t.Errorf("feature %d: estimate %g disagrees in sign with planted %g", i, got, want)
		}
	}
	// The planted features must dominate the top-K.
	top := w.TopK(5)
	found := 0
	for _, e := range top {
		if _, ok := weights[e.Index]; ok {
			found++
		}
	}
	if found < 4 {
		t.Errorf("only %d/5 planted features in top-5: %+v", found, top)
	}
}

func TestWMSketchClassifiesPlantedStream(t *testing.T) {
	gen := newPlanted(1000, 5, defaultPlantedWeights(), 2)
	w := NewWMSketch(Config{Width: 256, Depth: 2, HeapSize: 32, Lambda: 1e-6, Seed: 3})
	mistakes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ex := gen.next()
		if w.Predict(ex.X)*float64(ex.Y) <= 0 {
			mistakes++
		}
		w.Update(ex.X, ex.Y)
	}
	// 80% of examples carry a deterministic signal feature and 20% have
	// random labels, so the Bayes floor is 10%; chance is 50%.
	rate := float64(mistakes) / n
	if rate > 0.3 {
		t.Fatalf("online error rate %.3f not far better than chance", rate)
	}
}

func TestWMSketchMatchesLogRegWhenLossless(t *testing.T) {
	// With width ≥ d and depth 1 there can still be collisions, so use a
	// huge width: every feature gets its own bucket w.h.p. and the WM-Sketch
	// should track uncompressed logistic regression almost exactly.
	const d = 20
	w := NewWMSketch(Config{Width: 1 << 14, Depth: 1, HeapSize: d, Lambda: 1e-4, Seed: 11,
		Schedule: linear.Constant{Eta0: 0.1}})
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-4, Schedule: linear.Constant{Eta0: 0.1}})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		x := stream.Vector{
			{Index: uint32(rng.Intn(d)), Value: rng.NormFloat64()},
			{Index: uint32(rng.Intn(d)), Value: rng.NormFloat64()},
		}
		y := 1
		if x[0].Value+x[1].Value < 0 {
			y = -1
		}
		w.Update(x, y)
		lr.Update(x, y)
	}
	for i := uint32(0); i < d; i++ {
		got, want := w.Estimate(i), lr.Estimate(i)
		if math.Abs(got-want) > 0.02*(1+math.Abs(want)) {
			t.Errorf("feature %d: WM %g vs LR %g", i, got, want)
		}
	}
}

func TestWMSketchScaleTrickEquivalence(t *testing.T) {
	// Lazy scaling and explicit per-bucket decay must produce identical
	// models (up to rounding).
	mk := func(noTrick bool) *WMSketch {
		return NewWMSketch(Config{Width: 128, Depth: 2, HeapSize: 16, Lambda: 1e-3,
			Seed: 9, NoScaleTrick: noTrick, Schedule: linear.Constant{Eta0: 0.1}})
	}
	lazy, explicit := mk(false), mk(true)
	gen := newPlanted(500, 4, defaultPlantedWeights(), 6)
	for i := 0; i < 2000; i++ {
		ex := gen.next()
		lazy.Update(ex.X, ex.Y)
		explicit.Update(ex.X, ex.Y)
	}
	for i := uint32(0); i < 500; i++ {
		a, b := lazy.Estimate(i), explicit.Estimate(i)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("feature %d: lazy %g vs explicit %g", i, a, b)
		}
	}
}

func TestWMSketchRenormalizationStability(t *testing.T) {
	// Aggressive decay forces many renormalizations; estimates must stay
	// finite and the scale bounded.
	w := NewWMSketch(Config{Width: 64, Depth: 2, HeapSize: 8, Lambda: 0.5, Seed: 13,
		Schedule: linear.Constant{Eta0: 1.0}})
	x := stream.Vector{{Index: 1, Value: 1}}
	for i := 0; i < 500; i++ {
		w.Update(x, 1)
	}
	if got := w.Estimate(1); isBad(got) {
		t.Fatalf("estimate diverged: %g", got)
	}
	if w.Scale() < minScale || w.Scale() > 1 {
		t.Fatalf("scale %g outside (%g, 1]", w.Scale(), minScale)
	}
}

func TestWMSketchZeroLambdaMatchesCountSketchScaling(t *testing.T) {
	// With λ=0, constant rate η, and loss gradient treated as the Count-
	// Sketch scaling constant (Section 5.1), a single one-hot update must
	// move the estimate by exactly η·|ℓ'(0)| in the right direction.
	w := NewWMSketch(Config{Width: 128, Depth: 3, HeapSize: 8, Seed: 17,
		Schedule: linear.Constant{Eta0: 0.2}})
	w.Update(stream.OneHot(5), 1)
	// Logistic ℓ'(0) = −0.5 ⇒ Δw₅ = −η·y·ℓ'·x = 0.2·0.5 = 0.1.
	if got := w.Estimate(5); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("estimate after one update = %g, want 0.1", got)
	}
	if w.Steps() != 1 {
		t.Fatalf("Steps = %d", w.Steps())
	}
}

func TestWMSketchDepthDisambiguates(t *testing.T) {
	// With one row and tiny width, collisions corrupt estimates; more rows
	// should reduce the worst-case error for planted features. Run both and
	// compare total absolute error.
	weights := defaultPlantedWeights()
	errFor := func(depth, width int) float64 {
		gen := newPlanted(2000, 5, weights, 21)
		w := NewWMSketch(Config{Width: width, Depth: depth, HeapSize: 16, Lambda: 1e-5, Seed: 23})
		for i := 0; i < 15000; i++ {
			ex := gen.next()
			w.Update(ex.X, ex.Y)
		}
		total := 0.0
		for i, want := range weights {
			total += math.Abs(w.Estimate(i) - want)
		}
		return total
	}
	shallow := errFor(1, 64)
	deep := errFor(4, 64) // same total size 256 vs 64: deeper AND wider total
	if deep > shallow*1.5 {
		t.Fatalf("deep sketch (err %.3f) much worse than shallow (err %.3f)", deep, shallow)
	}
}

func TestWMSketchMemoryBytes(t *testing.T) {
	w := NewWMSketch(Config{Width: 128, Depth: 2, HeapSize: 128})
	want := 4*128*2 + 8*128
	if got := w.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestWMSketchConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Depth: 1, HeapSize: 1},
		{Width: 1, Depth: 0, HeapSize: 1},
		{Width: 1, Depth: 1, HeapSize: 0},
		{Width: 1, Depth: 1, HeapSize: 1, Lambda: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewWMSketch(cfg)
		}()
	}
}

func TestWMSketchBadLabelPanics(t *testing.T) {
	w := NewWMSketch(Config{Width: 16, Depth: 1, HeapSize: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label 0")
		}
	}()
	w.Update(stream.OneHot(1), 0)
}

func TestWMSketchTopKDescending(t *testing.T) {
	gen := newPlanted(300, 5, defaultPlantedWeights(), 31)
	w := NewWMSketch(Config{Width: 256, Depth: 2, HeapSize: 32, Lambda: 1e-6, Seed: 37})
	for i := 0; i < 5000; i++ {
		ex := gen.next()
		w.Update(ex.X, ex.Y)
	}
	top := w.TopK(10)
	for i := 1; i < len(top); i++ {
		if math.Abs(top[i].Weight) > math.Abs(top[i-1].Weight)+1e-12 {
			t.Fatalf("TopK not descending at %d", i)
		}
	}
}

func BenchmarkWMSketchUpdate(b *testing.B) {
	gen := newPlanted(100000, 10, defaultPlantedWeights(), 1)
	examples := make([]stream.Example, 4096)
	for i := range examples {
		examples[i] = gen.next()
	}
	w := NewWMSketch(Config{Width: 1024, Depth: 4, HeapSize: 128, Lambda: 1e-6, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := examples[i&4095]
		w.Update(ex.X, ex.Y)
	}
}
