package sketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization format (little-endian):
//
//	magic   uint32  ('WMCS' for CountSketch, 'WMCM' for CountMin)
//	version uint32
//	seed    int64
//	depth   uint32
//	width   uint32
//	flags   uint32  (CountMin: bit 0 = conservative)
//	total   float64 (CountMin only)
//	buckets depth*width float64
//
// The hash functions are reconstructed from the seed, so a deserialized
// sketch answers queries identically to the original and remains mergeable
// with sketches built from the same seed.

const (
	magicCountSketch = 0x574d4353 // "WMCS"
	magicCountMin    = 0x574d434d // "WMCM"
	serializeVersion = 1
)

// seed is retained by sketches solely so that serialization can rebuild
// identical hash functions.

// WriteTo serializes the sketch. It implements io.WriterTo.
func (cs *CountSketch) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n, err := writeHeader(bw, magicCountSketch, cs.seed, cs.depth, cs.width, 0)
	if err != nil {
		return n, err
	}
	for _, row := range cs.rows {
		for _, v := range row {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return n, err
			}
			n += 8
		}
	}
	return n, bw.Flush()
}

// ReadCountSketch deserializes a sketch written by WriteTo.
func ReadCountSketch(r io.Reader) (*CountSketch, error) {
	br := bufio.NewReader(r)
	seed, depth, width, _, err := readHeader(br, magicCountSketch)
	if err != nil {
		return nil, err
	}
	cs := NewCountSketch(depth, width, seed)
	for _, row := range cs.rows {
		for i := range row {
			if err := binary.Read(br, binary.LittleEndian, &row[i]); err != nil {
				return nil, fmt.Errorf("sketch: truncated bucket data: %w", err)
			}
		}
	}
	return cs, nil
}

// WriteTo serializes the sketch. It implements io.WriterTo.
func (cm *CountMin) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	flags := uint32(0)
	if cm.conservative {
		flags |= 1
	}
	n, err := writeHeader(bw, magicCountMin, cm.seed, cm.depth, cm.width, flags)
	if err != nil {
		return n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, cm.total); err != nil {
		return n, err
	}
	n += 8
	for _, row := range cm.rows {
		for _, v := range row {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return n, err
			}
			n += 8
		}
	}
	return n, bw.Flush()
}

// ReadCountMin deserializes a sketch written by WriteTo.
func ReadCountMin(r io.Reader) (*CountMin, error) {
	br := bufio.NewReader(r)
	seed, depth, width, flags, err := readHeader(br, magicCountMin)
	if err != nil {
		return nil, err
	}
	cm := NewCountMin(depth, width, seed)
	cm.conservative = flags&1 != 0
	if err := binary.Read(br, binary.LittleEndian, &cm.total); err != nil {
		return nil, fmt.Errorf("sketch: truncated total: %w", err)
	}
	for _, row := range cm.rows {
		for i := range row {
			if err := binary.Read(br, binary.LittleEndian, &row[i]); err != nil {
				return nil, fmt.Errorf("sketch: truncated bucket data: %w", err)
			}
		}
	}
	if math.IsNaN(cm.total) {
		return nil, fmt.Errorf("sketch: corrupt total")
	}
	return cm, nil
}

func writeHeader(w io.Writer, magic uint32, seed int64, depth, width int, flags uint32) (int64, error) {
	hdr := []interface{}{
		magic, uint32(serializeVersion), seed, uint32(depth), uint32(width), flags,
	}
	n := int64(0)
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += int64(binary.Size(v))
	}
	return n, nil
}

func readHeader(r io.Reader, wantMagic uint32) (seed int64, depth, width int, flags uint32, err error) {
	var magic, version, d32, w32 uint32
	for _, p := range []interface{}{&magic, &version, &seed, &d32, &w32, &flags} {
		if err = binary.Read(r, binary.LittleEndian, p); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("sketch: truncated header: %w", err)
		}
	}
	if magic != wantMagic {
		return 0, 0, 0, 0, fmt.Errorf("sketch: bad magic %#x", magic)
	}
	if version != serializeVersion {
		return 0, 0, 0, 0, fmt.Errorf("sketch: unsupported version %d", version)
	}
	if d32 == 0 || w32 == 0 || d32 > 1<<16 || w32 > 1<<30 {
		return 0, 0, 0, 0, fmt.Errorf("sketch: implausible shape %dx%d", d32, w32)
	}
	return seed, int(d32), int(w32), flags, nil
}
