package sketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization format (little-endian):
//
//	magic   uint32  ('WMCS' for CountSketch, 'WMCM' for CountMin)
//	version uint32
//	seed    int64
//	depth   uint32
//	width   uint32
//	flags   uint32  (CountMin: bit 0 = conservative)
//	total   float64 (CountMin only)
//	buckets depth*width float64
//
// The hash functions are reconstructed from the seed, so a deserialized
// sketch answers queries identically to the original and remains mergeable
// with sketches built from the same seed.
//
// Restore is defensive: the header's shape is bounded (maxSerializedBuckets)
// before any bucket allocation, and every restored bucket is checked for
// NaN/±Inf — a long-lived serving process must never adopt a checkpoint that
// would poison its arithmetic.

const (
	magicCountSketch = 0x574d4353 // "WMCS"
	magicCountMin    = 0x574d434d // "WMCM"
	serializeVersion = 1
)

// maxSerializedBuckets caps depth×width accepted on restore. Without it a
// corrupt or adversarial 24-byte header (depth up to 2^16, width up to 2^30)
// could demand a petabyte-scale allocation before a single bucket byte is
// read. 2^27 buckets = 1 GiB of float64 — far above any configuration the
// paper or this repository uses, far below an OOM.
const maxSerializedBuckets = 1 << 27

// serializeChunk is the number of float64s encoded per buffered chunk on the
// bulk read/write paths (32 KiB of scratch).
const serializeChunk = 4096

// seed is retained by sketches solely so that serialization can rebuild
// identical hash functions.

// writeFloats bulk-encodes vals with a manual PutUint64 loop — one Write per
// chunk instead of one reflective binary.Write per element. The byte output
// is identical to binary.Write(w, binary.LittleEndian, v) per element.
func writeFloats(w io.Writer, scratch []byte, vals []float64) (int64, error) {
	var n int64
	for len(vals) > 0 {
		c := len(vals)
		if c > serializeChunk {
			c = serializeChunk
		}
		b := scratch[:8*c]
		for i, v := range vals[:c] {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		m, err := w.Write(b)
		n += int64(m)
		if err != nil {
			return n, err
		}
		vals = vals[c:]
	}
	return n, nil
}

// readFloats bulk-decodes into vals, the inverse of writeFloats.
func readFloats(r io.Reader, scratch []byte, vals []float64) error {
	for len(vals) > 0 {
		c := len(vals)
		if c > serializeChunk {
			c = serializeChunk
		}
		b := scratch[:8*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return err
		}
		for i := range vals[:c] {
			//lint:ignore nonfinite every restored row is validated whole by validateBuckets right after the bulk read
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		vals = vals[c:]
	}
	return nil
}

// validateBuckets rejects NaN/±Inf in a restored row: a checkpoint carrying
// non-finite buckets would silently corrupt every later estimate and update.
func validateBuckets(kind string, row []float64) error {
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sketch: %s bucket %d is non-finite (%g)", kind, i, v)
		}
	}
	return nil
}

func newScratch() []byte { return make([]byte, 8*serializeChunk) }

// WriteTo serializes the sketch. It implements io.WriterTo.
func (cs *CountSketch) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n, err := writeHeader(bw, magicCountSketch, cs.seed, cs.depth, cs.width, 0)
	if err != nil {
		return n, err
	}
	scratch := newScratch()
	for _, row := range cs.rows {
		m, err := writeFloats(bw, scratch, row)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCountSketch deserializes a sketch written by WriteTo.
func ReadCountSketch(r io.Reader) (*CountSketch, error) {
	br := bufio.NewReader(r)
	seed, depth, width, _, err := readHeader(br, magicCountSketch)
	if err != nil {
		return nil, err
	}
	cs := NewCountSketch(depth, width, seed)
	scratch := newScratch()
	for _, row := range cs.rows {
		if err := readFloats(br, scratch, row); err != nil {
			return nil, fmt.Errorf("sketch: truncated bucket data: %w", err)
		}
		if err := validateBuckets("count-sketch", row); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// WriteTo serializes the sketch. It implements io.WriterTo.
func (cm *CountMin) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	flags := uint32(0)
	if cm.conservative {
		flags |= 1
	}
	n, err := writeHeader(bw, magicCountMin, cm.seed, cm.depth, cm.width, flags)
	if err != nil {
		return n, err
	}
	scratch := newScratch()
	m, err := writeFloats(bw, scratch, []float64{cm.total})
	n += m
	if err != nil {
		return n, err
	}
	for _, row := range cm.rows {
		m, err := writeFloats(bw, scratch, row)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCountMin deserializes a sketch written by WriteTo.
func ReadCountMin(r io.Reader) (*CountMin, error) {
	br := bufio.NewReader(r)
	seed, depth, width, flags, err := readHeader(br, magicCountMin)
	if err != nil {
		return nil, err
	}
	cm := NewCountMin(depth, width, seed)
	cm.conservative = flags&1 != 0
	scratch := newScratch()
	total := make([]float64, 1)
	if err := readFloats(br, scratch, total); err != nil {
		return nil, fmt.Errorf("sketch: truncated total: %w", err)
	}
	cm.total = total[0]
	for _, row := range cm.rows {
		if err := readFloats(br, scratch, row); err != nil {
			return nil, fmt.Errorf("sketch: truncated bucket data: %w", err)
		}
		if err := validateBuckets("count-min", row); err != nil {
			return nil, err
		}
	}
	if math.IsNaN(cm.total) || math.IsInf(cm.total, 0) {
		return nil, fmt.Errorf("sketch: corrupt total")
	}
	return cm, nil
}

func writeHeader(w io.Writer, magic uint32, seed int64, depth, width int, flags uint32) (int64, error) {
	var b [24]byte
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint32(b[4:], serializeVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(seed))
	binary.LittleEndian.PutUint32(b[16:], uint32(depth))
	binary.LittleEndian.PutUint32(b[20:], uint32(width))
	n, err := w.Write(b[:])
	if err != nil {
		return int64(n), err
	}
	var fb [4]byte
	binary.LittleEndian.PutUint32(fb[:], flags)
	m, err := w.Write(fb[:])
	return int64(n + m), err
}

func readHeader(r io.Reader, wantMagic uint32) (seed int64, depth, width int, flags uint32, err error) {
	var b [28]byte
	if _, err = io.ReadFull(r, b[:]); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("sketch: truncated header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(b[0:])
	version := binary.LittleEndian.Uint32(b[4:])
	seed = int64(binary.LittleEndian.Uint64(b[8:]))
	d32 := binary.LittleEndian.Uint32(b[16:])
	w32 := binary.LittleEndian.Uint32(b[20:])
	flags = binary.LittleEndian.Uint32(b[24:])
	if magic != wantMagic {
		return 0, 0, 0, 0, fmt.Errorf("sketch: bad magic %#x", magic)
	}
	if version != serializeVersion {
		return 0, 0, 0, 0, fmt.Errorf("sketch: unsupported version %d", version)
	}
	if d32 == 0 || w32 == 0 || d32 > 1<<16 || w32 > 1<<30 {
		return 0, 0, 0, 0, fmt.Errorf("sketch: implausible shape %dx%d", d32, w32)
	}
	if total := uint64(d32) * uint64(w32); total > maxSerializedBuckets {
		return 0, 0, 0, 0, fmt.Errorf("sketch: header demands %d buckets, limit %d", total, uint64(maxSerializedBuckets))
	}
	return seed, int(d32), int(w32), flags, nil
}
