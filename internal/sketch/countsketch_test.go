package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCountSketchExactWhenNoCollisions(t *testing.T) {
	// With width far larger than the number of keys, collisions are unlikely
	// and every estimate should be exact.
	cs := NewCountSketch(3, 1<<16, 1)
	want := map[uint32]float64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		key := rng.Uint32()
		v := rng.NormFloat64() * 10
		cs.Update(key, v)
		want[key] += v
	}
	for key, v := range want {
		got := cs.Estimate(key)
		if math.Abs(got-v) > 1e-9 {
			t.Fatalf("key %d: estimate %g, want %g", key, got, v)
		}
	}
}

func TestCountSketchLinearity(t *testing.T) {
	// The sketch is a linear projection: sketch(x) + sketch(y) = sketch(x+y).
	a := NewCountSketch(5, 64, 9)
	b := NewCountSketch(5, 64, 9)
	c := NewCountSketch(5, 64, 9)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		key := uint32(rng.Intn(200))
		va, vb := rng.NormFloat64(), rng.NormFloat64()
		a.Update(key, va)
		b.Update(key, vb)
		c.Update(key, va+vb)
	}
	for j := 0; j < 5; j++ {
		ra, rb, rc := a.Row(j), b.Row(j), c.Row(j)
		for i := range ra {
			if math.Abs(ra[i]+rb[i]-rc[i]) > 1e-9 {
				t.Fatalf("row %d bucket %d: not linear", j, i)
			}
		}
	}
}

func TestCountSketchUnbiasedSingleRow(t *testing.T) {
	// For a single row, E[sign * bucket] = true value. Average over many
	// independent seeds to check (approximate) unbiasedness.
	const trials = 400
	sum := 0.0
	for s := int64(0); s < trials; s++ {
		cs := NewCountSketch(1, 8, s)
		// Key 1 has value 5; keys 2..40 add noise.
		cs.Update(1, 5)
		rng := rand.New(rand.NewSource(s + 1000))
		for k := uint32(2); k <= 40; k++ {
			cs.Update(k, rng.NormFloat64())
		}
		sum += cs.Estimate(1)
	}
	mean := sum / trials
	if math.Abs(mean-5) > 0.5 {
		t.Fatalf("single-row estimator mean %.3f, want ≈5", mean)
	}
}

func TestCountSketchRecoveryGuarantee(t *testing.T) {
	// Lemma 1: with width Θ(1/ε²) and depth Θ(log(d/δ)), error ≤ ε‖x‖₂.
	// Build a vector with a few heavy entries plus a light tail and check
	// the heavy entries are recovered within the bound.
	const d = 10000
	x := make([]float64, d)
	rng := rand.New(rand.NewSource(4))
	heavy := []int{7, 77, 777, 7777}
	for _, i := range heavy {
		x[i] = 50 * (1 + rng.Float64())
	}
	for i := range x {
		if x[i] == 0 {
			x[i] = rng.NormFloat64() * 0.2
		}
	}
	norm := 0.0
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)

	cs := NewCountSketch(7, 1024, 5)
	for i, v := range x {
		cs.Update(uint32(i), v)
	}
	// width 1024 → ε ≈ sqrt(1/width)·c; allow error 0.15·‖x‖₂ generously.
	for _, i := range heavy {
		got := cs.Estimate(uint32(i))
		if math.Abs(got-x[i]) > 0.15*norm {
			t.Fatalf("heavy key %d: |%g - %g| > 0.15‖x‖₂=%g", i, got, x[i], 0.15*norm)
		}
	}
}

func TestCountSketchScaleAndReset(t *testing.T) {
	cs := NewCountSketch(2, 16, 6)
	cs.Update(3, 10)
	cs.Scale(0.5)
	if got := cs.Estimate(3); math.Abs(got-5) > 1e-9 {
		t.Fatalf("after Scale(0.5): estimate %g, want 5", got)
	}
	cs.Reset()
	if got := cs.Estimate(3); got != 0 {
		t.Fatalf("after Reset: estimate %g, want 0", got)
	}
}

func TestCountSketchNegativeValues(t *testing.T) {
	// Unlike Count-Min, Count-Sketch handles signed updates.
	cs := NewCountSketch(3, 1024, 8)
	cs.Update(10, -42)
	if got := cs.Estimate(10); math.Abs(got+42) > 1e-9 {
		t.Fatalf("estimate %g, want -42", got)
	}
	cs.Update(10, 42)
	if got := cs.Estimate(10); math.Abs(got) > 1e-9 {
		t.Fatalf("estimate %g, want 0 after cancellation", got)
	}
}

func TestCountSketchL2NormApproximation(t *testing.T) {
	cs := NewCountSketch(5, 4096, 10)
	rng := rand.New(rand.NewSource(11))
	norm2 := 0.0
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64()
		cs.Update(uint32(i), v)
		norm2 += v * v
	}
	want := math.Sqrt(norm2)
	got := cs.L2Norm()
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("L2Norm %g not within 20%% of true %g", got, want)
	}
}

func TestCountSketchPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct{ depth, width int }{{0, 4}, {4, 0}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("depth=%d width=%d: expected panic", tc.depth, tc.width)
				}
			}()
			NewCountSketch(tc.depth, tc.width, 1)
		}()
	}
}

func TestCountSketchMemoryBytes(t *testing.T) {
	cs := NewCountSketch(2, 128, 1)
	if got := cs.MemoryBytes(); got != 1024 {
		t.Fatalf("MemoryBytes = %d, want 1024", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{}, 0},
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-5, 100, 0}, 0},
		{[]float64{2, 2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := Median(in); got != c.want {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestMedianPropertyBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		for _, v := range xs {
			if math.IsNaN(v) {
				return true // skip NaN inputs
			}
		}
		cp := append([]float64(nil), xs...)
		m := Median(cp)
		sort.Float64s(cp)
		return m >= cp[0] && m <= cp[len(cp)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	// The median should ignore a single corrupted row — this is the property
	// that makes Count-Sketch estimates robust to one heavy collision.
	vals := []float64{5, 5, 1e12, 5, 5}
	if got := Median(vals); got != 5 {
		t.Fatalf("Median = %g, want 5", got)
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	cs := NewCountSketch(4, 4096, 1)
	for i := 0; i < b.N; i++ {
		cs.Update(uint32(i), 1.0)
	}
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	cs := NewCountSketch(4, 4096, 1)
	for i := 0; i < 10000; i++ {
		cs.Update(uint32(i), 1.0)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cs.Estimate(uint32(i % 10000))
	}
	_ = sink
}
