package sketch

import (
	"math"
	"math/rand"
	"testing"
)

// TestDiffApplyReconstructsExactly drives a sketch through random updates,
// diffs consecutive versions, and verifies that applying each diff to a
// copy of the previous version reproduces the next version bit for bit —
// the invariant cluster delta frames rely on.
func TestDiffApplyReconstructsExactly(t *testing.T) {
	for _, depth := range []int{1, 4} {
		rng := rand.New(rand.NewSource(7))
		cur := NewCountSketch(depth, 256, 42)
		replica := NewCountSketch(depth, 256, 42)
		prev := cur.Clone()
		for round := 0; round < 20; round++ {
			for i := 0; i < rng.Intn(300); i++ {
				cur.Update(rng.Uint32()%4096, rng.NormFloat64())
			}
			changes, err := Diff(prev, cur)
			if err != nil {
				t.Fatalf("depth=%d: Diff: %v", depth, err)
			}
			if err := replica.ApplyDiff(changes); err != nil {
				t.Fatalf("depth=%d: ApplyDiff: %v", depth, err)
			}
			for j := 0; j < depth; j++ {
				got, want := replica.Row(j), cur.Row(j)
				for b := range want {
					if got[b] != want[b] {
						t.Fatalf("depth=%d round=%d: replica row %d bucket %d = %v, want %v",
							depth, round, j, b, got[b], want[b])
					}
				}
			}
			prev = cur.Clone()
		}
	}
}

// TestDiffAscendingAndMinimal checks ordering and that untouched buckets are
// never reported.
func TestDiffAscendingAndMinimal(t *testing.T) {
	base := NewCountSketch(2, 64, 1)
	cur := base.Clone()
	cur.Update(5, 1.5)
	cur.Update(99, -2.0)
	changes, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	// Each update touches one bucket per row: at most 4 changes (collisions
	// can make it fewer).
	if len(changes) == 0 || len(changes) > 4 {
		t.Fatalf("got %d changes, want 1..4", len(changes))
	}
	for i := 1; i < len(changes); i++ {
		if changes[i].Index <= changes[i-1].Index {
			t.Fatalf("indices not strictly ascending: %v", changes)
		}
	}
	// A value that returns to its base state must not appear.
	cur2 := base.Clone()
	cur2.Update(5, 1.5)
	cur2.Update(5, -1.5)
	changes, err = Diff(base, cur2)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("round-tripped bucket reported as changed: %v", changes)
	}
}

func TestDiffIncompatible(t *testing.T) {
	a := NewCountSketch(1, 64, 1)
	if _, err := Diff(a, NewCountSketch(1, 128, 1)); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
	if _, err := Diff(a, NewCountSketch(1, 64, 2)); err == nil {
		t.Fatal("seed mismatch not rejected")
	}
}

func TestApplyDiffRejectsCorruptFrames(t *testing.T) {
	cs := NewCountSketch(2, 64, 1)
	cs.Update(3, 1.0)
	snapshot := cs.Clone()

	if err := cs.ApplyDiff([]BucketChange{{Index: 128, Value: 1}}); err == nil {
		t.Fatal("out-of-range index not rejected")
	}
	if err := cs.ApplyDiff([]BucketChange{{Index: 0, Value: math.NaN()}}); err == nil {
		t.Fatal("NaN value not rejected")
	}
	if err := cs.ApplyDiff([]BucketChange{{Index: 0, Value: math.Inf(1)}}); err == nil {
		t.Fatal("Inf value not rejected")
	}
	// A rejected frame must leave the sketch untouched, even when valid
	// changes precede the corrupt one.
	if err := cs.ApplyDiff([]BucketChange{{Index: 1, Value: 9}, {Index: 999, Value: 1}}); err == nil {
		t.Fatal("mixed frame not rejected")
	}
	for j := 0; j < 2; j++ {
		got, want := cs.Row(j), snapshot.Row(j)
		for b := range want {
			if got[b] != want[b] {
				t.Fatalf("rejected frame mutated row %d bucket %d", j, b)
			}
		}
	}
}

// TestAddScaledMatchesMergeAtUnitScale pins the c == 1 fast path to Merge's
// exact arithmetic: weighted mixing with equal weights must stay
// bit-identical to the historical unweighted average.
func TestAddScaledMatchesMergeAtUnitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewCountSketch(3, 128, 5)
	b := NewCountSketch(3, 128, 5)
	for i := 0; i < 500; i++ {
		a.Update(rng.Uint32()%1024, rng.NormFloat64())
		b.Update(rng.Uint32()%1024, rng.NormFloat64())
	}
	viaMerge := a.Clone()
	if err := viaMerge.Merge(b); err != nil {
		t.Fatal(err)
	}
	viaAdd := a.Clone()
	if err := viaAdd.AddScaled(b, 1); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		g, w := viaAdd.Row(j), viaMerge.Row(j)
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("AddScaled(·, 1) diverges from Merge at row %d bucket %d", j, i)
			}
		}
	}
	// And the scaled path is plain arithmetic.
	scaled := NewCountSketch(3, 128, 5)
	if err := scaled.AddScaled(b, 0.25); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		g, src := scaled.Row(j), b.Row(j)
		for i := range src {
			if g[i] != 0.25*src[i] {
				t.Fatalf("AddScaled(·, 0.25) wrong at row %d bucket %d", j, i)
			}
		}
	}
}
