package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 64, 1)
	truth := map[uint32]float64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		key := uint32(rng.Intn(500))
		cm.Update(key, 1)
		truth[key]++
	}
	for key, v := range truth {
		if got := cm.Estimate(key); got < v-1e-9 {
			t.Fatalf("key %d: estimate %g below true count %g", key, got, v)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// Estimate error ≤ (e/width)·total with probability 1-exp(-depth) per
	// key; check no key wildly exceeds a loose multiple of total/width.
	const width = 256
	cm := NewCountMin(5, width, 3)
	rng := rand.New(rand.NewSource(4))
	truth := map[uint32]float64{}
	total := 0.0
	for i := 0; i < 20000; i++ {
		key := uint32(rng.Intn(2000))
		cm.Update(key, 1)
		truth[key]++
		total++
	}
	bound := 8 * total / width
	for key, v := range truth {
		if got := cm.Estimate(key); got-v > bound {
			t.Fatalf("key %d: overestimate %g exceeds bound %g", key, got-v, bound)
		}
	}
}

func TestCountMinExactSingleKey(t *testing.T) {
	cm := NewCountMin(3, 1024, 5)
	for i := 0; i < 100; i++ {
		cm.Update(42, 2.5)
	}
	if got := cm.Estimate(42); math.Abs(got-250) > 1e-9 {
		t.Fatalf("estimate %g, want 250", got)
	}
	if got := cm.Total(); math.Abs(got-250) > 1e-9 {
		t.Fatalf("total %g, want 250", got)
	}
}

func TestCountMinUnseenKeySmall(t *testing.T) {
	cm := NewCountMin(4, 1<<14, 6)
	for i := 0; i < 100; i++ {
		cm.Update(uint32(i), 1)
	}
	// An unseen key should estimate ~0 with a wide sketch.
	if got := cm.Estimate(999999); got > 2 {
		t.Fatalf("unseen key estimate %g too large", got)
	}
}

func TestConservativeNeverWorseThanPlain(t *testing.T) {
	plain := NewCountMin(3, 32, 7)
	cons := NewConservativeCountMin(3, 32, 7)
	rng := rand.New(rand.NewSource(8))
	truth := map[uint32]float64{}
	for i := 0; i < 5000; i++ {
		key := uint32(rng.Intn(300))
		plain.Update(key, 1)
		cons.Update(key, 1)
		truth[key]++
	}
	for key, v := range truth {
		pe, ce := plain.Estimate(key), cons.Estimate(key)
		if ce < v-1e-9 {
			t.Fatalf("conservative underestimates key %d: %g < %g", key, ce, v)
		}
		if ce > pe+1e-9 {
			t.Fatalf("conservative estimate %g exceeds plain %g for key %d", ce, pe, key)
		}
	}
}

func TestCountMinPanicsOnNegative(t *testing.T) {
	cm := NewCountMin(2, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative update")
		}
	}()
	cm.Update(1, -1)
}

func TestCountMinPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct{ depth, width int }{{0, 4}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("depth=%d width=%d: expected panic", tc.depth, tc.width)
				}
			}()
			NewCountMin(tc.depth, tc.width, 1)
		}()
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMin(2, 16, 9)
	cm.Update(5, 10)
	cm.Reset()
	if cm.Estimate(5) != 0 || cm.Total() != 0 {
		t.Fatal("Reset did not clear sketch")
	}
}

func TestCountMinMemoryBytes(t *testing.T) {
	cm := NewCountMin(4, 256, 1)
	if got := cm.MemoryBytes(); got != 4096 {
		t.Fatalf("MemoryBytes = %d, want 4096", got)
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	cm := NewCountMin(4, 4096, 1)
	for i := 0; i < b.N; i++ {
		cm.Update(uint32(i), 1)
	}
}
