package sketch

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCountSketch drives checkpoint restore with corrupted, truncated,
// and adversarial checkpoints. The contract under fuzz: restore either
// returns an error or returns a usable sketch — never a panic, never an
// unbounded allocation (maxSerializedBuckets gates the header), and never
// a sketch carrying non-finite buckets. An accepted restore must also
// round-trip bit-exactly through a second serialize/restore cycle.
//
// `make fuzz-smoke` runs this alongside the cluster wire-format fuzzer;
// longer runs: go test -fuzz FuzzReadCountSketch ./internal/sketch.
func FuzzReadCountSketch(f *testing.F) {
	// Seed corpus: a real checkpoint with traffic, an empty one, plus
	// truncations at interesting depths and seeded bit flips.
	cs := NewCountSketch(3, 64, 42)
	for i := uint32(0); i < 500; i++ {
		cs.Update(i%97, float64(i)*0.25-30)
	}
	var buf bytes.Buffer
	if _, err := cs.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := append([]byte(nil), buf.Bytes()...)

	buf.Reset()
	if _, err := NewCountSketch(1, 8, 7).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	empty := append([]byte(nil), buf.Bytes()...)

	for _, s := range [][]byte{valid, empty} {
		f.Add(s)
		for _, cut := range []int{0, 4, 8, 23, 24, len(s) / 2, len(s) - 1} {
			if cut >= 0 && cut < len(s) {
				f.Add(append([]byte(nil), s[:cut]...))
			}
		}
		for _, flip := range []int{5, 12, 24, len(s) - 8} {
			if flip >= 0 && flip < len(s) {
				mut := append([]byte(nil), s...)
				mut[flip] ^= 0xA5
				f.Add(mut)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCountSketch(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		// Accepted checkpoints must be fully usable: finite estimates and
		// update arithmetic that stays finite.
		for _, key := range []uint32{0, 1, 31, 1 << 30} {
			if v := got.Estimate(key); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("restored sketch estimates non-finite %g at key %d", v, key)
			}
		}
		got.Update(3, 1.5)

		// Round-trip: serialize the accepted sketch and restore again; the
		// result must match bucket for bucket, bit for bit.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize of accepted restore failed: %v", err)
		}
		again, err := ReadCountSketch(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-restore of accepted restore failed: %v", err)
		}
		if again.Depth() != got.Depth() || again.Width() != got.Width() || again.Seed() != got.Seed() {
			t.Fatalf("round-trip changed geometry: %dx%d/%d -> %dx%d/%d",
				got.Depth(), got.Width(), got.Seed(), again.Depth(), again.Width(), again.Seed())
		}
		for j := 0; j < got.Depth(); j++ {
			a, b := got.Row(j), again.Row(j)
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("round-trip changed row %d bucket %d: %g -> %g", j, i, a[i], b[i])
				}
			}
		}
	})
}
