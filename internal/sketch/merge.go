package sketch

import "fmt"

// Merge adds other's buckets into cs. Count-Sketches are linear
// projections, so merging the sketches of two streams yields exactly the
// sketch of their concatenation — the basis for distributed or sharded
// aggregation (the asynchronous-update extension sketched in Section 9).
// Both sketches must share shape and seed (identical hash functions);
// otherwise Merge returns an error and leaves cs unchanged.
func (cs *CountSketch) Merge(other *CountSketch) error {
	if err := compatible(cs.depth, other.depth, cs.width, other.width, cs.seed, other.seed); err != nil {
		return err
	}
	for j := range cs.rows {
		dst, src := cs.rows[j], other.rows[j]
		for b := range dst {
			dst[b] += src[b]
		}
	}
	return nil
}

// Merge adds other's counters into cm. Valid for plain Count-Min sketches;
// conservative-update sketches are not mergeable (their bucket values are
// not linear in the input) and produce an error.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.conservative || other.conservative {
		return fmt.Errorf("sketch: conservative Count-Min is not mergeable")
	}
	if err := compatible(cm.depth, other.depth, cm.width, other.width, cm.seed, other.seed); err != nil {
		return err
	}
	for j := range cm.rows {
		dst, src := cm.rows[j], other.rows[j]
		for b := range dst {
			dst[b] += src[b]
		}
	}
	cm.total += other.total
	return nil
}

func compatible(d1, d2, w1, w2 int, s1, s2 int64) error {
	if d1 != d2 || w1 != w2 {
		return fmt.Errorf("sketch: shape mismatch %dx%d vs %dx%d", d1, w1, d2, w2)
	}
	if s1 != s2 {
		return fmt.Errorf("sketch: seed mismatch (different hash functions)")
	}
	return nil
}
