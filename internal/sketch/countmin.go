package sketch

import (
	"fmt"
	"math"

	"wmsketch/internal/hashing"
)

// CountMin is the Count-Min Sketch: a depth × width array of non-negative
// counters where each key increments one bucket per row and the point
// estimate is the minimum over rows. Estimates never underestimate true
// counts for non-negative streams (Cormode & Muthukrishnan 2005).
type CountMin struct {
	depth        int
	width        int
	seed         int64
	rows         [][]float64
	hashes       *hashing.Family
	conservative bool
	total        float64
}

// NewCountMin returns a Count-Min sketch with the given shape and seed.
func NewCountMin(depth, width int, seed int64) *CountMin {
	if depth <= 0 {
		panic(fmt.Sprintf("sketch: depth must be positive, got %d", depth))
	}
	if width <= 0 {
		panic(fmt.Sprintf("sketch: width must be positive, got %d", width))
	}
	rows := make([][]float64, depth)
	backing := make([]float64, depth*width)
	for j := range rows {
		rows[j], backing = backing[:width], backing[width:]
	}
	return &CountMin{
		depth:  depth,
		width:  width,
		seed:   seed,
		rows:   rows,
		hashes: hashing.NewFamily(depth, seed),
	}
}

// NewConservativeCountMin returns a Count-Min sketch using conservative
// update (Estan & Varghese): each increment raises a bucket only as far as
// needed to keep the estimate consistent, strictly reducing overestimation.
// This is an ablation extension beyond the paper's plain CM baseline.
func NewConservativeCountMin(depth, width int, seed int64) *CountMin {
	cm := NewCountMin(depth, width, seed)
	cm.conservative = true
	return cm
}

// Depth returns the number of rows.
func (cm *CountMin) Depth() int { return cm.depth }

// Width returns the buckets per row.
func (cm *CountMin) Width() int { return cm.width }

// Total returns the sum of all increments applied.
func (cm *CountMin) Total() float64 { return cm.total }

// Update adds delta (must be non-negative for the min estimate to remain an
// upper bound) to key's bucket in each row.
func (cm *CountMin) Update(key uint32, delta float64) {
	if delta < 0 {
		panic("sketch: CountMin requires non-negative updates")
	}
	cm.total += delta
	if cm.conservative {
		est := cm.Estimate(key) + delta
		for j := 0; j < cm.depth; j++ {
			b := cm.hashes.Row(j).Bucket(key, cm.width)
			if cm.rows[j][b] < est {
				cm.rows[j][b] = est
			}
		}
		return
	}
	for j := 0; j < cm.depth; j++ {
		b := cm.hashes.Row(j).Bucket(key, cm.width)
		cm.rows[j][b] += delta
	}
}

// Estimate returns the minimum bucket value for key across rows.
func (cm *CountMin) Estimate(key uint32) float64 {
	est := math.Inf(1)
	for j := 0; j < cm.depth; j++ {
		b := cm.hashes.Row(j).Bucket(key, cm.width)
		if v := cm.rows[j][b]; v < est {
			est = v
		}
	}
	return est
}

// Reset zeroes all counters.
func (cm *CountMin) Reset() {
	for j := range cm.rows {
		row := cm.rows[j]
		for b := range row {
			row[b] = 0
		}
	}
	cm.total = 0
}

// MemoryBytes returns the cost-model size: 4 bytes per counter.
func (cm *CountMin) MemoryBytes() int { return 4 * cm.depth * cm.width }
