package sketch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"testing"
)

// Hardening tests for the restore path: a corrupt or adversarial checkpoint
// must fail fast — bounded allocation, no NaN/Inf adopted into buckets —
// because wmserve restores checkpoints into a live serving process.

// header layout: magic(4) version(4) seed(8) depth(4) width(4) flags(4).
const (
	hdrDepthOff = 16
	hdrWidthOff = 20
)

// craftHeader returns a syntactically valid CountSketch header with the
// given shape, followed by no bucket data.
func craftHeader(magic uint32, depth, width uint32) []byte {
	b := make([]byte, 28)
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint32(b[4:], serializeVersion)
	binary.LittleEndian.PutUint64(b[8:], 42)
	binary.LittleEndian.PutUint32(b[hdrDepthOff:], depth)
	binary.LittleEndian.PutUint32(b[hdrWidthOff:], width)
	binary.LittleEndian.PutUint32(b[24:], 0)
	return b
}

func TestReadRejectsHugeShape(t *testing.T) {
	// Within the per-field limits the old code accepted (depth ≤ 2^16,
	// width ≤ 2^30), but 2^46 total buckets = 512 TiB of float64. The read
	// must error on the header alone — before allocating bucket storage.
	cases := []struct {
		name         string
		depth, width uint32
	}{
		{"max-both", 1 << 16, 1 << 30},
		{"deep", 1 << 16, 1 << 12},
		{"wide", 1 << 4, 1 << 30},
		{"just-over", 1, maxSerializedBuckets + 1},
	}
	for _, tc := range cases {
		blob := craftHeader(magicCountSketch, tc.depth, tc.width)
		if _, err := ReadCountSketch(bytes.NewReader(blob)); err == nil {
			t.Errorf("%s: %dx%d must be rejected", tc.name, tc.depth, tc.width)
		}
		blob = craftHeader(magicCountMin, tc.depth, tc.width)
		if _, err := ReadCountMin(bytes.NewReader(blob)); err == nil {
			t.Errorf("%s: count-min %dx%d must be rejected", tc.name, tc.depth, tc.width)
		}
	}
	// The limit itself is fine shape-wise (it fails later on truncation,
	// not on the shape check).
	blob := craftHeader(magicCountSketch, 1, 1<<20)
	_, err := ReadCountSketch(bytes.NewReader(blob))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("truncated")) {
		t.Errorf("in-bounds shape should fail on truncation, got %v", err)
	}
}

func TestReadRejectsNonFiniteBuckets(t *testing.T) {
	cs := NewCountSketch(2, 16, 7)
	cs.Update(3, 1.5)
	var buf bytes.Buffer
	if _, err := cs.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, bits := range []uint64{
		math.Float64bits(math.NaN()),
		math.Float64bits(math.Inf(1)),
		math.Float64bits(math.Inf(-1)),
	} {
		blob := append([]byte(nil), buf.Bytes()...)
		binary.LittleEndian.PutUint64(blob[28+8*5:], bits) // bucket 5 of row 0
		if _, err := ReadCountSketch(bytes.NewReader(blob)); err == nil {
			t.Errorf("count-sketch restore must reject bucket %x", bits)
		}
	}

	cm := NewCountMin(2, 16, 7)
	cm.Update(3, 2)
	buf.Reset()
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint64(blob[28+8+8*3:], math.Float64bits(math.Inf(1)))
	if _, err := ReadCountMin(bytes.NewReader(blob)); err == nil {
		t.Error("count-min restore must reject Inf bucket")
	}
	// Inf total (NaN total was already rejected before this PR).
	blob = append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint64(blob[28:], math.Float64bits(math.Inf(1)))
	if _, err := ReadCountMin(bytes.NewReader(blob)); err == nil {
		t.Error("count-min restore must reject Inf total")
	}
}

// reflectiveWriteTo reproduces the pre-PR element-at-a-time serialization
// (one binary.Write per float64) as an executable reference: the bulk
// encoder must emit byte-identical output.
func reflectiveWriteTo(cs *CountSketch, w io.Writer) error {
	if _, err := writeHeader(w, magicCountSketch, cs.seed, cs.depth, cs.width, 0); err != nil {
		return err
	}
	for _, row := range cs.rows {
		for _, v := range row {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestBulkEncodingByteIdentical(t *testing.T) {
	cs := NewCountSketch(3, 128, 11)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 700; i++ {
		cs.Update(rng.Uint32(), rng.NormFloat64())
	}
	var fast, ref bytes.Buffer
	n, err := cs.WriteTo(&fast)
	if err != nil {
		t.Fatal(err)
	}
	if err := reflectiveWriteTo(cs, &ref); err != nil {
		t.Fatal(err)
	}
	if n != int64(fast.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, fast.Len())
	}
	if !bytes.Equal(fast.Bytes(), ref.Bytes()) {
		t.Fatal("bulk encoding is not byte-identical to the per-element reference")
	}
}

// reflectiveReadCountSketch is the pre-PR element-at-a-time decode.
func reflectiveReadCountSketch(r io.Reader) (*CountSketch, error) {
	seed, depth, width, _, err := readHeader(r, magicCountSketch)
	if err != nil {
		return nil, err
	}
	cs := NewCountSketch(depth, width, seed)
	for _, row := range cs.rows {
		for i := range row {
			if err := binary.Read(r, binary.LittleEndian, &row[i]); err != nil {
				return nil, err
			}
		}
	}
	return cs, nil
}

func benchSketch(b *testing.B) (*CountSketch, []byte) {
	b.Helper()
	cs := NewCountSketch(2, 1<<14, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1<<14; i++ {
		cs.Update(rng.Uint32(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if _, err := cs.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	return cs, buf.Bytes()
}

func BenchmarkCountSketchWriteTo(b *testing.B) {
	cs, blob := benchSketch(b)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountSketchWriteToReflective(b *testing.B) {
	cs, blob := benchSketch(b)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Buffered like the pre-PR implementation, so the comparison
		// isolates the per-element reflection cost.
		bw := bufio.NewWriter(io.Discard)
		if err := reflectiveWriteTo(cs, bw); err != nil {
			b.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountSketchRead(b *testing.B) {
	_, blob := benchSketch(b)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCountSketch(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountSketchReadReflective(b *testing.B) {
	_, blob := benchSketch(b)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reflectiveReadCountSketch(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
}
