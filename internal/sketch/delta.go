package sketch

import (
	"fmt"
	"math"
)

// Delta extraction and application for sketch replication.
//
// The WM-Sketch's linear mergeability makes whole-sketch exchange the
// natural replication primitive, but a full snapshot resends every bucket
// even when only a few changed since the receiver's last copy. Between two
// versions of the *same* sketch the difference is typically sparse — a
// gossip round that applied U updates touches at most U·nnz·depth buckets,
// and a quiescent sketch touches none — so peers that remember which
// version a receiver holds can ship only the changed buckets (the
// delta-reconciliation idea of rateless-set-reconcile, specialized to the
// dense-array case where positions are shared coordinates, not set
// members).
//
// A BucketChange carries the bucket's *new value*, not an additive
// increment: applying a change is idempotent, so a frame replayed by a
// retrying peer cannot double-count. Applying the full change list from
// Diff(base, cur) onto a bit-wise copy of base reconstructs cur exactly.

// BucketChange records one changed bucket: its flat row-major index
// (row·width + column) and its new value.
type BucketChange struct {
	Index uint32
	Value float64
}

// Diff returns the buckets where cur differs from base, in ascending flat
// index order, carrying cur's values. The two sketches must share shape and
// seed; Diff on incompatible sketches returns an error. Bit-wise equality
// is the comparison: a bucket that left and returned to its old value is
// (correctly) not reported.
func Diff(base, cur *CountSketch) ([]BucketChange, error) {
	if err := compatible(base.depth, cur.depth, base.width, cur.width, base.seed, cur.seed); err != nil {
		return nil, err
	}
	var changes []BucketChange
	for j := range cur.rows {
		b, c := base.rows[j], cur.rows[j]
		off := uint32(j * cur.width)
		for i := range c {
			if c[i] != b[i] {
				changes = append(changes, BucketChange{Index: off + uint32(i), Value: c[i]})
			}
		}
	}
	return changes, nil
}

// ApplyDiff sets each changed bucket to its new value. Indices are bounds-
// checked and values NaN/Inf-rejected before any mutation, so a corrupt
// frame leaves the sketch untouched. Changes must target the same shape the
// diff was taken against; applying Diff(base, cur) to a copy of base yields
// cur bit for bit.
func (cs *CountSketch) ApplyDiff(changes []BucketChange) error {
	size := uint32(cs.depth * cs.width)
	for i, ch := range changes {
		if ch.Index >= size {
			return fmt.Errorf("sketch: delta change %d targets bucket %d, sketch has %d", i, ch.Index, size)
		}
		if math.IsNaN(ch.Value) || math.IsInf(ch.Value, 0) {
			return fmt.Errorf("sketch: delta change %d (bucket %d) is non-finite", i, ch.Index)
		}
	}
	w := uint32(cs.width)
	for _, ch := range changes {
		cs.rows[ch.Index/w][ch.Index%w] = ch.Value
	}
	return nil
}

// AddScaled adds c·other into cs bucket-wise: cs += c·other. With c == 1
// the addition is performed without the multiply, so it is bit-identical to
// Merge. Used by weighted parameter mixing (Σᵢ wᵢ·zᵢ, then one final
// scale by 1/Σwᵢ). Shapes and seeds must match.
func (cs *CountSketch) AddScaled(other *CountSketch, c float64) error {
	if err := compatible(cs.depth, other.depth, cs.width, other.width, cs.seed, other.seed); err != nil {
		return err
	}
	for j := range cs.rows {
		dst, src := cs.rows[j], other.rows[j]
		if c == 1 {
			for b := range dst {
				dst[b] += src[b]
			}
		} else {
			for b := range dst {
				dst[b] += c * src[b]
			}
		}
	}
	return nil
}
