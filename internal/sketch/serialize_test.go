package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCountSketchRoundTrip(t *testing.T) {
	cs := NewCountSketch(4, 256, 77)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint32, 500)
	for i := range keys {
		keys[i] = rng.Uint32()
		cs.Update(keys[i], rng.NormFloat64()*10)
	}
	var buf bytes.Buffer
	if _, err := cs.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCountSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth() != 4 || got.Width() != 256 {
		t.Fatalf("shape %dx%d", got.Depth(), got.Width())
	}
	// Queries must be bit-identical: same buckets AND same hash functions.
	for _, k := range keys {
		if got.Estimate(k) != cs.Estimate(k) {
			t.Fatalf("estimate mismatch for key %d", k)
		}
	}
	// And the deserialized sketch must continue to accept updates
	// consistently with the original.
	cs.Update(42, 3.5)
	got.Update(42, 3.5)
	if got.Estimate(42) != cs.Estimate(42) {
		t.Fatal("post-deserialization update diverged")
	}
}

func TestCountMinRoundTrip(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		var cm *CountMin
		if conservative {
			cm = NewConservativeCountMin(3, 128, 9)
		} else {
			cm = NewCountMin(3, 128, 9)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1000; i++ {
			cm.Update(uint32(rng.Intn(300)), 1)
		}
		var buf bytes.Buffer
		if _, err := cm.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCountMin(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Total() != cm.Total() {
			t.Fatalf("total %g != %g", got.Total(), cm.Total())
		}
		if got.conservative != conservative {
			t.Fatal("conservative flag lost")
		}
		for k := uint32(0); k < 300; k++ {
			if got.Estimate(k) != cm.Estimate(k) {
				t.Fatalf("estimate mismatch for key %d", k)
			}
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	// Truncated stream.
	if _, err := ReadCountSketch(strings.NewReader("xx")); err == nil {
		t.Error("truncated header must error")
	}
	// Wrong magic (CountMin blob into CountSketch reader).
	cm := NewCountMin(2, 8, 1)
	var buf bytes.Buffer
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCountSketch(&buf); err == nil {
		t.Error("magic mismatch must error")
	}
	// Truncated body.
	cs := NewCountSketch(2, 8, 1)
	buf.Reset()
	if _, err := cs.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadCountSketch(bytes.NewReader(short)); err == nil {
		t.Error("truncated body must error")
	}
}

func TestCountSketchMergeEqualsConcatenation(t *testing.T) {
	a := NewCountSketch(3, 64, 5)
	b := NewCountSketch(3, 64, 5)
	whole := NewCountSketch(3, 64, 5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		key := uint32(rng.Intn(500))
		v := rng.NormFloat64()
		if i%2 == 0 {
			a.Update(key, v)
		} else {
			b.Update(key, v)
		}
		whole.Update(key, v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		ra, rw := a.Row(j), whole.Row(j)
		for i := range ra {
			if math.Abs(ra[i]-rw[i]) > 1e-9 {
				t.Fatalf("row %d bucket %d: merged %g vs whole %g", j, i, ra[i], rw[i])
			}
		}
	}
}

func TestCountMinMergeEqualsConcatenation(t *testing.T) {
	a := NewCountMin(3, 64, 5)
	b := NewCountMin(3, 64, 5)
	whole := NewCountMin(3, 64, 5)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		key := uint32(rng.Intn(500))
		if i%2 == 0 {
			a.Update(key, 1)
		} else {
			b.Update(key, 1)
		}
		whole.Update(key, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() {
		t.Fatalf("total %g vs %g", a.Total(), whole.Total())
	}
	for k := uint32(0); k < 500; k++ {
		if a.Estimate(k) != whole.Estimate(k) {
			t.Fatalf("estimate mismatch for key %d", k)
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := NewCountSketch(2, 64, 1)
	if err := a.Merge(NewCountSketch(3, 64, 1)); err == nil {
		t.Error("depth mismatch must error")
	}
	if err := a.Merge(NewCountSketch(2, 32, 1)); err == nil {
		t.Error("width mismatch must error")
	}
	if err := a.Merge(NewCountSketch(2, 64, 2)); err == nil {
		t.Error("seed mismatch must error")
	}
	cm := NewCountMin(2, 64, 1)
	if err := cm.Merge(NewConservativeCountMin(2, 64, 1)); err == nil {
		t.Error("conservative merge must error")
	}
}

func TestMergeErrorLeavesUnchanged(t *testing.T) {
	a := NewCountSketch(2, 64, 1)
	a.Update(5, 10)
	before := a.Estimate(5)
	if err := a.Merge(NewCountSketch(2, 64, 99)); err == nil {
		t.Fatal("expected error")
	}
	if a.Estimate(5) != before {
		t.Fatal("failed merge mutated receiver")
	}
}
