package sketch

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Lock-free access to the bucket array, implementing the Hogwild-style
// asynchronous updates sketched in Section 9 of the paper. The float64
// buckets are reinterpreted as uint64 words and mutated with compare-and-
// swap, so concurrent writers never lose increments and the race detector
// sees properly synchronized access. The price is a CAS loop per bucket
// write (~2-3× a plain add under no contention); Count-Sketch linearity
// guarantees the end state is independent of interleaving order.
//
// These methods must not be mixed with the plain (non-atomic) accessors
// while other goroutines are writing: a given training phase should use
// either all-atomic or all-plain access, with a happens-before barrier
// (channel close, WaitGroup) between phases.

// bucketWord returns row j's bucket b viewed as an atomic uint64 word.
// float64 slice elements are 8-byte aligned, so the cast is always valid.
func (cs *CountSketch) bucketWord(j int, b int32) *uint64 {
	return (*uint64)(unsafe.Pointer(&cs.rows[j][b]))
}

// atomicAddFloat adds delta to the float64 stored at word via CAS.
func atomicAddFloat(word *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(word)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(word, old, nw) {
			return
		}
	}
}

// atomicLoadFloat reads the float64 stored at word atomically.
func atomicLoadFloat(word *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(word))
}

// AtomicAddAt is AddAt with lock-free CAS writes, for Hogwild updates at
// pre-computed locations.
func (cs *CountSketch) AtomicAddAt(locs []Loc, delta float64) {
	for j := range locs {
		atomicAddFloat(cs.bucketWord(j, locs[j].Bucket), locs[j].Sign*delta)
	}
}

// AtomicSumAt is SumAt with atomic bucket reads.
func (cs *CountSketch) AtomicSumAt(locs []Loc) float64 {
	if len(locs) == 1 {
		return locs[0].Sign * atomicLoadFloat(cs.bucketWord(0, locs[0].Bucket))
	}
	sum := 0.0
	for j := range locs {
		sum += locs[j].Sign * atomicLoadFloat(cs.bucketWord(j, locs[j].Bucket))
	}
	return sum
}

// AtomicEstimateAt is EstimateAt with atomic bucket reads.
func (cs *CountSketch) AtomicEstimateAt(locs []Loc) float64 {
	if len(locs) == 1 {
		return locs[0].Sign * atomicLoadFloat(cs.bucketWord(0, locs[0].Bucket))
	}
	var buf [maxStackDepth]float64
	xs := buf[:]
	if len(locs) > maxStackDepth {
		xs = make([]float64, len(locs))
	}
	xs = xs[:len(locs)]
	for j := range locs {
		xs[j] = locs[j].Sign * atomicLoadFloat(cs.bucketWord(j, locs[j].Bucket))
	}
	return median(xs)
}

// AtomicClone deep-copies the sketch using atomic bucket reads, so it is
// safe to call while Hogwild writers are running. Each bucket is a
// consistent snapshot; the copy as a whole is only as consistent as the
// linearity of the sketch requires (each in-flight increment is either
// fully present or fully absent per bucket).
func (cs *CountSketch) AtomicClone() *CountSketch {
	out := &CountSketch{
		depth:  cs.depth,
		width:  cs.width,
		seed:   cs.seed,
		hashes: cs.hashes,
	}
	rows := make([][]float64, cs.depth)
	backing := make([]float64, cs.depth*cs.width)
	for j := range rows {
		rows[j], backing = backing[:cs.width], backing[cs.width:]
		for b := range rows[j] {
			rows[j][b] = atomicLoadFloat(cs.bucketWord(j, int32(b)))
		}
	}
	out.rows = rows
	return out
}
