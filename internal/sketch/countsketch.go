// Package sketch implements the linear-projection sketches the paper builds
// on: the Count-Sketch of Charikar, Chen and Farach-Colton (the backing data
// structure of the Weight-Median Sketch) and the Count-Min Sketch of Cormode
// and Muthukrishnan (used by the paired-sketch deltoid baseline in Section
// 8.2 and the Count-Min Frequent Features baseline in Section 7).
package sketch

import (
	"fmt"
	"math"
	"sort"

	"wmsketch/internal/hashing"
)

// CountSketch is a depth × width array of float64 buckets with per-row
// bucket and sign hashes. Each key i hashes to one bucket per row,
// multiplied by a random ±1 sign; the point estimate for i is the median of
// its signed bucket values (Section 3.1, Lemma 1).
//
// The value type is float64 rather than an integer counter because the
// WM-Sketch applies real-valued gradient updates to the same structure.
type CountSketch struct {
	depth  int
	width  int
	seed   int64
	rows   [][]float64
	hashes *hashing.Family
	// scratch buffer reused by Estimate to avoid per-query allocation.
	scratch []float64
}

// NewCountSketch returns a Count-Sketch with the given depth (number of
// independent rows) and width (buckets per row), seeded deterministically.
func NewCountSketch(depth, width int, seed int64) *CountSketch {
	if depth <= 0 {
		panic(fmt.Sprintf("sketch: depth must be positive, got %d", depth))
	}
	if width <= 0 {
		panic(fmt.Sprintf("sketch: width must be positive, got %d", width))
	}
	rows := make([][]float64, depth)
	backing := make([]float64, depth*width)
	for j := range rows {
		rows[j], backing = backing[:width], backing[width:]
	}
	return &CountSketch{
		depth:   depth,
		width:   width,
		seed:    seed,
		rows:    rows,
		hashes:  hashing.NewFamily(depth, seed),
		scratch: make([]float64, depth),
	}
}

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Width returns the number of buckets per row.
func (cs *CountSketch) Width() int { return cs.width }

// Size returns the total number of buckets (depth × width).
func (cs *CountSketch) Size() int { return cs.depth * cs.width }

// Update adds delta to key's bucket in every row, multiplied by the row sign.
func (cs *CountSketch) Update(key uint32, delta float64) {
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.BucketSign(j, key, cs.width)
		cs.rows[j][b] += sign * delta
	}
}

// Estimate returns the median-of-signs point estimate for key.
func (cs *CountSketch) Estimate(key uint32) float64 {
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.BucketSign(j, key, cs.width)
		cs.scratch[j] = sign * cs.rows[j][b]
	}
	return median(cs.scratch)
}

// SumSigned returns Σⱼ σⱼ(key)·row[j][hⱼ(key)], the signed sum over rows of
// key's buckets. The WM-Sketch prediction τ = zᵀRx expands into this per
// feature: zᵀRx = (1/√s)·Σ_f x_f·SumSigned(f).
func (cs *CountSketch) SumSigned(key uint32) float64 {
	sum := 0.0
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.BucketSign(j, key, cs.width)
		sum += sign * cs.rows[j][b]
	}
	return sum
}

// Scale multiplies every bucket by c. Used by callers implementing explicit
// (non-lazy) ℓ2 weight decay.
func (cs *CountSketch) Scale(c float64) {
	for j := range cs.rows {
		row := cs.rows[j]
		for b := range row {
			row[b] *= c
		}
	}
}

// Reset zeroes every bucket, retaining the hash functions.
func (cs *CountSketch) Reset() {
	for j := range cs.rows {
		row := cs.rows[j]
		for b := range row {
			row[b] = 0
		}
	}
}

// L2Norm returns the Euclidean norm of the flattened bucket array, averaged
// over rows; for a Count-Sketch of a vector x this approximates ‖x‖₂.
func (cs *CountSketch) L2Norm() float64 {
	total := 0.0
	for j := range cs.rows {
		s := 0.0
		for _, v := range cs.rows[j] {
			s += v * v
		}
		total += s
	}
	return math.Sqrt(total / float64(cs.depth))
}

// Row exposes row j read-only for tests and white-box diagnostics.
func (cs *CountSketch) Row(j int) []float64 { return cs.rows[j] }

// Hashes exposes the underlying hash family; the WM-Sketch shares it so that
// sketched feature projections and queries use identical bucket assignments.
func (cs *CountSketch) Hashes() *hashing.Family { return cs.hashes }

// MemoryBytes returns the cost-model size of the sketch: 4 bytes per bucket
// (Section 7.1 charges 4 B per stored weight).
func (cs *CountSketch) MemoryBytes() int { return 4 * cs.depth * cs.width }

// median returns the median of xs, averaging the two central elements for
// even lengths. xs is reordered in place.
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	if n == 2 {
		return midpoint(xs[0], xs[1])
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return midpoint(xs[n/2-1], xs[n/2])
}

// midpoint returns (a+b)/2 without overflowing for extreme magnitudes.
func midpoint(a, b float64) float64 {
	return a/2 + b/2
}

// Median is the package-level median used by the Weight-Median query path.
// The input slice is reordered.
func Median(xs []float64) float64 { return median(xs) }
