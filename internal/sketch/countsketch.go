// Package sketch implements the linear-projection sketches the paper builds
// on: the Count-Sketch of Charikar, Chen and Farach-Colton (the backing data
// structure of the Weight-Median Sketch) and the Count-Min Sketch of Cormode
// and Muthukrishnan (used by the paired-sketch deltoid baseline in Section
// 8.2 and the Count-Min Frequent Features baseline in Section 7).
package sketch

import (
	"fmt"
	"math"
	"sort"

	"wmsketch/internal/hashing"
)

// CountSketch is a depth × width array of float64 buckets with per-row
// bucket and sign hashes. Each key i hashes to one bucket per row,
// multiplied by a random ±1 sign; the point estimate for i is the median of
// its signed bucket values (Section 3.1, Lemma 1).
//
// The value type is float64 rather than an integer counter because the
// WM-Sketch applies real-valued gradient updates to the same structure.
//
// Two hot-path specializations matter for throughput:
//
//   - Depth 1 (the paper's uniformly-best AWM-Sketch configuration, Section
//     7.2) skips the row loop, the median, and its scratch buffer entirely:
//     the estimate of a key is just sign·bucket.
//   - The Loc-based API (Locate / SumAt / AddAt / EstimateAt) hashes each key
//     exactly once per example and reuses the recorded (bucket, sign) pairs
//     for the prediction read, the gradient write, and the post-update
//     estimate, instead of re-hashing on each access.
type CountSketch struct {
	depth  int
	width  int
	seed   int64
	rows   [][]float64
	hashes *hashing.Family
}

// maxStackDepth bounds the depth for which query paths use a stack-resident
// median buffer; deeper sketches (never used by the paper, which tops out at
// depth 8) fall back to an allocation per query.
const maxStackDepth = 8

// NewCountSketch returns a Count-Sketch with the given depth (number of
// independent rows) and width (buckets per row), seeded deterministically.
func NewCountSketch(depth, width int, seed int64) *CountSketch {
	if depth <= 0 {
		panic(fmt.Sprintf("sketch: depth must be positive, got %d", depth))
	}
	if width <= 0 {
		panic(fmt.Sprintf("sketch: width must be positive, got %d", width))
	}
	rows := make([][]float64, depth)
	backing := make([]float64, depth*width)
	for j := range rows {
		rows[j], backing = backing[:width], backing[width:]
	}
	return &CountSketch{
		depth:  depth,
		width:  width,
		seed:   seed,
		rows:   rows,
		hashes: hashing.NewFamily(depth, seed),
	}
}

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Width returns the number of buckets per row.
func (cs *CountSketch) Width() int { return cs.width }

// Size returns the total number of buckets (depth × width).
func (cs *CountSketch) Size() int { return cs.depth * cs.width }

// Seed returns the hash seed. Sketches merge (and diff) only when their
// shapes and seeds agree; replication layers check it before adopting
// remote state.
func (cs *CountSketch) Seed() int64 { return cs.seed }

// Update adds delta to key's bucket in every row, multiplied by the row sign.
func (cs *CountSketch) Update(key uint32, delta float64) {
	if cs.depth == 1 {
		b, sign := cs.hashes.Row(0).BucketSign(key, cs.width)
		cs.rows[0][b] += sign * delta
		return
	}
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.BucketSign(j, key, cs.width)
		cs.rows[j][b] += sign * delta
	}
}

// Estimate returns the median-of-signs point estimate for key.
//
// The median buffer lives on the stack (for depth ≤ 8), so Estimate is safe
// to call from multiple goroutines concurrently as long as no goroutine is
// writing the sketch.
func (cs *CountSketch) Estimate(key uint32) float64 {
	if cs.depth == 1 {
		b, sign := cs.hashes.Row(0).BucketSign(key, cs.width)
		return sign * cs.rows[0][b]
	}
	var buf [maxStackDepth]float64
	xs := buf[:]
	if cs.depth > maxStackDepth {
		xs = make([]float64, cs.depth)
	}
	xs = xs[:cs.depth]
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.BucketSign(j, key, cs.width)
		xs[j] = sign * cs.rows[j][b]
	}
	return median(xs)
}

// SumSigned returns Σⱼ σⱼ(key)·row[j][hⱼ(key)], the signed sum over rows of
// key's buckets. The WM-Sketch prediction τ = zᵀRx expands into this per
// feature: zᵀRx = (1/√s)·Σ_f x_f·SumSigned(f).
func (cs *CountSketch) SumSigned(key uint32) float64 {
	if cs.depth == 1 {
		b, sign := cs.hashes.Row(0).BucketSign(key, cs.width)
		return sign * cs.rows[0][b]
	}
	sum := 0.0
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.BucketSign(j, key, cs.width)
		sum += sign * cs.rows[j][b]
	}
	return sum
}

// Loc records where one key lands in one row: the bucket index and the ±1
// sign. A key's full location is a []Loc of length Depth(), row-major.
type Loc struct {
	Bucket int32
	Sign   float64
}

// Locate fills locs[0:Depth()] with key's (bucket, sign) pair per row,
// hashing once per row. The recorded locations stay valid for the lifetime
// of the sketch (Scale/Reset change values, never locations), so callers can
// hash a feature once per example and reuse the locations across the
// predict, gradient, and estimate phases of an update.
func (cs *CountSketch) Locate(key uint32, locs []Loc) {
	for j := 0; j < cs.depth; j++ {
		b, sign := cs.hashes.Row(j).BucketSign(key, cs.width)
		locs[j] = Loc{Bucket: int32(b), Sign: sign}
	}
}

// SumAt is SumSigned evaluated at pre-computed locations: no hashing.
func (cs *CountSketch) SumAt(locs []Loc) float64 {
	if len(locs) == 1 {
		return locs[0].Sign * cs.rows[0][locs[0].Bucket]
	}
	sum := 0.0
	for j := range locs {
		sum += locs[j].Sign * cs.rows[j][locs[j].Bucket]
	}
	return sum
}

// AddAt is Update evaluated at pre-computed locations: no hashing.
func (cs *CountSketch) AddAt(locs []Loc, delta float64) {
	if len(locs) == 1 {
		cs.rows[0][locs[0].Bucket] += locs[0].Sign * delta
		return
	}
	for j := range locs {
		cs.rows[j][locs[j].Bucket] += locs[j].Sign * delta
	}
}

// EstimateAt is Estimate evaluated at pre-computed locations: no hashing.
func (cs *CountSketch) EstimateAt(locs []Loc) float64 {
	if len(locs) == 1 {
		return locs[0].Sign * cs.rows[0][locs[0].Bucket]
	}
	var buf [maxStackDepth]float64
	xs := buf[:]
	if len(locs) > maxStackDepth {
		xs = make([]float64, len(locs))
	}
	xs = xs[:len(locs)]
	for j := range locs {
		xs[j] = locs[j].Sign * cs.rows[j][locs[j].Bucket]
	}
	return median(xs)
}

// Scale multiplies every bucket by c. Used by callers implementing explicit
// (non-lazy) ℓ2 weight decay.
func (cs *CountSketch) Scale(c float64) {
	for j := range cs.rows {
		row := cs.rows[j]
		for b := range row {
			row[b] *= c
		}
	}
}

// Reset zeroes every bucket, retaining the hash functions.
func (cs *CountSketch) Reset() {
	for j := range cs.rows {
		row := cs.rows[j]
		for b := range row {
			row[b] = 0
		}
	}
}

// Clone returns a deep copy of the sketch sharing nothing with the original
// except the (immutable) hash family. Used by the sharded learner to
// snapshot worker-private sketches for merging.
func (cs *CountSketch) Clone() *CountSketch {
	out := &CountSketch{
		depth:  cs.depth,
		width:  cs.width,
		seed:   cs.seed,
		hashes: cs.hashes,
	}
	rows := make([][]float64, cs.depth)
	backing := make([]float64, cs.depth*cs.width)
	for j := range rows {
		rows[j], backing = backing[:cs.width], backing[cs.width:]
		copy(rows[j], cs.rows[j])
	}
	out.rows = rows
	return out
}

// L2Norm returns the Euclidean norm of the flattened bucket array, averaged
// over rows; for a Count-Sketch of a vector x this approximates ‖x‖₂.
func (cs *CountSketch) L2Norm() float64 {
	total := 0.0
	for j := range cs.rows {
		s := 0.0
		for _, v := range cs.rows[j] {
			s += v * v
		}
		total += s
	}
	return math.Sqrt(total / float64(cs.depth))
}

// Row exposes row j read-only for tests and white-box diagnostics.
func (cs *CountSketch) Row(j int) []float64 { return cs.rows[j] }

// Hashes exposes the underlying hash family; the WM-Sketch shares it so that
// sketched feature projections and queries use identical bucket assignments.
func (cs *CountSketch) Hashes() *hashing.Family { return cs.hashes }

// MemoryBytes returns the cost-model size of the sketch: 4 bytes per bucket.
//
// This is a *cost-model convention*, not the resident size: Section 7.1 of
// the paper charges 4 B per stored weight (float32 precision suffices for
// the learned models it evaluates), and every budget comparison in the
// experiments uses that convention. The Go implementation stores float64
// buckets for numerical headroom, so the actual heap footprint is ~2× the
// value reported here. Use MemoryBytes for paper-comparable budget
// accounting, not for capacity planning.
func (cs *CountSketch) MemoryBytes() int { return 4 * cs.depth * cs.width }

// median returns the median of xs, averaging the two central elements for
// even lengths. xs is reordered in place.
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	if n == 2 {
		return midpoint(xs[0], xs[1])
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return midpoint(xs[n/2-1], xs[n/2])
}

// midpoint returns (a+b)/2 without overflowing for extreme magnitudes.
// The straightforward (a+b)/2 is exact whenever a+b does not overflow
// (dividing by two is exact in binary floating point), unlike a/2+b/2 which
// loses the low bit when both halves round (e.g. adjacent subnormals).
// Only when a+b overflows to ±Inf with finite inputs do we fall back to the
// overflow-safe form.
func midpoint(a, b float64) float64 {
	m := (a + b) / 2
	if math.IsInf(m, 0) && !math.IsInf(a, 0) && !math.IsInf(b, 0) {
		return a/2 + b/2
	}
	return m
}

// Median is the package-level median used by the Weight-Median query path.
// The input slice is reordered.
func Median(xs []float64) float64 { return median(xs) }
