package sketch

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestLocateMatchesHashedAccess: the Loc-based hash-once API must agree
// exactly with the per-access hashing API at every depth, including the
// depth-1 fast paths.
func TestLocateMatchesHashedAccess(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 5, 8} {
		cs := NewCountSketch(depth, 128, 42)
		rng := rand.New(rand.NewSource(int64(depth)))
		// Populate with arbitrary mass.
		for i := 0; i < 500; i++ {
			cs.Update(uint32(rng.Intn(1000)), rng.NormFloat64())
		}
		locs := make([]Loc, depth)
		for i := 0; i < 200; i++ {
			key := uint32(rng.Intn(1000))
			cs.Locate(key, locs)
			if got, want := cs.SumAt(locs), cs.SumSigned(key); got != want {
				t.Fatalf("depth %d: SumAt(%d) = %v, SumSigned %v", depth, key, got, want)
			}
			if got, want := cs.EstimateAt(locs), cs.Estimate(key); got != want {
				t.Fatalf("depth %d: EstimateAt(%d) = %v, Estimate %v", depth, key, got, want)
			}
		}
		// AddAt must land mass identically to Update.
		a := NewCountSketch(depth, 128, 42)
		b := NewCountSketch(depth, 128, 42)
		for i := 0; i < 300; i++ {
			key := uint32(rng.Intn(1000))
			delta := rng.NormFloat64()
			a.Update(key, delta)
			b.Locate(key, locs)
			b.AddAt(locs, delta)
		}
		for j := 0; j < depth; j++ {
			ra, rb := a.Row(j), b.Row(j)
			for bkt := range ra {
				if ra[bkt] != rb[bkt] {
					t.Fatalf("depth %d: AddAt diverged from Update at [%d][%d]", depth, j, bkt)
				}
			}
		}
	}
}

// TestAtomicMatchesPlain: the CAS-based accessors must be exact drop-ins
// for the plain ones when used sequentially.
func TestAtomicMatchesPlain(t *testing.T) {
	for _, depth := range []int{1, 3} {
		plain := NewCountSketch(depth, 64, 7)
		atomicCS := NewCountSketch(depth, 64, 7)
		rng := rand.New(rand.NewSource(1))
		locs := make([]Loc, depth)
		for i := 0; i < 400; i++ {
			key := uint32(rng.Intn(500))
			delta := rng.NormFloat64()
			plain.Locate(key, locs)
			plain.AddAt(locs, delta)
			atomicCS.Locate(key, locs)
			atomicCS.AtomicAddAt(locs, delta)
		}
		for i := uint32(0); i < 500; i++ {
			plain.Locate(i, locs)
			atomicCS.Locate(i, locs)
			if got, want := atomicCS.AtomicSumAt(locs), plain.SumAt(locs); got != want {
				t.Fatalf("depth %d: AtomicSumAt(%d) = %v, plain %v", depth, i, got, want)
			}
			if got, want := atomicCS.AtomicEstimateAt(locs), plain.EstimateAt(locs); got != want {
				t.Fatalf("depth %d: AtomicEstimateAt(%d) = %v, plain %v", depth, i, got, want)
			}
		}
		snap := atomicCS.AtomicClone()
		for j := 0; j < depth; j++ {
			sr, pr := snap.Row(j), plain.Row(j)
			for b := range pr {
				if sr[b] != pr[b] {
					t.Fatalf("depth %d: AtomicClone bucket [%d][%d] = %v, want %v", depth, j, b, sr[b], pr[b])
				}
			}
		}
	}
}

// TestAtomicAddConcurrentLosesNothing: N goroutines CAS-adding to one key
// must never lose an increment (the defining property vs plain racy adds,
// which drop updates under contention).
func TestAtomicAddConcurrentLosesNothing(t *testing.T) {
	cs := NewCountSketch(2, 32, 3)
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			locs := make([]Loc, 2)
			cs.Locate(0, locs)
			for i := 0; i < perWorker; i++ {
				cs.AtomicAddAt(locs, 1)
			}
		}()
	}
	wg.Wait()
	want := float64(workers * perWorker)
	if got := cs.Estimate(0); got != want {
		t.Fatalf("estimate %v after %v concurrent adds (lost updates)", got, want)
	}
}

// TestCloneIndependent: mutating a clone must not affect the original.
func TestCloneIndependent(t *testing.T) {
	cs := NewCountSketch(2, 16, 5)
	cs.Update(1, 3)
	c := cs.Clone()
	c.Update(1, 100)
	if got, want := cs.Estimate(1), 3.0; got != want {
		t.Fatalf("original estimate changed to %v after clone mutation", got)
	}
	if got := c.Estimate(1); got != 103 {
		t.Fatalf("clone estimate = %v, want 103", got)
	}
	// Clones share hash functions: same locations.
	a, b := make([]Loc, 2), make([]Loc, 2)
	cs.Locate(77, a)
	c.Locate(77, b)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("clone disagrees on hash locations")
		}
	}
}

// TestMidpointPrecision: (a+b)/2 is exact when the sum does not overflow;
// the old a/2+b/2 formulation loses the low bit for subnormals.
func TestMidpointPrecision(t *testing.T) {
	sub := math.SmallestNonzeroFloat64
	if got := Median([]float64{sub, sub}); got != sub {
		t.Fatalf("Median(min-subnormal ×2) = %g, want %g (low bit lost)", got, sub)
	}
	if got := Median([]float64{3 * sub, 5 * sub}); got != 4*sub {
		t.Fatalf("Median(3u,5u) = %g, want %g", got, 4*sub)
	}
	// Overflow guard: extreme magnitudes must not produce ±Inf.
	big := math.MaxFloat64
	if got := Median([]float64{big, big}); got != big {
		t.Fatalf("Median(MaxFloat64 ×2) = %g, want %g", got, big)
	}
	if got := Median([]float64{big, big / 2}); math.IsInf(got, 0) {
		t.Fatalf("Median(big, big/2) overflowed to %g", got)
	}
	if got := Median([]float64{-1, 1}); got != 0 {
		t.Fatalf("Median(-1,1) = %g, want 0", got)
	}
}

// Micro-benchmarks of the core sketch operations at the paper's standard
// configurations.

func benchUpdate(b *testing.B, depth, width int) {
	cs := NewCountSketch(depth, width, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Update(uint32(i), 1.5)
	}
}

func benchEstimate(b *testing.B, depth, width int) {
	cs := NewCountSketch(depth, width, 1)
	for i := 0; i < 10000; i++ {
		cs.Update(uint32(i%width), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cs.Estimate(uint32(i))
	}
	_ = sink
}

func BenchmarkCountSketchUpdateDepth1(b *testing.B)   { benchUpdate(b, 1, 4096) }
func BenchmarkCountSketchUpdateDepth4(b *testing.B)   { benchUpdate(b, 4, 1024) }
func BenchmarkCountSketchEstimateDepth1(b *testing.B) { benchEstimate(b, 1, 4096) }
func BenchmarkCountSketchEstimateDepth4(b *testing.B) { benchEstimate(b, 4, 1024) }

func BenchmarkCountSketchLocateSumAdd(b *testing.B) {
	cs := NewCountSketch(2, 1024, 1)
	locs := make([]Loc, 2)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		cs.Locate(uint32(i), locs)
		sink += cs.SumAt(locs)
		cs.AddAt(locs, 0.5)
	}
	_ = sink
}

func BenchmarkCountSketchAtomicAdd(b *testing.B) {
	cs := NewCountSketch(1, 4096, 1)
	locs := make([]Loc, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Locate(uint32(i), locs)
		cs.AtomicAddAt(locs, 0.5)
	}
}
