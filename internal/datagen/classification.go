// Package datagen provides deterministic synthetic workload generators that
// substitute for the paper's evaluation datasets (Reuters RCV1, malicious
// URLs, KDD Cup Algebra, FEC disbursements, the CAIDA packet trace, and the
// billion-word newswire corpus), none of which can be shipped with the
// repository. Each generator plants the statistical property its experiment
// measures — heavy-tailed feature frequencies, controlled relative risks,
// relative deltoids, or high-PMI token pairs — so the evaluation exercises
// the same code paths and reproduces the same qualitative trade-offs.
// See DESIGN.md §1.4 for the substitution rationale.
package datagen

import (
	"math/rand"
	"sort"

	"wmsketch/internal/linear"
	"wmsketch/internal/stream"
)

// ClassificationConfig parameterizes a sparse binary classification stream
// with Zipf-distributed feature frequencies and a planted sparse
// ground-truth weight vector.
type ClassificationConfig struct {
	// Name labels the dataset in experiment output.
	Name string
	// D is the feature dimensionality.
	D int
	// NNZ is the number of nonzero features per example.
	NNZ int
	// ZipfS is the Zipf exponent of feature popularity (>1).
	ZipfS float64
	// NumSignal is the number of features carrying nonzero true weight.
	NumSignal int
	// SignalMinRank and SignalMaxRank bound the popularity ranks on which
	// signal weights are planted. Small ranks = frequent features. Setting
	// SignalMinRank high reproduces the URL dataset's property that
	// frequent features are NOT the discriminative ones.
	SignalMinRank int
	SignalMaxRank int
	// WeightScale sets the magnitude of the largest planted weight; weights
	// decay linearly in rank down the signal set.
	WeightScale float64
	// SignalRate, when positive, forces one uniformly-chosen signal feature
	// into each example with this probability, on top of the Zipf draws.
	// Without it, datasets whose signal lives on rare ranks (the URL-like
	// regime) would have almost no learnable examples at laptop-scale
	// stream lengths; with it, each individual signal feature remains rare
	// (rate/NumSignal per example) so frequency-based tracking still fails
	// to find them, preserving the property the experiment tests.
	SignalRate float64
	// LabelNoise flips labels with this probability after sampling from the
	// logistic model.
	LabelNoise float64
	// Seed drives all randomness.
	Seed int64
}

// Classification is a synthetic labeled stream. Not safe for concurrent use.
type Classification struct {
	cfg        ClassificationConfig
	rng        *rand.Rand
	zipf       *rand.Zipf
	weights    map[uint32]float64
	signalKeys []uint32
}

// NewClassification returns a generator for the given configuration.
func NewClassification(cfg ClassificationConfig) *Classification {
	if cfg.D <= 0 || cfg.NNZ <= 0 || cfg.NNZ > cfg.D {
		panic("datagen: bad classification shape")
	}
	if cfg.ZipfS <= 1 {
		panic("datagen: ZipfS must exceed 1")
	}
	if cfg.SignalMaxRank <= cfg.SignalMinRank || cfg.SignalMaxRank > cfg.D {
		panic("datagen: bad signal rank range")
	}
	if cfg.NumSignal > cfg.SignalMaxRank-cfg.SignalMinRank {
		panic("datagen: signal set larger than rank range")
	}
	if cfg.WeightScale <= 0 {
		cfg.WeightScale = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Plant signal weights on distinct ranks within the range, alternating
	// sign, magnitudes decaying linearly.
	weights := make(map[uint32]float64, cfg.NumSignal)
	ranks := rng.Perm(cfg.SignalMaxRank - cfg.SignalMinRank)
	for i := 0; i < cfg.NumSignal; i++ {
		rank := uint32(cfg.SignalMinRank + ranks[i])
		mag := cfg.WeightScale * (1 - 0.5*float64(i)/float64(cfg.NumSignal))
		if i%2 == 1 {
			mag = -mag
		}
		weights[rank] = mag
	}
	signalKeys := make([]uint32, 0, len(weights))
	for k := range weights {
		signalKeys = append(signalKeys, k)
	}
	sort.Slice(signalKeys, func(i, j int) bool { return signalKeys[i] < signalKeys[j] })
	return &Classification{
		cfg:        cfg,
		rng:        rng,
		zipf:       rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.D-1)),
		weights:    weights,
		signalKeys: signalKeys,
	}
}

// Name returns the configured dataset label.
func (c *Classification) Name() string { return c.cfg.Name }

// Dim returns the feature dimensionality.
func (c *Classification) Dim() int { return c.cfg.D }

// TrueWeights returns a copy of the planted ground-truth weight vector.
func (c *Classification) TrueWeights() map[uint32]float64 {
	out := make(map[uint32]float64, len(c.weights))
	for i, w := range c.weights {
		out[i] = w
	}
	return out
}

// Next draws one labeled example: NNZ distinct Zipf-sampled unit features,
// label sampled from the logistic model over the planted weights, then
// flipped with probability LabelNoise.
func (c *Classification) Next() stream.Example {
	x := make(stream.Vector, 0, c.cfg.NNZ)
	seen := make(map[uint32]bool, c.cfg.NNZ)
	if c.cfg.SignalRate > 0 && c.rng.Float64() < c.cfg.SignalRate {
		i := c.signalKeys[c.rng.Intn(len(c.signalKeys))]
		seen[i] = true
		x = append(x, stream.Feature{Index: i, Value: 1})
	}
	for len(x) < c.cfg.NNZ {
		i := uint32(c.zipf.Uint64())
		if seen[i] {
			continue
		}
		seen[i] = true
		x = append(x, stream.Feature{Index: i, Value: 1})
	}
	margin := 0.0
	for _, f := range x {
		margin += c.weights[f.Index] * f.Value
	}
	y := 1
	if c.rng.Float64() >= linear.Sigmoid(margin) {
		y = -1
	}
	if c.cfg.LabelNoise > 0 && c.rng.Float64() < c.cfg.LabelNoise {
		y = -y
	}
	return stream.Example{X: x, Y: y}
}

// Take returns the next n examples.
func (c *Classification) Take(n int) []stream.Example {
	out := make([]stream.Example, n)
	for i := range out {
		out[i] = c.Next()
	}
	return out
}

// RCV1Like mimics the Reuters RCV1 regime at laptop scale: moderate
// dimensionality, signal spread across frequent and mid-rank features so
// frequency-based methods are competitive but not optimal.
func RCV1Like(seed int64) *Classification {
	return NewClassification(ClassificationConfig{
		Name: "rcv1", D: 47_000, NNZ: 20, ZipfS: 1.2,
		NumSignal: 200, SignalMinRank: 0, SignalMaxRank: 2_000,
		WeightScale: 4, LabelNoise: 0.02, Seed: seed,
	})
}

// URLLike mimics the malicious-URL regime: very high dimensionality with
// the discriminative features planted on RARE ranks, reproducing the
// paper's finding that tracking frequent features fails here.
func URLLike(seed int64) *Classification {
	return NewClassification(ClassificationConfig{
		Name: "url", D: 500_000, NNZ: 30, ZipfS: 1.1,
		NumSignal: 300, SignalMinRank: 3_000, SignalMaxRank: 50_000,
		WeightScale: 5, LabelNoise: 0.01, SignalRate: 0.6, Seed: seed,
	})
}

// KDDALike mimics the KDD Cup Algebra regime: extreme dimensionality,
// high sparsity, weak signal spread broadly.
func KDDALike(seed int64) *Classification {
	return NewClassification(ClassificationConfig{
		Name: "kdda", D: 2_000_000, NNZ: 12, ZipfS: 1.15,
		NumSignal: 400, SignalMinRank: 0, SignalMaxRank: 20_000,
		WeightScale: 3, LabelNoise: 0.1, SignalRate: 0.5, Seed: seed,
	})
}
