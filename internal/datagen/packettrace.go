package datagen

import (
	"math/rand"
)

// PacketTraceConfig parameterizes the CAIDA-trace substitute for the
// network-monitoring experiment (Section 8.2): two concurrently-observed
// packet streams over a shared IP population with a planted set of
// relative deltoids — addresses whose occurrence ratio between the streams
// is large.
type PacketTraceConfig struct {
	// NumIPs is the size of the address population.
	NumIPs int
	// ZipfS is the Zipf exponent of base address popularity.
	ZipfS float64
	// NumDeltoids is the number of planted high-ratio addresses per side.
	NumDeltoids int
	// Ratio is the planted occurrence ratio n₁/n₂ (and its reciprocal for
	// the negative side).
	Ratio float64
	// DeltoidMinRank/DeltoidMaxRank bound the popularity ranks used for
	// planting, so deltoids span the frequency spectrum.
	DeltoidMinRank int
	DeltoidMaxRank int
	// Seed drives all randomness.
	Seed int64
}

// DefaultPacketTraceConfig mirrors the trace experiment at laptop scale.
// Deltoids are planted on ranks 20-500 so that each accumulates enough
// observations within a few hundred thousand packets to have a measurable
// empirical ratio (rank ~500 of a ZipfS=1.2 distribution over 100k
// addresses receives ≈1 observation per 10k packets).
func DefaultPacketTraceConfig(seed int64) PacketTraceConfig {
	return PacketTraceConfig{
		NumIPs:         100_000,
		ZipfS:          1.2,
		NumDeltoids:    100,
		Ratio:          64,
		DeltoidMinRank: 20,
		DeltoidMaxRank: 500,
		Seed:           seed,
	}
}

// Packet is one observation: an address and which stream it appeared on.
type Packet struct {
	IP uint32
	// Outbound is true for the positive stream (source addresses on the
	// outbound link) and false for the negative stream.
	Outbound bool
}

// PacketTrace generates interleaved packets from the two streams.
type PacketTrace struct {
	cfg    PacketTraceConfig
	rng    *rand.Rand
	zipf   *rand.Zipf
	posSet map[uint32]bool // deltoids heavy on the outbound stream
	negSet map[uint32]bool // deltoids heavy on the inbound stream
}

// NewPacketTrace returns a generator for the given configuration.
func NewPacketTrace(cfg PacketTraceConfig) *PacketTrace {
	if cfg.NumIPs <= 0 {
		panic("datagen: NumIPs must be positive")
	}
	if cfg.ZipfS <= 1 {
		panic("datagen: ZipfS must exceed 1")
	}
	if cfg.Ratio <= 1 {
		panic("datagen: Ratio must exceed 1")
	}
	if cfg.DeltoidMaxRank <= cfg.DeltoidMinRank || cfg.DeltoidMaxRank > cfg.NumIPs {
		panic("datagen: bad deltoid rank range")
	}
	if 2*cfg.NumDeltoids > cfg.DeltoidMaxRank-cfg.DeltoidMinRank {
		panic("datagen: deltoid set larger than rank range")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pt := &PacketTrace{
		cfg:    cfg,
		rng:    rng,
		zipf:   rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.NumIPs-1)),
		posSet: make(map[uint32]bool, cfg.NumDeltoids),
		negSet: make(map[uint32]bool, cfg.NumDeltoids),
	}
	perm := rng.Perm(cfg.DeltoidMaxRank - cfg.DeltoidMinRank)
	for i := 0; i < cfg.NumDeltoids; i++ {
		pt.posSet[uint32(cfg.DeltoidMinRank+perm[2*i])] = true
		pt.negSet[uint32(cfg.DeltoidMinRank+perm[2*i+1])] = true
	}
	return pt
}

// Next draws one packet. The base address distribution is shared; planted
// deltoids are routed to their heavy side with probability
// Ratio/(Ratio+1), producing an expected occurrence ratio of Ratio.
func (pt *PacketTrace) Next() Packet {
	ip := uint32(pt.zipf.Uint64())
	pHeavy := pt.cfg.Ratio / (pt.cfg.Ratio + 1)
	switch {
	case pt.posSet[ip]:
		return Packet{IP: ip, Outbound: pt.rng.Float64() < pHeavy}
	case pt.negSet[ip]:
		return Packet{IP: ip, Outbound: pt.rng.Float64() >= pHeavy}
	default:
		return Packet{IP: ip, Outbound: pt.rng.Float64() < 0.5}
	}
}

// Take returns the next n packets.
func (pt *PacketTrace) Take(n int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = pt.Next()
	}
	return out
}

// OutboundDeltoids returns the planted outbound-heavy address set.
func (pt *PacketTrace) OutboundDeltoids() map[uint32]bool { return copySet(pt.posSet) }

// InboundDeltoids returns the planted inbound-heavy address set.
func (pt *PacketTrace) InboundDeltoids() map[uint32]bool { return copySet(pt.negSet) }
